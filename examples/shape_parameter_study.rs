//! Shape-parameter study at laptop scale (the real-numerics flavor of
//! Figs. 1 and 4).
//!
//! Sweeps the Gaussian shape parameter δ over the paper's range, building
//! and compressing the actual RBF operator each time, then factorizing it
//! and reporting initial/final density, rank statistics, and the trimmed
//! vs dense task counts. Matches the qualitative behaviour of §V / §VIII-B:
//! density and ranks grow with δ, and trimming loses its bite as the
//! matrix fills.
//!
//! Run with: `cargo run --release --example shape_parameter_study`

use hicma_parsec::cholesky::{factorize, FactorConfig};
use hicma_parsec::mesh::geometry::{virus_population, VirusConfig};
use hicma_parsec::mesh::hilbert::{apply_permutation, hilbert_sort};
use hicma_parsec::mesh::GaussianRbf;
use hicma_parsec::tlr::{CompressionConfig, TlrMatrix};

fn main() {
    let vcfg = VirusConfig { points_per_virus: 350, ..Default::default() };
    let raw = virus_population(4, &vcfg, 11);
    let points = apply_permutation(&raw, &hilbert_sort(&raw));
    let n = points.len();
    let accuracy = 1e-6;
    let tile = 100;

    // δ_ref: the paper's default (half the min distance); sweep around it.
    let delta_ref = GaussianRbf::from_min_distance(&points).delta;
    println!("N = {n}, tile = {tile}, accuracy = {accuracy:.0e}, δ_ref = {delta_ref:.3e}");
    println!();
    println!(
        "{:>10} {:>10} {:>10} {:>9} {:>9} {:>10} {:>12} {:>10}",
        "delta", "init dens", "final dens", "max rank", "avg rank", "tasks", "dense tasks", "time (s)"
    );

    for mult in [0.5, 1.0, 2.0, 4.0, 8.0, 16.0] {
        let kernel = GaussianRbf { delta: delta_ref * mult, nugget: 1e-8 };
        let ccfg = CompressionConfig::with_accuracy(accuracy);
        let mut a = TlrMatrix::from_generator(n, tile, kernel.generator(&points), &ccfg);
        let init = a.rank_snapshot();
        let init_stats = init.stats();
        let fcfg = FactorConfig::with_accuracy(accuracy);
        match factorize(&mut a, &fcfg) {
            Ok(rep) => {
                let final_stats = rep.final_snapshot.stats();
                println!(
                    "{:>10.3e} {:>10.3} {:>10.3} {:>9} {:>9.1} {:>10} {:>12} {:>10.3}",
                    kernel.delta,
                    init_stats.density,
                    final_stats.density,
                    final_stats.max,
                    final_stats.avg_nonzero,
                    rep.dag_tasks,
                    rep.dense_dag_tasks,
                    rep.factorization_seconds,
                );
            }
            Err(e) => {
                // Very large δ drives the condition number up until the
                // truncated operator stops being numerically SPD — the
                // "excessive condition numbers" §IV-C scales against.
                println!(
                    "{:>10.3e} {:>10.3} {:>10}  not SPD at this accuracy (pivot {})",
                    kernel.delta, init_stats.density, "-", e.pivot
                );
            }
        }
    }

    println!();
    println!("Expected shape (paper §V, §VIII-B): density and ranks grow with δ,");
    println!("and the trimmed task count approaches the dense count as null tiles vanish.");
}

//! Quickstart: the 60-second tour of hicma-parsec.
//!
//! Builds a small RBF operator from a synthetic virus cloud, compresses it
//! to TLR form, factorizes it with the trimmed task DAG on the
//! work-stealing executor, solves a linear system, and verifies accuracy
//! against the dense reference.
//!
//! Run with: `cargo run --release --example quickstart`

use hicma_parsec::cholesky::{factorize, solve_tlr, FactorConfig};
use hicma_parsec::cholesky::{factorization_residual, solve_residual};
use hicma_parsec::linalg::Matrix;
use hicma_parsec::mesh::geometry::{virus_population, VirusConfig};
use hicma_parsec::mesh::hilbert::{apply_permutation, hilbert_sort};
use hicma_parsec::mesh::GaussianRbf;
use hicma_parsec::tlr::{CompressionConfig, TlrMatrix};

fn main() {
    // ------------------------------------------------------------------
    // 1. Geometry: a few synthetic viruses in the unit cube, reordered
    //    along the 3D Hilbert curve for spatial locality (§IV-C).
    // ------------------------------------------------------------------
    let cfg = VirusConfig { points_per_virus: 400, ..Default::default() };
    let raw = virus_population(4, &cfg, 2024);
    let points = apply_permutation(&raw, &hilbert_sort(&raw));
    let n = points.len();
    println!("mesh points           : {n}");

    // ------------------------------------------------------------------
    // 2. RBF kernel with the paper's default shape parameter
    //    δ = ½ · min‖xᵢ − xⱼ‖.
    // ------------------------------------------------------------------
    let kernel = GaussianRbf::from_min_distance(&points);
    println!("shape parameter δ     : {:.3e}", kernel.delta);

    // ------------------------------------------------------------------
    // 3. Compress tile-by-tile at the application accuracy.
    // ------------------------------------------------------------------
    let accuracy = 1e-6;
    let tile = 128;
    let ccfg = CompressionConfig::with_accuracy(accuracy);
    let mut a = TlrMatrix::from_generator(n, tile, kernel.generator(&points), &ccfg);
    let stats = a.rank_snapshot().stats();
    println!(
        "compressed            : NT={} density={:.2} max rank={} avg rank={:.1}",
        a.nt(),
        stats.density,
        stats.max,
        stats.avg_nonzero
    );
    println!(
        "memory                : {:.1}% of dense",
        100.0 * a.memory_f64() as f64 / ((n * (n + 1) / 2) as f64)
    );

    // Keep the dense operator around for verification (small N only).
    let dense = Matrix::from_fn(n, n, |i, j| kernel.matrix_entry(&points, i, j));

    // ------------------------------------------------------------------
    // 4. TLR Cholesky with DAG trimming on the task executor.
    // ------------------------------------------------------------------
    let fcfg = FactorConfig {
        nthreads: std::thread::available_parallelism().map_or(4, |p| p.get()),
        ..FactorConfig::with_accuracy(accuracy)
    };
    let report = factorize(&mut a, &fcfg).expect("RBF operators are SPD");
    println!(
        "factorized            : {} tasks ({} before trimming) in {:.3}s",
        report.dag_tasks, report.dense_dag_tasks, report.factorization_seconds
    );
    println!(
        "  breakdown           : potrf {:.3}s  trsm {:.3}s  syrk {:.3}s  gemm {:.3}s",
        report.breakdown.potrf, report.breakdown.trsm, report.breakdown.syrk,
        report.breakdown.gemm
    );
    println!(
        "  fill-in memory      : {:.1}% → {:.1}% of dense",
        100.0 * report.memory_before_f64 as f64 / (n * (n + 1) / 2) as f64,
        100.0 * report.memory_after_f64 as f64 / (n * (n + 1) / 2) as f64
    );

    // ------------------------------------------------------------------
    // 5. Solve A·x = b and verify.
    // ------------------------------------------------------------------
    let x_true: Vec<f64> = (0..n).map(|i| (i as f64 * 0.01).sin()).collect();
    let b = dense.matvec(&x_true);
    let mut x = b.clone();
    solve_tlr(&a, &mut x);

    let fact_res = factorization_residual(&dense, &a);
    let solve_res = solve_residual(&dense, &x, &b);
    println!("‖A − LLᵀ‖/‖A‖        : {fact_res:.3e}");
    println!("‖Ax − b‖/‖b‖         : {solve_res:.3e}");
    assert!(fact_res < accuracy * 100.0, "factorization accuracy");
    assert!(solve_res < 1e-4, "solve accuracy");
    println!("quickstart OK");
}

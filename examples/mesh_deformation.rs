//! 3D unstructured mesh deformation, end to end (the paper's application).
//!
//! One virus of a packed population moves; the boundary displacement is
//! interpolated to volume probe points via Gaussian RBF. The interpolation
//! coefficients come from the TLR Cholesky solve; the dense pipeline of
//! `rbf-mesh` provides the reference.
//!
//! Run with: `cargo run --release --example mesh_deformation`

use hicma_parsec::cholesky::{factorize, solve_tlr_multi, FactorConfig};
use hicma_parsec::linalg::Matrix;
use hicma_parsec::mesh::deform::{solve_dense, Displacements};
use hicma_parsec::mesh::geometry::{virus_population, Point3, VirusConfig};
use hicma_parsec::mesh::hilbert::{apply_permutation, hilbert_sort};
use hicma_parsec::mesh::GaussianRbf;
use hicma_parsec::tlr::{CompressionConfig, TlrMatrix};

fn main() {
    // Boundary mesh: a population of viruses; virus 0 translates.
    let vcfg = VirusConfig { points_per_virus: 300, ..Default::default() };
    let n_viruses = 5;
    let raw = virus_population(n_viruses, &vcfg, 7);
    let order = hilbert_sort(&raw);
    let points = apply_permutation(&raw, &order);
    let n = points.len();

    // Displacement: the nodes of virus 0 (pre-permutation indices
    // 0..points_per_virus) translate by (0.02, 0.01, 0); other bodies hold.
    let moving: Vec<bool> = order.iter().map(|&orig| orig < vcfg.points_per_virus).collect();
    let mut d_b = Displacements::zeros(n);
    for (i, &mv) in moving.iter().enumerate() {
        if mv {
            d_b.dx[i] = 0.02;
            d_b.dy[i] = 0.01;
        }
    }

    let kernel = GaussianRbf::from_min_distance(&points);
    println!("boundary nodes        : {n} ({n_viruses} bodies), δ = {:.3e}", kernel.delta);

    // ------------------------------------------------------------------
    // TLR path: compress, factorize, solve the three RHS.
    // ------------------------------------------------------------------
    let accuracy = 1e-7;
    let ccfg = CompressionConfig::with_accuracy(accuracy);
    let mut a = TlrMatrix::from_generator(n, 128, kernel.generator(&points), &ccfg);
    println!(
        "TLR operator          : NT={} density={:.2} mem={:.1}% of dense",
        a.nt(),
        a.density(),
        100.0 * a.memory_f64() as f64 / ((n * (n + 1) / 2) as f64)
    );
    let fcfg = FactorConfig { accuracy, ..FactorConfig::with_accuracy(accuracy) };
    let rep = factorize(&mut a, &fcfg).expect("SPD");
    println!(
        "TLR factorization     : {:.3}s ({} tasks, {} trimmed away)",
        rep.factorization_seconds,
        rep.dag_tasks,
        rep.dense_dag_tasks - rep.dag_tasks
    );
    // One blocked solve for all three displacement components (BLAS-3).
    let mut rhs = Matrix::zeros(n, 3);
    rhs.col_mut(0).copy_from_slice(&d_b.dx);
    rhs.col_mut(1).copy_from_slice(&d_b.dy);
    rhs.col_mut(2).copy_from_slice(&d_b.dz);
    solve_tlr_multi(&a, &mut rhs);
    let (ax, ay, az) = (rhs.col(0).to_vec(), rhs.col(1).to_vec(), rhs.col(2).to_vec());

    // ------------------------------------------------------------------
    // Dense reference (assemble + dpotrf + solves).
    // ------------------------------------------------------------------
    let reference = solve_dense(&points, kernel, &d_b).expect("SPD");
    println!("boundary residual     : {:.3e} (dense reference)", reference.boundary_residual(&d_b));

    // ------------------------------------------------------------------
    // Interpolate volume probes with the TLR coefficients and compare.
    // ------------------------------------------------------------------
    let probes: Vec<Point3> = (0..200)
        .map(|i| {
            let f = i as f64 / 200.0;
            Point3 {
                x: 0.1 + 0.8 * (f * 13.7).fract(),
                y: 0.1 + 0.8 * (f * 7.3).fract(),
                z: 0.1 + 0.8 * (f * 3.1).fract(),
            }
        })
        .collect();
    let mut worst = 0.0_f64;
    for p in &probes {
        let mut tlr_d = (0.0, 0.0, 0.0);
        for (i, q) in points.iter().enumerate() {
            let w = kernel.eval(p.dist(q));
            tlr_d.0 += ax[i] * w;
            tlr_d.1 += ay[i] * w;
            tlr_d.2 += az[i] * w;
        }
        let dense_d = reference.displacement(p);
        worst = worst
            .max((tlr_d.0 - dense_d.0).abs())
            .max((tlr_d.1 - dense_d.1).abs())
            .max((tlr_d.2 - dense_d.2).abs());
    }
    println!("max TLR-vs-dense displacement error over {} probes: {worst:.3e}", probes.len());
    assert!(worst < 1e-4, "TLR deformation must match the dense reference");

    // ------------------------------------------------------------------
    // Mesh-quality check: apply the interpolated displacement to the
    // boundary nodes themselves and verify no local spacing collapsed.
    // ------------------------------------------------------------------
    let displaced: Vec<Point3> = points
        .iter()
        .enumerate()
        .map(|(i, p)| {
            let mut d = (0.0, 0.0, 0.0);
            for (j, q) in points.iter().enumerate() {
                let w = kernel.eval(p.dist(q));
                d.0 += ax[j] * w;
                d.1 += ay[j] * w;
                d.2 += az[j] * w;
            }
            let _ = i;
            Point3 { x: p.x + d.0, y: p.y + d.1, z: p.z + d.2 }
        })
        .collect();
    let quality = hicma_parsec::mesh::assess(&points, &displaced);
    println!(
        "mesh quality          : spacing ratio [{:.3}, {:.3}], max disp {:.4}, rms {:.4}",
        quality.min_spacing_ratio,
        quality.max_spacing_ratio,
        quality.max_displacement,
        quality.rms_displacement
    );
    assert!(quality.is_safe(2.0), "deformation must not collapse the mesh");
    println!("mesh deformation OK");
}

//! Dense tile Cholesky written as a Parameterized Task Graph (§IV-A).
//!
//! The same JDF-style program the paper's runtime consumes: four task
//! classes with symbolic dataflow, unrolled by the PTG front-end and
//! executed — with real numerics — on the work-stealing executor. The
//! result is validated against a monolithic dense Cholesky.
//!
//! Run with: `cargo run --release --example ptg_cholesky`

use hicma_parsec::linalg::{gemm, potrf, trsm, Matrix, Side, Trans, Uplo};
use hicma_parsec::runtime::{Engine, EngineConfig};
use hicma_parsec::runtime::ptg::dense_cholesky_ptg;
use parking_lot::RwLock;

fn main() {
    let nt = 8usize;
    let b = 64usize;
    let n = nt * b;

    // SPD test matrix: Gaussian kernel + diagonal shift.
    let a_dense = Matrix::from_fn(n, n, |i, j| {
        let d = (i as f64 - j as f64) / (n as f64 / 6.0);
        (-d * d).exp() + if i == j { 1e-2 } else { 0.0 }
    });

    // Tile storage (full lower triangle).
    let lower = |i: usize, j: usize| i * (i + 1) / 2 + j;
    let tiles: Vec<RwLock<Matrix>> = (0..nt)
        .flat_map(|i| (0..=i).map(move |j| (i, j)))
        .map(|(i, j)| RwLock::new(a_dense.submatrix(i * b, j * b, b, b)))
        .collect();

    // Unroll the symbolic program.
    let program = dense_cholesky_ptg(nt, b);
    let unrolled = program.unroll().expect("valid JDF");
    println!(
        "PTG program: {} classes, {} task instances, {} dependencies",
        4,
        unrolled.graph.len(),
        unrolled.graph.num_edges()
    );

    // Execute: the class name + parameters identify the kernel.
    let t0 = std::time::Instant::now();
    Engine::new(&unrolled.graph).run(&EngineConfig::new(4), |_wid, t| {
        let p = unrolled.params_of(t);
        match unrolled.class_of(t) {
            "POTRF" => {
                let mut c = tiles[lower(p[0], p[0])].write();
                potrf(&mut c).expect("SPD");
                c.zero_upper();
            }
            "TRSM" => {
                let l = tiles[lower(p[0], p[0])].read();
                let mut x = tiles[lower(p[1], p[0])].write();
                trsm(Side::Right, Uplo::Lower, Trans::Yes, 1.0, &l, &mut x);
            }
            "SYRK" => {
                let a = tiles[lower(p[1], p[0])].read();
                let mut c = tiles[lower(p[1], p[1])].write();
                gemm(Trans::No, Trans::Yes, -1.0, &a, &a, 1.0, &mut c);
            }
            "GEMM" => {
                let (k, m, nn) = (p[0], p[1], p[2]);
                let am = tiles[lower(m, k)].read();
                let bm = tiles[lower(nn, k)].read();
                let mut c = tiles[lower(m, nn)].write();
                gemm(Trans::No, Trans::Yes, -1.0, &am, &bm, 1.0, &mut c);
            }
            other => unreachable!("unknown class {other}"),
        }
    })
    .expect("acyclic graph, panic-free kernels");
    println!("executed in {:.3}s on 4 workers", t0.elapsed().as_secs_f64());

    // Reassemble L and validate ‖A − LLᵀ‖/‖A‖.
    let mut l = Matrix::zeros(n, n);
    for i in 0..nt {
        for j in 0..=i {
            l.set_submatrix(i * b, j * b, &tiles[lower(i, j)].read());
        }
    }
    for j in 0..n {
        for i in 0..j {
            l[(i, j)] = 0.0;
        }
    }
    let mut recon = Matrix::zeros(n, n);
    gemm(Trans::No, Trans::Yes, 1.0, &l, &l, 0.0, &mut recon);
    let res = hicma_parsec::linalg::relative_diff(&recon, &a_dense);
    println!("‖A − LLᵀ‖/‖A‖ = {res:.3e}");
    assert!(res < 1e-12, "PTG-driven factorization must be exact");
    println!("ptg_cholesky OK");
}

//! Geostatistics workload — the application domain of the paper's
//! predecessors ([8], [9]: climate/weather modeling): a Matérn covariance
//! matrix over scattered 3D observation sites, factorized in TLR form and
//! used for the canonical Gaussian-process computations (simulation and
//! kriging-style solves).
//!
//! Demonstrates that the same stack serves both the RBF mesh-deformation
//! workload and the spatial-statistics workload, as the HiCMA line of
//! work intends.
//!
//! Run with: `cargo run --release --example geostatistics`

use hicma_parsec::cholesky::{factorization_residual, factorize, solve_tlr, FactorConfig};
use hicma_parsec::linalg::Matrix;
use hicma_parsec::mesh::hilbert::{apply_permutation, hilbert_sort};
use hicma_parsec::mesh::{MaternKernel, MaternNu, Point3};
use hicma_parsec::tlr::{CompressionConfig, TlrMatrix};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    // Scattered observation sites in the unit cube (not on surfaces —
    // the volumetric layout of geostatistics).
    let n = 1500usize;
    let mut rng = StdRng::seed_from_u64(99);
    let raw: Vec<Point3> = (0..n)
        .map(|_| Point3 { x: rng.gen(), y: rng.gen(), z: rng.gen() })
        .collect();
    let points = apply_permutation(&raw, &hilbert_sort(&raw));

    let accuracy = 1e-6;
    let tile = 125;
    println!("Matérn covariance factorization, N = {n}, tile = {tile}, acc = {accuracy:.0e}");
    println!();
    println!(
        "{:>12} {:>8} {:>9} {:>10} {:>12} {:>12}",
        "nu", "length", "density", "avg rank", "mem vs dn", "residual"
    );

    for (label, nu) in [
        ("1/2 (exp)", MaternNu::Half),
        ("3/2", MaternNu::ThreeHalves),
        ("5/2", MaternNu::FiveHalves),
    ] {
        let kernel = MaternKernel { nugget: 1e-4, ..MaternKernel::new(0.04, nu) };
        let ccfg = CompressionConfig::with_accuracy(accuracy);
        let mut a = TlrMatrix::from_generator(n, tile, kernel.generator(&points), &ccfg);
        let stats = a.rank_snapshot().stats();
        let mem = a.memory_f64() as f64 / (n * (n + 1) / 2) as f64;
        let dense = Matrix::from_fn(n, n, |i, j| kernel.matrix_entry(&points, i, j));
        match factorize(&mut a, &FactorConfig::with_accuracy(accuracy)) {
            Ok(_) => {
                let res = factorization_residual(&dense, &a);
                println!(
                    "{:>12} {:>8} {:>9.3} {:>10.1} {:>11.1}% {:>12.2e}",
                    label, 0.04, stats.density, stats.avg_nonzero, 100.0 * mem, res
                );
                // Kriging-style solve: predictively weight one observation
                // vector through the factored covariance.
                let y: Vec<f64> = (0..n).map(|i| (points[i].x * 6.0).sin()).collect();
                let mut w = y.clone();
                solve_tlr(&a, &mut w);
                let y_hat = hicma_parsec::cholesky::tlr_matvec(&a_original(&dense, tile, accuracy), &w);
                let err: f64 = y_hat
                    .iter()
                    .zip(&y)
                    .map(|(a, b)| (a - b) * (a - b))
                    .sum::<f64>()
                    .sqrt()
                    / (n as f64).sqrt();
                println!("{:>12}   kriging consistency ‖C·C⁻¹y − y‖/√n = {err:.2e}", "");
            }
            Err(e) => println!("{label:>12}: not SPD (pivot {})", e.pivot),
        }
    }
    println!();
    println!("Expected: smoother kernels (larger ν) have faster-decaying tile");
    println!("spectra, so they compress to lower ranks; all factorize to the");
    println!("threshold and the solve is consistent with the unfactored covariance.");
}

/// Re-compress the original covariance (the factorization overwrote `a`).
fn a_original(dense: &Matrix, tile: usize, accuracy: f64) -> TlrMatrix {
    TlrMatrix::from_dense(dense, tile, &CompressionConfig::with_accuracy(accuracy))
}

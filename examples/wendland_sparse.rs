//! Compact-support (Wendland) vs global-support (Gaussian) RBF — the two
//! kernel families of §IV-C on the same mesh.
//!
//! The Gaussian couples every point pair (formally dense operator,
//! data-sparse after compression); the Wendland kernel is exactly zero
//! beyond its support radius, giving a genuinely sparse operator — the
//! extreme end of the paper's "dense / data-sparse / sparse" spectrum,
//! where DAG trimming removes almost everything.
//!
//! Run with: `cargo run --release --example wendland_sparse`

use hicma_parsec::cholesky::{factorization_residual, factorize, FactorConfig};
use hicma_parsec::linalg::Matrix;
use hicma_parsec::mesh::geometry::{virus_population, VirusConfig};
use hicma_parsec::mesh::hilbert::{apply_permutation, hilbert_sort};
use hicma_parsec::mesh::{GaussianRbf, WendlandRbf};
use hicma_parsec::tlr::{CompressionConfig, TlrMatrix};

fn main() {
    let vcfg = VirusConfig { points_per_virus: 400, ..Default::default() };
    let raw = virus_population(4, &vcfg, 55);
    let points = apply_permutation(&raw, &hilbert_sort(&raw));
    let n = points.len();
    let accuracy = 1e-6;
    let tile = 128;
    let ccfg = CompressionConfig::with_accuracy(accuracy);

    println!("N = {n}, tile = {tile}, accuracy = {accuracy:.0e}");
    println!();
    println!(
        "{:>22} {:>9} {:>10} {:>12} {:>10} {:>12}",
        "kernel", "density", "mem vs dn", "tasks", "dense DAG", "residual"
    );

    // §IV-C's trade-off: global support "leads to a more accurate
    // solution because it considers all interactions … at the cost of
    // producing a dense matrix". We pit a realistic accuracy-oriented
    // Gaussian (δ = 32·δ_ref, long reach) against a short compact-support
    // Wendland (3 neighbor shells) — the two ends of the spectrum.
    let mut gaussian = GaussianRbf::from_min_distance(&points);
    gaussian.delta *= 32.0;
    gaussian.nugget = 1e-2;
    let mut wendland = WendlandRbf::from_min_distance(&points, 3.0);
    wendland.nugget = 1e-6;

    for (name, gen) in [
        ("Gaussian (global)", Box::new(gaussian.generator(&points)) as Box<dyn Fn(usize, usize) -> f64 + Sync>),
        ("Wendland (compact)", Box::new(wendland.generator(&points))),
    ] {
        let mut a = TlrMatrix::from_generator(n, tile, &gen, &ccfg);
        let density = a.density();
        let mem = a.memory_f64() as f64 / (n * (n + 1) / 2) as f64;
        let dense = Matrix::from_fn(n, n, &gen);
        match factorize(&mut a, &FactorConfig::with_accuracy(accuracy)) {
            Ok(rep) => {
                let res = factorization_residual(&dense, &a);
                println!(
                    "{:>22} {:>9.3} {:>9.1}% {:>12} {:>10} {:>12.2e}",
                    name,
                    density,
                    100.0 * mem,
                    rep.dag_tasks,
                    rep.dense_dag_tasks,
                    res
                );
            }
            Err(e) => println!("{name:>22}: not SPD (pivot {})", e.pivot),
        }
    }
    println!();
    println!("Expected (§IV-C): the long-reach global-support operator is much denser");
    println!("and more expensive; the compact-support operator is sparse, trims far");
    println!("more of the DAG, and still factorizes to the requested accuracy.");
}

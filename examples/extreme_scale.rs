//! Extreme-scale simulation (the Fig. 14 experiment).
//!
//! Runs the discrete-event simulator at paper scale: matrix sizes up to a
//! (scaled) 52.57M unknowns on up to 2048 Shaheen II nodes, using the
//! calibrated synthetic rank model in place of a compressed matrix we
//! could never materialize on this machine. Tile counts are scaled down
//! by `SCALE` (documented in EXPERIMENTS.md) to keep the simulated DAGs
//! in memory; strong/weak-scaling *trends* are preserved.
//!
//! Run with: `cargo run --release --example extreme_scale`

use hicma_parsec::cholesky::simulate::{scaled_problem, simulate_cholesky, SimConfig};
use hicma_parsec::runtime::MachineModel;
use hicma_parsec::tlr::SyntheticRankModel;

/// Downscale factor vs the paper's runs: N and nodes ÷ SCALE, tile ÷ √SCALE
/// (keeps the work-per-node balances; DAGs stay ≤ a few 1e6 tasks).
const SCALE: usize = 32;

fn main() {
    let shape = 3.7e-4; // the paper's chosen shape parameter (§VIII-B)
    let accuracy = 1e-4;

    println!("Extreme-scale TLR Cholesky on the simulated Shaheen II");
    println!("(tile counts scaled down {SCALE}× — trends, not absolute times)");
    println!();
    println!(
        "{:>10} {:>6} {:>7} {:>10} {:>12} {:>10} {:>9}",
        "N (paper)", "nodes", "NT", "tasks", "time (s)", "CP (s)", "eff"
    );

    // The paper's matrix sizes (millions) and its tile-size tuning
    // b ≈ O(√N); node counts 512..2048 as in Fig. 14.
    for &(n_millions, tile) in
        &[(11.95_f64, 4880_usize), (23.90, 6880), (35.85, 8430), (52.57, 10190)]
    {
        for &nodes_paper in &[512usize, 1024, 2048] {
            let p = scaled_problem(n_millions * 1e6, tile, nodes_paper, SCALE);
            let model =
                SyntheticRankModel::from_application(p.nt, p.tile_size, shape, accuracy);
            let snapshot = model.snapshot();
            let cfg = SimConfig::hicma_parsec(MachineModel::shaheen_ii(), p.nodes);
            let r = simulate_cholesky(&snapshot, &cfg);
            println!(
                "{:>9.2}M {:>6} {:>7} {:>10} {:>12.2} {:>10.2} {:>8.1}%",
                n_millions,
                nodes_paper,
                p.nt,
                r.dag_tasks,
                r.factorization_seconds,
                r.critical_path_seconds,
                100.0 * r.roofline_efficiency(),
            );
        }
        println!();
    }

    println!("Each matrix size column-block is a strong-scaling experiment; each node");
    println!("count row is a weak-scaling one (paper: 52.57M factored in ~36 minutes).");
}

//! Extension (the paper's §IX future work): assemble the RBF operator
//! **directly in compressed format** with adaptive cross approximation,
//! skipping the dense-generation phase that Fig. 11 shows dominating
//! HiCMA-PaRSEC's end-to-end time.
//!
//! Compares kernel-evaluation counts and wall time of the two assembly
//! paths and verifies both factorize to the same accuracy.
//!
//! Run with: `cargo run --release --example compressed_assembly`

use hicma_parsec::cholesky::{factorization_residual, factorize, FactorConfig};
use hicma_parsec::linalg::Matrix;
use hicma_parsec::mesh::geometry::{virus_population, VirusConfig};
use hicma_parsec::mesh::hilbert::{apply_permutation, hilbert_sort};
use hicma_parsec::mesh::GaussianRbf;
use hicma_parsec::tlr::{CompressionConfig, TlrMatrix};

fn main() {
    let vcfg = VirusConfig { points_per_virus: 400, ..Default::default() };
    let raw = virus_population(4, &vcfg, 33);
    let points = apply_permutation(&raw, &hilbert_sort(&raw));
    let n = points.len();
    let kernel = GaussianRbf::from_min_distance(&points);
    let accuracy = 1e-6;
    let tile = 128;
    let ccfg = CompressionConfig::with_accuracy(accuracy);

    println!("N = {n}, tile = {tile}, accuracy = {accuracy:.0e}");

    // ---------------- dense assembly + compression ----------------
    let t0 = std::time::Instant::now();
    let mut a_dense_path =
        TlrMatrix::from_generator(n, tile, kernel.generator(&points), &ccfg);
    let t_dense = t0.elapsed().as_secs_f64();
    let dense_evals = {
        // every lower tile is generated densely
        let nt = a_dense_path.nt();
        let full = nt * (nt + 1) / 2;
        full * tile * tile
    };

    // ---------------- direct compressed assembly (ACA) ----------------
    let t1 = std::time::Instant::now();
    let (mut a_aca, aca_evals) =
        TlrMatrix::from_generator_aca(n, tile, kernel.generator(&points), &ccfg);
    let t_aca = t1.elapsed().as_secs_f64();

    println!();
    println!("                         dense path        ACA path");
    println!("kernel evaluations   {dense_evals:>14} {aca_evals:>15}");
    println!("assembly wall time   {t_dense:>13.3}s {t_aca:>14.3}s");
    println!(
        "evaluation saving    {:>29.1}x",
        dense_evals as f64 / aca_evals as f64
    );

    // Both operators must factorize to the same accuracy.
    let reference = Matrix::from_fn(n, n, |i, j| kernel.matrix_entry(&points, i, j));
    let fcfg = FactorConfig::with_accuracy(accuracy);
    factorize(&mut a_dense_path, &fcfg).expect("SPD");
    factorize(&mut a_aca, &fcfg).expect("SPD (ACA)");
    let res_dense = factorization_residual(&reference, &a_dense_path);
    let res_aca = factorization_residual(&reference, &a_aca);
    println!();
    println!("factorization residual, dense path : {res_dense:.3e}");
    println!("factorization residual, ACA path   : {res_aca:.3e}");
    assert!(res_aca < accuracy * 1e3, "ACA path must stay within accuracy");
    println!("compressed assembly OK");
}

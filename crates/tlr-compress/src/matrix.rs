//! Symmetric TLR matrix container (lower-triangular tile storage).
//!
//! The container matches HiCMA's layout decisions: only the lower triangle
//! of tiles is stored (the matrix is symmetric), diagonal tiles are always
//! dense, off-diagonal tiles are compressed at construction. The last tile
//! row/column may be smaller when the matrix size is not a multiple of the
//! tile size.

use crate::compress::{compress_tile, CompressionConfig};
use crate::rankstat::RankSnapshot;
use crate::tile::Tile;
use rayon::prelude::*;
use tlr_linalg::Matrix;

/// A symmetric positive-definite matrix stored as TLR tiles (lower
/// triangle only).
#[derive(Clone)]
pub struct TlrMatrix {
    n: usize,
    tile_size: usize,
    nt: usize,
    /// Lower-triangle tiles in row-major packed order:
    /// index of `(i, j)`, `i ≥ j`, is `i·(i+1)/2 + j`.
    tiles: Vec<Tile>,
}

#[inline]
fn packed_index(i: usize, j: usize) -> usize {
    debug_assert!(i >= j, "only the lower triangle is stored");
    i * (i + 1) / 2 + j
}

impl TlrMatrix {
    /// Build a TLR matrix by sampling a symmetric generator
    /// `gen(row, col)` tile-by-tile and compressing each off-diagonal tile
    /// at the configured accuracy. Tiles are generated and compressed in
    /// parallel on rayon's work-stealing pool — one task per tile, sized
    /// by `available_parallelism` unless `RAYON_NUM_THREADS` overrides it
    /// (this is the paper's "matrix generation + compression" phase,
    /// Fig. 11). Per-tile results are independent of the thread count, so
    /// the assembled matrix is bit-identical at any pool size.
    pub fn from_generator<F>(n: usize, tile_size: usize, gen: F, config: &CompressionConfig) -> Self
    where
        F: Fn(usize, usize) -> f64 + Sync,
    {
        assert!(n > 0 && tile_size > 0, "matrix and tile size must be positive");
        let nt = n.div_ceil(tile_size);
        let coords: Vec<(usize, usize)> = (0..nt)
            .flat_map(|i| (0..=i).map(move |j| (i, j)))
            .collect();
        let tiles: Vec<Tile> = coords
            .par_iter()
            .map(|&(i, j)| {
                let r0 = i * tile_size;
                let c0 = j * tile_size;
                let rows = tile_size.min(n - r0);
                let cols = tile_size.min(n - c0);
                let block = Matrix::from_fn(rows, cols, |bi, bj| gen(r0 + bi, c0 + bj));
                if i == j {
                    Tile::Dense(block)
                } else {
                    compress_tile(block, config)
                }
            })
            .collect();
        Self { n, tile_size, nt, tiles }
    }

    /// Build from an explicit dense matrix (testing/small problems).
    pub fn from_dense(a: &Matrix, tile_size: usize, config: &CompressionConfig) -> Self {
        assert_eq!(a.rows(), a.cols(), "TLR matrices are square/symmetric");
        Self::from_generator(a.rows(), tile_size, |i, j| a[(i, j)], config)
    }

    /// Build the matrix **directly in compressed format** via adaptive
    /// cross approximation — the paper's §IX future work: off-diagonal
    /// tiles are assembled from `O(k·b)` kernel evaluations instead of
    /// `b²`, skipping the dense-generation phase that dominates Fig. 11.
    ///
    /// Returns the matrix and the total number of kernel evaluations
    /// spent (compare against `n·(n+1)/2` for the dense path).
    pub fn from_generator_aca<F>(
        n: usize,
        tile_size: usize,
        gen: F,
        config: &CompressionConfig,
    ) -> (Self, usize)
    where
        F: Fn(usize, usize) -> f64 + Sync,
    {
        assert!(n > 0 && tile_size > 0, "matrix and tile size must be positive");
        let nt = n.div_ceil(tile_size);
        let coords: Vec<(usize, usize)> = (0..nt)
            .flat_map(|i| (0..=i).map(move |j| (i, j)))
            .collect();
        let results: Vec<(Tile, usize)> = coords
            .par_iter()
            .map(|&(i, j)| {
                let r0 = i * tile_size;
                let c0 = j * tile_size;
                let rows = tile_size.min(n - r0);
                let cols = tile_size.min(n - c0);
                if i == j {
                    let block = Matrix::from_fn(rows, cols, |bi, bj| gen(r0 + bi, c0 + bj));
                    (Tile::Dense(block), rows * cols)
                } else {
                    let res = crate::aca::aca_compress(
                        rows,
                        cols,
                        |bi, bj| gen(r0 + bi, c0 + bj),
                        config,
                    );
                    (res.tile, res.evaluations)
                }
            })
            .collect();
        let evaluations = results.iter().map(|(_, e)| e).sum();
        let tiles = results.into_iter().map(|(t, _)| t).collect();
        (Self { n, tile_size, nt, tiles }, evaluations)
    }

    /// Matrix dimension.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Tile size `b`.
    pub fn tile_size(&self) -> usize {
        self.tile_size
    }

    /// Number of tile rows/columns `NT`.
    pub fn nt(&self) -> usize {
        self.nt
    }

    /// Row count of tile row `i` (the last row may be short).
    pub fn tile_rows(&self, i: usize) -> usize {
        self.tile_size.min(self.n - i * self.tile_size)
    }

    /// Borrow tile `(i, j)`, `i ≥ j`.
    pub fn tile(&self, i: usize, j: usize) -> &Tile {
        &self.tiles[packed_index(i, j)]
    }

    /// Mutably borrow tile `(i, j)`, `i ≥ j`.
    pub fn tile_mut(&mut self, i: usize, j: usize) -> &mut Tile {
        &mut self.tiles[packed_index(i, j)]
    }

    /// Mutably borrow three distinct tiles at once — the GEMM update
    /// signature `C[m][n] −= A[m][k] · A[n][k]ᵀ` needs `(m,k)`, `(n,k)`
    /// read-only and `(m,n)` mutable; this helper hands out the mutable
    /// one while the caller clones/borrows the read tiles first.
    pub fn take_tile(&mut self, i: usize, j: usize) -> Tile {
        std::mem::replace(&mut self.tiles[packed_index(i, j)], Tile::Null { rows: 0, cols: 0 })
    }

    /// Put a tile back after [`TlrMatrix::take_tile`].
    pub fn put_tile(&mut self, i: usize, j: usize, t: Tile) {
        self.tiles[packed_index(i, j)] = t;
    }

    /// Mean absolute value of the matrix diagonal — the natural scale for
    /// a regularizing shift `A + εI` (diagonal tiles are always dense).
    pub fn diagonal_mean_abs(&self) -> f64 {
        let mut sum = 0.0;
        for k in 0..self.nt {
            if let Tile::Dense(m) = self.tile(k, k) {
                for d in 0..m.rows().min(m.cols()) {
                    sum += m[(d, d)].abs();
                }
            }
        }
        sum / self.n.max(1) as f64
    }

    /// Add `shift` to every diagonal entry (`A ← A + shift·I`), the
    /// classic regularization retry for a borderline-indefinite matrix.
    pub fn shift_diagonal(&mut self, shift: f64) {
        for k in 0..self.nt {
            if let Tile::Dense(m) = self.tile_mut(k, k) {
                for d in 0..m.rows().min(m.cols()) {
                    m[(d, d)] += shift;
                }
            }
        }
    }

    /// Density = non-null off-diagonal lower tiles / total off-diagonal
    /// lower tiles (the paper's metric; sparsity = 1 − density).
    pub fn density(&self) -> f64 {
        if self.nt <= 1 {
            return 1.0;
        }
        let mut nonzero = 0usize;
        let mut total = 0usize;
        for i in 0..self.nt {
            for j in 0..i {
                total += 1;
                if !self.tile(i, j).is_null() {
                    nonzero += 1;
                }
            }
        }
        nonzero as f64 / total as f64
    }

    /// Snapshot of the current rank of every lower tile (diagonal tiles
    /// report `min(rows, cols)`).
    pub fn rank_snapshot(&self) -> RankSnapshot {
        let mut ranks = vec![0usize; self.nt * self.nt];
        for i in 0..self.nt {
            for j in 0..=i {
                ranks[i * self.nt + j] = self.tile(i, j).rank();
            }
        }
        RankSnapshot::new(self.nt, self.tile_size, ranks)
    }

    /// Total storage in `f64` words (the paper's memory-footprint metric).
    pub fn memory_f64(&self) -> usize {
        self.tiles.iter().map(Tile::memory_f64).sum()
    }

    /// Materialize the full symmetric dense matrix (testing / small N).
    pub fn to_dense(&self) -> Matrix {
        let mut out = Matrix::zeros(self.n, self.n);
        for i in 0..self.nt {
            for j in 0..=i {
                let block = self.tile(i, j).to_dense();
                out.set_submatrix(i * self.tile_size, j * self.tile_size, &block);
                if i != j {
                    let bt = block.transpose();
                    out.set_submatrix(j * self.tile_size, i * self.tile_size, &bt);
                }
            }
        }
        out
    }

    /// Materialize only the lower triangle (for factored matrices, where
    /// the upper triangle is not meaningful).
    pub fn to_dense_lower(&self) -> Matrix {
        let mut out = Matrix::zeros(self.n, self.n);
        for i in 0..self.nt {
            for j in 0..=i {
                let block = self.tile(i, j).to_dense();
                out.set_submatrix(i * self.tile_size, j * self.tile_size, &block);
            }
        }
        for j in 0..self.n {
            for i in 0..j {
                out[(i, j)] = 0.0;
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tlr_linalg::norms::relative_diff;

    /// A smooth SPD generator: Gaussian kernel on a 1D grid + diagonal
    /// regularization. Mimics the structure of RBF matrices.
    fn gaussian_gen(n: usize) -> impl Fn(usize, usize) -> f64 + Sync {
        move |i: usize, j: usize| {
            let d = (i as f64 - j as f64) / (n as f64 / 16.0);
            let v = (-d * d).exp();
            if i == j {
                v + 1e-2
            } else {
                v
            }
        }
    }

    #[test]
    fn construction_and_shapes() {
        let n = 100;
        let b = 32; // 100 = 32+32+32+4 → nt = 4, last tile 4
        let cfg = CompressionConfig::with_accuracy(1e-6);
        let m = TlrMatrix::from_generator(n, b, gaussian_gen(n), &cfg);
        assert_eq!(m.nt(), 4);
        assert_eq!(m.tile_rows(0), 32);
        assert_eq!(m.tile_rows(3), 4);
        assert_eq!(m.tile(3, 3).rows(), 4);
        assert_eq!(m.tile(3, 0).rows(), 4);
        assert_eq!(m.tile(3, 0).cols(), 32);
    }

    #[test]
    fn reconstruction_error_within_threshold() {
        let n = 96;
        let b = 24;
        let gen = gaussian_gen(n);
        let dense = Matrix::from_fn(n, n, &gen);
        for acc in [1e-3, 1e-6, 1e-9] {
            let cfg = CompressionConfig::with_accuracy(acc);
            let m = TlrMatrix::from_dense(&dense, b, &cfg);
            let err = relative_diff(&m.to_dense(), &dense);
            // NT² tiles each at most `acc` off in Frobenius norm.
            let bound = acc * (m.nt() * m.nt()) as f64;
            assert!(err * tlr_linalg::frobenius_norm(&dense) <= bound.max(1e-12) * 10.0,
                "acc={acc} err={err}");
        }
    }

    #[test]
    fn far_tiles_compress_harder() {
        let n = 128;
        let b = 16;
        let cfg = CompressionConfig::with_accuracy(1e-6);
        let m = TlrMatrix::from_generator(n, b, gaussian_gen(n), &cfg);
        // rank decays with distance to the diagonal
        let near = m.tile(1, 0).rank();
        let far = m.tile(7, 0).rank();
        assert!(far <= near, "near={near} far={far}");
        assert!(m.tile(7, 0).is_null(), "far tile should vanish");
    }

    #[test]
    fn density_between_zero_and_one() {
        let n = 128;
        let cfg = CompressionConfig::with_accuracy(1e-6);
        let m = TlrMatrix::from_generator(n, 16, gaussian_gen(n), &cfg);
        let d = m.density();
        assert!(d > 0.0 && d < 1.0, "density {d}");
    }

    #[test]
    fn snapshot_matches_tiles() {
        let n = 64;
        let cfg = CompressionConfig::with_accuracy(1e-6);
        let m = TlrMatrix::from_generator(n, 16, gaussian_gen(n), &cfg);
        let snap = m.rank_snapshot();
        assert_eq!(snap.rank(2, 1), m.tile(2, 1).rank());
        assert_eq!(snap.rank(3, 3), 16);
    }

    #[test]
    fn take_put_roundtrip() {
        let n = 64;
        let cfg = CompressionConfig::with_accuracy(1e-6);
        let mut m = TlrMatrix::from_generator(n, 16, gaussian_gen(n), &cfg);
        let before = m.tile(2, 1).to_dense();
        let t = m.take_tile(2, 1);
        m.put_tile(2, 1, t);
        assert!(relative_diff(&m.tile(2, 1).to_dense(), &before) < 1e-15);
    }

    #[test]
    fn memory_less_than_dense() {
        let n = 256;
        let cfg = CompressionConfig::with_accuracy(1e-5);
        let m = TlrMatrix::from_generator(n, 32, gaussian_gen(n), &cfg);
        // lower-triangle dense storage would be ~ n(n+1)/2
        assert!(m.memory_f64() < n * (n + 1) / 2);
    }
}

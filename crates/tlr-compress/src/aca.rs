//! Adaptive Cross Approximation: build low-rank tiles **directly** from a
//! kernel evaluation function, without ever forming the dense tile.
//!
//! This implements the paper's stated future work (§IX: "we plan to
//! generate the matrix directly in compressed format (ref. 38 of the paper), without having
//! to generate the full dense structure") — after the factorization
//! optimizations, the dense-generation + compression phase dominates
//! (Fig. 11), and ACA removes it: a rank-`k` tile costs `O(k·(m + n))`
//! kernel evaluations instead of `m·n`.
//!
//! ACA with partial pivoting (Bebendorf): repeatedly pick a pivot entry of
//! the current residual, and add the crossing row/column as a rank-1
//! term. The result is recompressed (QR + SVD) into the canonical
//! orthonormal-`U` form so downstream kernels see exactly the same tile
//! format as threshold compression produces.

use crate::compress::CompressionConfig;
use crate::kernels::subtract_lowrank;
use crate::tile::Tile;
use tlr_linalg::Matrix;

/// Outcome of one ACA run, including the evaluation count (the quantity
/// the optimization exists to shrink).
pub struct AcaResult {
    /// The assembled tile (Null / LowRank / Dense per the usual rules).
    pub tile: Tile,
    /// Number of kernel evaluations spent.
    pub evaluations: usize,
}

/// Safety cap on ACA iterations relative to `min(m, n)`.
const MAX_RANK_FRACTION: f64 = 0.5;

/// Consecutive non-decreasing cross-term norms tolerated before ACA
/// declares the pivot sequence stagnant and falls back to dense
/// evaluation. On healthy low-rank blocks the term norms decay roughly
/// geometrically; a flat or growing sequence means partial pivoting is
/// chasing noise and the accuracy target will not be met.
const STAGNATION_STRIKES: usize = 3;

/// Approximate an `rows × cols` kernel block `A[i][j] = eval(i, j)` at the
/// configured accuracy using ACA with partial pivoting.
///
/// `eval` receives *local* indices (`0..rows`, `0..cols`); the caller
/// closes over the global offsets. Returns `Null` when the first pivot
/// row is already below threshold, `Dense` when the block refuses to
/// compress (rank would exceed the pay-off point — the block is then
/// evaluated densely, costing the full `m·n`).
pub fn aca_compress<F>(rows: usize, cols: usize, eval: F, config: &CompressionConfig) -> AcaResult
where
    F: Fn(usize, usize) -> f64,
{
    let mut evaluations = 0usize;
    let mut eval_counted = |i: usize, j: usize| -> f64 {
        evaluations += 1;
        eval(i, j)
    };

    if rows == 0 || cols == 0 {
        return AcaResult { tile: Tile::Null { rows, cols }, evaluations: 0 };
    }

    let max_rank = ((rows.min(cols) as f64 * MAX_RANK_FRACTION) as usize)
        .clamp(1, config.max_rank.min(rows.min(cols)));

    // Cross vectors: A ≈ Σ_k u_k · v_kᵀ.
    let mut us: Vec<Vec<f64>> = Vec::new();
    let mut vs: Vec<Vec<f64>> = Vec::new();
    let mut row_used = vec![false; rows];
    let mut col_used = vec![false; cols];

    // Partial pivoting can stall on blocks whose mass lies away from the
    // probed rows (cluster-pair tiles are zero in whole corners). Before
    // declaring convergence we probe up to MAX_PROBES rows spread evenly
    // across the block; a truly-null tile therefore costs only
    // MAX_PROBES·cols evaluations, while no populated region is missed.
    const MAX_PROBES: usize = 8;
    let probe_stride = (rows / MAX_PROBES).max(1);
    let mut probes_left = MAX_PROBES;
    let mut next_probe = 0usize;
    let take_probe_row = |row_used: &[bool], next_probe: &mut usize| -> Option<usize> {
        // strided sweep over not-yet-used rows
        for _ in 0..rows {
            let cand = *next_probe % rows;
            *next_probe = (*next_probe + probe_stride + 1) % rows.max(1);
            if !row_used[cand] {
                return Some(cand);
            }
        }
        None
    };

    let mut next_row = 0usize;
    // Stagnation detector: norms of accepted cross terms must (mostly)
    // decrease. `strikes` counts consecutive non-decreasing terms.
    let mut prev_term_norm = f64::INFINITY;
    let mut strikes = 0usize;
    loop {
        if us.len() >= max_rank {
            // Not compressible at this accuracy: fall back to dense
            // evaluation of the whole block.
            let dense = Matrix::from_fn(rows, cols, &eval);
            return AcaResult {
                tile: crate::compress::compress_tile(dense, config),
                evaluations: evaluations + rows * cols,
            };
        }
        // Residual row at `next_row`: r = A[next_row, :] − Σ u_k[next_row]·v_k
        let mut r: Vec<f64> = (0..cols).map(|j| eval_counted(next_row, j)).collect();
        for (u, v) in us.iter().zip(&vs) {
            let w = u[next_row];
            if w != 0.0 {
                for (rj, vj) in r.iter_mut().zip(v) {
                    *rj -= w * vj;
                }
            }
        }
        row_used[next_row] = true;
        // Pivot column: largest residual entry in an unused column.
        let mut jstar = None;
        let mut best = 0.0_f64;
        for (j, &rj) in r.iter().enumerate() {
            if !col_used[j] && rj.abs() > best {
                best = rj.abs();
                jstar = Some(j);
            }
        }
        // A zero residual row (or no unused column left) does not prove
        // the whole block converged — probe other rows before giving up.
        let Some(jstar) = jstar else {
            if probes_left == 0 {
                break;
            }
            probes_left -= 1;
            match take_probe_row(&row_used, &mut next_probe) {
                Some(rp) => {
                    next_row = rp;
                    continue;
                }
                None => break,
            }
        };
        let _ = best;
        let pivot = r[jstar];
        let v: Vec<f64> = r.iter().map(|&x| x / pivot).collect();
        // Residual column at jstar.
        let mut u: Vec<f64> = (0..rows).map(|i| eval_counted(i, jstar)).collect();
        for (uk, vk) in us.iter().zip(&vs) {
            let w = vk[jstar];
            if w != 0.0 {
                for (ui, uki) in u.iter_mut().zip(uk) {
                    *ui -= w * uki;
                }
            }
        }
        col_used[jstar] = true;

        let unorm = u.iter().map(|x| x * x).sum::<f64>().sqrt();
        let vnorm = v.iter().map(|x| x * x).sum::<f64>().sqrt();
        let term_norm = unorm * vnorm;
        // The cross-term norm only estimates the true residual; stop one
        // order below the requested threshold and let the final QR+SVD
        // recompression truncate back to it exactly.
        if term_norm <= 0.1 * config.accuracy {
            // This cross is below the threshold — but other regions of
            // the block may still hold mass: probe before stopping.
            if probes_left == 0 {
                break;
            }
            probes_left -= 1;
            match take_probe_row(&row_used, &mut next_probe) {
                Some(rp) => {
                    next_row = rp;
                    continue;
                }
                None => break,
            }
        }
        // Stagnation: a residual that refuses to shrink across several
        // pivots means the block is effectively full-rank at this
        // accuracy (or the pivot walk is stuck in a noise floor). Paying
        // for more crosses only to hit the rank cap — or worse, to
        // converge to a wrong answer — is strictly dominated by the
        // dense fallback.
        if term_norm >= prev_term_norm {
            strikes += 1;
            if strikes >= STAGNATION_STRIKES {
                let dense = Matrix::from_fn(rows, cols, &eval);
                return AcaResult {
                    tile: crate::compress::compress_tile(dense, config),
                    evaluations: evaluations + rows * cols,
                };
            }
        } else {
            strikes = 0;
        }
        prev_term_norm = term_norm;

        probes_left = MAX_PROBES; // progress made: reset the probe budget
        us.push(u);
        vs.push(v);

        // Next pivot row: the largest entry of the just-added column term
        // in an unused row (standard partial pivoting heuristic).
        let last_u = us.last().unwrap();
        let mut best_row = None;
        let mut best_val = 0.0;
        for (i, &ui) in last_u.iter().enumerate() {
            if !row_used[i] && ui.abs() > best_val {
                best_val = ui.abs();
                best_row = Some(i);
            }
        }
        match best_row {
            Some(i) => next_row = i,
            None => break, // all rows used
        }
    }

    // ----------------------------------------------------------------
    // Verification sampling: cross pivoting can miss "needle" patches —
    // a handful of large entries between otherwise-uncoupled clusters
    // (sharp kernels produce them). Sample O(rows + cols) random entries
    // of the residual; any sample above the threshold triggers the dense
    // fallback. This bounds the failure probability at negligible cost.
    // ----------------------------------------------------------------
    {
        // Cap so small tiles never pay more than a fraction of dense.
        let samples = (8 * (rows + cols)).min(rows * cols / 4);
        let mut state: u64 = 0x9E3779B97F4A7C15 ^ ((rows * 31 + cols) as u64);
        let mut bad = false;
        for _ in 0..samples {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let i = ((state >> 33) as usize) % rows;
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let j = ((state >> 33) as usize) % cols;
            let mut approx = 0.0;
            for (u, v) in us.iter().zip(&vs) {
                approx += u[i] * v[j];
            }
            if (eval_counted(i, j) - approx).abs() > config.accuracy {
                bad = true;
                break;
            }
        }
        if bad {
            let dense = Matrix::from_fn(rows, cols, &eval);
            return AcaResult {
                tile: crate::compress::compress_tile(dense, config),
                evaluations: evaluations + rows * cols,
            };
        }
    }

    if us.is_empty() {
        return AcaResult { tile: Tile::Null { rows, cols }, evaluations };
    }

    // Pack the cross vectors into factor matrices and recompress into the
    // canonical truncated form via the shared QR+SVD path.
    let k = us.len();
    let mut u_mat = Matrix::zeros(rows, k);
    let mut v_mat = Matrix::zeros(cols, k);
    for (p, (u, v)) in us.iter().zip(&vs).enumerate() {
        u_mat.col_mut(p).copy_from_slice(u);
        v_mat.col_mut(p).copy_from_slice(v);
    }
    // subtract_lowrank(-U, V) into a null tile yields the recompressed +UVᵀ.
    let mut tile = Tile::Null { rows, cols };
    let mut neg_u = u_mat;
    neg_u.scale(-1.0);
    subtract_lowrank(&mut tile, &neg_u, &v_mat, config);
    AcaResult { tile, evaluations }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tlr_linalg::norms::{frobenius_norm, relative_diff};

    fn gaussian_eval(b: usize, shift: f64) -> impl Fn(usize, usize) -> f64 {
        move |i: usize, j: usize| {
            let d = (i as f64 - j as f64 + shift) / (b as f64 / 3.0);
            (-d * d).exp()
        }
    }

    #[test]
    fn aca_matches_dense_compression() {
        let b = 64;
        let eval = gaussian_eval(b, 80.0);
        let cfg = CompressionConfig::with_accuracy(1e-6);
        let dense = Matrix::from_fn(b, b, &eval);
        let res = aca_compress(b, b, &eval, &cfg);
        let err = {
            let mut diff = res.tile.to_dense();
            diff.axpy(-1.0, &dense);
            frobenius_norm(&diff)
        };
        assert!(err <= 20.0 * 1e-6, "ACA error {err}");
        assert!(res.tile.rank() > 0 && res.tile.rank() < b / 2);
    }

    #[test]
    fn aca_saves_evaluations() {
        let b = 96;
        let eval = gaussian_eval(b, 120.0);
        let cfg = CompressionConfig::with_accuracy(1e-5);
        let res = aca_compress(b, b, &eval, &cfg);
        assert!(
            res.evaluations < 3 * b * b / 4,
            "ACA used {} of {} evaluations",
            res.evaluations,
            b * b
        );
        assert!(!res.tile.is_null());
    }

    #[test]
    fn aca_null_for_tiny_blocks() {
        let cfg = CompressionConfig::with_accuracy(1e-4);
        let res = aca_compress(32, 32, |_, _| 1e-12, &cfg);
        assert!(res.tile.is_null());
        // probe rows + verification samples only — below the dense 32·32
        assert!(res.evaluations < 32 * 32, "evals {}", res.evaluations);
    }

    #[test]
    fn aca_dense_fallback_for_incompressible() {
        // A pseudo-random block has full rank: ACA must fall back.
        let eval = |i: usize, j: usize| {
            let mut s = ((i * 131 + j * 7919) as u64 | 1).wrapping_mul(6364136223846793005);
            s ^= s >> 33;
            s = s.wrapping_mul(0xFF51AFD7ED558CCD);
            s ^= s >> 33;
            (s as f64 / u64::MAX as f64) - 0.5
        };
        let cfg = CompressionConfig::with_accuracy(1e-10);
        let res = aca_compress(24, 24, eval, &cfg);
        assert_eq!(res.tile.format(), crate::tile::TileFormat::Dense);
    }

    #[test]
    fn aca_stagnation_falls_back_dense_early() {
        // White-noise block: cross-term norms never decay, so the
        // 3-strike stagnation detector must bail to dense long before
        // the rank cap is reached.
        let b = 64;
        let eval = |i: usize, j: usize| {
            let mut s =
                ((i * 2654435761 + j * 40503 + 17) as u64 | 1).wrapping_mul(6364136223846793005);
            s ^= s >> 33;
            s = s.wrapping_mul(0xFF51AFD7ED558CCD);
            s ^= s >> 33;
            (s as f64 / u64::MAX as f64) - 0.5
        };
        let cfg = CompressionConfig::with_accuracy(1e-12);
        let res = aca_compress(b, b, eval, &cfg);
        assert_eq!(res.tile.format(), crate::tile::TileFormat::Dense);
        // Riding to the rank cap would cost ≈ (b/2)·2b + b² = 2b²
        // evaluations; stagnation stops after a handful of crosses.
        assert!(res.evaluations < 3 * b * b / 2, "evals {}", res.evaluations);
    }

    #[test]
    fn aca_rectangular() {
        let eval = |i: usize, j: usize| {
            let d = (i as f64 / 40.0 - j as f64 / 20.0 + 2.0) / 0.7;
            (-d * d).exp()
        };
        let cfg = CompressionConfig::with_accuracy(1e-7);
        let dense = Matrix::from_fn(40, 20, eval);
        let res = aca_compress(40, 20, eval, &cfg);
        assert!(relative_diff(&res.tile.to_dense(), &dense) < 1e-4);
    }

    #[test]
    fn aca_empty() {
        let cfg = CompressionConfig::default();
        let res = aca_compress(0, 8, |_, _| 1.0, &cfg);
        assert!(res.tile.is_null());
        assert_eq!(res.evaluations, 0);
    }

    #[test]
    fn aca_debug_block_structured() {
        let b = 64;
        let eval = |i: usize, j: usize| {
            if i >= 40 && j < 24 {
                let d = ((i as f64 - 52.0).powi(2) + (j as f64 - 12.0).powi(2)) / 50.0;
                (-d).exp()
            } else { 0.0 }
        };
        let cfg = CompressionConfig::with_accuracy(1e-6);
        let dense = Matrix::from_fn(b, b, eval);
        let res = aca_compress(b, b, eval, &cfg);
        let mut diff = res.tile.to_dense();
        diff.axpy(-1.0, &dense);
        let err = frobenius_norm(&diff);
        println!("err={err:.3e} rank={} evals={}", res.tile.rank(), res.evaluations);
        assert!(err < 1e-4, "err {err}");
    }
}

//! Rank snapshots, statistics, heatmaps, and the synthetic rank model.
//!
//! A [`RankSnapshot`] is the `NT × NT` array of tile ranks at one moment of
//! the application — "initial" (after compression) or "final" (after the
//! factorization), exactly the two states plotted in the paper's Fig. 1.
//!
//! [`SyntheticRankModel`] generates snapshots with the same qualitative
//! structure at *paper scale* (NT in the hundreds, matrix sizes in the tens
//! of millions) where actually generating and compressing the matrix is not
//! feasible on this machine. The model is calibrated against measured
//! small-scale RBF compressions (see `crates/bench/src/bin/fig01_rank_heatmap.rs`).

use serde::{Deserialize, Serialize};

/// Tile ranks of a lower-triangular TLR matrix at one point in time.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RankSnapshot {
    nt: usize,
    tile_size: usize,
    /// Row-major `nt × nt`; only entries with `i ≥ j` are meaningful.
    ranks: Vec<usize>,
}

/// Aggregate statistics of the off-diagonal ranks (the numbers the paper
/// prints above each heatmap in Fig. 1).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RankStats {
    /// Largest off-diagonal tile rank.
    pub max: usize,
    /// Mean rank over **non-null** off-diagonal tiles (paper convention).
    pub avg_nonzero: f64,
    /// Smallest non-zero off-diagonal tile rank (0 when all tiles null).
    pub min_nonzero: usize,
    /// Fraction of non-null off-diagonal tiles.
    pub density: f64,
}

impl RankSnapshot {
    /// Wrap a row-major `nt × nt` rank array.
    pub fn new(nt: usize, tile_size: usize, ranks: Vec<usize>) -> Self {
        assert_eq!(ranks.len(), nt * nt, "rank array must be nt × nt");
        Self { nt, tile_size, ranks }
    }

    /// Number of tile rows/columns.
    pub fn nt(&self) -> usize {
        self.nt
    }

    /// Tile size the ranks refer to.
    pub fn tile_size(&self) -> usize {
        self.tile_size
    }

    /// Rank of tile `(i, j)`, `i ≥ j`.
    pub fn rank(&self, i: usize, j: usize) -> usize {
        debug_assert!(i >= j);
        self.ranks[i * self.nt + j]
    }

    /// Set the rank of tile `(i, j)`.
    pub fn set_rank(&mut self, i: usize, j: usize, r: usize) {
        debug_assert!(i >= j);
        self.ranks[i * self.nt + j] = r;
    }

    /// The flat rank array in the `rank[k·NT + m]` layout of the paper's
    /// Algorithm 1 (row-major over `(i, j)`).
    pub fn as_flat(&self) -> &[usize] {
        &self.ranks
    }

    /// `true` when tile `(i, j)` is null.
    pub fn is_null(&self, i: usize, j: usize) -> bool {
        self.rank(i, j) == 0
    }

    /// Density over off-diagonal lower tiles.
    pub fn density(&self) -> f64 {
        if self.nt <= 1 {
            return 1.0;
        }
        let mut nonzero = 0usize;
        let mut total = 0usize;
        for i in 0..self.nt {
            for j in 0..i {
                total += 1;
                if self.rank(i, j) > 0 {
                    nonzero += 1;
                }
            }
        }
        nonzero as f64 / total as f64
    }

    /// Aggregate off-diagonal rank statistics.
    pub fn stats(&self) -> RankStats {
        let mut max = 0usize;
        let mut min_nonzero = usize::MAX;
        let mut sum = 0usize;
        let mut nonzero = 0usize;
        let mut total = 0usize;
        for i in 0..self.nt {
            for j in 0..i {
                let r = self.rank(i, j);
                total += 1;
                if r > 0 {
                    nonzero += 1;
                    sum += r;
                    max = max.max(r);
                    min_nonzero = min_nonzero.min(r);
                }
            }
        }
        RankStats {
            max,
            avg_nonzero: if nonzero > 0 { sum as f64 / nonzero as f64 } else { 0.0 },
            min_nonzero: if min_nonzero == usize::MAX { 0 } else { min_nonzero },
            density: if total > 0 { nonzero as f64 / total as f64 } else { 1.0 },
        }
    }

    /// Serialize to a simple line-oriented text format
    /// (`nt tile_size` header, then one row of ranks per tile row) —
    /// lets a measured compression at laptop scale be fed back into the
    /// simulator on another machine without a JSON dependency.
    pub fn to_text(&self) -> String {
        let mut out = format!("{} {}\n", self.nt, self.tile_size);
        for i in 0..self.nt {
            let row: Vec<String> =
                (0..self.nt).map(|j| self.ranks[i * self.nt + j].to_string()).collect();
            out.push_str(&row.join(" "));
            out.push('\n');
        }
        out
    }

    /// Parse the [`RankSnapshot::to_text`] format.
    pub fn from_text(text: &str) -> Result<Self, String> {
        let mut lines = text.lines();
        let header = lines.next().ok_or("empty snapshot text")?;
        let mut hp = header.split_whitespace();
        let nt: usize = hp
            .next()
            .and_then(|v| v.parse().ok())
            .ok_or("bad NT in header")?;
        let tile_size: usize = hp
            .next()
            .and_then(|v| v.parse().ok())
            .ok_or("bad tile size in header")?;
        let mut ranks = Vec::with_capacity(nt * nt);
        for (i, line) in lines.take(nt).enumerate() {
            let row: Result<Vec<usize>, _> =
                line.split_whitespace().map(str::parse::<usize>).collect();
            let row = row.map_err(|e| format!("row {i}: {e}"))?;
            if row.len() != nt {
                return Err(format!("row {i}: expected {nt} ranks, got {}", row.len()));
            }
            ranks.extend(row);
        }
        if ranks.len() != nt * nt {
            return Err(format!("expected {} rows, got {}", nt, ranks.len() / nt.max(1)));
        }
        Ok(Self::new(nt, tile_size, ranks))
    }

    /// Render an ASCII heatmap of the lower triangle (`.` = null,
    /// `1..9a..z#` = increasing rank relative to the max), the textual
    /// equivalent of Fig. 1.
    pub fn heatmap(&self) -> String {
        let stats = self.stats();
        let maxr = stats.max.max(1) as f64;
        let glyphs: &[u8] = b"123456789abcdefghijklmnopqrstuvwxyz#";
        let mut out = String::with_capacity(self.nt * (self.nt + 1));
        for i in 0..self.nt {
            for j in 0..=i {
                if i == j {
                    out.push('D');
                } else {
                    let r = self.rank(i, j);
                    if r == 0 {
                        out.push('.');
                    } else {
                        let level =
                            ((r as f64 / maxr) * (glyphs.len() - 1) as f64).round() as usize;
                        out.push(glyphs[level.min(glyphs.len() - 1)] as char);
                    }
                }
            }
            out.push('\n');
        }
        out
    }
}

/// A calibrated synthetic rank model for RBF-type matrices.
///
/// Structure reproduced (per the paper's Fig. 1 and §V):
/// * ranks fall off sharply with tile distance to the diagonal,
/// * a shape-parameter-controlled cutoff beyond which tiles are null
///   (small shape parameter → very sparse, large → dense),
/// * tighter accuracy thresholds raise all ranks.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct SyntheticRankModel {
    /// Number of tile rows/columns.
    pub nt: usize,
    /// Tile size `b`.
    pub tile_size: usize,
    /// Rank of the tiles adjacent to the diagonal.
    pub near_rank: usize,
    /// Exponential decay length (in tile-index distance).
    pub decay: f64,
    /// Tiles farther than this distance from the diagonal are null.
    pub cutoff: usize,
}

impl SyntheticRankModel {
    /// Calibrate the model from application parameters.
    ///
    /// * `shape` — the Gaussian RBF shape parameter δ (paper range
    ///   `1e-4 … 5e-2`); controls the null-tile cutoff (density).
    /// * `accuracy` — compression threshold (paper range `1e-4 … 1e-9`);
    ///   controls the near-diagonal rank level.
    ///
    /// The constants were fitted against measured compressions of the
    /// synthetic virus RBF matrices at laptop scale (N ≤ 16k) and
    /// reproduce the documented qualitative behaviour at any NT.
    pub fn from_application(nt: usize, tile_size: usize, shape: f64, accuracy: f64) -> Self {
        // Density grows roughly logarithmically with the shape parameter
        // over the studied range; clamp to [0.03, 1].
        let lo = 8e-5_f64.ln();
        let hi = 3e-2_f64.ln();
        let density = ((shape.max(1e-6).ln() - lo) / (hi - lo)).clamp(0.03, 1.0);
        // Solve density = (cutoff·nt − cutoff²/2) / (nt²/2) for the cutoff.
        let ntf = nt as f64;
        let disc = (1.0 - density).max(0.0).sqrt();
        let cutoff = ((1.0 - disc) * ntf).ceil().max(1.0) as usize;
        // Near-diagonal rank scales with √b (smooth-kernel tiles) and with
        // the number of accuracy digits. The shape parameter modulates it:
        // ranks first grow as correlations reach further, then recede once
        // correlations smear across the whole domain (paper §VIII-B:
        // "labeled ranks get higher with the shape parameter increase, but
        // then eventually decrease").
        let digits = accuracy.max(1e-16).log10().abs();
        let shape_factor = (0.5 + 2.2 * density * (1.5 - density)).clamp(0.5, 1.9);
        let near_rank = ((tile_size as f64).sqrt() * digits / 2.0 * shape_factor)
            .round()
            .max(2.0) as usize;
        let near_rank = near_rank.min(tile_size / 2);
        // Decay length: ranks drop sharply within a few tiles of the
        // diagonal (the paper's "sharp decrease in the ranks of the tiles
        // with the distance to the diagonal"), then level off at a small
        // floor rank out to the cutoff. The sharpness — big expensive
        // tiles hugging the diagonal, cheap rank-1..3 tiles everywhere
        // else — is exactly what breaks the load balance of rectangular
        // block-cyclic grids (§VII-B).
        let decay = 3.0;
        Self { nt, tile_size, near_rank, decay, cutoff }
    }

    /// Rank of tile `(i, j)` (`i > j`); 0 beyond the cutoff.
    pub fn rank(&self, i: usize, j: usize) -> usize {
        debug_assert!(i > j);
        let d = i - j;
        if d > self.cutoff {
            return 0;
        }
        let floor = (self.near_rank / 16).max(1) as f64;
        let r = (self.near_rank as f64 * (-((d - 1) as f64) / self.decay).exp()).max(floor);
        (r.round() as usize).clamp(1, self.tile_size)
    }

    /// Generate the full initial snapshot (diagonal tiles report full rank).
    pub fn snapshot(&self) -> RankSnapshot {
        let mut ranks = vec![0usize; self.nt * self.nt];
        for i in 0..self.nt {
            ranks[i * self.nt + i] = self.tile_size;
            for j in 0..i {
                ranks[i * self.nt + j] = self.rank(i, j);
            }
        }
        RankSnapshot::new(self.nt, self.tile_size, ranks)
    }
}

/// Running statistics of recompression rank evolution: every GEMM-update
/// recompression feeds one `(stacked input rank, truncated output rank)`
/// pair, the histogram of which is the tuning signal H2OPUS-TLR
/// (arXiv:2108.11932) builds its adaptive-rank decisions on. Null results
/// (everything truncated away) and dense fallbacks (low rank stopped
/// paying off) are tracked separately because they change the tile
/// *format*, not just the rank.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RankEvolution {
    /// Recompressions observed.
    events: u64,
    /// Sum of stacked input ranks (`k_c + k_prod` before truncation).
    sum_in: u64,
    /// Sum of kept output ranks.
    sum_out: u64,
    /// Largest stacked input rank seen.
    max_in: usize,
    /// Largest kept output rank seen.
    max_out: usize,
    /// `hist[k]` = recompressions whose output rank was `k`.
    hist: Vec<u64>,
    /// Recompressions that truncated to rank 0 (tile became Null).
    nulls: u64,
    /// Recompressions whose result fell back to Dense format.
    denses: u64,
}

impl RankEvolution {
    /// Record one recompression: `k_in` stacked columns in, `k_out` kept.
    pub fn record(&mut self, k_in: usize, k_out: usize) {
        self.events += 1;
        self.sum_in += k_in as u64;
        self.sum_out += k_out as u64;
        self.max_in = self.max_in.max(k_in);
        self.max_out = self.max_out.max(k_out);
        if self.hist.len() <= k_out {
            self.hist.resize(k_out + 1, 0);
        }
        self.hist[k_out] += 1;
    }

    /// Record a recompression that truncated everything away (Null tile).
    pub fn record_null(&mut self, k_in: usize) {
        self.record(k_in, 0);
        self.nulls += 1;
    }

    /// Record a recompression whose rank-`k_out` result was converted to
    /// Dense because low rank stopped paying off.
    pub fn record_dense(&mut self, k_in: usize, k_out: usize) {
        self.record(k_in, k_out);
        self.denses += 1;
    }

    /// Fold another log into this one (merging per-worker logs).
    pub fn merge(&mut self, other: &RankEvolution) {
        self.events += other.events;
        self.sum_in += other.sum_in;
        self.sum_out += other.sum_out;
        self.max_in = self.max_in.max(other.max_in);
        self.max_out = self.max_out.max(other.max_out);
        if self.hist.len() < other.hist.len() {
            self.hist.resize(other.hist.len(), 0);
        }
        for (k, &c) in other.hist.iter().enumerate() {
            self.hist[k] += c;
        }
        self.nulls += other.nulls;
        self.denses += other.denses;
    }

    /// Recompressions observed.
    pub fn events(&self) -> u64 {
        self.events
    }

    /// Mean stacked input rank (0 when empty).
    pub fn mean_in(&self) -> f64 {
        if self.events == 0 { 0.0 } else { self.sum_in as f64 / self.events as f64 }
    }

    /// Mean kept output rank (0 when empty).
    pub fn mean_out(&self) -> f64 {
        if self.events == 0 { 0.0 } else { self.sum_out as f64 / self.events as f64 }
    }

    /// Largest stacked input rank seen.
    pub fn max_in(&self) -> usize {
        self.max_in
    }

    /// Largest kept output rank seen.
    pub fn max_out(&self) -> usize {
        self.max_out
    }

    /// Tiles that truncated to Null.
    pub fn nulls(&self) -> u64 {
        self.nulls
    }

    /// Results that fell back to Dense format.
    pub fn denses(&self) -> u64 {
        self.denses
    }

    /// Output-rank histogram: `histogram()[k]` = recompressions kept at
    /// rank `k`.
    pub fn histogram(&self) -> &[u64] {
        &self.hist
    }

    /// ASCII rendering of the output-rank histogram (binned to at most
    /// `max_bins` rows, `#`-bar scaled to the largest bin).
    pub fn render(&self, max_bins: usize) -> String {
        if self.events == 0 {
            return "rank evolution: no recompressions recorded\n".to_string();
        }
        let mut out = format!(
            "rank evolution: {} recompressions, mean {:.1} -> {:.1}, max {} -> {}, \
             {} null, {} dense\n",
            self.events,
            self.mean_in(),
            self.mean_out(),
            self.max_in,
            self.max_out,
            self.nulls,
            self.denses
        );
        let nbins = max_bins.max(1).min(self.hist.len());
        let per_bin = self.hist.len().div_ceil(nbins);
        let mut bins: Vec<(usize, usize, u64)> = Vec::with_capacity(nbins);
        for b in (0..self.hist.len()).step_by(per_bin) {
            let hi = (b + per_bin).min(self.hist.len());
            bins.push((b, hi - 1, self.hist[b..hi].iter().sum()));
        }
        let peak = bins.iter().map(|&(_, _, c)| c).max().unwrap_or(1).max(1);
        for (lo, hi, count) in bins {
            let bar = ((count * 40).div_ceil(peak)) as usize;
            let label =
                if lo == hi { format!("{lo:>4}") } else { format!("{lo:>4}-{hi:<4}") };
            out.push_str(&format!("  k={label:<9} {count:>8} {}\n", "#".repeat(bar)));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap_3x3() -> RankSnapshot {
        // ranks: diag full(4), (1,0)=3, (2,0)=0, (2,1)=2
        RankSnapshot::new(3, 4, vec![4, 0, 0, 3, 4, 0, 0, 2, 4])
    }

    #[test]
    fn stats_basic() {
        let s = snap_3x3().stats();
        assert_eq!(s.max, 3);
        assert_eq!(s.min_nonzero, 2);
        assert!((s.avg_nonzero - 2.5).abs() < 1e-12);
        assert!((s.density - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn heatmap_renders() {
        let h = snap_3x3().heatmap();
        let lines: Vec<&str> = h.lines().collect();
        assert_eq!(lines.len(), 3);
        assert_eq!(lines[0], "D");
        assert!(lines[2].starts_with('.'), "null tile renders as dot: {h}");
    }

    #[test]
    fn all_null_stats() {
        let s = RankSnapshot::new(3, 4, vec![4, 0, 0, 0, 4, 0, 0, 0, 4]).stats();
        assert_eq!(s.max, 0);
        assert_eq!(s.min_nonzero, 0);
        assert_eq!(s.avg_nonzero, 0.0);
        assert_eq!(s.density, 0.0);
    }

    #[test]
    fn synthetic_density_grows_with_shape() {
        let nt = 64;
        let d_sparse = SyntheticRankModel::from_application(nt, 512, 1e-4, 1e-4)
            .snapshot()
            .density();
        let d_mid = SyntheticRankModel::from_application(nt, 512, 2e-3, 1e-4)
            .snapshot()
            .density();
        let d_dense = SyntheticRankModel::from_application(nt, 512, 5e-2, 1e-4)
            .snapshot()
            .density();
        assert!(d_sparse < d_mid && d_mid < d_dense, "{d_sparse} {d_mid} {d_dense}");
        assert!(d_dense > 0.9);
        assert!(d_sparse < 0.2);
    }

    #[test]
    fn synthetic_rank_decays_with_distance() {
        let m = SyntheticRankModel::from_application(64, 512, 1e-2, 1e-6);
        let near = m.rank(1, 0);
        let mid = m.rank(10, 0);
        assert!(near >= mid, "near={near} mid={mid}");
        assert_eq!(m.rank(m.cutoff + 1, 0), 0);
    }

    #[test]
    fn synthetic_rank_rises_then_falls_with_shape() {
        // §VIII-B: ranks grow with the shape parameter, then eventually
        // decrease as correlations scatter across the domain.
        let r = |shape: f64| {
            SyntheticRankModel::from_application(64, 1024, shape, 1e-4).near_rank
        };
        let sparse = r(1e-4);
        let mid = r(3e-3);
        let dense = r(5e-2);
        assert!(mid > sparse, "rank should rise with shape: {sparse} -> {mid}");
        assert!(dense <= mid, "rank should recede at extreme shape: {mid} -> {dense}");
    }

    #[test]
    fn synthetic_rank_grows_with_accuracy() {
        let loose = SyntheticRankModel::from_application(32, 1024, 1e-2, 1e-4).near_rank;
        let tight = SyntheticRankModel::from_application(32, 1024, 1e-2, 1e-9).near_rank;
        assert!(tight > loose);
    }

    #[test]
    fn snapshot_diag_full_rank() {
        let m = SyntheticRankModel::from_application(8, 256, 1e-3, 1e-6);
        let s = m.snapshot();
        assert_eq!(s.rank(3, 3), 256);
        assert_eq!(s.nt(), 8);
    }

    #[test]
    fn text_roundtrip() {
        let s = snap_3x3();
        let text = s.to_text();
        let back = RankSnapshot::from_text(&text).expect("roundtrip must parse");
        assert_eq!(back.nt(), 3);
        assert_eq!(back.tile_size(), 4);
        for i in 0..3 {
            for j in 0..=i {
                assert_eq!(back.rank(i, j), s.rank(i, j));
            }
        }
    }

    #[test]
    fn text_parse_errors_are_reported() {
        assert!(RankSnapshot::from_text("").is_err());
        assert!(RankSnapshot::from_text("2 4\n1 2\n3").is_err()); // short row
        assert!(RankSnapshot::from_text("x y\n").is_err()); // bad header
    }

    #[test]
    fn flat_layout_matches_accessors() {
        let s = snap_3x3();
        let flat = s.as_flat();
        assert_eq!(flat[3], s.rank(1, 0)); // row 1, col 0
        assert_eq!(flat[2 * 3 + 1], s.rank(2, 1));
    }

    #[test]
    fn rank_evolution_records_and_merges() {
        let mut a = RankEvolution::default();
        a.record(24, 12);
        a.record(20, 12);
        a.record_null(6);
        let mut b = RankEvolution::default();
        b.record_dense(30, 28);
        a.merge(&b);
        assert_eq!(a.events(), 4);
        assert_eq!(a.nulls(), 1);
        assert_eq!(a.denses(), 1);
        assert_eq!(a.max_in(), 30);
        assert_eq!(a.max_out(), 28);
        assert_eq!(a.histogram()[12], 2);
        assert_eq!(a.histogram()[0], 1);
        assert!((a.mean_in() - 20.0).abs() < 1e-12);
        assert!((a.mean_out() - 13.0).abs() < 1e-12);
        let text = a.render(8);
        assert!(text.contains("4 recompressions"), "{text}");
        assert!(text.contains('#'));
    }

    #[test]
    fn rank_evolution_empty_render() {
        let e = RankEvolution::default();
        assert!(e.render(10).contains("no recompressions"));
        assert_eq!(e.mean_in(), 0.0);
    }
}

//! The three-format tile value.
//!
//! During the lifespan of the application a tile may be **dense** (as
//! generated, or kept dense on the diagonal), **low-rank** (`U·Vᵀ` after
//! compression) or **null** (everything below the accuracy threshold).
//! The TLR Cholesky kernels pattern-match on this enum; the runtime layer
//! uses [`Tile::memory_f64`] and [`Tile::format`] for communication-volume
//! accounting.

use tlr_linalg::{gemm_serial, Matrix, Trans};

/// Storage-format discriminant, used by the communication model and the
/// statistics reporting (a `u8` tag keeps trace records small).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum TileFormat {
    /// Full `rows × cols` storage.
    Dense,
    /// `U·Vᵀ` with tall-skinny `U` (`rows × k`) and `V` (`cols × k`).
    LowRank,
    /// Identically zero at the working accuracy; occupies no storage.
    Null,
}

/// One tile of a TLR matrix.
#[derive(Debug, Clone)]
pub enum Tile {
    /// Full dense storage.
    Dense(Matrix),
    /// Low-rank factorization `A ≈ u · vᵀ`; `u: rows × k`, `v: cols × k`.
    LowRank {
        /// Left factor, `rows × k`.
        u: Matrix,
        /// Right factor, `cols × k` (so the tile is `u · vᵀ`).
        v: Matrix,
    },
    /// A tile whose content vanished under the accuracy threshold.
    Null {
        /// Logical number of rows.
        rows: usize,
        /// Logical number of columns.
        cols: usize,
    },
}

impl Tile {
    /// Logical row count.
    pub fn rows(&self) -> usize {
        match self {
            Tile::Dense(m) => m.rows(),
            Tile::LowRank { u, .. } => u.rows(),
            Tile::Null { rows, .. } => *rows,
        }
    }

    /// Logical column count.
    pub fn cols(&self) -> usize {
        match self {
            Tile::Dense(m) => m.cols(),
            Tile::LowRank { v, .. } => v.rows(),
            Tile::Null { cols, .. } => *cols,
        }
    }

    /// The storage format tag.
    pub fn format(&self) -> TileFormat {
        match self {
            Tile::Dense(_) => TileFormat::Dense,
            Tile::LowRank { .. } => TileFormat::LowRank,
            Tile::Null { .. } => TileFormat::Null,
        }
    }

    /// The tile's rank in the TLR bookkeeping sense: `0` for null tiles,
    /// `k` for low-rank tiles, `min(rows, cols)` for dense tiles.
    pub fn rank(&self) -> usize {
        match self {
            Tile::Dense(m) => m.rows().min(m.cols()),
            Tile::LowRank { u, .. } => u.cols(),
            Tile::Null { .. } => 0,
        }
    }

    /// `true` for [`Tile::Null`].
    pub fn is_null(&self) -> bool {
        matches!(self, Tile::Null { .. })
    }

    /// Number of `f64` words this tile occupies (the paper's memory-
    /// footprint metric, also the message size when the tile is shipped).
    pub fn memory_f64(&self) -> usize {
        match self {
            Tile::Dense(m) => m.rows() * m.cols(),
            Tile::LowRank { u, v } => u.rows() * u.cols() + v.rows() * v.cols(),
            Tile::Null { .. } => 0,
        }
    }

    /// Materialize the tile densely into `out` (reshaped in place to the
    /// tile's logical shape; allocation-free once `out` has grown to
    /// size). This is the workspace-friendly variant of
    /// [`Tile::to_dense`] used by the kernel hot path.
    pub fn to_dense_into(&self, out: &mut Matrix) {
        out.reset(self.rows(), self.cols());
        match self {
            Tile::Dense(m) => out.as_mut_slice().copy_from_slice(m.as_slice()),
            Tile::LowRank { u, v } => {
                if u.cols() > 0 {
                    gemm_serial(Trans::No, Trans::Yes, 1.0, u, v, 0.0, out);
                }
            }
            Tile::Null { .. } => {}
        }
    }

    /// Materialize the tile as a dense matrix.
    pub fn to_dense(&self) -> Matrix {
        match self {
            Tile::Dense(m) => m.clone(),
            Tile::LowRank { u, v } => {
                let mut out = Matrix::zeros(u.rows(), v.rows());
                if u.cols() > 0 {
                    gemm_serial(Trans::No, Trans::Yes, 1.0, u, v, 0.0, &mut out);
                }
                out
            }
            Tile::Null { rows, cols } => Matrix::zeros(*rows, *cols),
        }
    }

    /// A null tile with the same logical shape as `self`.
    pub fn nullify(&self) -> Tile {
        Tile::Null { rows: self.rows(), cols: self.cols() }
    }

    /// The transpose of the tile (swaps `u`/`v` for low-rank tiles).
    pub fn transpose(&self) -> Tile {
        match self {
            Tile::Dense(m) => Tile::Dense(m.transpose()),
            Tile::LowRank { u, v } => Tile::LowRank { u: v.clone(), v: u.clone() },
            Tile::Null { rows, cols } => Tile::Null { rows: *cols, cols: *rows },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tlr_linalg::norms::relative_diff;

    fn lr_tile() -> Tile {
        let u = Matrix::from_fn(4, 2, |i, j| (i + j + 1) as f64);
        let v = Matrix::from_fn(3, 2, |i, j| (2 * i + j) as f64);
        Tile::LowRank { u, v }
    }

    #[test]
    fn shapes_and_ranks() {
        let t = lr_tile();
        assert_eq!(t.rows(), 4);
        assert_eq!(t.cols(), 3);
        assert_eq!(t.rank(), 2);
        assert_eq!(t.format(), TileFormat::LowRank);

        let d = Tile::Dense(Matrix::zeros(5, 5));
        assert_eq!(d.rank(), 5);
        assert_eq!(d.memory_f64(), 25);

        let n = Tile::Null { rows: 7, cols: 2 };
        assert_eq!(n.rank(), 0);
        assert_eq!(n.memory_f64(), 0);
        assert!(n.is_null());
    }

    #[test]
    fn to_dense_lowrank() {
        let t = lr_tile();
        let d = t.to_dense();
        // Check one entry by hand: A[1][2] = Σ_k u[1,k] v[2,k] = 2*4 + 3*5 = 23
        assert_eq!(d[(1, 2)], 23.0);
    }

    #[test]
    fn transpose_consistency() {
        let t = lr_tile();
        let tt = t.transpose();
        assert!(relative_diff(&tt.to_dense(), &t.to_dense().transpose()) < 1e-15);
        let n = Tile::Null { rows: 3, cols: 5 }.transpose();
        assert_eq!((n.rows(), n.cols()), (5, 3));
    }

    #[test]
    fn nullify_preserves_shape() {
        let t = lr_tile().nullify();
        assert_eq!((t.rows(), t.cols()), (4, 3));
        assert!(t.is_null());
    }

    #[test]
    fn memory_footprint_lowrank() {
        let t = lr_tile();
        assert_eq!(t.memory_f64(), 4 * 2 + 3 * 2);
    }
}

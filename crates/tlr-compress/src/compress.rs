//! Dense → TLR threshold compression.
//!
//! Compression mirrors HiCMA's HCORE: a rank-revealing pivoted QR factors
//! the tile and stops as soon as the trailing Frobenius norm drops below
//! the accuracy threshold. The resulting `Q·R` pair is then put into the
//! canonical `U·Vᵀ` form. Three outcomes are possible:
//!
//! * the very first pivot is already below the threshold → [`Tile::Null`],
//! * the numerical rank is small enough that the factorized form is
//!   cheaper than dense storage → [`Tile::LowRank`],
//! * otherwise the tile is kept [`Tile::Dense`] (compression would only
//!   waste memory and flops).

use crate::tile::Tile;
use tlr_linalg::{ColPivQr, Matrix};

/// Parameters of the compression step.
#[derive(Debug, Clone, Copy)]
pub struct CompressionConfig {
    /// Absolute Frobenius-norm accuracy threshold (the paper's
    /// `10⁻⁴ … 10⁻⁹` knob). The truncation satisfies
    /// `‖A − U·Vᵀ‖_F ≤ accuracy`.
    pub accuracy: f64,
    /// Hard cap on the stored rank (HiCMA's `maxrank`). Ranks above the
    /// cap force the tile to stay dense. `usize::MAX` disables the cap.
    pub max_rank: usize,
    /// Keep the tile dense when `k · (rows + cols) ≥ keep_dense_ratio ·
    /// rows · cols`; `1.0` means "densify only when LR storage would be
    /// strictly larger than dense".
    pub keep_dense_ratio: f64,
}

impl Default for CompressionConfig {
    fn default() -> Self {
        Self { accuracy: 1e-4, max_rank: usize::MAX, keep_dense_ratio: 1.0 }
    }
}

impl CompressionConfig {
    /// Config with the given accuracy and defaults elsewhere.
    pub fn with_accuracy(accuracy: f64) -> Self {
        Self { accuracy, ..Self::default() }
    }

    /// Is a rank-`k` `rows × cols` factorization worth storing over dense?
    pub fn low_rank_pays_off(&self, k: usize, rows: usize, cols: usize) -> bool {
        (k * (rows + cols)) as f64 <= self.keep_dense_ratio * (rows * cols) as f64
    }
}

/// Compress a dense tile at the configured accuracy.
///
/// Returns `Null`, `LowRank`, or `Dense` per the rules documented at the
/// module level. The input is consumed (it becomes QR workspace).
///
/// ```
/// use tlr_compress::{compress_tile, CompressionConfig};
/// use tlr_linalg::Matrix;
///
/// // A smooth kernel tile compresses to a small rank…
/// let tile = Matrix::from_fn(64, 64, |i, j| {
///     let d = (i as f64 - j as f64 + 80.0) / 30.0;
///     (-d * d).exp()
/// });
/// let t = compress_tile(tile, &CompressionConfig::with_accuracy(1e-6));
/// assert!(t.rank() > 0 && t.rank() < 32);
///
/// // …and a negligible tile vanishes entirely.
/// let tiny = Matrix::from_fn(64, 64, |_, _| 1e-12);
/// let z = compress_tile(tiny, &CompressionConfig::with_accuracy(1e-6));
/// assert!(z.is_null());
/// ```
pub fn compress_tile(a: Matrix, config: &CompressionConfig) -> Tile {
    let rows = a.rows();
    let cols = a.cols();
    if rows == 0 || cols == 0 {
        return Tile::Null { rows, cols };
    }
    let dense_backup = a.clone();
    let f = ColPivQr::with_tolerance(a, config.accuracy, config.max_rank.min(rows.min(cols)));
    let k = f.rank();
    if k == 0 {
        return Tile::Null { rows, cols };
    }
    // If we hit max_rank while the trailing block is still above the
    // threshold, the tile is not compressible at this accuracy: keep dense.
    if k >= config.max_rank && config.max_rank < rows.min(cols) {
        return Tile::Dense(dense_backup);
    }
    if !config.low_rank_pays_off(k, rows, cols) {
        return Tile::Dense(dense_backup);
    }
    let u = f.q_thin(); // rows × k, orthonormal
    let v = f.r_unpermuted().transpose(); // cols × k
    Tile::LowRank { u, v }
}

/// Materialize a tile back to dense storage (inverse of compression, up to
/// the truncation error).
pub fn decompress_tile(t: &Tile) -> Matrix {
    t.to_dense()
}

#[cfg(test)]
mod tests {
    use super::*;
    use tlr_linalg::norms::{frobenius_norm, relative_diff};

    fn rand_mat(r: usize, c: usize, seed: u64) -> Matrix {
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        Matrix::from_fn(r, c, |_, _| {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((state >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        })
    }

    fn low_rank_mat(m: usize, n: usize, k: usize, seed: u64) -> Matrix {
        let u = rand_mat(m, k, seed);
        let v = rand_mat(n, k, seed + 1);
        let mut out = Matrix::zeros(m, n);
        tlr_linalg::gemm(tlr_linalg::Trans::No, tlr_linalg::Trans::Yes, 1.0, &u, &v, 0.0, &mut out);
        out
    }

    #[test]
    fn exact_low_rank_recovers_rank() {
        let a = low_rank_mat(32, 32, 4, 11);
        let t = compress_tile(a.clone(), &CompressionConfig::with_accuracy(1e-10));
        assert_eq!(t.rank(), 4);
        assert!(relative_diff(&t.to_dense(), &a) < 1e-9);
    }

    #[test]
    fn below_threshold_becomes_null() {
        let mut a = rand_mat(16, 16, 12);
        a.scale(1e-9);
        let t = compress_tile(a, &CompressionConfig::with_accuracy(1e-4));
        assert!(t.is_null());
        assert_eq!((t.rows(), t.cols()), (16, 16));
    }

    #[test]
    fn incompressible_stays_dense() {
        // A random full-rank matrix at tight accuracy cannot compress.
        let a = rand_mat(16, 16, 13);
        let t = compress_tile(a.clone(), &CompressionConfig::with_accuracy(1e-12));
        assert_eq!(t.format(), crate::tile::TileFormat::Dense);
        assert!(relative_diff(&t.to_dense(), &a) == 0.0);
    }

    #[test]
    fn truncation_error_bounded() {
        // Gaussian-bump kernel tile: smooth ⇒ rapidly decaying spectrum.
        let n = 48;
        let a = Matrix::from_fn(n, n, |i, j| {
            let d = (i as f64 - j as f64 + 60.0) / 20.0;
            (-d * d).exp()
        });
        for acc in [1e-2, 1e-4, 1e-6, 1e-8] {
            let t = compress_tile(a.clone(), &CompressionConfig::with_accuracy(acc));
            let mut diff = t.to_dense();
            diff.axpy(-1.0, &a);
            let err = frobenius_norm(&diff);
            assert!(err <= 10.0 * acc, "acc={acc} err={err} rank={}", t.rank());
            assert!(t.rank() < n, "should compress at acc={acc}");
        }
    }

    #[test]
    fn rank_grows_with_accuracy() {
        let n = 48;
        let a = Matrix::from_fn(n, n, |i, j| {
            let d = (i as f64 - j as f64 + 60.0) / 20.0;
            (-d * d).exp()
        });
        let r1 = compress_tile(a.clone(), &CompressionConfig::with_accuracy(1e-2)).rank();
        let r2 = compress_tile(a.clone(), &CompressionConfig::with_accuracy(1e-5)).rank();
        let r3 = compress_tile(a, &CompressionConfig::with_accuracy(1e-8)).rank();
        assert!(r1 <= r2 && r2 <= r3);
        assert!(r1 >= 1);
    }

    #[test]
    fn max_rank_cap_forces_dense() {
        let a = rand_mat(24, 24, 14);
        let cfg = CompressionConfig { accuracy: 1e-12, max_rank: 4, keep_dense_ratio: 1.0 };
        let t = compress_tile(a, &cfg);
        assert_eq!(t.format(), crate::tile::TileFormat::Dense);
    }

    #[test]
    fn empty_tile_is_null() {
        let t = compress_tile(Matrix::zeros(0, 5), &CompressionConfig::default());
        assert!(t.is_null());
    }
}

//! Tile integrity: exact digests, sealed tiles, and deterministic
//! corruption for fault injection.
//!
//! The detection workhorse of the integrity layer is [`TileDigest`]: an
//! **exact, bitwise** fingerprint of a tile — shape, storage format,
//! rank, an FNV-1a hash over the bit patterns of every stored `f64`,
//! and the Frobenius sum of squares as an independent sentinel. Because
//! the distributed engine's correctness contract is *bit-identical*
//! factors, exact digests give zero false positives (a clean tile never
//! fails) and zero false negatives (any flipped bit changes the hash) —
//! properties a floating-point checksum with a tolerance cannot offer.
//! The Huang–Abraham row/column vectors
//! ([`tlr_linalg::checksum::Checksum`]) are the complementary *algebraic*
//! channel: maintained through the kernels at `O((m+n)k)` cost and
//! cross-validated against the digests in the integrity tests.
//!
//! [`SealedTile`] pairs a tile with its digest so the pair travels as
//! one message payload / store entry; [`corrupt_tile`] is the seeded
//! single-bit-flip injector the fault plan drives. Digest computation
//! is a streaming fold over the stored words — no scratch, no heap
//! traffic — so verification at task read boundaries keeps the kernel
//! hot path allocation-free.

use crate::tile::{Tile, TileFormat};
use tlr_linalg::Matrix;

/// FNV-1a 64-bit offset basis / prime.
const FNV_OFFSET: u64 = 0xcbf29ce484222325;
const FNV_PRIME: u64 = 0x100000001b3;

/// Per-lane salts (odd constants from the golden-ratio family) so the
/// four interleaved chains start from distinct states.
const LANE_SALT: [u64; 4] = [
    0,
    0x9e3779b97f4a7c15,
    0xc2b2ae3d27d4eb4f,
    0x165667b19e3779f9,
];

const LANES: usize = 4;

/// Streaming 4-lane word-at-a-time multiply-xor hash (FNV-1a structure,
/// one whole `u64` per step instead of one byte). Four independent
/// chains hide the multiply latency, which is what keeps digest
/// maintenance in the single-digit-percent range on the factorize hot
/// path. Detection stays *exact* for the faults the plan injects: each
/// step `h' = (h ^ w)·p` is bijective in both `h` and `w` (odd `p`), so
/// a sequence differing in any single word provably ends in a different
/// lane state, and the bijective lane combine preserves the difference.
struct LaneHash {
    h: [u64; LANES],
    f: [f64; LANES],
}

impl LaneHash {
    fn new() -> Self {
        LaneHash {
            h: LANE_SALT.map(|s| FNV_OFFSET ^ s),
            f: [0.0; LANES],
        }
    }

    #[inline]
    fn fold(&mut self, m: &Matrix) {
        // Lane states live in locals for the duration of the pass so
        // the compiler keeps them in registers across iterations.
        let (mut h, mut f) = (self.h, self.f);
        let s = m.as_slice();
        let mut chunks = s.chunks_exact(LANES);
        for c in &mut chunks {
            for l in 0..LANES {
                let x = c[l];
                h[l] = (h[l] ^ x.to_bits()).wrapping_mul(FNV_PRIME);
                f[l] += x * x;
            }
        }
        for (l, &x) in chunks.remainder().iter().enumerate() {
            h[l] = (h[l] ^ x.to_bits()).wrapping_mul(FNV_PRIME);
            f[l] += x * x;
        }
        self.h = h;
        self.f = f;
    }

    fn finish(&self) -> (u64, f64) {
        let hash = self
            .h
            .iter()
            .fold(FNV_OFFSET, |a, &l| (a ^ l).wrapping_mul(FNV_PRIME));
        let f = &self.f;
        (hash, (f[0] + f[1]) + (f[2] + f[3]))
    }
}

/// Streaming FNV-1a fold over `u64` words — the scalar chain of the
/// [`TileDigest`] lane hash, exposed for callers that fingerprint
/// *structure* rather than tile contents (the symbolic-plan cache keys
/// its entries by folding tile-grid shape, per-tile ranks, and the
/// distribution's owner map through this).
///
/// Each step `h' = (h ^ w)·p` with odd `p` is bijective in both `h` and
/// `w` (the same argument as [`TileDigest`]'s), so two structures that
/// differ in any single folded word end in different states.
#[derive(Debug, Clone, Copy)]
pub struct WordFold {
    h: u64,
}

impl WordFold {
    /// A fold in its initial state (the FNV-1a offset basis).
    pub fn new() -> Self {
        WordFold { h: FNV_OFFSET }
    }

    /// Fold one word into the state.
    #[inline]
    pub fn push(&mut self, w: u64) {
        self.h = (self.h ^ w).wrapping_mul(FNV_PRIME);
    }

    /// Fold a `usize` (as `u64`).
    #[inline]
    pub fn push_usize(&mut self, w: usize) {
        self.push(w as u64);
    }

    /// The folded hash.
    pub fn finish(&self) -> u64 {
        self.h
    }
}

impl Default for WordFold {
    fn default() -> Self {
        Self::new()
    }
}

/// Exact fingerprint of one tile: logical shape, storage format, rank,
/// a bitwise content hash, and the Frobenius sum of squares of the
/// stored words (kept as raw bits so comparison is exact even for
/// non-finite values).
///
/// Two tiles have equal digests iff they are bit-identical in storage —
/// the comparison the distributed engine's bit-identical factor
/// contract needs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TileDigest {
    /// Storage format tag.
    pub format: TileFormat,
    /// Logical rows.
    pub rows: usize,
    /// Logical columns.
    pub cols: usize,
    /// Stored rank (0 for null, `k` for low-rank, `min(r,c)` for dense).
    pub rank: usize,
    /// FNV-1a hash over the bit patterns of every stored `f64`
    /// (`u` then `v` for low-rank tiles).
    pub hash: u64,
    /// Bit pattern of the Frobenius sum of squares of the stored words.
    pub fnorm_sq_bits: u64,
}

impl TileDigest {
    /// Compute the digest of `tile` (one streaming pass, no scratch).
    pub fn of(tile: &Tile) -> Self {
        let mut lanes = LaneHash::new();
        match tile {
            Tile::Dense(m) => lanes.fold(m),
            Tile::LowRank { u, v } => {
                lanes.fold(u);
                lanes.fold(v);
            }
            Tile::Null { .. } => {}
        }
        let (hash, fsq) = lanes.finish();
        TileDigest {
            format: tile.format(),
            rows: tile.rows(),
            cols: tile.cols(),
            rank: tile.rank(),
            hash,
            fnorm_sq_bits: fsq.to_bits(),
        }
    }

    /// `true` iff `tile` still matches this digest bit for bit.
    pub fn verify(&self, tile: &Tile) -> bool {
        *self == TileDigest::of(tile)
    }

    /// The Frobenius sum of squares recorded at sealing time.
    pub fn frobenius_sq(&self) -> f64 {
        f64::from_bits(self.fnorm_sq_bits)
    }
}

/// A tile carrying its digest. Sealed tiles are the payload type of
/// integrity-checked distributed runs: the digest travels with the tile
/// through stores and messages, and any in-flight or at-rest bit flip
/// is caught by re-deriving the digest at the read boundary.
#[derive(Debug, Clone)]
pub struct SealedTile {
    tile: Tile,
    digest: TileDigest,
}

impl SealedTile {
    /// Seal a tile, recording its current digest.
    pub fn seal(tile: Tile) -> Self {
        let digest = TileDigest::of(&tile);
        SealedTile { tile, digest }
    }

    /// The tile contents (read-only; mutation must go through
    /// [`SealedTile::seal`] of a new value or [`SealedTile::corrupt`]).
    pub fn tile(&self) -> &Tile {
        &self.tile
    }

    /// The digest recorded at sealing time.
    pub fn digest(&self) -> TileDigest {
        self.digest
    }

    /// Unwrap the tile, discarding the seal.
    pub fn into_tile(self) -> Tile {
        self.tile
    }

    /// Re-derive the digest and compare against the seal.
    pub fn verify(&self) -> bool {
        self.digest.verify(&self.tile)
    }

    /// Fault injection: flip one stored bit chosen by `r` **without**
    /// resealing, leaving the digest stale — exactly what a silent
    /// memory / link error does. Returns `false` (no-op) for tiles with
    /// no storage (null tiles cannot corrupt).
    pub fn corrupt(&mut self, r: u64) -> bool {
        corrupt_tile(&mut self.tile, r)
    }
}

/// Deterministically flip one bit of the tile's stored words: word
/// index `r mod nwords`, bit index `(r >> 32) mod 64`. Returns whether
/// anything was mutated (null tiles have no storage and return
/// `false`). Driven by the seeded fault plan so a given seed corrupts
/// the same bit every run.
pub fn corrupt_tile(tile: &mut Tile, r: u64) -> bool {
    let flip = |words: &mut [f64], idx: usize| {
        let bit = (r >> 32) % 64;
        words[idx] = f64::from_bits(words[idx].to_bits() ^ (1u64 << bit));
    };
    match tile {
        Tile::Dense(m) => {
            let s = m.as_mut_slice();
            if s.is_empty() {
                return false;
            }
            let idx = (r % s.len() as u64) as usize;
            flip(s, idx);
            true
        }
        Tile::LowRank { u, v } => {
            let nu = u.as_slice().len();
            let nv = v.as_slice().len();
            if nu + nv == 0 {
                return false;
            }
            let idx = (r % (nu + nv) as u64) as usize;
            if idx < nu {
                flip(u.as_mut_slice(), idx);
            } else {
                flip(v.as_mut_slice(), idx - nu);
            }
            true
        }
        Tile::Null { .. } => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tlr_linalg::checksum::{Checksum, DEFAULT_TOL};

    fn dense_tile(n: usize, seed: usize) -> Tile {
        Tile::Dense(Matrix::from_fn(n, n, |i, j| {
            ((i * 31 + j * 17 + seed * 13 + 7) % 101) as f64 / 101.0 - 0.5
        }))
    }

    fn lr_tile(n: usize, k: usize) -> Tile {
        Tile::LowRank {
            u: Matrix::from_fn(n, k, |i, j| ((i + 2 * j + 1) as f64 * 0.37).sin()),
            v: Matrix::from_fn(n, k, |i, j| ((2 * i + j + 1) as f64 * 0.29).cos()),
        }
    }

    #[test]
    fn digest_is_deterministic_and_shape_aware() {
        let t = dense_tile(8, 1);
        assert_eq!(TileDigest::of(&t), TileDigest::of(&t.clone()));
        assert_ne!(TileDigest::of(&t), TileDigest::of(&dense_tile(8, 2)));
        // Same numbers, different format ⇒ different digest.
        let n = Tile::Null { rows: 8, cols: 8 };
        assert_ne!(TileDigest::of(&t), TileDigest::of(&n));
    }

    #[test]
    fn every_single_bit_flip_is_detected() {
        // Exhaustively flip each of the first 64 fault codes on a small
        // dense tile and a low-rank tile: the digest must catch all of
        // them (zero false negatives), and the untouched clone must
        // always verify (zero false positives).
        for tile in [dense_tile(4, 3), lr_tile(4, 2)] {
            let sealed = SealedTile::seal(tile);
            assert!(sealed.verify());
            for word in 0..8u64 {
                for bit in 0..8u64 {
                    let mut c = sealed.clone();
                    let r = word | ((bit * 7) << 32);
                    assert!(c.corrupt(r), "tiles with storage must corrupt");
                    assert!(!c.verify(), "flip r={r:#x} went undetected");
                }
            }
        }
    }

    #[test]
    fn null_tiles_cannot_corrupt() {
        let mut s = SealedTile::seal(Tile::Null { rows: 16, cols: 16 });
        assert!(!s.corrupt(12345));
        assert!(s.verify());
    }

    #[test]
    fn corruption_is_deterministic() {
        let mut a = SealedTile::seal(dense_tile(6, 9));
        let mut b = a.clone();
        a.corrupt(0xdead_beef_0000_0042);
        b.corrupt(0xdead_beef_0000_0042);
        assert_eq!(TileDigest::of(a.tile()), TileDigest::of(b.tile()));
    }

    #[test]
    fn digest_and_abft_checksums_cross_validate() {
        // The two channels agree on a mantissa-scale corruption of a
        // dense tile: the exact digest flags it, and the Huang–Abraham
        // vectors flag it too once the flip rises above their roundoff
        // tolerance (flip a high mantissa/exponent bit to make sure).
        let tile = dense_tile(12, 5);
        let Tile::Dense(m0) = &tile else {
            unreachable!()
        };
        let abft = Checksum::of(m0);
        let sealed = SealedTile::seal(tile.clone());
        assert!(sealed.verify());
        assert!(abft.verify(m0, DEFAULT_TOL));

        let mut bad = sealed.clone();
        // bit 62 = top of the exponent: a massive perturbation.
        assert!(bad.corrupt(3 | (62 << 32)));
        assert!(!bad.verify(), "digest must catch the flip");
        let Tile::Dense(mbad) = bad.tile() else {
            unreachable!()
        };
        assert!(
            !abft.verify(mbad, DEFAULT_TOL),
            "ABFT must catch a large flip"
        );
    }
}

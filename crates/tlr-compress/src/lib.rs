#![warn(missing_docs)]
//! HiCMA-equivalent tile low-rank (TLR) layer.
//!
//! A formally dense matrix is partitioned into `b × b` tiles. Diagonal
//! tiles stay dense; each off-diagonal tile is compressed to `U·Vᵀ` with
//! `U, V` of size `b × k`, where the rank `k` is the smallest value whose
//! truncation error satisfies the application accuracy threshold. Tiles
//! that are entirely below the threshold become **null** (rank 0) — this
//! is what produces the mixed dense/TLR/sparse structure the paper's §V is
//! about.
//!
//! The crate provides:
//!
//! * [`Tile`] — the three-format tile value (`Dense` / `LowRank` / `Null`),
//! * [`compress_tile`] / [`CompressionConfig`] — threshold compression via
//!   rank-revealing pivoted QR (+ SVD-based recompression),
//! * [`kernels`] — the four TLR Cholesky kernels (`POTRF`, `TRSM`, `SYRK`,
//!   `GEMM`) operating directly on compressed tiles, with on-the-fly rank
//!   truncation in the GEMM recompression path,
//! * [`TlrMatrix`] — a symmetric lower-triangular tile container with
//!   density/rank statistics,
//! * [`rankstat`] — rank snapshots, heatmaps and the synthetic
//!   [`rankstat::SyntheticRankModel`] used for paper-scale simulations,
//! * [`integrity`] — exact tile digests, sealed tiles and deterministic
//!   bit-flip injection for the silent-data-corruption layer.

pub mod aca;
pub mod compress;
pub mod integrity;
pub mod kernels;
pub mod matrix;
pub mod rankstat;
pub mod tile;

pub use aca::{aca_compress, AcaResult};
pub use compress::{compress_tile, decompress_tile, CompressionConfig};
pub use integrity::{corrupt_tile, SealedTile, TileDigest, WordFold};
pub use matrix::TlrMatrix;
pub use rankstat::{RankEvolution, RankSnapshot, SyntheticRankModel};
pub use tile::Tile;

//! The four TLR Cholesky tile kernels: POTRF, TRSM, SYRK, GEMM.
//!
//! These are HiCMA's HCORE kernels re-derived for the `U·Vᵀ` tile format.
//! The factorization they implement is the classic left-looking tile
//! Cholesky: for each panel `k`,
//!
//! ```text
//! POTRF  : A[k][k] = L[k][k]·L[k][k]ᵀ                    (dense diagonal)
//! TRSM   : A[m][k] = A[m][k]·L[k][k]⁻ᵀ          ∀ m > k  (TLR or dense)
//! SYRK   : A[m][m] −= A[m][k]·A[m][k]ᵀ          ∀ m > k  (dense diagonal)
//! GEMM   : A[m][n] −= A[m][k]·A[n][k]ᵀ    ∀ m > n > k    (TLR recompress)
//! ```
//!
//! The GEMM kernel is where ranks move: the low-rank update is stacked
//! against the destination's factors and recompressed (QR + SVD truncation)
//! at the configured accuracy — exactly HiCMA's recompression pipeline.
//! The [`flops`] submodule exposes the operation counts the paper's time
//! model needs, as a function of tile size and the ranks involved.
//!
//! # Workspace & implicit-Q recompression
//!
//! The recompression step dominates TLR factorization time, so it runs
//! through two machineries that remove every per-call overhead:
//!
//! * **Per-worker [`KernelWorkspace`] arena.** Every intermediate of
//!   `gemm_kernel`/`subtract_lowrank`/`syrk_kernel`/recompression — the
//!   stacked factors, the small Gram/core matrices, the QR `tau` vectors,
//!   the SVD output and scratch — is drawn from a pool of recycled
//!   buffers that grow to a high-water mark and are then reused for the
//!   rest of the factorization. Replaced tiles donate their factor
//!   buffers back to the pool, so in steady state a `gemm_kernel` call
//!   performs **zero heap allocations** (asserted by the
//!   `tests/alloc_free.rs` counting-allocator harness). The engine
//!   threads one arena per worker ([`crate::kernels::KernelWorkspace`]
//!   via the worker id `Engine::run` hands each body closure); callers
//!   outside the engine
//!   transparently use a thread-local arena
//!   ([`with_thread_workspace`]).
//!
//! * **Implicit-Q re-projection.** The stacked factors are reduced by
//!   unpivoted QR; instead of forming each thin `Q` explicitly
//!   (`O(b·kt²)` per factor) and multiplying it by the truncated
//!   `kt × k'` SVD block, the stored Householder reflectors are applied
//!   directly to the small block (`Qr::apply_q`), skipping the `Q`
//!   formation and one `b × kt × k'` GEMM per side, per call. The
//!   product form itself is assembled straight into the stacked factors
//!   (`gemm_serial_into_cols`) with the update's `−1` sign folded into
//!   the write, so neither operand factor is ever cloned or negated via
//!   a copy.
//!
//! The pre-workspace path is preserved verbatim in [`reference`](mod@reference) as a
//! same-run measurement baseline (`cargo run --release -p tlr-bench
//! --bin gemm_recompress`) and as the differential-testing oracle for the
//! engine.

use crate::compress::CompressionConfig;
use crate::tile::Tile;
use std::cell::RefCell;
// Tile kernels run inside the task-graph executor, so they use the serial
// BLAS variants: forking onto the rayon pool from every tile would
// oversubscribe the executor's worker threads.
use tlr_linalg::{
    gemm_serial, gemm_serial_into_cols, jacobi_svd_into, potrf, syrk_serial, trsm, CholeskyError,
    Matrix, Qr, Side, Svd, SvdWork, Trans, Uplo,
};

/// POTRF kernel: factor a dense diagonal tile in place (lower Cholesky).
///
/// # Panics
/// Panics if the tile is not dense — diagonal tiles never compress in TLR
/// Cholesky (their ranks are full by SPD-ness).
pub fn potrf_kernel(c: &mut Tile) -> Result<(), CholeskyError> {
    match c {
        Tile::Dense(m) => {
            potrf(m)?;
            m.zero_upper();
            Ok(())
        }
        _ => panic!("POTRF requires a dense diagonal tile"),
    }
}

/// TRSM kernel: `A := A · L⁻ᵀ` where `l` holds the factored diagonal tile.
///
/// For a low-rank `A = U·Vᵀ` only the small factor moves:
/// `A·L⁻ᵀ = U·(L⁻¹V)ᵀ`, i.e. a `b × k` triangular solve instead of
/// `b × b` — this is the arithmetic saving that makes TLR worthwhile.
pub fn trsm_kernel(l: &Tile, a: &mut Tile) {
    let l = match l {
        Tile::Dense(m) => m,
        _ => panic!("TRSM requires a dense factored diagonal tile"),
    };
    match a {
        Tile::Dense(m) => trsm(Side::Right, Uplo::Lower, Trans::Yes, 1.0, l, m),
        Tile::LowRank { v, .. } => trsm(Side::Left, Uplo::Lower, Trans::No, 1.0, l, v),
        Tile::Null { .. } => {}
    }
}

/// Recycled scratch arena backing every intermediate of the TLR update
/// kernels.
///
/// One workspace per worker thread: buffers are checked out with
/// [`KernelWorkspace::take`], returned with [`KernelWorkspace::give`]
/// (or reclaimed wholesale from a replaced tile with
/// [`KernelWorkspace::give_tile`]), and grow to a high-water mark over
/// the first few calls, after which the kernels run allocation-free.
/// The arena also owns the reusable SVD output/scratch pair so the small
/// recompression SVDs never allocate either.
pub struct KernelWorkspace {
    /// Recycled scratch buffers (stacked factors, small cores, `R`
    /// factors…), kept sorted ascending by capacity so `take` can pick
    /// the smallest sufficient one (best fit). Scratch buffers never
    /// leave the kernel, so this pool's capacity multiset reaches a
    /// fixed point after warm-up.
    pool: Vec<Vec<f64>>,
    /// Recycled buffers for factors that *leave* with the produced tile
    /// (`u`/`v` of the recompressed result, dense conversions), refilled
    /// by [`KernelWorkspace::give_tile`] with the replaced tile's
    /// buffers. Kept separate from the scratch pool: if exports could
    /// draw oversized scratch buffers, every call would walk off with a
    /// high-water buffer and re-grow a smaller import forever.
    out_pool: Vec<Vec<f64>>,
    /// Recycled Householder-coefficient buffers for [`Qr::new_in`].
    taus: Vec<Vec<f64>>,
    /// Reusable SVD output (`u`/`s`/`v` grow to the largest core seen).
    svd: Svd,
    /// Reusable SVD scratch (working copy, rotations, ordering).
    svd_work: SvdWork,
    /// Buffer checkouts that had to allocate or grow (pool miss). Stays
    /// at its warm-up value once the arena reaches steady state; the
    /// observability layer reports it as the allocation-event counter.
    #[cfg(feature = "obs")]
    alloc_events: u64,
    /// Input/output ranks of every recompression through this arena.
    #[cfg(feature = "obs")]
    rank_log: crate::rankstat::RankEvolution,
}

impl Default for KernelWorkspace {
    fn default() -> Self {
        Self::new()
    }
}

impl KernelWorkspace {
    /// An empty arena; buffers grow on first use.
    pub fn new() -> Self {
        Self {
            pool: Vec::new(),
            out_pool: Vec::new(),
            taus: Vec::new(),
            svd: Svd { u: Matrix::zeros(0, 0), s: Vec::new(), v: Matrix::zeros(0, 0) },
            svd_work: SvdWork::new(),
            #[cfg(feature = "obs")]
            alloc_events: 0,
            #[cfg(feature = "obs")]
            rank_log: crate::rankstat::RankEvolution::default(),
        }
    }

    /// Bytes currently retained by this arena's recycled buffer pools
    /// (scratch, export, and tau pools plus the reusable SVD pair).
    /// Pools only grow, so after warm-up this is the arena's high-water
    /// mark — the per-worker memory-budget number the metrics registry
    /// reports. Always compiled (no `obs` gate): it reads capacities
    /// already tracked by the allocator, costing a short walk of the
    /// pool lists at report time.
    pub fn high_water_bytes(&self) -> u64 {
        let vecs = |pool: &[Vec<f64>]| -> u64 {
            pool.iter().map(|b| b.capacity() as u64).sum::<u64>()
        };
        let f64s = vecs(&self.pool)
            + vecs(&self.out_pool)
            + vecs(&self.taus)
            + self.svd.u.as_slice().len() as u64
            + self.svd.v.as_slice().len() as u64
            + self.svd.s.capacity() as u64
            + self.svd_work.retained_len() as u64;
        f64s * std::mem::size_of::<f64>() as u64
    }

    /// Pool misses so far: checkouts that allocated a fresh buffer or
    /// grew a pooled one. Always callable; 0 without the `obs` feature.
    pub fn alloc_events(&self) -> u64 {
        #[cfg(feature = "obs")]
        {
            self.alloc_events
        }
        #[cfg(not(feature = "obs"))]
        {
            0
        }
    }

    /// Drain the recompression rank log accumulated by this arena
    /// (empty without the `obs` feature).
    pub fn take_rank_log(&mut self) -> crate::rankstat::RankEvolution {
        #[cfg(feature = "obs")]
        {
            std::mem::take(&mut self.rank_log)
        }
        #[cfg(not(feature = "obs"))]
        {
            crate::rankstat::RankEvolution::default()
        }
    }

    /// Note one recompression's `(stacked input, kept output)` ranks.
    #[inline]
    #[allow(unused_variables)]
    fn log_recompress(&mut self, k_in: usize, k_out: usize) {
        #[cfg(feature = "obs")]
        self.rank_log.record(k_in, k_out);
    }

    /// Note a recompression that truncated to a Null tile.
    #[inline]
    #[allow(unused_variables)]
    fn log_recompress_null(&mut self, k_in: usize) {
        #[cfg(feature = "obs")]
        self.rank_log.record_null(k_in);
    }

    /// Note a recompression that fell back to Dense format.
    #[inline]
    #[allow(unused_variables)]
    fn log_recompress_dense(&mut self, k_in: usize, k_out: usize) {
        #[cfg(feature = "obs")]
        self.rank_log.record_dense(k_in, k_out);
    }

    /// Check out a zeroed `rows × cols` matrix backed by the smallest
    /// pooled buffer whose capacity suffices. When none is big enough the
    /// largest pooled buffer grows once (high-water-mark behavior); an
    /// empty pool allocates fresh. Zeroing keeps results independent of
    /// buffer history, so factorizations stay bit-deterministic at any
    /// thread count.
    pub fn take(&mut self, rows: usize, cols: usize) -> Matrix {
        let (m, grew) = Self::take_from(&mut self.pool, rows, cols);
        self.note_growth(grew);
        m
    }

    /// Return a checked-out scratch matrix's buffer to the pool.
    pub fn give(&mut self, m: Matrix) {
        Self::give_to(&mut self.pool, m);
    }

    /// Check out a zeroed matrix destined to leave the arena inside a
    /// produced tile (recompressed `u`/`v` factors, dense conversions).
    /// Drawn from the export pool that [`KernelWorkspace::give_tile`]
    /// refills, so tile churn cannot drain the scratch pool.
    pub fn take_out(&mut self, rows: usize, cols: usize) -> Matrix {
        let (m, grew) = Self::take_from(&mut self.out_pool, rows, cols);
        self.note_growth(grew);
        m
    }

    /// Return a matrix taken with [`KernelWorkspace::take_out`] that
    /// ended up not leaving with a tile.
    pub fn give_out(&mut self, m: Matrix) {
        Self::give_to(&mut self.out_pool, m);
    }

    /// Reclaim the factor buffer(s) of a tile that just got replaced into
    /// the export pool — this is what conserves arena size across
    /// recompressions: the new tile keeps its workspace-backed factors,
    /// the old tile's buffers come back.
    pub fn give_tile(&mut self, t: Tile) {
        match t {
            Tile::Dense(m) => self.give_out(m),
            Tile::LowRank { u, v } => {
                self.give_out(u);
                self.give_out(v);
            }
            Tile::Null { .. } => {}
        }
    }

    /// Returns the checked-out matrix and whether the checkout had to
    /// allocate (pool miss / growth) — the allocation-event signal.
    fn take_from(pool: &mut Vec<Vec<f64>>, rows: usize, cols: usize) -> (Matrix, bool) {
        let need = rows * cols;
        let mut buf = match pool.iter().position(|b| b.capacity() >= need) {
            Some(i) => pool.remove(i),
            None => pool.pop().unwrap_or_default(),
        };
        let grew = buf.capacity() < need;
        buf.clear();
        buf.resize(need, 0.0);
        (Matrix::from_vec(rows, cols, buf), grew)
    }

    /// Bump the allocation-event counter when a checkout grew.
    #[inline]
    #[allow(unused_variables)]
    fn note_growth(&mut self, grew: bool) {
        #[cfg(feature = "obs")]
        if grew {
            self.alloc_events += 1;
        }
    }

    fn give_to(pool: &mut Vec<Vec<f64>>, m: Matrix) {
        let buf = m.into_vec();
        let pos = pool
            .iter()
            .position(|b| b.capacity() >= buf.capacity())
            .unwrap_or(pool.len());
        pool.insert(pos, buf);
    }

    fn take_taus(&mut self) -> Vec<f64> {
        self.taus.pop().unwrap_or_default()
    }

    fn give_taus(&mut self, t: Vec<f64>) {
        self.taus.push(t);
    }
}

thread_local! {
    static TLS_WORKSPACE: RefCell<KernelWorkspace> = RefCell::new(KernelWorkspace::new());
}

/// Run `f` with this thread's kernel workspace.
///
/// The public kernel entry points ([`gemm_kernel`], [`syrk_kernel`],
/// [`subtract_lowrank`]) route through this so callers outside the
/// executor (tests, ACA assembly, the distributed engine) get workspace
/// recycling for free; the factorization executor instead owns one
/// explicit arena per worker and calls the `_ws` variants directly.
pub fn with_thread_workspace<R>(f: impl FnOnce(&mut KernelWorkspace) -> R) -> R {
    TLS_WORKSPACE.with(|ws| f(&mut ws.borrow_mut()))
}

/// SYRK kernel: `C −= A·Aᵀ` onto a dense diagonal tile.
///
/// Low-rank `A = U·Vᵀ` gives `A·Aᵀ = U·(VᵀV)·Uᵀ`: one `k × k` Gram
/// matrix, one `b × k` product, one rank-k dense update. Uses the
/// calling thread's workspace; executor workers should call
/// [`syrk_kernel_ws`] with their own arena.
pub fn syrk_kernel(a: &Tile, c: &mut Tile) {
    with_thread_workspace(|ws| syrk_kernel_ws(ws, a, c));
}

/// [`syrk_kernel`] against an explicit workspace (allocation-free in
/// steady state).
pub fn syrk_kernel_ws(ws: &mut KernelWorkspace, a: &Tile, c: &mut Tile) {
    let c = match c {
        Tile::Dense(m) => m,
        _ => panic!("SYRK destination (diagonal tile) must be dense"),
    };
    match a {
        Tile::Dense(m) => {
            syrk_serial(Trans::No, -1.0, m, 1.0, c);
            // Diagonal tiles are kept fully symmetric so that dense and
            // low-rank update paths produce identical tiles.
            c.symmetrize_from_lower();
        }
        Tile::LowRank { u, v } => {
            let k = u.cols();
            if k == 0 {
                return;
            }
            // W = VᵀV  (k × k)
            let mut w = ws.take(k, k);
            gemm_serial(Trans::Yes, Trans::No, 1.0, v, v, 0.0, &mut w);
            // T = U·W  (b × k)
            let mut t = ws.take(u.rows(), k);
            gemm_serial(Trans::No, Trans::No, 1.0, u, &w, 0.0, &mut t);
            // C −= T·Uᵀ (full update; the diagonal tile is kept symmetric)
            gemm_serial(Trans::No, Trans::Yes, -1.0, &t, u, 1.0, c);
            ws.give(w);
            ws.give(t);
        }
        Tile::Null { .. } => {}
    }
}

/// GEMM kernel: `C −= A·Bᵀ` with TLR recompression.
///
/// `A` is tile `(m, k)`, `B` is tile `(n, k)` of the factorization, `C` is
/// tile `(m, n)`. Null operands make the kernel a no-op (the DAG-trimming
/// analysis removes those calls up front; keeping the no-op here preserves
/// correctness when trimming is disabled). Uses the calling thread's
/// workspace; executor workers should call [`gemm_kernel_ws`] with their
/// own arena.
pub fn gemm_kernel(a: &Tile, b: &Tile, c: &mut Tile, config: &CompressionConfig) {
    with_thread_workspace(|ws| gemm_kernel_ws(ws, a, b, c, config));
}

/// [`gemm_kernel`] against an explicit workspace.
///
/// The low-rank product form is assembled **directly** into the stacked
/// recompression factors (no operand cloning, the `−1` folded into the
/// write), and recompression runs the implicit-Q path — see the module
/// docs. Allocation-free in steady state.
pub fn gemm_kernel_ws(
    ws: &mut KernelWorkspace,
    a: &Tile,
    b: &Tile,
    c: &mut Tile,
    config: &CompressionConfig,
) {
    if a.is_null() || b.is_null() {
        return;
    }
    // dense × dense: compute densely and keep C dense.
    if let (Tile::Dense(am), Tile::Dense(bm)) = (a, b) {
        match c {
            Tile::Dense(cm) => gemm_serial(Trans::No, Trans::Yes, -1.0, am, bm, 1.0, cm),
            _ => {
                let mut cd = ws.take_out(c.rows(), c.cols());
                c.to_dense_into(&mut cd);
                gemm_serial(Trans::No, Trans::Yes, -1.0, am, bm, 1.0, &mut cd);
                ws.give_tile(std::mem::replace(c, Tile::Dense(cd)));
            }
        }
        return;
    }
    if let Tile::Dense(cm) = c {
        // Dense destination: form the product's owned factor in workspace
        // and accumulate in place — no recompression on dense tiles, and
        // the borrowed factor is used as-is (never cloned).
        match (a, b) {
            (Tile::LowRank { u: ua, v: va }, Tile::LowRank { u: ub, v: vb }) => {
                let (ka, kb) = (ua.cols(), ub.cols());
                if ka == 0 || kb == 0 {
                    return;
                }
                // W = Vaᵀ·Vb  (ka × kb)
                let mut w = ws.take(ka, kb);
                gemm_serial(Trans::Yes, Trans::No, 1.0, va, vb, 0.0, &mut w);
                if ka <= kb {
                    // C −= Ua · (Ub·Wᵀ)ᵀ
                    let mut vp = ws.take(ub.rows(), ka);
                    gemm_serial(Trans::No, Trans::Yes, 1.0, ub, &w, 0.0, &mut vp);
                    gemm_serial(Trans::No, Trans::Yes, -1.0, ua, &vp, 1.0, cm);
                    ws.give(vp);
                } else {
                    // C −= (Ua·W) · Ubᵀ
                    let mut up = ws.take(ua.rows(), kb);
                    gemm_serial(Trans::No, Trans::No, 1.0, ua, &w, 0.0, &mut up);
                    gemm_serial(Trans::No, Trans::Yes, -1.0, &up, ub, 1.0, cm);
                    ws.give(up);
                }
                ws.give(w);
            }
            (Tile::LowRank { u: ua, v: va }, Tile::Dense(bm)) => {
                if ua.cols() == 0 {
                    return;
                }
                // C −= Ua · (B·Va)ᵀ
                let mut vp = ws.take(bm.rows(), ua.cols());
                gemm_serial(Trans::No, Trans::No, 1.0, bm, va, 0.0, &mut vp);
                gemm_serial(Trans::No, Trans::Yes, -1.0, ua, &vp, 1.0, cm);
                ws.give(vp);
            }
            (Tile::Dense(am), Tile::LowRank { u: ub, v: vb }) => {
                if ub.cols() == 0 {
                    return;
                }
                // C −= (A·Vb) · Ubᵀ
                let mut up = ws.take(am.rows(), ub.cols());
                gemm_serial(Trans::No, Trans::No, 1.0, am, vb, 0.0, &mut up);
                gemm_serial(Trans::No, Trans::Yes, -1.0, &up, ub, 1.0, cm);
                ws.give(up);
            }
            _ => unreachable!("null and dense×dense operands handled above"),
        }
        return;
    }
    // Low-rank / null destination: stack `[U_c  −U_p] · [V_c  V_p]ᵀ`
    // with the product block written straight into the workspace-backed
    // stacked factors, then recompress.
    let rows = c.rows();
    let cols = c.cols();
    let kc = match &*c {
        Tile::LowRank { u, .. } => u.cols(),
        _ => 0,
    };
    let (us, vs) = match (a, b) {
        (Tile::LowRank { u: ua, v: va }, Tile::LowRank { u: ub, v: vb }) => {
            let (ka, kb) = (ua.cols(), ub.cols());
            if ka == 0 || kb == 0 {
                return;
            }
            let kp = ka.min(kb);
            let mut us = ws.take(rows, kc + kp);
            let mut vs = ws.take(cols, kc + kp);
            copy_tile_factors(c, &mut us, &mut vs);
            // W = Vaᵀ·Vb  (ka × kb)
            let mut w = ws.take(ka, kb);
            gemm_serial(Trans::Yes, Trans::No, 1.0, va, vb, 0.0, &mut w);
            if ka <= kb {
                // product = (−Ua) · (Ub·Wᵀ)ᵀ, rank ka
                copy_cols_scaled(&mut us, kc, ua, -1.0);
                gemm_serial_into_cols(Trans::No, Trans::Yes, 1.0, ub, &w, 0.0, &mut vs, kc);
            } else {
                // product = (−Ua·W) · Ubᵀ, rank kb
                gemm_serial_into_cols(Trans::No, Trans::No, -1.0, ua, &w, 0.0, &mut us, kc);
                copy_cols_scaled(&mut vs, kc, ub, 1.0);
            }
            ws.give(w);
            (us, vs)
        }
        (Tile::LowRank { u: ua, v: va }, Tile::Dense(bm)) => {
            if ua.cols() == 0 {
                return;
            }
            let mut us = ws.take(rows, kc + ua.cols());
            let mut vs = ws.take(cols, kc + ua.cols());
            copy_tile_factors(c, &mut us, &mut vs);
            // product = (−Ua) · (B·Va)ᵀ
            copy_cols_scaled(&mut us, kc, ua, -1.0);
            gemm_serial_into_cols(Trans::No, Trans::No, 1.0, bm, va, 0.0, &mut vs, kc);
            (us, vs)
        }
        (Tile::Dense(am), Tile::LowRank { u: ub, v: vb }) => {
            if ub.cols() == 0 {
                return;
            }
            let mut us = ws.take(rows, kc + ub.cols());
            let mut vs = ws.take(cols, kc + ub.cols());
            copy_tile_factors(c, &mut us, &mut vs);
            // product = (−A·Vb) · Ubᵀ
            gemm_serial_into_cols(Trans::No, Trans::No, -1.0, am, vb, 0.0, &mut us, kc);
            copy_cols_scaled(&mut vs, kc, ub, 1.0);
            (us, vs)
        }
        _ => unreachable!("null and dense×dense operands handled above"),
    };
    // The destination's factors are fully copied into `us`/`vs`, so its
    // buffers can be reclaimed *before* recompression — that way they are
    // in the pool when the recompressed factors are taken, which is what
    // lets the take/give cycle reach a fixed point (reclaiming after
    // would let each call walk off with an oversized buffer and re-grow
    // a smaller one forever).
    ws.give_tile(std::mem::replace(c, Tile::Null { rows, cols }));
    *c = recompress_ws(ws, us, vs, rows, cols, config);
}

/// `C −= up · vpᵀ`, preserving/choosing C's format with recompression.
///
/// * Dense `C`: dense accumulate (no format change).
/// * Low-rank or null `C`: stack `[U_c  −up]·[V_c  vp]ᵀ` and recompress via
///   QR of both stacked factors + SVD of the small core, truncated at the
///   configured accuracy. The result may be `Null` (fully cancelled),
///   `LowRank`, or `Dense` (rank grew past the pay-off point).
///
/// Uses the calling thread's workspace; see [`subtract_lowrank_ws`].
pub fn subtract_lowrank(c: &mut Tile, up: &Matrix, vp: &Matrix, config: &CompressionConfig) {
    with_thread_workspace(|ws| subtract_lowrank_ws(ws, c, up, vp, config));
}

/// [`subtract_lowrank`] against an explicit workspace (allocation-free in
/// steady state).
pub fn subtract_lowrank_ws(
    ws: &mut KernelWorkspace,
    c: &mut Tile,
    up: &Matrix,
    vp: &Matrix,
    config: &CompressionConfig,
) {
    let kp = up.cols();
    if kp == 0 {
        return;
    }
    match c {
        Tile::Dense(cm) => {
            gemm_serial(Trans::No, Trans::Yes, -1.0, up, vp, 1.0, cm);
        }
        Tile::LowRank { .. } | Tile::Null { .. } => {
            let rows = c.rows();
            let cols = c.cols();
            let kc = match &*c {
                Tile::LowRank { u, .. } => u.cols(),
                _ => 0,
            };
            // Stack factors: U_s = [U_c  −up], V_s = [V_c  vp].
            let mut us = ws.take(rows, kc + kp);
            let mut vs = ws.take(cols, kc + kp);
            copy_tile_factors(c, &mut us, &mut vs);
            copy_cols_scaled(&mut us, kc, up, -1.0);
            copy_cols_scaled(&mut vs, kc, vp, 1.0);
            // Reclaim before recompressing — see `gemm_kernel_ws`.
            ws.give_tile(std::mem::replace(c, Tile::Null { rows, cols }));
            *c = recompress_ws(ws, us, vs, rows, cols, config);
        }
    }
}

/// Copy a low-rank tile's `u`/`v` factors into the leading columns of the
/// stacked factors (no-op for null destinations).
fn copy_tile_factors(c: &Tile, us: &mut Matrix, vs: &mut Matrix) {
    if let Tile::LowRank { u, v } = c {
        copy_cols_scaled(us, 0, u, 1.0);
        copy_cols_scaled(vs, 0, v, 1.0);
    }
}

/// `dst[:, j0 .. j0+src.cols()) = alpha · src` — the scaled-copy half of
/// the stacking loop; `alpha = −1` folds the update's sign into the write
/// (IEEE negation is exact, so this matches negate-after-multiply
/// bitwise).
fn copy_cols_scaled(dst: &mut Matrix, j0: usize, src: &Matrix, alpha: f64) {
    for j in 0..src.cols() {
        let d = &mut dst.col_mut(j0 + j)[..src.rows()];
        let s = src.col(j);
        if alpha == 1.0 {
            d.copy_from_slice(s);
        } else {
            for (di, si) in d.iter_mut().zip(s) {
                *di = alpha * si;
            }
        }
    }
}

/// Recompress a stacked `U_s·V_sᵀ` product into canonical tile form using
/// the workspace: QR of both stacked factors (`tau` buffers recycled),
/// SVD of the small core into the arena's reusable output, then
/// re-projection by **implicit** application of the stored Householder
/// reflectors (`Qr::apply_q`) — the thin `Q` factors are never formed.
/// All of `us`/`vs` and the QR factor storage return to the pool before
/// this function does.
fn recompress_ws(
    ws: &mut KernelWorkspace,
    us: Matrix,
    vs: Matrix,
    rows: usize,
    cols: usize,
    config: &CompressionConfig,
) -> Tile {
    let taus_u = ws.take_taus();
    let qu = Qr::new_in(us, taus_u);
    let taus_v = ws.take_taus();
    let qv = Qr::new_in(vs, taus_v);
    // Stacked input rank (k_c + k_product) before truncation, for the
    // rank-evolution log.
    let ktot = qu.cols();
    let ku = qu.k();
    let kv = qv.k();
    let mut ru = ws.take(ku, qu.cols()); // ku × ktot
    qu.r_into(&mut ru);
    let mut rv = ws.take(kv, qv.cols()); // kv × ktot
    qv.r_into(&mut rv);
    // Core = Ru · Rvᵀ (ku × kv), small.
    let mut core = ws.take(ku, kv);
    gemm_serial(Trans::No, Trans::Yes, 1.0, &ru, &rv, 0.0, &mut core);
    jacobi_svd_into(&core, &mut ws.svd, &mut ws.svd_work);
    ws.give(ru);
    ws.give(rv);
    ws.give(core);
    let k = ws.svd.rank_at_frobenius(config.accuracy).min(config.max_rank);
    if k == 0 {
        ws.log_recompress_null(ktot);
        reclaim_qr(ws, qu);
        reclaim_qr(ws, qv);
        return Tile::Null { rows, cols };
    }
    // U = Q_u · (X_k · Σ_k) ; V = Q_v · Y_k — implicit-Q application.
    let mut xs = ws.take(ku, k);
    for p in 0..k {
        let sv = ws.svd.s[p];
        for (x, &uv) in xs.col_mut(p).iter_mut().zip(ws.svd.u.col(p)) {
            *x = sv * uv;
        }
    }
    let mut u = ws.take_out(rows, k);
    qu.apply_q(&xs, &mut u);
    ws.give(xs);
    reclaim_qr(ws, qu);
    let mut ys = ws.take(kv, k);
    for p in 0..k {
        ys.col_mut(p).copy_from_slice(ws.svd.v.col(p));
    }
    let mut v = ws.take_out(cols, k);
    qv.apply_q(&ys, &mut v);
    ws.give(ys);
    reclaim_qr(ws, qv);
    if !config.low_rank_pays_off(k, rows, cols) {
        ws.log_recompress_dense(ktot, k);
        let mut dense = ws.take_out(rows, cols);
        gemm_serial(Trans::No, Trans::Yes, 1.0, &u, &v, 0.0, &mut dense);
        ws.give_out(u);
        ws.give_out(v);
        return Tile::Dense(dense);
    }
    ws.log_recompress(ktot, k);
    Tile::LowRank { u, v }
}

/// Return a consumed QR factorization's buffers to the workspace.
fn reclaim_qr(ws: &mut KernelWorkspace, qr: Qr) {
    let (factors, taus) = qr.into_parts();
    ws.give(factors);
    ws.give_taus(taus);
}

pub mod reference {
    //! The pre-workspace recompression path, kept verbatim.
    //!
    //! This is the allocating, explicit-Q implementation the workspace
    //! engine replaced: fresh `Matrix` buffers per call, cloned operand
    //! factors, `up.clone()+scale(−1)` negation, and `Qr::q_thin()` +
    //! GEMM re-projection. It exists for two reasons: the
    //! `gemm_recompress` bench measures the new engine against it in the
    //! same run, and the property/equivalence tests use it as a
    //! differential oracle.

    use super::*;
    use tlr_linalg::Svd;

    /// The pre-PR one-sided Jacobi SVD, kept verbatim (fresh buffers,
    /// three dot products per pair scan, recursive transpose handling,
    /// stable sort). The shared [`tlr_linalg::jacobi_svd_into`] has since
    /// been optimized (cached column norms), so the honest pre-PR
    /// baseline needs its own frozen copy.
    fn jacobi_svd_reference(a: &Matrix) -> Svd {
        if a.rows() < a.cols() {
            let t = jacobi_svd_reference(&a.transpose());
            return Svd { u: t.v, s: t.s, v: t.u };
        }
        let m = a.rows();
        let n = a.cols();
        if n == 0 {
            return Svd { u: Matrix::zeros(m, 0), s: vec![], v: Matrix::zeros(0, 0) };
        }
        let mut w = a.clone();
        let mut v = Matrix::identity(n);
        let eps = f64::EPSILON;

        const MAX_SWEEPS: usize = 60;
        for _sweep in 0..MAX_SWEEPS {
            let mut rotated = false;
            for p in 0..n.saturating_sub(1) {
                for q in p + 1..n {
                    let (app, aqq, apq) = {
                        let cp = w.col(p);
                        let cq = w.col(q);
                        let mut app = 0.0;
                        let mut aqq = 0.0;
                        let mut apq = 0.0;
                        for i in 0..m {
                            app += cp[i] * cp[i];
                            aqq += cq[i] * cq[i];
                            apq += cp[i] * cq[i];
                        }
                        (app, aqq, apq)
                    };
                    if apq.abs() <= eps * (app * aqq).sqrt() || apq == 0.0 {
                        continue;
                    }
                    rotated = true;
                    let zeta = (aqq - app) / (2.0 * apq);
                    let t = zeta.signum() / (zeta.abs() + (1.0 + zeta * zeta).sqrt());
                    let c = 1.0 / (1.0 + t * t).sqrt();
                    let s = c * t;
                    {
                        let (cp, cq) = w.two_cols_mut(p, q);
                        for i in 0..m {
                            let wp = cp[i];
                            let wq = cq[i];
                            cp[i] = c * wp - s * wq;
                            cq[i] = s * wp + c * wq;
                        }
                    }
                    {
                        let (vp, vq) = v.two_cols_mut(p, q);
                        for i in 0..n {
                            let xp = vp[i];
                            let xq = vq[i];
                            vp[i] = c * xp - s * xq;
                            vq[i] = s * xp + c * xq;
                        }
                    }
                }
            }
            if !rotated {
                break;
            }
        }

        let mut order: Vec<usize> = (0..n).collect();
        let norms: Vec<f64> = (0..n)
            .map(|j| tlr_linalg::norms::frobenius_norm_slice(w.col(j)))
            .collect();
        order.sort_by(|&i, &j| norms[j].partial_cmp(&norms[i]).unwrap());

        let mut u = Matrix::zeros(m, n);
        let mut vv = Matrix::zeros(n, n);
        let mut s = Vec::with_capacity(n);
        for (dst, &src) in order.iter().enumerate() {
            let sv = norms[src];
            s.push(sv);
            if sv > 0.0 {
                let wc = w.col(src);
                let uc = u.col_mut(dst);
                for i in 0..m {
                    uc[i] = wc[i] / sv;
                }
            }
            let vc = v.col(src);
            let vvc = vv.col_mut(dst);
            vvc.copy_from_slice(vc);
        }
        Svd { u, s, v: vv }
    }

    /// Pre-workspace [`super::gemm_kernel`]: identical semantics, fresh
    /// allocations per call, explicit-Q recompression.
    pub fn gemm_kernel_reference(a: &Tile, b: &Tile, c: &mut Tile, config: &CompressionConfig) {
        if a.is_null() || b.is_null() {
            return;
        }
        // Express the product A·Bᵀ in low-rank form (u_p · v_pᵀ) when possible.
        let product = match (a, b) {
            (Tile::LowRank { u: ua, v: va }, Tile::LowRank { u: ub, v: vb }) => {
                let ka = ua.cols();
                let kb = ub.cols();
                if ka == 0 || kb == 0 {
                    return;
                }
                // W = Vaᵀ·Vb  (ka × kb)
                let mut w = Matrix::zeros(ka, kb);
                gemm_serial(Trans::Yes, Trans::No, 1.0, va, vb, 0.0, &mut w);
                if ka <= kb {
                    // P = Ua · (Ub·Wᵀ)ᵀ, rank ka
                    let mut vp = Matrix::zeros(ub.rows(), ka);
                    gemm_serial(Trans::No, Trans::Yes, 1.0, ub, &w, 0.0, &mut vp);
                    Some((ua.clone(), vp))
                } else {
                    // P = (Ua·W) · Ubᵀ, rank kb
                    let mut up = Matrix::zeros(ua.rows(), kb);
                    gemm_serial(Trans::No, Trans::No, 1.0, ua, &w, 0.0, &mut up);
                    Some((up, ub.clone()))
                }
            }
            (Tile::LowRank { u: ua, v: va }, Tile::Dense(bm)) => {
                if ua.cols() == 0 {
                    return;
                }
                // P = Ua · (B·Va)ᵀ
                let ka = ua.cols();
                let mut vp = Matrix::zeros(bm.rows(), ka);
                gemm_serial(Trans::No, Trans::No, 1.0, bm, va, 0.0, &mut vp);
                Some((ua.clone(), vp))
            }
            (Tile::Dense(am), Tile::LowRank { u: ub, v: vb }) => {
                if ub.cols() == 0 {
                    return;
                }
                // P = (A·Vb) · Ubᵀ
                let kb = ub.cols();
                let mut up = Matrix::zeros(am.rows(), kb);
                gemm_serial(Trans::No, Trans::No, 1.0, am, vb, 0.0, &mut up);
                Some((up, ub.clone()))
            }
            (Tile::Dense(_), Tile::Dense(_)) => None,
            _ => unreachable!("null operands handled above"),
        };

        match product {
            Some((up, vp)) => subtract_lowrank_reference(c, &up, &vp, config),
            None => {
                // dense × dense: compute densely and keep C dense.
                let (am, bm) = match (a, b) {
                    (Tile::Dense(am), Tile::Dense(bm)) => (am, bm),
                    _ => unreachable!(),
                };
                let mut cd = c.to_dense();
                gemm_serial(Trans::No, Trans::Yes, -1.0, am, bm, 1.0, &mut cd);
                *c = Tile::Dense(cd);
            }
        }
    }

    /// Pre-workspace [`super::subtract_lowrank`] with clone-based
    /// stacking.
    pub fn subtract_lowrank_reference(
        c: &mut Tile,
        up: &Matrix,
        vp: &Matrix,
        config: &CompressionConfig,
    ) {
        let kp = up.cols();
        if kp == 0 {
            return;
        }
        match c {
            Tile::Dense(cm) => {
                gemm_serial(Trans::No, Trans::Yes, -1.0, up, vp, 1.0, cm);
            }
            Tile::LowRank { .. } | Tile::Null { .. } => {
                let rows = c.rows();
                let cols = c.cols();
                let (uc, vc) = match c {
                    Tile::LowRank { u, v } => (Some(u), Some(v)),
                    _ => (None, None),
                };
                let kc = uc.as_ref().map_or(0, |u| u.cols());
                let ktot = kc + kp;
                // Stack factors: U_s = [U_c  −up], V_s = [V_c  vp].
                let mut us = Matrix::zeros(rows, ktot);
                let mut vs = Matrix::zeros(cols, ktot);
                if let (Some(uc), Some(vc)) = (uc, vc) {
                    us.set_submatrix(0, 0, uc);
                    vs.set_submatrix(0, 0, vc);
                }
                {
                    let mut neg = up.clone();
                    neg.scale(-1.0);
                    us.set_submatrix(0, kc, &neg);
                    vs.set_submatrix(0, kc, vp);
                }
                *c = recompress_reference(us, vs, rows, cols, config);
            }
        }
    }

    /// Pre-workspace recompression: explicit `q_thin()` factors and two
    /// `b × kt × k'` re-projection GEMMs.
    pub fn recompress_reference(
        us: Matrix,
        vs: Matrix,
        rows: usize,
        cols: usize,
        config: &CompressionConfig,
    ) -> Tile {
        let qu = Qr::new(us);
        let qv = Qr::new(vs);
        let ru = qu.r(); // ku × ktot
        let rv = qv.r(); // kv × ktot
        // Core = Ru · Rvᵀ (ku × kv), small.
        let mut core = Matrix::zeros(ru.rows(), rv.rows());
        gemm_serial(Trans::No, Trans::Yes, 1.0, &ru, &rv, 0.0, &mut core);
        let svd = jacobi_svd_reference(&core);
        let k = svd.rank_at_frobenius(config.accuracy).min(config.max_rank);
        if k == 0 {
            return Tile::Null { rows, cols };
        }
        // U = Q_u · X_k · Σ_k ; V = Q_v · Y_k
        let x = svd.u.submatrix(0, 0, svd.u.rows(), k);
        let mut xs = x;
        for p in 0..k {
            let sv = svd.s[p];
            for val in xs.col_mut(p) {
                *val *= sv;
            }
        }
        let quf = qu.q_thin();
        let qvf = qv.q_thin();
        let mut u = Matrix::zeros(rows, k);
        gemm_serial(Trans::No, Trans::No, 1.0, &quf, &xs, 0.0, &mut u);
        let y = svd.v.submatrix(0, 0, svd.v.rows(), k);
        let mut v = Matrix::zeros(cols, k);
        gemm_serial(Trans::No, Trans::No, 1.0, &qvf, &y, 0.0, &mut v);
        if !config.low_rank_pays_off(k, rows, cols) {
            let t = Tile::LowRank { u, v };
            return Tile::Dense(t.to_dense());
        }
        Tile::LowRank { u, v }
    }
}

/// Operation counts for every kernel variant, parameterized by tile size
/// and the ranks involved. These drive the discrete-event time model; the
/// constants follow standard dense-LA flop counting (LAPACK Users' Guide).
pub mod flops {
    /// Cholesky of a `b × b` dense tile: `b³/3`.
    pub fn potrf(b: usize) -> f64 {
        let b = b as f64;
        b * b * b / 3.0
    }

    /// Dense TRSM `b × b` against a `b × b` triangle: `b³`.
    pub fn trsm_dense(b: usize) -> f64 {
        let b = b as f64;
        b * b * b
    }

    /// Low-rank TRSM: triangular solve on the `b × k` factor: `b²·k`.
    pub fn trsm_lr(b: usize, k: usize) -> f64 {
        (b * b) as f64 * k as f64
    }

    /// Dense SYRK `b × b`: `b³`.
    pub fn syrk_dense(b: usize) -> f64 {
        let b = b as f64;
        b * b * b
    }

    /// Low-rank SYRK `C −= U(VᵀV)Uᵀ`: Gram `2bk²` + mult `2bk²` + update `2b²k`.
    pub fn syrk_lr(b: usize, k: usize) -> f64 {
        let (b, k) = (b as f64, k as f64);
        4.0 * b * k * k + 2.0 * b * b * k
    }

    /// Dense GEMM `b × b × b`: `2b³`.
    pub fn gemm_dense(b: usize) -> f64 {
        let b = b as f64;
        2.0 * b * b * b
    }

    /// TLR GEMM with recompression, operands of rank `ka`, `kb`,
    /// destination rank `kc` (before update), for the **implicit-Q**
    /// engine.
    ///
    /// Terms, with `kp = min(ka, kb)` and stacked rank `kt = kc + kp`:
    /// product form `2·b·ka·kb` (+ `2·b·kp²`), stacked QRs `≈ 4·b·kt²`,
    /// small SVD `O(kt³)`, and implicit-Q re-projection `4·b·kt·k'` where
    /// `k'` is the post-truncation rank (estimated as `kc`, clamped to
    /// `[1, kt]`). The old explicit-Q path paid `4·b·kt²` here — forming
    /// each thin `Q` *and* multiplying it — independent of how hard the
    /// truncation cut; applying the reflectors directly to the truncated
    /// block makes the cost proportional to what survives.
    pub fn gemm_tlr(b: usize, ka: usize, kb: usize, kc: usize) -> f64 {
        let kp = ka.min(kb);
        let kt = (kc + kp) as f64;
        let kout = kc.max(1).min(kc + kp) as f64;
        let (bf, kaf, kbf) = (b as f64, ka as f64, kb as f64);
        let product = 2.0 * bf * kaf * kbf + 2.0 * bf * (kp * kp) as f64;
        let qr2 = 4.0 * bf * kt * kt;
        let svd = 12.0 * kt * kt * kt;
        let reproject = 4.0 * bf * kt * kout;
        product + qr2 + svd + reproject
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compress::compress_tile;
    use tlr_linalg::norms::{frobenius_norm, relative_diff};

    fn rand_mat(r: usize, c: usize, seed: u64) -> Matrix {
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        Matrix::from_fn(r, c, |_, _| {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((state >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        })
    }

    fn spd_tile(b: usize, seed: u64) -> Matrix {
        let m = rand_mat(b, b, seed);
        let mut a = Matrix::identity(b);
        a.scale(b as f64);
        tlr_linalg::gemm(Trans::No, Trans::Yes, 1.0, &m, &m, 1.0, &mut a);
        a
    }

    fn smooth_tile(b: usize, shift: f64) -> Matrix {
        Matrix::from_fn(b, b, |i, j| {
            let d = (i as f64 - j as f64 + shift) / (b as f64 / 2.0);
            (-d * d).exp()
        })
    }

    #[test]
    fn potrf_kernel_factorizes() {
        let a = spd_tile(32, 1);
        let mut t = Tile::Dense(a.clone());
        potrf_kernel(&mut t).unwrap();
        let l = t.to_dense();
        let mut recon = Matrix::zeros(32, 32);
        gemm_serial(Trans::No, Trans::Yes, 1.0, &l, &l, 0.0, &mut recon);
        assert!(relative_diff(&recon, &a) < 1e-12);
    }

    #[test]
    fn trsm_kernel_dense_vs_lowrank_agree() {
        let b = 32;
        let lmat = {
            let mut l = spd_tile(b, 2);
            potrf(&mut l).unwrap();
            l.zero_upper();
            l
        };
        let ldiag = Tile::Dense(lmat.clone());
        let a_dense_mat = smooth_tile(b, 40.0);
        // dense path
        let mut t_dense = Tile::Dense(a_dense_mat.clone());
        trsm_kernel(&ldiag, &mut t_dense);
        // low-rank path
        let cfg = CompressionConfig::with_accuracy(1e-10);
        let mut t_lr = compress_tile(a_dense_mat, &cfg);
        assert!(matches!(t_lr, Tile::LowRank { .. }), "tile should compress");
        trsm_kernel(&ldiag, &mut t_lr);
        assert!(relative_diff(&t_lr.to_dense(), &t_dense.to_dense()) < 1e-8);
    }

    #[test]
    fn trsm_kernel_null_noop() {
        let lmat = {
            let mut l = spd_tile(8, 3);
            potrf(&mut l).unwrap();
            l
        };
        let mut t = Tile::Null { rows: 8, cols: 8 };
        trsm_kernel(&Tile::Dense(lmat), &mut t);
        assert!(t.is_null());
    }

    #[test]
    fn syrk_kernel_dense_vs_lowrank_agree() {
        let b = 32;
        let c0 = spd_tile(b, 4);
        let a_mat = smooth_tile(b, 38.0);
        let mut c_dense = Tile::Dense(c0.clone());
        syrk_kernel(&Tile::Dense(a_mat.clone()), &mut c_dense);
        let cfg = CompressionConfig::with_accuracy(1e-10);
        let a_lr = compress_tile(a_mat, &cfg);
        let mut c_lr = Tile::Dense(c0);
        syrk_kernel(&a_lr, &mut c_lr);
        assert!(relative_diff(&c_lr.to_dense(), &c_dense.to_dense()) < 1e-8);
    }

    #[test]
    fn gemm_kernel_all_format_combinations_agree_with_dense() {
        let b = 24;
        let cfg = CompressionConfig::with_accuracy(1e-9);
        let a_mat = smooth_tile(b, 30.0);
        let b_mat = smooth_tile(b, 34.0);
        let c_mat = smooth_tile(b, 50.0);

        // Reference: dense arithmetic.
        let mut c_ref = c_mat.clone();
        gemm_serial(Trans::No, Trans::Yes, -1.0, &a_mat, &b_mat, 1.0, &mut c_ref);

        let formats: Vec<(&str, Tile)> = vec![
            ("dense", Tile::Dense(a_mat.clone())),
            ("lr", compress_tile(a_mat.clone(), &cfg)),
        ];
        let formats_b: Vec<(&str, Tile)> = vec![
            ("dense", Tile::Dense(b_mat.clone())),
            ("lr", compress_tile(b_mat.clone(), &cfg)),
        ];
        let formats_c: Vec<(&str, Tile)> = vec![
            ("dense", Tile::Dense(c_mat.clone())),
            ("lr", compress_tile(c_mat.clone(), &cfg)),
        ];
        for (an, at) in &formats {
            for (bn, bt) in &formats_b {
                for (cn, ct) in &formats_c {
                    let mut c = ct.clone();
                    gemm_kernel(at, bt, &mut c, &cfg);
                    let err = relative_diff(&c.to_dense(), &c_ref);
                    assert!(err < 1e-6, "a={an} b={bn} c={cn}: err={err}");
                }
            }
        }
    }

    #[test]
    fn workspace_path_matches_reference_path() {
        // Differential test across every operand/destination format: the
        // workspace engine and the preserved pre-workspace path must
        // agree to near machine precision (they do the same arithmetic;
        // only the Q application differs in rounding).
        let b = 24;
        let cfg = CompressionConfig::with_accuracy(1e-9);
        let a_mat = smooth_tile(b, 30.0);
        let b_mat = smooth_tile(b, 34.0);
        let c_mat = smooth_tile(b, 50.0);
        let formats_a = [Tile::Dense(a_mat.clone()), compress_tile(a_mat, &cfg)];
        let formats_b = [Tile::Dense(b_mat.clone()), compress_tile(b_mat, &cfg)];
        let formats_c = [
            Tile::Dense(c_mat.clone()),
            compress_tile(c_mat, &cfg),
            Tile::Null { rows: b, cols: b },
        ];
        let mut ws = KernelWorkspace::new();
        for at in &formats_a {
            for bt in &formats_b {
                for ct in &formats_c {
                    let mut c_new = ct.clone();
                    gemm_kernel_ws(&mut ws, at, bt, &mut c_new, &cfg);
                    let mut c_old = ct.clone();
                    reference::gemm_kernel_reference(at, bt, &mut c_old, &cfg);
                    assert_eq!(c_new.format(), c_old.format());
                    assert_eq!(c_new.rank(), c_old.rank());
                    let err = relative_diff(&c_new.to_dense(), &c_old.to_dense());
                    assert!(err < 1e-12, "formats {:?}/{:?}/{:?}: err={err}",
                        at.format(), bt.format(), ct.format());
                }
            }
        }
    }

    #[test]
    fn workspace_reuse_across_many_calls_stays_correct() {
        // Drive one arena through a long, rank-varying call sequence and
        // check against the reference path each time — buffer recycling
        // must never leak state between calls.
        let b = 32;
        let cfg = CompressionConfig::with_accuracy(1e-8);
        let mut ws = KernelWorkspace::new();
        let mut c_new = Tile::Null { rows: b, cols: b };
        let mut c_old = Tile::Null { rows: b, cols: b };
        for s in 0..8 {
            let a_t = compress_tile(smooth_tile(b, 28.0 + 2.0 * s as f64), &cfg);
            let b_t = compress_tile(smooth_tile(b, 41.0 + 3.0 * s as f64), &cfg);
            gemm_kernel_ws(&mut ws, &a_t, &b_t, &mut c_new, &cfg);
            reference::gemm_kernel_reference(&a_t, &b_t, &mut c_old, &cfg);
            assert_eq!(c_new.rank(), c_old.rank(), "step {s}");
            assert!(
                relative_diff(&c_new.to_dense(), &c_old.to_dense()) < 1e-11,
                "step {s}"
            );
        }
    }

    #[test]
    fn gemm_kernel_zero_rank_operands_noop() {
        // Satellite bugfix: zero-rank (but non-Null) low-rank operands
        // must leave C untouched in the mixed arms too.
        let b = 16;
        let cfg = CompressionConfig::default();
        let zero_lr = Tile::LowRank { u: Matrix::zeros(b, 0), v: Matrix::zeros(b, 0) };
        let dense = Tile::Dense(smooth_tile(b, 20.0));
        let c0 = compress_tile(smooth_tile(b, 26.0), &CompressionConfig::with_accuracy(1e-9));
        for other in [&dense, &zero_lr] {
            let mut c = c0.clone();
            gemm_kernel(&zero_lr, other, &mut c, &cfg);
            assert!(relative_diff(&c.to_dense(), &c0.to_dense()) < 1e-15);
            let mut c = c0.clone();
            gemm_kernel(other, &zero_lr, &mut c, &cfg);
            assert!(relative_diff(&c.to_dense(), &c0.to_dense()) < 1e-15);
        }
        // Dense destination too.
        let mut c = dense.clone();
        gemm_kernel(&zero_lr, &dense, &mut c, &cfg);
        assert!(relative_diff(&c.to_dense(), &dense.to_dense()) < 1e-15);
    }

    #[test]
    fn gemm_kernel_null_operands_noop() {
        let cfg = CompressionConfig::default();
        let c0 = smooth_tile(16, 20.0);
        let mut c = Tile::Dense(c0.clone());
        gemm_kernel(&Tile::Null { rows: 16, cols: 16 }, &Tile::Dense(c0.clone()), &mut c, &cfg);
        assert!(relative_diff(&c.to_dense(), &c0) < 1e-15);
        gemm_kernel(&Tile::Dense(c0.clone()), &Tile::Null { rows: 16, cols: 16 }, &mut c, &cfg);
        assert!(relative_diff(&c.to_dense(), &c0) < 1e-15);
    }

    #[test]
    fn gemm_into_null_creates_fill_in() {
        let b = 24;
        let cfg = CompressionConfig::with_accuracy(1e-9);
        let a_t = compress_tile(smooth_tile(b, 30.0), &cfg);
        let b_t = compress_tile(smooth_tile(b, 34.0), &cfg);
        let mut c = Tile::Null { rows: b, cols: b };
        gemm_kernel(&a_t, &b_t, &mut c, &cfg);
        assert!(!c.is_null(), "fill-in expected");
        // result should equal -A·Bᵀ
        let mut expect = Matrix::zeros(b, b);
        gemm_serial(Trans::No, Trans::Yes, -1.0, &a_t.to_dense(), &b_t.to_dense(), 0.0, &mut expect);
        assert!(relative_diff(&c.to_dense(), &expect) < 1e-6);
    }

    #[test]
    fn gemm_cancellation_produces_null() {
        // C = A·Bᵀ exactly, then C −= A·Bᵀ ⇒ C ≈ 0 ⇒ Null after recompress.
        let b = 16;
        let cfg = CompressionConfig::with_accuracy(1e-8);
        let a_t = compress_tile(smooth_tile(b, 18.0), &cfg);
        let b_t = compress_tile(smooth_tile(b, 22.0), &cfg);
        let mut prod = Tile::Null { rows: b, cols: b };
        gemm_kernel(&a_t, &b_t, &mut prod, &cfg);
        // negate: C = -prod, then subtract the product again
        let mut c = match &prod {
            Tile::LowRank { u, v } => {
                let mut un = u.clone();
                un.scale(-1.0);
                Tile::LowRank { u: un, v: v.clone() }
            }
            other => other.clone(),
        };
        // c = -A·Bᵀ... wait: prod = −A·Bᵀ so c = A·Bᵀ; c −= A·Bᵀ ⇒ 0
        gemm_kernel(&a_t, &b_t, &mut c, &cfg);
        assert!(
            c.is_null() || frobenius_norm(&c.to_dense()) < 1e-6,
            "cancelled tile should vanish (rank {})",
            c.rank()
        );
    }

    #[test]
    fn recompression_bounds_rank_growth() {
        // Accumulate several rank-k updates into one tile; rank must stay
        // bounded by the spectrum, not grow additively.
        let b = 32;
        let cfg = CompressionConfig::with_accuracy(1e-6);
        let mut c = Tile::Null { rows: b, cols: b };
        for s in 0..6 {
            let a_t = compress_tile(smooth_tile(b, 30.0 + s as f64), &cfg);
            let b_t = compress_tile(smooth_tile(b, 44.0 + s as f64), &cfg);
            gemm_kernel(&a_t, &b_t, &mut c, &cfg);
        }
        assert!(c.rank() < b / 2, "rank should stay bounded, got {}", c.rank());
    }

    #[test]
    fn workspace_take_give_best_fit() {
        let mut ws = KernelWorkspace::new();
        let a = ws.take(4, 4); // 16
        let b = ws.take(10, 10); // 100
        ws.give(a);
        ws.give(b);
        // A 5×5 request must reuse a pooled buffer (no shrink of the
        // bigger one below its capacity) and come back zeroed.
        let c = ws.take(5, 5);
        assert_eq!((c.rows(), c.cols()), (5, 5));
        assert!(c.as_slice().iter().all(|&v| v == 0.0));
        ws.give(c);
        // Pool keeps both buffers: a 100-element take still fits without
        // growing the small one.
        let d = ws.take(10, 10);
        assert_eq!(d.as_slice().len(), 100);
    }

    #[test]
    fn flop_counts_sane() {
        assert_eq!(flops::potrf(10), 1000.0 / 3.0);
        assert!(flops::trsm_lr(100, 5) < flops::trsm_dense(100));
        assert!(flops::syrk_lr(100, 5) < flops::syrk_dense(100));
        assert!(flops::gemm_tlr(100, 5, 5, 5) < flops::gemm_dense(100));
        // TLR kernels grow with rank
        assert!(flops::gemm_tlr(100, 20, 20, 20) > flops::gemm_tlr(100, 5, 5, 5));
        // The implicit-Q re-projection makes the cost sensitive to the
        // surviving rank: a hard truncation (small kc) is cheaper than
        // the old explicit-Q model, which charged 4·b·kt² regardless.
        assert!(flops::gemm_tlr(128, 16, 16, 4) < flops::gemm_tlr(128, 16, 16, 16));
    }
}

//! The four TLR Cholesky tile kernels: POTRF, TRSM, SYRK, GEMM.
//!
//! These are HiCMA's HCORE kernels re-derived for the `U·Vᵀ` tile format.
//! The factorization they implement is the classic left-looking tile
//! Cholesky: for each panel `k`,
//!
//! ```text
//! POTRF  : A[k][k] = L[k][k]·L[k][k]ᵀ                    (dense diagonal)
//! TRSM   : A[m][k] = A[m][k]·L[k][k]⁻ᵀ          ∀ m > k  (TLR or dense)
//! SYRK   : A[m][m] −= A[m][k]·A[m][k]ᵀ          ∀ m > k  (dense diagonal)
//! GEMM   : A[m][n] −= A[m][k]·A[n][k]ᵀ    ∀ m > n > k    (TLR recompress)
//! ```
//!
//! The GEMM kernel is where ranks move: the low-rank update is stacked
//! against the destination's factors and recompressed (QR + SVD truncation)
//! at the configured accuracy — exactly HiCMA's recompression pipeline.
//! The [`flops`] submodule exposes the operation counts the paper's time
//! model needs, as a function of tile size and the ranks involved.

use crate::compress::CompressionConfig;
use crate::tile::Tile;
// Tile kernels run inside the task-graph executor, so they use the serial
// BLAS variants: forking onto the rayon pool from every tile would
// oversubscribe the executor's worker threads.
use tlr_linalg::{
    gemm_serial, jacobi_svd, potrf, syrk_serial, trsm, CholeskyError, Matrix, Qr, Side, Trans,
    Uplo,
};

/// POTRF kernel: factor a dense diagonal tile in place (lower Cholesky).
///
/// # Panics
/// Panics if the tile is not dense — diagonal tiles never compress in TLR
/// Cholesky (their ranks are full by SPD-ness).
pub fn potrf_kernel(c: &mut Tile) -> Result<(), CholeskyError> {
    match c {
        Tile::Dense(m) => {
            potrf(m)?;
            m.zero_upper();
            Ok(())
        }
        _ => panic!("POTRF requires a dense diagonal tile"),
    }
}

/// TRSM kernel: `A := A · L⁻ᵀ` where `l` holds the factored diagonal tile.
///
/// For a low-rank `A = U·Vᵀ` only the small factor moves:
/// `A·L⁻ᵀ = U·(L⁻¹V)ᵀ`, i.e. a `b × k` triangular solve instead of
/// `b × b` — this is the arithmetic saving that makes TLR worthwhile.
pub fn trsm_kernel(l: &Tile, a: &mut Tile) {
    let l = match l {
        Tile::Dense(m) => m,
        _ => panic!("TRSM requires a dense factored diagonal tile"),
    };
    match a {
        Tile::Dense(m) => trsm(Side::Right, Uplo::Lower, Trans::Yes, 1.0, l, m),
        Tile::LowRank { v, .. } => trsm(Side::Left, Uplo::Lower, Trans::No, 1.0, l, v),
        Tile::Null { .. } => {}
    }
}

/// SYRK kernel: `C −= A·Aᵀ` onto a dense diagonal tile.
///
/// Low-rank `A = U·Vᵀ` gives `A·Aᵀ = U·(VᵀV)·Uᵀ`: one `k × k` Gram
/// matrix, one `b × k` product, one rank-k dense update.
pub fn syrk_kernel(a: &Tile, c: &mut Tile) {
    let c = match c {
        Tile::Dense(m) => m,
        _ => panic!("SYRK destination (diagonal tile) must be dense"),
    };
    match a {
        Tile::Dense(m) => {
            syrk_serial(Trans::No, -1.0, m, 1.0, c);
            // Diagonal tiles are kept fully symmetric so that dense and
            // low-rank update paths produce identical tiles.
            c.symmetrize_from_lower();
        }
        Tile::LowRank { u, v } => {
            let k = u.cols();
            if k == 0 {
                return;
            }
            // W = VᵀV  (k × k)
            let mut w = Matrix::zeros(k, k);
            gemm_serial(Trans::Yes, Trans::No, 1.0, v, v, 0.0, &mut w);
            // T = U·W  (b × k)
            let mut t = Matrix::zeros(u.rows(), k);
            gemm_serial(Trans::No, Trans::No, 1.0, u, &w, 0.0, &mut t);
            // C −= T·Uᵀ (full update; the diagonal tile is kept symmetric)
            gemm_serial(Trans::No, Trans::Yes, -1.0, &t, u, 1.0, c);
        }
        Tile::Null { .. } => {}
    }
}

/// GEMM kernel: `C −= A·Bᵀ` with TLR recompression.
///
/// `A` is tile `(m, k)`, `B` is tile `(n, k)` of the factorization, `C` is
/// tile `(m, n)`. Null operands make the kernel a no-op (the DAG-trimming
/// analysis removes those calls up front; keeping the no-op here preserves
/// correctness when trimming is disabled).
pub fn gemm_kernel(a: &Tile, b: &Tile, c: &mut Tile, config: &CompressionConfig) {
    if a.is_null() || b.is_null() {
        return;
    }
    // Express the product A·Bᵀ in low-rank form (u_p · v_pᵀ) when possible.
    let product = match (a, b) {
        (Tile::LowRank { u: ua, v: va }, Tile::LowRank { u: ub, v: vb }) => {
            let ka = ua.cols();
            let kb = ub.cols();
            if ka == 0 || kb == 0 {
                return;
            }
            // W = Vaᵀ·Vb  (ka × kb)
            let mut w = Matrix::zeros(ka, kb);
            gemm_serial(Trans::Yes, Trans::No, 1.0, va, vb, 0.0, &mut w);
            if ka <= kb {
                // P = Ua · (Ub·Wᵀ)ᵀ, rank ka
                let mut vp = Matrix::zeros(ub.rows(), ka);
                gemm_serial(Trans::No, Trans::Yes, 1.0, ub, &w, 0.0, &mut vp);
                Some((ua.clone(), vp))
            } else {
                // P = (Ua·W) · Ubᵀ, rank kb
                let mut up = Matrix::zeros(ua.rows(), kb);
                gemm_serial(Trans::No, Trans::No, 1.0, ua, &w, 0.0, &mut up);
                Some((up, ub.clone()))
            }
        }
        (Tile::LowRank { u: ua, v: va }, Tile::Dense(bm)) => {
            // P = Ua · (B·Va)ᵀ
            let ka = ua.cols();
            let mut vp = Matrix::zeros(bm.rows(), ka);
            gemm_serial(Trans::No, Trans::No, 1.0, bm, va, 0.0, &mut vp);
            Some((ua.clone(), vp))
        }
        (Tile::Dense(am), Tile::LowRank { u: ub, v: vb }) => {
            // P = (A·Vb) · Ubᵀ
            let kb = ub.cols();
            let mut up = Matrix::zeros(am.rows(), kb);
            gemm_serial(Trans::No, Trans::No, 1.0, am, vb, 0.0, &mut up);
            Some((up, ub.clone()))
        }
        (Tile::Dense(_), Tile::Dense(_)) => None,
        _ => unreachable!("null operands handled above"),
    };

    match product {
        Some((up, vp)) => subtract_lowrank(c, &up, &vp, config),
        None => {
            // dense × dense: compute densely and keep C dense.
            let (am, bm) = match (a, b) {
                (Tile::Dense(am), Tile::Dense(bm)) => (am, bm),
                _ => unreachable!(),
            };
            let mut cd = c.to_dense();
            gemm_serial(Trans::No, Trans::Yes, -1.0, am, bm, 1.0, &mut cd);
            *c = Tile::Dense(cd);
        }
    }
}

/// `C −= up · vpᵀ`, preserving/choosing C's format with recompression.
///
/// * Dense `C`: dense accumulate (no format change).
/// * Low-rank or null `C`: stack `[U_c  −up]·[V_c  vp]ᵀ` and recompress via
///   QR of both stacked factors + SVD of the small core, truncated at the
///   configured accuracy. The result may be `Null` (fully cancelled),
///   `LowRank`, or `Dense` (rank grew past the pay-off point).
pub fn subtract_lowrank(c: &mut Tile, up: &Matrix, vp: &Matrix, config: &CompressionConfig) {
    let kp = up.cols();
    if kp == 0 {
        return;
    }
    match c {
        Tile::Dense(cm) => {
            gemm_serial(Trans::No, Trans::Yes, -1.0, up, vp, 1.0, cm);
        }
        Tile::LowRank { .. } | Tile::Null { .. } => {
            let rows = c.rows();
            let cols = c.cols();
            let (uc, vc) = match c {
                Tile::LowRank { u, v } => (Some(u), Some(v)),
                _ => (None, None),
            };
            let kc = uc.as_ref().map_or(0, |u| u.cols());
            let ktot = kc + kp;
            // Stack factors: U_s = [U_c  −up], V_s = [V_c  vp].
            let mut us = Matrix::zeros(rows, ktot);
            let mut vs = Matrix::zeros(cols, ktot);
            if let (Some(uc), Some(vc)) = (uc, vc) {
                us.set_submatrix(0, 0, uc);
                vs.set_submatrix(0, 0, vc);
            }
            {
                let mut neg = up.clone();
                neg.scale(-1.0);
                us.set_submatrix(0, kc, &neg);
                vs.set_submatrix(0, kc, vp);
            }
            *c = recompress(us, vs, rows, cols, config);
        }
    }
}

/// Recompress a stacked `U_s·V_sᵀ` product into canonical tile form.
fn recompress(us: Matrix, vs: Matrix, rows: usize, cols: usize, config: &CompressionConfig) -> Tile {
    let qu = Qr::new(us);
    let qv = Qr::new(vs);
    let ru = qu.r(); // ku × ktot
    let rv = qv.r(); // kv × ktot
    // Core = Ru · Rvᵀ (ku × kv), small.
    let mut core = Matrix::zeros(ru.rows(), rv.rows());
    gemm_serial(Trans::No, Trans::Yes, 1.0, &ru, &rv, 0.0, &mut core);
    let svd = jacobi_svd(&core);
    let k = svd.rank_at_frobenius(config.accuracy).min(config.max_rank);
    if k == 0 {
        return Tile::Null { rows, cols };
    }
    // U = Q_u · X_k · Σ_k ; V = Q_v · Y_k
    let x = svd.u.submatrix(0, 0, svd.u.rows(), k);
    let mut xs = x;
    for p in 0..k {
        let sv = svd.s[p];
        for val in xs.col_mut(p) {
            *val *= sv;
        }
    }
    let quf = qu.q_thin();
    let qvf = qv.q_thin();
    let mut u = Matrix::zeros(rows, k);
    gemm_serial(Trans::No, Trans::No, 1.0, &quf, &xs, 0.0, &mut u);
    let y = svd.v.submatrix(0, 0, svd.v.rows(), k);
    let mut v = Matrix::zeros(cols, k);
    gemm_serial(Trans::No, Trans::No, 1.0, &qvf, &y, 0.0, &mut v);
    if !config.low_rank_pays_off(k, rows, cols) {
        let t = Tile::LowRank { u, v };
        return Tile::Dense(t.to_dense());
    }
    Tile::LowRank { u, v }
}

/// Operation counts for every kernel variant, parameterized by tile size
/// and the ranks involved. These drive the discrete-event time model; the
/// constants follow standard dense-LA flop counting (LAPACK Users' Guide).
pub mod flops {
    /// Cholesky of a `b × b` dense tile: `b³/3`.
    pub fn potrf(b: usize) -> f64 {
        let b = b as f64;
        b * b * b / 3.0
    }

    /// Dense TRSM `b × b` against a `b × b` triangle: `b³`.
    pub fn trsm_dense(b: usize) -> f64 {
        let b = b as f64;
        b * b * b
    }

    /// Low-rank TRSM: triangular solve on the `b × k` factor: `b²·k`.
    pub fn trsm_lr(b: usize, k: usize) -> f64 {
        (b * b) as f64 * k as f64
    }

    /// Dense SYRK `b × b`: `b³`.
    pub fn syrk_dense(b: usize) -> f64 {
        let b = b as f64;
        b * b * b
    }

    /// Low-rank SYRK `C −= U(VᵀV)Uᵀ`: Gram `2bk²` + mult `2bk²` + update `2b²k`.
    pub fn syrk_lr(b: usize, k: usize) -> f64 {
        let (b, k) = (b as f64, k as f64);
        4.0 * b * k * k + 2.0 * b * b * k
    }

    /// Dense GEMM `b × b × b`: `2b³`.
    pub fn gemm_dense(b: usize) -> f64 {
        let b = b as f64;
        2.0 * b * b * b
    }

    /// TLR GEMM with recompression, operands of rank `ka`, `kb`,
    /// destination rank `kc` (before update).
    ///
    /// Terms: product form `2·b·ka·kb` (+ `2·b·min(ka,kb)²`), stacked QRs
    /// `≈ 4·b·(kc+kp)²`, small SVD `O((kc+kp)³)`, re-projection
    /// `4·b·(kc+kp)·k'` (bounded by `(kc+kp)`).
    pub fn gemm_tlr(b: usize, ka: usize, kb: usize, kc: usize) -> f64 {
        let kp = ka.min(kb);
        let kt = (kc + kp) as f64;
        let (bf, kaf, kbf) = (b as f64, ka as f64, kb as f64);
        let product = 2.0 * bf * kaf * kbf + 2.0 * bf * (kp * kp) as f64;
        let qr2 = 4.0 * bf * kt * kt;
        let svd = 12.0 * kt * kt * kt;
        let reproject = 4.0 * bf * kt * kt;
        product + qr2 + svd + reproject
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compress::compress_tile;
    use tlr_linalg::norms::{frobenius_norm, relative_diff};

    fn rand_mat(r: usize, c: usize, seed: u64) -> Matrix {
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        Matrix::from_fn(r, c, |_, _| {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((state >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        })
    }

    fn spd_tile(b: usize, seed: u64) -> Matrix {
        let m = rand_mat(b, b, seed);
        let mut a = Matrix::identity(b);
        a.scale(b as f64);
        tlr_linalg::gemm(Trans::No, Trans::Yes, 1.0, &m, &m, 1.0, &mut a);
        a
    }

    fn smooth_tile(b: usize, shift: f64) -> Matrix {
        Matrix::from_fn(b, b, |i, j| {
            let d = (i as f64 - j as f64 + shift) / (b as f64 / 2.0);
            (-d * d).exp()
        })
    }

    #[test]
    fn potrf_kernel_factorizes() {
        let a = spd_tile(32, 1);
        let mut t = Tile::Dense(a.clone());
        potrf_kernel(&mut t).unwrap();
        let l = t.to_dense();
        let mut recon = Matrix::zeros(32, 32);
        gemm_serial(Trans::No, Trans::Yes, 1.0, &l, &l, 0.0, &mut recon);
        assert!(relative_diff(&recon, &a) < 1e-12);
    }

    #[test]
    fn trsm_kernel_dense_vs_lowrank_agree() {
        let b = 32;
        let lmat = {
            let mut l = spd_tile(b, 2);
            potrf(&mut l).unwrap();
            l.zero_upper();
            l
        };
        let ldiag = Tile::Dense(lmat.clone());
        let a_dense_mat = smooth_tile(b, 40.0);
        // dense path
        let mut t_dense = Tile::Dense(a_dense_mat.clone());
        trsm_kernel(&ldiag, &mut t_dense);
        // low-rank path
        let cfg = CompressionConfig::with_accuracy(1e-10);
        let mut t_lr = compress_tile(a_dense_mat, &cfg);
        assert!(matches!(t_lr, Tile::LowRank { .. }), "tile should compress");
        trsm_kernel(&ldiag, &mut t_lr);
        assert!(relative_diff(&t_lr.to_dense(), &t_dense.to_dense()) < 1e-8);
    }

    #[test]
    fn trsm_kernel_null_noop() {
        let lmat = {
            let mut l = spd_tile(8, 3);
            potrf(&mut l).unwrap();
            l
        };
        let mut t = Tile::Null { rows: 8, cols: 8 };
        trsm_kernel(&Tile::Dense(lmat), &mut t);
        assert!(t.is_null());
    }

    #[test]
    fn syrk_kernel_dense_vs_lowrank_agree() {
        let b = 32;
        let c0 = spd_tile(b, 4);
        let a_mat = smooth_tile(b, 38.0);
        let mut c_dense = Tile::Dense(c0.clone());
        syrk_kernel(&Tile::Dense(a_mat.clone()), &mut c_dense);
        let cfg = CompressionConfig::with_accuracy(1e-10);
        let a_lr = compress_tile(a_mat, &cfg);
        let mut c_lr = Tile::Dense(c0);
        syrk_kernel(&a_lr, &mut c_lr);
        assert!(relative_diff(&c_lr.to_dense(), &c_dense.to_dense()) < 1e-8);
    }

    #[test]
    fn gemm_kernel_all_format_combinations_agree_with_dense() {
        let b = 24;
        let cfg = CompressionConfig::with_accuracy(1e-9);
        let a_mat = smooth_tile(b, 30.0);
        let b_mat = smooth_tile(b, 34.0);
        let c_mat = smooth_tile(b, 50.0);

        // Reference: dense arithmetic.
        let mut c_ref = c_mat.clone();
        gemm_serial(Trans::No, Trans::Yes, -1.0, &a_mat, &b_mat, 1.0, &mut c_ref);

        let formats: Vec<(&str, Tile)> = vec![
            ("dense", Tile::Dense(a_mat.clone())),
            ("lr", compress_tile(a_mat.clone(), &cfg)),
        ];
        let formats_b: Vec<(&str, Tile)> = vec![
            ("dense", Tile::Dense(b_mat.clone())),
            ("lr", compress_tile(b_mat.clone(), &cfg)),
        ];
        let formats_c: Vec<(&str, Tile)> = vec![
            ("dense", Tile::Dense(c_mat.clone())),
            ("lr", compress_tile(c_mat.clone(), &cfg)),
        ];
        for (an, at) in &formats {
            for (bn, bt) in &formats_b {
                for (cn, ct) in &formats_c {
                    let mut c = ct.clone();
                    gemm_kernel(at, bt, &mut c, &cfg);
                    let err = relative_diff(&c.to_dense(), &c_ref);
                    assert!(err < 1e-6, "a={an} b={bn} c={cn}: err={err}");
                }
            }
        }
    }

    #[test]
    fn gemm_kernel_null_operands_noop() {
        let cfg = CompressionConfig::default();
        let c0 = smooth_tile(16, 20.0);
        let mut c = Tile::Dense(c0.clone());
        gemm_kernel(&Tile::Null { rows: 16, cols: 16 }, &Tile::Dense(c0.clone()), &mut c, &cfg);
        assert!(relative_diff(&c.to_dense(), &c0) < 1e-15);
        gemm_kernel(&Tile::Dense(c0.clone()), &Tile::Null { rows: 16, cols: 16 }, &mut c, &cfg);
        assert!(relative_diff(&c.to_dense(), &c0) < 1e-15);
    }

    #[test]
    fn gemm_into_null_creates_fill_in() {
        let b = 24;
        let cfg = CompressionConfig::with_accuracy(1e-9);
        let a_t = compress_tile(smooth_tile(b, 30.0), &cfg);
        let b_t = compress_tile(smooth_tile(b, 34.0), &cfg);
        let mut c = Tile::Null { rows: b, cols: b };
        gemm_kernel(&a_t, &b_t, &mut c, &cfg);
        assert!(!c.is_null(), "fill-in expected");
        // result should equal -A·Bᵀ
        let mut expect = Matrix::zeros(b, b);
        gemm_serial(Trans::No, Trans::Yes, -1.0, &a_t.to_dense(), &b_t.to_dense(), 0.0, &mut expect);
        assert!(relative_diff(&c.to_dense(), &expect) < 1e-6);
    }

    #[test]
    fn gemm_cancellation_produces_null() {
        // C = A·Bᵀ exactly, then C −= A·Bᵀ ⇒ C ≈ 0 ⇒ Null after recompress.
        let b = 16;
        let cfg = CompressionConfig::with_accuracy(1e-8);
        let a_t = compress_tile(smooth_tile(b, 18.0), &cfg);
        let b_t = compress_tile(smooth_tile(b, 22.0), &cfg);
        let mut prod = Tile::Null { rows: b, cols: b };
        gemm_kernel(&a_t, &b_t, &mut prod, &cfg);
        // negate: C = -prod, then subtract the product again
        let mut c = match &prod {
            Tile::LowRank { u, v } => {
                let mut un = u.clone();
                un.scale(-1.0);
                Tile::LowRank { u: un, v: v.clone() }
            }
            other => other.clone(),
        };
        // c = -A·Bᵀ... wait: prod = −A·Bᵀ so c = A·Bᵀ; c −= A·Bᵀ ⇒ 0
        gemm_kernel(&a_t, &b_t, &mut c, &cfg);
        assert!(
            c.is_null() || frobenius_norm(&c.to_dense()) < 1e-6,
            "cancelled tile should vanish (rank {})",
            c.rank()
        );
    }

    #[test]
    fn recompression_bounds_rank_growth() {
        // Accumulate several rank-k updates into one tile; rank must stay
        // bounded by the spectrum, not grow additively.
        let b = 32;
        let cfg = CompressionConfig::with_accuracy(1e-6);
        let mut c = Tile::Null { rows: b, cols: b };
        for s in 0..6 {
            let a_t = compress_tile(smooth_tile(b, 30.0 + s as f64), &cfg);
            let b_t = compress_tile(smooth_tile(b, 44.0 + s as f64), &cfg);
            gemm_kernel(&a_t, &b_t, &mut c, &cfg);
        }
        assert!(c.rank() < b / 2, "rank should stay bounded, got {}", c.rank());
    }

    #[test]
    fn flop_counts_sane() {
        assert_eq!(flops::potrf(10), 1000.0 / 3.0);
        assert!(flops::trsm_lr(100, 5) < flops::trsm_dense(100));
        assert!(flops::syrk_lr(100, 5) < flops::syrk_dense(100));
        assert!(flops::gemm_tlr(100, 5, 5, 5) < flops::gemm_dense(100));
        // TLR kernels grow with rank
        assert!(flops::gemm_tlr(100, 20, 20, 20) > flops::gemm_tlr(100, 5, 5, 5));
    }
}

//! Criterion end-to-end benchmarks: full TLR Cholesky factorizations of
//! real RBF operators at laptop scale — trimmed vs untrimmed DAGs, and
//! TLR vs dense factorization of the same operator (the headline
//! arithmetic saving of the TLR format).

use criterion::{criterion_group, criterion_main, Criterion};
use hicma_core::{factorize, FactorConfig};
use rbf_mesh::geometry::{virus_population, VirusConfig};
use rbf_mesh::hilbert::{apply_permutation, hilbert_sort};
use rbf_mesh::GaussianRbf;
use std::hint::black_box;
use tlr_compress::{CompressionConfig, TlrMatrix};
use tlr_linalg::{potrf, Matrix};

struct Fixture {
    dense: Matrix,
    points_n: usize,
}

fn fixture() -> Fixture {
    let vcfg = VirusConfig { points_per_virus: 300, ..Default::default() };
    let raw = virus_population(3, &vcfg, 23);
    let points = apply_permutation(&raw, &hilbert_sort(&raw));
    let kernel = GaussianRbf::from_min_distance(&points);
    let n = points.len();
    let dense = Matrix::from_fn(n, n, |i, j| kernel.matrix_entry(&points, i, j));
    Fixture { dense, points_n: n }
}

fn bench_factorize(c: &mut Criterion) {
    let fx = fixture();
    let accuracy = 1e-6;
    let tile = 100;
    let ccfg = CompressionConfig::with_accuracy(accuracy);

    let mut g = c.benchmark_group("factorize_rbf");
    g.sample_size(10);

    g.bench_function(format!("tlr_trimmed_n{}", fx.points_n), |bch| {
        bch.iter_batched(
            || TlrMatrix::from_dense(&fx.dense, tile, &ccfg),
            |mut m| {
                let cfg = FactorConfig { trimmed: true, ..FactorConfig::with_accuracy(accuracy) };
                factorize(&mut m, &cfg).unwrap();
                black_box(m.nt())
            },
            criterion::BatchSize::LargeInput,
        )
    });

    g.bench_function(format!("tlr_untrimmed_n{}", fx.points_n), |bch| {
        bch.iter_batched(
            || TlrMatrix::from_dense(&fx.dense, tile, &ccfg),
            |mut m| {
                let cfg = FactorConfig { trimmed: false, ..FactorConfig::with_accuracy(accuracy) };
                factorize(&mut m, &cfg).unwrap();
                black_box(m.nt())
            },
            criterion::BatchSize::LargeInput,
        )
    });

    g.bench_function(format!("dense_potrf_n{}", fx.points_n), |bch| {
        bch.iter_batched(
            || fx.dense.clone(),
            |mut a| {
                potrf(&mut a).unwrap();
                black_box(a.rows())
            },
            criterion::BatchSize::LargeInput,
        )
    });

    g.finish();
}

fn bench_compression_phase(c: &mut Criterion) {
    let fx = fixture();
    let mut g = c.benchmark_group("compression_phase");
    g.sample_size(10);
    for acc in [1e-4, 1e-8] {
        let ccfg = CompressionConfig::with_accuracy(acc);
        g.bench_function(format!("compress_n{}_acc{acc:.0e}", fx.points_n), |bch| {
            bch.iter(|| black_box(TlrMatrix::from_dense(&fx.dense, 100, &ccfg).memory_f64()))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_factorize, bench_compression_phase);
criterion_main!(benches);

//! Criterion micro-benchmarks of the dense and TLR tile kernels — the
//! building blocks whose relative costs drive every result in the paper:
//! compression (pivoted QR), POTRF, dense vs TLR TRSM/SYRK/GEMM, and the
//! GEMM recompression pipeline at several ranks.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use tlr_compress::kernels::{gemm_kernel, potrf_kernel, syrk_kernel, trsm_kernel};
use tlr_compress::{compress_tile, CompressionConfig, Tile};
use tlr_linalg::{gemm, potrf, Matrix, Trans};

/// Smooth kernel tile with tunable effective rank (larger `width` ⇒
/// faster spectral decay ⇒ smaller rank at a fixed threshold).
fn smooth_tile(b: usize, shift: f64, width: f64) -> Matrix {
    Matrix::from_fn(b, b, |i, j| {
        let d = (i as f64 - j as f64 + shift) / width;
        (-d * d).exp()
    })
}

fn spd_tile(b: usize, seed: u64) -> Matrix {
    let mut state = seed | 1;
    let m = Matrix::from_fn(b, b, |_, _| {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        ((state >> 33) as f64 / (1u64 << 31) as f64) - 1.0
    });
    let mut a = Matrix::identity(b);
    a.scale(b as f64);
    gemm(Trans::No, Trans::Yes, 1.0, &m, &m, 1.0, &mut a);
    a
}

fn bench_compression(c: &mut Criterion) {
    let mut g = c.benchmark_group("compression");
    g.sample_size(10);
    let b = 256;
    for (label, width) in [("low-rank", 64.0), ("mid-rank", 16.0)] {
        let tile = smooth_tile(b, b as f64 * 0.5, width);
        let cfg = CompressionConfig::with_accuracy(1e-6);
        g.bench_with_input(BenchmarkId::new("qrcp_256", label), &tile, |bch, t| {
            bch.iter(|| black_box(compress_tile(t.clone(), &cfg)))
        });
    }
    g.finish();
}

fn bench_potrf(c: &mut Criterion) {
    let mut g = c.benchmark_group("potrf");
    g.sample_size(10);
    for b in [128usize, 256] {
        let a = spd_tile(b, 7);
        g.bench_with_input(BenchmarkId::from_parameter(b), &a, |bch, a| {
            bch.iter(|| {
                let mut l = a.clone();
                potrf(&mut l).unwrap();
                black_box(l)
            })
        });
    }
    g.finish();
}

fn bench_trsm_dense_vs_tlr(c: &mut Criterion) {
    let mut g = c.benchmark_group("trsm");
    g.sample_size(10);
    let b = 256;
    let l = {
        let mut l = spd_tile(b, 9);
        potrf(&mut l).unwrap();
        l.zero_upper();
        Tile::Dense(l)
    };
    let a_mat = smooth_tile(b, b as f64 * 0.5, 40.0);
    let cfg = CompressionConfig::with_accuracy(1e-6);
    let a_lr = compress_tile(a_mat.clone(), &cfg);
    assert!(matches!(a_lr, Tile::LowRank { .. }));

    g.bench_function("dense_256", |bch| {
        bch.iter(|| {
            let mut t = Tile::Dense(a_mat.clone());
            trsm_kernel(&l, &mut t);
            black_box(t)
        })
    });
    g.bench_function(format!("tlr_256_rank{}", a_lr.rank()), |bch| {
        bch.iter(|| {
            let mut t = a_lr.clone();
            trsm_kernel(&l, &mut t);
            black_box(t)
        })
    });
    g.finish();
}

fn bench_syrk_dense_vs_tlr(c: &mut Criterion) {
    let mut g = c.benchmark_group("syrk");
    g.sample_size(10);
    let b = 256;
    let c0 = spd_tile(b, 11);
    let a_mat = smooth_tile(b, b as f64 * 0.5, 40.0);
    let cfg = CompressionConfig::with_accuracy(1e-6);
    let a_lr = compress_tile(a_mat.clone(), &cfg);

    g.bench_function("dense_256", |bch| {
        bch.iter(|| {
            let mut ct = Tile::Dense(c0.clone());
            syrk_kernel(&Tile::Dense(a_mat.clone()), &mut ct);
            black_box(ct)
        })
    });
    g.bench_function(format!("tlr_256_rank{}", a_lr.rank()), |bch| {
        bch.iter(|| {
            let mut ct = Tile::Dense(c0.clone());
            syrk_kernel(&a_lr, &mut ct);
            black_box(ct)
        })
    });
    g.finish();
}

fn bench_gemm_recompression(c: &mut Criterion) {
    let mut g = c.benchmark_group("gemm");
    g.sample_size(10);
    let b = 256;
    let cfg = CompressionConfig::with_accuracy(1e-6);
    // Vary operand rank through the spectral width.
    for (label, width) in [("rank_lo", 96.0), ("rank_hi", 20.0)] {
        let a_t = compress_tile(smooth_tile(b, b as f64 * 0.5, width), &cfg);
        let b_t = compress_tile(smooth_tile(b, b as f64 * 0.55, width), &cfg);
        let c_t = compress_tile(smooth_tile(b, b as f64 * 0.6, width), &cfg);
        g.bench_function(format!("tlr_256_{label}_k{}", a_t.rank()), |bch| {
            bch.iter(|| {
                let mut ct = c_t.clone();
                gemm_kernel(&a_t, &b_t, &mut ct, &cfg);
                black_box(ct)
            })
        });
    }
    // Dense reference.
    let a_m = smooth_tile(b, b as f64 * 0.5, 16.0);
    let b_m = smooth_tile(b, b as f64 * 0.55, 16.0);
    let c_m = smooth_tile(b, b as f64 * 0.6, 16.0);
    g.bench_function("dense_256", |bch| {
        bch.iter(|| {
            let mut ct = Tile::Dense(c_m.clone());
            gemm_kernel(&Tile::Dense(a_m.clone()), &Tile::Dense(b_m.clone()), &mut ct, &cfg);
            black_box(ct)
        })
    });
    g.finish();
}

fn bench_aca_vs_dense_assembly(c: &mut Criterion) {
    // The §IX future-work extension: direct compressed assembly (ACA)
    // vs dense generation + pivoted-QR compression.
    let mut g = c.benchmark_group("assembly");
    g.sample_size(10);
    let b = 256;
    let eval = |i: usize, j: usize| {
        let d = (i as f64 - j as f64 + 128.0) / 80.0;
        (-d * d).exp()
    };
    let cfg = CompressionConfig::with_accuracy(1e-6);
    g.bench_function("dense_then_qrcp_256", |bch| {
        bch.iter(|| {
            let dense = Matrix::from_fn(b, b, eval);
            black_box(compress_tile(dense, &cfg))
        })
    });
    g.bench_function("aca_direct_256", |bch| {
        bch.iter(|| black_box(tlr_compress::aca_compress(b, b, eval, &cfg).tile))
    });
    g.finish();
}

fn bench_potrf_kernel_tile(c: &mut Criterion) {
    let mut g = c.benchmark_group("potrf_kernel");
    g.sample_size(10);
    let a = spd_tile(256, 13);
    g.bench_function("tile_256", |bch| {
        bch.iter(|| {
            let mut t = Tile::Dense(a.clone());
            potrf_kernel(&mut t).unwrap();
            black_box(t)
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_compression,
    bench_potrf,
    bench_trsm_dense_vs_tlr,
    bench_syrk_dense_vs_tlr,
    bench_gemm_recompression,
    bench_aca_vs_dense_assembly,
    bench_potrf_kernel_tile
);
criterion_main!(benches);

//! Micro-benchmark of the SIMD GEMM microkernel against the seed's
//! axpy column-sweep GEMM, plus the fused-panel-batch factorization
//! speedup and the steady-state allocation probe.
//!
//! Emits `BENCH_gemm_microkernel.json` in the working directory (and
//! echoes it to stdout). Three measurements per run:
//!
//! 1. **Gflop/s vs tile size** — `gemm_serial` (now routed through the
//!    packed register-blocked microkernel) against a faithful copy of the
//!    pre-microkernel column-sweep path, at b ∈ {64, 128, 256}. The
//!    acceptance gate is ≥ 2x on every tile size (skipped when runtime
//!    dispatch resolved to the scalar fallback, whose job is bit-identical
//!    portability, not speed).
//! 2. **Batched vs unbatched panel update** — the same shared-memory TLR
//!    factorization with `FactorConfig::batch_panels` on and off.
//! 3. **Allocs/call** — a counting global allocator confirms the packed
//!    path performs zero heap allocations per call in steady state (the
//!    pack buffers are thread-local and grow to a high-water mark).
//!
//! `--smoke` shrinks everything to a CI-sized gate.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use hicma_core::{factorize, FactorConfig};
use tlr_compress::{CompressionConfig, TlrMatrix};
use tlr_linalg::{active_path, gemm_serial, KernelPath, Matrix, Trans};

/// Forwarding allocator counting `alloc`/`realloc` calls, so the bench can
/// assert the steady-state GEMM hot path touches the heap zero times.
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// Faithful copy of the pre-microkernel `gemm_serial` inner loop (the
/// seed's KC-blocked axpy column sweep), kept here as the fixed reference
/// the speedup is measured against: `C := alpha·A·Bᵀ + beta·C`.
fn gemm_reference_nt(alpha: f64, a: &Matrix, b: &Matrix, beta: f64, c: &mut Matrix) {
    let (m, n) = (c.rows(), c.cols());
    let k = a.cols();
    let kc = (32_768 / m.max(1)).clamp(8, k);
    let mut pc = 0;
    while pc < k {
        let pe = (pc + kc).min(k);
        for j in 0..n {
            let c_col = c.col_mut(j);
            if pc == 0 {
                if beta == 0.0 {
                    c_col.fill(0.0);
                } else if beta != 1.0 {
                    for v in c_col.iter_mut() {
                        *v *= beta;
                    }
                }
            }
            for p in pc..pe {
                let w = alpha * b[(j, p)];
                if w != 0.0 {
                    for (ci, ai) in c_col.iter_mut().zip(a.col(p)) {
                        *ci += w * ai;
                    }
                }
            }
        }
        pc = pe;
    }
}

struct GemmPoint {
    b: usize,
    gflops_micro: f64,
    gflops_ref: f64,
    speedup: f64,
    allocs_per_call: u64,
}

/// Best-of-reps Gflop/s of one b×b×b `C := A·Bᵀ − C` on both paths, plus
/// the steady-state allocation count of the microkernel path.
fn run_gemm_point(b: usize, reps: usize) -> GemmPoint {
    let a = Matrix::from_fn(b, b, |i, j| ((i * 7 + j * 3) % 13) as f64 / 13.0 - 0.4);
    let bm = Matrix::from_fn(b, b, |i, j| ((i * 5 + j * 11) % 17) as f64 / 17.0 - 0.5);
    let mut c = Matrix::from_fn(b, b, |i, j| ((i + j) % 7) as f64 / 7.0);

    // Warm-up grows the thread-local pack buffers to their high-water mark.
    gemm_serial(Trans::No, Trans::Yes, 1.0, &a, &bm, -1.0, &mut c);
    gemm_reference_nt(1.0, &a, &bm, -1.0, &mut c);

    let flops = 2.0 * (b as f64).powi(3);
    let mut best_micro = f64::INFINITY;
    for _ in 0..reps {
        let t0 = std::time::Instant::now();
        gemm_serial(Trans::No, Trans::Yes, 1.0, &a, &bm, -1.0, &mut c);
        best_micro = best_micro.min(t0.elapsed().as_secs_f64());
    }
    let mut best_ref = f64::INFINITY;
    for _ in 0..reps {
        let t0 = std::time::Instant::now();
        gemm_reference_nt(1.0, &a, &bm, -1.0, &mut c);
        best_ref = best_ref.min(t0.elapsed().as_secs_f64());
    }

    // Steady-state allocation probe on the warmed microkernel path.
    let before = ALLOCS.load(Ordering::Relaxed);
    gemm_serial(Trans::No, Trans::Yes, 1.0, &a, &bm, -1.0, &mut c);
    let allocs_per_call = ALLOCS.load(Ordering::Relaxed) - before;

    GemmPoint {
        b,
        gflops_micro: flops / best_micro / 1e9,
        gflops_ref: flops / best_ref / 1e9,
        speedup: best_ref / best_micro,
        allocs_per_call,
    }
}

/// Time one shared-memory TLR factorization with panel batching on/off.
/// Returns (seconds_unbatched, seconds_batched) as the best of `reps`.
fn run_panel_batch(n: usize, b: usize, reps: usize) -> (f64, f64) {
    let gen = |i: usize, j: usize| {
        let d = (i as f64 - j as f64) / (n as f64 / 8.0);
        let v = (-d * d).exp();
        if i == j {
            v + 1e-3
        } else {
            v
        }
    };
    let ccfg = CompressionConfig::with_accuracy(1e-6);
    let proto = TlrMatrix::from_generator(n, b, gen, &ccfg);

    let time_mode = |batch: bool| {
        let mut cfg = FactorConfig::with_accuracy(1e-6);
        cfg.batch_panels = batch;
        cfg.collect_trace = false;
        let mut best = f64::INFINITY;
        for _ in 0..reps {
            let mut m = proto.clone();
            let t0 = std::time::Instant::now();
            factorize(&mut m, &cfg).expect("SPD");
            best = best.min(t0.elapsed().as_secs_f64());
        }
        best
    };
    let unbatched = time_mode(false);
    let batched = time_mode(true);
    (unbatched, batched)
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let path = active_path();
    let simd = tlr_linalg::simd_available();

    let tile_sizes: &[usize] = if smoke { &[64] } else { &[64, 128, 256] };
    let mut points = Vec::new();
    for &b in tile_sizes {
        let reps = if smoke { 10 } else { (200_000_000 / (2 * b * b * b)).clamp(10, 200) };
        let p = run_gemm_point(b, reps);
        eprintln!(
            "b={:<4} microkernel {:>7.2} Gflop/s  reference {:>6.2} Gflop/s  \
             speedup {:.2}x  allocs/call {}",
            p.b, p.gflops_micro, p.gflops_ref, p.speedup, p.allocs_per_call
        );
        points.push(p);
    }

    let (pb_n, pb_b, pb_reps) = if smoke { (240, 24, 1) } else { (960, 48, 3) };
    let (sec_unbatched, sec_batched) = run_panel_batch(pb_n, pb_b, pb_reps);
    let batch_speedup = sec_unbatched / sec_batched;
    eprintln!(
        "panel update n={pb_n} b={pb_b}: unbatched {sec_unbatched:.4}s, \
         batched {sec_batched:.4}s ({batch_speedup:.2}x)"
    );

    let min_speedup = points.iter().map(|p| p.speedup).fold(f64::INFINITY, f64::min);
    let max_allocs = points.iter().map(|p| p.allocs_per_call).max().unwrap_or(0);
    let path_name = match path {
        KernelPath::Simd => "simd",
        KernelPath::Scalar => "scalar",
    };

    let rows: Vec<String> = points
        .iter()
        .map(|p| {
            format!(
                "    {{\"b\": {}, \"gflops_microkernel\": {:.3}, \"gflops_reference\": {:.3}, \
                 \"speedup\": {:.3}, \"allocs_per_call\": {}}}",
                p.b, p.gflops_micro, p.gflops_ref, p.speedup, p.allocs_per_call
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"experiment\": \"gemm_microkernel\",\n  \
         \"mode\": \"{}\",\n  \
         \"kernel_path\": \"{path_name}\",\n  \
         \"simd_available\": {simd},\n  \
         \"baseline\": \"pre-microkernel axpy column sweep (seed gemm_serial)\",\n  \
         \"min_speedup\": {min_speedup:.3},\n  \
         \"max_allocs_per_call\": {max_allocs},\n  \
         \"panel_update\": {{\"n\": {pb_n}, \"tile\": {pb_b}, \
         \"seconds_unbatched\": {sec_unbatched:.6}, \"seconds_batched\": {sec_batched:.6}, \
         \"batch_speedup\": {batch_speedup:.3}}},\n  \
         \"points\": [\n{}\n  ]\n}}\n",
        if smoke { "smoke" } else { "full" },
        rows.join(",\n")
    );
    print!("{json}");
    std::fs::write("BENCH_gemm_microkernel.json", &json)
        .expect("write BENCH_gemm_microkernel.json");
    eprintln!(
        "wrote BENCH_gemm_microkernel.json (path {path_name}, min speedup {min_speedup:.2}x, \
         max allocs/call {max_allocs}, batch {batch_speedup:.2}x)"
    );

    if max_allocs > 0 {
        eprintln!("FAILED: steady-state gemm_serial allocated (expected 0 allocs/call)");
        std::process::exit(1);
    }
    // The ≥2x gate only applies to the SIMD path — the scalar fallback
    // exists for bit-identical portability, not throughput.
    if path == KernelPath::Simd && min_speedup < 2.0 {
        eprintln!("FAILED: microkernel speedup {min_speedup:.2}x < 2x over the seed column sweep");
        std::process::exit(1);
    }
}

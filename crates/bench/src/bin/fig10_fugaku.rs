//! Fig. 10 — comparison with the state of the art (Lorapo) on Fugaku:
//! time-to-solution and speedup across matrix sizes and node counts up
//! to 512 (paper: up to 9.1×, more than 4× everywhere — larger margins
//! than Shaheen II because A64FX's skinny-kernel penalty punishes
//! Lorapo's extra null-tile work harder).

use hicma_core::lorapo::{hicma_parsec_config, lorapo_config};
use hicma_core::simulate::simulate_cholesky;
use runtime::MachineModel;
use tlr_bench::{scaled_machine, header, paper_sizes, scale_factor, scaled_snapshot, PAPER_ACCURACY, PAPER_SHAPE};

fn main() {
    let s = scale_factor(64);
    let machine = scaled_machine(MachineModel::fugaku(), s);
    println!("Fig. 10 — HiCMA-PaRSEC vs Lorapo on {} (scale 1/{s})", machine.name);
    header(&[
        ("N", 8),
        ("nodes", 6),
        ("lorapo (s)", 11),
        ("ours (s)", 10),
        ("speedup", 8),
        ("ours CP (s)", 12),
    ]);

    for (label, n_paper, b_paper) in paper_sizes() {
        for nodes_paper in [128usize, 256, 512] {
            let (p, snap) =
                scaled_snapshot(n_paper, b_paper, nodes_paper, s, PAPER_SHAPE, PAPER_ACCURACY);
            let lorapo = simulate_cholesky(&snap, &lorapo_config(machine.clone(), p.nodes));
            let ours = simulate_cholesky(&snap, &hicma_parsec_config(machine.clone(), p.nodes));
            println!(
                "{:>8} {:>6} {:>11.2} {:>10.2} {:>7.2}x {:>12.2}",
                label,
                nodes_paper,
                lorapo.factorization_seconds,
                ours.factorization_seconds,
                lorapo.factorization_seconds / ours.factorization_seconds,
                ours.critical_path_seconds,
            );
        }
        println!();
    }
    println!("Expected (paper): HiCMA-PaRSEC wins everywhere, with larger relative");
    println!("margins than on Shaheen II (Fig. 9).");
}

//! Fig. 8 — HiCMA-PaRSEC vs Lorapo for variable shape parameters across
//! four matrix sizes on 512 Shaheen II nodes: from a very sparse
//! compressed operator (shape 1.0e-4) to a quite dense one (5.0e-2).

use hicma_core::lorapo::{hicma_parsec_config, lorapo_config};
use hicma_core::simulate::simulate_cholesky;
use runtime::MachineModel;
use tlr_bench::{scaled_machine, header, scale_factor, scaled_snapshot, PAPER_ACCURACY};

fn main() {
    let s = scale_factor(64);
    println!("Fig. 8 — vs Lorapo across shape parameters, 512 Shaheen II nodes (scale 1/{s})");
    header(&[
        ("N", 8),
        ("shape", 10),
        ("density", 8),
        ("lorapo (s)", 11),
        ("ours (s)", 10),
        ("speedup", 8),
    ]);

    let sizes = [
        ("2.99M", 2.99e6, 2440usize),
        ("4.49M", 4.49e6, 2990),
        ("5.97M", 5.97e6, 3450),
        ("11.95M", 11.95e6, 4880),
    ];
    let shapes = [1.0e-4, 3.7e-4, 2e-3, 1e-2, 5.0e-2];

    for (label, n_paper, b_paper) in sizes {
        for &shape in &shapes {
            let (p, snap) = scaled_snapshot(n_paper, b_paper, 512, s, shape, PAPER_ACCURACY);
            let lorapo =
                simulate_cholesky(&snap, &lorapo_config(scaled_machine(MachineModel::shaheen_ii(), s), p.nodes));
            let ours = simulate_cholesky(
                &snap,
                &hicma_parsec_config(scaled_machine(MachineModel::shaheen_ii(), s), p.nodes),
            );
            println!(
                "{:>8} {:>10.1e} {:>8.3} {:>11.2} {:>10.2} {:>7.2}x",
                label,
                shape,
                snap.density(),
                lorapo.factorization_seconds,
                ours.factorization_seconds,
                lorapo.factorization_seconds / ours.factorization_seconds,
            );
        }
        println!();
    }
    println!("Expected (paper): HiCMA-PaRSEC wins at every shape parameter, with the");
    println!("largest margins on sparse operators (trimming has the most to remove).");
}

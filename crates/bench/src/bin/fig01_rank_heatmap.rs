//! Fig. 1 — initial (after compression) and final (after Cholesky) rank
//! distribution of the off-diagonal tiles for two shape parameters, with
//! max/avg/min rank and matrix density.
//!
//! The paper plots heatmaps of a 1.49M matrix with tile size 4880; we
//! build the *real* RBF operator at laptop scale (same synthetic-virus
//! geometry, same Hilbert ordering, same kernel) and print ASCII
//! heatmaps plus the same statistics. This run also provides the
//! measurements that calibrate `SyntheticRankModel`.

use hicma_core::{factorize, FactorConfig};
use rbf_mesh::geometry::{virus_population, VirusConfig};
use rbf_mesh::hilbert::{apply_permutation, hilbert_sort};
use rbf_mesh::GaussianRbf;
use tlr_compress::{CompressionConfig, TlrMatrix};

fn main() {
    let vcfg = VirusConfig { points_per_virus: 400, ..Default::default() };
    let raw = virus_population(5, &vcfg, 42);
    let points = apply_permutation(&raw, &hilbert_sort(&raw));
    let n = points.len();
    let tile = 125;
    let accuracy = 1e-4;
    let delta_ref = GaussianRbf::from_min_distance(&points).delta;

    println!("Fig. 1 — rank distributions before/after TLR Cholesky");
    println!("N = {n}, tile = {tile}, accuracy = {accuracy:.0e} (paper: 1.49M / 4880 / 1e-4)");
    println!();

    // Two shape parameters: the paper's \"sparse\" and \"dense\" regimes.
    // The dense regime needs δ on the cluster-separation scale; the
    // resulting conditioning requires a nugget > the compression
    // perturbation (≈ accuracy · NT) to keep the operator numerically SPD.
    let nt = n.div_ceil(tile);
    for (label, delta_mult) in [("small shape (sparse)", 1.0), ("large shape (dense)", 25.0)] {
        let kernel =
            GaussianRbf { delta: delta_ref * delta_mult, nugget: 4.0 * accuracy * nt as f64 };
        let ccfg = CompressionConfig::with_accuracy(accuracy);
        let mut a = TlrMatrix::from_generator(n, tile, kernel.generator(&points), &ccfg);

        let init = a.rank_snapshot();
        let is = init.stats();
        println!("=== {label}: delta = {:.3e} ===", kernel.delta);
        println!(
            "initial : density {:.3}  max {}  avg {:.1}  min {}",
            is.density, is.max, is.avg_nonzero, is.min_nonzero
        );
        println!("{}", init.heatmap());

        match factorize(&mut a, &FactorConfig::with_accuracy(accuracy)) {
            Ok(rep) => {
                let fsnap = rep.final_snapshot;
                let fs = fsnap.stats();
                println!(
                    "final   : density {:.3}  max {}  avg {:.1}  min {}",
                    fs.density, fs.max, fs.avg_nonzero, fs.min_nonzero
                );
                println!("{}", fsnap.heatmap());
            }
            Err(e) => println!("final   : not SPD at this accuracy (pivot {})\n", e.pivot),
        }
    }
    println!("Legend: D diagonal (dense), . null, 1..9a..z# rank relative to max.");
    println!("Expected (paper): density grows with the shape parameter; ranks fall");
    println!("sharply with distance to the diagonal; fill-in raises the final density.");
}

//! Amortized symbolic-planning cost across repeated solves — the RBF
//! mesh-deformation timestepping workload the plan cache exists for.
//!
//! The operator geometry is fixed across timesteps, so every step
//! re-factors the same tile structure (and solves a fresh right-hand
//! side). A cold [`PlanCache`] pays the full symbolic phase (Algorithm-1
//! analysis, trimmed-DAG build, scheduler key precomputation) exactly
//! once; every warm step reuses the cached [`SymbolicPlan`] and its
//! planning time collapses to a key fold + LRU lookup. The bench runs
//! the same loop twice — without a cache (the legacy per-call pipeline)
//! and with one — and reports per-step planning/factorization seconds,
//! the cold→warm planning speedup, and the cache counters.
//!
//! Emits `BENCH_plan_cache.json` in the working directory (ingested and
//! gated by `bench_history`; the `_s` leaves are lower-is-better).
//!
//! `--smoke` shrinks the problem and turns the acceptance checks into a
//! CI gate: warm planning must be far below cold, the cache must count
//! exactly one miss and `T-1` hits, and every cached factor must be
//! bit-identical to fresh planning.
//!
//! [`PlanCache`]: hicma_core::PlanCache
//! [`SymbolicPlan`]: hicma_core::SymbolicPlan

use hicma_core::{factorize, solve_residual, solve_tlr, FactorConfig, PlanCache, Session};
use tlr_compress::{CompressionConfig, TlrMatrix};
use tlr_linalg::norms::relative_diff;
use tlr_linalg::Matrix;

struct Step {
    plan_s: f64,
    factor_s: f64,
    solve_s: f64,
}

/// One timestep: (re)factor the operator and solve a step-specific rhs.
fn timestep(session: &Session<'_>, proto: &TlrMatrix, dense: &Matrix, step: usize) -> (Step, Matrix) {
    let n = dense.rows();
    let mut m = proto.clone();
    let t0 = std::time::Instant::now();
    let out = session.run(&mut m).expect("SPD workload must factor");
    let total_s = t0.elapsed().as_secs_f64();
    let plan_s = out.report.analysis_seconds;

    let rhs: Vec<f64> = (0..n).map(|i| 1.0 + ((i + step) as f64 * 0.05).sin()).collect();
    let mut x = rhs.clone();
    let t1 = std::time::Instant::now();
    solve_tlr(&m, &mut x);
    let solve_s = t1.elapsed().as_secs_f64();
    let resid = solve_residual(dense, &x, &rhs);
    assert!(resid < 1e-5, "timestep {step} solve residual {resid:.3e}");

    (
        Step {
            plan_s,
            factor_s: total_s - plan_s,
            solve_s,
        },
        m.to_dense_lower(),
    )
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (n, b, steps) = if smoke { (384, 32, 4) } else { (1536, 64, 10) };
    let acc = 1e-7;

    let gen = move |i: usize, j: usize| {
        let d = (i as f64 - j as f64) / (n as f64 / 9.0);
        let v = (-d * d).exp() * (1.0 + 0.05 * ((i + j) as f64 * 0.01).sin());
        if i == j {
            v + 1e-3
        } else {
            v
        }
    };
    let dense = Matrix::from_fn(n, n, gen);
    let ccfg = CompressionConfig::with_accuracy(acc);
    let proto = TlrMatrix::from_generator(n, b, gen, &ccfg);
    let cfg = FactorConfig::with_accuracy(acc);

    // Bit-identity reference: one fresh factorization outside any session.
    let mut reference = proto.clone();
    factorize(&mut reference, &cfg).expect("SPD workload must factor");
    let l_ref = reference.to_dense_lower();

    // Legacy pipeline: a cache-less session re-plans every timestep.
    let uncached = Session::shared(cfg);
    let mut uncached_steps = Vec::new();
    for step in 0..steps {
        let (s, l) = timestep(&uncached, &proto, &dense, step);
        assert_eq!(relative_diff(&l, &l_ref), 0.0, "uncached factor deviated");
        uncached_steps.push(s);
    }

    // Cached pipeline: one miss, then warm hits.
    let cache = PlanCache::new(2);
    let cached = Session::shared(cfg).with_plan_cache(&cache);
    let mut cached_steps = Vec::new();
    for step in 0..steps {
        let (s, l) = timestep(&cached, &proto, &dense, step);
        assert_eq!(relative_diff(&l, &l_ref), 0.0, "cached factor deviated");
        cached_steps.push(s);
    }

    let cold_plan_s = cached_steps[0].plan_s;
    let warm: Vec<f64> = cached_steps[1..].iter().map(|s| s.plan_s).collect();
    let warm_plan_s_max = warm.iter().cloned().fold(0.0, f64::max);
    let warm_plan_s_mean = warm.iter().sum::<f64>() / warm.len() as f64;
    let uncached_plan_s: f64 = uncached_steps.iter().map(|s| s.plan_s).sum();
    let cached_plan_s: f64 = cached_steps.iter().map(|s| s.plan_s).sum();
    let plan_speedup = cold_plan_s / warm_plan_s_mean.max(1e-12);
    let amortized_speedup = uncached_plan_s / cached_plan_s.max(1e-12);
    let median_factor_s = {
        let mut f: Vec<f64> = cached_steps.iter().map(|s| s.factor_s).collect();
        f.sort_by(f64::total_cmp);
        f[f.len() / 2]
    };

    eprintln!(
        "plan_cache n={n} b={b} steps={steps}: cold plan {cold_plan_s:.6}s, warm plan \
         mean {warm_plan_s_mean:.6}s / max {warm_plan_s_max:.6}s ({plan_speedup:.1}x), \
         sweep planning {uncached_plan_s:.6}s uncached vs {cached_plan_s:.6}s cached \
         ({amortized_speedup:.1}x), median factor {median_factor_s:.4}s, \
         cache hits {} misses {}",
        cache.hits(),
        cache.misses()
    );

    let rows: Vec<String> = cached_steps
        .iter()
        .zip(&uncached_steps)
        .enumerate()
        .map(|(i, (c, u))| {
            format!(
                "    {{\"step\": {i}, \"plan_s\": {:.9}, \"uncached_plan_s\": {:.9}, \
                 \"factor_s\": {:.6}, \"solve_s\": {:.6}}}",
                c.plan_s, u.plan_s, c.factor_s, c.solve_s
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"experiment\": \"plan_cache\",\n  \
         \"mode\": \"{}\",\n  \
         \"n\": {n},\n  \"tile\": {b},\n  \"timesteps\": {steps},\n  \
         \"cold_plan_s\": {cold_plan_s:.9},\n  \
         \"warm_plan_s_mean\": {warm_plan_s_mean:.9},\n  \
         \"warm_plan_s_max\": {warm_plan_s_max:.9},\n  \
         \"sweep_plan_uncached_s\": {uncached_plan_s:.9},\n  \
         \"sweep_plan_cached_s\": {cached_plan_s:.9},\n  \
         \"plan_speedup\": {plan_speedup:.3},\n  \
         \"amortized_plan_speedup\": {amortized_speedup:.3},\n  \
         \"median_factor_s\": {median_factor_s:.6},\n  \
         \"cache_hits\": {},\n  \"cache_misses\": {},\n  \
         \"steps\": [\n{}\n  ]\n}}\n",
        if smoke { "smoke" } else { "full" },
        cache.hits(),
        cache.misses(),
        rows.join(",\n")
    );
    print!("{json}");
    std::fs::write("BENCH_plan_cache.json", &json).expect("write BENCH_plan_cache.json");
    eprintln!(
        "wrote BENCH_plan_cache.json (cold {cold_plan_s:.6}s, warm max {warm_plan_s_max:.6}s, \
         {plan_speedup:.1}x)"
    );

    // Acceptance gates (bit-identity already asserted per step above).
    let mut failed = false;
    if cache.misses() != 1 || cache.hits() != (steps - 1) as u64 {
        eprintln!(
            "FAILED: expected 1 miss / {} hits, saw {} / {}",
            steps - 1,
            cache.misses(),
            cache.hits()
        );
        failed = true;
    }
    if warm_plan_s_max >= cold_plan_s * 0.5 {
        eprintln!(
            "FAILED: warm planning {warm_plan_s_max:.6}s is not well below cold \
             {cold_plan_s:.6}s"
        );
        failed = true;
    }
    if failed {
        std::process::exit(1);
    }
}

//! Fig. 4 — impact of the shape parameter on matrix density and
//! time-to-solution: initial/final density, time with and without DAG
//! trimming, and the labeled max rank, on 16 Shaheen II nodes
//! (matrix 4.49M / tile 2390) and 64 Fugaku nodes (2.99M / 2440).

use hicma_core::lorapo::lorapo_config;
use hicma_core::simulate::simulate_cholesky;
use runtime::MachineModel;
use tlr_bench::{scaled_machine, header, scale_factor, scaled_snapshot, PAPER_ACCURACY};

fn main() {
    let s = scale_factor(64);
    println!("Fig. 4 — shape parameter vs density and time (scale 1/{s})");
    let shapes = [1e-4, 2e-4, 3.7e-4, 1e-3, 3e-3, 1e-2, 3e-2, 5e-2];

    for (machine, n_paper, b_paper, nodes_paper) in [
        (scaled_machine(MachineModel::shaheen_ii(), s), 4.49e6, 2390, 16),
        (scaled_machine(MachineModel::fugaku(), s), 2.99e6, 2440, 64),
    ] {
        println!();
        println!(
            "--- {} ({} paper nodes, {:.2}M paper matrix) ---",
            machine.name,
            nodes_paper,
            n_paper / 1e6
        );
        header(&[
            ("shape", 10),
            ("init dens", 10),
            ("final dens", 10),
            ("max rank", 9),
            ("t trim (s)", 11),
            ("t notrim (s)", 12),
            ("gain", 6),
        ]);
        for &shape in &shapes {
            let (p, snap) =
                scaled_snapshot(n_paper, b_paper, nodes_paper, s, shape, PAPER_ACCURACY);
            let stats = snap.stats();
            let mut cfg = lorapo_config(machine.clone(), p.nodes);
            cfg.trimmed = true;
            let trimmed = simulate_cholesky(&snap, &cfg);
            cfg.trimmed = false;
            let untrimmed = simulate_cholesky(&snap, &cfg);
            let final_density = trimmed.dag_tasks; // placeholder avoided below
            let _ = final_density;
            println!(
                "{:>10.1e} {:>10.3} {:>10.3} {:>9} {:>11.2} {:>12.2} {:>5.2}x",
                shape,
                stats.density,
                // final density comes from the symbolic analysis
                {
                    let a = hicma_core::MatrixAnalysis::analyze(&snap, p.tile_size);
                    a.final_density()
                },
                stats.max,
                trimmed.factorization_seconds,
                untrimmed.factorization_seconds,
                untrimmed.factorization_seconds / trimmed.factorization_seconds,
            );
        }
    }
    println!();
    println!("Expected (paper): density and time grow with the shape parameter;");
    println!("with/without-trimming curves converge once null tiles disappear.");
}

//! Execution-trace Gantt charts of the simulated factorization — the
//! textual cousin of the PaRSEC trace visualizations (ref. 13 of the paper) behind the
//! paper's performance analysis: one row per process, one glyph per time
//! bin (P/T/S/G by dominant kernel class, `·` idle).
//!
//! Shows Lorapo's idle-riddled schedule next to the full HiCMA-PaRSEC
//! configuration on the same problem.

use hicma_core::lorapo::{hicma_parsec_config, lorapo_config};
use hicma_core::simulate::simulate_cholesky;
use runtime::MachineModel;
use tlr_bench::{scale_factor, scaled_machine, scaled_snapshot, PAPER_ACCURACY, PAPER_SHAPE};

fn main() {
    let s = scale_factor(64);
    let machine = scaled_machine(MachineModel::shaheen_ii(), s);
    let (p, snap) = scaled_snapshot(4.49e6, 2990, 128, s, PAPER_SHAPE, PAPER_ACCURACY);
    println!(
        "Gantt of the simulated factorization (NT={}, b={}, {} procs, scale 1/{s})",
        p.nt, p.tile_size, p.nodes
    );
    println!("glyphs: P=POTRF T=TRSM S=SYRK G=GEMM ·=idle; one row per process");

    for (name, cfg) in [
        ("lorapo (untrimmed, hybrid)", lorapo_config(machine.clone(), p.nodes)),
        ("hicma-parsec (trim+band+diamond)", hicma_parsec_config(machine.clone(), p.nodes)),
    ] {
        let r = simulate_cholesky(&snap, &cfg);
        println!();
        println!("--- {name}: {:.3}s ---", r.factorization_seconds);
        print!("{}", r.trace.gantt(p.nodes, 96));
    }
    println!();
    println!("Expected: the optimized schedule is denser (less idle) and shorter.");
}

//! Overhead of the observability layer on the real shared-memory
//! factorization: the same problem is factored with tracing on and off
//! (both in the *same* build, via [`FactorConfig::collect_trace`])
//! across a few sizes, and the slowdown is reported.
//!
//! Built **without** the `obs` feature the instrumentation is compiled
//! out, both modes run identical code, and the binary instead verifies
//! that no trace materializes. Built **with** `--features obs` the
//! traced run must stay within a few percent of the untraced one — the
//! facade records into preallocated per-worker buffers, so the hot path
//! costs two `Instant::now()` calls per task and no heap traffic, which
//! the counting global allocator cross-checks on the GEMM hot path.
//!
//! The always-on metrics registry rides the same harness: the same
//! problem is factored with [`FactorConfig::collect_metrics`] on and
//! off (tracing off in both modes, so the registry is measured alone)
//! and held to the same ≤5 % gate, and a direct-op probe proves the
//! registry records without touching the heap.
//!
//! Emits `BENCH_trace_overhead.json` (and echoes it to stdout).
//! `--smoke` shrinks to one small size for CI and exits nonzero when
//! the gate fails: enabled-mode overhead > 5 % (tracing or registry),
//! or any steady-state allocation on the traced GEMM hot path / the
//! registry recording path.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use hicma_core::{factorize, FactorConfig};
use runtime::graph::TaskClass;
use runtime::obs::registry::{Counter, Gauge, Registry};
use tlr_compress::kernels::{gemm_kernel_ws, KernelWorkspace};
use tlr_compress::{CompressionConfig, Tile, TlrMatrix};
use tlr_linalg::Matrix;

/// Forwarding allocator counting `alloc`/`realloc` calls, so the bench
/// can prove the traced steady-state kernel path stays off the heap.
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// Gaussian-kernel SPD generator on a 1D grid (the RBF-like test
/// operator the correctness tests use).
fn gaussian_gen(n: usize) -> impl Fn(usize, usize) -> f64 + Sync {
    move |i: usize, j: usize| {
        let d = (i as f64 - j as f64) / (n as f64 / 8.0);
        let v = (-d * d).exp();
        if i == j {
            v + 1e-3
        } else {
            v
        }
    }
}

struct Point {
    n: usize,
    b: usize,
    tasks: usize,
    traced_s: f64,
    untraced_s: f64,
    overhead_pct: f64,
    /// Registry on vs registry off (tracing off in both modes).
    registry_overhead_pct: f64,
    trace_records: usize,
}

/// One factorization in one tracing mode; returns (seconds, tasks,
/// trace records). Clones the pre-compressed matrix — compression is
/// paid once per grid point, not once per rep. The metrics registry is
/// on in both modes, so the traced/untraced delta isolates tracing.
fn time_once(m0: &TlrMatrix, acc: f64, traced: bool) -> (f64, usize, usize) {
    let mut m = m0.clone();
    let mut fcfg = FactorConfig::with_accuracy(acc);
    fcfg.collect_trace = traced;
    let rep = factorize(&mut m, &fcfg).expect("SPD benchmark matrix must factor");
    let records = rep.metrics.as_ref().map_or(0, |mx| mx.trace.records.len());
    if traced && cfg!(feature = "obs") {
        assert!(rep.metrics.is_some(), "obs build must produce metrics when asked");
    }
    if !traced {
        assert!(rep.metrics.is_none(), "untraced run must not produce metrics");
    }
    (rep.factorization_seconds, rep.dag_tasks, records)
}

/// One factorization with tracing off; isolates the always-on metrics
/// registry by toggling only [`FactorConfig::collect_metrics`].
fn time_registry(m0: &TlrMatrix, acc: f64, metrics: bool) -> f64 {
    let mut m = m0.clone();
    let mut fcfg = FactorConfig::with_accuracy(acc);
    fcfg.collect_trace = false;
    fcfg.collect_metrics = metrics;
    let rep = factorize(&mut m, &fcfg).expect("SPD benchmark matrix must factor");
    rep.factorization_seconds
}

fn run_point(n: usize, b: usize, reps: usize) -> Point {
    let acc = 1e-6;
    let dense = Matrix::from_fn(n, n, &gaussian_gen(n));
    let ccfg = CompressionConfig::with_accuracy(acc);
    let m0 = TlrMatrix::from_dense(&dense, b, &ccfg);
    drop(dense);
    // Warm both paths once, then interleave traced/untraced *per rep*
    // (alternating which goes first) and keep the per-mode minimum.
    // Ambient load on a shared host only ever inflates a measurement,
    // so min-of-N converges on the true cost of each mode and spikes
    // cannot bias the ratio the way block-wise timing lets them.
    let _ = time_once(&m0, acc, true);
    let _ = time_once(&m0, acc, false);
    let mut traced_s = f64::INFINITY;
    let mut untraced_s = f64::INFINITY;
    let mut tasks = 0;
    let mut trace_records = 0;
    for rep in 0..reps {
        for traced in if rep % 2 == 0 { [true, false] } else { [false, true] } {
            let (s, t, r) = time_once(&m0, acc, traced);
            if traced {
                traced_s = traced_s.min(s);
                tasks = t;
                trace_records = r;
            } else {
                untraced_s = untraced_s.min(s);
            }
        }
    }
    // Same interleaved min-of-N discipline for the registry alone.
    let mut reg_on_s = f64::INFINITY;
    let mut reg_off_s = f64::INFINITY;
    for rep in 0..reps {
        for on in if rep % 2 == 0 { [true, false] } else { [false, true] } {
            let s = time_registry(&m0, acc, on);
            if on {
                reg_on_s = reg_on_s.min(s);
            } else {
                reg_off_s = reg_off_s.min(s);
            }
        }
    }
    Point {
        n,
        b,
        tasks,
        traced_s,
        untraced_s,
        overhead_pct: 100.0 * (traced_s / untraced_s - 1.0),
        registry_overhead_pct: 100.0 * (reg_on_s / reg_off_s - 1.0),
        trace_records,
    }
}

/// Deterministic factor of decaying cosine-mode mixes — same operand
/// family as the `gemm_recompress` bench, where a Schur update does not
/// inflate the destination rank, so the warmed workspace engine runs
/// the recompression allocation-free.
fn mixed_factor(rows: usize, k: usize, phase: f64, decay: f64, seed: usize) -> Matrix {
    Matrix::from_fn(rows, k, |i, j| {
        let mut acc = 0.0;
        for l in 0..k {
            let m = ((l * 31 + j * 17 + seed * 13 + 7) % 101) as f64 / 101.0 - 0.5;
            let f = ((l + 1) as f64 * std::f64::consts::PI * (i as f64 + 0.5) / rows as f64
                + phase)
                .cos();
            acc += m * decay.powi(l as i32) * f;
        }
        acc
    })
}

/// Steady-state allocations of one traced GEMM update after warm-up —
/// the rank-evolution logging must be counter-only.
fn gemm_hot_path_allocs() -> u64 {
    let b = 64;
    let k = 8;
    let a = Tile::LowRank { u: mixed_factor(b, k, 0.0, 0.5, 1), v: mixed_factor(b, k, 1.0, 0.7, 2) };
    let bt =
        Tile::LowRank { u: mixed_factor(b, k, 2.0, 0.5, 3), v: mixed_factor(b, k, 1.0, 0.7, 4) };
    let c0 =
        Tile::LowRank { u: mixed_factor(b, k, 0.0, 0.6, 5), v: mixed_factor(b, k, 2.0, 0.6, 6) };
    let config = CompressionConfig::with_accuracy(1e-8);
    let mut ws = KernelWorkspace::new();
    for _ in 0..5 {
        let mut c = c0.clone();
        gemm_kernel_ws(&mut ws, &a, &bt, &mut c, &config);
    }
    let mut c = c0.clone();
    let before = ALLOCS.load(Ordering::Relaxed);
    gemm_kernel_ws(&mut ws, &a, &bt, &mut c, &config);
    ALLOCS.load(Ordering::Relaxed) - before
}

/// Steady-state allocations of the metrics registry's recording path:
/// every allocation happens at construction (the sharded tables) — the
/// per-task counters, class-duration histograms, rank histograms and
/// gauge CAS loops must never touch the heap.
fn registry_hot_path_allocs() -> u64 {
    let reg = Registry::new(4);
    // Touch every op once so lazy code paths (none expected) are warm.
    reg.incr(0, Counter::TasksExecuted);
    reg.record_class_seconds(0, TaskClass::Gemm, 1e-6);
    reg.record_rank(0, 12);
    reg.gauge_max(0, Gauge::ArenaHighWaterBytes, 1.0);
    let before = ALLOCS.load(Ordering::Relaxed);
    for i in 0..50_000u64 {
        let shard = (i % 4) as usize;
        reg.incr(shard, Counter::TasksExecuted);
        reg.add(shard, Counter::TasksEnqueued, 3);
        reg.record_class_seconds(shard, TaskClass::Gemm, 1e-6 * (i % 97) as f64);
        reg.record_rank(shard, (i % 64) as usize);
        reg.gauge_max(shard, Gauge::ArenaHighWaterBytes, (i % 1024) as f64);
    }
    ALLOCS.load(Ordering::Relaxed) - before
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let obs_enabled = cfg!(feature = "obs");

    // Sizes keep the factorization in the milliseconds and the rep
    // count high: the gate compares per-mode *minima* over many
    // interleaved reps, which is what makes a 5 % threshold meaningful
    // on a shared/1-CPU host where single runs can spike 20 %+.
    let grid: Vec<(usize, usize)> =
        if smoke { vec![(768, 48)] } else { vec![(512, 32), (768, 48), (1024, 64)] };
    let reps = if smoke { 15 } else { 9 };

    let mut points = Vec::new();
    for &(n, b) in &grid {
        let p = run_point(n, b, reps);
        eprintln!(
            "n={:<5} b={:<3} tasks={:<5} traced {:>8.4}s  untraced {:>8.4}s  overhead {:+.2}%  \
             registry {:+.2}%  records {}",
            p.n, p.b, p.tasks, p.traced_s, p.untraced_s, p.overhead_pct,
            p.registry_overhead_pct, p.trace_records
        );
        points.push(p);
    }

    let gemm_allocs = gemm_hot_path_allocs();
    let registry_allocs = registry_hot_path_allocs();
    let max_overhead = points.iter().map(|p| p.overhead_pct).fold(f64::NEG_INFINITY, f64::max);
    let max_registry_overhead =
        points.iter().map(|p| p.registry_overhead_pct).fold(f64::NEG_INFINITY, f64::max);
    // Same honesty fields thread_scaling records: what the host really
    // offered and which microkernel the build dispatched to, so a
    // regression hunt never has to guess the measurement conditions.
    let host_parallelism = std::thread::available_parallelism().map_or(1, |n| n.get());
    let kernel_path = match tlr_linalg::active_path() {
        tlr_linalg::KernelPath::Simd => "simd",
        tlr_linalg::KernelPath::Scalar => "scalar",
    };

    let rows: Vec<String> = points
        .iter()
        .map(|p| {
            format!(
                "    {{\"n\": {}, \"b\": {}, \"tasks\": {}, \"traced_s\": {:.6}, \
                 \"untraced_s\": {:.6}, \"overhead_pct\": {:.3}, \
                 \"registry_overhead_pct\": {:.3}, \"trace_records\": {}}}",
                p.n,
                p.b,
                p.tasks,
                p.traced_s,
                p.untraced_s,
                p.overhead_pct,
                p.registry_overhead_pct,
                p.trace_records
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"experiment\": \"trace_overhead\",\n  \
         \"mode\": \"{}\",\n  \
         \"obs_feature\": {obs_enabled},\n  \
         \"host_parallelism\": {host_parallelism},\n  \
         \"kernel_path\": \"{kernel_path}\",\n  \
         \"note\": \"single measurement host; traced vs untraced interleaved, best-of-{reps}\",\n  \
         \"max_overhead_pct\": {max_overhead:.3},\n  \
         \"max_registry_overhead_pct\": {max_registry_overhead:.3},\n  \
         \"gemm_steady_state_allocs\": {gemm_allocs},\n  \
         \"registry_steady_state_allocs\": {registry_allocs},\n  \
         \"points\": [\n{}\n  ]\n}}\n",
        if smoke { "smoke" } else { "full" },
        rows.join(",\n")
    );
    print!("{json}");
    std::fs::write("BENCH_trace_overhead.json", &json).expect("write BENCH_trace_overhead.json");
    eprintln!(
        "wrote BENCH_trace_overhead.json (obs={obs_enabled}, max overhead {max_overhead:+.2}%, \
         registry {max_registry_overhead:+.2}%, steady-state allocs gemm {gemm_allocs} / \
         registry {registry_allocs})"
    );

    if smoke {
        let mut failed = false;
        if gemm_allocs > 0 {
            eprintln!("smoke FAILED: traced steady-state gemm_kernel allocated (expected 0)");
            failed = true;
        }
        if registry_allocs > 0 {
            eprintln!(
                "smoke FAILED: registry recording allocated {registry_allocs} times (expected 0)"
            );
            failed = true;
        }
        // The registry gate holds in every build: it is not obs-gated.
        if runtime::Registry::compiled() && max_registry_overhead > 5.0 {
            eprintln!("smoke FAILED: registry overhead {max_registry_overhead:.2}% > 5%");
            failed = true;
        }
        if obs_enabled {
            if max_overhead > 5.0 {
                eprintln!("smoke FAILED: tracing overhead {max_overhead:.2}% > 5%");
                failed = true;
            }
            if points.iter().any(|p| p.trace_records != p.tasks) {
                eprintln!("smoke FAILED: traced run must record every task");
                failed = true;
            }
        } else if points.iter().any(|p| p.trace_records != 0) {
            eprintln!("smoke FAILED: disabled build must not materialize a trace");
            failed = true;
        }
        if failed {
            std::process::exit(1);
        }
    }
}

//! Bench-history ledger and regression gate.
//!
//! Every `BENCH_*.json` artifact the benches emit is a point-in-time
//! snapshot; nothing in the repo compares one commit's numbers against
//! the last. This bin closes the loop: it ingests every `BENCH_*.json`
//! in the working directory into a schema-versioned, append-only
//! `results/history.jsonl` — one row per numeric leaf, keyed by
//! experiment, git commit, and the host's core count — and `--gate`
//! compares the current commit's rows against the best same-host
//! baseline in the ledger, failing on configured regressions.
//!
//! Rows are flat JSON objects (hand-rolled writer, parsed back with the
//! same [`Json`] parser the metrics dumps use):
//!
//! ```text
//! {"schema":1,"experiment":"trace_overhead","git_sha":"b6439af",
//!  "host_cores":8,"metric":"max_overhead_pct","value":1.64}
//! ```
//!
//! Only metrics with a known "direction" are gated (timings, overhead
//! percentages, allocation counts — all lower-is-better); everything
//! else is recorded for plotting but never fails the build. Baselines
//! are restricted to rows with the *same* `host_cores`, so a ledger
//! grown on a laptop never gates a differently-shaped CI runner.
//!
//! `--smoke` (CI mode) ingests, gates, and then runs a negative
//! self-test: it injects an artificial +20 % regression onto a gated
//! metric and exits nonzero unless the gate catches it.

use runtime::obs::json::Json;
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::process::Command;

/// Ledger schema version (bump on any row-shape change; readers skip
/// rows with a schema they don't know).
const SCHEMA: u64 = 1;

#[derive(Debug, Clone, PartialEq)]
struct Row {
    experiment: String,
    git_sha: String,
    host_cores: u64,
    metric: String,
    value: f64,
}

impl Row {
    fn to_jsonl(&self) -> String {
        let mut o = Json::obj();
        o.insert("schema", Json::Num(SCHEMA as f64));
        o.insert("experiment", Json::Str(self.experiment.clone()));
        o.insert("git_sha", Json::Str(self.git_sha.clone()));
        o.insert("host_cores", Json::Num(self.host_cores as f64));
        o.insert("metric", Json::Str(self.metric.clone()));
        o.insert("value", Json::Num(self.value));
        o.to_string()
    }

    fn from_json(v: &Json) -> Option<Row> {
        if v.get("schema")?.as_f64()? as u64 != SCHEMA {
            return None;
        }
        Some(Row {
            experiment: v.get("experiment")?.as_str()?.to_string(),
            git_sha: v.get("git_sha")?.as_str()?.to_string(),
            host_cores: v.get("host_cores")?.as_f64()? as u64,
            metric: v.get("metric")?.as_str()?.to_string(),
            value: v.get("value")?.as_f64()?,
        })
    }
}

/// Flatten the numeric leaves of a bench JSON into dotted metric paths
/// (`points.0.traced_s`). Strings/bools/nulls are context, not metrics.
fn flatten(prefix: &str, v: &Json, out: &mut Vec<(String, f64)>) {
    match v {
        Json::Num(x) if x.is_finite() => out.push((prefix.to_string(), *x)),
        Json::Arr(items) => {
            for (i, it) in items.iter().enumerate() {
                flatten(&format!("{prefix}.{i}"), it, out);
            }
        }
        Json::Obj(fields) => {
            for (k, it) in fields {
                let p = if prefix.is_empty() { k.clone() } else { format!("{prefix}.{k}") };
                flatten(&p, it, out);
            }
        }
        _ => {}
    }
}

/// Gate direction + thresholds of one metric, when it is gated at all.
///
/// `rel` is the allowed relative worsening over the baseline, `abs` an
/// absolute slack floor that keeps near-zero baselines (0 allocs,
/// sub-millisecond timings) from tripping on noise.
#[derive(Debug, Clone, Copy)]
struct GateRule {
    rel: f64,
    abs: f64,
}

/// Lower-is-better rules by metric-name shape. Returns `None` for
/// metrics that are recorded but never gated (counts, ratios, modes).
fn gate_rule(metric: &str) -> Option<GateRule> {
    let leaf = metric.rsplit('.').next().unwrap_or(metric);
    if leaf.ends_with("_allocs") || leaf == "allocs" {
        // Steady-state allocation counts: a baseline of 0 must stay 0.
        return Some(GateRule { rel: 0.10, abs: 0.5 });
    }
    if leaf.ends_with("overhead_pct") {
        // Percentage points; noise floor of a few points.
        return Some(GateRule { rel: 0.10, abs: 3.0 });
    }
    if leaf.ends_with("_s") || leaf.ends_with("_seconds") || leaf == "makespan" {
        // Wall-clock: 10 % relative plus a 1 ms floor. Benches record
        // interleaved minima, and baselines only ever come from a host
        // with the same core count, so 10 % is jitter-safe while still
        // catching a 20 % regression.
        return Some(GateRule { rel: 0.10, abs: 1e-3 });
    }
    None
}

/// `true` when `current` regresses past the rule's envelope around
/// `baseline` (lower is better for every gated metric).
fn regressed(rule: GateRule, baseline: f64, current: f64) -> bool {
    current > baseline + baseline.abs() * rule.rel + rule.abs
}

fn git_sha(dir: &Path) -> String {
    Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .current_dir(dir)
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

/// Ingest every `BENCH_*.json` under `dir` as rows for `sha`.
fn ingest(dir: &Path, sha: &str, host_cores: u64) -> Vec<Row> {
    let mut rows = Vec::new();
    let mut files: Vec<PathBuf> = std::fs::read_dir(dir)
        .map(|rd| {
            rd.filter_map(|e| e.ok().map(|e| e.path()))
                .filter(|p| {
                    p.file_name()
                        .and_then(|n| n.to_str())
                        .is_some_and(|n| n.starts_with("BENCH_") && n.ends_with(".json"))
                })
                .collect()
        })
        .unwrap_or_default();
    files.sort();
    for path in files {
        let Ok(text) = std::fs::read_to_string(&path) else { continue };
        let parsed = match Json::parse(&text) {
            Ok(v) => v,
            Err(e) => {
                eprintln!("bench_history: skipping {} (parse error: {e})", path.display());
                continue;
            }
        };
        let stem = path
            .file_stem()
            .and_then(|n| n.to_str())
            .unwrap_or("bench")
            .trim_start_matches("BENCH_")
            .to_string();
        let experiment =
            parsed.get("experiment").and_then(|v| v.as_str()).unwrap_or(&stem).to_string();
        let mut leaves = Vec::new();
        flatten("", &parsed, &mut leaves);
        for (metric, value) in leaves {
            rows.push(Row {
                experiment: experiment.clone(),
                git_sha: sha.to_string(),
                host_cores,
                metric,
                value,
            });
        }
    }
    rows
}

fn load_history(path: &Path) -> Vec<Row> {
    let Ok(text) = std::fs::read_to_string(path) else { return Vec::new() };
    text.lines()
        .filter(|l| !l.trim().is_empty())
        .filter_map(|l| Json::parse(l).ok())
        .filter_map(|v| Row::from_json(&v))
        .collect()
}

/// Append `rows` not already present (same experiment+metric+sha) to
/// the ledger; returns how many were written.
fn append_history(path: &Path, existing: &[Row], rows: &[Row]) -> std::io::Result<usize> {
    use std::io::Write as _;
    let seen: std::collections::BTreeSet<(&str, &str, &str)> = existing
        .iter()
        .map(|r| (r.experiment.as_str(), r.metric.as_str(), r.git_sha.as_str()))
        .collect();
    let fresh: Vec<&Row> = rows
        .iter()
        .filter(|r| !seen.contains(&(r.experiment.as_str(), r.metric.as_str(), r.git_sha.as_str())))
        .collect();
    if fresh.is_empty() {
        return Ok(0);
    }
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent)?;
    }
    let mut f = std::fs::OpenOptions::new().create(true).append(true).open(path)?;
    for r in &fresh {
        writeln!(f, "{}", r.to_jsonl())?;
    }
    Ok(fresh.len())
}

/// One gate violation (kept as data so the self-test can assert on it).
#[derive(Debug)]
struct Violation {
    experiment: String,
    metric: String,
    baseline: f64,
    current: f64,
}

/// Gate `current` rows against `history`: for every gated metric, the
/// baseline is the *best* (minimum) value recorded by a different
/// commit on a same-shaped host. No baseline → vacuous pass.
fn gate(history: &[Row], current: &[Row]) -> Vec<Violation> {
    let mut best: BTreeMap<(&str, &str), f64> = BTreeMap::new();
    for r in history {
        let cur = current
            .iter()
            .find(|c| c.experiment == r.experiment && c.metric == r.metric);
        let Some(cur) = cur else { continue };
        if r.git_sha == cur.git_sha || r.host_cores != cur.host_cores {
            continue;
        }
        let key = (r.experiment.as_str(), r.metric.as_str());
        let e = best.entry(key).or_insert(r.value);
        *e = e.min(r.value);
    }
    let mut violations = Vec::new();
    for c in current {
        let Some(rule) = gate_rule(&c.metric) else { continue };
        let Some(&baseline) = best.get(&(c.experiment.as_str(), c.metric.as_str())) else {
            continue;
        };
        if regressed(rule, baseline, c.value) {
            violations.push(Violation {
                experiment: c.experiment.clone(),
                metric: c.metric.clone(),
                baseline,
                current: c.value,
            });
        }
    }
    violations
}

/// Negative self-test: a +20 % injected regression on a gated timing
/// metric must trip the gate. Returns `true` when the gate caught it.
fn negative_self_test(host_cores: u64) -> bool {
    let mk = |sha: &str, value: f64| Row {
        experiment: "self_test".to_string(),
        git_sha: sha.to_string(),
        host_cores,
        metric: "factorize_seconds".to_string(),
        value,
    };
    let history = vec![mk("baseline", 1.0)];
    let regressed_run = vec![mk("current", 1.2)];
    let caught = !gate(&history, &regressed_run).is_empty();
    let clean_run = vec![mk("current", 1.02)];
    let clean = gate(&history, &clean_run).is_empty();
    caught && clean
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let flag = |name: &str| args.iter().any(|a| a == name);
    let opt = |name: &str| {
        args.iter().position(|a| a == name).and_then(|i| args.get(i + 1)).cloned()
    };
    let smoke = flag("--smoke");
    let run_gate = flag("--gate") || smoke;
    let dir = PathBuf::from(opt("--dir").unwrap_or_else(|| ".".to_string()));
    let history_path = PathBuf::from(
        opt("--history").unwrap_or_else(|| "results/history.jsonl".to_string()),
    );
    let host_cores = std::thread::available_parallelism().map_or(1, |n| n.get()) as u64;
    let sha = git_sha(&dir);

    let history = load_history(&history_path);
    let current = ingest(&dir, &sha, host_cores);
    if current.is_empty() {
        eprintln!("bench_history: no BENCH_*.json artifacts under {}", dir.display());
    }

    let mut failed = false;
    if run_gate {
        let violations = gate(&history, &current);
        for v in &violations {
            eprintln!(
                "bench_history GATE FAILED: {}/{} regressed {:.6} -> {:.6}",
                v.experiment, v.metric, v.baseline, v.current
            );
        }
        if violations.is_empty() {
            eprintln!(
                "bench_history: gate clean ({} current rows, {} history rows)",
                current.len(),
                history.len()
            );
        } else {
            failed = true;
        }
    }

    if smoke && !negative_self_test(host_cores) {
        eprintln!("bench_history SELF-TEST FAILED: injected 20% regression not caught");
        failed = true;
    } else if smoke {
        eprintln!("bench_history: negative self-test ok (injected +20% regression caught)");
    }

    match append_history(&history_path, &history, &current) {
        Ok(n) => eprintln!(
            "bench_history: {} new rows appended to {} (sha {sha}, {host_cores} cores)",
            n,
            history_path.display()
        ),
        Err(e) => {
            eprintln!("bench_history: cannot write {}: {e}", history_path.display());
            failed = true;
        }
    }

    if failed {
        std::process::exit(1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(exp: &str, sha: &str, cores: u64, metric: &str, value: f64) -> Row {
        Row {
            experiment: exp.to_string(),
            git_sha: sha.to_string(),
            host_cores: cores,
            metric: metric.to_string(),
            value,
        }
    }

    #[test]
    fn rows_round_trip_through_jsonl() {
        let r = row("trace_overhead", "abc1234", 8, "points.0.traced_s", 0.00321);
        let parsed = Json::parse(&r.to_jsonl()).expect("row must be valid JSON");
        assert_eq!(Row::from_json(&parsed).expect("schema 1 row"), r);
    }

    #[test]
    fn unknown_schema_rows_are_skipped() {
        let mut o = Json::obj();
        o.insert("schema", Json::Num(99.0));
        o.insert("experiment", Json::Str("x".into()));
        assert!(Row::from_json(&o).is_none());
    }

    #[test]
    fn flatten_walks_nested_objects_and_arrays() {
        let v = Json::parse(
            r#"{"experiment":"e","max_overhead_pct":2.5,
                "points":[{"n":512,"traced_s":0.01},{"n":768,"traced_s":0.02}]}"#,
        )
        .unwrap();
        let mut leaves = Vec::new();
        flatten("", &v, &mut leaves);
        assert!(leaves.contains(&("max_overhead_pct".to_string(), 2.5)));
        assert!(leaves.contains(&("points.1.traced_s".to_string(), 0.02)));
        assert!(leaves.iter().all(|(k, _)| k != "experiment"), "strings are not metrics");
    }

    #[test]
    fn gate_fails_on_injected_twenty_pct_regression() {
        let history = vec![row("e", "old", 4, "factorize_seconds", 1.0)];
        let bad = vec![row("e", "new", 4, "factorize_seconds", 1.2)];
        assert_eq!(gate(&history, &bad).len(), 1, "20% timing regression must trip");
        let ok = vec![row("e", "new", 4, "factorize_seconds", 1.05)];
        assert!(gate(&history, &ok).is_empty(), "5% jitter must pass");
    }

    #[test]
    fn gate_ignores_other_hosts_same_sha_and_ungated_metrics() {
        let history = vec![
            row("e", "old", 2, "factorize_seconds", 1.0),  // different host shape
            row("e", "new", 4, "factorize_seconds", 1.0),  // same sha as current
            row("e", "old", 4, "tasks", 100.0),            // no gate rule
        ];
        let current = vec![
            row("e", "new", 4, "factorize_seconds", 10.0),
            row("e", "new", 4, "tasks", 1000.0),
        ];
        assert!(gate(&history, &current).is_empty());
    }

    #[test]
    fn alloc_counts_gate_exactly_and_zero_baseline_holds() {
        let history = vec![row("e", "old", 4, "gemm_steady_state_allocs", 0.0)];
        let bad = vec![row("e", "new", 4, "gemm_steady_state_allocs", 1.0)];
        assert_eq!(gate(&history, &bad).len(), 1, "0 -> 1 allocs must trip");
        let same = vec![row("e", "new", 4, "gemm_steady_state_allocs", 0.0)];
        assert!(gate(&history, &same).is_empty());
    }

    #[test]
    fn negative_self_test_catches_and_passes() {
        assert!(negative_self_test(4));
    }
}

//! Overhead of the tile-integrity layer on the real shared-memory
//! factorization: the same problem is factored with integrity off, in
//! `Maintain` mode (seal on load, reseal at each tile's finalizing
//! write, one end-of-run sweep — the classical ABFT shape), and in
//! `VerifyReads` mode (reseal every write and verify each tile version
//! at its first read boundary), across a few sizes, and the slowdowns
//! are reported.
//!
//! The CI gate is on **checksum maintenance**: `Maintain` must stay
//! within 5 % of the unprotected hot path and the digest kernel must
//! not allocate in steady state (it is a streaming fold — the counting
//! global allocator cross-checks). `VerifyReads` buys pre-propagation
//! detection for roughly one extra digest per task and is reported
//! informationally.
//!
//! Emits `BENCH_integrity_overhead.json` (and echoes it to stdout).
//! `--smoke` shrinks to one small size for CI and exits nonzero when
//! the gate fails: maintenance overhead > 5 %, or any steady-state
//! allocation in digest computation.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use hicma_core::{factorize, FactorConfig, IntegrityMode};
use tlr_compress::{CompressionConfig, Tile, TileDigest, TlrMatrix};
use tlr_linalg::Matrix;

/// Forwarding allocator counting `alloc`/`realloc` calls, so the bench
/// can prove digest maintenance stays off the heap.
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// Gaussian-kernel SPD generator on a 1D grid (the RBF-like test
/// operator the correctness tests use).
fn gaussian_gen(n: usize) -> impl Fn(usize, usize) -> f64 + Sync {
    move |i: usize, j: usize| {
        let d = (i as f64 - j as f64) / (n as f64 / 8.0);
        let v = (-d * d).exp();
        if i == j {
            v + 1e-3
        } else {
            v
        }
    }
}

struct Point {
    n: usize,
    b: usize,
    tasks: usize,
    off_s: f64,
    maintain_s: f64,
    verify_reads_s: f64,
    maintain_pct: f64,
    verify_reads_pct: f64,
}

/// One factorization in one integrity mode; returns (seconds, tasks).
/// Clones the pre-compressed matrix — compression is paid once per grid
/// point, not once per rep. Runs on ONE worker: serial wall time is the
/// sum of task times, so digest maintenance cannot hide in (or be
/// charged for) parallel scheduling slack — the measured ratio is the
/// true added compute on the hot path, and run-to-run variance drops an
/// order of magnitude versus the work-stealing schedule.
fn time_once(m0: &TlrMatrix, acc: f64, mode: IntegrityMode) -> (f64, usize) {
    let mut m = m0.clone();
    let mut fcfg = FactorConfig::with_accuracy(acc);
    fcfg.integrity = mode;
    fcfg.collect_trace = false;
    fcfg.nthreads = 1;
    let rep = factorize(&mut m, &fcfg).expect("SPD benchmark matrix must factor");
    (rep.factorization_seconds, rep.dag_tasks)
}

/// Median of a non-empty sample (averages the middle pair).
fn median(xs: &mut [f64]) -> f64 {
    xs.sort_by(f64::total_cmp);
    let n = xs.len();
    if n % 2 == 1 {
        xs[n / 2]
    } else {
        0.5 * (xs[n / 2 - 1] + xs[n / 2])
    }
}

fn run_point(n: usize, b: usize, reps: usize) -> Point {
    let acc = 1e-8;
    let dense = Matrix::from_fn(n, n, &gaussian_gen(n));
    let ccfg = CompressionConfig::with_accuracy(acc);
    let m0 = TlrMatrix::from_dense(&dense, b, &ccfg);
    drop(dense);
    const MODES: [IntegrityMode; 3] = [
        IntegrityMode::Off,
        IntegrityMode::Maintain,
        IntegrityMode::VerifyReads,
    ];
    // Warm every path once. Then, per rep, run the three modes
    // back-to-back (rotating the order so no mode systematically
    // benefits from its position) and record the per-rep overhead
    // *ratios*. A shared host drifts through multi-second slow/fast
    // phases that min-of-N over whole-run times cannot cancel — but
    // the three runs inside one rep land in the same phase, so their
    // ratios are drift-free, and the median over reps kills spikes.
    for mode in MODES {
        let _ = time_once(&m0, acc, mode);
    }
    let mut best = [f64::INFINITY; 3];
    let mut ratios_m = Vec::with_capacity(reps);
    let mut ratios_v = Vec::with_capacity(reps);
    let mut tasks = 0;
    for rep in 0..reps {
        let order = match rep % 3 {
            0 => [0usize, 1, 2],
            1 => [1, 2, 0],
            _ => [2, 0, 1],
        };
        let mut s = [0.0; 3];
        for idx in order {
            // min-of-2 inside the rep: a preemption / timer spike lands
            // on one of the two runs, not both, so the rep's ratio stays
            // clean far more often than a single timing would.
            let (sec_a, t) = time_once(&m0, acc, MODES[idx]);
            let (sec_b, _) = time_once(&m0, acc, MODES[idx]);
            s[idx] = sec_a.min(sec_b);
            best[idx] = best[idx].min(s[idx]);
            tasks = t;
        }
        ratios_m.push(s[1] / s[0]);
        ratios_v.push(s[2] / s[0]);
    }
    if std::env::var_os("INTEGRITY_BENCH_DEBUG").is_some() {
        let fmt = |r: &[f64]| {
            r.iter()
                .map(|x| format!("{:+.1}", 100.0 * (x - 1.0)))
                .collect::<Vec<_>>()
                .join(" ")
        };
        eprintln!("  maintain ratios: {}", fmt(&ratios_m));
        eprintln!("  vreads   ratios: {}", fmt(&ratios_v));
    }
    Point {
        n,
        b,
        tasks,
        off_s: best[0],
        maintain_s: best[1],
        verify_reads_s: best[2],
        maintain_pct: 100.0 * (median(&mut ratios_m) - 1.0),
        verify_reads_pct: 100.0 * (median(&mut ratios_v) - 1.0),
    }
}

/// Deterministic low-rank factor for the steady-state digest probe.
fn mixed_factor(rows: usize, k: usize, seed: usize) -> Matrix {
    Matrix::from_fn(rows, k, |i, j| {
        ((i * 31 + j * 17 + seed * 13 + 7) % 101) as f64 / 101.0 - 0.5
    })
}

/// Steady-state allocations of digest maintenance: sealing and
/// verifying warm dense and low-rank tiles must never touch the heap —
/// the digest is a streaming fold with no scratch.
fn digest_steady_state_allocs() -> u64 {
    let dense = Tile::Dense(Matrix::from_fn(64, 64, |i, j| {
        ((i * 13 + j * 7 + 3) % 97) as f64 / 97.0 - 0.5
    }));
    let lr = Tile::LowRank {
        u: mixed_factor(64, 9, 1),
        v: mixed_factor(64, 9, 2),
    };
    // Warm-up (first digest of each shape may fault in lazily).
    let d0 = TileDigest::of(&dense);
    let l0 = TileDigest::of(&lr);
    let before = ALLOCS.load(Ordering::Relaxed);
    let mut ok = true;
    for _ in 0..100 {
        ok &= d0.verify(&dense) && l0.verify(&lr);
        ok &= TileDigest::of(&dense) == d0 && TileDigest::of(&lr) == l0;
    }
    assert!(ok, "clean tiles must verify");
    ALLOCS.load(Ordering::Relaxed) - before
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");

    // Sizes keep the factorization in the milliseconds and the rep
    // count high: the gate is a median of per-rep ratios over many
    // back-to-back triples, which is what makes a 5 % threshold
    // meaningful on a shared/1-CPU host where single runs spike 20 %+.
    // Maintenance cost is one digest per *factor tile* (its finalizing
    // POTRF/TRSM) against the full `O(tiles²)` update task stream, so
    // the overhead fraction shrinks with problem size — the full grid
    // shows the scaling, and the smoke gate pins the paper-realistic
    // tile size `b = 96`.
    let grid: Vec<(usize, usize)> = if smoke {
        vec![(1536, 96)]
    } else {
        vec![(768, 48), (1024, 64), (1536, 96)]
    };
    // The smoke gate is the CI pass/fail signal, so it buys extra
    // statistical power (the whole run is still a few seconds).
    let reps = if smoke { 61 } else { 15 };

    let mut points = Vec::new();
    for &(n, b) in &grid {
        let p = run_point(n, b, reps);
        eprintln!(
            "n={:<5} b={:<3} tasks={:<5} off {:>8.4}s  maintain {:+.2}%  verify_reads {:+.2}%",
            p.n, p.b, p.tasks, p.off_s, p.maintain_pct, p.verify_reads_pct
        );
        points.push(p);
    }

    let digest_allocs = digest_steady_state_allocs();
    let max_maintain = points
        .iter()
        .map(|p| p.maintain_pct)
        .fold(f64::NEG_INFINITY, f64::max);
    let max_verify = points
        .iter()
        .map(|p| p.verify_reads_pct)
        .fold(f64::NEG_INFINITY, f64::max);

    let rows: Vec<String> = points
        .iter()
        .map(|p| {
            format!(
                "    {{\"n\": {}, \"b\": {}, \"tasks\": {}, \"off_s\": {:.6}, \
                 \"maintain_s\": {:.6}, \"verify_reads_s\": {:.6}, \
                 \"maintain_overhead_pct\": {:.3}, \"verify_reads_overhead_pct\": {:.3}}}",
                p.n,
                p.b,
                p.tasks,
                p.off_s,
                p.maintain_s,
                p.verify_reads_s,
                p.maintain_pct,
                p.verify_reads_pct
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"experiment\": \"integrity_overhead\",\n  \
         \"mode\": \"{}\",\n  \
         \"note\": \"single measurement host; serial (1-worker) execution; median of per-rep \
         overhead ratios over {reps} back-to-back off/maintain/verify_reads triples\",\n  \
         \"max_maintain_overhead_pct\": {max_maintain:.3},\n  \
         \"max_verify_reads_overhead_pct\": {max_verify:.3},\n  \
         \"digest_steady_state_allocs\": {digest_allocs},\n  \
         \"points\": [\n{}\n  ]\n}}\n",
        if smoke { "smoke" } else { "full" },
        rows.join(",\n")
    );
    print!("{json}");
    std::fs::write("BENCH_integrity_overhead.json", &json)
        .expect("write BENCH_integrity_overhead.json");
    eprintln!(
        "wrote BENCH_integrity_overhead.json (maintain {max_maintain:+.2}%, verify_reads \
         {max_verify:+.2}%, digest steady-state allocs {digest_allocs})"
    );

    if smoke {
        let mut failed = false;
        if digest_allocs > 0 {
            eprintln!("smoke FAILED: steady-state digest computation allocated (expected 0)");
            failed = true;
        }
        if max_maintain > 5.0 {
            eprintln!("smoke FAILED: checksum maintenance overhead {max_maintain:.2}% > 5%");
            failed = true;
        }
        if failed {
            std::process::exit(1);
        }
    }
}

//! Side-by-side observability report for the three distribution plans
//! of §VII — Lorapo's 2D block cyclic hybrid, the band distribution,
//! and band + diamond execution remapping — on the same synthetic
//! paper-shaped problem, all through the discrete-event simulator.
//!
//! For each plan the run's trace is summarized with the *same*
//! [`RunMetrics`] record the shared-memory executor uses (per-class
//! busy time, per-process idle fraction, load imbalance, communication
//! volume, efficiency against the critical-path bound) and exported as
//! a Chrome-trace file `TRACE_<plan>.json` loadable in Perfetto —
//! one exporter, both engines, which is the point of the facade.
//!
//! Writes `METRICS_trace_compare.csv` with every metric for every plan.

use hicma_core::simulate::{simulate_cholesky, DistributionPlan, SimConfig};
use runtime::obs::{chrome_trace_json, RunMetrics};
use runtime::MachineModel;
use tlr_compress::SyntheticRankModel;

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (nt, tile) = if smoke { (24, 256) } else { (54, 512) };
    let nodes = if smoke { 4 } else { 16 };
    let snap = SyntheticRankModel::from_application(nt, tile, 3.7e-4, 1e-4).snapshot();
    println!(
        "DES comparison: NT={nt}, b={tile}, {nodes} Shaheen-II nodes, paper shape 3.7e-4"
    );

    let plans = [DistributionPlan::Lorapo, DistributionPlan::Band, DistributionPlan::BandDiamond];
    let mut runs = Vec::new();
    for plan in plans {
        let cfg = SimConfig { plan, ..SimConfig::hicma_parsec(MachineModel::shaheen_ii(), nodes) };
        let r = simulate_cholesky(&snap, &cfg);
        let label = plan.name();
        let metrics = RunMetrics::from_trace(label, &r.trace, nodes)
            .with_comm(r.comm.bytes + r.writeback_bytes, r.comm.messages)
            .with_critical_path(r.critical_path_seconds);

        let path = format!("TRACE_{}.json", label.replace('+', "_"));
        std::fs::write(&path, chrome_trace_json(&r.trace, label)).expect("write chrome trace");
        println!(
            "  {label:>13}: makespan {:.4}s, {} tasks traced -> {path}",
            metrics.makespan,
            r.trace.records.len()
        );
        runs.push(metrics);
    }

    println!();
    println!("{}", RunMetrics::comparison_table(&runs));

    let mut csv = String::new();
    for m in &runs {
        csv.push_str(&m.to_csv());
        csv.push('\n');
    }
    std::fs::write("METRICS_trace_compare.csv", &csv).expect("write METRICS_trace_compare.csv");
    println!("wrote METRICS_trace_compare.csv and one Chrome trace per plan");
    println!("open the traces at https://ui.perfetto.dev (or chrome://tracing)");
}

//! Fig. 14 — extreme-scale performance on Shaheen II: matrix sizes up to
//! 52.57M on up to 2048 nodes. Each matrix size is a strong-scaling
//! experiment (read down a column of node counts) and each node count a
//! weak-scaling one (read across sizes). Paper headline: 52.57M unknowns
//! factored in ~36 minutes on 2048 nodes (65K cores).

use hicma_core::lorapo::hicma_parsec_config;
use hicma_core::simulate::simulate_cholesky;
use runtime::MachineModel;
use tlr_bench::{scaled_machine, 
    header, paper_sizes_extreme, scale_factor, scaled_snapshot, PAPER_ACCURACY, PAPER_SHAPE,
};

fn main() {
    let s = scale_factor(32);
    println!("Fig. 14 — extreme scale on Shaheen II (scale 1/{s})");
    header(&[
        ("N", 8),
        ("nodes", 6),
        ("NT", 6),
        ("tasks", 10),
        ("time (s)", 10),
        ("CP (s)", 9),
        ("eff", 6),
        ("imb", 6),
    ]);

    for (label, n_paper, b_paper) in paper_sizes_extreme() {
        for nodes_paper in [512usize, 1024, 2048] {
            let (p, snap) =
                scaled_snapshot(n_paper, b_paper, nodes_paper, s, PAPER_SHAPE, PAPER_ACCURACY);
            let r = simulate_cholesky(
                &snap,
                &hicma_parsec_config(scaled_machine(MachineModel::shaheen_ii(), s), p.nodes),
            );
            println!(
                "{:>8} {:>6} {:>6} {:>10} {:>10.2} {:>9.2} {:>5.0}% {:>6.2}",
                label,
                nodes_paper,
                p.nt,
                r.dag_tasks,
                r.factorization_seconds,
                r.critical_path_seconds,
                100.0 * r.roofline_efficiency(),
                r.load_imbalance,
            );
        }
        println!();
    }
    println!("Expected (paper): strong scaling per size until the critical path");
    println!("dominates; weak scaling across sizes; the largest problems remain");
    println!("tractable only because of the TLR structure.");
}

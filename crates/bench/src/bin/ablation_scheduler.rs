//! Ablation: ready-queue scheduling policy.
//!
//! PaRSEC's node scheduler matters for TLR Cholesky because panel tasks
//! must not starve behind the GEMM flood. This ablation runs the same
//! trimmed Cholesky DAG under four policies (panel priority — the
//! paper's effective choice —, FIFO, LIFO, HEFT-style upward rank) on
//! the simulated Shaheen II.

use hicma_core::dag::{build_cholesky_dag, DagConfig};
use runtime::des::{simulate_with_order, DesConfig, DesTask};
use runtime::scheduler::{queue_keys, SchedPolicy};
use runtime::MachineModel;
use tlr_bench::{header, scale_factor, scaled_machine, scaled_snapshot, PAPER_ACCURACY, PAPER_SHAPE};

fn main() {
    let s = scale_factor(32);
    let machine = scaled_machine(MachineModel::shaheen_ii(), s);
    println!("Ablation — ready-queue scheduling policy (Shaheen II, scale 1/{s})");
    header(&[("N", 8), ("nodes", 6), ("policy", 14), ("time (s)", 10), ("vs priority", 12)]);

    for (label, n_paper, b_paper, nodes_paper) in
        [("4.49M", 4.49e6, 2990usize, 128usize), ("11.95M", 11.95e6, 4880, 512)]
    {
        let (p, snap) =
            scaled_snapshot(n_paper, b_paper, nodes_paper, s, PAPER_SHAPE, PAPER_ACCURACY);
        let dag = build_cholesky_dag(&snap, &DagConfig::default());
        let dur = |t: usize| -> f64 {
            let fl = dag.flops[t];
            if fl == 0.0 {
                0.0
            } else if dag.nested[t] {
                machine.nested_time(fl)
            } else {
                machine.core_time(fl, dag.rank_param[t])
            }
        };
        // Owner-computes on the band distribution (the paper's layout).
        let band = distribution::BandDistribution::new(p.nodes);
        use distribution::TileDistribution;
        let tasks: Vec<DesTask> = (0..dag.graph.len())
            .map(|t| {
                let w = dag.graph.spec(t).writes.unwrap();
                DesTask { proc: band.owner(w.i, w.j), duration: dur(t) }
            })
            .collect();
        let cfg = DesConfig {
            nprocs: p.nodes,
            cores_per_proc: machine.cores_per_node,
            latency_s: machine.latency_s,
            bandwidth_bps: machine.bandwidth_bps,
            dep_overhead_s: machine.dep_overhead_s,
            task_mgmt_s: machine.task_overhead_s,
        };
        let mut baseline = None;
        for (name, policy) in [
            ("priority", SchedPolicy::PanelPriority),
            ("fifo", SchedPolicy::Fifo),
            ("lifo", SchedPolicy::Lifo),
            ("upward-rank", SchedPolicy::UpwardRank),
        ] {
            let keys = queue_keys(&dag.graph, dur, policy);
            let r = simulate_with_order(&dag.graph, &tasks, &cfg, &keys);
            let base = *baseline.get_or_insert(r.makespan);
            println!(
                "{:>8} {:>6} {:>14} {:>10.3} {:>11.2}x",
                label,
                nodes_paper,
                name,
                r.makespan,
                r.makespan / base,
            );
        }
        println!();
    }
    println!("Expected: FIFO matches panel priority (creation order follows the");
    println!("panels); the HEFT-style upward rank buys a further 5-15% by pulling");
    println!("long dependency chains ahead of the GEMM flood.");
}

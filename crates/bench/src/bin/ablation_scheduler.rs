//! Ablation: ready-queue scheduling policy × machine × distribution,
//! plus the comm-feedback re-planning loop.
//!
//! PaRSEC's node scheduler matters for TLR Cholesky because panel tasks
//! must not starve behind the GEMM flood. This ablation runs the same
//! trimmed Cholesky DAG under every [`SchedPolicy`] — the paper's panel
//! priority, FIFO, LIFO, the HEFT-style upward rank, its comm-aware
//! variant (cross-rank edges priced at the machine's latency +
//! bytes/bandwidth), and the rank-aware critical-path lookahead (kernel
//! costs from the snapshot's rank distribution, self-corrected from
//! simulated durations mid-run) — on both calibrated machine models and
//! two distributions. A second section drives repeated distributed
//! solves on one geometry through an embedded comm-feedback re-planner
//! (plan-cached, so overrides persist round to round) and reports the
//! measured traffic per round.
//!
//! Emits `BENCH_scheduler_ablation.json` (and echoes a table to
//! stdout). `--smoke` shrinks to one DES point + the re-planning loop
//! for CI and exits nonzero when a gate fails: the re-planner measured
//! *more* traffic on any round, or any policy's factor deviated from
//! the panel-priority factor bit for bit.

use std::fmt::Write as _;

use distribution::{BandDistribution, TileDistribution, TwoDBlockCyclic};
use hicma_core::dag::{build_cholesky_dag, CholeskyDag, DagConfig};
use hicma_core::{factorize, FactorConfig, PlanCache, Session};
use runtime::des::{simulate_with_scheduler, DesConfig, DesTask};
use runtime::scheduler::{
    queue_keys, upward_rank_comm_keys, CommCosts, CostModel, LookaheadScheduler, RankProfile,
    SchedPolicy, Scheduler, StaticScheduler,
};
use runtime::MachineModel;
use tlr_bench::{
    header, scale_factor, scaled_machine, scaled_snapshot, PAPER_ACCURACY, PAPER_SHAPE,
};
use tlr_compress::{CompressionConfig, RankEvolution, RankSnapshot, TlrMatrix};
use tlr_linalg::norms::relative_diff;
use tlr_linalg::Matrix;

/// Kernel-only duration under the machine model (the per-task
/// management overhead is charged by the DES's serial runtime thread).
fn task_duration(dag: &CholeskyDag, t: usize, machine: &MachineModel) -> f64 {
    let fl = dag.flops[t];
    if fl == 0.0 {
        0.0
    } else if dag.nested[t] {
        machine.nested_time(fl)
    } else {
        machine.core_time(fl, dag.rank_param[t])
    }
}

/// Build the scheduler a policy asks for, against this DAG + machine.
fn make_scheduler(
    policy: SchedPolicy,
    dag: &CholeskyDag,
    snap: &RankSnapshot,
    tasks: &[DesTask],
    machine: &MachineModel,
) -> Box<dyn Scheduler> {
    let dur = |t: usize| tasks[t].duration;
    match policy {
        SchedPolicy::CommAwareUpwardRank => {
            let proc_of: Vec<usize> = tasks.iter().map(|t| t.proc).collect();
            let keys = upward_rank_comm_keys(
                &dag.graph,
                dur,
                &proc_of,
                &CommCosts::from_machine(machine),
            );
            Box::new(StaticScheduler::new(keys).expect("model durations are finite"))
        }
        SchedPolicy::RankAwareLookahead => {
            let mut evo = RankEvolution::default();
            for i in 0..snap.nt() {
                for j in 0..=i {
                    let r = snap.rank(i, j);
                    if r > 0 {
                        evo.record(r, r);
                    }
                }
            }
            let profile = RankProfile::from_histogram(evo.histogram(), snap.tile_size());
            let model = CostModel::from_machine(machine, &profile);
            Box::new(
                LookaheadScheduler::with_cost_model(&dag.graph, &model)
                    .expect("model costs are finite"),
            )
        }
        p => Box::new(
            StaticScheduler::new(queue_keys(&dag.graph, dur, p)).expect("keys are finite"),
        ),
    }
}

struct DesPoint {
    machine: &'static str,
    dist: &'static str,
    problem: &'static str,
    nodes: usize,
    policy: &'static str,
    makespan: f64,
    vs_priority: f64,
}

/// One machine × distribution × problem sweep over every policy.
#[allow(clippy::too_many_arguments)]
fn sweep_point(
    machine_name: &'static str,
    machine: &MachineModel,
    dist_name: &'static str,
    dist: &dyn TileDistribution,
    problem: &'static str,
    nodes: usize,
    snap: &RankSnapshot,
    out: &mut Vec<DesPoint>,
) {
    let dag = build_cholesky_dag(snap, &DagConfig::default());
    let tasks: Vec<DesTask> = (0..dag.graph.len())
        .map(|t| {
            let w = dag.graph.spec(t).writes.expect("Cholesky tasks write");
            DesTask {
                proc: dist.owner(w.i, w.j),
                duration: task_duration(&dag, t, machine),
            }
        })
        .collect();
    let cfg = DesConfig {
        nprocs: nodes,
        cores_per_proc: machine.cores_per_node,
        latency_s: machine.latency_s,
        bandwidth_bps: machine.bandwidth_bps,
        dep_overhead_s: machine.dep_overhead_s,
        task_mgmt_s: machine.task_overhead_s,
    };
    let mut baseline = None;
    for policy in SchedPolicy::ALL {
        let mut sched = make_scheduler(policy, &dag, snap, &tasks, machine);
        let r = simulate_with_scheduler(&dag.graph, &tasks, &cfg, sched.as_mut())
            .expect("model keys are finite");
        let base = *baseline.get_or_insert(r.makespan);
        println!(
            "{:>10} {:>10} {:>8} {:>6} {:>17} {:>10.3} {:>11.3}x",
            machine_name,
            dist_name,
            problem,
            nodes,
            policy.name(),
            r.makespan,
            r.makespan / base,
        );
        out.push(DesPoint {
            machine: machine_name,
            dist: dist_name,
            problem,
            nodes,
            policy: policy.name(),
            makespan: r.makespan,
            vs_priority: r.makespan / base,
        });
    }
}

/// Gaussian-kernel SPD generator (the RBF-like test operator).
fn gaussian_dense(n: usize) -> Matrix {
    Matrix::from_fn(n, n, |i, j| {
        let d = (i as f64 - j as f64) / (n as f64 / 8.0);
        let v = (-d * d).exp();
        if i == j {
            v + 1e-3
        } else {
            v
        }
    })
}

/// Repeated real distributed solves on one geometry under the
/// re-planner; returns measured (bytes, messages) per round.
fn replan_rounds(n: usize, b: usize, nprocs: usize, rounds: usize) -> Vec<(u64, u64)> {
    let acc = 1e-8;
    let dense = gaussian_dense(n);
    let ccfg = CompressionConfig::with_accuracy(acc);
    let fcfg = FactorConfig::with_accuracy(acc);
    let dist = TwoDBlockCyclic::new(nprocs);
    // Embedded re-planner (0.2 imbalance slack): the converged overrides
    // live in the cached symbolic plan, so each round after the first is
    // a plan-cache hit that inherits the previous round's placement.
    let cache = PlanCache::new(1);
    let session = Session::distributed(fcfg, nprocs, &dist)
        .with_replanning(0.2)
        .with_plan_cache(&cache);
    let mut traffic = Vec::with_capacity(rounds);
    for round in 0..rounds {
        let mut m = TlrMatrix::from_dense(&dense, b, &ccfg);
        let comm = session
            .run(&mut m)
            .expect("SPD matrix must factor")
            .comm
            .expect("distributed runs count communication");
        println!(
            "   round {round}: {:>12} bytes {:>6} messages",
            comm.bytes, comm.messages
        );
        traffic.push((comm.bytes, comm.messages));
    }
    traffic
}

/// Every policy must produce the panel-priority factor bit for bit
/// (policies change order, never results). Returns the offending policy
/// name, if any.
fn factor_bit_identity(n: usize, b: usize) -> Option<&'static str> {
    let acc = 1e-8;
    let dense = gaussian_dense(n);
    let ccfg = CompressionConfig::with_accuracy(acc);
    let mut reference = TlrMatrix::from_dense(&dense, b, &ccfg);
    factorize(&mut reference, &FactorConfig::with_accuracy(acc)).expect("SPD");
    let l_ref = reference.to_dense_lower();
    for policy in SchedPolicy::ALL {
        let mut m = TlrMatrix::from_dense(&dense, b, &ccfg);
        let mut fcfg = FactorConfig::with_accuracy(acc);
        fcfg.sched = policy;
        factorize(&mut m, &fcfg).expect("SPD");
        if relative_diff(&m.to_dense_lower(), &l_ref) != 0.0 {
            return Some(policy.name());
        }
    }
    None
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let s = scale_factor(32);

    println!("Ablation — ready-queue scheduling policy (scale 1/{s})");
    header(&[
        ("machine", 10),
        ("dist", 10),
        ("N", 8),
        ("nodes", 6),
        ("policy", 17),
        ("time (s)", 10),
        ("vs priority", 12),
    ]);

    // ------------------------------------------------------------------
    // DES sweep: policy × machine × distribution.
    // ------------------------------------------------------------------
    let problems: &[(&'static str, f64, usize, usize)] = if smoke {
        &[("4.49M", 4.49e6, 2990, 128)]
    } else {
        &[("4.49M", 4.49e6, 2990, 128), ("11.95M", 11.95e6, 4880, 512)]
    };
    let machines = [
        ("shaheen-ii", scaled_machine(MachineModel::shaheen_ii(), s)),
        ("fugaku", scaled_machine(MachineModel::fugaku(), s)),
    ];
    let mut points = Vec::new();
    for (mname, machine) in &machines {
        for &(label, n_paper, b_paper, nodes_paper) in problems {
            let (p, snap) =
                scaled_snapshot(n_paper, b_paper, nodes_paper, s, PAPER_SHAPE, PAPER_ACCURACY);
            let band = BandDistribution::new(p.nodes);
            let cyclic = TwoDBlockCyclic::new(p.nodes);
            sweep_point(mname, machine, "band", &band, label, p.nodes, &snap, &mut points);
            if !smoke {
                sweep_point(
                    mname, machine, "2d-cyclic", &cyclic, label, p.nodes, &snap, &mut points,
                );
            }
        }
        println!();
    }
    // Does some lookahead policy beat panel priority somewhere?
    let lookahead_wins = points.iter().any(|p| {
        (p.policy == "rank-lookahead"
            || p.policy == "upward-rank"
            || p.policy == "comm-upward-rank")
            && p.vs_priority < 1.0
    });

    // ------------------------------------------------------------------
    // Comm-feedback re-planning on repeated solves (real DistEngine).
    // ------------------------------------------------------------------
    let (rn, rb, rprocs, rrounds) = if smoke { (96, 24, 4, 3) } else { (192, 24, 4, 4) };
    println!("Re-planning loop: n={rn} b={rb} nprocs={rprocs}, 2d-block-cyclic baseline");
    let traffic = replan_rounds(rn, rb, rprocs, rrounds);
    let monotone = traffic.windows(2).all(|w| w[1].0 <= w[0].0);
    let reduction_pct = 100.0 * (1.0 - traffic.last().unwrap().0 as f64 / traffic[0].0 as f64);
    println!(
        "   traffic {} → {} bytes ({reduction_pct:+.1}% vs static mapping)",
        traffic[0].0,
        traffic.last().unwrap().0
    );

    // ------------------------------------------------------------------
    // Bit-identity of the factor across every policy.
    // ------------------------------------------------------------------
    let divergent = factor_bit_identity(if smoke { 96 } else { 120 }, 24);

    // ------------------------------------------------------------------
    // JSON report.
    // ------------------------------------------------------------------
    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"experiment\": \"scheduler_ablation\",\n");
    let _ = writeln!(
        json,
        "  \"mode\": \"{}\",",
        if smoke { "smoke" } else { "full" }
    );
    let _ = writeln!(json, "  \"scale\": {s},");
    let _ = writeln!(json, "  \"lookahead_beats_priority\": {lookahead_wins},");
    let _ = writeln!(
        json,
        "  \"factors_bit_identical_across_policies\": {},",
        divergent.is_none()
    );
    json.push_str("  \"des_sweep\": [\n");
    for (i, p) in points.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"machine\": \"{}\", \"distribution\": \"{}\", \"problem\": \"{}\", \
             \"nodes\": {}, \"policy\": \"{}\", \"makespan_s\": {:.6}, \"vs_priority\": {:.4}}}",
            p.machine, p.dist, p.problem, p.nodes, p.policy, p.makespan, p.vs_priority
        );
        json.push_str(if i + 1 < points.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ],\n");
    json.push_str("  \"replan\": {\n");
    let _ = writeln!(
        json,
        "    \"n\": {rn}, \"tile_size\": {rb}, \"nprocs\": {rprocs}, \
         \"distribution\": \"2d-cyclic\","
    );
    json.push_str("    \"rounds\": [\n");
    for (i, (bytes, messages)) in traffic.iter().enumerate() {
        let _ = write!(
            json,
            "      {{\"round\": {i}, \"bytes\": {bytes}, \"messages\": {messages}}}"
        );
        json.push_str(if i + 1 < traffic.len() { ",\n" } else { "\n" });
    }
    json.push_str("    ],\n");
    let _ = writeln!(json, "    \"monotone_nonincreasing\": {monotone},");
    let _ = writeln!(json, "    \"reduction_pct\": {reduction_pct:.2}");
    json.push_str("  }\n");
    json.push_str("}\n");
    std::fs::write("BENCH_scheduler_ablation.json", &json)
        .expect("write BENCH_scheduler_ablation.json");
    println!("\nwrote BENCH_scheduler_ablation.json");

    if smoke {
        let mut failed = false;
        if !monotone {
            eprintln!("smoke FAILED: re-planner increased measured comm volume: {traffic:?}");
            failed = true;
        }
        if let Some(policy) = divergent {
            eprintln!("smoke FAILED: policy {policy} produced a different factor");
            failed = true;
        }
        if failed {
            std::process::exit(1);
        }
        println!("smoke OK: re-planner comm non-increasing, factors bit-identical");
    }
}

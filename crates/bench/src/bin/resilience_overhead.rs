//! Resilience overhead: recovery cost vs crash count, as JSON.
//!
//! Runs the simulated HiCMA-PaRSEC factorization (band + diamond,
//! trimmed) on the scaled Shaheen II model under fail-stop node crashes
//! and prices the recovery protocol of the fault-tolerant engine:
//! migration of the dead node's tasks plus re-execution of its lost,
//! still-needed outputs after a detection/failover window.
//!
//! Output is a single JSON document on stdout:
//!
//! ```json
//! {
//!   "experiment": "resilience_overhead",
//!   "baseline_seconds": ...,
//!   "runs": [ { "crashes": 1, "overhead_pct": ..., ... }, ... ]
//! }
//! ```
//!
//! Set `HICMA_SCALE` to change the downscale factor.

use hicma_core::simulate::{simulate_cholesky, simulate_cholesky_faulty, SimConfig};
use runtime::des::{DesCrash, FaultSchedule};
use runtime::MachineModel;
use tlr_bench::{scale_factor, scaled_machine, scaled_snapshot, PAPER_ACCURACY, PAPER_SHAPE};

fn main() {
    let s = scale_factor(32);
    let machine = scaled_machine(MachineModel::shaheen_ii(), s);
    let (p, snap) = scaled_snapshot(4.49e6, 2990, 128, s, PAPER_SHAPE, PAPER_ACCURACY);
    let cfg = SimConfig { machine, ..SimConfig::hicma_parsec(MachineModel::shaheen_ii(), p.nodes) };

    let base = simulate_cholesky(&snap, &cfg);
    let t = base.factorization_seconds;
    // MTBF-style detection + failover window: 2% of the fault-free run.
    let restart = 0.02 * t;

    let mut runs = String::new();
    let mut first = true;
    let mut emit = |label: &str, crash_fracs: &[f64], sched: &FaultSchedule| {
        let r = simulate_cholesky_faulty(&snap, &cfg, sched)
            .expect("bench schedules target live in-range nodes");
        let overhead = 100.0 * (r.factorization_seconds - t) / t;
        if !first {
            runs.push_str(",\n");
        }
        first = false;
        let fracs: Vec<String> = crash_fracs.iter().map(|f| format!("{f:.2}")).collect();
        runs.push_str(&format!(
            "    {{\"label\": \"{label}\", \"crashes\": {}, \"crash_time_fracs\": [{}], \
             \"makespan_seconds\": {:.6}, \"overhead_pct\": {:.3}, \
             \"migrated_tasks\": {}, \"reexecuted_tasks\": {}}}",
            r.crashes,
            fracs.join(", "),
            r.factorization_seconds,
            overhead,
            r.migrated_tasks,
            r.reexecuted_tasks,
        ));
    };

    // Sweep 1: crash count (staggered, evenly spaced through the run).
    // At least one process must survive, so the sweep is bounded by the
    // (possibly downscaled) node count; distinct ranks 1..=ncrash die,
    // rank 0 always lives.
    let max_crashes = 3.min(p.nodes.saturating_sub(1));
    for ncrash in 0..=max_crashes {
        let fracs: Vec<f64> =
            (0..ncrash).map(|i| (i + 1) as f64 / (ncrash + 1) as f64).collect();
        let sched = FaultSchedule {
            crashes: fracs
                .iter()
                .enumerate()
                .map(|(i, &f)| DesCrash { proc: i + 1, at: f * t })
                .collect(),
            restart_delay_s: restart,
            ..FaultSchedule::none()
        };
        emit(&format!("crashes-{ncrash}"), &fracs, &sched);
    }

    // Sweep 2: when a single crash lands (early / mid / late).
    if p.nodes > 1 {
        for frac in [0.1, 0.5, 0.9] {
            let sched = FaultSchedule {
                crashes: vec![DesCrash { proc: 1, at: frac * t }],
                restart_delay_s: restart,
                ..FaultSchedule::none()
            };
            emit(&format!("single-at-{frac:.1}"), &[frac], &sched);
        }
    }

    println!("{{");
    println!("  \"experiment\": \"resilience_overhead\",");
    println!("  \"machine\": \"shaheen-ii\",");
    println!("  \"scale\": {s},");
    println!("  \"nodes\": {},", p.nodes);
    println!("  \"nt\": {},", p.nt);
    println!("  \"restart_delay_seconds\": {restart:.6},");
    println!("  \"baseline_seconds\": {t:.6},");
    println!("  \"runs\": [");
    println!("{runs}");
    println!("  ]");
    println!("}}");
}

//! Fig. 11 — time breakdown on 512 Shaheen II nodes: matrix generation,
//! TLR compression, and the Cholesky factorization, for HiCMA-PaRSEC and
//! Lorapo. The paper's point: after our optimizations the *compression*
//! becomes the most expensive phase, motivating future work on
//! generating the matrix directly in compressed form.
//!
//! A second table shows the same breakdown measured for real (wall
//! clock, shared memory, laptop scale) to confirm the phase ordering is
//! not an artifact of the simulator.

use hicma_core::lorapo::{hicma_parsec_config, lorapo_config};
use hicma_core::simulate::simulate_cholesky;
use hicma_core::{factorize, FactorConfig};
use rbf_mesh::geometry::{virus_population, VirusConfig};
use rbf_mesh::hilbert::{apply_permutation, hilbert_sort};
use rbf_mesh::GaussianRbf;
use runtime::MachineModel;
use tlr_bench::{scaled_machine, header, paper_sizes, scale_factor, scaled_snapshot, PAPER_ACCURACY, PAPER_SHAPE};
use tlr_compress::{CompressionConfig, TlrMatrix};

fn main() {
    let s = scale_factor(64);
    println!("Fig. 11 — phase breakdown on 512 Shaheen II nodes (scale 1/{s})");
    header(&[
        ("N", 8),
        ("code", 13),
        ("generate (s)", 13),
        ("compress (s)", 13),
        ("factorize (s)", 14),
        ("facto share", 12),
    ]);
    for (label, n_paper, b_paper) in paper_sizes() {
        let (p, snap) = scaled_snapshot(n_paper, b_paper, 512, s, PAPER_SHAPE, PAPER_ACCURACY);
        for (code, cfg) in [
            ("lorapo", lorapo_config(scaled_machine(MachineModel::shaheen_ii(), s), p.nodes)),
            ("hicma-parsec", hicma_parsec_config(scaled_machine(MachineModel::shaheen_ii(), s), p.nodes)),
        ] {
            let r = simulate_cholesky(&snap, &cfg);
            let total = r.generation_seconds + r.compression_seconds + r.factorization_seconds;
            println!(
                "{:>8} {:>13} {:>13.2} {:>13.2} {:>14.2} {:>11.0}%",
                label,
                code,
                r.generation_seconds,
                r.compression_seconds,
                r.factorization_seconds,
                100.0 * r.factorization_seconds / total,
            );
        }
    }

    // ------------------------------------------------------------------
    // Real-execution sanity check at laptop scale.
    // ------------------------------------------------------------------
    println!();
    println!("Real shared-memory breakdown (wall clock, laptop scale):");
    let vcfg = VirusConfig { points_per_virus: 400, ..Default::default() };
    let raw = virus_population(4, &vcfg, 17);
    let points = apply_permutation(&raw, &hilbert_sort(&raw));
    let n = points.len();
    let kernel = GaussianRbf::from_min_distance(&points);
    let accuracy = 1e-6;

    let t0 = std::time::Instant::now();
    let ccfg = CompressionConfig::with_accuracy(accuracy);
    let mut a = TlrMatrix::from_generator(n, 128, kernel.generator(&points), &ccfg);
    let gen_compress = t0.elapsed().as_secs_f64();

    let rep = factorize(&mut a, &FactorConfig::with_accuracy(accuracy)).expect("SPD");
    println!(
        "N = {n}: generation+compression {gen_compress:.3}s, factorization {:.3}s",
        rep.factorization_seconds
    );
    println!();
    println!("Expected (paper): HiCMA-PaRSEC shrinks the factorization so much that");
    println!("compression becomes the dominant phase; Lorapo stays factorization-bound.");
}

//! Fig. 6 — (left) effect of DAG trimming on elapsed time over the
//! paper's combined node/size sweep (16 nodes/1.49M up to 512
//! nodes/11.95M on Shaheen II); (right) overhead of the Algorithm-1
//! analysis: memory footprint and wall time as a fraction of the
//! factorization.

use hicma_core::lorapo::lorapo_config;
use hicma_core::simulate::simulate_cholesky;
use runtime::MachineModel;
use tlr_bench::{scaled_machine, header, paper_sizes, scale_factor, scaled_snapshot, PAPER_ACCURACY, PAPER_SHAPE};

fn main() {
    let s = scale_factor(64);
    println!("Fig. 6 (left) — DAG trimming effect, Shaheen II (scale 1/{s})");
    header(&[
        ("N", 8),
        ("nodes", 6),
        ("NT", 6),
        ("tasks trim", 11),
        ("tasks full", 11),
        ("t trim (s)", 11),
        ("t full (s)", 11),
        ("gain", 6),
    ]);

    let nodes_sweep = [16usize, 64, 128, 256, 512];
    for ((label, n_paper, b_paper), &nodes_paper) in
        paper_sizes().into_iter().zip(nodes_sweep.iter())
    {
        let (p, snap) =
            scaled_snapshot(n_paper, b_paper, nodes_paper, s, PAPER_SHAPE, PAPER_ACCURACY);
        let mut cfg = lorapo_config(scaled_machine(MachineModel::shaheen_ii(), s), p.nodes);
        cfg.trimmed = true;
        let trimmed = simulate_cholesky(&snap, &cfg);
        cfg.trimmed = false;
        let full = simulate_cholesky(&snap, &cfg);
        println!(
            "{:>8} {:>6} {:>6} {:>11} {:>11} {:>11.2} {:>11.2} {:>5.2}x",
            label,
            nodes_paper,
            p.nt,
            trimmed.dag_tasks,
            full.dag_tasks,
            trimmed.factorization_seconds,
            full.factorization_seconds,
            full.factorization_seconds / trimmed.factorization_seconds,
        );
    }

    println!();
    println!("Fig. 6 (right) — Algorithm 1 overhead (64 Shaheen II paper nodes)");
    header(&[("N", 8), ("NT", 6), ("analysis MB", 12), ("analysis (s)", 13), ("% of facto", 11)]);
    for (label, n_paper, b_paper) in paper_sizes() {
        let (p, snap) = scaled_snapshot(n_paper, b_paper, 64, s, PAPER_SHAPE, PAPER_ACCURACY);
        let cfg = lorapo_config(scaled_machine(MachineModel::shaheen_ii(), s), p.nodes);
        let r = simulate_cholesky(&snap, &{
            let mut c = cfg;
            c.trimmed = true;
            c
        });
        println!(
            "{:>8} {:>6} {:>12.2} {:>13.4} {:>10.2}%",
            label,
            p.nt,
            r.analysis_bytes as f64 / 1e6,
            r.analysis_seconds,
            100.0 * r.analysis_seconds / r.factorization_seconds.max(1e-12),
        );
    }
    println!();
    println!("Expected (paper): trimming always wins; analysis time and memory are");
    println!("negligible next to the factorization itself.");
}

//! Thread-scaling curve of the two hot shared-memory paths: the
//! rayon-parallel GEMM and the end-to-end task-graph `factorize`, at
//! 1/2/4/8 threads.
//!
//! Emits `BENCH_thread_scaling.json` in the working directory (and echoes
//! it to stdout) so the perf trajectory of the work-stealing backend is
//! tracked by data, not doc claims. The file records
//! `available_parallelism` because speedup is bounded by physical cores:
//! on a 1-core container every curve is flat and that is the *correct*
//! measurement, not a regression.
//!
//! GEMM runs under `ThreadPool::install` so the pool size is exact;
//! `factorize` takes its executor width from `FactorConfig::nthreads`.

use hicma_core::{factorize, FactorConfig};
use rbf_mesh::geometry::{virus_population, VirusConfig};
use rbf_mesh::hilbert::{apply_permutation, hilbert_sort};
use rbf_mesh::GaussianRbf;
use tlr_compress::{CompressionConfig, TlrMatrix};
use tlr_linalg::{gemm, Matrix, Trans};

const GEMM_N: usize = 512;
const GEMM_REPS: usize = 3;
const TILE: usize = 64;
const ACCURACY: f64 = 1e-6;

/// Best-of-`GEMM_REPS` wall-clock of one `GEMM_N`³ product on the
/// currently installed pool.
fn gemm_seconds() -> f64 {
    let a = Matrix::from_fn(GEMM_N, GEMM_N, |i, j| ((i * 7 + j) % 13) as f64);
    let b = Matrix::from_fn(GEMM_N, GEMM_N, |i, j| ((i * 5 + j) % 11) as f64);
    let mut c = Matrix::zeros(GEMM_N, GEMM_N);
    // warm-up: first touch + pool spin-up
    gemm(Trans::No, Trans::No, 1.0, &a, &b, 0.0, &mut c);
    let mut best = f64::INFINITY;
    for _ in 0..GEMM_REPS {
        let t0 = std::time::Instant::now();
        gemm(Trans::No, Trans::No, 1.0, &a, &b, 0.0, &mut c);
        best = best.min(t0.elapsed().as_secs_f64());
    }
    best
}

fn main() {
    let avail = std::thread::available_parallelism().map_or(1, |n| n.get());

    // Problem for the end-to-end run: the paper's Gaussian RBF operator on
    // a Hilbert-ordered virus population, small enough for a laptop.
    let vcfg = VirusConfig { points_per_virus: 400, ..Default::default() };
    let raw = virus_population(4, &vcfg, 17);
    let points = apply_permutation(&raw, &hilbert_sort(&raw));
    let n = points.len();
    let kernel = GaussianRbf::from_min_distance(&points);
    let ccfg = CompressionConfig::with_accuracy(ACCURACY);

    let mut runs = Vec::new();
    let mut gemm_at = std::collections::BTreeMap::new();
    for threads in [1usize, 2, 4, 8] {
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .expect("pool build");
        let gsec = pool.install(gemm_seconds);
        let gflops = 2.0 * (GEMM_N as f64).powi(3) / gsec / 1e9;
        gemm_at.insert(threads, gsec);

        // Fresh matrix per run: factorize consumes it. Assembly runs on
        // the global pool; only the factorization is timed.
        let mut a = TlrMatrix::from_generator(n, TILE, kernel.generator(&points), &ccfg);
        let mut fcfg = FactorConfig::with_accuracy(ACCURACY);
        fcfg.nthreads = threads;
        let t0 = std::time::Instant::now();
        let rep = factorize(&mut a, &fcfg).expect("SPD");
        let fsec = t0.elapsed().as_secs_f64();

        eprintln!(
            "threads={threads}: gemm {gsec:.4}s ({gflops:.2} Gflop/s), \
             factorize {fsec:.4}s (kernel time {:.4}s)",
            rep.factorization_seconds
        );
        runs.push(format!(
            "    {{\"threads\": {threads}, \"gemm_seconds\": {gsec:.6}, \
             \"gemm_gflops\": {gflops:.3}, \"factorize_seconds\": {fsec:.6}}}"
        ));
    }

    // The speedup gate only means something with ≥ 4 cores to scale onto.
    // On a 1-core host every curve is legitimately flat — reporting the
    // ~1.0 ratio as a "speedup" (and gating on it) was misleading, so the
    // field goes to `null` and the gate is recorded as skipped.
    let speedup4 = gemm_at[&1] / gemm_at[&4];
    let gate_active = avail > 1;
    let speedup_field = if gate_active {
        format!("{speedup4:.3}")
    } else {
        "null".to_string()
    };
    let json = format!(
        "{{\n  \"experiment\": \"thread_scaling\",\n  \
         \"available_parallelism\": {avail},\n  \
         \"speedup_gate_active\": {gate_active},\n  \
         \"gemm_n\": {GEMM_N},\n  \
         \"factorize_n\": {n},\n  \
         \"tile_size\": {TILE},\n  \
         \"accuracy\": {ACCURACY:e},\n  \
         \"gemm_speedup_4_over_1\": {speedup_field},\n  \
         \"runs\": [\n{}\n  ]\n}}\n",
        runs.join(",\n")
    );
    print!("{json}");
    std::fs::write("BENCH_thread_scaling.json", &json).expect("write BENCH_thread_scaling.json");
    if gate_active {
        eprintln!("wrote BENCH_thread_scaling.json (speedup@4 = {speedup4:.2}x on {avail} core(s))");
    } else {
        eprintln!(
            "wrote BENCH_thread_scaling.json (1 core available: speedup gate skipped, \
             flat curve is the correct measurement)"
        );
    }
}

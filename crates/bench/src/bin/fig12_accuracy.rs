//! Fig. 12 — time vs accuracy threshold on 512 Shaheen II nodes:
//! HiCMA-PaRSEC against Lorapo at thresholds 1e-5, 1e-7, 1e-9. Tighter
//! thresholds keep more singular values per tile (higher ranks), so both
//! codes slow down; ours keeps a significant margin at every accuracy.

use hicma_core::lorapo::{hicma_parsec_config, lorapo_config};
use hicma_core::simulate::simulate_cholesky;
use runtime::MachineModel;
use tlr_bench::{scaled_machine, header, scale_factor, scaled_snapshot, PAPER_SHAPE};

fn main() {
    let s = scale_factor(64);
    println!("Fig. 12 — time vs accuracy threshold, 512 Shaheen II nodes (scale 1/{s})");
    header(&[
        ("N", 8),
        ("accuracy", 9),
        ("avg rank", 9),
        ("lorapo (s)", 11),
        ("ours (s)", 10),
        ("speedup", 8),
    ]);

    let sizes = [("4.49M", 4.49e6, 2990usize), ("11.95M", 11.95e6, 4880)];
    for (label, n_paper, b_paper) in sizes {
        for acc in [1e-5, 1e-7, 1e-9] {
            let (p, snap) = scaled_snapshot(n_paper, b_paper, 512, s, PAPER_SHAPE, acc);
            let stats = snap.stats();
            let lorapo =
                simulate_cholesky(&snap, &lorapo_config(scaled_machine(MachineModel::shaheen_ii(), s), p.nodes));
            let ours = simulate_cholesky(
                &snap,
                &hicma_parsec_config(scaled_machine(MachineModel::shaheen_ii(), s), p.nodes),
            );
            println!(
                "{:>8} {:>9.0e} {:>9.1} {:>11.2} {:>10.2} {:>7.2}x",
                label,
                acc,
                stats.avg_nonzero,
                lorapo.factorization_seconds,
                ours.factorization_seconds,
                lorapo.factorization_seconds / ours.factorization_seconds,
            );
        }
        println!();
    }
    println!("Expected (paper): time grows as the threshold tightens (higher ranks);");
    println!("HiCMA-PaRSEC wins at every accuracy.");
}

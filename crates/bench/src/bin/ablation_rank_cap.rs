//! Ablation: the rank cap (HiCMA's `maxrank`).
//!
//! The cap bounds the fill-in rank estimate and the stored rank of every
//! tile. A small cap cuts flops and memory but (in real execution) costs
//! accuracy; a huge cap is safe but lets recompression chase noise. The
//! simulation half sweeps the cap's effect on time; the real-execution
//! half measures the accuracy actually delivered at each cap.

use hicma_core::simulate::{simulate_cholesky, SimConfig};
use hicma_core::{factorization_residual, factorize, FactorConfig};
use rbf_mesh::geometry::{virus_population, VirusConfig};
use rbf_mesh::hilbert::{apply_permutation, hilbert_sort};
use rbf_mesh::GaussianRbf;
use runtime::MachineModel;
use tlr_bench::{header, scale_factor, scaled_machine, scaled_snapshot, PAPER_ACCURACY, PAPER_SHAPE};
use tlr_compress::{CompressionConfig, TlrMatrix};
use tlr_linalg::Matrix;

fn main() {
    let s = scale_factor(32);
    let machine = scaled_machine(MachineModel::shaheen_ii(), s);
    println!("Ablation — rank cap / maxrank (simulated, 512 paper nodes, scale 1/{s})");
    header(&[("cap", 8), ("time (s)", 10), ("tasks", 9)]);
    let (p, snap) = scaled_snapshot(11.95e6, 4880, 512, s, PAPER_SHAPE, PAPER_ACCURACY);
    for cap in [8usize, 16, 32, 64, usize::MAX] {
        let cfg = SimConfig { rank_cap: cap, ..SimConfig::hicma_parsec(machine.clone(), p.nodes) };
        let r = simulate_cholesky(&snap, &cfg);
        let cap_label = if cap == usize::MAX { "none".to_string() } else { cap.to_string() };
        println!("{:>8} {:>10.3} {:>9}", cap_label, r.factorization_seconds, r.dag_tasks);
    }

    println!();
    println!("Real execution — accuracy actually delivered per cap:");
    header(&[("cap", 8), ("residual", 12), ("memory vs dense", 16)]);
    let vcfg = VirusConfig { points_per_virus: 350, ..Default::default() };
    let raw = virus_population(3, &vcfg, 61);
    let points = apply_permutation(&raw, &hilbert_sort(&raw));
    let n = points.len();
    let mut kernel = GaussianRbf::from_min_distance(&points);
    kernel.delta *= 4.0; // moderate coupling so ranks actually reach the cap
    kernel.nugget = 1e-4;
    let accuracy = 1e-8;
    let dense = Matrix::from_fn(n, n, |i, j| kernel.matrix_entry(&points, i, j));
    for cap in [4usize, 8, 16, 32, usize::MAX] {
        let ccfg = CompressionConfig { accuracy, max_rank: cap, keep_dense_ratio: 1.0 };
        let mut a = TlrMatrix::from_dense(&dense, 105, &ccfg);
        let mem = a.memory_f64() as f64 / (n * (n + 1) / 2) as f64;
        let fcfg = FactorConfig { max_rank: cap, ..FactorConfig::with_accuracy(accuracy) };
        let cap_label = if cap == usize::MAX { "none".to_string() } else { cap.to_string() };
        match factorize(&mut a, &fcfg) {
            Ok(_) => {
                let res = factorization_residual(&dense, &a);
                println!("{:>8} {:>12.2e} {:>15.1}%", cap_label, res, 100.0 * mem);
            }
            Err(e) => println!("{:>8} not SPD (pivot {})", cap_label, e.pivot),
        }
    }
    println!();
    println!("Expected: tiny caps force tiles to stay dense (exact but heavy in");
    println!("memory and flops); once the cap clears the true ranks, the low-rank");
    println!("form kicks in — leaner storage at exactly the threshold accuracy.");
}

//! Micro-benchmark of the TLR update hot path: `gemm_kernel` with the
//! workspace-backed implicit-Q recompression engine versus the kept
//! allocating explicit-Q baseline (`kernels::reference`).
//!
//! Emits `BENCH_gemm_recompress.json` in the working directory (and
//! echoes it to stdout). Both paths are measured in the *same run* over
//! a tile-size × rank grid so the speedup column is an apples-to-apples
//! comparison on this machine, and a counting global allocator reports
//! heap allocations per `gemm_kernel` call after warm-up (the acceptance
//! target is exactly zero in steady state).
//!
//! `--smoke` shrinks the grid to one tiny point for CI.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use tlr_compress::kernels::{gemm_kernel_ws, reference, KernelWorkspace};
use tlr_compress::{CompressionConfig, Tile};
use tlr_linalg::{gemm_serial, Matrix, Trans};

/// Forwarding allocator that counts `alloc`/`realloc` calls so the bench
/// can assert the steady-state hot path touches the heap zero times.
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// A deterministic factor whose columns are decaying pseudo-random mixes
/// of `k` smooth cosine modes (family selected by `phase`). Tiles built
/// from the same family share a column space — the realistic TLR regime
/// where a Schur-complement update does not inflate the destination rank
/// past the operand rank, so recompression truncates `2k → k`.
fn mixed_factor(rows: usize, k: usize, phase: f64, decay: f64, seed: usize) -> Matrix {
    Matrix::from_fn(rows, k, |i, j| {
        let mut acc = 0.0;
        for l in 0..k {
            let m = ((l * 31 + j * 17 + seed * 13 + 7) % 101) as f64 / 101.0 - 0.5;
            let f = ((l + 1) as f64 * std::f64::consts::PI * (i as f64 + 0.5) / rows as f64
                + phase)
                .cos();
            acc += m * decay.powi(l as i32) * f;
        }
        acc
    })
}

/// The three tiles of one update `C −= A·Bᵀ`: `A.u` and `C.u` share one
/// mode family, `B.u` and `C.v` share another (the product's row space
/// lives in `span(B.u)`).
fn update_operands(b: usize, rank: usize) -> (Tile, Tile, Tile) {
    let a = Tile::LowRank {
        u: mixed_factor(b, rank, 0.0, 0.5, 1),
        v: mixed_factor(b, rank, 1.0, 0.7, 2),
    };
    let bt = Tile::LowRank {
        u: mixed_factor(b, rank, 2.0, 0.5, 3),
        v: mixed_factor(b, rank, 1.0, 0.7, 4),
    };
    let c = Tile::LowRank {
        u: mixed_factor(b, rank, 0.0, 0.6, 5),
        v: mixed_factor(b, rank, 2.0, 0.6, 6),
    };
    (a, bt, c)
}

struct Point {
    b: usize,
    rank: usize,
    us_per_call_new: f64,
    us_per_call_ref: f64,
    speedup: f64,
    microkernel_speedup: f64,
    allocs_per_call: u64,
}

/// Pre-microkernel axpy column sweep (`C := alpha·A·B + beta·C`), kept as
/// the fixed baseline for the microkernel comparison below.
fn gemm_sweep_nn(alpha: f64, a: &Matrix, b: &Matrix, beta: f64, c: &mut Matrix) {
    let k = a.cols();
    for j in 0..c.cols() {
        let c_col = c.col_mut(j);
        if beta == 0.0 {
            c_col.fill(0.0);
        } else if beta != 1.0 {
            for v in c_col.iter_mut() {
                *v *= beta;
            }
        }
        for p in 0..k {
            let w = alpha * b[(p, j)];
            if w != 0.0 {
                for (ci, ai) in c_col.iter_mut().zip(a.col(p)) {
                    *ci += w * ai;
                }
            }
        }
    }
}

/// Microkernel-vs-reference speedup on the implicit-Q small-GEMM shape of
/// this grid point: `C (b×2r) := A (b×2r) · B (2r×2r)` — the tall-skinny
/// product the recompression engine issues per update.
fn microkernel_speedup(b: usize, rank: usize, reps: usize) -> f64 {
    let r2 = 2 * rank;
    let a = Matrix::from_fn(b, r2, |i, j| ((i * 3 + j * 7) % 11) as f64 / 11.0 - 0.4);
    let q = Matrix::from_fn(r2, r2, |i, j| ((i * 5 + j) % 13) as f64 / 13.0 - 0.5);
    let mut c = Matrix::zeros(b, r2);
    gemm_serial(Trans::No, Trans::No, 1.0, &a, &q, 0.0, &mut c);
    gemm_sweep_nn(1.0, &a, &q, 0.0, &mut c);

    let mut best_micro = f64::INFINITY;
    for _ in 0..reps {
        let t0 = std::time::Instant::now();
        gemm_serial(Trans::No, Trans::No, 1.0, &a, &q, 0.0, &mut c);
        best_micro = best_micro.min(t0.elapsed().as_secs_f64());
    }
    let mut best_ref = f64::INFINITY;
    for _ in 0..reps {
        let t0 = std::time::Instant::now();
        gemm_sweep_nn(1.0, &a, &q, 0.0, &mut c);
        best_ref = best_ref.min(t0.elapsed().as_secs_f64());
    }
    best_ref / best_micro
}

/// Time one (tile size, rank) grid point: both paths on identical
/// pre-cloned destinations, then the steady-state allocation count.
fn run_point(b: usize, rank: usize, reps: usize, config: &CompressionConfig) -> Point {
    let (a, bt, c0) = update_operands(b, rank);

    let mut ws = KernelWorkspace::new();
    // Warm-up: grow the arena to its high-water mark (and fault pages in
    // for the reference path too).
    const WARMUP: usize = 5;
    for _ in 0..WARMUP {
        let mut c = c0.clone();
        gemm_kernel_ws(&mut ws, &a, &bt, &mut c, config);
        let mut c = c0.clone();
        reference::gemm_kernel_reference(&a, &bt, &mut c, config);
    }

    // Destinations are consumed by each call; clone them all before the
    // timed region so the timing (and the allocation count) cover only
    // the kernel itself.
    let mut dests: Vec<Tile> = (0..reps).map(|_| c0.clone()).collect();
    let t0 = std::time::Instant::now();
    for c in dests.iter_mut() {
        gemm_kernel_ws(&mut ws, &a, &bt, c, config);
    }
    let t_new = t0.elapsed().as_secs_f64() / reps as f64;

    let mut dests: Vec<Tile> = (0..reps).map(|_| c0.clone()).collect();
    let t0 = std::time::Instant::now();
    for c in dests.iter_mut() {
        reference::gemm_kernel_reference(&a, &bt, c, config);
    }
    let t_ref = t0.elapsed().as_secs_f64() / reps as f64;

    // Steady-state allocation count: one call on a pre-cloned
    // destination with the warmed arena.
    let mut c = c0.clone();
    let before = ALLOCS.load(Ordering::Relaxed);
    gemm_kernel_ws(&mut ws, &a, &bt, &mut c, config);
    let allocs_per_call = ALLOCS.load(Ordering::Relaxed) - before;

    Point {
        b,
        rank,
        us_per_call_new: t_new * 1e6,
        us_per_call_ref: t_ref * 1e6,
        speedup: t_ref / t_new,
        microkernel_speedup: microkernel_speedup(b, rank, reps.max(50)),
        allocs_per_call,
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let config = CompressionConfig::with_accuracy(1e-8);

    let grid: Vec<(usize, usize)> = if smoke {
        vec![(32, 4)]
    } else {
        let mut g = Vec::new();
        for b in [64usize, 128, 256] {
            for rank in [8usize, 16, 32] {
                g.push((b, rank));
            }
        }
        g
    };

    let mut points = Vec::new();
    for &(b, rank) in &grid {
        let reps = if smoke { 20 } else { (4_000_000 / (b * b)).clamp(20, 400) };
        let p = run_point(b, rank, reps, &config);
        eprintln!(
            "b={:<4} rank={:<3} new {:>9.1} us  ref {:>9.1} us  speedup {:.2}x  \
             microkernel {:.2}x  allocs/call {}",
            p.b,
            p.rank,
            p.us_per_call_new,
            p.us_per_call_ref,
            p.speedup,
            p.microkernel_speedup,
            p.allocs_per_call
        );
        points.push(p);
    }

    let b128_min_speedup = points
        .iter()
        .filter(|p| p.b == 128)
        .map(|p| p.speedup)
        .fold(f64::INFINITY, f64::min);
    let max_allocs = points.iter().map(|p| p.allocs_per_call).max().unwrap_or(0);

    let rows: Vec<String> = points
        .iter()
        .map(|p| {
            format!(
                "    {{\"b\": {}, \"rank\": {}, \"us_per_call_new\": {:.3}, \
                 \"us_per_call_ref\": {:.3}, \"speedup\": {:.3}, \
                 \"microkernel_speedup\": {:.3}, \"allocs_per_call\": {}}}",
                p.b,
                p.rank,
                p.us_per_call_new,
                p.us_per_call_ref,
                p.speedup,
                p.microkernel_speedup,
                p.allocs_per_call
            )
        })
        .collect();
    let b128 = if b128_min_speedup.is_finite() {
        format!("{b128_min_speedup:.3}")
    } else {
        "null".to_string()
    };
    let kernel_path = match tlr_linalg::active_path() {
        tlr_linalg::KernelPath::Simd => "simd",
        tlr_linalg::KernelPath::Scalar => "scalar",
    };
    let json = format!(
        "{{\n  \"experiment\": \"gemm_recompress\",\n  \
         \"mode\": \"{}\",\n  \
         \"accuracy\": 1e-8,\n  \
         \"kernel_path\": \"{kernel_path}\",\n  \
         \"baseline\": \"kernels::reference (explicit-Q, allocating)\",\n  \
         \"min_speedup_b128\": {b128},\n  \
         \"max_allocs_per_call\": {max_allocs},\n  \
         \"points\": [\n{}\n  ]\n}}\n",
        if smoke { "smoke" } else { "full" },
        rows.join(",\n")
    );
    print!("{json}");
    std::fs::write("BENCH_gemm_recompress.json", &json)
        .expect("write BENCH_gemm_recompress.json");
    eprintln!(
        "wrote BENCH_gemm_recompress.json (min speedup @ b=128: {b128}, \
         max allocs/call: {max_allocs})"
    );
    if smoke && max_allocs > 0 {
        eprintln!("smoke FAILED: steady-state gemm_kernel allocated (expected 0)");
        std::process::exit(1);
    }
}

//! Micro-tool: sustained GEMM rates of the `tlr-linalg` kernels on this
//! machine (used to calibrate the machine models and to validate the
//! k-blocked serial kernel against the naive column sweep).

use tlr_linalg::{gemm_serial, Matrix, Trans};
fn main() {
    for n in [128usize, 256, 512] {
        let a = Matrix::from_fn(n, n, |i, j| ((i * 7 + j) % 13) as f64);
        let b = Matrix::from_fn(n, n, |i, j| ((i * 5 + j) % 11) as f64);
        let mut c = Matrix::zeros(n, n);
        let t0 = std::time::Instant::now();
        let reps = (512 / n).max(1).pow(3);
        for _ in 0..reps {
            gemm_serial(Trans::No, Trans::Yes, 1.0, &a, &b, 1.0, &mut c);
        }
        let dt = t0.elapsed().as_secs_f64() / reps as f64;
        let gf = 2.0 * (n as f64).powi(3) / dt / 1e9;
        println!("gemm NT n={n}: {dt:.4}s  {gf:.2} Gflop/s");
        let t0 = std::time::Instant::now();
        for _ in 0..reps {
            gemm_serial(Trans::No, Trans::No, 1.0, &a, &b, 1.0, &mut c);
        }
        let dt = t0.elapsed().as_secs_f64() / reps as f64;
        let gf = 2.0 * (n as f64).powi(3) / dt / 1e9;
        println!("gemm NN n={n}: {dt:.4}s  {gf:.2} Gflop/s");
    }
}

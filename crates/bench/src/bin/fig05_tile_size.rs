//! Fig. 5 — impact of the tile size: time-to-solution of TLR Cholesky and
//! of the critical path (left axis), and the number of tasks (right
//! axis), on 16 Shaheen II nodes (4.49M) and 64 Fugaku nodes (2.99M).
//! The time curve is bell-shaped: large tiles inflate the dense critical
//! path, small tiles explode the task count and runtime overheads.

use hicma_core::simulate::{simulate_cholesky, SimConfig};
use runtime::MachineModel;
use tlr_bench::{scaled_machine, header, scale_factor, PAPER_ACCURACY, PAPER_SHAPE};
use tlr_compress::SyntheticRankModel;

fn main() {
    let s = scale_factor(32);
    println!("Fig. 5 — tile-size bell curve (scale 1/{s})");

    for (machine, n_paper, nodes_paper) in [
        (scaled_machine(MachineModel::shaheen_ii(), s), 4.49e6, 16usize),
        (scaled_machine(MachineModel::fugaku(), s), 2.99e6, 64),
    ] {
        let n = n_paper / s as f64;
        let nodes = (nodes_paper / s).max(1);
        println!();
        println!(
            "--- {} ({} paper nodes, {:.2}M paper matrix, {} sim nodes) ---",
            machine.name,
            nodes_paper,
            n_paper / 1e6,
            nodes
        );
        header(&[
            ("tile", 7),
            ("NT", 6),
            ("tasks", 9),
            ("time (s)", 10),
            ("CP (s)", 10),
            ("eff", 6),
        ]);
        // Sweep around the √N-rule optimum (b* ≈ 1.41·√N at sim scale).
        let b_star = (1.41 * n.sqrt()).round() as usize;
        for mult in [0.25, 0.5, 0.75, 1.0, 1.5, 2.0, 3.0] {
            let b = ((b_star as f64 * mult) as usize).max(64);
            let nt = (n / b as f64).round().max(4.0) as usize;
            let snap =
                SyntheticRankModel::from_application(nt, b, PAPER_SHAPE, PAPER_ACCURACY)
                    .snapshot();
            let cfg = SimConfig::hicma_parsec(machine.clone(), nodes);
            let r = simulate_cholesky(&snap, &cfg);
            println!(
                "{:>7} {:>6} {:>9} {:>10.2} {:>10.2} {:>5.0}%",
                b,
                nt,
                r.dag_tasks,
                r.factorization_seconds,
                r.critical_path_seconds,
                100.0 * r.roofline_efficiency(),
            );
        }
    }
    println!();
    println!("Expected (paper): time follows a bell shape; the critical path");
    println!("dominates at large tiles, task count/overheads at small tiles.");
}

//! Fig. 9 — comparison with the state of the art (Lorapo) on Shaheen II:
//! time-to-solution and speedup across matrix sizes up to 11.95M and
//! node counts up to 512 (paper: up to 6.8×, steady ~6× beyond 5.97M).

use hicma_core::lorapo::{hicma_parsec_config, lorapo_config};
use hicma_core::simulate::simulate_cholesky;
use runtime::MachineModel;
use tlr_bench::{scaled_machine, header, paper_sizes, scale_factor, scaled_snapshot, PAPER_ACCURACY, PAPER_SHAPE};

fn main() {
    let s = scale_factor(64);
    let machine = scaled_machine(MachineModel::shaheen_ii(), s);
    println!("Fig. 9 — HiCMA-PaRSEC vs Lorapo on {} (scale 1/{s})", machine.name);
    header(&[
        ("N", 8),
        ("nodes", 6),
        ("lorapo (s)", 11),
        ("ours (s)", 10),
        ("speedup", 8),
        ("ours CP (s)", 12),
    ]);

    for (label, n_paper, b_paper) in paper_sizes() {
        for nodes_paper in [128usize, 256, 512] {
            let (p, snap) =
                scaled_snapshot(n_paper, b_paper, nodes_paper, s, PAPER_SHAPE, PAPER_ACCURACY);
            let lorapo = simulate_cholesky(&snap, &lorapo_config(machine.clone(), p.nodes));
            let ours = simulate_cholesky(&snap, &hicma_parsec_config(machine.clone(), p.nodes));
            println!(
                "{:>8} {:>6} {:>11.2} {:>10.2} {:>7.2}x {:>12.2}",
                label,
                nodes_paper,
                lorapo.factorization_seconds,
                ours.factorization_seconds,
                lorapo.factorization_seconds / ours.factorization_seconds,
                ours.critical_path_seconds,
            );
        }
        println!();
    }
    println!("Expected (paper): consistent speedup over Lorapo at every size/node");
    println!("count, growing with the matrix size and saturating at large scale.");
}

//! Ablation: band-distribution width.
//!
//! §VII-A binds the sub-diagonal to the diagonal's process (width 2).
//! Wider bands localize more of the near-diagonal traffic but
//! concentrate the expensive band tiles on fewer processes; width 1
//! degenerates to Lorapo's hybrid. This sweep quantifies the trade-off
//! the paper's width-2 choice sits on.

use hicma_core::simulate::{simulate_cholesky, DistributionPlan, SimConfig};
use runtime::{MachineModel, SchedPolicy};
use tlr_bench::{header, scale_factor, scaled_machine, scaled_snapshot, PAPER_ACCURACY, PAPER_SHAPE};

fn main() {
    let s = scale_factor(32);
    let machine = scaled_machine(MachineModel::shaheen_ii(), s);
    println!("Ablation — band width (Shaheen II, 512 paper nodes, scale 1/{s})");
    header(&[("N", 8), ("band width", 11), ("time (s)", 10), ("imbalance", 10)]);

    for (label, n_paper, b_paper) in [("5.97M", 5.97e6, 3450usize), ("11.95M", 11.95e6, 4880)] {
        let (p, snap) = scaled_snapshot(n_paper, b_paper, 512, s, PAPER_SHAPE, PAPER_ACCURACY);
        for width in [1usize, 2, 3, 4, 6] {
            let cfg = SimConfig {
                machine: machine.clone(),
                nodes: p.nodes,
                plan: DistributionPlan::Band,
                trimmed: true,
                rank_cap: usize::MAX,
                band_width: width,
                sched: SchedPolicy::PanelPriority,
            };
            let r = simulate_cholesky(&snap, &cfg);
            println!(
                "{:>8} {:>11} {:>10.3} {:>10.2}",
                label, width, r.factorization_seconds, r.load_imbalance
            );
        }
        println!();
    }
    println!("Expected: width 2 (the paper's choice) captures the POTRF→TRSM");
    println!("locality win; wider bands add little and skew the load.");
}

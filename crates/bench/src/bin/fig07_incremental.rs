//! Fig. 7 — incremental effect of the runtime optimizations on
//! Shaheen II: (top) band distribution over the trimmed Lorapo layout
//! (paper: up to 1.60×); (bottom) adding the rank-aware diamond-shaped
//! execution remapping (paper: a further 1.55×), across node counts and
//! matrix sizes.

use hicma_core::lorapo::incremental_configs;
use hicma_core::simulate::simulate_cholesky;
use runtime::MachineModel;
use tlr_bench::{scaled_machine, header, paper_sizes, scale_factor, scaled_snapshot, PAPER_ACCURACY, PAPER_SHAPE};

fn main() {
    let s = scale_factor(16);
    println!("Fig. 7 — incremental optimizations on Shaheen II (scale 1/{s})");
    header(&[
        ("N", 8),
        ("nodes", 6),
        ("lorapo+trim", 12),
        ("+band", 10),
        ("band gain", 10),
        ("+diamond", 10),
        ("diam gain", 10),
        ("imb before", 11),
        ("imb after", 10),
    ]);

    for (label, n_paper, b_paper) in paper_sizes() {
        for nodes_paper in [128usize, 512] {
            let (p, snap) =
                scaled_snapshot(n_paper, b_paper, nodes_paper, s, PAPER_SHAPE, PAPER_ACCURACY);
            let configs = incremental_configs(scaled_machine(MachineModel::shaheen_ii(), s), p.nodes);
            // configs: lorapo, +trimming, +band, +diamond — Fig. 7 compares
            // the last three (trimming is Fig. 6's subject).
            let trim = simulate_cholesky(&snap, &configs[1].1);
            let band = simulate_cholesky(&snap, &configs[2].1);
            let diamond = simulate_cholesky(&snap, &configs[3].1);
            println!(
                "{:>8} {:>6} {:>12.2} {:>10.2} {:>9.2}x {:>10.2} {:>9.2}x {:>11.2} {:>10.2}",
                label,
                nodes_paper,
                trim.factorization_seconds,
                band.factorization_seconds,
                trim.factorization_seconds / band.factorization_seconds,
                diamond.factorization_seconds,
                band.factorization_seconds / diamond.factorization_seconds,
                band.load_imbalance,
                diamond.load_imbalance,
            );
        }
    }
    println!();
    println!("Expected (paper): band distribution ≤1.60× (growing with node count),");
    println!("diamond remapping a further ≤1.55× (growing with size and nodes),");
    println!("with the diamond visibly reducing the load-imbalance factor.");
}

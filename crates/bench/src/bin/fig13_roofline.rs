//! Fig. 13 — performance-improvement trace and roofline efficiency on
//! 512 Fugaku nodes: time-to-solution after each incremental
//! optimization (Lorapo → +trimming → +band → +diamond), the compute-only
//! critical-path bound of §VIII-G, and the achieved efficiency
//! (paper: 75.4% of the optimistic bound).
//!
//! The tile size is held constant across a size sweep, as in §VIII-G.

use hicma_core::lorapo::incremental_configs;
use hicma_core::simulate::simulate_cholesky;
use runtime::MachineModel;
use tlr_bench::{scaled_machine, header, scale_factor, scaled_snapshot, PAPER_ACCURACY, PAPER_SHAPE};

fn main() {
    let s = scale_factor(32);
    println!("Fig. 13 — incremental trace + roofline efficiency, 512 Fugaku nodes (scale 1/{s})");
    println!("(tile size held constant — paper uses 4880 across the sweep)");
    header(&[
        ("N", 8),
        ("lorapo", 9),
        ("+trim", 9),
        ("+band", 9),
        ("+diamond", 9),
        ("CP bound", 9),
        ("eff", 6),
    ]);

    let b_paper = 4880; // constant, per §VIII-G
    for (label, n_paper) in
        [("2.99M", 2.99e6), ("4.49M", 4.49e6), ("5.97M", 5.97e6), ("11.95M", 11.95e6)]
    {
        let (p, snap) = scaled_snapshot(n_paper, b_paper, 512, s, PAPER_SHAPE, PAPER_ACCURACY);
        let configs = incremental_configs(scaled_machine(MachineModel::fugaku(), s), p.nodes);
        let mut times = Vec::new();
        let mut final_report = None;
        for (_, cfg) in &configs {
            let r = simulate_cholesky(&snap, cfg);
            times.push(r.factorization_seconds);
            final_report = Some(r);
        }
        let fin = final_report.unwrap();
        println!(
            "{:>8} {:>9.2} {:>9.2} {:>9.2} {:>9.2} {:>9.2} {:>5.1}%",
            label,
            times[0],
            times[1],
            times[2],
            times[3],
            fin.critical_path_seconds,
            100.0 * fin.roofline_efficiency(),
        );
    }
    println!();
    println!("Expected (paper): each optimization cuts the time; the full stack");
    println!("reaches ~75% of the compute-only critical-path bound.");
}

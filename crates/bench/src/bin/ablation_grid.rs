//! Ablation: process-grid shape vs the diamond skew.
//!
//! The diamond distribution's reason to exist (§VII-B) is that a
//! rectangular `p × q` grid with `g = gcd(p, q) > 1` pins each
//! distance-to-diagonal band to `p·q/g` processes. This sweep measures
//! rank-weighted load imbalance of the rectangular grid vs the diamond
//! skew across grid shapes, directly exposing the gcd effect the
//! time-level figures can only show indirectly.

use distribution::{DiamondDistribution, TileDistribution, TwoDBlockCyclic};
use tlr_bench::{header, PAPER_ACCURACY, PAPER_SHAPE};
use tlr_compress::kernels::flops;
use tlr_compress::SyntheticRankModel;

fn main() {
    println!("Ablation — grid shape vs diamond skew (rank-weighted static load)");
    header(&[
        ("grid", 8),
        ("gcd", 5),
        ("imb 2DBC", 10),
        ("imb diamond", 12),
        ("improvement", 12),
    ]);

    let nt = 256;
    let b = 1024;
    let model = SyntheticRankModel::from_application(nt, b, PAPER_SHAPE, PAPER_ACCURACY);
    let snap = model.snapshot();

    // Static cost of tile (i, j): the GEMM updates it receives, priced by
    // its rank (the dominant off-band work).
    let cost = |i: usize, j: usize| -> f64 {
        let r = snap.rank(i, j);
        if r == 0 {
            0.0
        } else {
            flops::gemm_tlr(b, r, r, r)
        }
    };
    let imbalance = |dist: &dyn TileDistribution, np: usize| -> f64 {
        let mut load = vec![0.0_f64; np];
        for i in 0..nt {
            for j in 0..i {
                load[dist.owner(i, j)] += cost(i, j);
            }
        }
        let max = load.iter().cloned().fold(0.0_f64, f64::max);
        let mean = load.iter().sum::<f64>() / np as f64;
        max / mean
    };

    for (p, q) in [(2usize, 8usize), (4, 4), (4, 8), (8, 8), (8, 16), (16, 16), (16, 32)] {
        let np = p * q;
        let rect = TwoDBlockCyclic { p, q };
        let diamond = DiamondDistribution { p, q };
        let ir = imbalance(&rect, np);
        let id = imbalance(&diamond, np);
        println!(
            "{:>4}x{:<3} {:>5} {:>10.2} {:>12.2} {:>11.2}x",
            p,
            q,
            gcd(p, q),
            ir,
            id,
            ir / id
        );
    }
    println!();
    println!("Expected: rectangular imbalance grows with gcd(p, q) (bands pinned to");
    println!("grid diagonals); the diamond stays near 1.0 at every shape — and the");
    println!("paper's production grid (16x32) is exactly the worst case.");
}

fn gcd(a: usize, b: usize) -> usize {
    if b == 0 {
        a
    } else {
        gcd(b, a % b)
    }
}

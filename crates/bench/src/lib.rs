//! Shared support for the figure-regeneration harness.
//!
//! Every binary in `src/bin/figNN_*.rs` regenerates one table/figure of
//! the paper's evaluation (§VIII). The paper ran on 16–2048 nodes of
//! Shaheen II / Fugaku with matrices of 1.49M–52.57M unknowns; the
//! harness maps each experiment onto this machine with the scaling rule
//! of [`hicma_core::simulate::scaled_problem`] (divide N and nodes by
//! `S`, tile size by `√S`), which preserves the work-per-node balances
//! and therefore the *shapes* of the results. Absolute numbers are not
//! comparable and are not claimed to be — see EXPERIMENTS.md.
//!
//! Set `HICMA_SCALE` to override the default downscale factor.

use hicma_core::simulate::{scaled_problem, ScaledProblem};
use runtime::MachineModel;
use tlr_compress::{RankSnapshot, SyntheticRankModel};

/// The paper's Shaheen II matrix sizes with their `b = O(√N)`-tuned tile
/// sizes (§VIII-C; 4880 at 11.95M is quoted directly, the others follow
/// the same `b ≈ 1.41·√N` rule).
pub fn paper_sizes() -> Vec<(&'static str, f64, usize)> {
    vec![
        ("1.49M", 1.49e6, 1720),
        ("2.99M", 2.99e6, 2440),
        ("4.49M", 4.49e6, 2990),
        ("5.97M", 5.97e6, 3450),
        ("11.95M", 11.95e6, 4880),
    ]
}

/// The extreme-scale sizes of Fig. 14.
pub fn paper_sizes_extreme() -> Vec<(&'static str, f64, usize)> {
    vec![
        ("11.95M", 11.95e6, 4880),
        ("23.90M", 23.90e6, 6880),
        ("35.85M", 35.85e6, 8430),
        ("52.57M", 52.57e6, 10190),
    ]
}

/// The paper's default shape parameter (§VIII-B: δ = 3.7 × 10⁻⁴,
/// i.e. half the minimum mesh spacing).
pub const PAPER_SHAPE: f64 = 3.7e-4;

/// The paper's default accuracy threshold (§VIII-A).
pub const PAPER_ACCURACY: f64 = 1e-4;

/// Downscale factor: default, overridable via `HICMA_SCALE`.
pub fn scale_factor(default: usize) -> usize {
    std::env::var("HICMA_SCALE")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Scale a machine model's *fixed time constants* by the downscale
/// factor. Kernel durations shrink with the scaled tile sizes, so the
/// per-task management cost, dependency-activation cost and network
/// latency must shrink proportionally or the overhead:work balance of
/// the original runs is distorted by `S` (see EXPERIMENTS.md §scaling).
pub fn scaled_machine(mut m: MachineModel, s: usize) -> MachineModel {
    let sf = s as f64;
    m.task_overhead_s /= sf;
    m.dep_overhead_s /= sf;
    m.latency_s /= sf;
    m
}

/// Scale one paper experiment and synthesize its rank snapshot.
pub fn scaled_snapshot(
    n_paper: f64,
    b_paper: usize,
    nodes_paper: usize,
    s: usize,
    shape: f64,
    accuracy: f64,
) -> (ScaledProblem, RankSnapshot) {
    let p = scaled_problem(n_paper, b_paper, nodes_paper, s);
    let snap = SyntheticRankModel::from_application(p.nt, p.tile_size, shape, accuracy).snapshot();
    (p, snap)
}

/// Render a header + underline for fixed-width tables.
pub fn header(cols: &[(&str, usize)]) {
    let mut line = String::new();
    for (name, w) in cols {
        line.push_str(&format!("{name:>w$} ", w = w));
    }
    println!("{line}");
    println!("{}", "-".repeat(line.len()));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_tile_sizes_follow_sqrt_rule() {
        for (_, n, b) in paper_sizes().into_iter().chain(paper_sizes_extreme()) {
            let predicted = 1.41 * n.sqrt();
            let ratio = b as f64 / predicted;
            assert!((0.8..1.25).contains(&ratio), "b={b} vs √N rule {predicted}");
        }
    }

    #[test]
    fn scale_env_override() {
        assert_eq!(scale_factor(16), 16); // env unset in tests
    }

    #[test]
    fn scaled_snapshot_dimensions() {
        let (p, snap) = scaled_snapshot(1.49e6, 1720, 16, 16, PAPER_SHAPE, PAPER_ACCURACY);
        assert_eq!(snap.nt(), p.nt);
        assert_eq!(snap.tile_size(), p.tile_size);
        assert_eq!(p.nodes, 1);
    }
}

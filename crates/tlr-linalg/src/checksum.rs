//! Huang–Abraham algorithm-based fault tolerance (ABFT) checksums.
//!
//! A dense `m × n` block `C` carries two checksum vectors:
//!
//! * `row = C·e`  — the sum across each row (length `m`),
//! * `col = Cᵀ·e` — the sum down each column (length `n`).
//!
//! The point of ABFT is that these vectors can be *maintained* through
//! the level-3 kernels for a fraction of the kernel's own cost instead
//! of being recomputed from scratch:
//!
//! * **GEMM** `C ← C − A·Bᵀ` (`A: m×k`, `B: n×k`):
//!   `row ← row − A·s(B)` and `col ← col − B·s(A)`, where `s(X)` is the
//!   vector of column sums of `X` — an `O((m+n)·k)` update against the
//!   kernel's `O(m·n·k)`.
//! * **SYRK** `C ← C − A·Aᵀ` is GEMM with `B = A`.
//! * **TRSM** `M ← M·L⁻ᵀ` (right, lower, transposed — the Cholesky
//!   panel solve): `col ← L⁻¹·col` by one `O(n²)` triangular solve
//!   ([`trsv_lower`]); the row sums have no cheap recurrence through a
//!   right-side solve and are refreshed from the output (`O(m·n)`, still
//!   far below the kernel's `O(m·n²)`).
//! * **POTRF** `A → L` replaces the block wholesale; both vectors are
//!   refreshed from the output (`O(n²)` against the kernel's `O(n³/3)`).
//!
//! Verification compares the carried vectors against sums recomputed
//! from the block, relative to the block's magnitude. The maintained
//! recurrences follow the *exact* mathematical identities, but in
//! floating point they round differently from the kernel, so a nonzero
//! tolerance is inherent — which is why the tile-integrity layer
//! (`tlr_compress::integrity`) pairs this algebraic channel with an
//! exact bitwise digest for detection and uses the ABFT vectors as the
//! cheap *maintenance* cross-check. `verify` with the default tolerance
//! catches any perturbation above the maintenance roundoff floor.

use crate::chol::trsv_lower;
use crate::matrix::Matrix;

/// Default verification tolerance: generous against maintenance
/// roundoff (the recurrences and the kernels round differently), tight
/// against real corruption, which perturbs single entries by factors.
pub const DEFAULT_TOL: f64 = 1e-8;

/// Row/column checksum vectors of one dense block (Huang–Abraham ABFT).
#[derive(Debug, Clone, PartialEq)]
pub struct Checksum {
    /// `C·e`: per-row sums, length `rows`.
    pub row: Vec<f64>,
    /// `Cᵀ·e`: per-column sums, length `cols`.
    pub col: Vec<f64>,
}

impl Checksum {
    /// Compute both vectors from scratch (`O(m·n)`).
    pub fn of(c: &Matrix) -> Self {
        let mut chk = Checksum {
            row: vec![0.0; c.rows()],
            col: vec![0.0; c.cols()],
        };
        chk.refresh(c);
        chk
    }

    /// Recompute both vectors from the block, reusing the existing
    /// buffers (allocation-free once sized).
    pub fn refresh(&mut self, c: &Matrix) {
        let (m, n) = (c.rows(), c.cols());
        self.row.resize(m, 0.0);
        self.col.resize(n, 0.0);
        self.row.fill(0.0);
        self.col.fill(0.0);
        for j in 0..n {
            let mut cs = 0.0;
            for i in 0..m {
                let x = c[(i, j)];
                self.row[i] += x;
                cs += x;
            }
            self.col[j] = cs;
        }
    }

    /// Maintain through the Schur update `C ← C − A·Bᵀ` (`A: m×k`,
    /// `B: n×k`). `O((m+n)·k)`, no scratch: the column sums of `A` and
    /// `B` are folded on the fly, one rank-1 term at a time.
    pub fn gemm_update(&mut self, a: &Matrix, b: &Matrix) {
        let (m, n, k) = (a.rows(), b.rows(), a.cols());
        assert_eq!(b.cols(), k, "gemm_update: inner dimensions must agree");
        assert_eq!(self.row.len(), m, "gemm_update: row checksum length");
        assert_eq!(self.col.len(), n, "gemm_update: col checksum length");
        for l in 0..k {
            let mut sa = 0.0;
            for i in 0..m {
                sa += a[(i, l)];
            }
            let mut sb = 0.0;
            for i in 0..n {
                sb += b[(i, l)];
            }
            // row(C') = row(C) − A·s(B);  col(C') = col(C) − B·s(A).
            for i in 0..m {
                self.row[i] -= a[(i, l)] * sb;
            }
            for i in 0..n {
                self.col[i] -= b[(i, l)] * sa;
            }
        }
    }

    /// Maintain through the symmetric update `C ← C − A·Aᵀ`.
    pub fn syrk_update(&mut self, a: &Matrix) {
        self.gemm_update(a, a);
    }

    /// Maintain through the panel solve `M ← M·L⁻ᵀ` (`L: n×n` lower
    /// triangular): `col(M·L⁻ᵀ) = L⁻¹·col(M)` costs one triangular
    /// solve; the row sums admit no cheap recurrence and are refreshed
    /// from the solved block `m_after`.
    pub fn trsm_right_lt(&mut self, l: &Matrix, m_after: &Matrix) {
        assert_eq!(
            self.col.len(),
            l.rows(),
            "trsm_right_lt: col checksum length"
        );
        trsv_lower(l, &mut self.col);
        let m = m_after.rows();
        self.row.resize(m, 0.0);
        self.row.fill(0.0);
        for j in 0..m_after.cols() {
            for i in 0..m {
                self.row[i] += m_after[(i, j)];
            }
        }
    }

    /// Refresh after a factorization kernel that rewrites the block
    /// wholesale (POTRF). Identical to [`Checksum::refresh`]; named for
    /// call-site clarity.
    pub fn potrf_refresh(&mut self, l: &Matrix) {
        self.refresh(l);
    }

    /// Largest absolute deviation between the carried vectors and sums
    /// recomputed from `c`, normalized by the block's max checksum
    /// magnitude (so the figure is relative, comparable to a tolerance).
    pub fn deviation(&self, c: &Matrix) -> f64 {
        let fresh = Checksum::of(c);
        if fresh.row.len() != self.row.len() || fresh.col.len() != self.col.len() {
            return f64::INFINITY;
        }
        let mut scale: f64 = 1.0;
        for v in self.row.iter().chain(self.col.iter()) {
            scale = scale.max(v.abs());
        }
        let mut dev: f64 = 0.0;
        for (have, want) in self.row.iter().zip(&fresh.row) {
            dev = dev.max((have - want).abs());
        }
        for (have, want) in self.col.iter().zip(&fresh.col) {
            dev = dev.max((have - want).abs());
        }
        dev / scale
    }

    /// `true` when the carried vectors agree with the block within
    /// `tol` (relative; see [`Checksum::deviation`]).
    pub fn verify(&self, c: &Matrix, tol: f64) -> bool {
        self.deviation(c) <= tol
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::blas3::{gemm, trsm, Side, Trans, Uplo};
    use crate::chol::potrf;

    fn test_matrix(m: usize, n: usize, seed: u64) -> Matrix {
        Matrix::from_fn(m, n, |i, j| {
            let x = (i * 31 + j * 17 + seed as usize * 13 + 7) % 101;
            (x as f64 / 101.0 - 0.5) * (1.0 + ((i + 2 * j) as f64 * 0.1).sin())
        })
    }

    fn spd(n: usize) -> Matrix {
        let b = test_matrix(n, n, 5);
        let mut a = Matrix::identity(n);
        a.scale(n as f64);
        gemm(Trans::No, Trans::Yes, 1.0, &b, &b, 1.0, &mut a);
        a
    }

    #[test]
    fn gemm_maintenance_matches_refresh() {
        let (m, n, k) = (24, 20, 6);
        let mut c = test_matrix(m, n, 1);
        let mut chk = Checksum::of(&c);
        for s in 0..4 {
            let a = test_matrix(m, k, 10 + s);
            let b = test_matrix(n, k, 20 + s);
            gemm(Trans::No, Trans::Yes, -1.0, &a, &b, 1.0, &mut c);
            chk.gemm_update(&a, &b);
        }
        let dev = chk.deviation(&c);
        assert!(dev < 1e-12, "maintained checksum drifted: {dev}");
        assert!(chk.verify(&c, DEFAULT_TOL));
    }

    #[test]
    fn syrk_maintenance_matches_refresh() {
        let n = 24;
        let mut c = spd(n);
        let mut chk = Checksum::of(&c);
        let a = test_matrix(n, 8, 3);
        gemm(Trans::No, Trans::Yes, -1.0, &a, &a, 1.0, &mut c);
        chk.syrk_update(&a);
        assert!(chk.verify(&c, 1e-12), "deviation {}", chk.deviation(&c));
    }

    #[test]
    fn trsm_col_recurrence_matches_refresh() {
        let n = 16;
        let m = 24;
        let mut l = spd(n);
        potrf(&mut l).unwrap();
        let mut x = test_matrix(m, n, 9);
        let mut chk = Checksum::of(&x);
        trsm(Side::Right, Uplo::Lower, Trans::Yes, 1.0, &l, &mut x);
        chk.trsm_right_lt(&l, &x);
        // The column vector came from the O(n²) recurrence, not from the
        // output; it must still match the recomputed sums.
        assert!(
            chk.verify(&x, DEFAULT_TOL),
            "deviation {}",
            chk.deviation(&x)
        );
    }

    #[test]
    fn full_tile_cholesky_walk_keeps_checksums() {
        // One panel step on a 2×2 block partition of an SPD matrix:
        // POTRF(A00) → TRSM(A10) → SYRK-as-GEMM(A11), with every block's
        // checksum maintained through its kernel. This is exactly the
        // per-tile maintenance schedule the integrity layer documents.
        let b = 16;
        let a = spd(2 * b);
        let mut a00 = Matrix::from_fn(b, b, |i, j| a[(i, j)]);
        let mut a10 = Matrix::from_fn(b, b, |i, j| a[(b + i, j)]);
        let mut a11 = Matrix::from_fn(b, b, |i, j| a[(b + i, b + j)]);
        let mut c00 = Checksum::of(&a00);
        let mut c10 = Checksum::of(&a10);
        let mut c11 = Checksum::of(&a11);

        potrf(&mut a00).unwrap();
        c00.potrf_refresh(&a00);
        assert!(c00.verify(&a00, DEFAULT_TOL));

        trsm(Side::Right, Uplo::Lower, Trans::Yes, 1.0, &a00, &mut a10);
        c10.trsm_right_lt(&a00, &a10);
        assert!(c10.verify(&a10, DEFAULT_TOL));

        gemm(Trans::No, Trans::Yes, -1.0, &a10, &a10, 1.0, &mut a11);
        c11.syrk_update(&a10);
        assert!(
            c11.verify(&a11, DEFAULT_TOL),
            "deviation {}",
            c11.deviation(&a11)
        );
    }

    #[test]
    fn perturbation_is_detected() {
        let mut c = test_matrix(20, 20, 2);
        let chk = Checksum::of(&c);
        assert!(chk.verify(&c, DEFAULT_TOL));
        // A single-entry perturbation well above the roundoff floor
        // must break both the row and the column equation.
        c[(3, 7)] += 1e-4;
        assert!(
            !chk.verify(&c, DEFAULT_TOL),
            "deviation {}",
            chk.deviation(&c)
        );
    }

    #[test]
    fn shape_mismatch_is_detected() {
        let c = test_matrix(10, 12, 4);
        let chk = Checksum::of(&c);
        let other = test_matrix(12, 10, 4);
        assert!(!chk.verify(&other, DEFAULT_TOL));
    }
}

//! Singular value decomposition via one-sided Jacobi rotations.
//!
//! One-sided Jacobi is simple, unconditionally convergent, and highly
//! accurate for the small/medium matrices that appear inside TLR
//! recompression (dimension = sum of the two tile ranks, typically a few
//! dozen to a few hundred). Cost is `O(m·n²)` per sweep with a handful of
//! sweeps; that is the same asymptotic as Golub–Kahan at these sizes.

use crate::matrix::Matrix;

/// A thin SVD `A ≈ U · diag(s) · Vᵀ` with singular values sorted
/// descending. `U` is `m × k`, `V` is `n × k`, `k = min(m, n)`.
pub struct Svd {
    /// Left singular vectors (`m × k`).
    pub u: Matrix,
    /// Singular values, descending.
    pub s: Vec<f64>,
    /// Right singular vectors (`n × k`).
    pub v: Matrix,
}

impl Svd {
    /// Number of singular values `≥ tol` (the numerical rank in the
    /// spectral sense).
    pub fn rank_at(&self, tol: f64) -> usize {
        self.s.iter().take_while(|&&sv| sv > tol).count()
    }

    /// Number of leading singular values needed so that the *Frobenius*
    /// norm of the discarded tail is `≤ tol`. This is HiCMA's truncation
    /// criterion for TLR tiles.
    pub fn rank_at_frobenius(&self, tol: f64) -> usize {
        // tail²(k) = Σ_{j≥k} s_j²; find the smallest k with tail ≤ tol.
        let tol2 = tol * tol;
        let mut tail2: f64 = self.s.iter().map(|s| s * s).sum();
        for (k, sv) in self.s.iter().enumerate() {
            if tail2 <= tol2 {
                return k;
            }
            tail2 -= sv * sv;
        }
        self.s.len()
    }

    /// Reconstruct the (possibly truncated) product `U_k diag(s_k) V_kᵀ`.
    pub fn reconstruct(&self, k: usize) -> Matrix {
        let k = k.min(self.s.len());
        let m = self.u.rows();
        let n = self.v.rows();
        let mut out = Matrix::zeros(m, n);
        for p in 0..k {
            let sv = self.s[p];
            for j in 0..n {
                let w = sv * self.v[(j, p)];
                if w != 0.0 {
                    let ucol = self.u.col(p);
                    let ocol = out.col_mut(j);
                    for i in 0..m {
                        ocol[i] += w * ucol[i];
                    }
                }
            }
        }
        out
    }
}

/// Maximum number of Jacobi sweeps before declaring convergence failure
/// (in practice 6–10 sweeps suffice at double precision).
const MAX_SWEEPS: usize = 60;

/// Compute the thin SVD of `a` by one-sided Jacobi.
///
/// Handles `m < n` by factoring the transpose and swapping `U`/`V`.
pub fn jacobi_svd(a: &Matrix) -> Svd {
    if a.rows() < a.cols() {
        let t = jacobi_svd(&a.transpose());
        return Svd { u: t.v, s: t.s, v: t.u };
    }
    let m = a.rows();
    let n = a.cols();
    if n == 0 {
        return Svd { u: Matrix::zeros(m, 0), s: vec![], v: Matrix::zeros(0, 0) };
    }
    debug_assert!(
        a.as_slice().iter().all(|v| v.is_finite()),
        "jacobi_svd requires finite input"
    );
    let mut w = a.clone();
    let mut v = Matrix::identity(n);
    let eps = f64::EPSILON;

    for _sweep in 0..MAX_SWEEPS {
        let mut rotated = false;
        for p in 0..n.saturating_sub(1) {
            for q in p + 1..n {
                let (app, aqq, apq) = {
                    let cp = w.col(p);
                    let cq = w.col(q);
                    let mut app = 0.0;
                    let mut aqq = 0.0;
                    let mut apq = 0.0;
                    for i in 0..m {
                        app += cp[i] * cp[i];
                        aqq += cq[i] * cq[i];
                        apq += cp[i] * cq[i];
                    }
                    (app, aqq, apq)
                };
                if apq.abs() <= eps * (app * aqq).sqrt() || apq == 0.0 {
                    continue;
                }
                rotated = true;
                // Classic Jacobi rotation annihilating the (p,q) Gram entry.
                let zeta = (aqq - app) / (2.0 * apq);
                let t = zeta.signum() / (zeta.abs() + (1.0 + zeta * zeta).sqrt());
                let c = 1.0 / (1.0 + t * t).sqrt();
                let s = c * t;
                {
                    let (cp, cq) = w.two_cols_mut(p, q);
                    for i in 0..m {
                        let wp = cp[i];
                        let wq = cq[i];
                        cp[i] = c * wp - s * wq;
                        cq[i] = s * wp + c * wq;
                    }
                }
                {
                    let (vp, vq) = v.two_cols_mut(p, q);
                    for i in 0..n {
                        let xp = vp[i];
                        let xq = vq[i];
                        vp[i] = c * xp - s * xq;
                        vq[i] = s * xp + c * xq;
                    }
                }
            }
        }
        if !rotated {
            break;
        }
    }

    // Extract singular values and normalize U columns.
    let mut order: Vec<usize> = (0..n).collect();
    let norms: Vec<f64> = (0..n)
        .map(|j| crate::norms::frobenius_norm_slice(w.col(j)))
        .collect();
    order.sort_by(|&i, &j| norms[j].partial_cmp(&norms[i]).unwrap());

    let mut u = Matrix::zeros(m, n);
    let mut vv = Matrix::zeros(n, n);
    let mut s = Vec::with_capacity(n);
    for (dst, &src) in order.iter().enumerate() {
        let sv = norms[src];
        s.push(sv);
        if sv > 0.0 {
            let wc = w.col(src);
            let uc = u.col_mut(dst);
            for i in 0..m {
                uc[i] = wc[i] / sv;
            }
        }
        let vc = v.col(src);
        let vvc = vv.col_mut(dst);
        vvc.copy_from_slice(vc);
    }
    Svd { u, s, v: vv }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::blas3::{gemm, Trans};
    use crate::norms::{frobenius_norm, relative_diff};

    fn rand_mat(r: usize, c: usize, seed: u64) -> Matrix {
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        Matrix::from_fn(r, c, |_, _| {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((state >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        })
    }

    #[test]
    fn reconstructs_square() {
        let a = rand_mat(10, 10, 1);
        let svd = jacobi_svd(&a);
        let recon = svd.reconstruct(10);
        assert!(relative_diff(&recon, &a) < 1e-12);
    }

    #[test]
    fn reconstructs_tall_and_wide() {
        let a = rand_mat(14, 6, 2);
        let svd = jacobi_svd(&a);
        assert_eq!(svd.u.cols(), 6);
        assert!(relative_diff(&svd.reconstruct(6), &a) < 1e-12);

        let b = rand_mat(5, 12, 3);
        let svd_b = jacobi_svd(&b);
        assert_eq!(svd_b.s.len(), 5);
        assert!(relative_diff(&svd_b.reconstruct(5), &b) < 1e-12);
    }

    #[test]
    fn singular_values_sorted_and_match_known() {
        // diag(3, 1, 2) has singular values (3, 2, 1)
        let mut a = Matrix::zeros(3, 3);
        a[(0, 0)] = 3.0;
        a[(1, 1)] = 1.0;
        a[(2, 2)] = 2.0;
        let svd = jacobi_svd(&a);
        assert!((svd.s[0] - 3.0).abs() < 1e-12);
        assert!((svd.s[1] - 2.0).abs() < 1e-12);
        assert!((svd.s[2] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn u_and_v_orthonormal() {
        let a = rand_mat(12, 7, 4);
        let svd = jacobi_svd(&a);
        let mut utu = Matrix::zeros(7, 7);
        gemm(Trans::Yes, Trans::No, 1.0, &svd.u, &svd.u, 0.0, &mut utu);
        assert!(relative_diff(&utu, &Matrix::identity(7)) < 1e-12);
        let mut vtv = Matrix::zeros(7, 7);
        gemm(Trans::Yes, Trans::No, 1.0, &svd.v, &svd.v, 0.0, &mut vtv);
        assert!(relative_diff(&vtv, &Matrix::identity(7)) < 1e-12);
    }

    #[test]
    fn truncation_error_equals_tail() {
        // Construct known singular spectrum via diag.
        let n = 8;
        let mut a = Matrix::zeros(n, n);
        for i in 0..n {
            a[(i, i)] = 2.0_f64.powi(-(i as i32));
        }
        let svd = jacobi_svd(&a);
        let k = 4;
        let recon = svd.reconstruct(k);
        let mut diff = recon.clone();
        diff.axpy(-1.0, &a);
        let err = frobenius_norm(&diff);
        let tail: f64 = svd.s[k..].iter().map(|s| s * s).sum::<f64>().sqrt();
        assert!((err - tail).abs() < 1e-12);
    }

    #[test]
    fn rank_at_frobenius_criterion() {
        let n = 6;
        let mut a = Matrix::zeros(n, n);
        for i in 0..n {
            a[(i, i)] = 10.0_f64.powi(-(i as i32)); // 1, .1, .01, ...
        }
        let svd = jacobi_svd(&a);
        // tail after keeping k=2: sqrt(1e-4+1e-6+...) ≈ 1.005e-2
        assert_eq!(svd.rank_at_frobenius(2e-2), 2);
        assert_eq!(svd.rank_at_frobenius(2.0), 0);
        assert_eq!(svd.rank_at_frobenius(0.0), n);
    }

    #[test]
    fn zero_matrix() {
        let a = Matrix::zeros(5, 3);
        let svd = jacobi_svd(&a);
        assert!(svd.s.iter().all(|&s| s == 0.0));
        assert_eq!(svd.rank_at(1e-300), 0);
    }

    #[test]
    fn empty_matrix() {
        let a = Matrix::zeros(4, 0);
        let svd = jacobi_svd(&a);
        assert!(svd.s.is_empty());
    }
}

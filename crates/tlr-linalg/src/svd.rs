//! Singular value decomposition via one-sided Jacobi rotations.
//!
//! One-sided Jacobi is simple, unconditionally convergent, and highly
//! accurate for the small/medium matrices that appear inside TLR
//! recompression (dimension = sum of the two tile ranks, typically a few
//! dozen to a few hundred). Cost is `O(m·n²)` per sweep with a handful of
//! sweeps; that is the same asymptotic as Golub–Kahan at these sizes.

use crate::matrix::Matrix;

/// A thin SVD `A ≈ U · diag(s) · Vᵀ` with singular values sorted
/// descending. `U` is `m × k`, `V` is `n × k`, `k = min(m, n)`.
pub struct Svd {
    /// Left singular vectors (`m × k`).
    pub u: Matrix,
    /// Singular values, descending.
    pub s: Vec<f64>,
    /// Right singular vectors (`n × k`).
    pub v: Matrix,
}

impl Svd {
    /// Number of singular values `≥ tol` (the numerical rank in the
    /// spectral sense).
    pub fn rank_at(&self, tol: f64) -> usize {
        self.s.iter().take_while(|&&sv| sv > tol).count()
    }

    /// Number of leading singular values needed so that the *Frobenius*
    /// norm of the discarded tail is `≤ tol`. This is HiCMA's truncation
    /// criterion for TLR tiles.
    pub fn rank_at_frobenius(&self, tol: f64) -> usize {
        // tail²(k) = Σ_{j≥k} s_j²; find the smallest k with tail ≤ tol.
        // The tail is accumulated from the smallest value upward:
        // subtracting the large head terms from the grand total instead
        // cancels catastrophically and can leave an O(eps·s₁²) residue
        // that never dips below tol², spuriously retaining full rank.
        let tol2 = tol * tol;
        let mut tail2 = 0.0;
        let mut k = self.s.len();
        while k > 0 {
            let next = tail2 + self.s[k - 1] * self.s[k - 1];
            if next > tol2 {
                break;
            }
            tail2 = next;
            k -= 1;
        }
        k
    }

    /// Reconstruct the (possibly truncated) product `U_k diag(s_k) V_kᵀ`.
    pub fn reconstruct(&self, k: usize) -> Matrix {
        let k = k.min(self.s.len());
        let m = self.u.rows();
        let n = self.v.rows();
        let mut out = Matrix::zeros(m, n);
        for p in 0..k {
            let sv = self.s[p];
            for j in 0..n {
                let w = sv * self.v[(j, p)];
                if w != 0.0 {
                    let ucol = self.u.col(p);
                    let ocol = out.col_mut(j);
                    for i in 0..m {
                        ocol[i] += w * ucol[i];
                    }
                }
            }
        }
        out
    }
}

/// Maximum number of Jacobi sweeps before declaring convergence failure
/// (in practice 6–10 sweeps suffice at double precision).
const MAX_SWEEPS: usize = 60;

/// Reusable scratch buffers for [`jacobi_svd_into`].
///
/// A workspace amortizes every allocation of the Jacobi SVD across calls:
/// the working copy of the input, the accumulated rotation matrix, and
/// the norm/ordering scratch all grow to a high-water mark and are then
/// recycled. Together with a reused [`Svd`] output this makes repeated
/// small SVDs — the inner loop of TLR recompression — allocation-free in
/// steady state.
pub struct SvdWork {
    /// Working copy of the (possibly transposed) input.
    w: Matrix,
    /// Accumulated Jacobi rotations (right singular vectors of `w`).
    v: Matrix,
    /// Column norms of the rotated `w` (the unsorted singular values).
    norms: Vec<f64>,
    /// Permutation sorting the singular values descending.
    order: Vec<usize>,
    /// Cached squared column norms maintained across rotations within a
    /// sweep (Rutishauser update), refreshed exactly at each sweep start.
    colsq: Vec<f64>,
}

impl Default for SvdWork {
    fn default() -> Self {
        Self::new()
    }
}

impl SvdWork {
    /// An empty workspace; buffers grow on first use.
    pub fn new() -> Self {
        Self {
            w: Matrix::zeros(0, 0),
            v: Matrix::zeros(0, 0),
            norms: Vec::new(),
            order: Vec::new(),
            colsq: Vec::new(),
        }
    }

    /// Total `f64`-equivalent elements retained across the workspace's
    /// buffers — the footprint an arena reports as its high-water mark.
    pub fn retained_len(&self) -> usize {
        self.w.as_slice().len()
            + self.v.as_slice().len()
            + self.norms.capacity()
            + self.order.capacity()
            + self.colsq.capacity()
    }
}

/// Compute the thin SVD of `a` by one-sided Jacobi.
///
/// Handles `m < n` by factoring the transpose and swapping `U`/`V`.
/// Convenience wrapper over [`jacobi_svd_into`] that allocates fresh
/// output and workspace; hot paths should hold both across calls.
pub fn jacobi_svd(a: &Matrix) -> Svd {
    let mut out = Svd { u: Matrix::zeros(0, 0), s: Vec::new(), v: Matrix::zeros(0, 0) };
    let mut work = SvdWork::new();
    jacobi_svd_into(a, &mut out, &mut work);
    out
}

/// One-sided Jacobi SVD writing into a caller-held [`Svd`] using
/// caller-held scratch — no allocation once the buffers have grown to
/// size.
///
/// Semantically identical to [`jacobi_svd`] (including the `m < n`
/// transpose handling, which is done by copying into the workspace
/// rather than recursing). Ordering ties are broken exactly as before:
/// the sort is by strictly-descending norm with original-index order
/// preserved among equals (the comparator never reports `Equal` for
/// distinct indices of equal norm in a way that `sort_unstable_by`
/// could permute — equal norms only occur at exact zeros, whose columns
/// are zero anyway).
pub fn jacobi_svd_into(a: &Matrix, out: &mut Svd, work: &mut SvdWork) {
    let m = a.rows();
    let n = a.cols();
    // Internal problem is tall: wm ≥ wn. For wide inputs we factor the
    // transpose and swap the roles of U and V on output.
    let transposed = m < n;
    let (wm, wn) = if transposed { (n, m) } else { (m, n) };
    if wn == 0 {
        out.u.reset(m, 0);
        out.v.reset(n, 0);
        out.s.clear();
        return;
    }
    debug_assert!(
        a.as_slice().iter().all(|v| v.is_finite()),
        "jacobi_svd requires finite input"
    );
    let w = &mut work.w;
    w.reset(wm, wn);
    if transposed {
        for c in 0..wn {
            let wc = w.col_mut(c);
            for (r, wcr) in wc.iter_mut().enumerate() {
                *wcr = a[(c, r)];
            }
        }
    } else {
        w.as_mut_slice().copy_from_slice(a.as_slice());
    }
    let v = &mut work.v;
    v.reset(wn, wn);
    for j in 0..wn {
        v[(j, j)] = 1.0;
    }
    let eps = f64::EPSILON;

    // Squared column norms are cached and kept current with the exact
    // Rutishauser identities `‖w_p'‖² = app − t·apq`, `‖w_q'‖² = aqq +
    // t·apq` instead of being recomputed per pair — that turns the
    // dominant pair scan from three length-`wm` dot products into one.
    // The cache is refreshed from the actual columns at every sweep
    // start, which bounds the floating-point drift of the update chain
    // to a single sweep.
    let colsq = &mut work.colsq;
    for _sweep in 0..MAX_SWEEPS {
        colsq.clear();
        colsq.extend((0..wn).map(|j| w.col(j).iter().map(|x| x * x).sum::<f64>()));
        let mut rotated = false;
        for p in 0..wn.saturating_sub(1) {
            for q in p + 1..wn {
                let app = colsq[p];
                let aqq = colsq[q];
                let apq = {
                    let cp = w.col(p);
                    let cq = w.col(q);
                    let mut apq = 0.0;
                    for i in 0..wm {
                        apq += cp[i] * cq[i];
                    }
                    apq
                };
                if apq.abs() <= eps * (app * aqq).sqrt() || apq == 0.0 {
                    continue;
                }
                rotated = true;
                // Classic Jacobi rotation annihilating the (p,q) Gram entry.
                let zeta = (aqq - app) / (2.0 * apq);
                let t = zeta.signum() / (zeta.abs() + (1.0 + zeta * zeta).sqrt());
                let c = 1.0 / (1.0 + t * t).sqrt();
                let s = c * t;
                {
                    let (cp, cq) = w.two_cols_mut(p, q);
                    for i in 0..wm {
                        let wp = cp[i];
                        let wq = cq[i];
                        cp[i] = c * wp - s * wq;
                        cq[i] = s * wp + c * wq;
                    }
                }
                {
                    let (vp, vq) = v.two_cols_mut(p, q);
                    for i in 0..wn {
                        let xp = vp[i];
                        let xq = vq[i];
                        vp[i] = c * xp - s * xq;
                        vq[i] = s * xp + c * xq;
                    }
                }
                colsq[p] = (app - t * apq).max(0.0);
                colsq[q] = aqq + t * apq;
            }
        }
        if !rotated {
            break;
        }
    }

    // Extract singular values and normalize the column factor. Use the
    // unstable sort: the stable one allocates a merge buffer, which
    // would defeat the steady-state zero-allocation contract.
    let norms = &mut work.norms;
    norms.clear();
    norms.extend((0..wn).map(|j| crate::norms::frobenius_norm_slice(w.col(j))));
    let order = &mut work.order;
    order.clear();
    order.extend(0..wn);
    order.sort_unstable_by(|&i, &j| {
        norms[j].partial_cmp(&norms[i]).unwrap().then(i.cmp(&j))
    });

    // Internal factorization: w ≈ Unorm · diag(s) · Vᵀ with Unorm the
    // normalized columns of w. For transposed inputs the roles swap:
    // A = (Aᵀ)ᵀ = V · diag(s) · Unormᵀ.
    let (unorm, vout) = if transposed { (&mut out.v, &mut out.u) } else { (&mut out.u, &mut out.v) };
    unorm.reset(wm, wn);
    vout.reset(wn, wn);
    out.s.clear();
    for (dst, &src) in order.iter().enumerate() {
        let sv = norms[src];
        out.s.push(sv);
        if sv > 0.0 {
            let wc = w.col(src);
            let uc = unorm.col_mut(dst);
            for i in 0..wm {
                uc[i] = wc[i] / sv;
            }
        }
        vout.col_mut(dst).copy_from_slice(v.col(src));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::blas3::{gemm, Trans};
    use crate::norms::{frobenius_norm, relative_diff};

    fn rand_mat(r: usize, c: usize, seed: u64) -> Matrix {
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        Matrix::from_fn(r, c, |_, _| {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((state >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        })
    }

    #[test]
    fn reconstructs_square() {
        let a = rand_mat(10, 10, 1);
        let svd = jacobi_svd(&a);
        let recon = svd.reconstruct(10);
        assert!(relative_diff(&recon, &a) < 1e-12);
    }

    #[test]
    fn reconstructs_tall_and_wide() {
        let a = rand_mat(14, 6, 2);
        let svd = jacobi_svd(&a);
        assert_eq!(svd.u.cols(), 6);
        assert!(relative_diff(&svd.reconstruct(6), &a) < 1e-12);

        let b = rand_mat(5, 12, 3);
        let svd_b = jacobi_svd(&b);
        assert_eq!(svd_b.s.len(), 5);
        assert!(relative_diff(&svd_b.reconstruct(5), &b) < 1e-12);
    }

    #[test]
    fn singular_values_sorted_and_match_known() {
        // diag(3, 1, 2) has singular values (3, 2, 1)
        let mut a = Matrix::zeros(3, 3);
        a[(0, 0)] = 3.0;
        a[(1, 1)] = 1.0;
        a[(2, 2)] = 2.0;
        let svd = jacobi_svd(&a);
        assert!((svd.s[0] - 3.0).abs() < 1e-12);
        assert!((svd.s[1] - 2.0).abs() < 1e-12);
        assert!((svd.s[2] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn u_and_v_orthonormal() {
        let a = rand_mat(12, 7, 4);
        let svd = jacobi_svd(&a);
        let mut utu = Matrix::zeros(7, 7);
        gemm(Trans::Yes, Trans::No, 1.0, &svd.u, &svd.u, 0.0, &mut utu);
        assert!(relative_diff(&utu, &Matrix::identity(7)) < 1e-12);
        let mut vtv = Matrix::zeros(7, 7);
        gemm(Trans::Yes, Trans::No, 1.0, &svd.v, &svd.v, 0.0, &mut vtv);
        assert!(relative_diff(&vtv, &Matrix::identity(7)) < 1e-12);
    }

    #[test]
    fn truncation_error_equals_tail() {
        // Construct known singular spectrum via diag.
        let n = 8;
        let mut a = Matrix::zeros(n, n);
        for i in 0..n {
            a[(i, i)] = 2.0_f64.powi(-(i as i32));
        }
        let svd = jacobi_svd(&a);
        let k = 4;
        let recon = svd.reconstruct(k);
        let mut diff = recon.clone();
        diff.axpy(-1.0, &a);
        let err = frobenius_norm(&diff);
        let tail: f64 = svd.s[k..].iter().map(|s| s * s).sum::<f64>().sqrt();
        assert!((err - tail).abs() < 1e-12);
    }

    #[test]
    fn rank_at_frobenius_criterion() {
        let n = 6;
        let mut a = Matrix::zeros(n, n);
        for i in 0..n {
            a[(i, i)] = 10.0_f64.powi(-(i as i32)); // 1, .1, .01, ...
        }
        let svd = jacobi_svd(&a);
        // tail after keeping k=2: sqrt(1e-4+1e-6+...) ≈ 1.005e-2
        assert_eq!(svd.rank_at_frobenius(2e-2), 2);
        assert_eq!(svd.rank_at_frobenius(2.0), 0);
        assert_eq!(svd.rank_at_frobenius(0.0), n);
    }

    #[test]
    fn zero_matrix() {
        let a = Matrix::zeros(5, 3);
        let svd = jacobi_svd(&a);
        assert!(svd.s.iter().all(|&s| s == 0.0));
        assert_eq!(svd.rank_at(1e-300), 0);
    }

    #[test]
    fn empty_matrix() {
        let a = Matrix::zeros(4, 0);
        let svd = jacobi_svd(&a);
        assert!(svd.s.is_empty());
    }

    #[test]
    fn svd_into_reuses_buffers_across_shapes() {
        // One output + one workspace across tall, wide, and square inputs
        // of varying size; every call must match the one-shot API exactly.
        let mut out = Svd { u: Matrix::zeros(0, 0), s: Vec::new(), v: Matrix::zeros(0, 0) };
        let mut work = SvdWork::new();
        for (m, n, seed) in [(12, 5, 31), (3, 11, 32), (8, 8, 33), (15, 2, 34), (0, 4, 35)] {
            let a = rand_mat(m, n, seed);
            jacobi_svd_into(&a, &mut out, &mut work);
            let fresh = jacobi_svd(&a);
            assert_eq!(out.s, fresh.s, "{m}x{n}");
            assert_eq!(out.u.as_slice(), fresh.u.as_slice(), "{m}x{n}");
            assert_eq!(out.v.as_slice(), fresh.v.as_slice(), "{m}x{n}");
            let k = m.min(n);
            assert!(relative_diff(&out.reconstruct(k), &a) < 1e-12 || m == 0 || n == 0);
        }
    }
}

//! Householder QR and rank-revealing QR with column pivoting.
//!
//! [`ColPivQr`] is the engine of TLR compression: it factors a tile
//! `A·P = Q·R` and stops as soon as the Frobenius norm of the not-yet-
//! factored trailing block drops below the accuracy threshold, yielding the
//! numerical rank at that threshold. [`Qr`] (unpivoted, thin) is used by the
//! low-rank recompression path where the inputs are tall-and-skinny.

use crate::matrix::Matrix;
use crate::norms::frobenius_norm_slice;

/// Thin Householder QR factorization `A = Q·R` of an `m × n` matrix
/// (`m ≥ n` is not required; the factor sizes follow `k = min(m, n)`).
pub struct Qr {
    /// Householder vectors stored below the diagonal; `R` on and above it.
    factors: Matrix,
    /// Scalar `tau` coefficients of the Householder reflectors.
    taus: Vec<f64>,
}

impl Qr {
    /// Compute the factorization. `a` is consumed as workspace.
    pub fn new(a: Matrix) -> Self {
        Self::new_in(a, Vec::new())
    }

    /// Like [`Qr::new`], but recycles `taus` as the coefficient buffer
    /// (cleared and refilled). Together with [`Qr::into_parts`] this lets
    /// a hot caller run repeated factorizations with zero heap traffic.
    pub fn new_in(mut a: Matrix, mut taus: Vec<f64>) -> Self {
        let m = a.rows();
        let n = a.cols();
        let k = m.min(n);
        taus.clear();
        taus.resize(k, 0.0);
        for (j, tau) in taus.iter_mut().enumerate() {
            *tau = make_householder(&mut a, j, j);
            if j + 1 < n {
                apply_householder_left(&mut a, j, j, *tau, j + 1);
            }
        }
        Self { factors: a, taus }
    }

    /// Number of rows of the original matrix.
    pub fn rows(&self) -> usize {
        self.factors.rows()
    }

    /// Number of columns of the original matrix.
    pub fn cols(&self) -> usize {
        self.factors.cols()
    }

    /// Number of Householder reflectors, `k = min(m, n)` — the inner
    /// dimension of the thin factorization.
    pub fn k(&self) -> usize {
        self.taus.len()
    }

    /// The `k × n` upper-trapezoidal factor `R`, `k = min(m, n)`.
    /// Degenerate inputs (`k == 0`) yield an empty `0 × n` factor.
    pub fn r(&self) -> Matrix {
        let mut r = Matrix::zeros(0, 0);
        self.r_into(&mut r);
        r
    }

    /// Write `R` into `out` (reshaped in place to `k × n`, allocation-free
    /// once `out` has grown to size).
    pub fn r_into(&self, out: &mut Matrix) {
        let k = self.taus.len();
        let n = self.factors.cols();
        out.reset(k, n);
        for j in 0..n {
            for i in 0..k.min(j + 1) {
                out[(i, j)] = self.factors[(i, j)];
            }
        }
    }

    /// The thin orthogonal factor `Q` (`m × k`), formed explicitly.
    ///
    /// Forming `Q` costs `O(m·k²)`; callers that only need `Q · X` for a
    /// small `X` should use [`Qr::apply_q`] instead, which skips this
    /// side computation entirely.
    pub fn q_thin(&self) -> Matrix {
        let m = self.factors.rows();
        let k = self.taus.len();
        // Start from the first k columns of I and apply reflectors in reverse.
        let mut q = Matrix::zeros(m, k);
        for j in 0..k {
            q[(j, j)] = 1.0;
        }
        for j in (0..k).rev() {
            apply_stored_reflector(&self.factors, j, self.taus[j], &mut q);
        }
        q
    }

    /// `out := Q_thin · x` by implicit application of the stored
    /// Householder reflectors — `Q` is never formed.
    ///
    /// `x` must have `k = min(m, n)` rows; `out` is reshaped in place to
    /// `m × x.cols()`. Cost is `O(m·k·p)` for `p = x.cols()` versus
    /// `O(m·k²) + O(m·k·p)` for `q_thin()` + GEMM, with no `m × k`
    /// temporary — this is the Q-free path of the TLR recompression
    /// engine. Allocation-free once `out` has grown to size.
    pub fn apply_q(&self, x: &Matrix, out: &mut Matrix) {
        let m = self.factors.rows();
        let k = self.taus.len();
        assert_eq!(x.rows(), k, "apply_q: x must have min(m, n) rows");
        let p = x.cols();
        // out = [x; 0], then Q·out = H_0 · … · H_{k−1} · [x; 0].
        out.reset(m, p);
        for j in 0..p {
            out.col_mut(j)[..k].copy_from_slice(x.col(j));
        }
        for j in (0..k).rev() {
            apply_stored_reflector(&self.factors, j, self.taus[j], out);
        }
    }

    /// Apply `Qᵀ` to `target` in place (`target` is `m × p`); on return
    /// the top `k` rows hold `Q_thinᵀ · target` (the rows below are the
    /// orthogonal-complement part). Allocation-free.
    pub fn apply_qt(&self, target: &mut Matrix) {
        assert_eq!(
            target.rows(),
            self.factors.rows(),
            "apply_qt: target must have m rows"
        );
        // Qᵀ = H_{k−1} · … · H_0 (each reflector is symmetric).
        for j in 0..self.taus.len() {
            apply_stored_reflector(&self.factors, j, self.taus[j], target);
        }
    }

    /// Decompose into the `(factors, taus)` buffers so a workspace can
    /// recycle them (inverse of [`Qr::new_in`]).
    pub fn into_parts(self) -> (Matrix, Vec<f64>) {
        (self.factors, self.taus)
    }
}

/// Build a Householder reflector for column `col` of `a`, acting on rows
/// `row..m`; returns `tau`. On exit the column holds `[beta, v_2.. v_m]`
/// with `v_1 = 1` implicit.
fn make_householder(a: &mut Matrix, row: usize, col: usize) -> f64 {
    let m = a.rows();
    let x = &a.col(col)[row..m];
    let alpha = x[0];
    let xnorm = frobenius_norm_slice(&x[1..]);
    if xnorm == 0.0 {
        return 0.0; // already upper-triangular in this column
    }
    // `hypot` avoids the underflow of alpha² + xnorm² for columns of
    // subnormal-scale entries (Gaussian kernel tails reach 1e-170 and
    // below); columns too tiny for a stable reflector are skipped — the
    // residue they leave in R is orders of magnitude below any
    // meaningful truncation threshold.
    let norm = alpha.hypot(xnorm);
    if norm < 1e-280 {
        return 0.0;
    }
    let beta = -(alpha.signum()) * norm;
    let tau = (beta - alpha) / beta;
    let scale = 1.0 / (alpha - beta);
    let col_slice = &mut a.col_mut(col)[row..m];
    for v in col_slice[1..].iter_mut() {
        *v *= scale;
    }
    col_slice[0] = beta;
    tau
}

/// Apply the reflector `I − τ·v·vᵀ` held in slice `v` (with `v[0]`
/// implicit 1 — the slot stores β) to the column slice `cj` of equal
/// length.
#[inline]
fn reflect_column(v: &[f64], tau: f64, cj: &mut [f64]) {
    let mut w = cj[0];
    for (vi, ci) in v[1..].iter().zip(cj[1..].iter()) {
        w += vi * ci;
    }
    w *= tau;
    cj[0] -= w;
    for (vi, ci) in v[1..].iter().zip(cj[1..].iter_mut()) {
        *ci -= w * vi;
    }
}

/// Apply the reflector stored in column `col` (rows `row..`) of `a` to
/// columns `from_col..` of `a` itself (the classic in-place panel
/// update). Requires `from_col > col`; the reflector column and the
/// updated columns are disjoint, so no copy of `v` is taken — the old
/// per-reflector `Vec` allocation was a measurable cost of the TLR
/// recompression hot path.
fn apply_householder_left(a: &mut Matrix, row: usize, col: usize, tau: f64, from_col: usize) {
    if tau == 0.0 {
        return;
    }
    debug_assert!(from_col > col, "reflector column must precede the updated panel");
    let m = a.rows();
    let n = a.cols();
    let (head, tail) = a.as_mut_slice().split_at_mut((col + 1) * m);
    let v = &head[col * m + row..(col + 1) * m];
    for j in from_col..n {
        let start = (j - col - 1) * m + row;
        reflect_column(v, tau, &mut tail[start..start + m - row]);
    }
}

/// Apply the reflector stored in `factors` column `col` to the rows
/// `col..` of every column of `target` (used when forming or implicitly
/// applying `Q`). Allocation-free: `factors` and `target` are distinct.
fn apply_stored_reflector(factors: &Matrix, col: usize, tau: f64, target: &mut Matrix) {
    if tau == 0.0 {
        return;
    }
    let m = factors.rows();
    let v = &factors.col(col)[col..m];
    for j in 0..target.cols() {
        let cj = &mut target.col_mut(j)[col..m];
        reflect_column(v, tau, cj);
    }
}

/// Rank-revealing QR with column pivoting, truncated at an absolute
/// Frobenius-norm threshold.
///
/// Factors `A·P ≈ Q_k · R_k` where `k` is the smallest prefix such that the
/// trailing (unfactored) block has `‖·‖_F ≤ tol`. `k == 0` means the whole
/// tile is below the threshold (a **null** tile in TLR terms).
pub struct ColPivQr {
    factors: Matrix,
    taus: Vec<f64>,
    /// `perm[j]` = original column index now in position `j`.
    perm: Vec<usize>,
    rank: usize,
}

impl ColPivQr {
    /// Factor `a` with column pivoting, stopping at absolute tolerance `tol`
    /// or at `max_rank` columns, whichever comes first.
    ///
    /// `max_rank = usize::MAX` disables the rank cap.
    pub fn with_tolerance(mut a: Matrix, tol: f64, max_rank: usize) -> Self {
        let m = a.rows();
        let n = a.cols();
        let kmax = m.min(n).min(max_rank);
        let mut perm: Vec<usize> = (0..n).collect();
        let mut taus = Vec::with_capacity(kmax);

        // Running squared column norms of the trailing block.
        let mut colnorm2: Vec<f64> = (0..n)
            .map(|j| {
                let s = frobenius_norm_slice(a.col(j));
                s * s
            })
            .collect();
        // Reference norms for the downdating-accuracy guard.
        let mut colnorm2_ref = colnorm2.clone();

        let mut rank = 0;
        while rank < kmax {
            // Trailing Frobenius norm² = Σ_{j ≥ rank} colnorm2[j]
            let trailing2: f64 = colnorm2[rank..].iter().sum();
            if trailing2.max(0.0).sqrt() <= tol {
                break;
            }
            // Pivot: bring the largest remaining column to position `rank`.
            let (jmax, _) = colnorm2[rank..]
                .iter()
                .enumerate()
                .fold((0, f64::MIN), |(bj, bv), (j, &v)| if v > bv { (j, v) } else { (bj, bv) });
            let jmax = rank + jmax;
            if jmax != rank {
                let (c1, c2) = a.two_cols_mut(rank, jmax);
                c1.swap_with_slice(c2);
                perm.swap(rank, jmax);
                colnorm2.swap(rank, jmax);
                colnorm2_ref.swap(rank, jmax);
            }
            let tau = make_householder(&mut a, rank, rank);
            if rank + 1 < n {
                apply_householder_left(&mut a, rank, rank, tau, rank + 1);
            }
            taus.push(tau);
            // Downdate trailing column norms: subtract the just-eliminated row.
            for j in rank + 1..n {
                let r = a[(rank, j)];
                let updated = colnorm2[j] - r * r;
                // Guard against catastrophic cancellation (LAPACK dqp3 style):
                // recompute when the downdated value lost too much accuracy.
                if updated <= 1e-12 * colnorm2_ref[j] {
                    let s = frobenius_norm_slice(&a.col(j)[rank + 1..m]);
                    colnorm2[j] = s * s;
                    colnorm2_ref[j] = colnorm2[j];
                } else {
                    colnorm2[j] = updated.max(0.0);
                }
            }
            rank += 1;
        }
        Self { factors: a, taus, perm, rank }
    }

    /// The numerical rank at the requested tolerance.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// The thin orthogonal factor `Q_k` (`m × rank`).
    pub fn q_thin(&self) -> Matrix {
        let m = self.factors.rows();
        let k = self.rank;
        let mut q = Matrix::zeros(m, k);
        for j in 0..k {
            q[(j, j)] = 1.0;
        }
        for j in (0..k).rev() {
            apply_stored_reflector(&self.factors, j, self.taus[j], &mut q);
        }
        q
    }

    /// `R_k · Pᵀ` — the `rank × n` factor with the pivoting folded back so
    /// that `A ≈ q_thin() · r_unpermuted()`.
    pub fn r_unpermuted(&self) -> Matrix {
        let k = self.rank;
        let n = self.factors.cols();
        let mut r = Matrix::zeros(k, n);
        for j in 0..n {
            let orig = self.perm[j];
            for i in 0..k.min(j + 1) {
                r[(i, orig)] = self.factors[(i, j)];
            }
        }
        r
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::blas3::{gemm, Trans};
    use crate::norms::{frobenius_norm, relative_diff};

    fn rand_mat(r: usize, c: usize, seed: u64) -> Matrix {
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        Matrix::from_fn(r, c, |_, _| {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((state >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        })
    }

    /// Build an m×n matrix of exact rank `k` with decaying singular values.
    fn low_rank_mat(m: usize, n: usize, k: usize, seed: u64) -> Matrix {
        let u = rand_mat(m, k, seed);
        let v = rand_mat(n, k, seed + 1);
        let mut out = Matrix::zeros(m, n);
        for p in 0..k {
            let sv = 2.0_f64.powi(-(p as i32)); // σ_p = 2^-p
            for j in 0..n {
                let w = sv * v[(j, p)];
                for i in 0..m {
                    out[(i, j)] += w * u[(i, p)];
                }
            }
        }
        out
    }

    #[test]
    fn qr_reconstructs_tall() {
        let a = rand_mat(12, 5, 100);
        let qr = Qr::new(a.clone());
        let q = qr.q_thin();
        let r = qr.r();
        let mut recon = Matrix::zeros(12, 5);
        gemm(Trans::No, Trans::No, 1.0, &q, &r, 0.0, &mut recon);
        assert!(relative_diff(&recon, &a) < 1e-13);
    }

    #[test]
    fn qr_reconstructs_wide() {
        let a = rand_mat(4, 9, 200);
        let qr = Qr::new(a.clone());
        let q = qr.q_thin();
        let r = qr.r();
        assert_eq!(q.cols(), 4);
        assert_eq!(r.rows(), 4);
        let mut recon = Matrix::zeros(4, 9);
        gemm(Trans::No, Trans::No, 1.0, &q, &r, 0.0, &mut recon);
        assert!(relative_diff(&recon, &a) < 1e-13);
    }

    #[test]
    fn q_is_orthonormal() {
        let a = rand_mat(15, 6, 300);
        let qr = Qr::new(a);
        let q = qr.q_thin();
        let mut qtq = Matrix::zeros(6, 6);
        gemm(Trans::Yes, Trans::No, 1.0, &q, &q, 0.0, &mut qtq);
        assert!(relative_diff(&qtq, &Matrix::identity(6)) < 1e-13);
    }

    #[test]
    fn colpiv_detects_exact_rank() {
        let a = low_rank_mat(20, 16, 3, 400);
        let f = ColPivQr::with_tolerance(a.clone(), 1e-10 * frobenius_norm(&a), usize::MAX);
        assert_eq!(f.rank(), 3);
        let q = f.q_thin();
        let r = f.r_unpermuted();
        let mut recon = Matrix::zeros(20, 16);
        gemm(Trans::No, Trans::No, 1.0, &q, &r, 0.0, &mut recon);
        assert!(relative_diff(&recon, &a) < 1e-9);
    }

    #[test]
    fn colpiv_truncation_error_below_tolerance() {
        // Singular values 2^-p; truncating at tol should leave error ≤ ~tol.
        let a = low_rank_mat(30, 30, 20, 500);
        for tol in [1e-2, 1e-4, 1e-6] {
            let f = ColPivQr::with_tolerance(a.clone(), tol, usize::MAX);
            let q = f.q_thin();
            let r = f.r_unpermuted();
            let mut recon = Matrix::zeros(30, 30);
            gemm(Trans::No, Trans::No, 1.0, &q, &r, 0.0, &mut recon);
            let mut diff = recon.clone();
            diff.axpy(-1.0, &a);
            let err = frobenius_norm(&diff);
            // pivoted QR's truncation error is within a modest factor of tol
            assert!(err <= 10.0 * tol, "tol={tol} err={err} rank={}", f.rank());
        }
    }

    #[test]
    fn colpiv_null_tile() {
        let mut a = Matrix::zeros(8, 8);
        a[(3, 4)] = 1e-12;
        let f = ColPivQr::with_tolerance(a, 1e-8, usize::MAX);
        assert_eq!(f.rank(), 0);
    }

    #[test]
    fn colpiv_respects_max_rank() {
        let a = rand_mat(20, 20, 600);
        let f = ColPivQr::with_tolerance(a, 0.0, 5);
        assert_eq!(f.rank(), 5);
    }

    #[test]
    fn colpiv_full_rank_identity() {
        let a = Matrix::identity(6);
        let f = ColPivQr::with_tolerance(a.clone(), 1e-14, usize::MAX);
        assert_eq!(f.rank(), 6);
        let q = f.q_thin();
        let r = f.r_unpermuted();
        let mut recon = Matrix::zeros(6, 6);
        gemm(Trans::No, Trans::No, 1.0, &q, &r, 0.0, &mut recon);
        assert!(relative_diff(&recon, &a) < 1e-13);
    }

    #[test]
    fn qr_survives_subnormal_scale_columns() {
        // Regression: Gaussian-kernel tails produce entries ~1e-170 whose
        // squares underflow; the reflector used to become 0/0 = NaN.
        let a = Matrix::from_fn(8, 4, |i, j| {
            let big = if (i + j) % 3 == 0 { 1.0e-3 } else { 0.0 };
            big + 1.0e-170 * ((i * 5 + j * 3) as f64 - 10.0)
        });
        let qr = Qr::new(a.clone());
        let q = qr.q_thin();
        let r = qr.r();
        assert!(q.as_slice().iter().all(|v| v.is_finite()));
        assert!(r.as_slice().iter().all(|v| v.is_finite()));
        let mut recon = Matrix::zeros(8, 4);
        gemm(Trans::No, Trans::No, 1.0, &q, &r, 0.0, &mut recon);
        let mut diff = recon;
        diff.axpy(-1.0, &a);
        assert!(frobenius_norm(&diff) < 1e-15);

        // Pivoted variant too.
        let f = ColPivQr::with_tolerance(a, 1e-12, usize::MAX);
        assert!(f.q_thin().as_slice().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn apply_q_matches_explicit_q_times_x() {
        for (m, n, p) in [(12, 5, 3), (4, 9, 2), (10, 10, 10), (7, 3, 6)] {
            let a = rand_mat(m, n, 800 + (m * n + p) as u64);
            let qr = Qr::new(a);
            let k = qr.k();
            let x = rand_mat(k, p, 801);
            // explicit: Q_thin · X
            let q = qr.q_thin();
            let mut expect = Matrix::zeros(m, p);
            gemm(Trans::No, Trans::No, 1.0, &q, &x, 0.0, &mut expect);
            // implicit
            let mut out = Matrix::zeros(0, 0);
            qr.apply_q(&x, &mut out);
            assert!(relative_diff(&out, &expect) < 1e-13, "m={m} n={n} p={p}");
        }
    }

    #[test]
    fn apply_qt_matches_explicit_qt_times_x() {
        let (m, n, p) = (14, 6, 4);
        let a = rand_mat(m, n, 810);
        let qr = Qr::new(a);
        let x = rand_mat(m, p, 811);
        let q = qr.q_thin();
        let mut expect = Matrix::zeros(n, p);
        gemm(Trans::Yes, Trans::No, 1.0, &q, &x, 0.0, &mut expect);
        let mut target = x.clone();
        qr.apply_qt(&mut target);
        let top = target.submatrix(0, 0, qr.k(), p);
        assert!(relative_diff(&top, &expect) < 1e-13);
    }

    #[test]
    fn apply_q_then_qt_roundtrips() {
        let a = rand_mat(15, 7, 820);
        let qr = Qr::new(a);
        let x = rand_mat(7, 3, 821);
        let mut qx = Matrix::zeros(0, 0);
        qr.apply_q(&x, &mut qx);
        qr.apply_qt(&mut qx);
        let top = qx.submatrix(0, 0, 7, 3);
        assert!(relative_diff(&top, &x) < 1e-13);
    }

    /// Regression: `r()` used to index `j.min(k − 1)`, which underflows
    /// for degenerate shapes with `min(m, n) == 0`. Empty factors must
    /// come back instead of a panic.
    #[test]
    fn qr_degenerate_shapes_return_empty_factors() {
        for (m, n) in [(0, 5), (5, 0), (0, 0)] {
            let qr = Qr::new(Matrix::zeros(m, n));
            assert_eq!(qr.k(), 0, "{m}x{n}");
            let r = qr.r();
            assert_eq!((r.rows(), r.cols()), (0, n));
            let q = qr.q_thin();
            assert_eq!((q.rows(), q.cols()), (m, 0));
            // implicit application of the empty Q is a no-op of shape m×p
            let mut out = Matrix::zeros(0, 0);
            qr.apply_q(&Matrix::zeros(0, 2), &mut out);
            assert_eq!((out.rows(), out.cols()), (m, 2));
            assert!(out.as_slice().iter().all(|&v| v == 0.0));
        }
    }

    #[test]
    fn new_in_and_into_parts_recycle_buffers() {
        let a = rand_mat(10, 4, 830);
        let qr = Qr::new_in(a.clone(), vec![7.0; 99]); // stale buffer is cleared
        let q = qr.q_thin();
        let r = qr.r();
        let mut recon = Matrix::zeros(10, 4);
        gemm(Trans::No, Trans::No, 1.0, &q, &r, 0.0, &mut recon);
        assert!(relative_diff(&recon, &a) < 1e-13);
        let (factors, taus) = qr.into_parts();
        assert_eq!((factors.rows(), factors.cols()), (10, 4));
        assert_eq!(taus.len(), 4);
    }

    #[test]
    fn colpiv_rank_monotone_in_tolerance() {
        let a = low_rank_mat(24, 24, 20, 700);
        let r_loose = ColPivQr::with_tolerance(a.clone(), 1e-2, usize::MAX).rank();
        let r_mid = ColPivQr::with_tolerance(a.clone(), 1e-4, usize::MAX).rank();
        let r_tight = ColPivQr::with_tolerance(a, 1e-6, usize::MAX).rank();
        assert!(r_loose <= r_mid && r_mid <= r_tight);
        assert!(r_tight <= 20);
    }
}

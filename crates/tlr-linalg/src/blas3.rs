//! Level-3 BLAS kernels: GEMM, SYRK, TRSM.
//!
//! Large-enough GEMM/SYRK products route through the packed
//! register-blocked [`crate::microkernel`] (AVX2+FMA with a bit-identical
//! scalar fallback); small and thin products keep the naive column sweep,
//! whose innermost loops run down contiguous columns (axpy/dot shapes) so
//! the compiler auto-vectorizes them. [`gemm`] and [`syrk`] fork onto
//! rayon's work-stealing pool (one strip of output columns per task,
//! stolen when workers idle) once the product is large enough to amortize
//! the fork/join; small products and the tile kernels used inside the task
//! runtime call [`gemm_serial`]/[`syrk_serial`], because parallelism there
//! comes from the task graph itself and an inner fork would oversubscribe
//! the executor's threads.
//!
//! The parallel paths are deterministic: each output column is computed by
//! exactly one task with a thread-count-independent summation order (the
//! microkernel's per-element order is partition-independent by
//! construction), so results are bit-identical from 1 to N pool threads.

use crate::matrix::Matrix;
use crate::microkernel::{self, KernelPath};
use rayon::prelude::*;

/// Transposition selector for [`gemm`] operands.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Trans {
    /// Use the operand as stored.
    No,
    /// Use the transpose of the operand.
    Yes,
}

/// Which side a triangular operand applies from in [`trsm`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Side {
    /// Solve `op(A) · X = alpha · B`.
    Left,
    /// Solve `X · op(A) = alpha · B`.
    Right,
}

/// Which triangle of a triangular/symmetric operand is referenced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Uplo {
    /// Lower triangle.
    Lower,
    /// Upper triangle.
    Upper,
}

/// Minimum number of output entries before [`gemm`]/[`syrk`] consider the
/// parallel path (anything smaller fits a single worker's cache anyway).
const PARALLEL_THRESHOLD: usize = 64 * 64;

/// Minimum flop count (`2·m·n·k`) before the fork/join is worth paying.
///
/// Tuned against the real work-stealing pool: dispatch plus latch
/// teardown costs a few microseconds, and this substrate sustains roughly
/// one flop per nanosecond per core, so ~2⁲⁰ flops (≈ 1 ms serial) keeps
/// the overhead under a percent. The flop gate is what keeps *thin*
/// updates serial — a rank-2 `k` on a 128×128 output passes the area test
/// but is only ~65 kflop of work, far below the fork's break-even. (The
/// sequential first-generation shim hid this: forking was free when
/// nothing actually forked.)
const PARALLEL_MIN_FLOPS: usize = 1 << 20;

/// Strip width of the column-parallel paths *and* the serial SYRK strip
/// sweep: wide enough to amortize one `A` packing per strip, narrow
/// enough that work stealing can still balance a triangular update. The
/// results are bit-identical for **any** strip width (the packed path's
/// per-element operation order is partition-independent — see
/// [`crate::microkernel`]), so this is purely a performance knob.
const PAR_STRIP_COLS: usize = 32;

#[inline]
pub(crate) fn gemm_dims(ta: Trans, tb: Trans, a: &Matrix, b: &Matrix) -> (usize, usize, usize) {
    let (m, ka) = match ta {
        Trans::No => (a.rows(), a.cols()),
        Trans::Yes => (a.cols(), a.rows()),
    };
    let (kb, n) = match tb {
        Trans::No => (b.rows(), b.cols()),
        Trans::Yes => (b.cols(), b.rows()),
    };
    assert_eq!(ka, kb, "gemm inner dimensions disagree: {ka} vs {kb}");
    (m, n, ka)
}

/// General matrix multiply: `C := alpha · op(A) · op(B) + beta · C`.
///
/// Parallelizes over columns of `C` on rayon's work-stealing pool when
/// the product is large enough (output area *and* flop count above the
/// fork break-even); small or thin products run serially. Dimensions are
/// checked with assertions (this is an internal HPC substrate, not a user
/// input path). The parallel split is by whole columns, so the result is
/// bit-identical to the column-sweep serial path at any thread count.
pub fn gemm(ta: Trans, tb: Trans, alpha: f64, a: &Matrix, b: &Matrix, beta: f64, c: &mut Matrix) {
    let (m, n, k) = gemm_dims(ta, tb, a, b);
    assert_eq!((c.rows(), c.cols()), (m, n), "gemm output shape mismatch");
    if m == 0 || n == 0 {
        return;
    }
    if m * n < PARALLEL_THRESHOLD || n < 4 || 2 * m * n * k.max(1) < PARALLEL_MIN_FLOPS {
        gemm_serial(ta, tb, alpha, a, b, beta, c);
        return;
    }
    // Decide the route on the FULL shape (not per strip) so this agrees
    // with `gemm_serial` and the strips assemble a bit-identical result.
    let packed = microkernel::packed_worthwhile(m, n, k);
    let path = microkernel::active_path();
    let rows = m;
    c.as_mut_slice()
        .par_chunks_mut(rows * PAR_STRIP_COLS)
        .enumerate()
        .for_each(|(s, chunk)| {
            let j0 = s * PAR_STRIP_COLS;
            let ncols = chunk.len() / rows;
            if packed {
                microkernel::gemm_packed_into(
                    path, ta, tb, alpha, a, 0, b, j0, beta, chunk, rows, rows, ncols, k,
                );
            } else {
                for jj in 0..ncols {
                    let c_col = &mut chunk[jj * rows..(jj + 1) * rows];
                    gemm_col(ta, tb, alpha, a, b, beta, j0 + jj, c_col, k);
                }
            }
        });
}

/// Elements of the `A` panel kept L2-resident by the blocked kernel
/// (`m × KC` doubles ≤ ~512 KiB).
const L2_DOUBLES: usize = 64 * 1024;

/// Serial GEMM with identical semantics to [`gemm`].
///
/// The hot `op(A) = A` cases run a k-blocked sweep that keeps an
/// `m × kc` panel of `A` cache-resident across all columns of `C`
/// (measured ~1.5× at `n = 512` over the naive column sweep on this
/// class of machines); transposed-`A` cases use the dot-product form,
/// which already streams well.
#[allow(clippy::too_many_arguments)]
pub fn gemm_serial(
    ta: Trans,
    tb: Trans,
    alpha: f64,
    a: &Matrix,
    b: &Matrix,
    beta: f64,
    c: &mut Matrix,
) {
    let (m, n, k) = gemm_dims(ta, tb, a, b);
    assert_eq!((c.rows(), c.cols()), (m, n), "gemm output shape mismatch");
    if m == 0 || n == 0 {
        return;
    }
    if microkernel::packed_worthwhile(m, n, k) {
        let ldc = m;
        microkernel::gemm_packed_into(
            microkernel::active_path(),
            ta,
            tb,
            alpha,
            a,
            0,
            b,
            0,
            beta,
            c.as_mut_slice(),
            ldc,
            m,
            n,
            k,
        );
        return;
    }
    if ta == Trans::No && m * k > L2_DOUBLES {
        gemm_no_blocked(tb, alpha, a, b, beta, c, m, n, k);
        return;
    }
    for j in 0..n {
        let c_col = c.col_mut(j);
        gemm_col(ta, tb, alpha, a, b, beta, j, c_col, k);
    }
}

/// Serial GEMM writing into a contiguous block of columns of `c`:
/// `C[:, j0 .. j0+n) := alpha · op(A) · op(B) + beta · C[:, j0 .. j0+n)`.
///
/// This is the write-into-caller-buffer variant the TLR recompression
/// engine uses to assemble stacked factors `[U_c | U_p]` directly inside
/// a workspace matrix — no separate product temporary, no copy into the
/// stack. Columns outside the block are untouched. `c.rows()` must equal
/// the product's row count and `c` must have at least `j0 + n` columns.
#[allow(clippy::too_many_arguments)]
pub fn gemm_serial_into_cols(
    ta: Trans,
    tb: Trans,
    alpha: f64,
    a: &Matrix,
    b: &Matrix,
    beta: f64,
    c: &mut Matrix,
    j0: usize,
) {
    let (m, n, k) = gemm_dims(ta, tb, a, b);
    assert_eq!(c.rows(), m, "gemm_serial_into_cols row mismatch");
    assert!(j0 + n <= c.cols(), "gemm_serial_into_cols column block out of range");
    if m == 0 || n == 0 {
        return;
    }
    if microkernel::packed_worthwhile(m, n, k) {
        let ldc = m;
        let cs = &mut c.as_mut_slice()[j0 * ldc..(j0 + n) * ldc];
        microkernel::gemm_packed_into(
            microkernel::active_path(),
            ta,
            tb,
            alpha,
            a,
            0,
            b,
            0,
            beta,
            cs,
            ldc,
            m,
            n,
            k,
        );
        return;
    }
    for j in 0..n {
        let c_col = c.col_mut(j0 + j);
        gemm_col(ta, tb, alpha, a, b, beta, j, c_col, k);
    }
}

/// k-blocked `C = alpha·A·op(B) + beta·C` for untransposed `A`.
#[allow(clippy::too_many_arguments)]
fn gemm_no_blocked(
    tb: Trans,
    alpha: f64,
    a: &Matrix,
    b: &Matrix,
    beta: f64,
    c: &mut Matrix,
    m: usize,
    n: usize,
    k: usize,
) {
    let kc = (L2_DOUBLES / m).clamp(8, k);
    let mut pc = 0;
    while pc < k {
        let pe = (pc + kc).min(k);
        for j in 0..n {
            let c_col = c.col_mut(j);
            if pc == 0 {
                if beta == 0.0 {
                    c_col.fill(0.0);
                } else if beta != 1.0 {
                    for v in c_col.iter_mut() {
                        *v *= beta;
                    }
                }
            }
            for p in pc..pe {
                let w = alpha
                    * match tb {
                        Trans::No => b[(p, j)],
                        Trans::Yes => b[(j, p)],
                    };
                if w != 0.0 {
                    axpy(w, a.col(p), c_col);
                }
            }
        }
        pc = pe;
    }
}

/// Compute one column `j` of the GEMM output into `c_col`.
// BLAS calling convention: the argument list mirrors dgemm's.
#[allow(clippy::too_many_arguments)]
#[inline]
fn gemm_col(
    ta: Trans,
    tb: Trans,
    alpha: f64,
    a: &Matrix,
    b: &Matrix,
    beta: f64,
    j: usize,
    c_col: &mut [f64],
    k: usize,
) {
    if beta == 0.0 {
        c_col.fill(0.0);
    } else if beta != 1.0 {
        for v in c_col.iter_mut() {
            *v *= beta;
        }
    }
    match (ta, tb) {
        (Trans::No, Trans::No) => {
            // c_col += alpha * sum_p A[:,p] * B[p,j]
            for p in 0..k {
                let w = alpha * b[(p, j)];
                if w != 0.0 {
                    axpy(w, a.col(p), c_col);
                }
            }
        }
        (Trans::No, Trans::Yes) => {
            for p in 0..k {
                let w = alpha * b[(j, p)];
                if w != 0.0 {
                    axpy(w, a.col(p), c_col);
                }
            }
        }
        (Trans::Yes, Trans::No) => {
            // c[i,j] += alpha * dot(A[:,i], B[:,j])
            let b_col = b.col(j);
            for (i, ci) in c_col.iter_mut().enumerate() {
                *ci += alpha * dot(a.col(i), &b_col[..k]);
            }
        }
        (Trans::Yes, Trans::Yes) => {
            // c[i,j] += alpha * sum_p A[p,i] * B[j,p]
            for p in 0..k {
                let w = alpha * b[(j, p)];
                if w != 0.0 {
                    let a_col_p_row = p; // A[p, i] walks row p — strided; fall back per element
                    for (i, ci) in c_col.iter_mut().enumerate() {
                        *ci += w * a[(a_col_p_row, i)];
                    }
                }
            }
        }
    }
}

#[inline(always)]
fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    debug_assert_eq!(x.len(), y.len());
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
    }
}

#[inline(always)]
fn dot(x: &[f64], y: &[f64]) -> f64 {
    debug_assert_eq!(x.len(), y.len());
    let mut acc = 0.0;
    for (xi, yi) in x.iter().zip(y) {
        acc += xi * yi;
    }
    acc
}

/// Symmetric rank-k update on the **lower** triangle:
/// `C := alpha · op(A) · op(A)ᵀ + beta · C` (only `i ≥ j` entries touched).
///
/// `trans == Trans::No` computes `A·Aᵀ` (`A` is `n × k`);
/// `trans == Trans::Yes` computes `Aᵀ·A` (`A` is `k × n`).
///
/// Parallelizes over columns of `C` like [`gemm`] (the flop gate uses the
/// triangle's `n·n·k` count); every column is one task, so the triangular
/// per-column cost imbalance is smoothed by work stealing, and results
/// stay bit-identical to [`syrk_serial`] at any thread count.
pub fn syrk(trans: Trans, alpha: f64, a: &Matrix, beta: f64, c: &mut Matrix) {
    let (n, k) = syrk_dims(trans, a, c);
    if n * n < PARALLEL_THRESHOLD || n < 4 || n * n * k.max(1) < PARALLEL_MIN_FLOPS {
        syrk_serial(trans, alpha, a, beta, c);
        return;
    }
    let packed = microkernel::packed_worthwhile(n, n, k);
    let path = microkernel::active_path();
    let rows = n;
    c.as_mut_slice()
        .par_chunks_mut(rows * PAR_STRIP_COLS)
        .enumerate()
        .for_each(|(s, chunk)| {
            syrk_strip(trans, alpha, a, beta, s * PAR_STRIP_COLS, chunk, n, k, packed, path);
        });
}

/// Serial SYRK with identical semantics (and identical rounding) to
/// [`syrk`]; the tile kernels call this directly because their
/// parallelism comes from the task graph.
pub fn syrk_serial(trans: Trans, alpha: f64, a: &Matrix, beta: f64, c: &mut Matrix) {
    let (n, k) = syrk_dims(trans, a, c);
    if n == 0 {
        return;
    }
    if !microkernel::packed_worthwhile(n, n, k) {
        for j in 0..n {
            let col = c.col_mut(j);
            syrk_col(trans, alpha, a, beta, j, col, n, k);
        }
        return;
    }
    let path = microkernel::active_path();
    let rows = n;
    let cs = c.as_mut_slice();
    let mut j0 = 0;
    while j0 < n {
        let nc = PAR_STRIP_COLS.min(n - j0);
        let chunk = &mut cs[j0 * rows..(j0 + nc) * rows];
        syrk_strip(trans, alpha, a, beta, j0, chunk, n, k, true, path);
        j0 += nc;
    }
}

/// Update one strip of SYRK output columns `[j0, j0 + ncols)` held in
/// `chunk` (full columns, `n` entries each).
///
/// When `packed`, the strip splits into a triangular head (the diagonal
/// block's `i ≥ j` elements, computed scalar with the packed path's
/// exact per-element operation order) and a rectangular body below it
/// (a packed GEMM against the strip's columns of `op(A)ᵀ`). The split
/// point is partition-independent in value, so serial and parallel
/// strip sweeps are bit-identical.
#[allow(clippy::too_many_arguments)]
fn syrk_strip(
    trans: Trans,
    alpha: f64,
    a: &Matrix,
    beta: f64,
    j0: usize,
    chunk: &mut [f64],
    n: usize,
    k: usize,
    packed: bool,
    path: KernelPath,
) {
    let ncols = chunk.len() / n;
    if !packed {
        for jj in 0..ncols {
            let col = &mut chunk[jj * n..(jj + 1) * n];
            syrk_col(trans, alpha, a, beta, j0 + jj, col, n, k);
        }
        return;
    }
    let je = j0 + ncols;
    for jj in 0..ncols {
        let j = j0 + jj;
        let col = &mut chunk[jj * n..(jj + 1) * n];
        syrk_head_col(trans, alpha, a, beta, j, &mut col[j..je], k);
    }
    if je < n {
        let (ta, tb) = match trans {
            Trans::No => (Trans::No, Trans::Yes),
            Trans::Yes => (Trans::Yes, Trans::No),
        };
        microkernel::gemm_packed_into(
            path,
            ta,
            tb,
            alpha,
            a,
            je,
            a,
            j0,
            beta,
            &mut chunk[je..],
            n,
            n - je,
            ncols,
            k,
        );
    }
}

/// Scalar evaluation of the `i ≥ j` elements of one diagonal-block SYRK
/// column (`cseg[t]` is element `(j + t, j)`), using the packed path's
/// per-element contract: one `beta` scaling, then [`f64::mul_add`] in
/// ascending `p` with `alpha · op(A)ᵀ` rounded per term.
fn syrk_head_col(
    trans: Trans,
    alpha: f64,
    a: &Matrix,
    beta: f64,
    j: usize,
    cseg: &mut [f64],
    k: usize,
) {
    for (t, cv) in cseg.iter_mut().enumerate() {
        let i = j + t;
        let mut v = if beta == 0.0 { 0.0 } else { beta * *cv };
        match trans {
            Trans::No => {
                for p in 0..k {
                    v = a[(i, p)].mul_add(alpha * a[(j, p)], v);
                }
            }
            Trans::Yes => {
                for p in 0..k {
                    v = a[(p, i)].mul_add(alpha * a[(p, j)], v);
                }
            }
        }
        *cv = v;
    }
}

#[inline]
fn syrk_dims(trans: Trans, a: &Matrix, c: &Matrix) -> (usize, usize) {
    let (n, k) = match trans {
        Trans::No => (a.rows(), a.cols()),
        Trans::Yes => (a.cols(), a.rows()),
    };
    assert_eq!((c.rows(), c.cols()), (n, n), "syrk output must be n x n");
    (n, k)
}

/// Update the `i ≥ j` part of column `j` held in `col` (a full column of
/// `C`, `n` entries).
#[inline]
#[allow(clippy::too_many_arguments)]
fn syrk_col(trans: Trans, alpha: f64, a: &Matrix, beta: f64, j: usize, col: &mut [f64], n: usize, k: usize) {
    if beta == 0.0 {
        col[j..].fill(0.0);
    } else if beta != 1.0 {
        for v in col[j..].iter_mut() {
            *v *= beta;
        }
    }
    match trans {
        Trans::No => {
            for p in 0..k {
                let w = alpha * a[(j, p)];
                if w != 0.0 {
                    let a_col = a.col(p);
                    for i in j..n {
                        col[i] += w * a_col[i];
                    }
                }
            }
        }
        Trans::Yes => {
            let aj = a.col(j).to_vec();
            for (i, ci) in col.iter_mut().enumerate().skip(j) {
                *ci += alpha * dot(a.col(i), &aj);
            }
        }
    }
}

/// Triangular solve with multiple right-hand sides (TRSM).
///
/// Solves in place on `b`:
/// * `Side::Left`: `op(A) · X = alpha · B`, with `A` `m × m` triangular;
/// * `Side::Right`: `X · op(A) = alpha · B`, with `A` `n × n` triangular.
///
/// Only the `uplo` triangle of `A` is referenced. The diagonal is
/// non-unit. Supported combinations cover everything the tile Cholesky
/// needs (`Lower` with either side/transposition); `Upper` is provided for
/// completeness via the equivalent lower-triangle formulations.
pub fn trsm(side: Side, uplo: Uplo, trans: Trans, alpha: f64, a: &Matrix, b: &mut Matrix) {
    assert_eq!(a.rows(), a.cols(), "triangular operand must be square");
    let (m, n) = (b.rows(), b.cols());
    match side {
        Side::Left => assert_eq!(a.rows(), m, "trsm Left dimension mismatch"),
        Side::Right => assert_eq!(a.rows(), n, "trsm Right dimension mismatch"),
    }
    if alpha != 1.0 {
        b.scale(alpha);
    }
    match (side, uplo, trans) {
        (Side::Left, Uplo::Lower, Trans::No) => {
            // forward substitution on each column of B
            for j in 0..n {
                let col = b.col_mut(j);
                for i in 0..m {
                    let mut v = col[i];
                    for p in 0..i {
                        v -= a[(i, p)] * col[p];
                    }
                    col[i] = v / a[(i, i)];
                }
            }
        }
        (Side::Left, Uplo::Lower, Trans::Yes) => {
            // backward substitution with Aᵀ (upper triangular)
            for j in 0..n {
                let col = b.col_mut(j);
                for i in (0..m).rev() {
                    let mut v = col[i];
                    for p in i + 1..m {
                        v -= a[(p, i)] * col[p];
                    }
                    col[i] = v / a[(i, i)];
                }
            }
        }
        (Side::Right, Uplo::Lower, Trans::Yes) => {
            // X · Aᵀ = B  with A lower  ⇒  process columns of X left→right:
            // X[:,j] = (B[:,j] − Σ_{p<j} X[:,p] · Aᵀ[p,j]) / A[j,j]
            // where Aᵀ[p,j] = A[j,p].
            for j in 0..n {
                for p in 0..j {
                    let w = a[(j, p)];
                    if w != 0.0 {
                        let (xp, xj) = b.two_cols_mut(p, j);
                        axpy(-w, xp, xj);
                    }
                }
                let d = a[(j, j)];
                for v in b.col_mut(j) {
                    *v /= d;
                }
            }
        }
        (Side::Right, Uplo::Lower, Trans::No) => {
            // X · A = B with A lower ⇒ process columns right→left:
            // X[:,j] = (B[:,j] − Σ_{p>j} X[:,p] · A[p,j]) / A[j,j]
            for j in (0..n).rev() {
                for p in j + 1..n {
                    let w = a[(p, j)];
                    if w != 0.0 {
                        let (xp, xj) = b.two_cols_mut(p, j);
                        axpy(-w, xp, xj);
                    }
                }
                let d = a[(j, j)];
                for v in b.col_mut(j) {
                    *v /= d;
                }
            }
        }
        (Side::Left, Uplo::Upper, Trans::No) => {
            for j in 0..n {
                let col = b.col_mut(j);
                for i in (0..m).rev() {
                    let mut v = col[i];
                    for p in i + 1..m {
                        v -= a[(i, p)] * col[p];
                    }
                    col[i] = v / a[(i, i)];
                }
            }
        }
        (Side::Left, Uplo::Upper, Trans::Yes) => {
            for j in 0..n {
                let col = b.col_mut(j);
                for i in 0..m {
                    let mut v = col[i];
                    for p in 0..i {
                        v -= a[(p, i)] * col[p];
                    }
                    col[i] = v / a[(i, i)];
                }
            }
        }
        (Side::Right, Uplo::Upper, _) => {
            unimplemented!("Right/Upper TRSM is unused by tile Cholesky")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::norms::relative_diff;

    fn naive_gemm(ta: Trans, tb: Trans, alpha: f64, a: &Matrix, b: &Matrix, beta: f64, c: &Matrix) -> Matrix {
        let (m, n, k) = gemm_dims(ta, tb, a, b);
        let mut out = Matrix::zeros(m, n);
        for i in 0..m {
            for j in 0..n {
                let mut acc = 0.0;
                for p in 0..k {
                    let av = match ta {
                        Trans::No => a[(i, p)],
                        Trans::Yes => a[(p, i)],
                    };
                    let bv = match tb {
                        Trans::No => b[(p, j)],
                        Trans::Yes => b[(j, p)],
                    };
                    acc += av * bv;
                }
                out[(i, j)] = alpha * acc + beta * c[(i, j)];
            }
        }
        out
    }

    fn rand_mat(r: usize, c: usize, seed: u64) -> Matrix {
        // small deterministic LCG so tests need no external RNG
        let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
        Matrix::from_fn(r, c, |_, _| {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((state >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        })
    }

    #[test]
    fn gemm_matches_naive_all_transpositions() {
        let (m, n, k) = (13, 9, 7);
        for (ta, tb) in [
            (Trans::No, Trans::No),
            (Trans::No, Trans::Yes),
            (Trans::Yes, Trans::No),
            (Trans::Yes, Trans::Yes),
        ] {
            let a = match ta {
                Trans::No => rand_mat(m, k, 1),
                Trans::Yes => rand_mat(k, m, 1),
            };
            let b = match tb {
                Trans::No => rand_mat(k, n, 2),
                Trans::Yes => rand_mat(n, k, 2),
            };
            let c0 = rand_mat(m, n, 3);
            let expect = naive_gemm(ta, tb, 1.3, &a, &b, 0.7, &c0);
            let mut c = c0.clone();
            gemm(ta, tb, 1.3, &a, &b, 0.7, &mut c);
            assert!(relative_diff(&c, &expect) < 1e-13, "ta={ta:?} tb={tb:?}");
            let mut c2 = c0.clone();
            gemm_serial(ta, tb, 1.3, &a, &b, 0.7, &mut c2);
            assert!(relative_diff(&c2, &expect) < 1e-13);
        }
    }

    #[test]
    fn gemm_parallel_path_matches() {
        // Sizes chosen to cross BOTH parallel gates: the area gate
        // (m·n = 9216 ≥ PARALLEL_THRESHOLD) and the flop gate
        // (2·m·n·k ≈ 1.77 Mflop ≥ PARALLEL_MIN_FLOPS).
        let (m, n, k) = (96, 96, 96);
        assert!(m * n >= super::PARALLEL_THRESHOLD);
        assert!(2 * m * n * k >= super::PARALLEL_MIN_FLOPS);
        let a = rand_mat(m, k, 11);
        let b = rand_mat(k, n, 12);
        let c0 = rand_mat(m, n, 13);
        let expect = naive_gemm(Trans::No, Trans::No, 1.0, &a, &b, 1.0, &c0);
        let mut c = c0.clone();
        gemm(Trans::No, Trans::No, 1.0, &a, &b, 1.0, &mut c);
        assert!(relative_diff(&c, &expect) < 1e-13);
        // The parallel path must be bit-identical to the serial one.
        let mut cs = c0.clone();
        gemm_serial(Trans::No, Trans::No, 1.0, &a, &b, 1.0, &mut cs);
        assert_eq!(c.as_slice(), cs.as_slice());
    }

    #[test]
    fn syrk_parallel_path_bit_identical_to_serial() {
        // n·n·k crosses the flop gate, so `syrk` takes the column-parallel
        // path; it must agree bitwise with `syrk_serial` at any pool size.
        let (n, k) = (128, 96);
        assert!(n * n >= super::PARALLEL_THRESHOLD);
        assert!(n * n * k >= super::PARALLEL_MIN_FLOPS);
        for trans in [Trans::No, Trans::Yes] {
            let a = match trans {
                Trans::No => rand_mat(n, k, 21),
                Trans::Yes => rand_mat(k, n, 21),
            };
            let c0 = rand_mat(n, n, 22);
            let mut c = c0.clone();
            syrk(trans, -1.0, &a, 1.0, &mut c);
            let mut cs = c0.clone();
            syrk_serial(trans, -1.0, &a, 1.0, &mut cs);
            assert_eq!(c.as_slice(), cs.as_slice(), "trans={trans:?}");
        }
    }

    #[test]
    fn gemm_blocked_path_matches_naive() {
        // large enough that m·k > L2_DOUBLES triggers the k-blocked sweep
        let (m, n, k) = (300, 40, 300);
        assert!(m * k > super::L2_DOUBLES);
        for tb in [Trans::No, Trans::Yes] {
            let a = rand_mat(m, k, 91);
            let b = match tb {
                Trans::No => rand_mat(k, n, 92),
                Trans::Yes => rand_mat(n, k, 92),
            };
            let c0 = rand_mat(m, n, 93);
            let expect = naive_gemm(Trans::No, tb, 1.7, &a, &b, 0.3, &c0);
            let mut c = c0.clone();
            gemm_serial(Trans::No, tb, 1.7, &a, &b, 0.3, &mut c);
            assert!(relative_diff(&c, &expect) < 1e-13, "tb={tb:?}");
            // beta = 0 must also overwrite in the blocked path
            let mut cz = Matrix::from_fn(m, n, |_, _| f64::NAN);
            let expect_z = naive_gemm(Trans::No, tb, 1.0, &a, &b, 0.0, &c0);
            gemm_serial(Trans::No, tb, 1.0, &a, &b, 0.0, &mut cz);
            assert!(relative_diff(&cz, &expect_z) < 1e-13);
        }
    }

    #[test]
    fn gemm_into_cols_matches_naive_block() {
        let (m, n, k, j0, total) = (9, 4, 6, 3, 10);
        for (ta, tb) in [
            (Trans::No, Trans::No),
            (Trans::No, Trans::Yes),
            (Trans::Yes, Trans::No),
            (Trans::Yes, Trans::Yes),
        ] {
            let a = match ta {
                Trans::No => rand_mat(m, k, 101),
                Trans::Yes => rand_mat(k, m, 101),
            };
            let b = match tb {
                Trans::No => rand_mat(k, n, 102),
                Trans::Yes => rand_mat(n, k, 102),
            };
            let c0 = rand_mat(m, total, 103);
            let block0 = c0.submatrix(0, j0, m, n);
            let expect = naive_gemm(ta, tb, 1.3, &a, &b, 0.7, &block0);
            let mut c = c0.clone();
            gemm_serial_into_cols(ta, tb, 1.3, &a, &b, 0.7, &mut c, j0);
            let block = c.submatrix(0, j0, m, n);
            assert!(relative_diff(&block, &expect) < 1e-13, "ta={ta:?} tb={tb:?}");
            // columns outside [j0, j0+n) untouched
            for j in (0..j0).chain(j0 + n..total) {
                assert_eq!(c.col(j), c0.col(j), "col {j}");
            }
        }
    }

    #[test]
    fn gemm_beta_zero_overwrites_nan() {
        // beta = 0 must overwrite even NaN garbage in C.
        let a = Matrix::identity(4);
        let b = rand_mat(4, 4, 5);
        let mut c = Matrix::from_fn(4, 4, |_, _| f64::NAN);
        gemm(Trans::No, Trans::No, 1.0, &a, &b, 0.0, &mut c);
        assert!(relative_diff(&c, &b) < 1e-15);
    }

    #[test]
    fn syrk_matches_gemm_lower() {
        let a = rand_mat(10, 6, 21);
        let c0 = rand_mat(10, 10, 22);
        let mut c_syrk = c0.clone();
        syrk(Trans::No, 2.0, &a, 0.5, &mut c_syrk);
        let full = naive_gemm(Trans::No, Trans::Yes, 2.0, &a, &a, 0.5, &c0);
        for j in 0..10 {
            for i in j..10 {
                assert!((c_syrk[(i, j)] - full[(i, j)]).abs() < 1e-12);
            }
        }
        // upper triangle untouched
        for j in 1..10 {
            for i in 0..j {
                assert_eq!(c_syrk[(i, j)], c0[(i, j)]);
            }
        }
    }

    #[test]
    fn syrk_trans_matches_gemm() {
        let a = rand_mat(6, 10, 23);
        let c0 = rand_mat(10, 10, 24);
        let mut c_syrk = c0.clone();
        syrk(Trans::Yes, -1.0, &a, 1.0, &mut c_syrk);
        let full = naive_gemm(Trans::Yes, Trans::No, -1.0, &a, &a, 1.0, &c0);
        for j in 0..10 {
            for i in j..10 {
                assert!((c_syrk[(i, j)] - full[(i, j)]).abs() < 1e-12);
            }
        }
    }

    fn rand_lower(n: usize, seed: u64) -> Matrix {
        let mut l = rand_mat(n, n, seed);
        for j in 0..n {
            for i in 0..j {
                l[(i, j)] = 0.0;
            }
            l[(j, j)] = 2.0 + l[(j, j)].abs(); // well-conditioned diagonal
        }
        l
    }

    #[test]
    fn trsm_left_lower_no() {
        let n = 8;
        let l = rand_lower(n, 31);
        let x_true = rand_mat(n, 5, 32);
        let mut b = Matrix::zeros(n, 5);
        gemm(Trans::No, Trans::No, 1.0, &l, &x_true, 0.0, &mut b);
        trsm(Side::Left, Uplo::Lower, Trans::No, 1.0, &l, &mut b);
        assert!(relative_diff(&b, &x_true) < 1e-12);
    }

    #[test]
    fn trsm_left_lower_trans() {
        let n = 8;
        let l = rand_lower(n, 41);
        let x_true = rand_mat(n, 5, 42);
        // B = Lᵀ X
        let mut b = Matrix::zeros(n, 5);
        gemm(Trans::Yes, Trans::No, 1.0, &l, &x_true, 0.0, &mut b);
        trsm(Side::Left, Uplo::Lower, Trans::Yes, 1.0, &l, &mut b);
        assert!(relative_diff(&b, &x_true) < 1e-12);
    }

    #[test]
    fn trsm_right_lower_trans() {
        let n = 6;
        let l = rand_lower(n, 51);
        let x_true = rand_mat(9, n, 52);
        // B = X Lᵀ
        let mut b = Matrix::zeros(9, n);
        gemm(Trans::No, Trans::Yes, 1.0, &x_true, &l, 0.0, &mut b);
        trsm(Side::Right, Uplo::Lower, Trans::Yes, 1.0, &l, &mut b);
        assert!(relative_diff(&b, &x_true) < 1e-12);
    }

    #[test]
    fn trsm_right_lower_no() {
        let n = 6;
        let l = rand_lower(n, 61);
        let x_true = rand_mat(9, n, 62);
        // B = X L
        let mut b = Matrix::zeros(9, n);
        gemm(Trans::No, Trans::No, 1.0, &x_true, &l, 0.0, &mut b);
        trsm(Side::Right, Uplo::Lower, Trans::No, 1.0, &l, &mut b);
        assert!(relative_diff(&b, &x_true) < 1e-12);
    }

    #[test]
    fn trsm_upper_variants() {
        let n = 7;
        let u = rand_lower(n, 71).transpose();
        let x_true = rand_mat(n, 4, 72);
        let mut b = Matrix::zeros(n, 4);
        gemm(Trans::No, Trans::No, 1.0, &u, &x_true, 0.0, &mut b);
        trsm(Side::Left, Uplo::Upper, Trans::No, 1.0, &u, &mut b);
        assert!(relative_diff(&b, &x_true) < 1e-12);

        let mut b2 = Matrix::zeros(n, 4);
        gemm(Trans::Yes, Trans::No, 1.0, &u, &x_true, 0.0, &mut b2);
        trsm(Side::Left, Uplo::Upper, Trans::Yes, 1.0, &u, &mut b2);
        assert!(relative_diff(&b2, &x_true) < 1e-12);
    }

    #[test]
    fn trsm_alpha_scaling() {
        let n = 5;
        let l = rand_lower(n, 81);
        let x_true = rand_mat(n, 3, 82);
        let mut b = Matrix::zeros(n, 3);
        gemm(Trans::No, Trans::No, 1.0, &l, &x_true, 0.0, &mut b);
        // Solve L X = 2 B  ⇒  X = 2 x_true
        trsm(Side::Left, Uplo::Lower, Trans::No, 2.0, &l, &mut b);
        let mut doubled = x_true.clone();
        doubled.scale(2.0);
        assert!(relative_diff(&b, &doubled) < 1e-12);
    }
}

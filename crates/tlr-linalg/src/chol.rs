//! Cholesky factorization (POTRF) and triangular vector solves.
//!
//! [`potrf`] is the diagonal-tile kernel of the tile Cholesky algorithm; it
//! is blocked on top of [`potrf_unblocked`] with the update expressed as
//! TRSM + SYRK, exactly mirroring LAPACK's `dpotrf`.

use crate::blas3::{syrk, trsm, Side, Trans, Uplo};
use crate::matrix::Matrix;

/// Error returned when a matrix is not (numerically) positive definite.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CholeskyError {
    /// Zero-based index of the first non-positive pivot.
    pub pivot: usize,
}

impl std::fmt::Display for CholeskyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "matrix is not positive definite (pivot {} <= 0)", self.pivot)
    }
}

impl std::error::Error for CholeskyError {}

/// Block size of the blocked [`potrf`]. Tuned for L1-resident panels.
const NB: usize = 64;

/// Unblocked lower Cholesky: factor `A = L·Lᵀ` in place (lower triangle).
///
/// On success the lower triangle of `a` holds `L`; the strict upper
/// triangle is left untouched (callers that need a clean `L` can call
/// [`Matrix::zero_upper`]).
pub fn potrf_unblocked(a: &mut Matrix) -> Result<(), CholeskyError> {
    assert_eq!(a.rows(), a.cols(), "potrf requires a square matrix");
    let n = a.rows();
    for j in 0..n {
        let mut d = a[(j, j)];
        for p in 0..j {
            let v = a[(j, p)];
            d -= v * v;
        }
        if d <= 0.0 || !d.is_finite() {
            return Err(CholeskyError { pivot: j });
        }
        let d = d.sqrt();
        a[(j, j)] = d;
        for i in j + 1..n {
            let mut v = a[(i, j)];
            for p in 0..j {
                v -= a[(i, p)] * a[(j, p)];
            }
            a[(i, j)] = v / d;
        }
    }
    Ok(())
}

/// Blocked lower Cholesky factorization in place: `A = L·Lᵀ`.
///
/// Only the lower triangle is read and written. Errors report the global
/// index of the offending pivot.
pub fn potrf(a: &mut Matrix) -> Result<(), CholeskyError> {
    assert_eq!(a.rows(), a.cols(), "potrf requires a square matrix");
    let n = a.rows();
    if n <= NB {
        return potrf_unblocked(a);
    }
    let mut j = 0;
    while j < n {
        let jb = NB.min(n - j);
        // Factor the diagonal block A[j..j+jb, j..j+jb].
        let mut diag = a.submatrix(j, j, jb, jb);
        potrf_unblocked(&mut diag).map_err(|e| CholeskyError { pivot: j + e.pivot })?;
        a.set_submatrix(j, j, &diag);
        if j + jb < n {
            let rem = n - j - jb;
            // Panel: A[j+jb.., j..j+jb] := A[j+jb.., j..j+jb] · L_diagᵀ⁻¹
            let mut panel = a.submatrix(j + jb, j, rem, jb);
            trsm(Side::Right, Uplo::Lower, Trans::Yes, 1.0, &diag, &mut panel);
            a.set_submatrix(j + jb, j, &panel);
            // Trailing update: A[j+jb.., j+jb..] -= panel · panelᵀ (lower only)
            let mut trailing = a.submatrix(j + jb, j + jb, rem, rem);
            syrk(Trans::No, -1.0, &panel, 1.0, &mut trailing);
            a.set_submatrix(j + jb, j + jb, &trailing);
        }
        j += jb;
    }
    Ok(())
}

/// Solve `L·x = b` in place for lower-triangular `L` (forward substitution).
pub fn trsv_lower(l: &Matrix, x: &mut [f64]) {
    let n = l.rows();
    assert_eq!(l.cols(), n);
    assert_eq!(x.len(), n);
    for i in 0..n {
        let mut v = x[i];
        for p in 0..i {
            v -= l[(i, p)] * x[p];
        }
        x[i] = v / l[(i, i)];
    }
}

/// Solve `Lᵀ·x = b` in place for lower-triangular `L` (backward substitution).
pub fn trsv_lower_trans(l: &Matrix, x: &mut [f64]) {
    let n = l.rows();
    assert_eq!(l.cols(), n);
    assert_eq!(x.len(), n);
    for i in (0..n).rev() {
        let mut v = x[i];
        for p in i + 1..n {
            v -= l[(p, i)] * x[p];
        }
        x[i] = v / l[(i, i)];
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::blas3::gemm;
    use crate::norms::{frobenius_norm, relative_diff};

    fn spd_matrix(n: usize, seed: u64) -> Matrix {
        let mut state = seed;
        let b = Matrix::from_fn(n, n, |_, _| {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((state >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        });
        let mut a = Matrix::identity(n);
        a.scale(n as f64);
        gemm(Trans::No, Trans::Yes, 1.0, &b, &b, 1.0, &mut a);
        a
    }

    fn check_reconstruction(a: &Matrix, l_full: &Matrix) {
        let mut l = l_full.clone();
        l.zero_upper();
        let mut recon = Matrix::zeros(a.rows(), a.cols());
        gemm(Trans::No, Trans::Yes, 1.0, &l, &l, 0.0, &mut recon);
        assert!(
            relative_diff(&recon, a) < 1e-12,
            "LLᵀ reconstruction error too large: {}",
            relative_diff(&recon, a)
        );
    }

    #[test]
    fn unblocked_reconstructs() {
        for n in [1, 2, 5, 17, 33] {
            let a = spd_matrix(n, 7 + n as u64);
            let mut l = a.clone();
            potrf_unblocked(&mut l).unwrap();
            check_reconstruction(&a, &l);
        }
    }

    #[test]
    fn blocked_reconstructs_and_matches_unblocked() {
        for n in [63, 64, 65, 130, 200] {
            let a = spd_matrix(n, n as u64);
            let mut l_blk = a.clone();
            potrf(&mut l_blk).unwrap();
            check_reconstruction(&a, &l_blk);
            let mut l_unb = a.clone();
            potrf_unblocked(&mut l_unb).unwrap();
            l_blk.zero_upper();
            l_unb.zero_upper();
            assert!(relative_diff(&l_blk, &l_unb) < 1e-12);
        }
    }

    #[test]
    fn rejects_indefinite() {
        let mut a = Matrix::identity(4);
        a[(2, 2)] = -1.0;
        let err = potrf(&mut a.clone()).unwrap_err();
        assert_eq!(err.pivot, 2);
        let err2 = potrf_unblocked(&mut a).unwrap_err();
        assert_eq!(err2.pivot, 2);
    }

    #[test]
    fn blocked_error_reports_global_pivot() {
        let n = 100;
        let mut a = spd_matrix(n, 3);
        a[(90, 90)] = -1e6; // poison a pivot inside a later block
        let err = potrf(&mut a).unwrap_err();
        assert_eq!(err.pivot, 90);
    }

    #[test]
    fn trsv_solves() {
        let n = 20;
        let a = spd_matrix(n, 5);
        let mut l = a.clone();
        potrf(&mut l).unwrap();
        l.zero_upper();
        let x_true: Vec<f64> = (0..n).map(|i| (i as f64).sin() + 1.0).collect();
        // b = L (Lᵀ x) = A x
        let b = a.matvec(&x_true);
        let mut x = b;
        trsv_lower(&l, &mut x);
        trsv_lower_trans(&l, &mut x);
        let err: f64 = x
            .iter()
            .zip(&x_true)
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f64>()
            .sqrt();
        let scale = frobenius_norm(&a);
        assert!(err / scale < 1e-10, "solve error {err}");
    }

    #[test]
    fn one_by_one() {
        let mut a = Matrix::from_vec(1, 1, vec![9.0]);
        potrf(&mut a).unwrap();
        assert!((a[(0, 0)] - 3.0).abs() < 1e-15);
    }
}

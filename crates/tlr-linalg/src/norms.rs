//! Norms and error metrics used throughout the workspace.

use crate::matrix::Matrix;

/// Frobenius norm `‖A‖_F = sqrt(Σ a_ij²)`.
///
/// Accumulates with a scaling guard so very large tiles do not overflow.
pub fn frobenius_norm(a: &Matrix) -> f64 {
    let mut scale = 0.0_f64;
    let mut ssq = 1.0_f64;
    for &v in a.as_slice() {
        if v != 0.0 {
            let av = v.abs();
            if scale < av {
                ssq = 1.0 + ssq * (scale / av) * (scale / av);
                scale = av;
            } else {
                ssq += (av / scale) * (av / scale);
            }
        }
    }
    scale * ssq.sqrt()
}

/// Frobenius norm of a raw slice (used for column norms in pivoted QR).
pub fn frobenius_norm_slice(x: &[f64]) -> f64 {
    let mut scale = 0.0_f64;
    let mut ssq = 1.0_f64;
    for &v in x {
        if v != 0.0 {
            let av = v.abs();
            if scale < av {
                ssq = 1.0 + ssq * (scale / av) * (scale / av);
                scale = av;
            } else {
                ssq += (av / scale) * (av / scale);
            }
        }
    }
    scale * ssq.sqrt()
}

/// Largest absolute entry.
pub fn max_abs(a: &Matrix) -> f64 {
    a.as_slice().iter().fold(0.0_f64, |m, &v| m.max(v.abs()))
}

/// Relative Frobenius difference `‖A − B‖_F / max(‖B‖_F, tiny)`.
///
/// # Panics
/// Panics on shape mismatch.
pub fn relative_diff(a: &Matrix, b: &Matrix) -> f64 {
    assert_eq!((a.rows(), a.cols()), (b.rows(), b.cols()), "relative_diff shape mismatch");
    let mut diff = a.clone();
    diff.axpy(-1.0, b);
    let denom = frobenius_norm(b).max(f64::MIN_POSITIVE);
    frobenius_norm(&diff) / denom
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frobenius_of_identity() {
        let m = Matrix::identity(9);
        assert!((frobenius_norm(&m) - 3.0).abs() < 1e-15);
    }

    #[test]
    fn frobenius_guards_overflow() {
        let m = Matrix::from_fn(2, 1, |_, _| 1e200);
        let n = frobenius_norm(&m);
        assert!(n.is_finite());
        assert!((n - 1e200 * 2.0_f64.sqrt()).abs() / n < 1e-14);
    }

    #[test]
    fn frobenius_zero_matrix() {
        let m = Matrix::zeros(5, 5);
        assert_eq!(frobenius_norm(&m), 0.0);
    }

    #[test]
    fn max_abs_finds_extreme() {
        let mut m = Matrix::zeros(3, 3);
        m[(1, 2)] = -7.5;
        m[(0, 0)] = 3.0;
        assert_eq!(max_abs(&m), 7.5);
    }

    #[test]
    fn relative_diff_identical_is_zero() {
        let m = Matrix::from_fn(4, 4, |i, j| (i * j) as f64);
        assert_eq!(relative_diff(&m, &m), 0.0);
    }

    #[test]
    fn slice_norm_matches_matrix_norm() {
        let m = Matrix::from_fn(6, 1, |i, _| i as f64 - 2.5);
        assert!((frobenius_norm_slice(m.as_slice()) - frobenius_norm(&m)).abs() < 1e-15);
    }
}

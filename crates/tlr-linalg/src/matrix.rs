//! Column-major dense matrix container.
//!
//! Storage is a single contiguous `Vec<f64>` in column-major order
//! (Fortran/LAPACK convention), so the tile kernels translate directly from
//! the BLAS call sequences that HiCMA issues.

use std::fmt;

/// A dense, heap-allocated, column-major `f64` matrix.
///
/// Element `(i, j)` lives at linear index `i + j * rows`. The type is the
/// common currency of the whole workspace: tiles, tall-skinny low-rank
/// factors, and small recompression workspaces are all `Matrix` values.
#[derive(Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Create a `rows × cols` matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// Create a matrix from a function of the index pair `(i, j)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for j in 0..cols {
            for i in 0..rows {
                data.push(f(i, j));
            }
        }
        Self { rows, cols, data }
    }

    /// Create a matrix that takes ownership of an existing column-major buffer.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), rows * cols, "buffer length must equal rows*cols");
        Self { rows, cols, data }
    }

    /// The `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Number of rows.
    #[inline(always)]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline(always)]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `true` when either dimension is zero.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.rows == 0 || self.cols == 0
    }

    /// Borrow the underlying column-major buffer.
    #[inline(always)]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutably borrow the underlying column-major buffer.
    #[inline(always)]
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Consume the matrix, returning its buffer.
    pub fn into_vec(self) -> Vec<f64> {
        self.data
    }

    /// Borrow column `j` as a contiguous slice.
    #[inline(always)]
    pub fn col(&self, j: usize) -> &[f64] {
        let start = j * self.rows;
        &self.data[start..start + self.rows]
    }

    /// Mutably borrow column `j` as a contiguous slice.
    #[inline(always)]
    pub fn col_mut(&mut self, j: usize) -> &mut [f64] {
        let start = j * self.rows;
        &mut self.data[start..start + self.rows]
    }

    /// Mutably borrow two distinct columns at once.
    ///
    /// # Panics
    /// Panics if `a == b`.
    pub fn two_cols_mut(&mut self, a: usize, b: usize) -> (&mut [f64], &mut [f64]) {
        assert_ne!(a, b, "columns must be distinct");
        let r = self.rows;
        let (lo, hi) = if a < b { (a, b) } else { (b, a) };
        let (head, tail) = self.data.split_at_mut(hi * r);
        let lo_col = &mut head[lo * r..lo * r + r];
        let hi_col = &mut tail[..r];
        if a < b {
            (lo_col, hi_col)
        } else {
            (hi_col, lo_col)
        }
    }

    /// Copy of the sub-matrix `rows_range × cols_range` starting at `(i0, j0)`.
    pub fn submatrix(&self, i0: usize, j0: usize, nrows: usize, ncols: usize) -> Matrix {
        assert!(i0 + nrows <= self.rows && j0 + ncols <= self.cols, "submatrix out of bounds");
        let mut out = Matrix::zeros(nrows, ncols);
        for j in 0..ncols {
            let src = &self.col(j0 + j)[i0..i0 + nrows];
            out.col_mut(j).copy_from_slice(src);
        }
        out
    }

    /// Overwrite the block starting at `(i0, j0)` with `block`.
    pub fn set_submatrix(&mut self, i0: usize, j0: usize, block: &Matrix) {
        assert!(
            i0 + block.rows <= self.rows && j0 + block.cols <= self.cols,
            "set_submatrix out of bounds"
        );
        for j in 0..block.cols {
            let dst_start = (j0 + j) * self.rows + i0;
            self.data[dst_start..dst_start + block.rows].copy_from_slice(block.col(j));
        }
    }

    /// The transpose as a new matrix.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for j in 0..self.cols {
            for i in 0..self.rows {
                out[(j, i)] = self[(i, j)];
            }
        }
        out
    }

    /// Scale every entry in place.
    pub fn scale(&mut self, alpha: f64) {
        for v in &mut self.data {
            *v *= alpha;
        }
    }

    /// `self += alpha * other`, elementwise.
    ///
    /// # Panics
    /// Panics on dimension mismatch.
    pub fn axpy(&mut self, alpha: f64, other: &Matrix) {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols), "axpy shape mismatch");
        for (d, s) in self.data.iter_mut().zip(&other.data) {
            *d += alpha * s;
        }
    }

    /// Fill with zeros without reallocating.
    pub fn fill_zero(&mut self) {
        self.data.fill(0.0);
    }

    /// Reshape in place to `rows × cols` with every entry zeroed, reusing
    /// the existing allocation whenever its capacity suffices.
    ///
    /// This is the primitive behind the kernel workspaces: a matrix that
    /// has grown to its high-water-mark size is recycled across calls
    /// without touching the heap again.
    pub fn reset(&mut self, rows: usize, cols: usize) {
        self.data.clear();
        self.data.resize(rows * cols, 0.0);
        self.rows = rows;
        self.cols = cols;
    }

    /// Mirror the lower triangle into the upper triangle (square matrices).
    pub fn symmetrize_from_lower(&mut self) {
        assert_eq!(self.rows, self.cols, "symmetrize requires a square matrix");
        for j in 0..self.cols {
            for i in j + 1..self.rows {
                let v = self[(i, j)];
                self[(j, i)] = v;
            }
        }
    }

    /// Zero out the strict upper triangle (keep a lower-triangular factor).
    pub fn zero_upper(&mut self) {
        assert_eq!(self.rows, self.cols, "zero_upper requires a square matrix");
        for j in 1..self.cols {
            for i in 0..j.min(self.rows) {
                self[(i, j)] = 0.0;
            }
        }
    }

    /// `self * v` for a dense vector `v` (simple GEMV, used by solvers/tests).
    pub fn matvec(&self, v: &[f64]) -> Vec<f64> {
        assert_eq!(v.len(), self.cols, "matvec dimension mismatch");
        let mut out = vec![0.0; self.rows];
        for (j, &x) in v.iter().enumerate() {
            if x != 0.0 {
                let col = self.col(j);
                for i in 0..self.rows {
                    out[i] += col[i] * x;
                }
            }
        }
        out
    }

    /// `selfᵀ * v`.
    pub fn matvec_t(&self, v: &[f64]) -> Vec<f64> {
        assert_eq!(v.len(), self.rows, "matvec_t dimension mismatch");
        let mut out = vec![0.0; self.cols];
        for (j, o) in out.iter_mut().enumerate() {
            let col = self.col(j);
            let mut acc = 0.0;
            for i in 0..self.rows {
                acc += col[i] * v[i];
            }
            *o = acc;
        }
        out
    }
}

impl std::ops::Index<(usize, usize)> for Matrix {
    type Output = f64;
    #[inline(always)]
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        debug_assert!(i < self.rows && j < self.cols);
        &self.data[i + j * self.rows]
    }
}

impl std::ops::IndexMut<(usize, usize)> for Matrix {
    #[inline(always)]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        debug_assert!(i < self.rows && j < self.cols);
        &mut self.data[i + j * self.rows]
    }
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        let show_r = self.rows.min(8);
        let show_c = self.cols.min(8);
        for i in 0..show_r {
            write!(f, "  ")?;
            for j in 0..show_c {
                write!(f, "{:>12.5e} ", self[(i, j)])?;
            }
            if show_c < self.cols {
                write!(f, "...")?;
            }
            writeln!(f)?;
        }
        if show_r < self.rows {
            writeln!(f, "  ...")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_index() {
        let mut m = Matrix::zeros(3, 2);
        assert_eq!(m.rows(), 3);
        assert_eq!(m.cols(), 2);
        m[(2, 1)] = 5.0;
        assert_eq!(m[(2, 1)], 5.0);
        assert_eq!(m[(0, 0)], 0.0);
    }

    #[test]
    fn from_fn_column_major_layout() {
        let m = Matrix::from_fn(2, 3, |i, j| (i * 10 + j) as f64);
        // column-major: [ (0,0) (1,0) (0,1) (1,1) (0,2) (1,2) ]
        assert_eq!(m.as_slice(), &[0.0, 10.0, 1.0, 11.0, 2.0, 12.0]);
    }

    #[test]
    fn identity_diag() {
        let m = Matrix::identity(4);
        for i in 0..4 {
            for j in 0..4 {
                assert_eq!(m[(i, j)], if i == j { 1.0 } else { 0.0 });
            }
        }
    }

    #[test]
    fn transpose_roundtrip() {
        let m = Matrix::from_fn(3, 5, |i, j| (i + 7 * j) as f64);
        let t = m.transpose();
        assert_eq!(t.rows(), 5);
        assert_eq!(t.cols(), 3);
        assert_eq!(t.transpose(), m);
    }

    #[test]
    fn submatrix_roundtrip() {
        let m = Matrix::from_fn(6, 6, |i, j| (i * 6 + j) as f64);
        let s = m.submatrix(1, 2, 3, 2);
        assert_eq!(s[(0, 0)], m[(1, 2)]);
        assert_eq!(s[(2, 1)], m[(3, 3)]);
        let mut m2 = Matrix::zeros(6, 6);
        m2.set_submatrix(1, 2, &s);
        assert_eq!(m2[(3, 3)], m[(3, 3)]);
        assert_eq!(m2[(0, 0)], 0.0);
    }

    #[test]
    fn two_cols_mut_disjoint() {
        let mut m = Matrix::from_fn(3, 3, |i, j| (i + j) as f64);
        let (a, b) = m.two_cols_mut(0, 2);
        a[0] = 100.0;
        b[2] = 200.0;
        assert_eq!(m[(0, 0)], 100.0);
        assert_eq!(m[(2, 2)], 200.0);
        // reversed order
        let (c2, c1) = m.two_cols_mut(2, 1);
        c2[0] = 7.0;
        c1[0] = 8.0;
        assert_eq!(m[(0, 2)], 7.0);
        assert_eq!(m[(0, 1)], 8.0);
    }

    #[test]
    #[should_panic]
    fn two_cols_mut_same_panics() {
        let mut m = Matrix::zeros(2, 2);
        let _ = m.two_cols_mut(1, 1);
    }

    #[test]
    fn axpy_and_scale() {
        let mut a = Matrix::from_fn(2, 2, |i, j| (i + j) as f64);
        let b = Matrix::identity(2);
        a.axpy(3.0, &b);
        assert_eq!(a[(0, 0)], 3.0);
        assert_eq!(a[(1, 1)], 5.0);
        a.scale(2.0);
        assert_eq!(a[(1, 1)], 10.0);
    }

    #[test]
    fn matvec_basic() {
        let m = Matrix::from_fn(2, 3, |i, j| (i * 3 + j + 1) as f64);
        // [1 2 3; 4 5 6] * [1,1,1] = [6, 15]
        assert_eq!(m.matvec(&[1.0, 1.0, 1.0]), vec![6.0, 15.0]);
        // transpose: [1 4;2 5;3 6] * [1,1] = [5,7,9]
        assert_eq!(m.matvec_t(&[1.0, 1.0]), vec![5.0, 7.0, 9.0]);
    }

    #[test]
    fn symmetrize_and_zero_upper() {
        let mut m = Matrix::from_fn(3, 3, |i, j| if i >= j { (i * 3 + j) as f64 } else { -1.0 });
        m.symmetrize_from_lower();
        assert_eq!(m[(0, 2)], m[(2, 0)]);
        assert_eq!(m[(1, 2)], m[(2, 1)]);
        m.zero_upper();
        assert_eq!(m[(0, 2)], 0.0);
        assert_ne!(m[(2, 0)], 0.0);
    }
}

//! Explicit-SIMD register-blocked GEMM microkernel (BLIS-style).
//!
//! The auto-vectorized axpy/dot loops in [`crate::blas3`] top out around
//! 6 Gflop/s on one core because every `C` column is re-read from cache
//! once per `k` step and the compiler cannot keep a register block of
//! `C` live across the inner loop. This module supplies the classical
//! fix: operands are packed into contiguous panels and an `MR×NR`
//! register-blocked kernel accumulates `MR·NR` elements of `C` in
//! registers across a whole `KC`-long k-block.
//!
//! Layout:
//!
//! * `A` is packed into `MR`-row panels (`apack[p·MR + i] = op(A)[i0+i, p]`,
//!   zero-padded on the row tail) so the kernel loads two contiguous
//!   4-wide vectors per k step;
//! * `B` is packed into k-major columns with `alpha` folded in at pack
//!   time (`wpack[j·kc + p] = alpha · op(B)[p, j]`), so the kernel only
//!   broadcasts;
//! * the f64 kernel is `MR = 8` rows × `NR = 4` columns: 8 AVX2
//!   accumulators + 2 `A` vectors + 1 broadcast = 11 of 16 ymm registers.
//!
//! Both transposition flags of both operands are absorbed by the packing
//! routines, so the four `(ta, tb)` combinations share one kernel.
//!
//! # Bit-identity contract
//!
//! Every element `C[i,j]` is computed as: one `beta` scaling (or a zero
//! fill when `beta == 0`), followed by fused multiply-adds in strictly
//! increasing `p` order with `w_pj = alpha · op(B)[p,j]` rounded once at
//! pack time. `KC` blocking stores and reloads the exact running value,
//! and the row/column blocking never reorders the `p` loop, so the result
//! is independent of every blocking parameter and of how callers
//! partition the columns. The scalar fallback uses [`f64::mul_add`] —
//! correctly rounded, i.e. bit-identical to the hardware `vfmadd` — with
//! the same per-element operation sequence, so the SIMD and scalar paths
//! produce **bit-identical** output (property-tested in this module).
//! This is what keeps the crate's any-thread-count bit-identity contract
//! intact on machines with and without AVX2.
//!
//! # Runtime dispatch
//!
//! [`active_path`] probes CPUID once (`avx2 && fma`) and caches the
//! decision; `TLR_MICROKERNEL=scalar` in the environment forces the
//! portable path (CI exercises both). [`gemm_with_path`] exposes the
//! explicit-path entry the determinism proptests drive.
//!
//! # Allocation discipline
//!
//! Pack buffers live in thread-locals and grow to a high-water mark, so
//! steady-state calls (the tile kernels' case: fixed tile size, repeated
//! GEMMs) perform **zero** heap allocations — preserving the counting-
//! allocator contract of the recompression hot path.

use crate::blas3::Trans;
use crate::matrix::Matrix;
use std::cell::RefCell;
use std::sync::OnceLock;

/// Microkernel row blocking: rows of `C` held in registers (two 4-wide
/// AVX2 vectors).
pub const MR: usize = 8;

/// Microkernel column blocking: columns of `C` held in registers.
pub const NR: usize = 4;

/// k-blocking: the packed `A` panel is `MR × KC` doubles (16 KiB — half
/// an L1 data cache), re-streamed once per `NR`-column strip.
const KC: usize = 256;

/// Which microkernel implementation to run.
///
/// The two paths are bit-identical (see the module docs); `Scalar` exists
/// for machines without AVX2/FMA and for differential testing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KernelPath {
    /// AVX2 + FMA register-blocked kernel (`core::arch` intrinsics).
    Simd,
    /// Portable mirror using [`f64::mul_add`] in the same operation
    /// order.
    Scalar,
}

/// Whether this CPU supports the SIMD path (AVX2 and FMA).
pub fn simd_available() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        is_x86_feature_detected!("avx2") && is_x86_feature_detected!("fma")
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

/// The path selected for this process: SIMD when the CPU supports it,
/// unless `TLR_MICROKERNEL=scalar` forces the portable fallback.
///
/// Probed once and cached — the tile kernels call this on every GEMM.
pub fn active_path() -> KernelPath {
    static PATH: OnceLock<KernelPath> = OnceLock::new();
    *PATH.get_or_init(|| match std::env::var("TLR_MICROKERNEL").as_deref() {
        Ok("scalar") => KernelPath::Scalar,
        _ => {
            if simd_available() {
                KernelPath::Simd
            } else {
                KernelPath::Scalar
            }
        }
    })
}

/// Size gate for the packed path: below this, packing overhead beats the
/// register-blocking win and callers keep their naive column sweep.
///
/// Deterministic in the problem dimensions only — both the serial and
/// column-parallel drivers consult it with the *full* product shape, so
/// they always agree on the route (a prerequisite of the bit-identity
/// contract between them).
pub(crate) fn packed_worthwhile(m: usize, n: usize, k: usize) -> bool {
    m >= MR && n >= 2 && k >= 8 && m * n * k >= 4096
}

/// Thread-local pack scratch, grown to a high-water mark and reused.
struct PackBufs {
    a: Vec<f64>,
    w: Vec<f64>,
}

thread_local! {
    static PACK: RefCell<PackBufs> = const {
        RefCell::new(PackBufs { a: Vec::new(), w: Vec::new() })
    };
}

/// Pack `op(A)[i, p]` for `i ∈ [0, m)`, `p ∈ [pc, pc+kc)` into MR-row
/// panels: `buf[ib·MR·kc + p·MR + ii] = op(A)[ib·MR + ii, pc + p]`,
/// zero-padding the last panel's missing rows. `ar0` offsets the rows of
/// `op(A)` (the SYRK strips update a trailing row range).
fn pack_a(ta: Trans, a: &Matrix, ar0: usize, m: usize, pc: usize, kc: usize, buf: &mut [f64]) {
    let npanels = m.div_ceil(MR);
    for ib in 0..npanels {
        let i0 = ib * MR;
        let mr = MR.min(m - i0);
        let panel = &mut buf[ib * MR * kc..(ib + 1) * MR * kc];
        match ta {
            Trans::No => {
                // op(A) column p is contiguous in A: copy 8-row slivers.
                for pp in 0..kc {
                    let src = &a.col(pc + pp)[ar0 + i0..ar0 + i0 + mr];
                    panel[pp * MR..pp * MR + mr].copy_from_slice(src);
                }
            }
            Trans::Yes => {
                // op(A) row i is column ar0+i of A: contiguous reads,
                // stride-MR writes.
                for ii in 0..mr {
                    let src = &a.col(ar0 + i0 + ii)[pc..pc + kc];
                    for (pp, &s) in src.iter().enumerate() {
                        panel[pp * MR + ii] = s;
                    }
                }
            }
        }
        if mr < MR {
            for pp in 0..kc {
                panel[pp * MR + mr..(pp + 1) * MR].fill(0.0);
            }
        }
    }
}

/// Pack `w[j·kc + p] = alpha · op(B)[pc + p, bc0 + j]` — k-major columns
/// with `alpha` folded in (rounded once, part of the bit-identity
/// contract).
#[allow(clippy::too_many_arguments)]
fn pack_w(
    tb: Trans,
    alpha: f64,
    b: &Matrix,
    bc0: usize,
    n: usize,
    pc: usize,
    kc: usize,
    buf: &mut [f64],
) {
    for jj in 0..n {
        let dst = &mut buf[jj * kc..(jj + 1) * kc];
        match tb {
            Trans::No => {
                let src = &b.col(bc0 + jj)[pc..pc + kc];
                for (d, &s) in dst.iter_mut().zip(src) {
                    *d = alpha * s;
                }
            }
            Trans::Yes => {
                for (pp, d) in dst.iter_mut().enumerate() {
                    *d = alpha * b[(bc0 + jj, pc + pp)];
                }
            }
        }
    }
}

/// AVX2+FMA `8×NRB` kernel over one packed panel pair.
///
/// `ap` is a `kc × MR` panel, `w` holds `NRB` k-major columns at stride
/// `ws`, `c` points at the `(0,0)` element of the `8×NRB` output block
/// with leading dimension `ldc`. `first` marks the first k-block, where
/// the one-time `beta` scaling happens.
///
/// # Safety
///
/// Caller must ensure AVX2+FMA are available, `ap` holds `kc·MR`
/// readable doubles, `w` holds `(NRB-1)·ws + kc`, and the `C` block
/// (`(NRB-1)·ldc + MR` doubles from `c`) is writable and unaliased.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2", enable = "fma")]
#[allow(clippy::too_many_arguments)]
unsafe fn kern_simd<const NRB: usize>(
    kc: usize,
    ap: *const f64,
    w: *const f64,
    ws: usize,
    c: *mut f64,
    ldc: usize,
    first: bool,
    beta: f64,
) {
    use std::arch::x86_64::*;
    let mut acc = [[_mm256_setzero_pd(); 2]; NRB];
    if first {
        if beta != 0.0 {
            let bv = _mm256_set1_pd(beta);
            for (j, aj) in acc.iter_mut().enumerate() {
                let cj = c.add(j * ldc);
                aj[0] = _mm256_mul_pd(_mm256_loadu_pd(cj), bv);
                aj[1] = _mm256_mul_pd(_mm256_loadu_pd(cj.add(4)), bv);
            }
        }
    } else {
        for (j, aj) in acc.iter_mut().enumerate() {
            let cj = c.add(j * ldc);
            aj[0] = _mm256_loadu_pd(cj);
            aj[1] = _mm256_loadu_pd(cj.add(4));
        }
    }
    for p in 0..kc {
        let a0 = _mm256_loadu_pd(ap.add(p * MR));
        let a1 = _mm256_loadu_pd(ap.add(p * MR + 4));
        for (j, aj) in acc.iter_mut().enumerate() {
            let wv = _mm256_set1_pd(*w.add(j * ws + p));
            aj[0] = _mm256_fmadd_pd(a0, wv, aj[0]);
            aj[1] = _mm256_fmadd_pd(a1, wv, aj[1]);
        }
    }
    for (j, aj) in acc.iter().enumerate() {
        let cj = c.add(j * ldc);
        _mm256_storeu_pd(cj, aj[0]);
        _mm256_storeu_pd(cj.add(4), aj[1]);
    }
}

/// Portable mirror of [`kern_simd`]: same blocking, same per-element
/// operation order, [`f64::mul_add`] for the fused accumulate. Also
/// handles row tails (`mr < MR`), which the SIMD path never sees.
#[allow(clippy::too_many_arguments)]
fn kern_scalar(
    kc: usize,
    ap: &[f64],
    w: &[f64],
    ws: usize,
    c: &mut [f64],
    coff: usize,
    ldc: usize,
    mr: usize,
    nrb: usize,
    first: bool,
    beta: f64,
) {
    for j in 0..nrb {
        let wj = &w[j * ws..j * ws + kc];
        let base = coff + j * ldc;
        for ii in 0..mr {
            let idx = base + ii;
            let mut v = if first {
                if beta == 0.0 {
                    0.0
                } else {
                    beta * c[idx]
                }
            } else {
                c[idx]
            };
            for (p, &wv) in wj.iter().enumerate() {
                v = ap[p * MR + ii].mul_add(wv, v);
            }
            c[idx] = v;
        }
    }
}

/// Packed-panel GEMM driver:
/// `C[0..m, 0..n) := alpha · op(A)[ar0.., :] · op(B)[:, bc0..] + beta · C`
/// where `C` is an `m × n` column-major block at leading dimension `ldc`
/// inside `c`.
///
/// `ar0`/`bc0` offset the rows of `op(A)` / columns of `op(B)` so the
/// SYRK strip driver and the column-parallel GEMM can address
/// sub-products without materializing views. Callers gate on
/// [`packed_worthwhile`]; this function is correct (but slower than the
/// naive sweep) for any size.
#[allow(clippy::too_many_arguments)]
pub(crate) fn gemm_packed_into(
    path: KernelPath,
    ta: Trans,
    tb: Trans,
    alpha: f64,
    a: &Matrix,
    ar0: usize,
    b: &Matrix,
    bc0: usize,
    beta: f64,
    c: &mut [f64],
    ldc: usize,
    m: usize,
    n: usize,
    k: usize,
) {
    if m == 0 || n == 0 {
        return;
    }
    debug_assert!(ldc >= m && c.len() >= (n - 1) * ldc + m);
    if k == 0 {
        // Degenerate product: GEMM semantics reduce to the beta scaling.
        for jj in 0..n {
            let col = &mut c[jj * ldc..jj * ldc + m];
            if beta == 0.0 {
                col.fill(0.0);
            } else if beta != 1.0 {
                for v in col.iter_mut() {
                    *v *= beta;
                }
            }
        }
        return;
    }
    let simd = matches!(path, KernelPath::Simd) && simd_available();
    let npanels = m.div_ceil(MR);
    let kc_max = KC.min(k);
    PACK.with(|p| {
        let bufs = &mut *p.borrow_mut();
        let a_need = npanels * MR * kc_max;
        let w_need = n * kc_max;
        if bufs.a.len() < a_need {
            bufs.a.resize(a_need, 0.0);
        }
        if bufs.w.len() < w_need {
            bufs.w.resize(w_need, 0.0);
        }
        let mut pc = 0;
        while pc < k {
            let kc = KC.min(k - pc);
            pack_a(ta, a, ar0, m, pc, kc, &mut bufs.a[..npanels * MR * kc]);
            pack_w(tb, alpha, b, bc0, n, pc, kc, &mut bufs.w[..n * kc]);
            let first = pc == 0;
            let mut jj = 0;
            while jj < n {
                let nrb = NR.min(n - jj);
                for ib in 0..npanels {
                    let i0 = ib * MR;
                    let mr = MR.min(m - i0);
                    let coff = jj * ldc + i0;
                    #[cfg(target_arch = "x86_64")]
                    if simd && mr == MR {
                        let ap = bufs.a[ib * MR * kc..].as_ptr();
                        let wp = bufs.w[jj * kc..].as_ptr();
                        // SAFETY: feature-checked above; panel/W/C extents
                        // established by the packing and the debug_assert.
                        unsafe {
                            let cp = c.as_mut_ptr().add(coff);
                            match nrb {
                                4 => kern_simd::<4>(kc, ap, wp, kc, cp, ldc, first, beta),
                                3 => kern_simd::<3>(kc, ap, wp, kc, cp, ldc, first, beta),
                                2 => kern_simd::<2>(kc, ap, wp, kc, cp, ldc, first, beta),
                                _ => kern_simd::<1>(kc, ap, wp, kc, cp, ldc, first, beta),
                            }
                        }
                        continue;
                    }
                    #[cfg(not(target_arch = "x86_64"))]
                    let _ = simd;
                    kern_scalar(
                        kc,
                        &bufs.a[ib * MR * kc..(ib + 1) * MR * kc],
                        &bufs.w[jj * kc..],
                        kc,
                        c,
                        coff,
                        ldc,
                        mr,
                        nrb,
                        first,
                        beta,
                    );
                }
                jj += nrb;
            }
            pc += kc;
        }
    });
}

/// Full-matrix packed GEMM with an explicit path:
/// `C := alpha · op(A) · op(B) + beta · C`.
///
/// This is the differential-testing entry: it always takes the packed
/// route (no size gate), so the SIMD/scalar bit-identity property can be
/// exercised on any shape, including row/column tails. Production
/// callers use [`crate::gemm`]/[`crate::gemm_serial`], which route here
/// through [`active_path`] when the product is large enough. Requesting
/// [`KernelPath::Simd`] on a machine without AVX2/FMA silently degrades
/// to the (bit-identical) scalar path.
#[allow(clippy::too_many_arguments)]
pub fn gemm_with_path(
    path: KernelPath,
    ta: Trans,
    tb: Trans,
    alpha: f64,
    a: &Matrix,
    b: &Matrix,
    beta: f64,
    c: &mut Matrix,
) {
    let (m, n, k) = crate::blas3::gemm_dims(ta, tb, a, b);
    assert_eq!((c.rows(), c.cols()), (m, n), "gemm output shape mismatch");
    if m == 0 || n == 0 {
        return;
    }
    let ldc = m;
    gemm_packed_into(path, ta, tb, alpha, a, 0, b, 0, beta, c.as_mut_slice(), ldc, m, n, k);
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn rand_mat(r: usize, c: usize, seed: u64) -> Matrix {
        let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
        Matrix::from_fn(r, c, |_, _| {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((state >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        })
    }

    #[allow(clippy::too_many_arguments)]
    fn naive(
        ta: Trans,
        tb: Trans,
        alpha: f64,
        a: &Matrix,
        b: &Matrix,
        beta: f64,
        c: &Matrix,
        m: usize,
        n: usize,
        k: usize,
    ) -> Matrix {
        Matrix::from_fn(m, n, |i, j| {
            let mut acc = 0.0;
            for p in 0..k {
                let av = match ta {
                    Trans::No => a[(i, p)],
                    Trans::Yes => a[(p, i)],
                };
                let bv = match tb {
                    Trans::No => b[(p, j)],
                    Trans::Yes => b[(j, p)],
                };
                acc += av * bv;
            }
            alpha * acc + beta * c[(i, j)]
        })
    }

    fn shapes(ta: Trans, m: usize, k: usize) -> (usize, usize) {
        match ta {
            Trans::No => (m, k),
            Trans::Yes => (k, m),
        }
    }

    #[test]
    fn packed_matches_naive_all_transpositions_and_tails() {
        // deliberately awkward shapes: row tails, column tails, k > KC
        for &(m, n, k) in &[(8, 4, 8), (13, 9, 37), (64, 64, 64), (21, 5, 300)] {
            for (ta, tb) in [
                (Trans::No, Trans::No),
                (Trans::No, Trans::Yes),
                (Trans::Yes, Trans::No),
                (Trans::Yes, Trans::Yes),
            ] {
                let (ar, ac) = shapes(ta, m, k);
                let a = rand_mat(ar, ac, 1);
                let b = match tb {
                    Trans::No => rand_mat(k, n, 2),
                    Trans::Yes => rand_mat(n, k, 2),
                };
                let c0 = rand_mat(m, n, 3);
                let expect = naive(ta, tb, 1.3, &a, &b, 0.7, &c0, m, n, k);
                for path in [KernelPath::Simd, KernelPath::Scalar] {
                    let mut c = c0.clone();
                    gemm_with_path(path, ta, tb, 1.3, &a, &b, 0.7, &mut c);
                    let diff = crate::norms::relative_diff(&c, &expect);
                    assert!(diff < 1e-13, "m={m} n={n} k={k} ta={ta:?} tb={tb:?} {diff}");
                }
            }
        }
    }

    #[test]
    fn beta_zero_overwrites_nan_in_packed_path() {
        let a = rand_mat(16, 16, 7);
        let b = rand_mat(16, 16, 8);
        let mut c = Matrix::from_fn(16, 16, |_, _| f64::NAN);
        gemm_with_path(active_path(), Trans::No, Trans::No, 1.0, &a, &b, 0.0, &mut c);
        assert!(c.as_slice().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn k_zero_applies_beta_only() {
        let a = Matrix::zeros(8, 0);
        let b = Matrix::zeros(0, 4);
        let mut c = rand_mat(8, 4, 9);
        let expect: Vec<f64> = c.as_slice().iter().map(|v| v * 0.5).collect();
        gemm_with_path(active_path(), Trans::No, Trans::No, 1.0, &a, &b, 0.5, &mut c);
        assert_eq!(c.as_slice(), &expect[..]);
    }

    // ---- satellite: bitwise SIMD/scalar determinism ---------------------

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]
        /// The SIMD and scalar microkernel paths are bit-identical on
        /// arbitrary shapes (tails included), transpositions, and
        /// alpha/beta — the property that keeps the crate's
        /// any-thread-count bit-identity contract independent of the
        /// host CPU's feature set.
        #[test]
        fn simd_and_scalar_paths_bit_identical(
            m in 1usize..40,
            n in 1usize..24,
            k in 0usize..70,
            ta_t in 0usize..2,
            tb_t in 0usize..2,
            alpha in -2.0f64..2.0,
            beta_sel in 0usize..3,
            beta_raw in -1.5f64..1.5,
            seed in 0u64..1u64 << 20,
        ) {
            let ta = if ta_t == 1 { Trans::Yes } else { Trans::No };
            let tb = if tb_t == 1 { Trans::Yes } else { Trans::No };
            // exercise the beta special cases (zero fill, load-only) as
            // often as the generic scaling
            let beta = match beta_sel {
                0 => 0.0,
                1 => 1.0,
                _ => beta_raw,
            };
            let a = match ta {
                Trans::No => rand_mat(m, k, seed),
                Trans::Yes => rand_mat(k, m, seed),
            };
            let b = match tb {
                Trans::No => rand_mat(k, n, seed ^ 0xdead),
                Trans::Yes => rand_mat(n, k, seed ^ 0xdead),
            };
            let c0 = rand_mat(m, n, seed ^ 0xbeef);
            let mut c_simd = c0.clone();
            gemm_with_path(KernelPath::Simd, ta, tb, alpha, &a, &b, beta, &mut c_simd);
            let mut c_scalar = c0.clone();
            gemm_with_path(KernelPath::Scalar, ta, tb, alpha, &a, &b, beta, &mut c_scalar);
            prop_assert_eq!(c_simd.as_slice(), c_scalar.as_slice());
        }
    }

    #[test]
    fn forced_scalar_env_is_respected_in_dispatch() {
        // active_path() caches, so only assert the invariant that holds
        // in every configuration: the returned path is executable here.
        let p = active_path();
        if p == KernelPath::Simd {
            assert!(simd_available());
        }
    }
}

#![warn(missing_docs)]
//! Dense linear-algebra substrate for the TLR Cholesky reproduction.
//!
//! This crate provides, from scratch (no external BLAS/LAPACK), every dense
//! kernel the paper's HiCMA layer relies on:
//!
//! * a column-major [`Matrix`] container with view/slicing helpers,
//! * level-3 BLAS: [`gemm`], [`syrk`], [`trsm`] (blocked, cache-aware;
//!   `gemm`/`syrk` run column-parallel on the work-stealing `rayon` pool
//!   above a size threshold, with [`gemm_serial`]/[`syrk_serial`] variants
//!   for callers that already sit inside a parallel task graph),
//! * LAPACK-style factorizations: [`potrf`] (Cholesky), [`Qr`] (Householder
//!   QR), [`ColPivQr`] (rank-revealing QR with column pivoting and
//!   threshold-based early termination — the workhorse of TLR compression),
//!   and [`jacobi_svd`] (one-sided Jacobi SVD for small/medium matrices),
//! * triangular solves and norm/error utilities.
//!
//! All computation is `f64`; the paper's experiments are double precision.
//!
//! # Quick example
//!
//! ```
//! use tlr_linalg::{Matrix, potrf, gemm, Side, Uplo, Trans};
//!
//! // Build a small SPD matrix A = B Bᵀ + n·I and factorize it.
//! let n = 8;
//! let b = Matrix::from_fn(n, n, |i, j| 1.0 / (1.0 + (i + 2 * j) as f64));
//! let mut a = Matrix::identity(n);
//! a.scale(n as f64);
//! gemm(Trans::No, Trans::Yes, 1.0, &b, &b, 1.0, &mut a);
//! let mut l = a.clone();
//! potrf(&mut l).unwrap();
//! ```

pub mod blas3;
pub mod checksum;
pub mod chol;
pub mod matrix;
pub mod microkernel;
pub mod norms;
pub mod qr;
pub mod svd;

pub use blas3::{
    gemm, gemm_serial, gemm_serial_into_cols, syrk, syrk_serial, trsm, Side, Trans, Uplo,
};
pub use microkernel::{active_path, gemm_with_path, simd_available, KernelPath};
pub use checksum::Checksum;
pub use chol::{potrf, potrf_unblocked, trsv_lower, trsv_lower_trans, CholeskyError};
pub use matrix::Matrix;
pub use norms::{frobenius_norm, max_abs, relative_diff};
pub use qr::{ColPivQr, Qr};
pub use svd::{jacobi_svd, jacobi_svd_into, Svd, SvdWork};

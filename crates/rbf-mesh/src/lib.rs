#![warn(missing_docs)]
//! 3D unstructured mesh deformation substrate.
//!
//! The paper's application is mesh deformation for CFD around moving 3D
//! bodies: the displacement of boundary nodes (on the body surfaces) is
//! interpolated to the whole volume with Gaussian radial basis functions,
//! which requires solving a dense SPD system sized by the number of
//! boundary nodes. Their dataset is a population of SARS-CoV-2 virus
//! surface meshes (PDB 6VXX) packed in a 1.7 µm cube.
//!
//! We cannot ship the protein geometry, so [`geometry`] synthesizes the
//! equivalent: spiked spherical point clouds ("viruses") packed in a unit
//! cube. What matters for the matrix structure — points clustered on
//! closed surfaces, many separated clusters, Gaussian kernel with a shape
//! parameter, Hilbert-curve ordering — is preserved (see DESIGN.md §2).
//!
//! * [`geometry`] — synthetic virus point clouds and cube packing,
//! * [`hilbert`] — 3D Hilbert space-filling-curve ordering (§IV-C),
//! * [`kernel`] — the scaled Gaussian RBF `φ_δ(r) = exp(−(r/δ)²)`,
//! * [`deform`] — the end-to-end deformation pipeline (assemble → solve →
//!   interpolate).

pub mod deform;
pub mod geometry;
pub mod hilbert;
pub mod kernel;
pub mod quality;

pub use geometry::{virus_population, Point3, VirusConfig};
pub use hilbert::hilbert_sort;
pub use kernel::{GaussianRbf, MaternKernel, MaternNu, WendlandRbf};
pub use quality::{assess, QualityReport};

//! 3D Hilbert space-filling-curve ordering.
//!
//! The paper reorders mesh points along a Hilbert curve "to preserve a
//! good spatial locality, while improving compression rate and reducing
//! arithmetic complexity" (§IV-C): after the reordering, points that are
//! close in index space are close in 3D space, so the kernel-matrix tiles
//! far from the diagonal couple distant clusters and compress to tiny
//! ranks (or vanish).
//!
//! The index computation is John Skilling's transpose algorithm
//! ("Programming the Hilbert curve", AIP 2004): coordinates are
//! interleaved after a Gray-code-like detwiddling pass.

use crate::geometry::Point3;

/// Bits of quantization per axis (3 × 21 = 63 bits fits one `u64` index).
const BITS: u32 = 21;

/// Map quantized coordinates (each `< 2^BITS`) to their Hilbert index
/// (Skilling's `AxestoTranspose` followed by bit interleaving).
fn hilbert_index(mut x: [u64; 3]) -> u64 {
    let n = 3;
    let m = 1u64 << (BITS - 1);
    // Inverse undo excess work.
    let mut q = m;
    while q > 1 {
        let p = q - 1;
        for i in 0..n {
            if x[i] & q != 0 {
                x[0] ^= p; // invert low bits of x[0]
            } else {
                let t = (x[0] ^ x[i]) & p;
                x[0] ^= t;
                x[i] ^= t;
            }
        }
        q >>= 1;
    }
    // Gray encode.
    for i in 1..n {
        x[i] ^= x[i - 1];
    }
    let mut t = 0u64;
    q = m;
    while q > 1 {
        if x[n - 1] & q != 0 {
            t ^= q - 1;
        }
        q >>= 1;
    }
    for item in x.iter_mut() {
        *item ^= t;
    }
    // Interleave the transposed bits into a single index (MSB first).
    let mut index: u64 = 0;
    for b in (0..BITS).rev() {
        for item in x.iter().take(n) {
            index = (index << 1) | ((item >> b) & 1);
        }
    }
    index
}

/// Quantize a unit-cube point to the Hilbert lattice.
fn quantize(p: &Point3) -> [u64; 3] {
    let scale = ((1u64 << BITS) - 1) as f64;
    let q = |v: f64| -> u64 { (v.clamp(0.0, 1.0) * scale) as u64 };
    [q(p.x), q(p.y), q(p.z)]
}

/// Hilbert index of a unit-cube point (used directly by tests and by
/// adaptive partitioners).
pub fn hilbert_key(p: &Point3) -> u64 {
    hilbert_index(quantize(p))
}

/// Return the permutation that sorts `points` along the 3D Hilbert curve:
/// `order[k]` is the index of the k-th point in curve order.
///
/// ```
/// use rbf_mesh::hilbert::{apply_permutation, hilbert_sort};
/// use rbf_mesh::Point3;
/// let pts = vec![
///     Point3 { x: 0.9, y: 0.9, z: 0.9 },
///     Point3 { x: 0.1, y: 0.1, z: 0.1 },
/// ];
/// let order = hilbert_sort(&pts);
/// let sorted = apply_permutation(&pts, &order);
/// // the curve starts at the origin corner
/// assert!(sorted[0].x < sorted[1].x);
/// ```
pub fn hilbert_sort(points: &[Point3]) -> Vec<usize> {
    let mut keyed: Vec<(u64, usize)> =
        points.iter().enumerate().map(|(i, p)| (hilbert_key(p), i)).collect();
    keyed.sort_unstable();
    keyed.into_iter().map(|(_, i)| i).collect()
}

/// Apply a permutation produced by [`hilbert_sort`].
pub fn apply_permutation(points: &[Point3], order: &[usize]) -> Vec<Point3> {
    order.iter().map(|&i| points[i]).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sort_is_a_permutation() {
        let pts: Vec<Point3> = (0..100)
            .map(|i| {
                let f = i as f64 / 100.0;
                Point3 { x: (f * 7.3).fract(), y: (f * 3.1).fract(), z: (f * 5.7).fract() }
            })
            .collect();
        let order = hilbert_sort(&pts);
        let mut sorted = order.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn locality_neighbors_in_index_are_close_in_space() {
        // Hilbert curve property: consecutive curve points are adjacent
        // cells. Sample a grid and check mean index-neighbor distance is
        // far below the random-pair expectation (~0.66 in the unit cube).
        let n = 17;
        let mut pts = Vec::new();
        for a in 0..n {
            for b in 0..n {
                for c in 0..n {
                    pts.push(Point3 {
                        x: a as f64 / (n - 1) as f64,
                        y: b as f64 / (n - 1) as f64,
                        z: c as f64 / (n - 1) as f64,
                    });
                }
            }
        }
        let order = hilbert_sort(&pts);
        let sorted = apply_permutation(&pts, &order);
        let mean_step: f64 = sorted
            .windows(2)
            .map(|w| w[0].dist(&w[1]))
            .sum::<f64>()
            / (sorted.len() - 1) as f64;
        let grid_step = 1.0 / (n - 1) as f64;
        assert!(
            mean_step < 2.0 * grid_step,
            "mean Hilbert step {mean_step} should be ~1 grid cell ({grid_step})"
        );
    }

    #[test]
    fn key_monotone_on_first_axis_segment() {
        // The curve starts at the origin corner: the origin must map to
        // index 0.
        let origin = Point3 { x: 0.0, y: 0.0, z: 0.0 };
        assert_eq!(hilbert_key(&origin), 0);
    }

    #[test]
    fn distinct_cells_distinct_keys() {
        let a = Point3 { x: 0.1, y: 0.2, z: 0.3 };
        let b = Point3 { x: 0.9, y: 0.1, z: 0.7 };
        assert_ne!(hilbert_key(&a), hilbert_key(&b));
    }

    #[test]
    fn clamps_out_of_cube() {
        let p = Point3 { x: -0.5, y: 1.5, z: 0.5 };
        let _ = hilbert_key(&p); // must not panic
    }
}

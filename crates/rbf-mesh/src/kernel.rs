//! The scaled Gaussian radial basis function and its kernel matrix.
//!
//! §IV-C: the paper uses the global-support Gaussian `φ(r) = exp(−r²)`,
//! scaled by a shape parameter `δ`: `φ_δ(r) = φ(r/δ)`, with the default
//! `δ = ½ · min‖x − x_bᵢ‖`. A small `δ` makes correlations die off within
//! a few neighbor distances (sparse compressed operator, well
//! conditioned); a large `δ` couples the whole domain (dense operator,
//! ill conditioned) — the entire §VIII-B study is a sweep of this knob.

use crate::geometry::{min_pairwise_distance, Point3};

/// A scaled Gaussian RBF kernel.
#[derive(Debug, Clone, Copy)]
pub struct GaussianRbf {
    /// Shape parameter δ (cube-edge units).
    pub delta: f64,
    /// Diagonal regularization ("nugget") added at `r = 0`; keeps the
    /// factorization comfortably positive definite at large δ. 0 disables.
    pub nugget: f64,
}

impl GaussianRbf {
    /// Kernel with an explicit shape parameter, no nugget.
    pub fn new(delta: f64) -> Self {
        Self { delta, nugget: 0.0 }
    }

    /// The paper's default: `δ = ½ · min‖xᵢ − xⱼ‖` over the point cloud.
    pub fn from_min_distance(points: &[Point3]) -> Self {
        Self::new(0.5 * min_pairwise_distance(points))
    }

    /// Evaluate `φ_δ(r) = exp(−(r/δ)²)`.
    #[inline]
    pub fn eval(&self, r: f64) -> f64 {
        let s = r / self.delta;
        (-s * s).exp()
    }

    /// Kernel matrix entry for points `i`, `j` of `points` (with nugget on
    /// the diagonal).
    #[inline]
    pub fn matrix_entry(&self, points: &[Point3], i: usize, j: usize) -> f64 {
        if i == j {
            1.0 + self.nugget
        } else {
            self.eval(points[i].dist(&points[j]))
        }
    }

    /// A generator closure suitable for `TlrMatrix::from_generator`.
    pub fn generator<'a>(&self, points: &'a [Point3]) -> impl Fn(usize, usize) -> f64 + Sync + 'a {
        let k = *self;
        move |i: usize, j: usize| k.matrix_entry(points, i, j)
    }
}

/// The C² Wendland compact-support RBF `ψ(r) = (1 − r)⁴·(4r + 1)` for
/// `r < 1`, **exactly zero** beyond the support radius.
///
/// §IV-C contrasts the two RBF families: global support (Gaussian)
/// couples everything and produces a dense operator; compact support
/// produces exact zeros outside the radius — a *genuinely sparse*
/// operator before any compression. Wendland's ψ₃,₁ is positive definite
/// in 3D, so the Cholesky path applies unchanged. This is the substrate
/// for the sparse end of the paper's data-structure spectrum
/// ("from dense and data-sparse to sparse").
#[derive(Debug, Clone, Copy)]
pub struct WendlandRbf {
    /// Support radius ρ (cube-edge units); `ψ(r/ρ)` vanishes at `r ≥ ρ`.
    pub radius: f64,
    /// Diagonal regularization, as in [`GaussianRbf`].
    pub nugget: f64,
}

impl WendlandRbf {
    /// Kernel with the given support radius, no nugget.
    pub fn new(radius: f64) -> Self {
        Self { radius, nugget: 0.0 }
    }

    /// Support radius as a multiple of the minimum point spacing
    /// (compact-support practice: a handful of neighbor shells).
    pub fn from_min_distance(points: &[Point3], shells: f64) -> Self {
        Self::new(shells * min_pairwise_distance(points))
    }

    /// Evaluate `ψ₃,₁(r/ρ)`; exactly 0 for `r ≥ ρ`.
    #[inline]
    pub fn eval(&self, r: f64) -> f64 {
        let s = r / self.radius;
        if s >= 1.0 {
            0.0
        } else {
            let t = 1.0 - s;
            let t2 = t * t;
            t2 * t2 * (4.0 * s + 1.0)
        }
    }

    /// Kernel matrix entry (with nugget on the diagonal).
    #[inline]
    pub fn matrix_entry(&self, points: &[Point3], i: usize, j: usize) -> f64 {
        if i == j {
            1.0 + self.nugget
        } else {
            self.eval(points[i].dist(&points[j]))
        }
    }

    /// A generator closure suitable for `TlrMatrix::from_generator`.
    pub fn generator<'a>(&self, points: &'a [Point3]) -> impl Fn(usize, usize) -> f64 + Sync + 'a {
        let k = *self;
        move |i: usize, j: usize| k.matrix_entry(points, i, j)
    }
}

/// Matérn smoothness parameter (the half-integer cases with closed
/// forms — the ones used in practice).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MaternNu {
    /// ν = 1/2: the exponential covariance `exp(−r/ℓ)`.
    Half,
    /// ν = 3/2: `(1 + √3·r/ℓ)·exp(−√3·r/ℓ)`.
    ThreeHalves,
    /// ν = 5/2: `(1 + √5·r/ℓ + 5r²/3ℓ²)·exp(−√5·r/ℓ)`.
    FiveHalves,
}

/// The Matérn covariance family — the kernel of the paper's predecessor
/// applications (refs. 8–9 of the paper: climate/weather geostatistics), provided so
/// the same TLR Cholesky stack serves the spatial-statistics workload
/// the HiCMA line of work was originally built for.
#[derive(Debug, Clone, Copy)]
pub struct MaternKernel {
    /// Correlation length ℓ (cube-edge units).
    pub length: f64,
    /// Smoothness ν.
    pub nu: MaternNu,
    /// Marginal variance σ² (diagonal value before the nugget).
    pub sigma2: f64,
    /// Nugget added on the diagonal.
    pub nugget: f64,
}

impl MaternKernel {
    /// Matérn-ν kernel with unit variance and a conditioning nugget.
    pub fn new(length: f64, nu: MaternNu) -> Self {
        Self { length, nu, sigma2: 1.0, nugget: 1e-6 }
    }

    /// Evaluate the covariance at distance `r`.
    #[inline]
    pub fn eval(&self, r: f64) -> f64 {
        let s = r / self.length;
        self.sigma2
            * match self.nu {
                MaternNu::Half => (-s).exp(),
                MaternNu::ThreeHalves => {
                    let t = 3f64.sqrt() * s;
                    (1.0 + t) * (-t).exp()
                }
                MaternNu::FiveHalves => {
                    let t = 5f64.sqrt() * s;
                    (1.0 + t + t * t / 3.0) * (-t).exp()
                }
            }
    }

    /// Covariance-matrix entry (nugget on the diagonal).
    #[inline]
    pub fn matrix_entry(&self, points: &[Point3], i: usize, j: usize) -> f64 {
        if i == j {
            self.sigma2 + self.nugget
        } else {
            self.eval(points[i].dist(&points[j]))
        }
    }

    /// A generator closure suitable for `TlrMatrix::from_generator`.
    pub fn generator<'a>(&self, points: &'a [Point3]) -> impl Fn(usize, usize) -> f64 + Sync + 'a {
        let k = *self;
        move |i: usize, j: usize| k.matrix_entry(points, i, j)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::{virus_population, VirusConfig};

    #[test]
    fn eval_basics() {
        let k = GaussianRbf::new(0.1);
        assert_eq!(k.eval(0.0), 1.0);
        assert!((k.eval(0.1) - (-1.0_f64).exp()).abs() < 1e-15);
        assert!(k.eval(1.0) < 1e-40, "far values vanish");
    }

    #[test]
    fn shape_parameter_controls_decay() {
        let sharp = GaussianRbf::new(0.01);
        let smooth = GaussianRbf::new(0.1);
        let r = 0.05;
        assert!(sharp.eval(r) < smooth.eval(r));
    }

    #[test]
    fn matrix_is_symmetric_with_unit_diag() {
        let cfg = VirusConfig { points_per_virus: 50, ..Default::default() };
        let pts = virus_population(2, &cfg, 3);
        let k = GaussianRbf::from_min_distance(&pts);
        assert!(k.delta > 0.0);
        for i in (0..pts.len()).step_by(13) {
            assert_eq!(k.matrix_entry(&pts, i, i), 1.0);
            for j in (0..pts.len()).step_by(7) {
                let a = k.matrix_entry(&pts, i, j);
                let b = k.matrix_entry(&pts, j, i);
                assert_eq!(a, b);
                assert!((0.0..=1.0).contains(&a));
            }
        }
    }

    #[test]
    fn default_delta_gives_diagonally_dominant_like_matrix() {
        // δ = ½·min distance ⇒ off-diagonal entries ≤ e^{−4} ≈ 0.018:
        // strongly diagonally concentrated, hence comfortably SPD.
        let cfg = VirusConfig { points_per_virus: 60, ..Default::default() };
        let pts = virus_population(1, &cfg, 9);
        let k = GaussianRbf::from_min_distance(&pts);
        let mut max_off = 0.0_f64;
        for i in 0..pts.len() {
            for j in 0..i {
                max_off = max_off.max(k.matrix_entry(&pts, i, j));
            }
        }
        assert!(max_off <= (-4.0_f64).exp() + 1e-12, "max off-diag {max_off}");
    }

    #[test]
    fn matern_closed_forms() {
        let m12 = MaternKernel::new(0.5, MaternNu::Half);
        assert!((m12.eval(0.5) - (-1.0f64).exp()).abs() < 1e-15);
        let m32 = MaternKernel::new(1.0, MaternNu::ThreeHalves);
        let t = 3f64.sqrt();
        assert!((m32.eval(1.0) - (1.0 + t) * (-t).exp()).abs() < 1e-15);
        let m52 = MaternKernel::new(1.0, MaternNu::FiveHalves);
        let t5 = 5f64.sqrt();
        assert!((m52.eval(1.0) - (1.0 + t5 + t5 * t5 / 3.0) * (-t5).exp()).abs() < 1e-15);
        // all are 1 at the origin with unit variance
        for k in [m12, m32, m52] {
            assert!((k.eval(0.0) - 1.0).abs() < 1e-15);
        }
    }

    #[test]
    fn matern_smoothness_orders_tails() {
        // at moderate distance the smoother kernels keep more correlation
        let r = 1.0;
        let ell = 1.0;
        let half = MaternKernel::new(ell, MaternNu::Half).eval(r);
        let three = MaternKernel::new(ell, MaternNu::ThreeHalves).eval(r);
        let five = MaternKernel::new(ell, MaternNu::FiveHalves).eval(r);
        assert!(half < three && three < five, "{half} {three} {five}");
    }

    #[test]
    fn matern_matrix_spd() {
        let cfg = VirusConfig { points_per_virus: 50, ..Default::default() };
        let pts = virus_population(2, &cfg, 41);
        let k = MaternKernel::new(0.05, MaternNu::ThreeHalves);
        let n = pts.len();
        let a = tlr_linalg::Matrix::from_fn(n, n, |i, j| k.matrix_entry(&pts, i, j));
        let mut l = a.clone();
        assert!(tlr_linalg::potrf(&mut l).is_ok(), "Matérn covariance must be SPD");
    }

    #[test]
    fn wendland_exact_zero_outside_support() {
        let k = WendlandRbf::new(0.1);
        assert_eq!(k.eval(0.0), 1.0);
        assert_eq!(k.eval(0.1), 0.0);
        assert_eq!(k.eval(0.5), 0.0);
        assert!(k.eval(0.05) > 0.0 && k.eval(0.05) < 1.0);
    }

    #[test]
    fn wendland_is_smooth_and_monotone_decreasing() {
        let k = WendlandRbf::new(1.0);
        let mut prev = k.eval(0.0);
        for i in 1..=100 {
            let v = k.eval(i as f64 / 100.0);
            assert!(v <= prev + 1e-15, "must decrease");
            prev = v;
        }
        // ψ(1⁻) → 0 continuously
        assert!(k.eval(0.999) < 1e-8);
    }

    #[test]
    fn wendland_matrix_spd_at_moderate_radius() {
        // Positive definiteness check via dense Cholesky.
        let cfg = VirusConfig { points_per_virus: 60, ..Default::default() };
        let pts = virus_population(2, &cfg, 31);
        let k = WendlandRbf::from_min_distance(&pts, 3.0);
        let n = pts.len();
        let a = tlr_linalg::Matrix::from_fn(n, n, |i, j| k.matrix_entry(&pts, i, j));
        let mut l = a.clone();
        assert!(tlr_linalg::potrf(&mut l).is_ok(), "Wendland matrix must be SPD");
    }

    #[test]
    fn wendland_sparser_than_gaussian() {
        let cfg = VirusConfig { points_per_virus: 50, ..Default::default() };
        let pts = virus_population(3, &cfg, 37);
        let w = WendlandRbf::from_min_distance(&pts, 3.0);
        let g = GaussianRbf::from_min_distance(&pts);
        let n = pts.len();
        let zeros = |f: &dyn Fn(usize, usize) -> f64| -> usize {
            let mut z = 0;
            for i in 0..n {
                for j in 0..i {
                    if f(i, j) == 0.0 {
                        z += 1;
                    }
                }
            }
            z
        };
        let wg = w.generator(&pts);
        let gg = g.generator(&pts);
        let zw = zeros(&|i, j| wg(i, j));
        let zg = zeros(&|i, j| gg(i, j));
        assert!(zw > zg, "Wendland must have exact zeros: {zw} vs {zg}");
        assert!(zw > n * (n - 1) / 4, "most entries vanish at 3 shells");
    }

    #[test]
    fn nugget_applies_on_diagonal_only() {
        let k = GaussianRbf { delta: 0.1, nugget: 0.5 };
        let pts = vec![
            Point3 { x: 0.0, y: 0.0, z: 0.0 },
            Point3 { x: 0.05, y: 0.0, z: 0.0 },
        ];
        assert_eq!(k.matrix_entry(&pts, 0, 0), 1.5);
        assert!(k.matrix_entry(&pts, 0, 1) < 1.0);
    }
}

//! Synthetic 3D geometries standing in for the SARS-CoV-2 surface meshes.
//!
//! Each "virus" is a closed quasi-spherical point cloud: a Fibonacci-
//! lattice sphere sampling (uniform, deterministic) deformed by a set of
//! radial spike bumps, mimicking the corona of the real capsid. A
//! population run places `n` such bodies at random non-degenerate
//! positions inside a cube, reproducing the paper's 30–1200 viruses in a
//! 1.7 µm box (we work in cube-edge units; only ratios matter for the
//! matrix structure).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A point in 3D, cube-edge units.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Point3 {
    /// x coordinate.
    pub x: f64,
    /// y coordinate.
    pub y: f64,
    /// z coordinate.
    pub z: f64,
}

impl Point3 {
    /// Euclidean distance to another point.
    pub fn dist(&self, o: &Point3) -> f64 {
        let dx = self.x - o.x;
        let dy = self.y - o.y;
        let dz = self.z - o.z;
        (dx * dx + dy * dy + dz * dz).sqrt()
    }
}

/// Parameters of one synthetic virus.
#[derive(Debug, Clone, Copy)]
pub struct VirusConfig {
    /// Surface points per virus (the paper's meshes have 44,932).
    pub points_per_virus: usize,
    /// Body radius in cube-edge units (real virion ≈ 50 nm in a 1.7 µm
    /// box → ≈ 0.03; we default slightly larger so small populations
    /// still interact).
    pub radius: f64,
    /// Number of spike protrusions.
    pub n_spikes: usize,
    /// Spike height as a fraction of the radius.
    pub spike_height: f64,
}

impl Default for VirusConfig {
    fn default() -> Self {
        Self { points_per_virus: 500, radius: 0.05, n_spikes: 24, spike_height: 0.35 }
    }
}

/// Golden-angle Fibonacci sphere: `n` near-uniform unit directions.
fn fibonacci_sphere(n: usize) -> Vec<Point3> {
    let golden = std::f64::consts::PI * (3.0 - 5.0_f64.sqrt());
    (0..n)
        .map(|i| {
            let y = 1.0 - 2.0 * (i as f64 + 0.5) / n as f64;
            let r = (1.0 - y * y).max(0.0).sqrt();
            let theta = golden * i as f64;
            Point3 { x: r * theta.cos(), y, z: r * theta.sin() }
        })
        .collect()
}

/// Generate one spiked-sphere virus surface centered at `center`.
pub fn spiked_sphere(center: Point3, cfg: &VirusConfig, rng: &mut StdRng) -> Vec<Point3> {
    let dirs = fibonacci_sphere(cfg.points_per_virus);
    // Random spike axes on the unit sphere.
    let spikes: Vec<Point3> = (0..cfg.n_spikes)
        .map(|_| {
            // Rejection-free: normalize a Gaussian triple.
            let g = |rng: &mut StdRng| -> f64 {
                // Box–Muller
                let u1: f64 = rng.gen_range(1e-12..1.0);
                let u2: f64 = rng.gen_range(0.0..1.0);
                (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
            };
            let (x, y, z) = (g(rng), g(rng), g(rng));
            let n = (x * x + y * y + z * z).sqrt().max(1e-12);
            Point3 { x: x / n, y: y / n, z: z / n }
        })
        .collect();
    let spike_width2 = 0.05; // angular width² of a spike bump
    dirs.into_iter()
        .map(|d| {
            // Radial bump: r(θ) = R · (1 + h · Σ exp(−angle²/w²))
            let mut bump = 0.0;
            for s in &spikes {
                let cosang = (d.x * s.x + d.y * s.y + d.z * s.z).clamp(-1.0, 1.0);
                let ang = cosang.acos();
                bump += (-(ang * ang) / spike_width2).exp();
            }
            let r = cfg.radius * (1.0 + cfg.spike_height * bump.min(1.5));
            Point3 { x: center.x + r * d.x, y: center.y + r * d.y, z: center.z + r * d.z }
        })
        .collect()
}

/// Generate a population of `n_viruses` in the unit cube.
///
/// Centers are drawn uniformly, offset from the walls by one radius.
/// Deterministic for a given `seed`.
pub fn virus_population(n_viruses: usize, cfg: &VirusConfig, seed: u64) -> Vec<Point3> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut points = Vec::with_capacity(n_viruses * cfg.points_per_virus);
    let margin = cfg.radius * (1.0 + cfg.spike_height) * 1.05;
    for _ in 0..n_viruses {
        let center = Point3 {
            x: rng.gen_range(margin..1.0 - margin),
            y: rng.gen_range(margin..1.0 - margin),
            z: rng.gen_range(margin..1.0 - margin),
        };
        points.extend(spiked_sphere(center, cfg, &mut rng));
    }
    points
}

/// Minimum pairwise distance via a uniform grid (O(n) for surface-like
/// clouds). Used to pick the paper's default shape parameter
/// `δ = ½ · min‖x − x_b‖`.
pub fn min_pairwise_distance(points: &[Point3]) -> f64 {
    assert!(points.len() >= 2, "need at least two points");
    // Grid cell = expected nearest-neighbor scale; fall back to brute
    // force for tiny inputs.
    if points.len() < 64 {
        let mut best = f64::INFINITY;
        for i in 0..points.len() {
            for j in i + 1..points.len() {
                best = best.min(points[i].dist(&points[j]));
            }
        }
        return best;
    }
    let cells = (points.len() as f64).cbrt().ceil() as usize * 2;
    let cell_of = |p: &Point3| -> (usize, usize, usize) {
        let clamp = |v: f64| ((v.clamp(0.0, 1.0)) * (cells as f64 - 1e-9)) as usize;
        (clamp(p.x), clamp(p.y), clamp(p.z))
    };
    use std::collections::HashMap;
    let mut grid: HashMap<(usize, usize, usize), Vec<usize>> = HashMap::new();
    for (idx, p) in points.iter().enumerate() {
        grid.entry(cell_of(p)).or_default().push(idx);
    }
    let mut best = f64::INFINITY;
    for (&(cx, cy, cz), members) in &grid {
        for dx in -1i64..=1 {
            for dy in -1i64..=1 {
                for dz in -1i64..=1 {
                    let nx = cx as i64 + dx;
                    let ny = cy as i64 + dy;
                    let nz = cz as i64 + dz;
                    if nx < 0 || ny < 0 || nz < 0 {
                        continue;
                    }
                    let key = (nx as usize, ny as usize, nz as usize);
                    if let Some(neigh) = grid.get(&key) {
                        for &a in members {
                            for &b in neigh {
                                if a < b {
                                    best = best.min(points[a].dist(&points[b]));
                                }
                            }
                        }
                    }
                }
            }
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fibonacci_sphere_is_unit() {
        for d in fibonacci_sphere(100) {
            let n = (d.x * d.x + d.y * d.y + d.z * d.z).sqrt();
            assert!((n - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn virus_points_near_surface() {
        let cfg = VirusConfig { points_per_virus: 200, ..Default::default() };
        let mut rng = StdRng::seed_from_u64(1);
        let c = Point3 { x: 0.5, y: 0.5, z: 0.5 };
        let pts = spiked_sphere(c, &cfg, &mut rng);
        assert_eq!(pts.len(), 200);
        for p in &pts {
            let r = p.dist(&c);
            assert!(r >= cfg.radius * 0.99, "below body radius: {r}");
            assert!(r <= cfg.radius * (1.0 + cfg.spike_height * 1.6), "beyond spikes: {r}");
        }
        // spikes actually deform the sphere
        let rs: Vec<f64> = pts.iter().map(|p| p.dist(&c)).collect();
        let rmin = rs.iter().cloned().fold(f64::INFINITY, f64::min);
        let rmax = rs.iter().cloned().fold(0.0_f64, f64::max);
        assert!(rmax / rmin > 1.05, "no spike relief: {rmin}..{rmax}");
    }

    #[test]
    fn population_is_deterministic_and_in_cube() {
        let cfg = VirusConfig { points_per_virus: 100, ..Default::default() };
        let a = virus_population(3, &cfg, 42);
        let b = virus_population(3, &cfg, 42);
        assert_eq!(a.len(), 300);
        assert_eq!(a, b, "same seed ⇒ same cloud");
        for p in &a {
            assert!(p.x > 0.0 && p.x < 1.0 && p.y > 0.0 && p.y < 1.0 && p.z > 0.0 && p.z < 1.0);
        }
        let c = virus_population(3, &cfg, 43);
        assert_ne!(a, c, "different seed ⇒ different cloud");
    }

    #[test]
    fn min_distance_brute_vs_grid() {
        let cfg = VirusConfig { points_per_virus: 80, ..Default::default() };
        let pts = virus_population(2, &cfg, 7);
        // brute force
        let mut brute = f64::INFINITY;
        for i in 0..pts.len() {
            for j in i + 1..pts.len() {
                brute = brute.min(pts[i].dist(&pts[j]));
            }
        }
        let fast = min_pairwise_distance(&pts);
        assert!((fast - brute).abs() < 1e-15, "grid {fast} vs brute {brute}");
    }

    #[test]
    fn min_distance_tiny_input() {
        let pts = vec![
            Point3 { x: 0.0, y: 0.0, z: 0.0 },
            Point3 { x: 0.3, y: 0.4, z: 0.0 },
        ];
        assert!((min_pairwise_distance(&pts) - 0.5).abs() < 1e-15);
    }
}

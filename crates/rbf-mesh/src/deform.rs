//! End-to-end RBF mesh deformation (dense reference pipeline).
//!
//! Given boundary nodes `x_bᵢ` with known displacements `d_b`, RBF
//! interpolation (§IV-C) determines coefficients `α` from
//! `A·α = d_b` with `A_ij = φ_δ(‖x_bᵢ − x_bⱼ‖)`, then evaluates
//! `d(x) = Σᵢ αᵢ · φ_δ(‖x − x_bᵢ‖)` at any volume node `x`.
//!
//! This module is the *dense* reference implementation (Cholesky via
//! `tlr-linalg`); the TLR production path lives in `hicma-core` and is
//! validated against this one in the integration tests. Like the paper we
//! solve the kernel system without the optional linear-polynomial term —
//! the Gaussian is strictly positive definite, so the interpolant is
//! already unique.

use crate::geometry::Point3;
use crate::kernel::GaussianRbf;
use tlr_linalg::{potrf, trsv_lower, trsv_lower_trans, CholeskyError, Matrix};

/// A boundary displacement field: one 3-vector per boundary node.
#[derive(Debug, Clone, Default)]
pub struct Displacements {
    /// x-components.
    pub dx: Vec<f64>,
    /// y-components.
    pub dy: Vec<f64>,
    /// z-components.
    pub dz: Vec<f64>,
}

impl Displacements {
    /// Zero displacement for `n` nodes.
    pub fn zeros(n: usize) -> Self {
        Self { dx: vec![0.0; n], dy: vec![0.0; n], dz: vec![0.0; n] }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.dx.len()
    }

    /// `true` when empty.
    pub fn is_empty(&self) -> bool {
        self.dx.is_empty()
    }

    /// Rigid translation of every node by `(tx, ty, tz)`.
    pub fn translation(n: usize, tx: f64, ty: f64, tz: f64) -> Self {
        Self { dx: vec![tx; n], dy: vec![ty; n], dz: vec![tz; n] }
    }
}

/// A solved RBF interpolation system.
pub struct RbfInterpolant {
    /// Boundary nodes (in the ordering the system was assembled with).
    pub points: Vec<Point3>,
    /// Kernel.
    pub kernel: GaussianRbf,
    /// Interpolation coefficients per displacement component.
    pub alpha: Displacements,
}

/// Assemble and solve the dense RBF system for the given boundary
/// displacements (three right-hand sides share one factorization).
pub fn solve_dense(
    points: &[Point3],
    kernel: GaussianRbf,
    d_b: &Displacements,
) -> Result<RbfInterpolant, CholeskyError> {
    let n = points.len();
    assert_eq!(d_b.len(), n, "one displacement per boundary node");
    let mut a = Matrix::from_fn(n, n, |i, j| kernel.matrix_entry(points, i, j));
    potrf(&mut a)?;
    let mut alpha = d_b.clone();
    for comp in [&mut alpha.dx, &mut alpha.dy, &mut alpha.dz] {
        trsv_lower(&a, comp);
        trsv_lower_trans(&a, comp);
    }
    Ok(RbfInterpolant { points: points.to_vec(), kernel, alpha })
}

impl RbfInterpolant {
    /// Interpolated displacement at an arbitrary volume point.
    pub fn displacement(&self, x: &Point3) -> (f64, f64, f64) {
        let mut d = (0.0, 0.0, 0.0);
        for (i, p) in self.points.iter().enumerate() {
            let w = self.kernel.eval(x.dist(p));
            d.0 += self.alpha.dx[i] * w;
            d.1 += self.alpha.dy[i] * w;
            d.2 += self.alpha.dz[i] * w;
        }
        d
    }

    /// Max-norm error reproducing the boundary conditions (should be ~0:
    /// RBF interpolation is exact at the data sites).
    pub fn boundary_residual(&self, d_b: &Displacements) -> f64 {
        let mut worst = 0.0_f64;
        for (i, p) in self.points.iter().enumerate() {
            let (dx, dy, dz) = self.displacement(p);
            worst = worst
                .max((dx - d_b.dx[i]).abs())
                .max((dy - d_b.dy[i]).abs())
                .max((dz - d_b.dz[i]).abs());
        }
        worst
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::{virus_population, VirusConfig};

    fn small_cloud() -> Vec<Point3> {
        let cfg = VirusConfig { points_per_virus: 60, ..Default::default() };
        virus_population(2, &cfg, 11)
    }

    #[test]
    fn interpolation_exact_at_boundary() {
        let pts = small_cloud();
        let kernel = GaussianRbf::from_min_distance(&pts);
        let n = pts.len();
        // A smooth synthetic displacement field.
        let d_b = Displacements {
            dx: pts.iter().map(|p| (3.0 * p.x).sin() * 0.01).collect(),
            dy: pts.iter().map(|p| (2.0 * p.y).cos() * 0.01).collect(),
            dz: vec![0.0; n],
        };
        let interp = solve_dense(&pts, kernel, &d_b).unwrap();
        assert!(interp.boundary_residual(&d_b) < 1e-8);
    }

    #[test]
    fn rigid_translation_reproduced_near_boundary() {
        let pts = small_cloud();
        let kernel = GaussianRbf::from_min_distance(&pts);
        let d_b = Displacements::translation(pts.len(), 0.02, 0.0, -0.01);
        let interp = solve_dense(&pts, kernel, &d_b).unwrap();
        // at a boundary point, the displacement equals the translation
        let (dx, dy, dz) = interp.displacement(&pts[0]);
        assert!((dx - 0.02).abs() < 1e-8);
        assert!(dy.abs() < 1e-8);
        assert!((dz + 0.01).abs() < 1e-8);
    }

    #[test]
    fn displacement_decays_away_from_boundary() {
        // With the default (small) shape parameter, far from every
        // boundary node the interpolant must vanish.
        let pts = small_cloud();
        let kernel = GaussianRbf::from_min_distance(&pts);
        let d_b = Displacements::translation(pts.len(), 0.05, 0.0, 0.0);
        let interp = solve_dense(&pts, kernel, &d_b).unwrap();
        let far = Point3 { x: 0.999, y: 0.999, z: 0.001 };
        let min_dist = pts.iter().map(|p| p.dist(&far)).fold(f64::INFINITY, f64::min);
        assert!(min_dist > 10.0 * kernel.delta, "test point must be far");
        let (dx, _, _) = interp.displacement(&far);
        assert!(dx.abs() < 1e-10, "far displacement {dx}");
    }

    #[test]
    fn spd_failure_reported() {
        // Duplicate points make the Gaussian kernel matrix singular.
        let p = Point3 { x: 0.5, y: 0.5, z: 0.5 };
        let pts = vec![p, p, Point3 { x: 0.6, y: 0.5, z: 0.5 }];
        let kernel = GaussianRbf::new(0.1);
        let d_b = Displacements::zeros(3);
        assert!(solve_dense(&pts, kernel, &d_b).is_err());
    }
}

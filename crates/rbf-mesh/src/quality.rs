//! Mesh-quality metrics for deformed point clouds.
//!
//! The application §IV-C exists to move CFD meshes *without destroying
//! them*: a deformation that collapses cells or inverts elements forces
//! remeshing, which is what RBF interpolation is meant to avoid ("produces
//! high-quality unstructured adaptive meshes"). For point clouds the
//! usable proxies are spacing-based: how much the local nearest-neighbor
//! spacing shrank (cell collapse) or grew (stretching) under the
//! displacement field.

use crate::geometry::Point3;

/// Quality summary of a deformation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QualityReport {
    /// Smallest ratio `spacing_after / spacing_before` over all nodes
    /// (1.0 = perfectly rigid; → 0 = local collapse).
    pub min_spacing_ratio: f64,
    /// Largest ratio (stretching).
    pub max_spacing_ratio: f64,
    /// Largest displacement magnitude.
    pub max_displacement: f64,
    /// RMS displacement magnitude.
    pub rms_displacement: f64,
}

impl QualityReport {
    /// A deformation is "mesh-safe" when no local spacing collapsed or
    /// stretched beyond the given factor.
    pub fn is_safe(&self, factor: f64) -> bool {
        self.min_spacing_ratio >= 1.0 / factor && self.max_spacing_ratio <= factor
    }
}

/// Nearest-neighbor distance of every point (brute force for ≤ 2k points,
/// grid-accelerated above).
fn nn_distances(points: &[Point3]) -> Vec<f64> {
    let n = points.len();
    assert!(n >= 2, "need at least two points");
    if n <= 2048 {
        let mut out = vec![f64::INFINITY; n];
        for i in 0..n {
            for j in i + 1..n {
                let d = points[i].dist(&points[j]);
                if d < out[i] {
                    out[i] = d;
                }
                if d < out[j] {
                    out[j] = d;
                }
            }
        }
        return out;
    }
    // Uniform grid with neighbor sweep; grow the search shell until a
    // neighbor is found.
    use std::collections::HashMap;
    let cells = (n as f64).cbrt().ceil() as i64;
    let cell_of = |p: &Point3| -> (i64, i64, i64) {
        let c = |v: f64| ((v.clamp(0.0, 1.0)) * (cells as f64 - 1e-9)) as i64;
        (c(p.x), c(p.y), c(p.z))
    };
    let mut grid: HashMap<(i64, i64, i64), Vec<usize>> = HashMap::new();
    for (idx, p) in points.iter().enumerate() {
        grid.entry(cell_of(p)).or_default().push(idx);
    }
    let mut out = vec![f64::INFINITY; n];
    for (i, p) in points.iter().enumerate() {
        let (cx, cy, cz) = cell_of(p);
        let mut best = f64::INFINITY;
        let mut shell = 1i64;
        loop {
            for dx in -shell..=shell {
                for dy in -shell..=shell {
                    for dz in -shell..=shell {
                        if let Some(neigh) = grid.get(&(cx + dx, cy + dy, cz + dz)) {
                            for &j in neigh {
                                if j != i {
                                    best = best.min(points[i].dist(&points[j]));
                                }
                            }
                        }
                    }
                }
            }
            // a found neighbor within the shell radius is definitive
            if best < shell as f64 / cells as f64 || shell > cells {
                break;
            }
            shell += 1;
        }
        out[i] = best;
    }
    out
}

/// Assess a deformation given the points before and after.
pub fn assess(before: &[Point3], after: &[Point3]) -> QualityReport {
    assert_eq!(before.len(), after.len(), "point sets must correspond");
    let d0 = nn_distances(before);
    let d1 = nn_distances(after);
    let mut min_ratio = f64::INFINITY;
    let mut max_ratio = 0.0_f64;
    let mut max_disp = 0.0_f64;
    let mut sum_disp2 = 0.0_f64;
    for i in 0..before.len() {
        let ratio = d1[i] / d0[i];
        min_ratio = min_ratio.min(ratio);
        max_ratio = max_ratio.max(ratio);
        let disp = before[i].dist(&after[i]);
        max_disp = max_disp.max(disp);
        sum_disp2 += disp * disp;
    }
    QualityReport {
        min_spacing_ratio: min_ratio,
        max_spacing_ratio: max_ratio,
        max_displacement: max_disp,
        rms_displacement: (sum_disp2 / before.len() as f64).sqrt(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::{virus_population, VirusConfig};

    fn cloud() -> Vec<Point3> {
        let cfg = VirusConfig { points_per_virus: 120, ..Default::default() };
        virus_population(2, &cfg, 77)
    }

    #[test]
    fn rigid_translation_is_perfect() {
        let before = cloud();
        let after: Vec<Point3> = before
            .iter()
            .map(|p| Point3 { x: p.x + 0.05, y: p.y - 0.02, z: p.z })
            .collect();
        let q = assess(&before, &after);
        assert!((q.min_spacing_ratio - 1.0).abs() < 1e-12);
        assert!((q.max_spacing_ratio - 1.0).abs() < 1e-12);
        let expected = (0.05f64 * 0.05 + 0.02 * 0.02).sqrt();
        assert!((q.max_displacement - expected).abs() < 1e-12);
        assert!(q.is_safe(1.01));
    }

    #[test]
    fn uniform_scaling_detected() {
        let before = cloud();
        let after: Vec<Point3> = before
            .iter()
            .map(|p| Point3 { x: 0.5 + (p.x - 0.5) * 1.3, y: 0.5 + (p.y - 0.5) * 1.3, z: 0.5 + (p.z - 0.5) * 1.3 })
            .collect();
        let q = assess(&before, &after);
        assert!((q.min_spacing_ratio - 1.3).abs() < 1e-9);
        assert!((q.max_spacing_ratio - 1.3).abs() < 1e-9);
        assert!(!q.is_safe(1.2));
        assert!(q.is_safe(1.4));
    }

    #[test]
    fn local_collapse_detected() {
        let mut before = cloud();
        // append an isolated pair that the deformation collapses
        before.push(Point3 { x: 0.9, y: 0.9, z: 0.9 });
        before.push(Point3 { x: 0.9, y: 0.9, z: 0.93 });
        let mut after = before.clone();
        let n = after.len();
        after[n - 1].z = 0.9003; // squash the pair to 1% of its spacing
        let q = assess(&before, &after);
        assert!(q.min_spacing_ratio < 0.05, "collapse must be caught: {q:?}");
        assert!(!q.is_safe(2.0));
    }

    #[test]
    fn rms_below_max() {
        let before = cloud();
        let after: Vec<Point3> = before
            .iter()
            .enumerate()
            .map(|(i, p)| Point3 { x: p.x + if i == 0 { 0.05 } else { 0.001 }, y: p.y, z: p.z })
            .collect();
        let q = assess(&before, &after);
        assert!(q.rms_displacement < q.max_displacement);
        assert!((q.max_displacement - 0.05).abs() < 1e-12);
    }
}

//! Fault injection for the distributed runtime.
//!
//! A [`FaultPlan`] is a *seeded, deterministic* description of what goes
//! wrong during a run: message drops, duplications and delay jitter on
//! the emulated network, fail-stop rank crashes at given virtual times,
//! task-level kernel failures, and silent data corruption (bit flips in
//! a stored tile or an in-flight payload). Every decision is a pure
//! hash of `(seed, stream, key, attempt)` via [`fault_unit`] — re-running
//! the same plan against the same task graph reproduces the exact same
//! fault sequence, which is what makes the recovery paths testable at
//! all. The DES pricing model ([`crate::des::FaultSchedule`]) draws from
//! the *same* `(seed, stream, key)` hash, so one seed reproduces the
//! identical fault sequence across `simulate_with_faults` and the
//! functional engine behind `Session::distributed`.
//!
//! The plan is consumed by the distributed engine
//! ([`crate::engine::DistEngine`], via
//! [`DistConfig::ft`](crate::engine::DistConfig)), which pairs it with a
//! [`RetryConfig`] (timeouts and capped exponential backoff) and reports
//! what actually happened in a [`FaultStats`].

use crate::graph::TaskId;
use std::collections::HashMap;
use std::fmt;

#[inline]
fn fault_mix(seed: u64, stream: u64, key: u64) -> u64 {
    seed.wrapping_mul(0x9E3779B97F4A7C15)
        .wrapping_add(stream.wrapping_mul(0xD1B54A32D192ED03))
        .wrapping_add(key.wrapping_mul(0x8CB92BA72F3D8DD7))
}

#[inline]
fn fault_finalize(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// Deterministic unit sample in `[0, 1)` for `(seed, stream, key,
/// attempt)` — the single RNG shared by [`FaultPlan`] and the DES
/// [`crate::des::FaultSchedule`]. SplitMix64 finalizer over the mixed
/// identifiers: every tuple gets an independent fate, and the same
/// tuple always rolls the same fate.
pub fn fault_unit(seed: u64, stream: u64, key: u64, attempt: u32) -> f64 {
    (fault_finalize(fault_mix(seed, stream, key).wrapping_add(attempt as u64)) >> 11) as f64
        * (1.0 / (1u64 << 53) as f64)
}

/// Raw deterministic 64-bit hash for `(seed, stream, key)` — used where
/// a fate needs more than a probability, e.g. choosing which stored bit
/// a corruption event flips.
pub fn fault_bits(seed: u64, stream: u64, key: u64) -> u64 {
    fault_finalize(fault_mix(seed, stream, key))
}

/// A fail-stop crash of one rank at a virtual time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CrashAt {
    /// Rank that dies.
    pub rank: usize,
    /// Virtual time of death (seconds since execution start).
    pub at: f64,
}

/// A silent corruption of one stored tile at a virtual time: one bit of
/// tile `(i, j)` in rank `rank`'s store flips, with the flipped bit
/// chosen deterministically from the plan seed. A no-op if the tile is
/// not in that store (or holds no words) at that moment.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CorruptAt {
    /// Rank whose store is hit.
    pub rank: usize,
    /// Tile row index.
    pub i: usize,
    /// Tile column index.
    pub j: usize,
    /// Virtual time of the bit flip (seconds since execution start).
    pub at: f64,
}

/// Seeded, deterministic fault schedule for one distributed run.
///
/// All probabilities are per *send attempt* (retransmissions roll their
/// own fate), so `drop_prob = 0.3` with retries still converges: the
/// chance that `k` consecutive attempts all drop is `0.3^k`.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    /// Seed of every pseudo-random fault decision.
    pub seed: u64,
    /// Probability that a message send attempt is silently dropped.
    pub drop_prob: f64,
    /// Probability that a delivered message is also delivered a second
    /// time (duplicate with independent extra delay).
    pub duplicate_prob: f64,
    /// Probability that an acknowledgement is dropped (forcing a
    /// spurious retransmission of an already-delivered message).
    pub ack_drop_prob: f64,
    /// Maximum extra latency per delivery, uniform in `[0, delay_jitter]`
    /// virtual seconds.
    pub delay_jitter: f64,
    /// Fail-stop rank crashes, applied in virtual time order.
    pub crashes: Vec<CrashAt>,
    /// `task → n`: the first `n` execution attempts of the task fail at
    /// the kernel level (deterministic injected failure).
    pub kernel_failures: HashMap<TaskId, u32>,
    /// Probability that a delivered message copy arrives with one bit
    /// of its payload flipped (silent in-flight corruption; rolled per
    /// delivered copy, independently of drops and duplicates).
    pub corrupt_msg_prob: f64,
    /// Scheduled silent bit flips in rank-local tile stores.
    pub store_corruptions: Vec<CorruptAt>,
}

impl FaultPlan {
    /// A plan that injects nothing (the fault-free baseline).
    pub fn none() -> Self {
        Self::new(0)
    }

    /// An empty plan with the given seed; add faults with the `with_*`
    /// builders.
    pub fn new(seed: u64) -> Self {
        Self {
            seed,
            drop_prob: 0.0,
            duplicate_prob: 0.0,
            ack_drop_prob: 0.0,
            delay_jitter: 0.0,
            crashes: Vec::new(),
            kernel_failures: HashMap::new(),
            corrupt_msg_prob: 0.0,
            store_corruptions: Vec::new(),
        }
    }

    /// Set the per-attempt message drop probability.
    pub fn with_drops(mut self, p: f64) -> Self {
        assert!(
            (0.0..1.0).contains(&p),
            "drop probability must be in [0, 1)"
        );
        self.drop_prob = p;
        self
    }

    /// Set the duplication probability.
    pub fn with_duplicates(mut self, p: f64) -> Self {
        assert!(
            (0.0..1.0).contains(&p),
            "duplicate probability must be in [0, 1)"
        );
        self.duplicate_prob = p;
        self
    }

    /// Set the ack drop probability.
    pub fn with_ack_drops(mut self, p: f64) -> Self {
        assert!(
            (0.0..1.0).contains(&p),
            "ack drop probability must be in [0, 1)"
        );
        self.ack_drop_prob = p;
        self
    }

    /// Set the maximum uniform extra delivery delay (virtual seconds).
    pub fn with_jitter(mut self, max_extra: f64) -> Self {
        assert!(max_extra >= 0.0, "jitter must be non-negative");
        self.delay_jitter = max_extra;
        self
    }

    /// Crash `rank` at virtual time `at`.
    pub fn with_crash(mut self, rank: usize, at: f64) -> Self {
        self.crashes.push(CrashAt { rank, at });
        self
    }

    /// Make the first `attempts` executions of `task` fail in the kernel.
    pub fn with_kernel_failure(mut self, task: TaskId, attempts: u32) -> Self {
        self.kernel_failures.insert(task, attempts);
        self
    }

    /// Set the per-delivered-copy payload corruption probability.
    pub fn with_message_corruption(mut self, p: f64) -> Self {
        assert!(
            (0.0..1.0).contains(&p),
            "corruption probability must be in [0, 1)"
        );
        self.corrupt_msg_prob = p;
        self
    }

    /// Flip one bit of tile `(i, j)` in rank `rank`'s store at virtual
    /// time `at`.
    pub fn with_store_corruption(mut self, rank: usize, i: usize, j: usize, at: f64) -> Self {
        self.store_corruptions.push(CorruptAt { rank, i, j, at });
        self
    }

    /// Whether the plan injects anything at all.
    pub fn is_faulty(&self) -> bool {
        self.drop_prob > 0.0
            || self.duplicate_prob > 0.0
            || self.ack_drop_prob > 0.0
            || self.delay_jitter > 0.0
            || !self.crashes.is_empty()
            || !self.kernel_failures.is_empty()
            || self.injects_corruption()
    }

    /// Whether the plan injects any silent data corruption (message or
    /// store) — when it does, the distributed engine must run with an
    /// integrity layer or the corruption would go unnoticed.
    pub fn injects_corruption(&self) -> bool {
        self.corrupt_msg_prob > 0.0 || !self.store_corruptions.is_empty()
    }

    /// Deterministic unit sample for `(stream, key, attempt)` —
    /// delegates to the shared [`fault_unit`] stream, so the DES
    /// schedule built by [`crate::des::FaultSchedule::from_plan`] rolls
    /// the identical fates for the same seed.
    fn unit(&self, stream: u64, key: u64, attempt: u32) -> f64 {
        fault_unit(self.seed, stream, key, attempt)
    }

    /// Does attempt `attempt` of message `msg` get dropped?
    pub fn drops_message(&self, msg: u64, attempt: u32) -> bool {
        self.unit(1, msg, attempt) < self.drop_prob
    }

    /// Does attempt `attempt` of message `msg` get duplicated?
    pub fn duplicates_message(&self, msg: u64, attempt: u32) -> bool {
        self.unit(2, msg, attempt) < self.duplicate_prob
    }

    /// Does the ack for attempt `attempt` of message `msg` get dropped?
    pub fn drops_ack(&self, msg: u64, attempt: u32) -> bool {
        self.unit(3, msg, attempt) < self.ack_drop_prob
    }

    /// Extra delivery delay for attempt `attempt` of message `msg`
    /// (`copy` distinguishes the original from an injected duplicate).
    pub fn delay(&self, msg: u64, attempt: u32, copy: u32) -> f64 {
        if self.delay_jitter == 0.0 {
            return 0.0;
        }
        self.unit(4 + copy as u64, msg, attempt) * self.delay_jitter
    }

    /// Does execution attempt `attempt` (0-based) of `task` fail?
    pub fn kernel_fails(&self, task: TaskId, attempt: u32) -> bool {
        self.kernel_failures
            .get(&task)
            .is_some_and(|&n| attempt < n)
    }

    /// Does delivered copy `copy` of attempt `attempt` of message `msg`
    /// arrive corrupted (one payload bit flipped)?
    pub fn corrupts_message(&self, msg: u64, attempt: u32, copy: u32) -> bool {
        self.unit(6 + copy as u64, msg, attempt) < self.corrupt_msg_prob
    }

    /// Deterministic raw bits selecting *which* stored bit a corruption
    /// event flips (`key` identifies the event: message record id for
    /// in-flight corruption, the store-corruption index for at-rest
    /// flips).
    pub fn corruption_bits(&self, key: u64) -> u64 {
        fault_bits(self.seed, 9, key)
    }
}

/// Retransmission and kernel-retry policy.
#[derive(Debug, Clone, Copy)]
pub struct RetryConfig {
    /// Time after a send attempt before an unacked message is
    /// retransmitted (virtual seconds).
    pub ack_timeout: f64,
    /// Multiplier applied to the timeout per retransmission.
    pub backoff: f64,
    /// Ceiling on the backed-off timeout.
    pub max_backoff: f64,
    /// Give up retransmitting a message after this many attempts.
    pub max_send_attempts: u32,
    /// Give up re-running a task after this many kernel failures.
    pub max_kernel_retries: u32,
    /// Give up healing one datum after this many lineage-recompute
    /// passes, escalating to [`FtError::Integrity`]. Each pass restarts
    /// the datum's writers after a backed-off delay
    /// ([`RetryConfig::timeout_for`] of the pass number), mirroring the
    /// retransmission ladder.
    pub max_heal_retries: u32,
}

impl Default for RetryConfig {
    fn default() -> Self {
        Self {
            ack_timeout: 4.0,
            backoff: 2.0,
            max_backoff: 64.0,
            max_send_attempts: 40,
            max_kernel_retries: 8,
            max_heal_retries: 4,
        }
    }
}

impl RetryConfig {
    /// Backed-off, capped timeout for send attempt `attempt` (1-based).
    pub fn timeout_for(&self, attempt: u32) -> f64 {
        (self.ack_timeout * self.backoff.powi(attempt.saturating_sub(1) as i32))
            .min(self.max_backoff)
    }
}

/// Full configuration of a fault-tolerant distributed run.
#[derive(Debug, Clone)]
pub struct FtConfig {
    /// What goes wrong.
    pub plan: FaultPlan,
    /// How the runtime fights back.
    pub retry: RetryConfig,
    /// Virtual execution time per task.
    pub task_time: f64,
    /// Base one-way message latency (virtual seconds).
    pub latency: f64,
}

impl Default for FtConfig {
    fn default() -> Self {
        Self {
            plan: FaultPlan::none(),
            retry: RetryConfig::default(),
            task_time: 1.0,
            latency: 0.5,
        }
    }
}

impl FtConfig {
    /// Fault-free configuration (baseline for overhead measurements).
    pub fn fault_free() -> Self {
        Self::default()
    }

    /// Configuration running the given plan with default retry policy.
    pub fn with_plan(plan: FaultPlan) -> Self {
        Self {
            plan,
            ..Self::default()
        }
    }
}

/// What actually happened during a fault-tolerant run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// First-attempt message sends.
    pub messages_sent: usize,
    /// Retransmissions (timeout-driven and crash replays).
    pub retransmissions: usize,
    /// Payload bytes put on the wire, every attempt counted (dataflow-edge
    /// `bytes` annotations; the communication-volume side of Fig. 13).
    pub bytes_sent: u64,
    /// Send attempts the network dropped.
    pub messages_dropped: usize,
    /// Extra deliveries injected by duplication.
    pub messages_duplicated: usize,
    /// Deliveries ignored by receiver-side dedup.
    pub duplicates_ignored: usize,
    /// Acknowledgements the network dropped.
    pub acks_dropped: usize,
    /// Rank crashes that actually fired.
    pub crashes: usize,
    /// Tasks moved to a surviving rank by crash recovery.
    pub tasks_migrated: usize,
    /// Already-completed tasks re-executed after a crash.
    pub tasks_reexecuted: usize,
    /// Injected kernel failures that fired.
    pub kernel_failures: usize,
    /// Messages that exhausted `max_send_attempts`.
    pub sends_abandoned: usize,
    /// Delivered message copies that arrived with a flipped payload bit.
    pub messages_corrupted: usize,
    /// Scheduled store bit flips that actually mutated a stored tile.
    pub store_corruptions_injected: usize,
    /// Corruptions caught by integrity verification (at message
    /// delivery, at a task read boundary, or in the final store sweep).
    pub corruptions_detected: usize,
    /// Corrupted data restored and recomputed from lineage.
    pub corruptions_healed: usize,
    /// Negative acknowledgements sent for corrupted deliveries (each
    /// triggers a retransmission without waiting for the ack timeout).
    pub nacks_sent: usize,
}

/// Unrecoverable data corruption: a datum kept failing verification
/// past `max_heal_retries` lineage-recompute passes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IntegrityError {
    /// Rank whose store held the unhealable datum.
    pub rank: usize,
    /// Tile coordinates of the datum.
    pub data: (usize, usize),
    /// Healing passes attempted before giving up.
    pub attempts: u32,
}

impl fmt::Display for IntegrityError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "tile ({}, {}) on rank {} failed integrity verification after {} healing pass(es)",
            self.data.0, self.data.1, self.rank, self.attempts
        )
    }
}

impl std::error::Error for IntegrityError {}

/// Unrecoverable failure of a fault-tolerant run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FtError {
    /// Every rank crashed; no survivor to migrate work to.
    AllRanksCrashed,
    /// A task kept failing past `max_kernel_retries`.
    KernelRetriesExhausted {
        /// The task that would not complete.
        task: TaskId,
    },
    /// The event queue drained with tasks still pending (e.g. a message
    /// abandoned after `max_send_attempts` under extreme drop rates).
    Stalled {
        /// Number of tasks that never completed.
        pending: usize,
    },
    /// A datum could not be healed within `max_heal_retries` passes.
    Integrity(IntegrityError),
}

impl fmt::Display for FtError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FtError::AllRanksCrashed => write!(f, "all ranks crashed; no survivor to recover on"),
            FtError::KernelRetriesExhausted { task } => {
                write!(f, "task {task} failed past the kernel retry limit")
            }
            FtError::Stalled { pending } => {
                write!(f, "execution stalled with {pending} tasks pending")
            }
            FtError::Integrity(e) => write!(f, "unrecoverable corruption: {e}"),
        }
    }
}

impl std::error::Error for FtError {}

impl From<IntegrityError> for FtError {
    fn from(e: IntegrityError) -> Self {
        FtError::Integrity(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fates_are_deterministic() {
        let a = FaultPlan::new(7)
            .with_drops(0.3)
            .with_duplicates(0.2)
            .with_jitter(1.5);
        let b = FaultPlan::new(7)
            .with_drops(0.3)
            .with_duplicates(0.2)
            .with_jitter(1.5);
        for msg in 0..200u64 {
            for attempt in 0..4 {
                assert_eq!(a.drops_message(msg, attempt), b.drops_message(msg, attempt));
                assert_eq!(
                    a.duplicates_message(msg, attempt),
                    b.duplicates_message(msg, attempt)
                );
                assert_eq!(a.delay(msg, attempt, 0), b.delay(msg, attempt, 0));
            }
        }
    }

    #[test]
    fn different_seeds_give_different_fates() {
        let a = FaultPlan::new(1).with_drops(0.5);
        let b = FaultPlan::new(2).with_drops(0.5);
        let disagreements = (0..500u64)
            .filter(|&m| a.drops_message(m, 0) != b.drops_message(m, 0))
            .count();
        assert!(
            disagreements > 100,
            "seeds must decorrelate ({disagreements})"
        );
    }

    #[test]
    fn drop_rate_tracks_probability() {
        let plan = FaultPlan::new(11).with_drops(0.25);
        let dropped = (0..4000u64).filter(|&m| plan.drops_message(m, 0)).count();
        let rate = dropped as f64 / 4000.0;
        assert!((rate - 0.25).abs() < 0.03, "empirical drop rate {rate}");
    }

    #[test]
    fn attempts_roll_independent_fates() {
        let plan = FaultPlan::new(3).with_drops(0.5);
        // Some message dropped on attempt 0 must survive a later attempt.
        let recovered = (0..200u64).any(|m| plan.drops_message(m, 0) && !plan.drops_message(m, 1));
        assert!(recovered, "retransmissions must be able to succeed");
    }

    #[test]
    fn jitter_bounded() {
        let plan = FaultPlan::new(5).with_jitter(2.0);
        for m in 0..500u64 {
            let d = plan.delay(m, 0, 0);
            assert!((0.0..=2.0).contains(&d));
        }
    }

    #[test]
    fn kernel_failures_bounded_by_count() {
        let plan = FaultPlan::new(1).with_kernel_failure(4, 2);
        assert!(plan.kernel_fails(4, 0));
        assert!(plan.kernel_fails(4, 1));
        assert!(!plan.kernel_fails(4, 2));
        assert!(!plan.kernel_fails(5, 0));
    }

    #[test]
    fn corruption_fates_are_deterministic_and_track_probability() {
        let a = FaultPlan::new(13).with_message_corruption(0.2);
        let b = FaultPlan::new(13).with_message_corruption(0.2);
        for msg in 0..300u64 {
            for attempt in 0..3 {
                for copy in 0..2 {
                    assert_eq!(
                        a.corrupts_message(msg, attempt, copy),
                        b.corrupts_message(msg, attempt, copy)
                    );
                }
            }
            assert_eq!(a.corruption_bits(msg), b.corruption_bits(msg));
        }
        let hit = (0..4000u64)
            .filter(|&m| a.corrupts_message(m, 0, 0))
            .count();
        let rate = hit as f64 / 4000.0;
        assert!(
            (rate - 0.2).abs() < 0.03,
            "empirical corruption rate {rate}"
        );
    }

    #[test]
    fn corruption_streams_are_independent_of_network_fates() {
        // The same message can be dropped on one roll and corrupted on
        // another: the fates come from distinct streams of the shared
        // hash, so enabling corruption never perturbs the drop/dup/ack
        // sequence of an existing seeded plan.
        let plain = FaultPlan::new(42).with_drops(0.3);
        let with_corruption = FaultPlan::new(42)
            .with_drops(0.3)
            .with_message_corruption(0.3);
        for m in 0..500u64 {
            assert_eq!(
                plain.drops_message(m, 0),
                with_corruption.drops_message(m, 0)
            );
        }
    }

    #[test]
    fn shared_fault_unit_matches_plan_fates() {
        // The free function is the same stream the plan rolls — the
        // contract that lets the DES schedule reproduce plan fates.
        let plan = FaultPlan::new(99).with_drops(0.5);
        for m in 0..200u64 {
            assert_eq!(plan.drops_message(m, 1), fault_unit(99, 1, m, 1) < 0.5);
        }
    }

    #[test]
    fn corruption_plan_flags() {
        assert!(!FaultPlan::none().injects_corruption());
        assert!(FaultPlan::new(1)
            .with_message_corruption(0.1)
            .injects_corruption());
        let p = FaultPlan::new(1).with_store_corruption(0, 2, 1, 5.0);
        assert!(p.injects_corruption() && p.is_faulty());
        assert_eq!(
            p.store_corruptions,
            vec![CorruptAt {
                rank: 0,
                i: 2,
                j: 1,
                at: 5.0
            }]
        );
    }

    #[test]
    fn integrity_error_displays() {
        let e = IntegrityError {
            rank: 3,
            data: (4, 2),
            attempts: 5,
        };
        let s = format!("{}", FtError::Integrity(e));
        assert!(
            s.contains("(4, 2)") && s.contains("rank 3") && s.contains('5'),
            "{s}"
        );
    }

    #[test]
    fn backoff_caps() {
        let r = RetryConfig {
            ack_timeout: 1.0,
            backoff: 2.0,
            max_backoff: 8.0,
            ..Default::default()
        };
        assert_eq!(r.timeout_for(1), 1.0);
        assert_eq!(r.timeout_for(2), 2.0);
        assert_eq!(r.timeout_for(3), 4.0);
        assert_eq!(r.timeout_for(4), 8.0);
        assert_eq!(r.timeout_for(10), 8.0, "backoff must cap");
    }
}

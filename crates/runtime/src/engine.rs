//! The unified execution engine: one scheduling loop per engine kind,
//! composed from orthogonal capability hooks.
//!
//! Four PRs of capability growth (cancellation, per-worker workspace
//! indexing, span capture, communication counting, fault injection) had
//! each grafted a new entry point onto the runtime, so the paper's single
//! PaRSEC-style engine had become a matrix of near-duplicate functions
//! whose capabilities could not be combined. This module restores the
//! PaRSEC architecture — scheduling, resilience and instrumentation are
//! orthogonal *services* over one DAG engine:
//!
//! * [`Engine`] — the shared-memory work-stealing engine. Exactly one
//!   scheduling loop, generic over a [`Cancel`] hook (external
//!   cancellation token) and an [`Observe`] hook (span capture). The
//!   no-op implementations ([`NoCancel`], [`NoObserve`]) are zero-sized
//!   and their inlined methods compile away, so an unobserved run pays
//!   nothing — the `trace_overhead` bench's ≤5 % and zero-allocation
//!   gates hold on this loop.
//! * [`DistEngine`] — the distributed-memory engine (message-passing
//!   emulation). Exactly one deterministic virtual-time event loop; a
//!   perfect network is simply the fault-free [`FtConfig`], so the fault
//!   layer is a *configuration* of the one loop, not a second engine.
//!   Communication volume is always counted ([`DistOutcome::comm`]) and
//!   a virtual-time [`Trace`] can be captured
//!   ([`DistConfig::record_trace`]) — capabilities compose freely
//!   (FT + trace + comm counting in one run).
//!
//! The zero-cost story differs by engine on purpose: the shared-memory
//! hot path is wall-clock critical, so its hooks are monomorphized
//! traits; the distributed loop runs in virtual time where a branch is
//! free, so its capabilities are plain config data.
//!
//! The legacy entry points (`execute*`, `execute_distributed*`) survive
//! as `#[deprecated]` one-line shims in [`crate::executor`] and
//! [`crate::distributed`].

use crate::des::CommStats;
use crate::fault::{FaultStats, FtConfig, FtError, IntegrityError};
use crate::graph::{DataRef, TaskGraph, TaskId};
use crate::obs::registry::{Counter, Gauge, Registry};
use crate::obs::RunEvent;
use crate::scheduler::{
    dist_priority_order, LookaheadScheduler, SchedPlan, SchedPolicy, Scheduler, StaticScheduler,
};
use crate::trace::{TaskRecord, Trace};
use crossbeam::deque::{Injector, Steal, Stealer, Worker};
use std::collections::{BinaryHeap, HashMap, HashSet, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Mutex;

#[cfg(feature = "obs")]
use std::sync::atomic::AtomicU64;
#[cfg(feature = "obs")]
use std::time::Instant;

// ===================== capability hooks =====================

/// Cancellation capability of a shared-memory run.
///
/// The engine polls [`Cancel::is_cancelled`] before invoking each kernel
/// and calls [`Cancel::cancel`] when a kernel panics, so an external
/// token observes the panic-drain. [`NoCancel`] is the zero-cost no-op;
/// [`AtomicBool`] is the standard token.
pub trait Cancel: Sync {
    /// Should the remaining kernels be skipped?
    fn is_cancelled(&self) -> bool;
    /// Request cancellation (kernels stop, bookkeeping still drains).
    fn cancel(&self);
}

/// No cancellation token: `is_cancelled` is a constant `false` that the
/// optimizer removes.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoCancel;

impl Cancel for NoCancel {
    #[inline]
    fn is_cancelled(&self) -> bool {
        false
    }
    #[inline]
    fn cancel(&self) {}
}

impl Cancel for AtomicBool {
    #[inline]
    fn is_cancelled(&self) -> bool {
        self.load(Ordering::Acquire)
    }
    #[inline]
    fn cancel(&self) {
        self.store(true, Ordering::Release);
    }
}

impl<C: Cancel + ?Sized> Cancel for &C {
    #[inline]
    fn is_cancelled(&self) -> bool {
        (**self).is_cancelled()
    }
    #[inline]
    fn cancel(&self) {
        (**self).cancel()
    }
}

/// Observation capability of a shared-memory run (span capture).
///
/// Every method defaults to an inline no-op, so [`NoObserve`] (and an
/// absent [`ExecObs`], via the `Option<&O>` impl) compiles to nothing on
/// the hot path.
pub trait Observe: Sync {
    /// Current time on the observation clock, integer nanoseconds.
    #[inline]
    fn now_ns(&self) -> u64 {
        0
    }
    /// Task `_t` just became ready (pushed to a deque / the injector).
    #[inline]
    fn on_enqueue(&self, _t: TaskId) {}
    /// Worker `_wid` finished task `_t` which started at `_start_ns`.
    #[inline]
    fn on_retire(&self, _wid: usize, _t: TaskId, _start_ns: u64) {}
    /// Worker `_wid` successfully stole from a peer's deque.
    #[inline]
    fn on_steal(&self, _wid: usize) {}
}

/// No span capture: every hook is an inline no-op.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoObserve;

impl Observe for NoObserve {}

impl<O: Observe> Observe for &O {
    #[inline]
    fn now_ns(&self) -> u64 {
        (**self).now_ns()
    }
    #[inline]
    fn on_enqueue(&self, t: TaskId) {
        (**self).on_enqueue(t)
    }
    #[inline]
    fn on_retire(&self, wid: usize, t: TaskId, start_ns: u64) {
        (**self).on_retire(wid, t, start_ns)
    }
    #[inline]
    fn on_steal(&self, wid: usize) {
        (**self).on_steal(wid)
    }
}

/// `None` observes nothing; `Some(o)` forwards — lets callers thread an
/// optional [`ExecObs`] (`obs.as_ref()`) straight into the engine.
impl<O: Observe> Observe for Option<&O> {
    #[inline]
    fn now_ns(&self) -> u64 {
        match self {
            Some(o) => o.now_ns(),
            None => 0,
        }
    }
    #[inline]
    fn on_enqueue(&self, t: TaskId) {
        if let Some(o) = self {
            o.on_enqueue(t);
        }
    }
    #[inline]
    fn on_retire(&self, wid: usize, t: TaskId, start_ns: u64) {
        if let Some(o) = self {
            o.on_retire(wid, t, start_ns);
        }
    }
    #[inline]
    fn on_steal(&self, wid: usize) {
        if let Some(o) = self {
            o.on_steal(wid);
        }
    }
}

// ===================== observation facade =====================

/// Span and steal data harvested from one observed execution.
#[derive(Debug, Clone, Default)]
pub struct ExecReport {
    /// One record per executed task (retirement order sorted by end time).
    pub trace: Trace,
    /// Successful steals per worker (tasks this worker took from a peer's
    /// deque; injector grabs are not steals).
    pub steals: Vec<u64>,
}

impl ExecReport {
    /// Total steal count over all workers.
    pub fn total_steals(&self) -> u64 {
        self.steals.iter().sum()
    }
}

/// Observation hooks for one engine run.
///
/// With the `obs` cargo feature enabled this captures, per task, the
/// enqueue (ready) time, the execute start/end times, and the executing
/// worker, plus per-worker steal counters — everything
/// [`crate::obs::RunMetrics`] and the Chrome-trace exporter need. Without
/// the feature every method is an inline no-op and the struct is
/// zero-sized, so the hot path of an unobserved build is untouched (the
/// counting-allocator harness in `tests/alloc_free.rs` holds either way:
/// all span storage is preallocated up front in [`ExecObs::new`]).
#[derive(Debug, Default)]
pub struct ExecObs {
    #[cfg(feature = "obs")]
    inner: Option<ObsInner>,
}

#[cfg(feature = "obs")]
#[derive(Debug)]
struct ObsInner {
    t0: Instant,
    /// Nanoseconds since `t0` at which each task became ready.
    enqueue_ns: Vec<AtomicU64>,
    /// Per-worker span logs; each mutex is only ever taken by its own
    /// worker during the run (uncontended), then drained in `finish`.
    logs: Vec<Mutex<Vec<(TaskId, u64, u64)>>>,
    /// Successful deque steals per worker.
    steals: Vec<AtomicU64>,
}

impl ExecObs {
    /// Whether span capture is compiled in (`obs` cargo feature).
    pub const fn enabled() -> bool {
        cfg!(feature = "obs")
    }

    /// Prepare storage for a graph of `ntasks` tasks on `nthreads`
    /// workers. All vectors are sized up front: the per-task hooks never
    /// allocate (each worker's log reserves room for every task, since in
    /// the worst case one worker runs the whole graph).
    #[allow(unused_variables)]
    pub fn new(ntasks: usize, nthreads: usize) -> Self {
        #[cfg(feature = "obs")]
        {
            ExecObs {
                inner: Some(ObsInner {
                    t0: Instant::now(),
                    enqueue_ns: (0..ntasks).map(|_| AtomicU64::new(0)).collect(),
                    logs: (0..nthreads.max(1))
                        .map(|_| Mutex::new(Vec::with_capacity(ntasks)))
                        .collect(),
                    steals: (0..nthreads.max(1)).map(|_| AtomicU64::new(0)).collect(),
                }),
            }
        }
        #[cfg(not(feature = "obs"))]
        {
            ExecObs::default()
        }
    }

    /// Harvest the captured spans into an [`ExecReport`], resolving task
    /// class and tile coordinates against `graph`. Returns an empty report
    /// when the `obs` feature is off.
    #[allow(unused_variables)]
    pub fn finish(&self, graph: &TaskGraph) -> ExecReport {
        #[cfg(feature = "obs")]
        if let Some(inner) = &self.inner {
            let mut trace = Trace::default();
            for (wid, log) in inner.logs.iter().enumerate() {
                let log = log.lock().unwrap_or_else(|e| e.into_inner());
                for &(t, start_ns, end_ns) in log.iter() {
                    let spec = graph.spec(t);
                    let queued_ns = inner.enqueue_ns[t].load(Ordering::Relaxed).min(start_ns);
                    trace.push_record(TaskRecord {
                        task: t,
                        class: spec.class,
                        proc: wid,
                        data: spec.writes,
                        queued: queued_ns as f64 * 1e-9,
                        start: start_ns as f64 * 1e-9,
                        end: end_ns as f64 * 1e-9,
                    });
                }
            }
            trace.records.sort_by(|a, b| a.end.total_cmp(&b.end));
            return ExecReport {
                trace,
                steals: inner
                    .steals
                    .iter()
                    .map(|s| s.load(Ordering::Relaxed))
                    .collect(),
            };
        }
        ExecReport::default()
    }

    /// Record an explicit span for `task` on worker `wid`, with both
    /// endpoints in [`Observe::now_ns`] time.
    ///
    /// This is the span-splitting entry used by the panel-batching layer:
    /// a fused engine task measures each member kernel itself and reports
    /// the members here (suppressing the fused task's own
    /// [`Observe::on_retire`]), so per-task attribution, `RunMetrics`,
    /// and trace exports keep seeing individual kernels. No-op (and
    /// allocation-free — the per-worker logs are preallocated) without
    /// the `obs` feature.
    #[inline]
    #[allow(unused_variables)]
    pub fn record_span(&self, wid: usize, task: TaskId, start_ns: u64, end_ns: u64) {
        #[cfg(feature = "obs")]
        if let Some(inner) = &self.inner {
            let mut log = inner.logs[wid].lock().unwrap_or_else(|e| e.into_inner());
            log.push((task, start_ns, end_ns));
        }
    }
}

impl Observe for ExecObs {
    #[inline]
    fn now_ns(&self) -> u64 {
        #[cfg(feature = "obs")]
        if let Some(inner) = &self.inner {
            return inner.t0.elapsed().as_nanos() as u64;
        }
        0
    }

    #[inline]
    #[allow(unused_variables)]
    fn on_enqueue(&self, t: TaskId) {
        #[cfg(feature = "obs")]
        if let Some(inner) = &self.inner {
            inner.enqueue_ns[t].store(inner.t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
        }
    }

    #[inline]
    #[allow(unused_variables)]
    fn on_retire(&self, wid: usize, t: TaskId, start_ns: u64) {
        #[cfg(feature = "obs")]
        if let Some(inner) = &self.inner {
            let end = inner.t0.elapsed().as_nanos() as u64;
            let mut log = inner.logs[wid].lock().unwrap_or_else(|e| e.into_inner());
            log.push((t, start_ns, end));
        }
    }

    #[inline]
    #[allow(unused_variables)]
    fn on_steal(&self, wid: usize) {
        #[cfg(feature = "obs")]
        if let Some(inner) = &self.inner {
            inner.steals[wid].fetch_add(1, Ordering::Relaxed);
        }
    }
}

// ===================== errors =====================

/// A kernel panicked during an engine run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TaskPanic {
    /// The task whose kernel panicked (the first one, if several raced).
    pub task: TaskId,
    /// The panic payload rendered as text, when it was a string.
    pub message: String,
}

impl std::fmt::Display for TaskPanic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "task {} panicked: {}", self.task, self.message)
    }
}

impl std::error::Error for TaskPanic {}

/// Typed failure of an engine run — malformed inputs are reported, not
/// `assert!`ed (the legacy shims re-raise them as panics to preserve
/// their documented behavior).
#[derive(Debug, Clone, PartialEq)]
pub enum EngineError {
    /// The task graph has a cycle (no valid schedule exists).
    Cycle,
    /// A kernel panicked; the pool drained before reporting.
    Panic(TaskPanic),
    /// `exec_rank` does not assign exactly one rank per task.
    RankMapLength {
        /// Tasks in the graph.
        expected: usize,
        /// Entries in the rank map.
        got: usize,
    },
    /// The initial stores do not cover exactly one store per rank.
    StoreCount {
        /// `nprocs`.
        expected: usize,
        /// Stores provided.
        got: usize,
    },
    /// A task is mapped to a rank outside `0..nprocs`.
    InvalidRank {
        /// The offending task.
        task: TaskId,
        /// Its mapped rank.
        rank: usize,
        /// The rank count.
        nprocs: usize,
    },
    /// A fault plan schedules the crash of a nonexistent rank.
    InvalidCrashRank {
        /// The scheduled rank.
        rank: usize,
        /// The rank count.
        nprocs: usize,
    },
    /// A scheduling key (or cost estimate) is NaN or infinite. Ordered
    /// ready queues cannot place such a task, so the key is rejected as
    /// a typed error where it used to panic inside a
    /// `partial_cmp().unwrap()` sort.
    NonFiniteKey {
        /// The task whose key is unusable.
        task: TaskId,
        /// The offending key value.
        key: f64,
    },
    /// A precomputed execution order supplied to
    /// [`DistEngine::run_planned`] is unusable: wrong length, not a
    /// permutation of the task ids, or not topological for the graph.
    /// Running it anyway would deadlock the front-only rank queues, so
    /// it is rejected up front.
    InvalidOrder {
        /// What check the order failed.
        reason: &'static str,
    },
    /// The fault layer could not recover (all ranks dead, retries
    /// exhausted, or the run stalled).
    Fault(FtError),
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::Cycle => write!(f, "task graph has a cycle"),
            EngineError::Panic(p) => write!(f, "{p}"),
            EngineError::RankMapLength { expected, got } => {
                write!(
                    f,
                    "rank map has {got} entries for {expected} tasks (one rank per task)"
                )
            }
            EngineError::StoreCount { expected, got } => {
                write!(
                    f,
                    "{got} initial stores for {expected} ranks (one store per rank)"
                )
            }
            EngineError::InvalidRank { task, rank, nprocs } => {
                write!(
                    f,
                    "task {task} mapped to invalid rank {rank} (nprocs {nprocs})"
                )
            }
            EngineError::InvalidCrashRank { rank, nprocs } => {
                write!(
                    f,
                    "fault plan crashes invalid rank {rank} (nprocs {nprocs})"
                )
            }
            EngineError::NonFiniteKey { task, key } => {
                write!(f, "non-finite scheduling key {key} for task {task}")
            }
            EngineError::InvalidOrder { reason } => {
                write!(f, "precomputed execution order rejected: {reason}")
            }
            EngineError::Fault(e) => write!(f, "unrecoverable runtime fault: {e}"),
        }
    }
}

impl std::error::Error for EngineError {}

impl From<FtError> for EngineError {
    fn from(e: FtError) -> Self {
        EngineError::Fault(e)
    }
}

impl From<TaskPanic> for EngineError {
    fn from(p: TaskPanic) -> Self {
        EngineError::Panic(p)
    }
}

// ===================== shared-memory engine =====================

/// Capability configuration of a shared-memory [`Engine`] run.
///
/// Build one with [`EngineConfig::new`], then layer capabilities with
/// [`with_cancel`](EngineConfig::with_cancel) /
/// [`with_obs`](EngineConfig::with_obs). Each capability is a type
/// parameter, so a run without a capability monomorphizes to the exact
/// code the dedicated legacy entry point used to have.
#[derive(Debug, Clone, Copy)]
pub struct EngineConfig<'m, C = NoCancel, O = NoObserve> {
    /// Worker threads of the pool (clamped to ≥ 1).
    pub nthreads: usize,
    /// Cancellation hook.
    pub cancel: C,
    /// Observation hook.
    pub obs: O,
    /// Ready-queue scheduling policy (default
    /// [`SchedPolicy::PanelPriority`]). The engine builds the matching
    /// [`Scheduler`] itself, pricing tasks by their planned flops; to
    /// supply a custom implementation use
    /// [`Engine::run_with_scheduler`].
    pub sched: SchedPolicy,
    /// Always-on metrics sink: per-class task durations, enqueue/steal
    /// counters, and the scheduler's end-of-run EMA corrections land in
    /// the registry's per-worker shards (`None` skips all recording).
    pub metrics: Option<&'m Registry>,
}

impl EngineConfig<'_> {
    /// A plain run on `nthreads` workers: no cancellation token, no span
    /// capture, panel-priority scheduling, no metrics sink.
    pub fn new(nthreads: usize) -> Self {
        EngineConfig {
            nthreads,
            cancel: NoCancel,
            obs: NoObserve,
            sched: SchedPolicy::PanelPriority,
            metrics: None,
        }
    }
}

impl<'m, C, O> EngineConfig<'m, C, O> {
    /// Layer a cancellation token (e.g. `&AtomicBool`) onto the run.
    pub fn with_cancel<C2>(self, cancel: C2) -> EngineConfig<'m, C2, O> {
        EngineConfig {
            nthreads: self.nthreads,
            cancel,
            obs: self.obs,
            sched: self.sched,
            metrics: self.metrics,
        }
    }

    /// Layer span capture (e.g. `&ExecObs` or `obs.as_ref()`) onto the
    /// run.
    pub fn with_obs<O2>(self, obs: O2) -> EngineConfig<'m, C, O2> {
        EngineConfig {
            nthreads: self.nthreads,
            cancel: self.cancel,
            obs,
            sched: self.sched,
            metrics: self.metrics,
        }
    }

    /// Select the ready-queue scheduling policy.
    pub fn with_sched(mut self, sched: SchedPolicy) -> Self {
        self.sched = sched;
        self
    }

    /// Attach a metrics registry (shard per worker).
    pub fn with_metrics(mut self, metrics: &'m Registry) -> Self {
        self.metrics = Some(metrics);
        self
    }
}

/// The shared-memory work-stealing engine.
///
/// Runs a [`TaskGraph`] with real kernel closures on a pool of OS
/// threads. The scheduling discipline mirrors PaRSEC's node-level
/// scheduler: per-worker LIFO deques (locality: a task's just-released
/// successor runs on the releasing worker while its inputs are
/// cache-hot) with random stealing, seeded from the graph sources in
/// priority order. Dependency tracking is a per-task atomic in-degree
/// counter: the worker that retires the last predecessor pushes the
/// successor into its own deque — the "release" path of any dataflow
/// runtime.
///
/// Kernel panics never hang the pool: the first panic flips an internal
/// drain flag (and the [`Cancel`] hook), remaining tasks retire without
/// running their kernels, and the panic is reported as
/// [`EngineError::Panic`] once every worker has stopped.
pub struct Engine<'g> {
    graph: &'g TaskGraph,
}

impl<'g> Engine<'g> {
    /// An engine over `graph`. Cheap: all state is per-run.
    pub fn new(graph: &'g TaskGraph) -> Self {
        Engine { graph }
    }

    /// Execute every task exactly once, respecting all dependencies,
    /// calling `kernel(worker_index, task)` concurrently from the pool.
    ///
    /// The worker index is stable for the lifetime of the pool
    /// (`0..nthreads`), so callers can give every worker an exclusive
    /// slot of per-worker state (the TLR factorization hands each worker
    /// its own `KernelWorkspace` arena). Exclusive access to the data a
    /// task writes is guaranteed by the graph, not the engine.
    ///
    /// `kernel` is invoked under [`catch_unwind`]: shared state it
    /// mutates must tolerate a kernel dying mid-update (the TLR
    /// factorizations qualify — a poisoned run's output is discarded
    /// wholesale).
    pub fn run<C, O, F>(&self, cfg: &EngineConfig<'_, C, O>, kernel: F) -> Result<(), EngineError>
    where
        C: Cancel,
        O: Observe,
        F: Fn(usize, TaskId) + Sync,
    {
        let mut sched = policy_scheduler(self.graph, cfg.sched)?;
        self.run_with_scheduler(cfg, sched.as_mut(), kernel)
    }

    /// [`run`](Engine::run) consuming a precomputed [`SchedPlan`]
    /// instead of rebuilding the scheduler from
    /// [`EngineConfig::sched`]: the plan's stored tables are
    /// instantiated (O(tasks), no graph walk) and the run proceeds
    /// exactly as an unplanned run with the same policy would — the
    /// plan only moves *when* the pricing happens, never what it is, so
    /// planned and unplanned runs are bit-identical.
    pub fn run_planned<C, O, F>(
        &self,
        cfg: &EngineConfig<'_, C, O>,
        plan: &SchedPlan,
        kernel: F,
    ) -> Result<(), EngineError>
    where
        C: Cancel,
        O: Observe,
        F: Fn(usize, TaskId) + Sync,
    {
        if plan.len() != self.graph.len() {
            return Err(EngineError::RankMapLength {
                expected: self.graph.len(),
                got: plan.len(),
            });
        }
        let mut sched = plan.instantiate()?;
        self.run_with_scheduler(cfg, sched.as_mut(), kernel)
    }

    /// [`run`](Engine::run) consulting an explicit [`Scheduler`]
    /// implementation instead of building one from
    /// [`EngineConfig::sched`].
    ///
    /// The engine calls `on_task_ready` for every task that becomes
    /// ready (under an internal mutex — the callbacks must be cheap) and
    /// orders the ready work by the returned key: sources are seeded
    /// best-first and each retirement pushes its newly-released
    /// successors onto the releasing worker's LIFO deque worst-first, so
    /// the best key is popped next while locality is preserved.
    /// `on_task_finished` fires at every retirement with the measured
    /// wall-clock seconds of the kernel — the feedback a dynamic policy
    /// ([`crate::scheduler::LookaheadScheduler`]) learns from. A
    /// non-finite key fails the run with [`EngineError::NonFiniteKey`]
    /// (remaining tasks drain without executing, as on a kernel panic).
    pub fn run_with_scheduler<C, O, F>(
        &self,
        cfg: &EngineConfig<'_, C, O>,
        sched: &mut dyn Scheduler,
        kernel: F,
    ) -> Result<(), EngineError>
    where
        C: Cancel,
        O: Observe,
        F: Fn(usize, TaskId) + Sync,
    {
        let graph = self.graph;
        let n = graph.len();
        if n == 0 {
            return Ok(());
        }
        if graph.topological_order().is_none() {
            return Err(EngineError::Cycle);
        }
        let nthreads = cfg.nthreads.max(1);

        let indegree: Vec<AtomicUsize> = graph
            .indegrees()
            .into_iter()
            .map(AtomicUsize::new)
            .collect();
        let completed = AtomicUsize::new(0);
        let first_panic: Mutex<Option<TaskPanic>> = Mutex::new(None);
        let first_error: Mutex<Option<EngineError>> = Mutex::new(None);
        // Internal drain flag: a panic must stop the kernels even when the
        // caller supplied no cancellation token ([`NoCancel`]).
        let draining = AtomicBool::new(false);

        let injector = Injector::new();
        // Seed sources best-key-first (critical path first under the
        // default policy). Keys are validated before any kernel runs.
        let mut sources: Vec<(f64, TaskId)> = Vec::new();
        for t in graph.sources() {
            let key = sched.on_task_ready(t, graph);
            if !key.is_finite() {
                return Err(EngineError::NonFiniteKey { task: t, key });
            }
            sources.push((key, t));
        }
        sources.sort_by(|a, b| a.0.total_cmp(&b.0));
        for (_, t) in sources {
            cfg.obs.on_enqueue(t);
            if let Some(reg) = cfg.metrics {
                reg.incr(0, Counter::TasksEnqueued);
            }
            injector.push(t);
        }
        // Shared by the workers: the policy's state is updated on every
        // ready/finished callback, so it lives under one mutex.
        let sched = Mutex::new(sched);

        let workers: Vec<Worker<TaskId>> = (0..nthreads).map(|_| Worker::new_lifo()).collect();
        let stealers: Vec<Stealer<TaskId>> = workers.iter().map(Worker::stealer).collect();

        std::thread::scope(|scope| {
            for (wid, local) in workers.into_iter().enumerate() {
                let injector = &injector;
                let stealers = &stealers;
                let indegree = &indegree;
                let completed = &completed;
                let first_panic = &first_panic;
                let first_error = &first_error;
                let draining = &draining;
                let kernel = &kernel;
                let sched = &sched;
                scope.spawn(move || {
                    let mut rng: u64 = 0x9E3779B97F4A7C15 ^ (wid as u64);
                    // Reused per-retire scratch for released successors.
                    let mut released: Vec<(f64, TaskId)> = Vec::new();
                    loop {
                        if completed.load(Ordering::Acquire) == n {
                            return;
                        }
                        let task = find_task(
                            &local,
                            injector,
                            stealers,
                            wid,
                            &mut rng,
                            &cfg.obs,
                            cfg.metrics,
                        );
                        match task {
                            Some(t) => {
                                let start_ns = cfg.obs.now_ns();
                                let wall_start = std::time::Instant::now();
                                let mut ran = false;
                                if !draining.load(Ordering::Acquire) && !cfg.cancel.is_cancelled() {
                                    ran = true;
                                    if let Err(payload) =
                                        catch_unwind(AssertUnwindSafe(|| kernel(wid, t)))
                                    {
                                        draining.store(true, Ordering::Release);
                                        cfg.cancel.cancel();
                                        let message = payload
                                            .downcast_ref::<&str>()
                                            .map(|s| s.to_string())
                                            .or_else(|| payload.downcast_ref::<String>().cloned())
                                            .unwrap_or_else(|| "non-string panic payload".into());
                                        let mut slot =
                                            first_panic.lock().unwrap_or_else(|e| e.into_inner());
                                        if slot.is_none() {
                                            *slot = Some(TaskPanic { task: t, message });
                                        }
                                    }
                                }
                                let measured_s =
                                    if ran { wall_start.elapsed().as_secs_f64() } else { 0.0 };
                                cfg.obs.on_retire(wid, t, start_ns);
                                if ran {
                                    if let Some(reg) = cfg.metrics {
                                        reg.incr(wid, Counter::TasksExecuted);
                                        reg.record_class_seconds(
                                            wid,
                                            graph.spec(t).class,
                                            measured_s,
                                        );
                                    }
                                }
                                // Release successors even when draining: the
                                // completion count must reach `n` to stop.
                                released.clear();
                                for e in graph.successors(t) {
                                    if indegree[e.dst].fetch_sub(1, Ordering::AcqRel) == 1 {
                                        released.push((0.0, e.dst));
                                    }
                                }
                                {
                                    let mut s =
                                        sched.lock().unwrap_or_else(|e| e.into_inner());
                                    s.on_task_finished(t, graph, measured_s);
                                    for slot in released.iter_mut() {
                                        slot.0 = s.on_task_ready(slot.1, graph);
                                    }
                                }
                                for &(key, dst) in released.iter() {
                                    if !key.is_finite() {
                                        // Typed failure, same drain protocol
                                        // as a kernel panic: remaining tasks
                                        // retire without executing.
                                        draining.store(true, Ordering::Release);
                                        cfg.cancel.cancel();
                                        let mut slot = first_error
                                            .lock()
                                            .unwrap_or_else(|e| e.into_inner());
                                        if slot.is_none() {
                                            *slot = Some(EngineError::NonFiniteKey {
                                                task: dst,
                                                key,
                                            });
                                        }
                                    }
                                }
                                // Worst key first onto the LIFO deque, so
                                // the best key is what this worker pops
                                // next (total_cmp: NaNs cannot panic the
                                // sort even on the drain path).
                                released.sort_by(|a, b| b.0.total_cmp(&a.0));
                                for &(_, dst) in released.iter() {
                                    cfg.obs.on_enqueue(dst);
                                    if let Some(reg) = cfg.metrics {
                                        reg.incr(wid, Counter::TasksEnqueued);
                                    }
                                    local.push(dst);
                                }
                                completed.fetch_add(1, Ordering::AcqRel);
                            }
                            None => std::hint::spin_loop(),
                        }
                    }
                });
            }
        });

        // Publish the scheduler's learned per-class EMA corrections so
        // drift reports can inspect the calibration state it ended with.
        if let Some(reg) = cfg.metrics {
            let s = sched.lock().unwrap_or_else(|e| e.into_inner());
            if let Some(corr) = s.class_corrections() {
                for (k, &v) in corr.iter().enumerate() {
                    reg.gauge_max(0, Gauge::correction(k), v);
                }
            }
        }

        debug_assert_eq!(
            completed.load(Ordering::Acquire),
            n,
            "not all tasks executed"
        );
        if let Some(e) = first_error.into_inner().unwrap_or_else(|e| e.into_inner()) {
            return Err(e);
        }
        match first_panic.into_inner().unwrap_or_else(|e| e.into_inner()) {
            Some(p) => Err(EngineError::Panic(p)),
            None => Ok(()),
        }
    }
}

/// Build the [`Scheduler`] for a policy in an engine that has no
/// machine model: tasks are priced by their planned flops at a nominal
/// 1 Gflop/s (only relative magnitudes matter for ordering, but the
/// lookahead's online correction works best when the estimates are in
/// seconds-like units).
fn policy_scheduler(
    graph: &TaskGraph,
    policy: SchedPolicy,
) -> Result<Box<dyn Scheduler>, EngineError> {
    let cost = |t: TaskId| graph.spec(t).flops * 1e-9;
    Ok(match policy {
        SchedPolicy::RankAwareLookahead => Box::new(LookaheadScheduler::new(graph, cost)?),
        p => Box::new(StaticScheduler::from_policy(graph, cost, p)?),
    })
}

/// Pop local → steal from injector → steal from a random victim.
fn find_task<O: Observe>(
    local: &Worker<TaskId>,
    injector: &Injector<TaskId>,
    stealers: &[Stealer<TaskId>],
    self_id: usize,
    rng: &mut u64,
    obs: &O,
    metrics: Option<&Registry>,
) -> Option<TaskId> {
    if let Some(t) = local.pop() {
        return Some(t);
    }
    loop {
        match injector.steal_batch_and_pop(local) {
            Steal::Success(t) => return Some(t),
            Steal::Retry => continue,
            Steal::Empty => break,
        }
    }
    // Random-order steal attempt over all other workers.
    let k = stealers.len();
    if k > 1 {
        *rng = rng
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let start = (*rng >> 33) as usize % k;
        for off in 0..k {
            let victim = (start + off) % k;
            if victim == self_id {
                continue;
            }
            loop {
                match stealers[victim].steal_batch_and_pop(local) {
                    Steal::Success(t) => {
                        obs.on_steal(self_id);
                        if let Some(reg) = metrics {
                            reg.incr(self_id, Counter::Steals);
                        }
                        return Some(t);
                    }
                    Steal::Retry => continue,
                    Steal::Empty => break,
                }
            }
        }
    }
    None
}

// ===================== distributed engine =====================

/// Context handed to the task body on its executing rank.
pub struct RankCtx<'a, P> {
    rank: usize,
    store: &'a mut HashMap<DataRef, P>,
    /// inputs received from remote producers for the current task
    remote_inputs: HashMap<(TaskId, DataRef), P>,
}

impl<P> RankCtx<'_, P> {
    /// This rank's id.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Borrow a datum: a remote input shipped for this task if one
    /// exists, otherwise the rank-local store.
    ///
    /// # Panics
    /// Panics when the datum is neither local nor shipped — i.e. the
    /// graph is missing a dependency edge (exactly the bug class this
    /// engine exists to catch).
    pub fn get(&self, producer: Option<TaskId>, data: DataRef) -> &P {
        if let Some(pid) = producer {
            if let Some(p) = self.remote_inputs.get(&(pid, data)) {
                return p;
            }
        }
        self.store.get(&data).unwrap_or_else(|| {
            panic!(
                "rank {}: datum ({}, {}) neither local nor shipped — missing dependency edge?",
                self.rank, data.i, data.j
            )
        })
    }

    /// Store (or overwrite) a datum in the rank-local store.
    pub fn put(&mut self, data: DataRef, payload: P) {
        self.store.insert(data, payload);
    }

    /// Take a datum out of the local store (for in-place mutation).
    pub fn take(&mut self, data: DataRef) -> Option<P> {
        self.store.remove(&data)
    }

    /// Take a shipped remote input (consuming it).
    pub fn take_remote(&mut self, producer: TaskId, data: DataRef) -> Option<P> {
        self.remote_inputs.remove(&(producer, data))
    }
}

/// Capability configuration of a [`DistEngine`] run.
///
/// The distributed engine runs in virtual time, so its capabilities are
/// plain data rather than monomorphized traits (a branch per event is
/// free there): `Default` is a perfect network with no trace.
#[derive(Debug, Clone, Copy, Default)]
pub struct DistConfig<'a> {
    /// Fault layer: the fault plan, retry policy and virtual-time cost
    /// model. `None` runs the same event loop over a perfect network
    /// ([`FtConfig::fault_free`]).
    pub ft: Option<&'a FtConfig>,
    /// Capture a virtual-time [`Trace`] of task execution (one record
    /// per *successful* task completion; crash re-executions append a
    /// second record, mirroring what a real tracer would see).
    pub record_trace: bool,
    /// Ready-queue scheduling policy. The distributed engine executes
    /// each rank's queue front-only, so an arbitrary per-rank reorder
    /// can deadlock across ranks; a policy is therefore applied as a
    /// *priority-driven topological order*
    /// ([`crate::scheduler::priority_topo_order`]) shared by every rank
    /// — always deadlock-free. `None` (the default) keeps the plain
    /// creation-order topological sort, the engine's historical
    /// behavior. Tasks are priced by planned flops at a nominal
    /// 1 Gflop/s; [`SchedPolicy::CommAwareUpwardRank`] additionally
    /// prices cross-rank edges at a nominal 1 GB/s.
    pub sched: Option<SchedPolicy>,
    /// Always-on metrics sink: per-class virtual task durations land in
    /// per-rank shards, and the run's comm/fault/integrity totals are
    /// folded in at the end (`None` skips all recording).
    pub metrics: Option<&'a Registry>,
}

/// Payload integrity hooks for [`DistEngine::run_with_integrity`].
///
/// The engine is generic over its payload type, so corruption injection
/// and checksum verification are supplied as callbacks rather than baked
/// in: `corrupt` flips payload bits chosen by a seeded word **without**
/// refreshing any attached checksum (returning `false` when the payload
/// has nothing corruptible, e.g. a null tile), and `verify` re-derives
/// the checksum and compares it against the sealed one. The engine calls
/// `verify` at every read boundary: message delivery, local task input
/// consumption, and a final store sweep before releasing the result.
#[derive(Clone, Copy)]
pub struct IntegrityHooks<'a, P> {
    /// Flip payload bits selected by the seeded word; `true` if anything
    /// was actually mutated.
    pub corrupt: &'a dyn Fn(&mut P, u64) -> bool,
    /// Recompute the payload's checksum and compare; `false` on mismatch.
    pub verify: &'a dyn Fn(&P) -> bool,
}

/// Result of a distributed engine run.
#[derive(Debug)]
pub struct DistOutcome<P> {
    /// Final per-rank stores (dead ranks are empty).
    pub stores: Vec<HashMap<DataRef, P>>,
    /// Final task → rank assignment after crash migrations.
    pub exec_rank: Vec<usize>,
    /// Cross-rank communication volume actually incurred, including
    /// retransmissions — the real-run counterpart of the DES's modeled
    /// [`CommStats`]. On a fault-free run this equals the dataflow-edge
    /// count/bytes of the placement.
    pub comm: CommStats,
    /// What the fault plan actually did and what recovery cost (all
    /// zeros on a fault-free run).
    pub stats: FaultStats,
    /// Virtual makespan of the run (seconds).
    pub makespan: f64,
    /// Crash, recovery, and integrity events in virtual-time order.
    /// Every [`RunEvent::Crash`] that the engine survives is
    /// immediately followed by its matching [`RunEvent::Recovery`]
    /// naming the survivor that absorbed the dead rank's work; with
    /// [`IntegrityHooks`] armed, every caught checksum mismatch appends
    /// a [`RunEvent::CorruptionDetected`] and every completed lineage
    /// heal a [`RunEvent::Healed`].
    pub events: Vec<RunEvent>,
    /// Virtual-time execution trace, when
    /// [`DistConfig::record_trace`] was set.
    pub trace: Option<Trace>,
}

/// Sender-side log entry for one logical message (producer → consumer
/// for one datum). Attempts share the entry; the payload is retained
/// for crash replay.
struct MsgRec<P> {
    src: TaskId,
    dst: TaskId,
    data: DataRef,
    payload: P,
    /// Payload size (the dataflow edge's `bytes`) for volume accounting.
    bytes: u64,
    /// Send attempts so far (acks and timeouts are tagged with this).
    attempts: u32,
    /// Latest attempt was acknowledged.
    acked: bool,
    /// Gave up after `max_send_attempts`.
    abandoned: bool,
}

enum EvKind {
    /// Wake a rank: start its next ready task if idle.
    TryStart { rank: usize },
    /// A task's virtual execution time elapsed.
    TaskDone {
        rank: usize,
        task: TaskId,
        epoch: u32,
    },
    /// A message copy reaches its consumer's current rank. `copy`
    /// distinguishes a duplicated delivery (1) from the original (0) so
    /// in-flight corruption fates are rolled per copy.
    Deliver { msg: usize, attempt: u32, copy: u32 },
    /// An acknowledgement reaches the sender.
    AckArrive { msg: usize, attempt: u32 },
    /// A negative acknowledgement (checksum mismatch at delivery)
    /// reaches the sender: retransmit without waiting for the timeout.
    NackArrive { msg: usize, attempt: u32 },
    /// Retransmission timer for an attempt fired.
    Timeout { msg: usize, attempt: u32 },
    /// A scheduled at-rest bit flip (index into the plan's
    /// `store_corruptions`) strikes its target store.
    CorruptStore { idx: usize },
    /// Fail-stop crash of a rank.
    Crash { rank: usize },
}

/// Heap entry ordered by (time, insertion sequence) — the sequence makes
/// simultaneous events deterministic.
struct Ev {
    time: f64,
    seq: u64,
    kind: EvKind,
}

impl PartialEq for Ev {
    fn eq(&self, other: &Self) -> bool {
        self.seq == other.seq
    }
}
impl Eq for Ev {}
impl PartialOrd for Ev {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Ev {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // reversed: BinaryHeap is a max-heap, we want the earliest event
        other
            .time
            .total_cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

fn push_ev(heap: &mut BinaryHeap<Ev>, seq: &mut u64, time: f64, kind: EvKind) {
    *seq += 1;
    heap.push(Ev {
        time,
        seq: *seq,
        kind,
    });
}

/// Roll the fates for one send attempt of `recs[id]` and schedule its
/// delivery (possibly duplicated, possibly dropped) and its
/// retransmission timeout.
#[allow(clippy::too_many_arguments)]
fn schedule_send<P>(
    id: usize,
    recs: &mut [MsgRec<P>],
    now: f64,
    cfg: &FtConfig,
    stats: &mut FaultStats,
    heap: &mut BinaryHeap<Ev>,
    seq: &mut u64,
) {
    let rec = &mut recs[id];
    if rec.attempts >= cfg.retry.max_send_attempts {
        if !rec.abandoned {
            rec.abandoned = true;
            stats.sends_abandoned += 1;
        }
        return;
    }
    rec.attempts += 1;
    let attempt = rec.attempts;
    if attempt == 1 {
        stats.messages_sent += 1;
    } else {
        stats.retransmissions += 1;
    }
    // Every attempt puts the payload on the wire (even if it is then
    // dropped in flight), so each one counts toward volume.
    stats.bytes_sent += rec.bytes;
    let mid = id as u64;
    if cfg.plan.drops_message(mid, attempt) {
        stats.messages_dropped += 1;
    } else {
        let dt = cfg.latency + cfg.plan.delay(mid, attempt, 0);
        push_ev(
            heap,
            seq,
            now + dt,
            EvKind::Deliver {
                msg: id,
                attempt,
                copy: 0,
            },
        );
        if cfg.plan.duplicates_message(mid, attempt) {
            stats.messages_duplicated += 1;
            let dt2 = cfg.latency + cfg.plan.delay(mid, attempt, 1);
            push_ev(
                heap,
                seq,
                now + dt2,
                EvKind::Deliver {
                    msg: id,
                    attempt,
                    copy: 1,
                },
            );
        }
    }
    push_ev(
        heap,
        seq,
        now + cfg.retry.timeout_for(attempt),
        EvKind::Timeout { msg: id, attempt },
    );
}

/// Lineage healing of a corrupted datum `d` detected on live rank
/// `rank`: roll the datum back to its checkpoint (or discard it if it is
/// a produced-only value with no checkpoint), un-done its writer chain
/// so the value is recomputed in topological order from verified inputs,
/// replay the writers' logged remote inputs, and re-wake the affected
/// ranks after a backed-off detection window. Escalates to
/// [`FtError::Integrity`] once the same datum has been healed
/// `max_heal_retries` times without sticking (heal attempts are counted
/// cumulatively per datum, so repeated strikes on one tile escalate).
#[allow(clippy::too_many_arguments)]
fn heal_datum<P: Clone>(
    d: DataRef,
    rank: usize,
    now: f64,
    graph: &TaskGraph,
    ft: &FtConfig,
    checkpoint: &[HashMap<DataRef, P>],
    stores: &mut [HashMap<DataRef, P>],
    done: &mut [bool],
    done_count: &mut usize,
    cur_exec: &[usize],
    busy: &[Option<TaskId>],
    topo_pos: &[usize],
    queue: &mut [VecDeque<TaskId>],
    recs: &mut [MsgRec<P>],
    seen: &mut [HashSet<usize>],
    heal_attempts: &mut HashMap<(usize, usize), u32>,
    heal_final_writer: &mut HashMap<TaskId, DataRef>,
    stats: &mut FaultStats,
    events: &mut Vec<RunEvent>,
    heap: &mut BinaryHeap<Ev>,
    seq: &mut u64,
) -> Result<(), EngineError> {
    stats.corruptions_detected += 1;
    events.push(RunEvent::CorruptionDetected {
        rank,
        i: d.i,
        j: d.j,
        at: now,
    });
    let att = heal_attempts.entry((d.i, d.j)).or_insert(0);
    *att += 1;
    let attempts = *att;
    if attempts > ft.retry.max_heal_retries {
        return Err(EngineError::Fault(FtError::Integrity(IntegrityError {
            rank,
            data: (d.i, d.j),
            attempts: attempts - 1,
        })));
    }
    // Roll the datum back to the initial checkpoint; produced-only data
    // have no checkpoint entry and are simply discarded — the writer
    // chain regenerates them from scratch.
    let restored = match checkpoint.iter().find_map(|c| c.get(&d)).cloned() {
        Some(v) => {
            stores[rank].insert(d, v);
            true
        }
        None => {
            stores[rank].remove(&d);
            false
        }
    };
    let ntasks = graph.len();
    let mut undone: Vec<TaskId> = (0..ntasks)
        .filter(|&t| graph.spec(t).writes == Some(d) && done[t])
        .collect();
    undone.sort_unstable_by_key(|&t| topo_pos[t]);
    if let Some(&last) = undone.last() {
        heal_final_writer.insert(last, d);
    } else if restored {
        // a never-written input: the checkpoint restore *is* the heal
        stats.corruptions_healed += 1;
        events.push(RunEvent::Healed {
            rank,
            i: d.i,
            j: d.j,
            at: now,
        });
    }
    // Writers of a datum are co-located (the engine's placement
    // invariant), so the chain re-executes on one rank; the detecting
    // rank is always re-woken because its interrupted reader task must
    // be re-queued too.
    let undone_set: HashSet<TaskId> = undone.iter().copied().collect();
    let mut affected: HashSet<usize> = HashSet::new();
    affected.insert(rank);
    for &t in &undone {
        done[t] = false;
        *done_count -= 1;
        stats.tasks_reexecuted += 1;
        affected.insert(cur_exec[t]);
    }
    for &r in &affected {
        let mut q: Vec<TaskId> = (0..ntasks)
            .filter(|&t| cur_exec[t] == r && !done[t] && busy[r] != Some(t))
            .collect();
        q.sort_unstable_by_key(|&t| topo_pos[t]);
        queue[r] = q.into();
    }
    // Replay logged remote inputs into the re-executing writers: their
    // inboxes were consumed on the first run, and the receiver-side
    // dedup filter must forget the old deliveries or the replay would
    // be discarded as duplicates.
    for id in 0..recs.len() {
        let (src, dst) = (recs[id].src, recs[id].dst);
        if undone_set.contains(&dst) && !done[dst] && done[src] {
            seen[cur_exec[dst]].remove(&id);
            recs[id].acked = false;
            recs[id].abandoned = false;
            schedule_send(id, recs, now, ft, stats, heap, seq);
        }
    }
    // Detection + rollback window, backed off per heal attempt.
    let delay = ft.retry.timeout_for(attempts);
    for &r in &affected {
        push_ev(heap, seq, now + delay, EvKind::TryStart { rank: r });
    }
    Ok(())
}

/// Check that `order` is a topological permutation of `graph`'s task
/// ids. A plan computed against a *different* graph (stale cache entry,
/// wrong trim) fails here instead of deadlocking the rank queues.
fn validate_topo_order(graph: &TaskGraph, order: &[TaskId]) -> Result<(), EngineError> {
    let ntasks = graph.len();
    if order.len() != ntasks {
        return Err(EngineError::InvalidOrder {
            reason: "length does not match task count",
        });
    }
    let mut pos = vec![usize::MAX; ntasks];
    for (p, &t) in order.iter().enumerate() {
        if t >= ntasks || pos[t] != usize::MAX {
            return Err(EngineError::InvalidOrder {
                reason: "not a permutation of the task ids",
            });
        }
        pos[t] = p;
    }
    for src in 0..ntasks {
        for e in graph.successors(src) {
            if pos[src] >= pos[e.dst] {
                return Err(EngineError::InvalidOrder {
                    reason: "order violates a dependency edge",
                });
            }
        }
    }
    Ok(())
}

/// The distributed-memory engine (message-passing emulation).
///
/// Each rank owns a **private** payload store (no shared data), and every
/// dataflow edge whose producer and consumer live on different ranks
/// becomes a message carrying a *copy* of the produced payload. A wrong
/// owner function, a missing dependency edge, or an execution remap that
/// forgets to ship a tile produces a stall or a wrong answer here, not
/// silent success.
///
/// The engine is a deterministic virtual-time event loop. Each rank
/// executes its tasks in a global topological order; messages are
/// sequence-numbered, logged by the sender, deduplicated by the
/// receiver, and retransmitted on timeout with capped exponential
/// backoff; fail-stop crashes are recovered by task migration,
/// checkpoint restore and logged-message replay (see
/// [`crate::fault`]). With no fault layer configured the same loop runs
/// a perfect network: every message arrives on the first attempt and
/// the recovery machinery is dormant.
///
/// Determinism argument (the produced data must match a fault-free
/// shared-memory run *bit for bit*): kernels are deterministic, each
/// rank executes its queue in a fixed topological order, and every task
/// consumes either the rank-local version chain (writers of a datum are
/// co-located and replay from the checkpoint in order) or an exact
/// logged copy of its producer's output. Message timing, loss,
/// duplication and crashes therefore change *when* a task runs, never
/// *what* it reads. Edge locality is decided **statically** from the
/// original placement: an edge whose endpoints started on different
/// ranks stays message-carried even if a migration makes them
/// co-resident — a migrated consumer must see its producer's logged
/// payload, not whatever newer version of that datum the survivor's
/// store holds.
pub struct DistEngine<'g, 'r> {
    graph: &'g TaskGraph,
    nprocs: usize,
    exec_rank: &'r [usize],
}

impl<'g, 'r> DistEngine<'g, 'r> {
    /// An engine over `graph` with `nprocs` emulated ranks and the given
    /// task → rank execution map. Validation happens in
    /// [`run`](DistEngine::run) (so misconfiguration is a typed
    /// [`EngineError`], not a panic).
    pub fn new(graph: &'g TaskGraph, nprocs: usize, exec_rank: &'r [usize]) -> Self {
        DistEngine {
            graph,
            nprocs,
            exec_rank,
        }
    }

    /// Execute the graph: `initial[r]` is rank `r`'s initial datum store
    /// (the data distribution); `body(task, ctx)` runs the kernel on the
    /// executing rank and must `put` the produced datum into the store;
    /// its return value is the payload shipped to remote consumers
    /// (usually a clone of the written datum). `body` must be
    /// deterministic for the fault-recovery equivalence to hold.
    ///
    /// Without [`IntegrityHooks`] the corruption entries of a
    /// [`FaultPlan`](crate::fault::FaultPlan) are inert (there is no way
    /// to flip or verify bits of an opaque payload); use
    /// [`run_with_integrity`](DistEngine::run_with_integrity) to arm
    /// them.
    pub fn run<P, F>(
        &self,
        initial: Vec<HashMap<DataRef, P>>,
        cfg: &DistConfig<'_>,
        body: F,
    ) -> Result<DistOutcome<P>, EngineError>
    where
        P: Clone,
        F: Fn(TaskId, &mut RankCtx<'_, P>) -> P,
    {
        self.run_with_integrity(initial, cfg, None, body)
    }

    /// [`run`](DistEngine::run) with a silent-data-corruption integrity
    /// layer armed.
    ///
    /// When `hooks` is `Some`, the engine injects the fault plan's
    /// corruption entries (in-flight payload flips with probability
    /// `corrupt_msg_prob` per delivered copy, and the scheduled at-rest
    /// `store_corruptions`) through `hooks.corrupt`, and verifies
    /// payloads through `hooks.verify` at every read boundary:
    ///
    /// * **message delivery** — a corrupted copy is discarded before the
    ///   dedup/ack step and NACKed back to the sender, which retransmits
    ///   immediately (the attempt timeout stays armed as a backstop);
    /// * **task read boundary** — before a kernel consumes its local
    ///   inputs, every datum it reads from the rank store is verified; a
    ///   mismatch triggers lineage healing: checkpoint rollback, writer
    ///   chain re-execution with logged-message replay, and a backed-off
    ///   re-wake, escalating to [`FtError::Integrity`] after
    ///   `max_heal_retries` failed passes on the same datum;
    /// * **final sweep** — after the last task completes, every
    ///   surviving store is verified (a tile corrupted after its last
    ///   read would otherwise escape) and healed before the outcome is
    ///   released.
    ///
    /// Detection and healing are reported as
    /// [`RunEvent::CorruptionDetected`] / [`RunEvent::Healed`] and in
    /// the corruption counters of [`FaultStats`].
    pub fn run_with_integrity<P, F>(
        &self,
        initial: Vec<HashMap<DataRef, P>>,
        cfg: &DistConfig<'_>,
        hooks: Option<&IntegrityHooks<'_, P>>,
        body: F,
    ) -> Result<DistOutcome<P>, EngineError>
    where
        P: Clone,
        F: Fn(TaskId, &mut RankCtx<'_, P>) -> P,
    {
        self.run_inner(initial, cfg, None, hooks, body)
    }

    /// [`run_with_integrity`](DistEngine::run_with_integrity) with a
    /// precomputed execution order, skipping the per-run priority-key
    /// computation entirely (the numeric half of a plan-then-run
    /// split). `order` must be a topological permutation of the task
    /// ids — typically the output of
    /// [`dist_priority_order`] over the same graph, policy and rank
    /// map, computed once at plan
    /// time. The order is validated (length, permutation, edge
    /// direction) and rejected as [`EngineError::InvalidOrder`] rather
    /// than risking a front-queue deadlock. `cfg.sched` is ignored:
    /// the supplied order *is* the schedule.
    pub fn run_planned<P, F>(
        &self,
        initial: Vec<HashMap<DataRef, P>>,
        cfg: &DistConfig<'_>,
        order: &[TaskId],
        hooks: Option<&IntegrityHooks<'_, P>>,
        body: F,
    ) -> Result<DistOutcome<P>, EngineError>
    where
        P: Clone,
        F: Fn(TaskId, &mut RankCtx<'_, P>) -> P,
    {
        self.run_inner(initial, cfg, Some(order), hooks, body)
    }

    fn run_inner<P, F>(
        &self,
        initial: Vec<HashMap<DataRef, P>>,
        cfg: &DistConfig<'_>,
        precomputed: Option<&[TaskId]>,
        hooks: Option<&IntegrityHooks<'_, P>>,
        body: F,
    ) -> Result<DistOutcome<P>, EngineError>
    where
        P: Clone,
        F: Fn(TaskId, &mut RankCtx<'_, P>) -> P,
    {
        let graph = self.graph;
        let nprocs = self.nprocs;
        let exec_rank = self.exec_rank;
        let ntasks = graph.len();

        if exec_rank.len() != ntasks {
            return Err(EngineError::RankMapLength {
                expected: ntasks,
                got: exec_rank.len(),
            });
        }
        if initial.len() != nprocs {
            return Err(EngineError::StoreCount {
                expected: nprocs,
                got: initial.len(),
            });
        }
        // A precomputed order replaces both the cycle check and the
        // policy keying; otherwise apply the scheduling policy as a
        // priority-driven topological order (front-only rank queues
        // deadlock under any order that is not globally topological —
        // see [`DistConfig::sched`]).
        let order = match precomputed {
            Some(order) => {
                validate_topo_order(graph, order)?;
                order.to_vec()
            }
            None => match cfg.sched {
                None => graph.topological_order().ok_or(EngineError::Cycle)?,
                Some(policy) => dist_priority_order(graph, policy, exec_rank)?,
            },
        };
        for (t, &r) in exec_rank.iter().enumerate() {
            if r >= nprocs {
                return Err(EngineError::InvalidRank {
                    task: t,
                    rank: r,
                    nprocs,
                });
            }
        }
        let fault_free;
        let ft = match cfg.ft {
            Some(ft) => ft,
            None => {
                fault_free = FtConfig::fault_free();
                &fault_free
            }
        };
        for c in &ft.plan.crashes {
            if c.rank >= nprocs {
                return Err(EngineError::InvalidCrashRank {
                    rank: c.rank,
                    nprocs,
                });
            }
        }
        for c in &ft.plan.store_corruptions {
            if c.rank >= nprocs {
                return Err(EngineError::InvalidCrashRank {
                    rank: c.rank,
                    nprocs,
                });
            }
        }

        let mut topo_pos = vec![0usize; ntasks];
        for (pos, &t) in order.iter().enumerate() {
            topo_pos[t] = pos;
        }

        // Static edge classification (see type-level docs: locality is
        // the *original* placement, by design).
        let mut local_preds: Vec<Vec<TaskId>> = vec![Vec::new(); ntasks];
        // Data each task reads from its rank-local store (the integrity
        // layer verifies these at the task's read boundary).
        let mut local_reads: Vec<Vec<DataRef>> = vec![Vec::new(); ntasks];
        let mut remote_preds: Vec<Vec<(TaskId, DataRef)>> = vec![Vec::new(); ntasks];
        let mut remote_sends: Vec<Vec<(TaskId, DataRef, u64)>> = vec![Vec::new(); ntasks];
        for src in 0..ntasks {
            for e in graph.successors(src) {
                if exec_rank[e.dst] == exec_rank[src] {
                    local_preds[e.dst].push(src);
                    if !local_reads[e.dst].contains(&e.data) {
                        local_reads[e.dst].push(e.data);
                    }
                } else {
                    remote_preds[e.dst].push((src, e.data));
                    remote_sends[src].push((e.dst, e.data, e.bytes));
                }
            }
        }

        // Mutable run state.
        let mut cur_exec = exec_rank.to_vec();
        let mut alive = vec![true; nprocs];
        let mut epoch = vec![0u32; nprocs];
        let mut busy: Vec<Option<TaskId>> = vec![None; nprocs];
        let mut done = vec![false; ntasks];
        let mut done_count = 0usize;
        let mut kernel_attempts = vec![0u32; ntasks];
        let mut inbox: Vec<HashMap<(TaskId, DataRef), P>> =
            (0..ntasks).map(|_| HashMap::new()).collect();
        let mut seen: Vec<HashSet<usize>> = vec![HashSet::new(); nprocs];
        let mut queue: Vec<VecDeque<TaskId>> = vec![VecDeque::new(); nprocs];
        for &t in &order {
            queue[cur_exec[t]].push_back(t);
        }

        // Checkpoint of every rank's initial data — the recovery source
        // for data whose owner dies (a real deployment would re-generate
        // or re-load it; the cost model charges the re-execution
        // instead).
        let checkpoint: Vec<HashMap<DataRef, P>> = initial.clone();
        let mut owned_ckpt: Vec<Vec<usize>> = (0..nprocs).map(|r| vec![r]).collect();
        let mut stores = initial;

        let mut recs: Vec<MsgRec<P>> = Vec::new();
        let mut rec_index: HashMap<(TaskId, TaskId, DataRef), usize> = HashMap::new();

        let mut stats = FaultStats::default();
        let mut events: Vec<RunEvent> = Vec::new();
        let mut trace = if cfg.record_trace {
            Some(Trace::default())
        } else {
            None
        };
        let mut heap: BinaryHeap<Ev> = BinaryHeap::new();
        let mut seq = 0u64;
        // Heal attempts per datum and the pending heal's final writer
        // (whose re-completion marks the datum healed).
        let mut heal_attempts: HashMap<(usize, usize), u32> = HashMap::new();
        let mut heal_final_writer: HashMap<TaskId, DataRef> = HashMap::new();
        for c in &ft.plan.crashes {
            push_ev(&mut heap, &mut seq, c.at, EvKind::Crash { rank: c.rank });
        }
        for (idx, c) in ft.plan.store_corruptions.iter().enumerate() {
            push_ev(&mut heap, &mut seq, c.at, EvKind::CorruptStore { idx });
        }
        for r in 0..nprocs {
            push_ev(&mut heap, &mut seq, 0.0, EvKind::TryStart { rank: r });
        }

        let mut now = 0.0_f64;
        'event_loop: loop {
            while let Some(ev) = heap.pop() {
                if done_count == ntasks {
                    break;
                }
                now = ev.time;
                match ev.kind {
                    EvKind::TryStart { rank } => {
                        if !alive[rank] || busy[rank].is_some() {
                            continue;
                        }
                        while queue[rank]
                            .front()
                            .is_some_and(|&t| done[t] || cur_exec[t] != rank)
                        {
                            queue[rank].pop_front();
                        }
                        let Some(&t) = queue[rank].front() else {
                            continue;
                        };
                        let ready = local_preds[t].iter().all(|&p| done[p])
                            && remote_preds[t].iter().all(|key| inbox[t].contains_key(key));
                        if !ready {
                            continue; // re-woken by the delivery that unblocks it
                        }
                        queue[rank].pop_front();
                        busy[rank] = Some(t);
                        push_ev(
                            &mut heap,
                            &mut seq,
                            now + ft.task_time,
                            EvKind::TaskDone {
                                rank,
                                task: t,
                                epoch: epoch[rank],
                            },
                        );
                    }
                    EvKind::TaskDone {
                        rank,
                        task: t,
                        epoch: e,
                    } => {
                        if !alive[rank] || e != epoch[rank] {
                            continue; // the rank died mid-execution
                        }
                        busy[rank] = None;
                        if ft.plan.kernel_fails(t, kernel_attempts[t]) {
                            kernel_attempts[t] += 1;
                            stats.kernel_failures += 1;
                            if kernel_attempts[t] > ft.retry.max_kernel_retries {
                                return Err(EngineError::Fault(FtError::KernelRetriesExhausted {
                                    task: t,
                                }));
                            }
                            queue[rank].push_front(t); // retry in place
                            push_ev(&mut heap, &mut seq, now, EvKind::TryStart { rank });
                            continue;
                        }
                        // Read-boundary integrity check: verify every datum
                        // this task is about to consume from the local
                        // store (including the tile it updates in place)
                        // before the kernel runs on it.
                        if let Some(h) = hooks {
                            let bad = local_reads[t]
                                .iter()
                                .copied()
                                .chain(graph.spec(t).writes)
                                .find(|d| stores[rank].get(d).is_some_and(|p| !(h.verify)(p)));
                            if let Some(d) = bad {
                                heal_datum(
                                    d,
                                    rank,
                                    now,
                                    graph,
                                    ft,
                                    &checkpoint,
                                    &mut stores,
                                    &mut done,
                                    &mut done_count,
                                    &cur_exec,
                                    &busy,
                                    &topo_pos,
                                    &mut queue,
                                    &mut recs,
                                    &mut seen,
                                    &mut heal_attempts,
                                    &mut heal_final_writer,
                                    &mut stats,
                                    &mut events,
                                    &mut heap,
                                    &mut seq,
                                )?;
                                continue;
                            }
                        }
                        let remote_in = std::mem::take(&mut inbox[t]);
                        let mut ctx = RankCtx {
                            rank,
                            store: &mut stores[rank],
                            remote_inputs: remote_in,
                        };
                        let produced = body(t, &mut ctx);
                        done[t] = true;
                        done_count += 1;
                        if let Some(reg) = cfg.metrics {
                            reg.incr(rank, Counter::TasksExecuted);
                            reg.record_class_seconds(rank, graph.spec(t).class, ft.task_time);
                        }
                        if let Some(hd) = heal_final_writer.remove(&t) {
                            stats.corruptions_healed += 1;
                            events.push(RunEvent::Healed {
                                rank,
                                i: hd.i,
                                j: hd.j,
                                at: now,
                            });
                        }
                        if let Some(tr) = trace.as_mut() {
                            let spec = graph.spec(t);
                            let start = now - ft.task_time;
                            tr.push_record(TaskRecord {
                                task: t,
                                class: spec.class,
                                proc: rank,
                                data: spec.writes,
                                // Readiness is not tracked per attempt in
                                // virtual time; queued == start means zero
                                // reported queue-wait, which Trace documents.
                                queued: start,
                                start,
                                end: now,
                            });
                        }
                        for &(dst, data, bytes) in &remote_sends[t] {
                            if done[dst] {
                                continue; // re-execution; the consumer already has it
                            }
                            // A task with several logical outputs (a fused
                            // panel batch writes one tile per member) returns
                            // only one payload, so each edge ships the datum
                            // it actually names: the store holds every
                            // member's `put`, and the returned payload covers
                            // the task's own `writes` (the single-output case
                            // and every pre-batching caller, bit-for-bit).
                            let payload = if graph.spec(t).writes.is_some_and(|w| w != data) {
                                stores[rank]
                                    .get(&data)
                                    .cloned()
                                    .unwrap_or_else(|| produced.clone())
                            } else {
                                produced.clone()
                            };
                            let key = (t, dst, data);
                            let id = match rec_index.get(&key) {
                                Some(&id) => {
                                    // re-send through the existing log entry
                                    recs[id].payload = payload;
                                    recs[id].acked = false;
                                    recs[id].abandoned = false;
                                    id
                                }
                                None => {
                                    recs.push(MsgRec {
                                        src: t,
                                        dst,
                                        data,
                                        payload,
                                        bytes,
                                        attempts: 0,
                                        acked: false,
                                        abandoned: false,
                                    });
                                    rec_index.insert(key, recs.len() - 1);
                                    recs.len() - 1
                                }
                            };
                            schedule_send(id, &mut recs, now, ft, &mut stats, &mut heap, &mut seq);
                        }
                        push_ev(&mut heap, &mut seq, now, EvKind::TryStart { rank });
                    }
                    EvKind::Deliver { msg, attempt, copy } => {
                        let (src, dst, data) = (recs[msg].src, recs[msg].dst, recs[msg].data);
                        let dst_rank = cur_exec[dst];
                        if !alive[dst_rank] {
                            continue; // delivered into a dead NIC; replay handles it
                        }
                        // In-flight corruption: flip a payload bit on this
                        // copy and let the receiver's checksum decide. A
                        // detected mismatch is discarded before the dedup/
                        // ack step and NACKed back to the sender (integrity
                        // control messages are modeled as loss-free; the
                        // attempt timeout stays armed as a backstop).
                        let mut incoming: Option<P> = None;
                        if let Some(h) = hooks {
                            if ft.plan.corrupts_message(msg as u64, attempt, copy) {
                                let mut p = recs[msg].payload.clone();
                                if (h.corrupt)(&mut p, ft.plan.corruption_bits(msg as u64)) {
                                    stats.messages_corrupted += 1;
                                    if !(h.verify)(&p) {
                                        stats.corruptions_detected += 1;
                                        stats.nacks_sent += 1;
                                        events.push(RunEvent::CorruptionDetected {
                                            rank: dst_rank,
                                            i: data.i,
                                            j: data.j,
                                            at: now,
                                        });
                                        push_ev(
                                            &mut heap,
                                            &mut seq,
                                            now + ft.latency,
                                            EvKind::NackArrive { msg, attempt },
                                        );
                                        continue;
                                    }
                                    // an undetected flip is delivered as-is
                                    // (unreachable with exact digests; a
                                    // weaker checksum would pay for it with
                                    // a wrong result)
                                    incoming = Some(p);
                                }
                            }
                        }
                        if seen[dst_rank].contains(&msg) {
                            stats.duplicates_ignored += 1;
                        } else {
                            seen[dst_rank].insert(msg);
                            if !done[dst] {
                                let payload = incoming.unwrap_or_else(|| recs[msg].payload.clone());
                                inbox[dst].insert((src, data), payload);
                                push_ev(
                                    &mut heap,
                                    &mut seq,
                                    now,
                                    EvKind::TryStart { rank: dst_rank },
                                );
                            }
                        }
                        // every verified delivery (even a dedup'd one) is
                        // acknowledged
                        if ft.plan.drops_ack(msg as u64, attempt) {
                            stats.acks_dropped += 1;
                        } else {
                            push_ev(
                                &mut heap,
                                &mut seq,
                                now + ft.latency,
                                EvKind::AckArrive { msg, attempt },
                            );
                        }
                    }
                    EvKind::AckArrive { msg, attempt } => {
                        // attempt-tagged: a stale ack must not cancel the timer
                        // of a newer attempt (e.g. after a crash replay)
                        if attempt == recs[msg].attempts {
                            recs[msg].acked = true;
                        }
                    }
                    EvKind::NackArrive { msg, attempt } => {
                        let rec = &recs[msg];
                        if rec.acked || rec.abandoned || attempt != rec.attempts || done[rec.dst] {
                            continue; // a newer attempt is already in flight (or moot)
                        }
                        let src_rank = cur_exec[rec.src];
                        if !alive[src_rank] || !done[rec.src] {
                            continue; // sender died; its re-execution re-sends
                        }
                        schedule_send(msg, &mut recs, now, ft, &mut stats, &mut heap, &mut seq);
                    }
                    EvKind::Timeout { msg, attempt } => {
                        let rec = &recs[msg];
                        if rec.acked || rec.abandoned || attempt != rec.attempts || done[rec.dst] {
                            continue;
                        }
                        let src_rank = cur_exec[rec.src];
                        if !alive[src_rank] || !done[rec.src] {
                            continue; // sender died; its re-execution re-sends
                        }
                        schedule_send(msg, &mut recs, now, ft, &mut stats, &mut heap, &mut seq);
                    }
                    EvKind::CorruptStore { idx } => {
                        let c = ft.plan.store_corruptions[idx];
                        if !alive[c.rank] {
                            continue; // the crash already destroyed the store
                        }
                        // Without hooks there is no way to flip bits of an
                        // opaque payload: the strike is inert.
                        let Some(h) = hooks else { continue };
                        let d = DataRef { i: c.i, j: c.j };
                        if let Some(p) = stores[c.rank].get_mut(&d) {
                            if (h.corrupt)(p, ft.plan.corruption_bits((1u64 << 32) + idx as u64)) {
                                stats.store_corruptions_injected += 1;
                            }
                        }
                    }
                    EvKind::Crash { rank: c } => {
                        if !alive[c] {
                            continue;
                        }
                        alive[c] = false;
                        stats.crashes += 1;
                        events.push(RunEvent::Crash { rank: c, at: now });
                        epoch[c] += 1; // invalidates the in-flight TaskDone
                        busy[c] = None;
                        let Some(d) = (1..nprocs).map(|k| (c + k) % nprocs).find(|&r| alive[r])
                        else {
                            return Err(EngineError::Fault(FtError::AllRanksCrashed));
                        };
                        events.push(RunEvent::Recovery {
                            failed: c,
                            survivor: d,
                            at: now,
                        });
                        // migrate every task of the dead rank to the survivor
                        let mut migrated: HashSet<TaskId> = HashSet::new();
                        for t in 0..ntasks {
                            if cur_exec[t] == c {
                                cur_exec[t] = d;
                                migrated.insert(t);
                                if done[t] {
                                    done[t] = false;
                                    done_count -= 1;
                                    stats.tasks_reexecuted += 1;
                                }
                                inbox[t].clear(); // received inputs died with c
                            }
                        }
                        stats.tasks_migrated += migrated.len();
                        stores[c].clear();
                        seen[c].clear();
                        queue[c].clear();
                        // the survivor restores the dead rank's initial data
                        // (including any it had itself inherited earlier)
                        let inherited = std::mem::take(&mut owned_ckpt[c]);
                        for &o in &inherited {
                            for (k, v) in &checkpoint[o] {
                                stores[d].insert(*k, v.clone());
                            }
                        }
                        owned_ckpt[d].extend(inherited);
                        // rebuild the survivor's queue in topological order
                        let mut q: Vec<TaskId> = (0..ntasks)
                            .filter(|&t| cur_exec[t] == d && !done[t] && busy[d] != Some(t))
                            .collect();
                        q.sort_unstable_by_key(|&t| topo_pos[t]);
                        queue[d] = q.into();
                        // replay logged messages from surviving completed
                        // producers to the wiped, migrated consumers
                        for id in 0..recs.len() {
                            let (src, dst) = (recs[id].src, recs[id].dst);
                            if migrated.contains(&dst) && !done[dst] && done[src] {
                                recs[id].acked = false;
                                recs[id].abandoned = false;
                                schedule_send(
                                    id, &mut recs, now, ft, &mut stats, &mut heap, &mut seq,
                                );
                            }
                        }
                        push_ev(&mut heap, &mut seq, now, EvKind::TryStart { rank: d });
                    }
                }
            }

            if done_count < ntasks {
                return Err(EngineError::Fault(FtError::Stalled {
                    pending: ntasks - done_count,
                }));
            }
            // Final integrity sweep: a tile corrupted *after* its last
            // read has no later read boundary to catch it, so verify
            // every surviving store and heal before releasing the
            // result. Healing re-enters the event loop.
            let Some(h) = hooks else { break 'event_loop };
            let mut bad: Vec<(usize, DataRef)> = Vec::new();
            for r in 0..nprocs {
                if !alive[r] {
                    continue;
                }
                for (d, p) in &stores[r] {
                    if !(h.verify)(p) {
                        bad.push((r, *d));
                    }
                }
            }
            if bad.is_empty() {
                break 'event_loop;
            }
            bad.sort_unstable_by_key(|&(r, d)| (r, d.i, d.j)); // deterministic heal order
            for (r, d) in bad {
                heal_datum(
                    d,
                    r,
                    now,
                    graph,
                    ft,
                    &checkpoint,
                    &mut stores,
                    &mut done,
                    &mut done_count,
                    &cur_exec,
                    &busy,
                    &topo_pos,
                    &mut queue,
                    &mut recs,
                    &mut seen,
                    &mut heal_attempts,
                    &mut heal_final_writer,
                    &mut stats,
                    &mut events,
                    &mut heap,
                    &mut seq,
                )?;
            }
        }

        let comm = CommStats {
            bytes: stats.bytes_sent,
            messages: (stats.messages_sent + stats.retransmissions) as u64,
        };
        // Fold the run's communication / fault / integrity totals into
        // the registry (shard 0: these are whole-run aggregates).
        if let Some(reg) = cfg.metrics {
            reg.add(0, Counter::CommBytes, comm.bytes);
            reg.add(0, Counter::CommMessages, comm.messages);
            reg.add(0, Counter::Retransmissions, stats.retransmissions as u64);
            reg.add(0, Counter::MessagesDropped, stats.messages_dropped as u64);
            reg.add(0, Counter::DuplicatesIgnored, stats.duplicates_ignored as u64);
            reg.add(0, Counter::Crashes, stats.crashes as u64);
            reg.add(0, Counter::TasksMigrated, stats.tasks_migrated as u64);
            reg.add(0, Counter::TasksReexecuted, stats.tasks_reexecuted as u64);
            reg.add(0, Counter::KernelFailures, stats.kernel_failures as u64);
            reg.add(0, Counter::CorruptionsDetected, stats.corruptions_detected as u64);
            reg.add(0, Counter::CorruptionsHealed, stats.corruptions_healed as u64);
            reg.add(0, Counter::NacksSent, stats.nacks_sent as u64);
        }
        Ok(DistOutcome {
            stores,
            exec_rank: cur_exec,
            comm,
            stats,
            makespan: now,
            events,
            trace,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::FaultPlan;
    use crate::graph::{TaskClass, TaskSpec};
    use std::sync::atomic::{AtomicU64, AtomicUsize};
    use std::sync::Mutex;

    fn spec(priority: usize) -> TaskSpec {
        TaskSpec {
            class: TaskClass::Other,
            priority,
            writes: None,
            flops: 0.0,
        }
    }

    fn chain(n: usize) -> TaskGraph {
        let mut g = TaskGraph::new();
        for i in 0..n {
            g.add_task(spec(i));
        }
        for i in 0..n - 1 {
            g.add_edge(i, i + 1, DataRef { i: 0, j: 0 }, 0);
        }
        g
    }

    /// Chain 0 → 1 → … → n−1 must execute in exact order.
    #[test]
    fn chain_executes_in_order() {
        let g = chain(100);
        let order = Mutex::new(Vec::new());
        Engine::new(&g)
            .run(&EngineConfig::new(4), |_w, t| order.lock().unwrap().push(t))
            .unwrap();
        let order = order.into_inner().unwrap();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    /// Every task runs exactly once, even with wide fan-out.
    #[test]
    fn fanout_runs_each_task_once() {
        let width = 500;
        let mut g = TaskGraph::new();
        let root = g.add_task(spec(0));
        let sink = g.add_task(spec(2));
        for _ in 0..width {
            let mid = g.add_task(spec(1));
            g.add_edge(root, mid, DataRef { i: 0, j: 0 }, 0);
            g.add_edge(mid, sink, DataRef { i: 0, j: 0 }, 0);
        }
        let counts: Vec<AtomicUsize> = (0..g.len()).map(|_| AtomicUsize::new(0)).collect();
        Engine::new(&g)
            .run(&EngineConfig::new(8), |_w, t| {
                counts[t].fetch_add(1, Ordering::Relaxed);
            })
            .unwrap();
        for (t, c) in counts.iter().enumerate() {
            assert_eq!(
                c.load(Ordering::Relaxed),
                1,
                "task {t} ran wrong number of times"
            );
        }
    }

    /// Dependencies are respected: a parent's effect is visible to children.
    #[test]
    fn dependency_happens_before() {
        // Layered graph: each layer sums the previous layer's value + 1.
        let layers = 50;
        let width = 8;
        let mut g = TaskGraph::new();
        let mut prev: Vec<TaskId> = (0..width).map(|_| g.add_task(spec(0))).collect();
        for l in 1..layers {
            let cur: Vec<TaskId> = (0..width).map(|_| g.add_task(spec(l))).collect();
            for &p in &prev {
                for &c in &cur {
                    g.add_edge(p, c, DataRef { i: 0, j: 0 }, 0);
                }
            }
            prev = cur;
        }
        let level = AtomicU64::new(0);
        let violations = AtomicUsize::new(0);
        // Record the maximum "wave" seen; a child running before any parent
        // would observe a lower wave than required.
        let task_layer: Vec<usize> = (0..g.len()).map(|t| g.spec(t).priority).collect();
        Engine::new(&g)
            .run(&EngineConfig::new(8), |_w, t| {
                let seen = level.load(Ordering::SeqCst);
                if (task_layer[t] as u64) < seen.saturating_sub(1) {
                    violations.fetch_add(1, Ordering::SeqCst);
                }
                level.fetch_max(task_layer[t] as u64, Ordering::SeqCst);
            })
            .unwrap();
        assert_eq!(violations.load(Ordering::SeqCst), 0);
    }

    #[test]
    fn empty_graph_ok() {
        let g = TaskGraph::new();
        Engine::new(&g)
            .run(&EngineConfig::new(4), |_w, _t| panic!("no tasks"))
            .unwrap();
    }

    #[test]
    fn single_thread_ok() {
        let mut g = TaskGraph::new();
        let a = g.add_task(spec(0));
        let b = g.add_task(spec(1));
        g.add_edge(a, b, DataRef { i: 0, j: 0 }, 0);
        let order = Mutex::new(Vec::new());
        Engine::new(&g)
            .run(&EngineConfig::new(1), |_w, t| order.lock().unwrap().push(t))
            .unwrap();
        assert_eq!(order.into_inner().unwrap(), vec![a, b]);
    }

    /// A panicking kernel must not hang the pool: the run drains, every
    /// task is retired, and the first panic is reported — with and
    /// without an external cancellation token, which observes the drain.
    #[test]
    fn panic_cancels_and_drains() {
        let g = chain(64);
        let ran = AtomicUsize::new(0);
        let cancel = AtomicBool::new(false);
        let err = Engine::new(&g)
            .run(&EngineConfig::new(4).with_cancel(&cancel), |_w, t| {
                ran.fetch_add(1, Ordering::SeqCst);
                if t == 5 {
                    panic!("kernel exploded on task {t}");
                }
            })
            .unwrap_err();
        let EngineError::Panic(p) = err else {
            panic!("expected a panic error, got {err:?}")
        };
        assert_eq!(p.task, 5);
        assert!(p.message.contains("exploded"), "{}", p.message);
        assert!(
            cancel.load(Ordering::SeqCst),
            "the external token must observe the panic"
        );
        // Tasks after the panic drained without running their kernels.
        assert_eq!(ran.load(Ordering::SeqCst), 6);
    }

    /// Without a token ([`NoCancel`]) a panic still drains via the
    /// engine's internal flag.
    #[test]
    fn panic_drains_without_external_token() {
        let g = chain(64);
        let ran = AtomicUsize::new(0);
        let err = Engine::new(&g)
            .run(&EngineConfig::new(4), |_w, t| {
                ran.fetch_add(1, Ordering::SeqCst);
                if t == 5 {
                    panic!("kernel exploded on task {t}");
                }
            })
            .unwrap_err();
        assert!(
            matches!(err, EngineError::Panic(ref p) if p.task == 5),
            "{err:?}"
        );
        assert_eq!(ran.load(Ordering::SeqCst), 6);
    }

    /// Caller-side cancellation stops kernels but still terminates Ok.
    #[test]
    fn caller_cancel_skips_remaining_kernels() {
        let g = chain(64);
        let ran = AtomicUsize::new(0);
        let cancel = AtomicBool::new(false);
        Engine::new(&g)
            .run(&EngineConfig::new(4).with_cancel(&cancel), |_w, t| {
                ran.fetch_add(1, Ordering::SeqCst);
                if t == 9 {
                    cancel.store(true, Ordering::SeqCst);
                }
            })
            .unwrap();
        assert_eq!(ran.load(Ordering::SeqCst), 10);
    }

    /// Observed execution: with the `obs` feature on, every task gets a
    /// span with sane timestamps; with it off, the hooks are no-ops and
    /// the report is empty — either way the run itself is unaffected.
    #[test]
    fn observed_execution_captures_spans() {
        let g = chain(32);
        let obs = ExecObs::new(g.len(), 2);
        let ran = AtomicUsize::new(0);
        Engine::new(&g)
            .run(&EngineConfig::new(2).with_obs(&obs), |_wid, _t| {
                ran.fetch_add(1, Ordering::Relaxed);
            })
            .unwrap();
        assert_eq!(ran.load(Ordering::Relaxed), 32);
        let rep = obs.finish(&g);
        if ExecObs::enabled() {
            assert_eq!(rep.trace.records.len(), 32);
            for r in &rep.trace.records {
                assert!(r.queued <= r.start + 1e-12);
                assert!(r.start <= r.end);
                assert!(r.proc < 2);
            }
            // Records come back sorted by end time.
            for w in rep.trace.records.windows(2) {
                assert!(w[0].end <= w[1].end);
            }
            assert_eq!(rep.steals.len(), 2);
        } else {
            assert!(rep.trace.records.is_empty());
            assert!(rep.steals.is_empty());
        }
    }

    /// An optional observer threads through as `Option<&ExecObs>`.
    #[test]
    fn optional_observer_composes() {
        let g = chain(16);
        let obs: Option<ExecObs> = None;
        Engine::new(&g)
            .run(&EngineConfig::new(2).with_obs(obs.as_ref()), |_w, _t| {})
            .unwrap();
    }

    #[test]
    fn cycle_is_a_typed_error() {
        let mut g = TaskGraph::new();
        let a = g.add_task(spec(0));
        let b = g.add_task(spec(0));
        g.add_edge(a, b, DataRef { i: 0, j: 0 }, 0);
        g.add_edge(b, a, DataRef { i: 0, j: 0 }, 0);
        let err = Engine::new(&g)
            .run(&EngineConfig::new(2), |_w, _t| {})
            .unwrap_err();
        assert_eq!(err, EngineError::Cycle);
        assert!(format!("{err}").contains("cycle"));
    }

    // ---------------- distributed engine ----------------

    fn dspec(priority: usize, writes: DataRef) -> TaskSpec {
        TaskSpec {
            class: TaskClass::Other,
            priority,
            writes: Some(writes),
            flops: 0.0,
        }
    }

    fn dist_chain(n: usize) -> TaskGraph {
        let mut g = TaskGraph::new();
        for k in 0..n {
            g.add_task(dspec(k, DataRef { i: k, j: 0 }));
        }
        for k in 0..n - 1 {
            g.add_edge(k, k + 1, DataRef { i: k, j: 0 }, 8);
        }
        g
    }

    fn run_chain(
        n: usize,
        nprocs: usize,
        cfg: &DistConfig<'_>,
    ) -> Result<DistOutcome<i64>, EngineError> {
        let g = dist_chain(n);
        let exec: Vec<usize> = (0..n).map(|k| k % nprocs).collect();
        let initial: Vec<HashMap<DataRef, i64>> = vec![HashMap::new(); nprocs];
        DistEngine::new(&g, nprocs, &exec).run(initial, cfg, |t, ctx| {
            let v = if t == 0 {
                1
            } else {
                *ctx.get(Some(t - 1), DataRef { i: t - 1, j: 0 }) + 1
            };
            ctx.put(DataRef { i: t, j: 0 }, v);
            v
        })
    }

    fn chain_result(out: &DistOutcome<i64>, n: usize) -> i64 {
        let last = n - 1;
        out.stores[out.exec_rank[last]][&DataRef { i: last, j: 0 }]
    }

    /// Perfect-network run: correct data, exact comm accounting (one
    /// message per cross-rank edge), zero fault activity.
    #[test]
    fn fault_free_chain_counts_comm() {
        let n = 12;
        let out = run_chain(n, 4, &DistConfig::default()).unwrap();
        assert_eq!(chain_result(&out, n), n as i64);
        assert_eq!(out.comm.messages, (n - 1) as u64);
        assert_eq!(out.comm.bytes, 8 * (n - 1) as u64);
        assert_eq!(out.stats.retransmissions, 0);
        assert_eq!(out.stats.crashes, 0);
        assert!(out.makespan > 0.0);
        assert!(out.trace.is_none(), "trace must be opt-in");
    }

    /// The virtual-time trace capability records one span per task on
    /// the executing rank, compatible with the shared Trace toolkit.
    #[test]
    fn dist_trace_capability_records_every_task() {
        let n = 12;
        let nprocs = 4;
        let cfg = DistConfig {
            ft: None,
            record_trace: true,
            sched: None,
            metrics: None,
        };
        let out = run_chain(n, nprocs, &cfg).unwrap();
        let trace = out.trace.expect("trace was requested");
        assert_eq!(trace.records.len(), n);
        for r in &trace.records {
            assert!(r.proc < nprocs);
            assert!(r.start <= r.end);
            assert!(r.end <= out.makespan + 1e-12);
        }
        // Busy time partitions across ranks like any other trace.
        let busy: f64 = trace.busy_per_proc(nprocs).iter().sum();
        assert!(
            (busy - n as f64).abs() < 1e-9,
            "1s per task in virtual time, got {busy}"
        );
    }

    /// FT + trace compose: a crashed-and-recovered run records spans for
    /// the re-executions too.
    #[test]
    fn dist_trace_composes_with_fault_layer() {
        use crate::fault::FaultPlan;
        let ft = FtConfig::with_plan(FaultPlan::new(1).with_crash(1, 6.0));
        let cfg = DistConfig {
            ft: Some(&ft),
            record_trace: true,
            sched: None,
            metrics: None,
        };
        let n = 12;
        let out = run_chain(n, 4, &cfg).unwrap();
        assert_eq!(chain_result(&out, n), n as i64);
        assert_eq!(out.stats.crashes, 1);
        let trace = out.trace.expect("trace was requested");
        assert!(
            trace.records.len() >= n,
            "re-executed tasks add records: {} < {n}",
            trace.records.len()
        );
        assert!(
            out.comm.messages > out.stats.messages_sent as u64 - 1,
            "comm counts include retransmissions"
        );
    }

    // ---------------- integrity layer ----------------

    /// Self-checking payload for integrity tests: value + mirror. A
    /// corruption flips a bit of the value only, so `verify` (value ==
    /// mirror) catches every injected flip — the engine-level analogue
    /// of a sealed tile digest.
    fn flip_value(p: &mut (i64, i64), r: u64) -> bool {
        p.0 ^= 1 << (r % 63);
        true
    }

    fn mirror_ok(p: &(i64, i64)) -> bool {
        p.0 == p.1
    }

    fn run_sealed_chain(
        n: usize,
        nprocs: usize,
        cfg: &DistConfig<'_>,
    ) -> Result<DistOutcome<(i64, i64)>, EngineError> {
        let g = dist_chain(n);
        let exec: Vec<usize> = (0..n).map(|k| k % nprocs).collect();
        let initial: Vec<HashMap<DataRef, (i64, i64)>> = vec![HashMap::new(); nprocs];
        let hooks = IntegrityHooks {
            corrupt: &flip_value,
            verify: &mirror_ok,
        };
        DistEngine::new(&g, nprocs, &exec).run_with_integrity(
            initial,
            cfg,
            Some(&hooks),
            |t, ctx| {
                let v = if t == 0 {
                    1
                } else {
                    ctx.get(Some(t - 1), DataRef { i: t - 1, j: 0 }).0 + 1
                };
                ctx.put(DataRef { i: t, j: 0 }, (v, v));
                (v, v)
            },
        )
    }

    /// A store strike between a writer and its local reader is caught at
    /// the reader's read boundary and healed by re-executing the writer;
    /// the final data matches the fault-free run bit for bit.
    #[test]
    fn store_corruption_is_detected_at_read_boundary_and_healed() {
        let n = 4;
        let clean = run_sealed_chain(n, 1, &DistConfig::default()).unwrap();
        let ft = FtConfig::with_plan(FaultPlan::new(5).with_store_corruption(0, 1, 0, 2.5));
        let cfg = DistConfig {
            ft: Some(&ft),
            record_trace: false,
            sched: None,
            metrics: None,
        };
        let out = run_sealed_chain(n, 1, &cfg).unwrap();
        assert_eq!(out.stats.store_corruptions_injected, 1);
        assert_eq!(out.stats.corruptions_detected, 1);
        assert_eq!(out.stats.corruptions_healed, 1);
        assert_eq!(out.stats.tasks_reexecuted, 1);
        assert_eq!(
            out.stores, clean.stores,
            "healed data must be bit-identical"
        );
        assert!(out.makespan > clean.makespan, "healing costs virtual time");
        assert!(out.events.iter().any(|e| matches!(
            e,
            RunEvent::CorruptionDetected {
                rank: 0,
                i: 1,
                j: 0,
                ..
            }
        )));
        assert!(out.events.iter().any(|e| matches!(
            e,
            RunEvent::Healed {
                rank: 0,
                i: 1,
                j: 0,
                ..
            }
        )));
    }

    /// A tile corrupted after its last read has no later read boundary;
    /// the final store sweep catches and heals it before the outcome is
    /// released.
    #[test]
    fn final_sweep_heals_corruption_after_last_read() {
        let n = 4;
        let nprocs = 2;
        let clean = run_sealed_chain(n, nprocs, &DistConfig::default()).unwrap();
        // (0, 0) on rank 0 is only ever read remotely (by task 1 via a
        // logged message), so a strike after task 0 completes is
        // invisible to every read boundary.
        let ft = FtConfig::with_plan(FaultPlan::new(9).with_store_corruption(0, 0, 0, 1.5));
        let cfg = DistConfig {
            ft: Some(&ft),
            record_trace: false,
            sched: None,
            metrics: None,
        };
        let out = run_sealed_chain(n, nprocs, &cfg).unwrap();
        assert_eq!(out.stats.store_corruptions_injected, 1);
        assert_eq!(out.stats.corruptions_detected, 1);
        assert_eq!(out.stats.corruptions_healed, 1);
        assert_eq!(out.stores, clean.stores, "swept data must be bit-identical");
        assert!(out.events.iter().any(|e| matches!(
            e,
            RunEvent::Healed {
                rank: 0,
                i: 0,
                j: 0,
                ..
            }
        )));
    }

    /// Corrupted message copies are rejected at delivery (never reach an
    /// inbox), NACKed, and retransmitted until a clean copy lands; the
    /// chain still computes the exact result.
    #[test]
    fn message_corruption_is_nacked_and_retransmitted() {
        let n = 12;
        let ft = FtConfig::with_plan(FaultPlan::new(21).with_message_corruption(0.5));
        let cfg = DistConfig {
            ft: Some(&ft),
            record_trace: false,
            sched: None,
            metrics: None,
        };
        let out = run_sealed_chain(n, 4, &cfg).unwrap();
        let last = DataRef { i: n - 1, j: 0 };
        assert_eq!(
            out.stores[out.exec_rank[n - 1]][&last],
            (n as i64, n as i64)
        );
        assert!(
            out.stats.messages_corrupted > 0,
            "p=0.5 over 11 edges must strike"
        );
        assert_eq!(
            out.stats.corruptions_detected, out.stats.messages_corrupted,
            "zero false negatives: every injected flip is caught"
        );
        assert_eq!(out.stats.nacks_sent, out.stats.corruptions_detected);
        assert!(out.stats.retransmissions >= 1);
        assert_eq!(out.stats.sends_abandoned, 0);
        assert_eq!(
            out.comm.messages,
            (out.stats.messages_sent + out.stats.retransmissions) as u64
        );
        // Determinism: the same seed reproduces the identical fault
        // sequence and counters.
        let again = run_sealed_chain(n, 4, &cfg).unwrap();
        assert_eq!(again.stats.messages_corrupted, out.stats.messages_corrupted);
        assert_eq!(again.makespan, out.makespan);
    }

    /// A lossy-but-uncorrupted network never trips the checksum layer:
    /// zero false positives across drops, duplicates and lost acks.
    #[test]
    fn integrity_layer_has_zero_false_positives() {
        let n = 12;
        let plan = FaultPlan::new(3)
            .with_drops(0.3)
            .with_duplicates(0.3)
            .with_ack_drops(0.3);
        let ft = FtConfig::with_plan(plan);
        let cfg = DistConfig {
            ft: Some(&ft),
            record_trace: false,
            sched: None,
            metrics: None,
        };
        let out = run_sealed_chain(n, 4, &cfg).unwrap();
        let last = DataRef { i: n - 1, j: 0 };
        assert_eq!(
            out.stores[out.exec_rank[n - 1]][&last],
            (n as i64, n as i64)
        );
        assert_eq!(out.stats.messages_corrupted, 0);
        assert_eq!(out.stats.corruptions_detected, 0);
        assert_eq!(out.stats.nacks_sent, 0);
        assert_eq!(out.stats.corruptions_healed, 0);
    }

    /// Healing is bounded: with retries disabled the first detection
    /// escalates to a typed [`FtError::Integrity`], never a panic.
    #[test]
    fn heal_escalation_is_a_typed_error() {
        let mut ft = FtConfig::with_plan(FaultPlan::new(5).with_store_corruption(0, 1, 0, 2.5));
        ft.retry.max_heal_retries = 0;
        let cfg = DistConfig {
            ft: Some(&ft),
            record_trace: false,
            sched: None,
            metrics: None,
        };
        let err = run_sealed_chain(4, 1, &cfg).unwrap_err();
        match err {
            EngineError::Fault(FtError::Integrity(e)) => {
                assert_eq!(e.rank, 0);
                assert_eq!(e.data, (1, 0));
                assert_eq!(e.attempts, 0);
            }
            other => panic!("expected integrity escalation, got {other:?}"),
        }
    }

    /// Without hooks the corruption entries of a plan are inert: the
    /// engine has no way to flip bits of an opaque payload.
    #[test]
    fn corruption_plan_is_inert_without_hooks() {
        let n = 6;
        let plan = FaultPlan::new(4)
            .with_message_corruption(0.9)
            .with_store_corruption(0, 1, 0, 2.5);
        let ft = FtConfig::with_plan(plan);
        let cfg = DistConfig {
            ft: Some(&ft),
            record_trace: false,
            sched: None,
            metrics: None,
        };
        let out = run_chain(n, 2, &cfg).unwrap();
        assert_eq!(chain_result(&out, n), n as i64);
        assert_eq!(out.stats.messages_corrupted, 0);
        assert_eq!(out.stats.store_corruptions_injected, 0);
        assert_eq!(out.stats.corruptions_detected, 0);
    }

    /// Integrity composes with the crash fault layer and the trace
    /// capability in one run.
    #[test]
    fn integrity_composes_with_crashes_and_trace() {
        let n = 12;
        let plan = FaultPlan::new(13)
            .with_message_corruption(0.3)
            .with_store_corruption(0, 0, 0, 1.5)
            .with_crash(1, 6.0);
        let ft = FtConfig::with_plan(plan);
        let cfg = DistConfig {
            ft: Some(&ft),
            record_trace: true,
            sched: None,
            metrics: None,
        };
        let out = run_sealed_chain(n, 4, &cfg).unwrap();
        let last = DataRef { i: n - 1, j: 0 };
        assert_eq!(
            out.stores[out.exec_rank[n - 1]][&last],
            (n as i64, n as i64)
        );
        assert_eq!(out.stats.crashes, 1);
        assert!(out.trace.is_some());
        assert!(out
            .events
            .iter()
            .any(|e| matches!(e, RunEvent::Crash { .. })));
    }

    /// Misconfiguration is a typed error, not a panic (satellite: the
    /// legacy asserts became [`EngineError`]).
    #[test]
    fn invalid_configs_are_typed_errors() {
        let g = dist_chain(4);
        let initial4: Vec<HashMap<DataRef, i64>> = vec![HashMap::new(); 4];
        let body = |_t: TaskId, _ctx: &mut RankCtx<'_, i64>| 0i64;

        // Wrong rank-map length.
        let err = DistEngine::new(&g, 4, &[0, 1])
            .run(initial4.clone(), &DistConfig::default(), body)
            .unwrap_err();
        assert_eq!(
            err,
            EngineError::RankMapLength {
                expected: 4,
                got: 2
            }
        );

        // Wrong store count.
        let err = DistEngine::new(&g, 4, &[0, 1, 2, 3])
            .run(vec![HashMap::new(); 2], &DistConfig::default(), body)
            .unwrap_err();
        assert_eq!(
            err,
            EngineError::StoreCount {
                expected: 4,
                got: 2
            }
        );

        // Rank out of range.
        let err = DistEngine::new(&g, 4, &[0, 1, 2, 9])
            .run(initial4.clone(), &DistConfig::default(), body)
            .unwrap_err();
        assert_eq!(
            err,
            EngineError::InvalidRank {
                task: 3,
                rank: 9,
                nprocs: 4
            }
        );

        // Crash of a nonexistent rank.
        use crate::fault::FaultPlan;
        let ft = FtConfig::with_plan(FaultPlan::new(0).with_crash(7, 1.0));
        let err = DistEngine::new(&g, 4, &[0, 1, 2, 3])
            .run(
                initial4,
                &DistConfig {
                    ft: Some(&ft),
                    record_trace: false,
                    sched: None,
                    metrics: None,
                },
                body,
            )
            .unwrap_err();
        assert_eq!(err, EngineError::InvalidCrashRank { rank: 7, nprocs: 4 });
    }

    /// All errors render a useful message.
    #[test]
    fn engine_errors_display() {
        let cases: Vec<(EngineError, &str)> = vec![
            (EngineError::Cycle, "cycle"),
            (
                EngineError::Panic(TaskPanic {
                    task: 3,
                    message: "boom".into(),
                }),
                "task 3 panicked: boom",
            ),
            (
                EngineError::RankMapLength {
                    expected: 4,
                    got: 2,
                },
                "one rank per task",
            ),
            (
                EngineError::StoreCount {
                    expected: 4,
                    got: 2,
                },
                "one store per rank",
            ),
            (
                EngineError::InvalidRank {
                    task: 1,
                    rank: 9,
                    nprocs: 4,
                },
                "invalid rank 9",
            ),
            (
                EngineError::InvalidCrashRank { rank: 7, nprocs: 4 },
                "invalid rank 7",
            ),
            (
                EngineError::Fault(FtError::AllRanksCrashed),
                "unrecoverable",
            ),
        ];
        for (e, needle) in cases {
            let msg = format!("{e}");
            assert!(msg.contains(needle), "{msg:?} should contain {needle:?}");
        }
    }
}

//! Dynamic Task Discovery (DTD) front-end — sequential task insertion
//! with superscalar dependency inference.
//!
//! §IV-A contrasts PaRSEC's two DSLs: the Parameterized Task Graph (our
//! [`crate::ptg`]) and Dynamic Task Discovery, the StarPU/OmpSs-style
//! model where the program *inserts* tasks one by one, each declaring how
//! it accesses which data, and the runtime infers the dependencies —
//! read-after-write, write-after-write **and** write-after-read (the PTG
//! path never needs WAR edges because tile Cholesky's dataflow is pure,
//! but a general insertion-order program does). The paper notes DTD "may
//! suffer from … sequential discovery of tasks"; having both front-ends
//! lets the benchmarks quantify exactly that difference on one runtime.

use crate::graph::{DataRef, TaskGraph, TaskId, TaskSpec};
use std::collections::HashMap;

/// How an inserted task touches a datum.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Access {
    /// Read-only.
    Read,
    /// Read-modify-write (the common tile-kernel mode).
    ReadWrite,
    /// Write-only (previous content discarded; still ordered after
    /// earlier readers/writers).
    Write,
}

/// The sequential-insertion builder.
#[derive(Default)]
pub struct DtdRuntime {
    graph: TaskGraph,
    /// Last task that wrote each datum.
    last_writer: HashMap<DataRef, TaskId>,
    /// Readers of the current version (cleared on the next write).
    readers: HashMap<DataRef, Vec<TaskId>>,
    /// Payload size used for inferred dataflow edges.
    bytes_of: Option<Box<dyn Fn(DataRef) -> u64>>,
}

impl DtdRuntime {
    /// Empty program; dataflow edges carry 0 bytes unless
    /// [`DtdRuntime::with_bytes`] installs a sizing function.
    pub fn new() -> Self {
        Self::default()
    }

    /// Install the payload-size function used for RAW edges (control
    /// edges — WAR/WAW — always carry 0 bytes).
    pub fn with_bytes(mut self, f: impl Fn(DataRef) -> u64 + 'static) -> Self {
        self.bytes_of = Some(Box::new(f));
        self
    }

    /// Insert one task with its access list; dependencies on everything
    /// inserted earlier are inferred superscalar-style.
    pub fn insert_task(&mut self, spec: TaskSpec, accesses: &[(DataRef, Access)]) -> TaskId {
        let id = self.graph.add_task(spec);
        for &(data, mode) in accesses {
            let bytes = self.bytes_of.as_ref().map_or(0, |f| f(data));
            match mode {
                Access::Read => {
                    // RAW: the value read must come from the last writer.
                    if let Some(&w) = self.last_writer.get(&data) {
                        self.graph.add_edge(w, id, data, bytes);
                    }
                    self.readers.entry(data).or_default().push(id);
                }
                Access::ReadWrite | Access::Write => {
                    if mode == Access::ReadWrite {
                        if let Some(&w) = self.last_writer.get(&data) {
                            self.graph.add_edge(w, id, data, bytes);
                        }
                    } else if let Some(&w) = self.last_writer.get(&data) {
                        // WAW: pure control ordering.
                        self.graph.add_edge(w, id, data, 0);
                    }
                    // WAR: all readers of the current version must finish
                    // before it is overwritten.
                    if let Some(rs) = self.readers.remove(&data) {
                        for r in rs {
                            if r != id {
                                self.graph.add_edge(r, id, data, 0);
                            }
                        }
                    }
                    self.last_writer.insert(data, id);
                }
            }
        }
        id
    }

    /// Finish insertion and hand over the explicit graph.
    pub fn finish(self) -> TaskGraph {
        self.graph
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::TaskClass;

    fn spec(priority: usize) -> TaskSpec {
        TaskSpec { class: TaskClass::Other, priority, writes: None, flops: 0.0 }
    }

    fn d(i: usize) -> DataRef {
        DataRef { i, j: 0 }
    }

    #[test]
    fn raw_dependency_inferred() {
        let mut rt = DtdRuntime::new().with_bytes(|_| 64);
        let w = rt.insert_task(spec(0), &[(d(0), Access::Write)]);
        let r = rt.insert_task(spec(1), &[(d(0), Access::Read)]);
        let g = rt.finish();
        assert_eq!(g.num_edges(), 1);
        assert_eq!(g.successors(w)[0].dst, r);
        assert_eq!(g.successors(w)[0].bytes, 64);
    }

    #[test]
    fn waw_and_war_dependencies_inferred() {
        let mut rt = DtdRuntime::new();
        let w1 = rt.insert_task(spec(0), &[(d(0), Access::Write)]);
        let r1 = rt.insert_task(spec(1), &[(d(0), Access::Read)]);
        let r2 = rt.insert_task(spec(1), &[(d(0), Access::Read)]);
        let w2 = rt.insert_task(spec(2), &[(d(0), Access::Write)]);
        let g = rt.finish();
        // w1→r1, w1→r2 (RAW); w1→w2 (WAW); r1→w2, r2→w2 (WAR)
        assert_eq!(g.num_edges(), 5);
        let succ_w1: Vec<TaskId> = g.successors(w1).iter().map(|e| e.dst).collect();
        assert!(succ_w1.contains(&r1) && succ_w1.contains(&r2) && succ_w1.contains(&w2));
        assert_eq!(g.successors(r1)[0].dst, w2);
        assert_eq!(g.successors(r2)[0].dst, w2);
        assert!(g.topological_order().is_some());
    }

    #[test]
    fn independent_data_stay_parallel() {
        let mut rt = DtdRuntime::new();
        rt.insert_task(spec(0), &[(d(0), Access::Write)]);
        rt.insert_task(spec(0), &[(d(1), Access::Write)]);
        rt.insert_task(spec(0), &[(d(2), Access::Write)]);
        let g = rt.finish();
        assert_eq!(g.num_edges(), 0);
        assert_eq!(g.sources().len(), 3);
    }

    /// Cholesky inserted in loop order through the DTD front-end must
    /// produce the same execution space as the PTG/builder paths.
    #[test]
    fn dtd_cholesky_matches_ptg_counts() {
        let nt = 6usize;
        let b = 32usize;
        let bytes = (b * b * 8) as u64;
        let mut rt = DtdRuntime::new().with_bytes(move |_| bytes);
        let t = |i: usize, j: usize| DataRef { i, j };
        for k in 0..nt {
            rt.insert_task(
                TaskSpec { class: TaskClass::Potrf, priority: k, writes: Some(t(k, k)), flops: 0.0 },
                &[(t(k, k), Access::ReadWrite)],
            );
            for m in k + 1..nt {
                rt.insert_task(
                    TaskSpec { class: TaskClass::Trsm, priority: k, writes: Some(t(m, k)), flops: 0.0 },
                    &[(t(k, k), Access::Read), (t(m, k), Access::ReadWrite)],
                );
            }
            for m in k + 1..nt {
                rt.insert_task(
                    TaskSpec { class: TaskClass::Syrk, priority: k, writes: Some(t(m, m)), flops: 0.0 },
                    &[(t(m, k), Access::Read), (t(m, m), Access::ReadWrite)],
                );
                for n in k + 1..m {
                    rt.insert_task(
                        TaskSpec { class: TaskClass::Gemm, priority: k, writes: Some(t(m, n)), flops: 0.0 },
                        &[
                            (t(m, k), Access::Read),
                            (t(n, k), Access::Read),
                            (t(m, n), Access::ReadWrite),
                        ],
                    );
                }
            }
        }
        let g = rt.finish();
        let ptg = crate::ptg::dense_cholesky_ptg(nt, b).unroll().unwrap();
        assert_eq!(g.len(), ptg.graph.len(), "same execution space");
        // DTD includes WAR edges the pure-dataflow PTG omits; the RAW
        // skeleton must match, so DTD has at least as many edges.
        assert!(g.num_edges() >= ptg.graph.num_edges());
        assert!(g.topological_order().is_some());
        // Same critical path under unit durations.
        let cp_dtd = crate::critical_path::critical_path(&g, |_| 1.0);
        let cp_ptg = crate::critical_path::critical_path(&ptg.graph, |_| 1.0);
        assert_eq!(cp_dtd.length, cp_ptg.length);
    }
}

#![warn(missing_docs)]
//! PaRSEC-equivalent task runtime.
//!
//! PaRSEC executes algorithms expressed as parameterized task graphs: tasks
//! are vertices, dataflow is edges, and the runtime (a) schedules ready
//! tasks onto cores, (b) ships data between address spaces implied by the
//! edges, and (c) overlaps both. This crate reproduces the three layers the
//! paper's contributions live in:
//!
//! * [`graph`] — the task-graph representation (the unrolled equivalent of
//!   a PTG/JDF program), with dataflow annotations used for communication
//!   accounting. DAG trimming manifests here as *not inserting* tasks.
//! * [`engine`] — the unified execution engines: one shared-memory
//!   work-stealing [`engine::Engine`] (crossbeam deques, real numerical
//!   kernels, validates every configuration at laptop scale) and one
//!   distributed [`engine::DistEngine`] (deterministic virtual-time
//!   message-passing emulation with an optional fault layer), each
//!   driven by a config of composable capability hooks. The legacy
//!   entry points in [`executor`] and [`distributed`] are deprecated
//!   shims over these.
//! * [`des`] — a discrete-event simulator of distributed execution: `P`
//!   processes × `cores` each, binomial-tree broadcasts, a latency/
//!   bandwidth link model and per-task runtime overheads. This is the
//!   substitute for the paper's Shaheen II / Fugaku runs (see DESIGN.md §2)
//!   and is driven by the same task graphs the executor runs.
//! * [`machine`] — calibrated machine models for the two supercomputers.
//! * [`critical_path`] — the longest-path "roofline" bound of §VIII-G.
//! * [`trace`] — execution traces and per-class time breakdowns (Fig. 11).
//! * [`obs`] — observability: Chrome-trace (Perfetto) export, JSON/CSV
//!   metrics dumps, and structured crash/recovery events. Hot-path span
//!   capture in the executor is gated behind the `obs` cargo feature
//!   (compiled to no-ops when disabled); this reporting layer is always
//!   available.

pub mod critical_path;
pub mod des;
pub mod distributed;
pub mod dtd;
pub mod engine;
pub mod executor;
pub mod fault;
pub mod graph;
pub mod machine;
pub mod obs;
pub mod ptg;
pub mod scheduler;
pub mod trace;

pub use des::{
    simulate, simulate_with_faults, simulate_with_scheduler, DesConfig, DesCorrupt, DesCrash,
    DesReport, FaultSchedule,
};
pub use engine::{
    Cancel, DistConfig, DistEngine, DistOutcome, Engine, EngineConfig, EngineError, ExecObs,
    ExecReport, IntegrityHooks, NoCancel, NoObserve, Observe, RankCtx, TaskPanic,
};
#[allow(deprecated)]
pub use executor::{execute, execute_cancellable};
pub use fault::{
    fault_bits, fault_unit, CorruptAt, CrashAt, FaultPlan, FaultStats, FtConfig, FtError,
    IntegrityError, RetryConfig,
};
pub use graph::{DataRef, TaskClass, TaskGraph, TaskId, TaskSpec};
pub use machine::MachineModel;
pub use scheduler::{
    dist_priority_order, queue_keys, upward_rank_comm_keys, CommCosts, CostModel,
    LookaheadScheduler, RankProfile, SchedPlan, SchedPolicy, Scheduler, StaticScheduler,
};
pub use obs::registry::{Counter, Gauge, Registry, RegistrySnapshot};
pub use obs::{chrome_trace_json, chrome_trace_json_with_events, RunEvent, RunMetrics};
pub use trace::{ClassBreakdown, Trace};

//! Observability: trace export, run metrics, and structured run events.
//!
//! This is the cold-path half of the instrumentation story (the PaRSEC
//! PINS/profiling analogue): everything here consumes a finished
//! [`Trace`] or counter set and turns it into artifacts — a Chrome-trace
//! (Perfetto) JSON timeline, a CSV/JSON metrics dump, or a rendered
//! report. The hot-path half (span capture inside the executor, rank
//! logging inside the kernels) lives behind the `obs` cargo feature; this
//! module is always compiled because it only runs after a factorization
//! finishes, on data structures that exist either way.
//!
//! The JSON layer is hand-rolled: the workspace's `serde` is an offline
//! marker-trait shim with no `serde_json`, so [`json::Json`] provides the
//! minimal writer/parser the exporter and its round-trip tests need.

use crate::trace::{ClassBreakdown, Trace};

pub mod registry;

use registry::RegistrySnapshot;

/// Minimal zero-dependency JSON tree, writer and parser.
pub mod json {
    use std::fmt::Write as _;

    /// A JSON value.
    #[derive(Debug, Clone, PartialEq)]
    pub enum Json {
        /// `null`
        Null,
        /// `true` / `false`
        Bool(bool),
        /// Any number (stored as `f64`; non-finite values serialize as `null`).
        Num(f64),
        /// A string.
        Str(String),
        /// An array.
        Arr(Vec<Json>),
        /// An object; insertion order is preserved.
        Obj(Vec<(String, Json)>),
    }

    impl Json {
        /// Object field lookup (first match).
        pub fn get(&self, key: &str) -> Option<&Json> {
            match self {
                Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
                _ => None,
            }
        }

        /// Numeric value, if this is a number.
        pub fn as_f64(&self) -> Option<f64> {
            match self {
                Json::Num(x) => Some(*x),
                _ => None,
            }
        }

        /// String value, if this is a string.
        pub fn as_str(&self) -> Option<&str> {
            match self {
                Json::Str(s) => Some(s),
                _ => None,
            }
        }

        /// Array elements, if this is an array.
        pub fn as_arr(&self) -> Option<&[Json]> {
            match self {
                Json::Arr(v) => Some(v),
                _ => None,
            }
        }

        /// An empty object (build up with [`Json::insert`]).
        pub fn obj() -> Json {
            Json::Obj(Vec::new())
        }

        /// Append a field to an object (keeps insertion order; does
        /// nothing on non-objects, so builder chains stay infallible).
        pub fn insert(&mut self, key: impl Into<String>, value: Json) {
            if let Json::Obj(fields) = self {
                fields.push((key.into(), value));
            }
        }

        fn write(&self, out: &mut String) {
            match self {
                Json::Null => out.push_str("null"),
                Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
                Json::Num(x) => {
                    if x.is_finite() {
                        let _ = write!(out, "{x}");
                    } else {
                        out.push_str("null");
                    }
                }
                Json::Str(s) => write_escaped(out, s),
                Json::Arr(items) => {
                    out.push('[');
                    for (n, it) in items.iter().enumerate() {
                        if n > 0 {
                            out.push(',');
                        }
                        it.write(out);
                    }
                    out.push(']');
                }
                Json::Obj(fields) => {
                    out.push('{');
                    for (n, (k, v)) in fields.iter().enumerate() {
                        if n > 0 {
                            out.push(',');
                        }
                        write_escaped(out, k);
                        out.push(':');
                        v.write(out);
                    }
                    out.push('}');
                }
            }
        }

        /// Parse JSON text. Returns an error message with a byte offset on
        /// malformed input.
        ///
        /// Serialization is the [`std::fmt::Display`] impl (compact, no
        /// whitespace): `json.to_string()`.
        pub fn parse(text: &str) -> Result<Json, String> {
            let bytes = text.as_bytes();
            let mut pos = 0usize;
            let v = parse_value(bytes, &mut pos)?;
            skip_ws(bytes, &mut pos);
            if pos != bytes.len() {
                return Err(format!("trailing data at byte {pos}"));
            }
            Ok(v)
        }
    }

    impl std::fmt::Display for Json {
        /// Compact JSON text (no whitespace).
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            let mut out = String::new();
            self.write(&mut out);
            f.write_str(&out)
        }
    }

    fn write_escaped(out: &mut String, s: &str) {
        out.push('"');
        for c in s.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                '\n' => out.push_str("\\n"),
                '\r' => out.push_str("\\r"),
                '\t' => out.push_str("\\t"),
                c if (c as u32) < 0x20 => {
                    let _ = write!(out, "\\u{:04x}", c as u32);
                }
                c => out.push(c),
            }
        }
        out.push('"');
    }

    fn skip_ws(b: &[u8], pos: &mut usize) {
        while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
            *pos += 1;
        }
    }

    fn expect(b: &[u8], pos: &mut usize, lit: &str) -> Result<(), String> {
        if b[*pos..].starts_with(lit.as_bytes()) {
            *pos += lit.len();
            Ok(())
        } else {
            Err(format!("expected `{lit}` at byte {pos}", pos = *pos))
        }
    }

    fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, String> {
        skip_ws(b, pos);
        match b.get(*pos) {
            None => Err("unexpected end of input".into()),
            Some(b'n') => expect(b, pos, "null").map(|_| Json::Null),
            Some(b't') => expect(b, pos, "true").map(|_| Json::Bool(true)),
            Some(b'f') => expect(b, pos, "false").map(|_| Json::Bool(false)),
            Some(b'"') => parse_string(b, pos).map(Json::Str),
            Some(b'[') => {
                *pos += 1;
                let mut items = Vec::new();
                skip_ws(b, pos);
                if b.get(*pos) == Some(&b']') {
                    *pos += 1;
                    return Ok(Json::Arr(items));
                }
                loop {
                    items.push(parse_value(b, pos)?);
                    skip_ws(b, pos);
                    match b.get(*pos) {
                        Some(b',') => *pos += 1,
                        Some(b']') => {
                            *pos += 1;
                            return Ok(Json::Arr(items));
                        }
                        _ => return Err(format!("expected `,` or `]` at byte {pos}", pos = *pos)),
                    }
                }
            }
            Some(b'{') => {
                *pos += 1;
                let mut fields = Vec::new();
                skip_ws(b, pos);
                if b.get(*pos) == Some(&b'}') {
                    *pos += 1;
                    return Ok(Json::Obj(fields));
                }
                loop {
                    skip_ws(b, pos);
                    let key = parse_string(b, pos)?;
                    skip_ws(b, pos);
                    expect(b, pos, ":")?;
                    let val = parse_value(b, pos)?;
                    fields.push((key, val));
                    skip_ws(b, pos);
                    match b.get(*pos) {
                        Some(b',') => *pos += 1,
                        Some(b'}') => {
                            *pos += 1;
                            return Ok(Json::Obj(fields));
                        }
                        _ => return Err(format!("expected `,` or `}}` at byte {pos}", pos = *pos)),
                    }
                }
            }
            Some(_) => parse_number(b, pos).map(Json::Num),
        }
    }

    fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
        if b.get(*pos) != Some(&b'"') {
            return Err(format!("expected string at byte {pos}", pos = *pos));
        }
        *pos += 1;
        let mut out = String::new();
        loop {
            match b.get(*pos) {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    *pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    *pos += 1;
                    match b.get(*pos) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = b
                                .get(*pos + 1..*pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or("truncated \\u escape")?;
                            let code =
                                u32::from_str_radix(hex, 16).map_err(|_| "bad \\u escape")?;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            *pos += 4;
                        }
                        _ => return Err("bad escape".into()),
                    }
                    *pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so this is safe).
                    let rest = std::str::from_utf8(&b[*pos..]).map_err(|_| "invalid utf-8")?;
                    let c = rest.chars().next().ok_or("unterminated string")?;
                    out.push(c);
                    *pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_number(b: &[u8], pos: &mut usize) -> Result<f64, String> {
        let start = *pos;
        while *pos < b.len() && matches!(b[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E') {
            *pos += 1;
        }
        let tok = std::str::from_utf8(&b[start..*pos]).map_err(|_| "invalid utf-8")?;
        tok.parse::<f64>()
            .map_err(|_| format!("bad number `{tok}` at byte {start}"))
    }
}

use json::Json;

/// Export a [`Trace`] as Chrome-trace (Perfetto) JSON.
///
/// Produces the `{"traceEvents": [...]}` object form with one complete
/// (`"ph": "X"`) event per task record, `ts`/`dur` in microseconds,
/// `pid = 0`, `tid` = worker/process id, and per-event `args` carrying the
/// task id, tile coordinates, and queue wait. Events are sorted by `ts`
/// and durations are clamped non-negative so the file always loads in
/// `chrome://tracing` / <https://ui.perfetto.dev>.
pub fn chrome_trace_json(trace: &Trace, process_name: &str) -> String {
    chrome_trace_json_with_events(trace, &[], process_name)
}

/// [`chrome_trace_json`] plus structured run events rendered as
/// Chrome-trace instant (`"ph": "i"`) markers, so crashes, recoveries,
/// and integrity incidents (corruption detected / healed) show up on the
/// Perfetto timeline next to the task spans. Instants carry
/// process-scoped visibility (`"s": "p"`), `tid` = the affected rank,
/// and the event payload in `args`.
pub fn chrome_trace_json_with_events(
    trace: &Trace,
    run_events: &[RunEvent],
    process_name: &str,
) -> String {
    let mut recs: Vec<_> = trace.records.iter().collect();
    recs.sort_by(|a, b| a.start.total_cmp(&b.start));
    let mut events = Vec::with_capacity(recs.len() + 1);
    events.push(Json::Obj(vec![
        ("name".into(), Json::Str("process_name".into())),
        ("ph".into(), Json::Str("M".into())),
        ("pid".into(), Json::Num(0.0)),
        (
            "args".into(),
            Json::Obj(vec![("name".into(), Json::Str(process_name.into()))]),
        ),
    ]));
    for r in recs {
        let name = match r.data {
            Some(d) => format!("{}({},{})", r.class.name(), d.i, d.j),
            None => r.class.name().to_string(),
        };
        let mut args = vec![("task".into(), Json::Num(r.task as f64))];
        if let Some(d) = r.data {
            args.push(("i".into(), Json::Num(d.i as f64)));
            args.push(("j".into(), Json::Num(d.j as f64)));
        }
        args.push(("queue_wait_us".into(), Json::Num(r.queue_wait() * 1e6)));
        events.push(Json::Obj(vec![
            ("name".into(), Json::Str(name)),
            ("cat".into(), Json::Str("task".into())),
            ("ph".into(), Json::Str("X".into())),
            ("ts".into(), Json::Num((r.start.max(0.0)) * 1e6)),
            ("dur".into(), Json::Num(r.duration() * 1e6)),
            ("pid".into(), Json::Num(0.0)),
            ("tid".into(), Json::Num(r.proc as f64)),
            ("args".into(), Json::Obj(args)),
        ]));
    }
    let mut evs: Vec<&RunEvent> = run_events.iter().collect();
    evs.sort_by(|a, b| a.at().total_cmp(&b.at()));
    for ev in evs {
        let (name, tid) = match *ev {
            RunEvent::Crash { rank, .. } => ("crash", rank),
            RunEvent::Recovery { failed, .. } => ("recovery", failed),
            RunEvent::CorruptionDetected { rank, .. } => ("corruption_detected", rank),
            RunEvent::Healed { rank, .. } => ("corruption_healed", rank),
        };
        events.push(Json::Obj(vec![
            ("name".into(), Json::Str(name.into())),
            ("cat".into(), Json::Str("event".into())),
            ("ph".into(), Json::Str("i".into())),
            ("s".into(), Json::Str("p".into())),
            ("ts".into(), Json::Num(ev.at().max(0.0) * 1e6)),
            ("pid".into(), Json::Num(0.0)),
            ("tid".into(), Json::Num(tid as f64)),
            ("args".into(), ev.to_json()),
        ]));
    }
    Json::Obj(vec![
        ("traceEvents".into(), Json::Arr(events)),
        ("displayTimeUnit".into(), Json::Str("ms".into())),
    ])
    .to_string()
}

/// A structured crash/recovery event from a fault-tolerant run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RunEvent {
    /// Rank `rank` fail-stopped at virtual time `at`.
    Crash {
        /// The rank that died.
        rank: usize,
        /// Virtual time of the crash, seconds.
        at: f64,
    },
    /// Crash recovery migrated rank `failed`'s work onto `survivor`.
    Recovery {
        /// The dead rank whose work was recovered.
        failed: usize,
        /// The surviving rank that absorbed it.
        survivor: usize,
        /// Virtual time recovery completed, seconds.
        at: f64,
    },
    /// A checksum mismatch was caught on rank `rank` — either a message
    /// payload rejected at delivery or a store tile rejected at a task
    /// read boundary.
    CorruptionDetected {
        /// The rank that detected the mismatch.
        rank: usize,
        /// Tile row index of the affected datum.
        i: usize,
        /// Tile column index of the affected datum.
        j: usize,
        /// Virtual time of detection, seconds.
        at: f64,
    },
    /// Lineage healing restored tile `(i, j)` on rank `rank`: the datum
    /// was rolled back to its checkpoint and its writer chain re-executed
    /// (or, for never-written inputs, restored directly).
    Healed {
        /// The rank holding the healed datum.
        rank: usize,
        /// Tile row index of the healed datum.
        i: usize,
        /// Tile column index of the healed datum.
        j: usize,
        /// Virtual time healing completed, seconds.
        at: f64,
    },
}

impl RunEvent {
    /// Virtual time of the event, seconds.
    pub fn at(&self) -> f64 {
        match *self {
            RunEvent::Crash { at, .. }
            | RunEvent::Recovery { at, .. }
            | RunEvent::CorruptionDetected { at, .. }
            | RunEvent::Healed { at, .. } => at,
        }
    }

    /// JSON form (used by the metrics dump).
    pub fn to_json(&self) -> Json {
        match *self {
            RunEvent::Crash { rank, at } => Json::Obj(vec![
                ("event".into(), Json::Str("crash".into())),
                ("rank".into(), Json::Num(rank as f64)),
                ("at".into(), Json::Num(at)),
            ]),
            RunEvent::Recovery {
                failed,
                survivor,
                at,
            } => Json::Obj(vec![
                ("event".into(), Json::Str("recovery".into())),
                ("failed".into(), Json::Num(failed as f64)),
                ("survivor".into(), Json::Num(survivor as f64)),
                ("at".into(), Json::Num(at)),
            ]),
            RunEvent::CorruptionDetected { rank, i, j, at } => Json::Obj(vec![
                ("event".into(), Json::Str("corruption_detected".into())),
                ("rank".into(), Json::Num(rank as f64)),
                ("i".into(), Json::Num(i as f64)),
                ("j".into(), Json::Num(j as f64)),
                ("at".into(), Json::Num(at)),
            ]),
            RunEvent::Healed { rank, i, j, at } => Json::Obj(vec![
                ("event".into(), Json::Str("healed".into())),
                ("rank".into(), Json::Num(rank as f64)),
                ("i".into(), Json::Num(i as f64)),
                ("j".into(), Json::Num(j as f64)),
                ("at".into(), Json::Num(at)),
            ]),
        }
    }
}

/// Derived metrics of one run (wall-clock or simulated) — the numbers
/// behind the paper's Fig. 11 (per-class breakdown) and Fig. 13
/// (efficiency vs. the critical-path bound), plus the load-balance and
/// communication columns of the distribution comparison.
#[derive(Debug, Clone, Default)]
pub struct RunMetrics {
    /// Label for reports ("lorapo-hybrid", "wall-clock", …).
    pub label: String,
    /// Trace makespan, seconds.
    pub makespan: f64,
    /// Busy seconds per kernel class.
    pub breakdown: ClassBreakdown,
    /// Busy seconds per worker/process.
    pub busy: Vec<f64>,
    /// Idle fraction per worker/process, each in `[0, 1]`.
    pub idle_fraction: Vec<f64>,
    /// `max busy / mean busy` (1.0 = perfect balance).
    pub load_imbalance: f64,
    /// Total ready→start wait, seconds, summed over tasks.
    pub total_queue_wait: f64,
    /// Cross-process payload bytes (0 for shared-memory runs).
    pub comm_bytes: u64,
    /// Cross-process messages (0 for shared-memory runs).
    pub comm_messages: u64,
    /// Critical-path bound, seconds (0 when not computed).
    pub critical_path_seconds: f64,
    /// `critical_path_seconds / makespan` (the §VIII-G efficiency; 0 when
    /// no bound was computed).
    pub efficiency_vs_critical_path: f64,
    /// Merged metrics-registry snapshot (counters, gauges, duration
    /// histograms), when a registry was attached to the run.
    pub registry: Option<RegistrySnapshot>,
}

/// Sanitize a possibly NaN/Inf reading for report output.
fn finite_or_zero(x: f64) -> f64 {
    if x.is_finite() { x } else { 0.0 }
}

impl RunMetrics {
    /// Compute trace-derived metrics; communication and critical-path
    /// fields start at zero and can be filled by the setters.
    pub fn from_trace(label: &str, trace: &Trace, nprocs: usize) -> Self {
        RunMetrics {
            label: label.to_string(),
            makespan: trace.makespan(),
            breakdown: trace.breakdown(),
            busy: trace.busy_per_proc(nprocs),
            idle_fraction: trace.idle_fraction(nprocs),
            load_imbalance: trace.load_imbalance(nprocs),
            total_queue_wait: trace.total_queue_wait(),
            ..RunMetrics::default()
        }
    }

    /// Attach communication totals.
    pub fn with_comm(mut self, bytes: u64, messages: u64) -> Self {
        self.comm_bytes = bytes;
        self.comm_messages = messages;
        self
    }

    /// Attach the critical-path bound and derive efficiency against it.
    ///
    /// Degenerate inputs stay typed-safe: a non-finite or non-positive
    /// bound records as 0 (the "not computed" sentinel), a zero/NaN
    /// makespan yields efficiency 0 instead of dividing, and the
    /// efficiency is clamped to `[0, 1]` so tables never show NaN/Inf.
    pub fn with_critical_path(mut self, cp_seconds: f64) -> Self {
        let cp = if cp_seconds.is_finite() && cp_seconds > 0.0 { cp_seconds } else { 0.0 };
        self.critical_path_seconds = cp;
        self.efficiency_vs_critical_path =
            if cp > 0.0 && self.makespan.is_finite() && self.makespan > 0.0 {
                (cp / self.makespan).clamp(0.0, 1.0)
            } else {
                0.0
            };
        self
    }

    /// Attach a merged registry snapshot (counters, gauges, histograms).
    pub fn with_registry(mut self, snapshot: RegistrySnapshot) -> Self {
        self.registry = Some(snapshot);
        self
    }

    /// Prometheus text-exposition form: the scalar run metrics as gauges
    /// (labelled by run) plus, when present, the attached registry's
    /// counters and histograms.
    pub fn to_prometheus(&self) -> String {
        use std::fmt::Write;
        let label: String = self
            .label
            .chars()
            .map(|c| if c.is_ascii_alphanumeric() || c == '_' || c == '-' { c } else { '_' })
            .collect();
        let mut out = String::new();
        let mut gauge = |name: &str, v: f64| {
            let _ = writeln!(out, "# TYPE tlr_{name} gauge");
            let _ = writeln!(out, "tlr_{name}{{run=\"{label}\"}} {}", finite_or_zero(v));
        };
        gauge("run_makespan_seconds", self.makespan);
        gauge("run_queue_wait_seconds", self.total_queue_wait);
        gauge("run_load_imbalance", self.load_imbalance);
        gauge("run_critical_path_seconds", self.critical_path_seconds);
        gauge("run_efficiency_vs_critical_path", self.efficiency_vs_critical_path);
        gauge("run_comm_bytes", self.comm_bytes as f64);
        gauge("run_comm_messages", self.comm_messages as f64);
        let _ = writeln!(out, "# TYPE tlr_run_class_busy_seconds gauge");
        for (name, v) in [
            ("potrf", self.breakdown.potrf),
            ("trsm", self.breakdown.trsm),
            ("syrk", self.breakdown.syrk),
            ("gemm", self.breakdown.gemm),
            ("other", self.breakdown.other),
        ] {
            let _ = writeln!(
                out,
                "tlr_run_class_busy_seconds{{run=\"{label}\",class=\"{name}\"}} {}",
                finite_or_zero(v)
            );
        }
        if let Some(reg) = &self.registry {
            reg.write_prometheus(&mut out);
        }
        out
    }

    /// JSON form of the full metrics record.
    pub fn to_json(&self) -> Json {
        let mut out = Json::Obj(vec![
            ("label".into(), Json::Str(self.label.clone())),
            ("makespan_s".into(), Json::Num(self.makespan)),
            (
                "breakdown_s".into(),
                Json::Obj(vec![
                    ("potrf".into(), Json::Num(self.breakdown.potrf)),
                    ("trsm".into(), Json::Num(self.breakdown.trsm)),
                    ("syrk".into(), Json::Num(self.breakdown.syrk)),
                    ("gemm".into(), Json::Num(self.breakdown.gemm)),
                    ("other".into(), Json::Num(self.breakdown.other)),
                ]),
            ),
            (
                "busy_s".into(),
                Json::Arr(self.busy.iter().map(|&b| Json::Num(b)).collect()),
            ),
            (
                "idle_fraction".into(),
                Json::Arr(self.idle_fraction.iter().map(|&f| Json::Num(f)).collect()),
            ),
            ("load_imbalance".into(), Json::Num(self.load_imbalance)),
            (
                "total_queue_wait_s".into(),
                Json::Num(self.total_queue_wait),
            ),
            ("comm_bytes".into(), Json::Num(self.comm_bytes as f64)),
            ("comm_messages".into(), Json::Num(self.comm_messages as f64)),
            (
                "critical_path_s".into(),
                Json::Num(self.critical_path_seconds),
            ),
            (
                "efficiency_vs_critical_path".into(),
                Json::Num(self.efficiency_vs_critical_path),
            ),
        ]);
        if let Some(reg) = &self.registry {
            out.insert("registry", reg.to_json());
        }
        out
    }

    /// CSV form: a `metric,value` table (one file per run).
    pub fn to_csv(&self) -> String {
        let mut out = String::from("metric,value\n");
        out.push_str(&format!("label,{}\n", self.label));
        out.push_str(&format!("makespan_s,{}\n", self.makespan));
        out.push_str(&format!("potrf_s,{}\n", self.breakdown.potrf));
        out.push_str(&format!("trsm_s,{}\n", self.breakdown.trsm));
        out.push_str(&format!("syrk_s,{}\n", self.breakdown.syrk));
        out.push_str(&format!("gemm_s,{}\n", self.breakdown.gemm));
        out.push_str(&format!("other_s,{}\n", self.breakdown.other));
        for (p, (b, f)) in self.busy.iter().zip(&self.idle_fraction).enumerate() {
            out.push_str(&format!("busy_s_p{p},{b}\n"));
            out.push_str(&format!("idle_fraction_p{p},{f}\n"));
        }
        out.push_str(&format!("load_imbalance,{}\n", self.load_imbalance));
        out.push_str(&format!("total_queue_wait_s,{}\n", self.total_queue_wait));
        out.push_str(&format!("comm_bytes,{}\n", self.comm_bytes));
        out.push_str(&format!("comm_messages,{}\n", self.comm_messages));
        out.push_str(&format!("critical_path_s,{}\n", self.critical_path_seconds));
        out.push_str(&format!(
            "efficiency_vs_critical_path,{}\n",
            self.efficiency_vs_critical_path
        ));
        out
    }

    /// Human-readable one-run report.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("== {} ==\n", self.label));
        out.push_str(&format!("makespan            {:>12.6} s\n", self.makespan));
        let b = &self.breakdown;
        out.push_str(&format!(
            "busy (P/T/S/G/O)    {:.4} / {:.4} / {:.4} / {:.4} / {:.4} s\n",
            b.potrf, b.trsm, b.syrk, b.gemm, b.other
        ));
        out.push_str(&format!(
            "load imbalance      {:>12.4}\n",
            self.load_imbalance
        ));
        let mean_idle = if self.idle_fraction.is_empty() {
            0.0
        } else {
            self.idle_fraction.iter().sum::<f64>() / self.idle_fraction.len() as f64
        };
        out.push_str(&format!(
            "mean idle fraction  {:>12.4}  (per worker: {})\n",
            mean_idle,
            self.idle_fraction
                .iter()
                .map(|f| format!("{f:.3}"))
                .collect::<Vec<_>>()
                .join(" ")
        ));
        out.push_str(&format!(
            "queue wait (total)  {:>12.6} s\n",
            self.total_queue_wait
        ));
        if self.comm_messages > 0 {
            out.push_str(&format!(
                "communication       {:>12} msgs, {} bytes\n",
                self.comm_messages, self.comm_bytes
            ));
        }
        if self.critical_path_seconds > 0.0 {
            out.push_str(&format!(
                "critical path       {:>12.6} s  (efficiency {:.3})\n",
                self.critical_path_seconds, self.efficiency_vs_critical_path
            ));
        }
        out
    }

    /// Side-by-side table over several runs (one line per run) — the
    /// Lorapo vs. band vs. diamond comparison of the paper's evaluation.
    /// Degenerate inputs stay typed-safe (satellite of the metrics
    /// registry work): an empty run list renders an explicit "(no runs)"
    /// row and NaN/Inf readings print as 0 rather than leaking into the
    /// table.
    pub fn comparison_table(runs: &[RunMetrics]) -> String {
        let mut out = String::from(
            "plan               makespan_s   imbalance  mean_idle   msgs        bytes        eff_cp\n",
        );
        if runs.is_empty() {
            out.push_str("(no runs)\n");
            return out;
        }
        for m in runs {
            let mean_idle = if m.idle_fraction.is_empty() {
                0.0
            } else {
                m.idle_fraction.iter().sum::<f64>() / m.idle_fraction.len() as f64
            };
            out.push_str(&format!(
                "{:<18} {:>10.6} {:>11.4} {:>10.4} {:>6} {:>12} {:>9.3}\n",
                m.label,
                finite_or_zero(m.makespan),
                finite_or_zero(m.load_imbalance),
                finite_or_zero(mean_idle),
                m.comm_messages,
                m.comm_bytes,
                finite_or_zero(m.efficiency_vs_critical_path),
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{DataRef, TaskClass};
    use crate::trace::TaskRecord;

    fn sample_trace() -> Trace {
        let mut t = Trace::default();
        t.push_record(TaskRecord {
            task: 0,
            class: TaskClass::Potrf,
            proc: 0,
            data: Some(DataRef { i: 0, j: 0 }),
            queued: 0.0,
            start: 0.0,
            end: 1.0,
        });
        t.push_record(TaskRecord {
            task: 1,
            class: TaskClass::Trsm,
            proc: 1,
            data: Some(DataRef { i: 1, j: 0 }),
            queued: 1.0,
            start: 1.25,
            end: 2.0,
        });
        t
    }

    #[test]
    fn json_round_trip() {
        let v = Json::Obj(vec![
            ("s".into(), Json::Str("a \"b\"\nc".into())),
            ("n".into(), Json::Num(-12.5)),
            (
                "a".into(),
                Json::Arr(vec![Json::Null, Json::Bool(true), Json::Num(3.0)]),
            ),
            ("o".into(), Json::Obj(vec![("k".into(), Json::Num(1e-3))])),
        ]);
        let text = v.to_string();
        let back = Json::parse(&text).unwrap();
        assert_eq!(v, back);
    }

    #[test]
    fn json_parse_rejects_garbage() {
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("nul").is_err());
        assert!(Json::parse("1 2").is_err());
    }

    #[test]
    fn chrome_trace_is_valid_and_sorted() {
        let text = chrome_trace_json(&sample_trace(), "test");
        let doc = Json::parse(&text).unwrap();
        let events = doc.get("traceEvents").unwrap().as_arr().unwrap();
        // 1 metadata + 2 task events
        assert_eq!(events.len(), 3);
        let mut last_ts = f64::NEG_INFINITY;
        for ev in events.iter().skip(1) {
            assert_eq!(ev.get("ph").unwrap().as_str().unwrap(), "X");
            let ts = ev.get("ts").unwrap().as_f64().unwrap();
            let dur = ev.get("dur").unwrap().as_f64().unwrap();
            assert!(ts >= last_ts);
            assert!(dur >= 0.0);
            last_ts = ts;
        }
        // Tile coordinates survive into args.
        let ev = &events[2];
        assert_eq!(ev.get("name").unwrap().as_str().unwrap(), "TRSM(1,0)");
        assert_eq!(
            ev.get("args").unwrap().get("i").unwrap().as_f64().unwrap(),
            1.0
        );
    }

    #[test]
    fn metrics_from_trace() {
        let t = sample_trace();
        let m = RunMetrics::from_trace("unit", &t, 2)
            .with_comm(100, 3)
            .with_critical_path(1.0);
        assert_eq!(m.makespan, 2.0);
        assert!((m.breakdown.total() - 1.75).abs() < 1e-12);
        assert!((m.total_queue_wait - 0.25).abs() < 1e-12);
        assert!((m.efficiency_vs_critical_path - 0.5).abs() < 1e-12);
        for f in &m.idle_fraction {
            assert!((0.0..=1.0).contains(f));
        }
        // JSON and CSV dumps contain the headline numbers.
        let j = m.to_json();
        assert_eq!(j.get("comm_bytes").unwrap().as_f64().unwrap(), 100.0);
        let csv = m.to_csv();
        assert!(csv.contains("makespan_s,2"));
        assert!(csv.contains("idle_fraction_p1,"));
        // And the rendered forms don't panic.
        assert!(m.render().contains("makespan"));
        assert!(RunMetrics::comparison_table(&[m]).contains("unit"));
    }

    #[test]
    fn run_event_json() {
        let e = RunEvent::Recovery {
            failed: 2,
            survivor: 0,
            at: 1.5,
        };
        let j = e.to_json();
        assert_eq!(j.get("event").unwrap().as_str().unwrap(), "recovery");
        assert_eq!(j.get("survivor").unwrap().as_f64().unwrap(), 0.0);

        let d = RunEvent::CorruptionDetected {
            rank: 1,
            i: 3,
            j: 2,
            at: 0.5,
        }
        .to_json();
        assert_eq!(
            d.get("event").unwrap().as_str().unwrap(),
            "corruption_detected"
        );
        assert_eq!(d.get("i").unwrap().as_f64().unwrap(), 3.0);
        let h = RunEvent::Healed {
            rank: 1,
            i: 3,
            j: 2,
            at: 0.75,
        }
        .to_json();
        assert_eq!(h.get("event").unwrap().as_str().unwrap(), "healed");
        assert_eq!(h.get("at").unwrap().as_f64().unwrap(), 0.75);
    }

    #[test]
    fn run_events_export_as_chrome_instants() {
        let events = [
            RunEvent::Healed { rank: 1, i: 0, j: 0, at: 1.75 },
            RunEvent::Crash { rank: 2, at: 0.5 },
            RunEvent::CorruptionDetected { rank: 1, i: 0, j: 0, at: 1.5 },
            RunEvent::Recovery { failed: 2, survivor: 0, at: 0.75 },
        ];
        let text = chrome_trace_json_with_events(&sample_trace(), &events, "test");
        let doc = Json::parse(&text).unwrap();
        let all = doc.get("traceEvents").unwrap().as_arr().unwrap();
        let instants: Vec<&Json> =
            all.iter().filter(|e| e.get("ph").and_then(Json::as_str) == Some("i")).collect();
        assert_eq!(instants.len(), 4, "one instant per run event");
        // Time-ordered, process-scoped, named by kind, payload in args.
        let names: Vec<&str> =
            instants.iter().map(|e| e.get("name").unwrap().as_str().unwrap()).collect();
        assert_eq!(names, ["crash", "recovery", "corruption_detected", "corruption_healed"]);
        for e in &instants {
            assert_eq!(e.get("s").unwrap().as_str().unwrap(), "p");
            assert!(e.get("args").unwrap().get("event").is_some());
        }
        assert_eq!(instants[3].get("ts").unwrap().as_f64().unwrap(), 1.75e6);
        assert_eq!(instants[0].get("tid").unwrap().as_f64().unwrap(), 2.0);
        // The task spans are unaffected.
        let spans = all.iter().filter(|e| e.get("ph").and_then(Json::as_str) == Some("X")).count();
        assert_eq!(spans, 2);
    }

    #[test]
    fn critical_path_guards_degenerate_inputs() {
        let m = RunMetrics::from_trace("t", &sample_trace(), 2);
        // Normal case: efficiency in (0, 1].
        let ok = m.clone().with_critical_path(1.0);
        assert!(ok.efficiency_vs_critical_path > 0.0 && ok.efficiency_vs_critical_path <= 1.0);
        // NaN / Inf / negative bounds record as "not computed".
        for bad in [f64::NAN, f64::INFINITY, -1.0, 0.0] {
            let g = m.clone().with_critical_path(bad);
            assert_eq!(g.critical_path_seconds, 0.0, "{bad}");
            assert_eq!(g.efficiency_vs_critical_path, 0.0, "{bad}");
        }
        // Zero-makespan run (empty trace): no division, efficiency 0.
        let empty = RunMetrics::from_trace("e", &Trace::default(), 1).with_critical_path(1.0);
        assert_eq!(empty.efficiency_vs_critical_path, 0.0);
        // A bound exceeding the makespan clamps to 1 instead of >1.
        let clamped = m.clone().with_critical_path(1e9);
        assert_eq!(clamped.efficiency_vs_critical_path, 1.0);
    }

    #[test]
    fn comparison_table_guards_empty_and_nonfinite() {
        let empty = RunMetrics::comparison_table(&[]);
        assert!(empty.contains("(no runs)"), "{empty}");
        let poisoned = RunMetrics {
            label: "bad".into(),
            makespan: f64::NAN,
            load_imbalance: f64::INFINITY,
            ..RunMetrics::default()
        };
        let table = RunMetrics::comparison_table(&[poisoned]);
        assert!(!table.contains("NaN") && !table.contains("inf"), "{table}");
    }

    #[test]
    fn registry_snapshot_attaches_to_metrics_and_prometheus() {
        use registry::{Counter, Registry};
        let reg = Registry::new(2);
        reg.add(0, Counter::TasksExecuted, 5);
        reg.record_class_seconds(1, TaskClass::Gemm, 2e-3);
        let m = RunMetrics::from_trace("run a", &sample_trace(), 2).with_registry(reg.snapshot());
        let j = m.to_json();
        let snap_counters = j.get("registry").and_then(|r| r.get("counters"));
        assert!(snap_counters.is_some());
        let prom = m.to_prometheus();
        assert!(prom.contains("tlr_run_makespan_seconds{run=\"run_a\"}"), "{prom}");
        if Registry::compiled() {
            assert!(prom.contains("tlr_tasks_executed_total 5"), "{prom}");
            assert_eq!(m.registry.as_ref().unwrap().counter(Counter::TasksExecuted), 5);
        }
        // Without a registry the field stays out of the JSON.
        let bare = RunMetrics::from_trace("b", &sample_trace(), 2);
        assert!(bare.to_json().get("registry").is_none());
    }
}

//! Distributed-memory execution engine (message-passing emulation).
//!
//! The shared-memory executor validates numerics but not the *dataflow*:
//! on a cluster every rank owns a disjoint slice of the tiles and remote
//! inputs arrive as messages. This engine emulates exactly that — each
//! rank is a thread with a **private** payload store (no shared tiles),
//! and every dataflow edge whose producer and consumer live on different
//! ranks becomes a real message over a channel, carrying a *copy* of the
//! produced payload. A wrong owner function, a missing dependency edge,
//! or an execution remap that forgets to ship a tile produces a hang or
//! a wrong answer here, not silent success.
//!
//! Scheduling is deliberately simple and deadlock-free: each rank
//! executes its tasks in a global topological order, blocking on the
//! receipt of remote inputs. Messages are tagged with
//! `(producer task, datum)`; out-of-order arrivals are parked until
//! needed. Sends never block (unbounded channels), so the system cannot
//! deadlock for any task placement.
//!
//! The engine is payload-generic; `hicma-core` instantiates it with TLR
//! tiles to run the factorization across emulated ranks and checks the
//! result against the shared-memory path.

use crate::graph::{DataRef, TaskGraph, TaskId};
use crossbeam::channel::{unbounded, Receiver, Sender};
use std::collections::HashMap;

/// A message: the payload produced by `producer` for datum `data`.
struct Msg<P> {
    producer: TaskId,
    data: DataRef,
    payload: P,
}

/// Context handed to the task body on its executing rank.
pub struct RankCtx<'a, P> {
    rank: usize,
    store: &'a mut HashMap<DataRef, P>,
    /// inputs received from remote producers for the current task
    remote_inputs: HashMap<(TaskId, DataRef), P>,
}

impl<P> RankCtx<'_, P> {
    /// This rank's id.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Borrow a datum: a remote input shipped for this task if one
    /// exists, otherwise the rank-local store.
    ///
    /// # Panics
    /// Panics when the datum is neither local nor shipped — i.e. the
    /// graph is missing a dependency edge (exactly the bug class this
    /// engine exists to catch).
    pub fn get(&self, producer: Option<TaskId>, data: DataRef) -> &P {
        if let Some(pid) = producer {
            if let Some(p) = self.remote_inputs.get(&(pid, data)) {
                return p;
            }
        }
        self.store.get(&data).unwrap_or_else(|| {
            panic!(
                "rank {}: datum ({}, {}) neither local nor shipped — missing dependency edge?",
                self.rank, data.i, data.j
            )
        })
    }

    /// Store (or overwrite) a datum in the rank-local store.
    pub fn put(&mut self, data: DataRef, payload: P) {
        self.store.insert(data, payload);
    }

    /// Take a datum out of the local store (for in-place mutation).
    pub fn take(&mut self, data: DataRef) -> Option<P> {
        self.store.remove(&data)
    }

    /// Take a shipped remote input (consuming it).
    pub fn take_remote(&mut self, producer: TaskId, data: DataRef) -> Option<P> {
        self.remote_inputs.remove(&(producer, data))
    }
}

/// Execute `graph` across `nprocs` emulated ranks.
///
/// * `exec_rank[t]` — the rank executing task `t`;
/// * `initial[r]` — rank `r`'s initial datum store (the data
///   distribution);
/// * `body(task, ctx)` — runs the kernel on the executing rank and must
///   `put` the produced datum into the store; its return value is the
///   payload shipped to remote consumers (usually a clone of the written
///   datum).
///
/// Returns the final per-rank stores.
pub fn execute_distributed<P, F>(
    graph: &TaskGraph,
    nprocs: usize,
    exec_rank: &[usize],
    initial: Vec<HashMap<DataRef, P>>,
    body: F,
) -> Vec<HashMap<DataRef, P>>
where
    P: Send + Clone,
    F: Fn(TaskId, &mut RankCtx<'_, P>) -> P + Sync,
{
    assert_eq!(exec_rank.len(), graph.len(), "one rank per task");
    assert_eq!(initial.len(), nprocs, "one initial store per rank");
    let order = graph.topological_order().expect("distributed execution requires a DAG");
    for (t, &r) in exec_rank.iter().enumerate() {
        assert!(r < nprocs, "task {t} mapped to invalid rank {r}");
    }

    // Per-rank task list in topological order.
    let mut rank_tasks: Vec<Vec<TaskId>> = vec![Vec::new(); nprocs];
    for &t in &order {
        rank_tasks[exec_rank[t]].push(t);
    }

    // Incoming remote edges per task: (producer, datum).
    let mut remote_inputs: Vec<Vec<(TaskId, DataRef)>> = vec![Vec::new(); graph.len()];
    // Outgoing remote consumers per task: datum → distinct ranks.
    let mut remote_sends: Vec<Vec<(DataRef, usize, TaskId)>> = vec![Vec::new(); graph.len()];
    for src in 0..graph.len() {
        for e in graph.successors(src) {
            if exec_rank[e.dst] != exec_rank[src] {
                remote_inputs[e.dst].push((src, e.data));
                remote_sends[src].push((e.data, exec_rank[e.dst], e.dst));
            }
        }
    }

    // Channels.
    let (senders, receivers): (Vec<Sender<Msg<P>>>, Vec<Receiver<Msg<P>>>) =
        (0..nprocs).map(|_| unbounded()).unzip();

    let stores: Vec<HashMap<DataRef, P>> = std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for (rank, (mut store, rx)) in initial.into_iter().zip(receivers).enumerate() {
            let my_tasks = rank_tasks[rank].clone();
            let senders = senders.clone();
            let remote_inputs = &remote_inputs;
            let remote_sends = &remote_sends;
            let body = &body;
            handles.push(scope.spawn(move || {
                // Parked out-of-order messages. The same (producer, datum)
                // key can be in flight multiple times — one copy per
                // consumer task on this rank — so parking must be a
                // multiset, not a map (a map would drop copies and
                // deadlock the later consumers).
                let mut parked: HashMap<(TaskId, DataRef), Vec<P>> = HashMap::new();
                for t in my_tasks {
                    // Gather this task's remote inputs (blocking).
                    let mut ctx_inputs: HashMap<(TaskId, DataRef), P> = HashMap::new();
                    for &(producer, data) in &remote_inputs[t] {
                        let key = (producer, data);
                        let parked_hit = parked.get_mut(&key).and_then(Vec::pop);
                        let payload = match parked_hit {
                            Some(p) => p,
                            None => loop {
                                let msg = rx
                                    .recv()
                                    .expect("sender hung up before inputs arrived");
                                let mkey = (msg.producer, msg.data);
                                if mkey == key {
                                    break msg.payload;
                                }
                                parked.entry(mkey).or_default().push(msg.payload);
                            },
                        };
                        ctx_inputs.insert(key, payload);
                    }
                    // Run the kernel.
                    let mut ctx = RankCtx {
                        rank,
                        store: &mut store,
                        remote_inputs: ctx_inputs,
                    };
                    let produced = body(t, &mut ctx);
                    // Ship to remote consumers (one copy per consumer task;
                    // a real runtime would broadcast once per rank, but
                    // per-task tags keep the receive logic trivial).
                    for &(data, dst_rank, dst_task) in &remote_sends[t] {
                        let _ = dst_task;
                        senders[dst_rank]
                            .send(Msg { producer: t, data, payload: produced.clone() })
                            .expect("receiver hung up");
                    }
                }
                drop(senders);
                store
            }));
        }
        drop(senders);
        handles.into_iter().map(|h| h.join().expect("rank thread panicked")).collect()
    });
    stores
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{TaskClass, TaskSpec};

    fn spec(priority: usize, writes: DataRef) -> TaskSpec {
        TaskSpec { class: TaskClass::Other, priority, writes: Some(writes), flops: 0.0 }
    }

    /// Sum-chain across ranks: task k computes v_k = v_{k-1} + 1, each on
    /// a different rank; the payload must travel through every rank.
    #[test]
    fn chain_across_ranks() {
        let n = 12usize;
        let nprocs = 4usize;
        let mut g = TaskGraph::new();
        for k in 0..n {
            g.add_task(spec(k, DataRef { i: k, j: 0 }));
        }
        for k in 0..n - 1 {
            g.add_edge(k, k + 1, DataRef { i: k, j: 0 }, 8);
        }
        let exec: Vec<usize> = (0..n).map(|k| k % nprocs).collect();
        let mut initial: Vec<HashMap<DataRef, i64>> = vec![HashMap::new(); nprocs];
        initial[0].insert(DataRef { i: 0, j: 0 }, 0); // seed... overwritten by task 0
        let stores = execute_distributed(&g, nprocs, &exec, initial, |t, ctx| {
            let v = if t == 0 {
                1
            } else {
                // the predecessor's payload was shipped (or is local)
                *ctx.get(Some(t - 1), DataRef { i: t - 1, j: 0 }) + 1
            };
            ctx.put(DataRef { i: t, j: 0 }, v);
            v
        });
        // task n−1 ran on rank (n−1)%nprocs and stored v = n
        let last_rank = (n - 1) % nprocs;
        assert_eq!(stores[last_rank][&DataRef { i: n - 1, j: 0 }], n as i64);
    }

    /// Broadcast: one producer, many consumers on all ranks; every
    /// consumer must observe the produced value.
    #[test]
    fn broadcast_to_all_ranks() {
        let nprocs = 5usize;
        let consumers = 16usize;
        let mut g = TaskGraph::new();
        let root = g.add_task(spec(0, DataRef { i: 0, j: 0 }));
        let data = DataRef { i: 0, j: 0 };
        for c in 0..consumers {
            let t = g.add_task(spec(1, DataRef { i: 1 + c, j: 0 }));
            g.add_edge(root, t, data, 8);
        }
        let mut exec = vec![0usize];
        exec.extend((0..consumers).map(|c| c % nprocs));
        let initial: Vec<HashMap<DataRef, i64>> = vec![HashMap::new(); nprocs];
        let stores = execute_distributed(&g, nprocs, &exec, initial, move |t, ctx| {
            if t == 0 {
                ctx.put(data, 42);
                42
            } else {
                let v = *ctx.get(Some(0), data);
                ctx.put(DataRef { i: t, j: 0 }, v * 2);
                v * 2
            }
        });
        let mut seen = 0;
        for s in &stores {
            for (d, v) in s {
                if d.i >= 1 {
                    assert_eq!(*v, 84);
                    seen += 1;
                }
            }
        }
        assert_eq!(seen, consumers);
    }

    /// Out-of-order arrivals: two producers on different ranks feed one
    /// consumer; whichever message lands first must be parked correctly.
    #[test]
    fn out_of_order_messages_parked() {
        let mut g = TaskGraph::new();
        let a = g.add_task(spec(0, DataRef { i: 0, j: 0 }));
        let b = g.add_task(spec(0, DataRef { i: 1, j: 0 }));
        let c = g.add_task(spec(1, DataRef { i: 2, j: 0 }));
        g.add_edge(a, c, DataRef { i: 0, j: 0 }, 8);
        g.add_edge(b, c, DataRef { i: 1, j: 0 }, 8);
        let exec = vec![0, 1, 2];
        let initial: Vec<HashMap<DataRef, i64>> = vec![HashMap::new(); 3];
        let stores = execute_distributed(&g, 3, &exec, initial, move |t, ctx| match t {
            0 => {
                ctx.put(DataRef { i: 0, j: 0 }, 7);
                7
            }
            1 => {
                ctx.put(DataRef { i: 1, j: 0 }, 11);
                11
            }
            _ => {
                let x = *ctx.get(Some(0), DataRef { i: 0, j: 0 });
                let y = *ctx.get(Some(1), DataRef { i: 1, j: 0 });
                ctx.put(DataRef { i: 2, j: 0 }, x * y);
                x * y
            }
        });
        assert_eq!(stores[2][&DataRef { i: 2, j: 0 }], 77);
    }

    /// Regression: two consumers of the same datum on one rank, with the
    /// shared message forced to be *parked* (the rank first blocks on a
    /// slower producer). Parking used to be a HashMap, which dropped the
    /// second copy and deadlocked the second consumer.
    #[test]
    fn duplicate_parked_messages_are_not_lost() {
        let mut g = TaskGraph::new();
        let fast = g.add_task(spec(0, DataRef { i: 0, j: 0 })); // rank 1
        let slow = g.add_task(spec(0, DataRef { i: 1, j: 0 })); // rank 2
        // rank 0 waits for `slow` FIRST (topological insertion order), so
        // both copies of `fast`'s payload arrive early and must be parked.
        let gate = g.add_task(spec(1, DataRef { i: 2, j: 0 }));
        let c1 = g.add_task(spec(2, DataRef { i: 3, j: 0 }));
        let c2 = g.add_task(spec(3, DataRef { i: 4, j: 0 }));
        let d_fast = DataRef { i: 0, j: 0 };
        let d_slow = DataRef { i: 1, j: 0 };
        g.add_edge(slow, gate, d_slow, 8);
        g.add_edge(fast, c1, d_fast, 8);
        g.add_edge(fast, c2, d_fast, 8);
        g.add_edge(gate, c1, DataRef { i: 2, j: 0 }, 0);

        let exec = vec![1, 2, 0, 0, 0];
        let initial: Vec<HashMap<DataRef, i64>> = vec![HashMap::new(); 3];
        let stores = execute_distributed(&g, 3, &exec, initial, move |t, ctx| match t {
            0 => {
                ctx.put(d_fast, 5);
                5
            }
            1 => {
                // slow producer: give `fast`'s two copies time to arrive
                std::thread::sleep(std::time::Duration::from_millis(30));
                ctx.put(d_slow, 7);
                7
            }
            2 => {
                let v = *ctx.get(Some(1), d_slow);
                ctx.put(DataRef { i: 2, j: 0 }, v);
                v
            }
            3 => {
                let v = *ctx.get(Some(0), d_fast) * 10;
                ctx.put(DataRef { i: 3, j: 0 }, v);
                v
            }
            _ => {
                let v = *ctx.get(Some(0), d_fast) * 100;
                ctx.put(DataRef { i: 4, j: 0 }, v);
                v
            }
        });
        assert_eq!(stores[0][&DataRef { i: 3, j: 0 }], 50);
        assert_eq!(stores[0][&DataRef { i: 4, j: 0 }], 500);
    }

    /// A task whose input was never wired panics with the diagnostic.
    #[test]
    fn missing_edge_panics_with_diagnostic() {
        let mut g = TaskGraph::new();
        let _a = g.add_task(spec(0, DataRef { i: 0, j: 0 }));
        let _b = g.add_task(spec(1, DataRef { i: 1, j: 0 }));
        // no edge a → b although b reads a's datum
        let exec = vec![0, 1];
        let initial: Vec<HashMap<DataRef, i64>> = vec![HashMap::new(); 2];
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            execute_distributed(&g, 2, &exec, initial, |t, ctx| {
                if t == 0 {
                    ctx.put(DataRef { i: 0, j: 0 }, 1);
                    1
                } else {
                    *ctx.get(None, DataRef { i: 0, j: 0 }) // not local on rank 1!
                }
            });
        }));
        assert!(result.is_err(), "missing dependency must be caught");
    }
}

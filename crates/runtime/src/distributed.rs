//! Distributed-memory execution engine (message-passing emulation).
//!
//! The shared-memory executor validates numerics but not the *dataflow*:
//! on a cluster every rank owns a disjoint slice of the tiles and remote
//! inputs arrive as messages. This engine emulates exactly that — each
//! rank is a thread with a **private** payload store (no shared tiles),
//! and every dataflow edge whose producer and consumer live on different
//! ranks becomes a real message over a channel, carrying a *copy* of the
//! produced payload. A wrong owner function, a missing dependency edge,
//! or an execution remap that forgets to ship a tile produces a hang or
//! a wrong answer here, not silent success.
//!
//! Scheduling is deliberately simple and deadlock-free: each rank
//! executes its tasks in a global topological order, blocking on the
//! receipt of remote inputs. Messages are tagged with
//! `(producer task, datum)`; out-of-order arrivals are parked until
//! needed. Sends never block (unbounded channels), so the system cannot
//! deadlock for any task placement.
//!
//! The engine is payload-generic; `hicma-core` instantiates it with TLR
//! tiles to run the factorization across emulated ranks and checks the
//! result against the shared-memory path.

use crate::des::CommStats;
use crate::fault::{FaultStats, FtConfig, FtError};
use crate::graph::{DataRef, TaskGraph, TaskId};
use crate::obs::RunEvent;
use crossbeam::channel::{unbounded, Receiver, Sender};
use std::collections::{BinaryHeap, HashMap, HashSet, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};

/// A message: the payload produced by `producer` for datum `data`.
struct Msg<P> {
    producer: TaskId,
    data: DataRef,
    payload: P,
}

/// Context handed to the task body on its executing rank.
pub struct RankCtx<'a, P> {
    rank: usize,
    store: &'a mut HashMap<DataRef, P>,
    /// inputs received from remote producers for the current task
    remote_inputs: HashMap<(TaskId, DataRef), P>,
}

impl<P> RankCtx<'_, P> {
    /// This rank's id.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Borrow a datum: a remote input shipped for this task if one
    /// exists, otherwise the rank-local store.
    ///
    /// # Panics
    /// Panics when the datum is neither local nor shipped — i.e. the
    /// graph is missing a dependency edge (exactly the bug class this
    /// engine exists to catch).
    pub fn get(&self, producer: Option<TaskId>, data: DataRef) -> &P {
        if let Some(pid) = producer {
            if let Some(p) = self.remote_inputs.get(&(pid, data)) {
                return p;
            }
        }
        self.store.get(&data).unwrap_or_else(|| {
            panic!(
                "rank {}: datum ({}, {}) neither local nor shipped — missing dependency edge?",
                self.rank, data.i, data.j
            )
        })
    }

    /// Store (or overwrite) a datum in the rank-local store.
    pub fn put(&mut self, data: DataRef, payload: P) {
        self.store.insert(data, payload);
    }

    /// Take a datum out of the local store (for in-place mutation).
    pub fn take(&mut self, data: DataRef) -> Option<P> {
        self.store.remove(&data)
    }

    /// Take a shipped remote input (consuming it).
    pub fn take_remote(&mut self, producer: TaskId, data: DataRef) -> Option<P> {
        self.remote_inputs.remove(&(producer, data))
    }
}

/// Execute `graph` across `nprocs` emulated ranks.
///
/// * `exec_rank[t]` — the rank executing task `t`;
/// * `initial[r]` — rank `r`'s initial datum store (the data
///   distribution);
/// * `body(task, ctx)` — runs the kernel on the executing rank and must
///   `put` the produced datum into the store; its return value is the
///   payload shipped to remote consumers (usually a clone of the written
///   datum).
///
/// Returns the final per-rank stores.
pub fn execute_distributed<P, F>(
    graph: &TaskGraph,
    nprocs: usize,
    exec_rank: &[usize],
    initial: Vec<HashMap<DataRef, P>>,
    body: F,
) -> Vec<HashMap<DataRef, P>>
where
    P: Send + Clone,
    F: Fn(TaskId, &mut RankCtx<'_, P>) -> P + Sync,
{
    execute_distributed_counted(graph, nprocs, exec_rank, initial, body).0
}

/// [`execute_distributed`] that also reports communication totals: the
/// number of cross-rank messages actually sent and their payload bytes
/// (from the dataflow edges' `bytes` annotations). This is the real-run
/// counterpart of the DES's modeled [`CommStats`], so measured and
/// simulated communication volume are directly comparable.
pub fn execute_distributed_counted<P, F>(
    graph: &TaskGraph,
    nprocs: usize,
    exec_rank: &[usize],
    initial: Vec<HashMap<DataRef, P>>,
    body: F,
) -> (Vec<HashMap<DataRef, P>>, CommStats)
where
    P: Send + Clone,
    F: Fn(TaskId, &mut RankCtx<'_, P>) -> P + Sync,
{
    assert_eq!(exec_rank.len(), graph.len(), "one rank per task");
    assert_eq!(initial.len(), nprocs, "one initial store per rank");
    let order = graph.topological_order().expect("distributed execution requires a DAG");
    for (t, &r) in exec_rank.iter().enumerate() {
        assert!(r < nprocs, "task {t} mapped to invalid rank {r}");
    }

    // Per-rank task list in topological order.
    let mut rank_tasks: Vec<Vec<TaskId>> = vec![Vec::new(); nprocs];
    for &t in &order {
        rank_tasks[exec_rank[t]].push(t);
    }

    // Incoming remote edges per task: (producer, datum).
    let mut remote_inputs: Vec<Vec<(TaskId, DataRef)>> = vec![Vec::new(); graph.len()];
    // Outgoing remote consumers per task: datum → distinct ranks, with
    // the edge's payload size for communication accounting.
    let mut remote_sends: Vec<Vec<(DataRef, usize, TaskId, u64)>> =
        vec![Vec::new(); graph.len()];
    for src in 0..graph.len() {
        for e in graph.successors(src) {
            if exec_rank[e.dst] != exec_rank[src] {
                remote_inputs[e.dst].push((src, e.data));
                remote_sends[src].push((e.data, exec_rank[e.dst], e.dst, e.bytes));
            }
        }
    }

    let sent_messages = AtomicU64::new(0);
    let sent_bytes = AtomicU64::new(0);

    // Channels.
    type Endpoints<P> = (Vec<Sender<Msg<P>>>, Vec<Receiver<Msg<P>>>);
    let (senders, receivers): Endpoints<P> = (0..nprocs).map(|_| unbounded()).unzip();

    let stores: Vec<HashMap<DataRef, P>> = std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for (rank, (mut store, rx)) in initial.into_iter().zip(receivers).enumerate() {
            let my_tasks = rank_tasks[rank].clone();
            let senders = senders.clone();
            let remote_inputs = &remote_inputs;
            let remote_sends = &remote_sends;
            let body = &body;
            let sent_messages = &sent_messages;
            let sent_bytes = &sent_bytes;
            handles.push(scope.spawn(move || {
                // Parked out-of-order messages. The same (producer, datum)
                // key can be in flight multiple times — one copy per
                // consumer task on this rank — so parking must be a
                // multiset, not a map (a map would drop copies and
                // deadlock the later consumers).
                let mut parked: HashMap<(TaskId, DataRef), Vec<P>> = HashMap::new();
                for t in my_tasks {
                    // Gather this task's remote inputs (blocking).
                    let mut ctx_inputs: HashMap<(TaskId, DataRef), P> = HashMap::new();
                    for &(producer, data) in &remote_inputs[t] {
                        let key = (producer, data);
                        let parked_hit = parked.get_mut(&key).and_then(Vec::pop);
                        let payload = match parked_hit {
                            Some(p) => p,
                            None => loop {
                                let msg = rx
                                    .recv()
                                    .expect("sender hung up before inputs arrived");
                                let mkey = (msg.producer, msg.data);
                                if mkey == key {
                                    break msg.payload;
                                }
                                parked.entry(mkey).or_default().push(msg.payload);
                            },
                        };
                        ctx_inputs.insert(key, payload);
                    }
                    // Run the kernel.
                    let mut ctx = RankCtx {
                        rank,
                        store: &mut store,
                        remote_inputs: ctx_inputs,
                    };
                    let produced = body(t, &mut ctx);
                    // Ship to remote consumers (one copy per consumer task;
                    // a real runtime would broadcast once per rank, but
                    // per-task tags keep the receive logic trivial).
                    for &(data, dst_rank, dst_task, bytes) in &remote_sends[t] {
                        let _ = dst_task;
                        sent_messages.fetch_add(1, Ordering::Relaxed);
                        sent_bytes.fetch_add(bytes, Ordering::Relaxed);
                        senders[dst_rank]
                            .send(Msg { producer: t, data, payload: produced.clone() })
                            .expect("receiver hung up");
                    }
                }
                drop(senders);
                store
            }));
        }
        drop(senders);
        handles.into_iter().map(|h| h.join().expect("rank thread panicked")).collect()
    });
    let comm = CommStats {
        bytes: sent_bytes.load(Ordering::Relaxed),
        messages: sent_messages.load(Ordering::Relaxed),
    };
    (stores, comm)
}

// ======================= fault-tolerant engine =======================
//
// The thread-based engine above assumes a perfect network. The engine
// below runs the same task/dataflow semantics through a deterministic
// virtual-time event loop and injects faults from a seeded
// `FaultPlan`: message drops, duplications, delay jitter, ack loss,
// fail-stop rank crashes, and transient kernel failures. Recovery uses
// the classic message-logging playbook:
//
// * every cross-rank send is sequence-numbered and logged by the sender
//   (payload retained for the whole run — "retained until acked" plus a
//   replay log for crash recovery);
// * receivers deduplicate by message id, so duplicated or spuriously
//   retransmitted deliveries are harmless;
// * unacked messages are retransmitted after a timeout with capped
//   exponential backoff; acks are attempt-tagged so a stale ack cannot
//   cancel the retransmission of a newer attempt;
// * a crashed rank loses its memory; a surviving rank inherits its
//   initial tiles from a checkpoint, re-executes the lost rank's tasks
//   in topological order, and has logged messages from surviving
//   producers replayed to it.
//
// Determinism argument (the factor must match the fault-free
// shared-memory run *bit for bit*): kernels are deterministic, each
// rank executes its queue in a fixed topological order, and every task
// consumes either the rank-local version chain (writers of a tile are
// co-located and replay from the checkpoint in order) or an exact logged
// copy of its producer's output. Message timing, loss, duplication and
// crashes therefore change *when* a task runs, never *what* it reads.
//
// Edge locality is decided **statically** from the original placement:
// an edge whose endpoints started on different ranks stays
// message-carried even if a migration makes them co-resident. This is
// load-bearing — a migrated consumer must see its producer's logged
// payload (the version it would have received), not whatever newer
// version of that tile the survivor's store holds.

/// Result of a fault-tolerant distributed run.
#[derive(Debug)]
pub struct FtOutcome<P> {
    /// Final per-rank stores (dead ranks are empty).
    pub stores: Vec<HashMap<DataRef, P>>,
    /// Final task → rank assignment after crash migrations.
    pub exec_rank: Vec<usize>,
    /// What the fault plan actually did and what recovery cost.
    pub stats: FaultStats,
    /// Virtual makespan of the run (seconds).
    pub makespan: f64,
    /// Crash and recovery events in virtual-time order. Every
    /// [`RunEvent::Crash`] that the engine survives is immediately
    /// followed by its matching [`RunEvent::Recovery`] naming the
    /// survivor that absorbed the dead rank's work.
    pub events: Vec<RunEvent>,
}

/// Sender-side log entry for one logical message (producer → consumer
/// for one datum). Attempts share the entry; the payload is retained
/// for crash replay.
struct MsgRec<P> {
    src: TaskId,
    dst: TaskId,
    data: DataRef,
    payload: P,
    /// Payload size (the dataflow edge's `bytes`) for volume accounting.
    bytes: u64,
    /// Send attempts so far (acks and timeouts are tagged with this).
    attempts: u32,
    /// Latest attempt was acknowledged.
    acked: bool,
    /// Gave up after `max_send_attempts`.
    abandoned: bool,
}

enum EvKind {
    /// Wake a rank: start its next ready task if idle.
    TryStart { rank: usize },
    /// A task's virtual execution time elapsed.
    TaskDone { rank: usize, task: TaskId, epoch: u32 },
    /// A message copy reaches its consumer's current rank.
    Deliver { msg: usize, attempt: u32 },
    /// An acknowledgement reaches the sender.
    AckArrive { msg: usize, attempt: u32 },
    /// Retransmission timer for an attempt fired.
    Timeout { msg: usize, attempt: u32 },
    /// Fail-stop crash of a rank.
    Crash { rank: usize },
}

/// Heap entry ordered by (time, insertion sequence) — the sequence makes
/// simultaneous events deterministic.
struct Ev {
    time: f64,
    seq: u64,
    kind: EvKind,
}

impl PartialEq for Ev {
    fn eq(&self, other: &Self) -> bool {
        self.seq == other.seq
    }
}
impl Eq for Ev {}
impl PartialOrd for Ev {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Ev {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // reversed: BinaryHeap is a max-heap, we want the earliest event
        other.time.total_cmp(&self.time).then_with(|| other.seq.cmp(&self.seq))
    }
}

fn push_ev(heap: &mut BinaryHeap<Ev>, seq: &mut u64, time: f64, kind: EvKind) {
    *seq += 1;
    heap.push(Ev { time, seq: *seq, kind });
}

/// Roll the fates for one send attempt of `recs[id]` and schedule its
/// delivery (possibly duplicated, possibly dropped) and its
/// retransmission timeout.
#[allow(clippy::too_many_arguments)]
fn schedule_send<P>(
    id: usize,
    recs: &mut [MsgRec<P>],
    now: f64,
    cfg: &FtConfig,
    stats: &mut FaultStats,
    heap: &mut BinaryHeap<Ev>,
    seq: &mut u64,
) {
    let rec = &mut recs[id];
    if rec.attempts >= cfg.retry.max_send_attempts {
        if !rec.abandoned {
            rec.abandoned = true;
            stats.sends_abandoned += 1;
        }
        return;
    }
    rec.attempts += 1;
    let attempt = rec.attempts;
    if attempt == 1 {
        stats.messages_sent += 1;
    } else {
        stats.retransmissions += 1;
    }
    // Every attempt puts the payload on the wire (even if it is then
    // dropped in flight), so each one counts toward volume.
    stats.bytes_sent += rec.bytes;
    let mid = id as u64;
    if cfg.plan.drops_message(mid, attempt) {
        stats.messages_dropped += 1;
    } else {
        let dt = cfg.latency + cfg.plan.delay(mid, attempt, 0);
        push_ev(heap, seq, now + dt, EvKind::Deliver { msg: id, attempt });
        if cfg.plan.duplicates_message(mid, attempt) {
            stats.messages_duplicated += 1;
            let dt2 = cfg.latency + cfg.plan.delay(mid, attempt, 1);
            push_ev(heap, seq, now + dt2, EvKind::Deliver { msg: id, attempt });
        }
    }
    push_ev(heap, seq, now + cfg.retry.timeout_for(attempt), EvKind::Timeout { msg: id, attempt });
}

/// Execute `graph` across `nprocs` emulated ranks under a fault plan.
///
/// Same task/dataflow semantics as [`execute_distributed`], driven by a
/// deterministic virtual-time event loop instead of threads, with the
/// faults of `cfg.plan` injected and recovered from. The produced data
/// is bit-identical to a fault-free run for *any* plan the engine
/// survives; timing, retransmissions and re-executed work are reported
/// in [`FtOutcome::stats`].
///
/// Unlike the thread engine, recoverable networks need no `Send`/`Sync`
/// bounds; `body` must be deterministic for the recovery equivalence to
/// hold.
pub fn execute_distributed_ft<P, F>(
    graph: &TaskGraph,
    nprocs: usize,
    exec_rank: &[usize],
    initial: Vec<HashMap<DataRef, P>>,
    cfg: &FtConfig,
    body: F,
) -> Result<FtOutcome<P>, FtError>
where
    P: Clone,
    F: Fn(TaskId, &mut RankCtx<'_, P>) -> P,
{
    assert_eq!(exec_rank.len(), graph.len(), "one rank per task");
    assert_eq!(initial.len(), nprocs, "one initial store per rank");
    let order = graph.topological_order().expect("distributed execution requires a DAG");
    let ntasks = graph.len();
    for (t, &r) in exec_rank.iter().enumerate() {
        assert!(r < nprocs, "task {t} mapped to invalid rank {r}");
    }
    for c in &cfg.plan.crashes {
        assert!(c.rank < nprocs, "crash of invalid rank {}", c.rank);
    }

    let mut topo_pos = vec![0usize; ntasks];
    for (pos, &t) in order.iter().enumerate() {
        topo_pos[t] = pos;
    }

    // Static edge classification (see module comment: locality is the
    // *original* placement, by design).
    let mut local_preds: Vec<Vec<TaskId>> = vec![Vec::new(); ntasks];
    let mut remote_preds: Vec<Vec<(TaskId, DataRef)>> = vec![Vec::new(); ntasks];
    let mut remote_sends: Vec<Vec<(TaskId, DataRef, u64)>> = vec![Vec::new(); ntasks];
    for src in 0..ntasks {
        for e in graph.successors(src) {
            if exec_rank[e.dst] == exec_rank[src] {
                local_preds[e.dst].push(src);
            } else {
                remote_preds[e.dst].push((src, e.data));
                remote_sends[src].push((e.dst, e.data, e.bytes));
            }
        }
    }

    // Mutable run state.
    let mut cur_exec = exec_rank.to_vec();
    let mut alive = vec![true; nprocs];
    let mut epoch = vec![0u32; nprocs];
    let mut busy: Vec<Option<TaskId>> = vec![None; nprocs];
    let mut done = vec![false; ntasks];
    let mut done_count = 0usize;
    let mut kernel_attempts = vec![0u32; ntasks];
    let mut inbox: Vec<HashMap<(TaskId, DataRef), P>> =
        (0..ntasks).map(|_| HashMap::new()).collect();
    let mut seen: Vec<HashSet<usize>> = vec![HashSet::new(); nprocs];
    let mut queue: Vec<VecDeque<TaskId>> = vec![VecDeque::new(); nprocs];
    for &t in &order {
        queue[cur_exec[t]].push_back(t);
    }

    // Checkpoint of every rank's initial data — the recovery source for
    // tiles whose owner dies (a real deployment would re-generate or
    // re-load them; the cost model charges the re-execution instead).
    let checkpoint: Vec<HashMap<DataRef, P>> = initial.clone();
    let mut owned_ckpt: Vec<Vec<usize>> = (0..nprocs).map(|r| vec![r]).collect();
    let mut stores = initial;

    let mut recs: Vec<MsgRec<P>> = Vec::new();
    let mut rec_index: HashMap<(TaskId, TaskId, DataRef), usize> = HashMap::new();

    let mut stats = FaultStats::default();
    let mut events: Vec<RunEvent> = Vec::new();
    let mut heap: BinaryHeap<Ev> = BinaryHeap::new();
    let mut seq = 0u64;
    for c in &cfg.plan.crashes {
        push_ev(&mut heap, &mut seq, c.at, EvKind::Crash { rank: c.rank });
    }
    for r in 0..nprocs {
        push_ev(&mut heap, &mut seq, 0.0, EvKind::TryStart { rank: r });
    }

    let mut now = 0.0_f64;
    while let Some(ev) = heap.pop() {
        if done_count == ntasks {
            break;
        }
        now = ev.time;
        match ev.kind {
            EvKind::TryStart { rank } => {
                if !alive[rank] || busy[rank].is_some() {
                    continue;
                }
                while queue[rank].front().is_some_and(|&t| done[t] || cur_exec[t] != rank) {
                    queue[rank].pop_front();
                }
                let Some(&t) = queue[rank].front() else { continue };
                let ready = local_preds[t].iter().all(|&p| done[p])
                    && remote_preds[t].iter().all(|key| inbox[t].contains_key(key));
                if !ready {
                    continue; // re-woken by the delivery that unblocks it
                }
                queue[rank].pop_front();
                busy[rank] = Some(t);
                push_ev(
                    &mut heap,
                    &mut seq,
                    now + cfg.task_time,
                    EvKind::TaskDone { rank, task: t, epoch: epoch[rank] },
                );
            }
            EvKind::TaskDone { rank, task: t, epoch: e } => {
                if !alive[rank] || e != epoch[rank] {
                    continue; // the rank died mid-execution
                }
                busy[rank] = None;
                if cfg.plan.kernel_fails(t, kernel_attempts[t]) {
                    kernel_attempts[t] += 1;
                    stats.kernel_failures += 1;
                    if kernel_attempts[t] > cfg.retry.max_kernel_retries {
                        return Err(FtError::KernelRetriesExhausted { task: t });
                    }
                    queue[rank].push_front(t); // retry in place
                    push_ev(&mut heap, &mut seq, now, EvKind::TryStart { rank });
                    continue;
                }
                let remote_in = std::mem::take(&mut inbox[t]);
                let mut ctx = RankCtx { rank, store: &mut stores[rank], remote_inputs: remote_in };
                let produced = body(t, &mut ctx);
                done[t] = true;
                done_count += 1;
                for &(dst, data, bytes) in &remote_sends[t] {
                    if done[dst] {
                        continue; // re-execution; the consumer already has it
                    }
                    let key = (t, dst, data);
                    let id = match rec_index.get(&key) {
                        Some(&id) => {
                            // re-send through the existing log entry
                            recs[id].payload = produced.clone();
                            recs[id].acked = false;
                            recs[id].abandoned = false;
                            id
                        }
                        None => {
                            recs.push(MsgRec {
                                src: t,
                                dst,
                                data,
                                payload: produced.clone(),
                                bytes,
                                attempts: 0,
                                acked: false,
                                abandoned: false,
                            });
                            rec_index.insert(key, recs.len() - 1);
                            recs.len() - 1
                        }
                    };
                    schedule_send(id, &mut recs, now, cfg, &mut stats, &mut heap, &mut seq);
                }
                push_ev(&mut heap, &mut seq, now, EvKind::TryStart { rank });
            }
            EvKind::Deliver { msg, attempt } => {
                let (src, dst, data) = (recs[msg].src, recs[msg].dst, recs[msg].data);
                let dst_rank = cur_exec[dst];
                if !alive[dst_rank] {
                    continue; // delivered into a dead NIC; replay handles it
                }
                if seen[dst_rank].contains(&msg) {
                    stats.duplicates_ignored += 1;
                } else {
                    seen[dst_rank].insert(msg);
                    if !done[dst] {
                        inbox[dst].insert((src, data), recs[msg].payload.clone());
                        push_ev(&mut heap, &mut seq, now, EvKind::TryStart { rank: dst_rank });
                    }
                }
                // every delivery (even a dedup'd one) is acknowledged
                if cfg.plan.drops_ack(msg as u64, attempt) {
                    stats.acks_dropped += 1;
                } else {
                    push_ev(
                        &mut heap,
                        &mut seq,
                        now + cfg.latency,
                        EvKind::AckArrive { msg, attempt },
                    );
                }
            }
            EvKind::AckArrive { msg, attempt } => {
                // attempt-tagged: a stale ack must not cancel the timer
                // of a newer attempt (e.g. after a crash replay)
                if attempt == recs[msg].attempts {
                    recs[msg].acked = true;
                }
            }
            EvKind::Timeout { msg, attempt } => {
                let rec = &recs[msg];
                if rec.acked || rec.abandoned || attempt != rec.attempts || done[rec.dst] {
                    continue;
                }
                let src_rank = cur_exec[rec.src];
                if !alive[src_rank] || !done[rec.src] {
                    continue; // sender died; its re-execution re-sends
                }
                schedule_send(msg, &mut recs, now, cfg, &mut stats, &mut heap, &mut seq);
            }
            EvKind::Crash { rank: c } => {
                if !alive[c] {
                    continue;
                }
                alive[c] = false;
                stats.crashes += 1;
                events.push(RunEvent::Crash { rank: c, at: now });
                epoch[c] += 1; // invalidates the in-flight TaskDone
                busy[c] = None;
                let Some(d) = (1..nprocs).map(|k| (c + k) % nprocs).find(|&r| alive[r]) else {
                    return Err(FtError::AllRanksCrashed);
                };
                events.push(RunEvent::Recovery { failed: c, survivor: d, at: now });
                // migrate every task of the dead rank to the survivor
                let mut migrated: HashSet<TaskId> = HashSet::new();
                for t in 0..ntasks {
                    if cur_exec[t] == c {
                        cur_exec[t] = d;
                        migrated.insert(t);
                        if done[t] {
                            done[t] = false;
                            done_count -= 1;
                            stats.tasks_reexecuted += 1;
                        }
                        inbox[t].clear(); // received inputs died with c
                    }
                }
                stats.tasks_migrated += migrated.len();
                stores[c].clear();
                seen[c].clear();
                queue[c].clear();
                // the survivor restores the dead rank's initial tiles
                // (including any it had itself inherited earlier)
                let inherited = std::mem::take(&mut owned_ckpt[c]);
                for &o in &inherited {
                    for (k, v) in &checkpoint[o] {
                        stores[d].insert(*k, v.clone());
                    }
                }
                owned_ckpt[d].extend(inherited);
                // rebuild the survivor's queue in topological order
                let mut q: Vec<TaskId> = (0..ntasks)
                    .filter(|&t| cur_exec[t] == d && !done[t] && busy[d] != Some(t))
                    .collect();
                q.sort_unstable_by_key(|&t| topo_pos[t]);
                queue[d] = q.into();
                // replay logged messages from surviving completed
                // producers to the wiped, migrated consumers
                for id in 0..recs.len() {
                    let (src, dst) = (recs[id].src, recs[id].dst);
                    if migrated.contains(&dst) && !done[dst] && done[src] {
                        recs[id].acked = false;
                        recs[id].abandoned = false;
                        schedule_send(id, &mut recs, now, cfg, &mut stats, &mut heap, &mut seq);
                    }
                }
                push_ev(&mut heap, &mut seq, now, EvKind::TryStart { rank: d });
            }
        }
    }

    if done_count < ntasks {
        return Err(FtError::Stalled { pending: ntasks - done_count });
    }
    Ok(FtOutcome { stores, exec_rank: cur_exec, stats, makespan: now, events })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{TaskClass, TaskSpec};

    fn spec(priority: usize, writes: DataRef) -> TaskSpec {
        TaskSpec { class: TaskClass::Other, priority, writes: Some(writes), flops: 0.0 }
    }

    /// Sum-chain across ranks: task k computes v_k = v_{k-1} + 1, each on
    /// a different rank; the payload must travel through every rank.
    #[test]
    fn chain_across_ranks() {
        let n = 12usize;
        let nprocs = 4usize;
        let mut g = TaskGraph::new();
        for k in 0..n {
            g.add_task(spec(k, DataRef { i: k, j: 0 }));
        }
        for k in 0..n - 1 {
            g.add_edge(k, k + 1, DataRef { i: k, j: 0 }, 8);
        }
        let exec: Vec<usize> = (0..n).map(|k| k % nprocs).collect();
        let mut initial: Vec<HashMap<DataRef, i64>> = vec![HashMap::new(); nprocs];
        initial[0].insert(DataRef { i: 0, j: 0 }, 0); // seed... overwritten by task 0
        let stores = execute_distributed(&g, nprocs, &exec, initial, |t, ctx| {
            let v = if t == 0 {
                1
            } else {
                // the predecessor's payload was shipped (or is local)
                *ctx.get(Some(t - 1), DataRef { i: t - 1, j: 0 }) + 1
            };
            ctx.put(DataRef { i: t, j: 0 }, v);
            v
        });
        // task n−1 ran on rank (n−1)%nprocs and stored v = n
        let last_rank = (n - 1) % nprocs;
        assert_eq!(stores[last_rank][&DataRef { i: n - 1, j: 0 }], n as i64);
    }

    /// Broadcast: one producer, many consumers on all ranks; every
    /// consumer must observe the produced value.
    #[test]
    fn broadcast_to_all_ranks() {
        let nprocs = 5usize;
        let consumers = 16usize;
        let mut g = TaskGraph::new();
        let root = g.add_task(spec(0, DataRef { i: 0, j: 0 }));
        let data = DataRef { i: 0, j: 0 };
        for c in 0..consumers {
            let t = g.add_task(spec(1, DataRef { i: 1 + c, j: 0 }));
            g.add_edge(root, t, data, 8);
        }
        let mut exec = vec![0usize];
        exec.extend((0..consumers).map(|c| c % nprocs));
        let initial: Vec<HashMap<DataRef, i64>> = vec![HashMap::new(); nprocs];
        let stores = execute_distributed(&g, nprocs, &exec, initial, move |t, ctx| {
            if t == 0 {
                ctx.put(data, 42);
                42
            } else {
                let v = *ctx.get(Some(0), data);
                ctx.put(DataRef { i: t, j: 0 }, v * 2);
                v * 2
            }
        });
        let mut seen = 0;
        for s in &stores {
            for (d, v) in s {
                if d.i >= 1 {
                    assert_eq!(*v, 84);
                    seen += 1;
                }
            }
        }
        assert_eq!(seen, consumers);
    }

    /// Out-of-order arrivals: two producers on different ranks feed one
    /// consumer; whichever message lands first must be parked correctly.
    #[test]
    fn out_of_order_messages_parked() {
        let mut g = TaskGraph::new();
        let a = g.add_task(spec(0, DataRef { i: 0, j: 0 }));
        let b = g.add_task(spec(0, DataRef { i: 1, j: 0 }));
        let c = g.add_task(spec(1, DataRef { i: 2, j: 0 }));
        g.add_edge(a, c, DataRef { i: 0, j: 0 }, 8);
        g.add_edge(b, c, DataRef { i: 1, j: 0 }, 8);
        let exec = vec![0, 1, 2];
        let initial: Vec<HashMap<DataRef, i64>> = vec![HashMap::new(); 3];
        let stores = execute_distributed(&g, 3, &exec, initial, move |t, ctx| match t {
            0 => {
                ctx.put(DataRef { i: 0, j: 0 }, 7);
                7
            }
            1 => {
                ctx.put(DataRef { i: 1, j: 0 }, 11);
                11
            }
            _ => {
                let x = *ctx.get(Some(0), DataRef { i: 0, j: 0 });
                let y = *ctx.get(Some(1), DataRef { i: 1, j: 0 });
                ctx.put(DataRef { i: 2, j: 0 }, x * y);
                x * y
            }
        });
        assert_eq!(stores[2][&DataRef { i: 2, j: 0 }], 77);
    }

    /// Regression: two consumers of the same datum on one rank, with the
    /// shared message forced to be *parked* (the rank first blocks on a
    /// slower producer). Parking used to be a HashMap, which dropped the
    /// second copy and deadlocked the second consumer.
    #[test]
    fn duplicate_parked_messages_are_not_lost() {
        let mut g = TaskGraph::new();
        let fast = g.add_task(spec(0, DataRef { i: 0, j: 0 })); // rank 1
        let slow = g.add_task(spec(0, DataRef { i: 1, j: 0 })); // rank 2
        // rank 0 waits for `slow` FIRST (topological insertion order), so
        // both copies of `fast`'s payload arrive early and must be parked.
        let gate = g.add_task(spec(1, DataRef { i: 2, j: 0 }));
        let c1 = g.add_task(spec(2, DataRef { i: 3, j: 0 }));
        let c2 = g.add_task(spec(3, DataRef { i: 4, j: 0 }));
        let d_fast = DataRef { i: 0, j: 0 };
        let d_slow = DataRef { i: 1, j: 0 };
        g.add_edge(slow, gate, d_slow, 8);
        g.add_edge(fast, c1, d_fast, 8);
        g.add_edge(fast, c2, d_fast, 8);
        g.add_edge(gate, c1, DataRef { i: 2, j: 0 }, 0);

        let exec = vec![1, 2, 0, 0, 0];
        let initial: Vec<HashMap<DataRef, i64>> = vec![HashMap::new(); 3];
        let stores = execute_distributed(&g, 3, &exec, initial, move |t, ctx| match t {
            0 => {
                ctx.put(d_fast, 5);
                5
            }
            1 => {
                // slow producer: give `fast`'s two copies time to arrive
                std::thread::sleep(std::time::Duration::from_millis(30));
                ctx.put(d_slow, 7);
                7
            }
            2 => {
                let v = *ctx.get(Some(1), d_slow);
                ctx.put(DataRef { i: 2, j: 0 }, v);
                v
            }
            3 => {
                let v = *ctx.get(Some(0), d_fast) * 10;
                ctx.put(DataRef { i: 3, j: 0 }, v);
                v
            }
            _ => {
                let v = *ctx.get(Some(0), d_fast) * 100;
                ctx.put(DataRef { i: 4, j: 0 }, v);
                v
            }
        });
        assert_eq!(stores[0][&DataRef { i: 3, j: 0 }], 50);
        assert_eq!(stores[0][&DataRef { i: 4, j: 0 }], 500);
    }

    // ---------------- fault-tolerant engine ----------------

    use crate::fault::{FaultPlan, FtConfig, RetryConfig};

    /// Sum-chain: task k computes v_k = v_{k-1} + 1 across ranks
    /// round-robin; the final value n proves every hop happened exactly
    /// once with the right payload.
    fn run_chain_ft(
        n: usize,
        nprocs: usize,
        cfg: &FtConfig,
    ) -> Result<FtOutcome<i64>, crate::fault::FtError> {
        let mut g = TaskGraph::new();
        for k in 0..n {
            g.add_task(spec(k, DataRef { i: k, j: 0 }));
        }
        for k in 0..n - 1 {
            g.add_edge(k, k + 1, DataRef { i: k, j: 0 }, 8);
        }
        let exec: Vec<usize> = (0..n).map(|k| k % nprocs).collect();
        let initial: Vec<HashMap<DataRef, i64>> = vec![HashMap::new(); nprocs];
        execute_distributed_ft(&g, nprocs, &exec, initial, cfg, |t, ctx| {
            let v = if t == 0 {
                1
            } else {
                *ctx.get(Some(t - 1), DataRef { i: t - 1, j: 0 }) + 1
            };
            ctx.put(DataRef { i: t, j: 0 }, v);
            v
        })
    }

    fn chain_result(outcome: &FtOutcome<i64>, n: usize) -> i64 {
        let last = n - 1;
        outcome.stores[outcome.exec_rank[last]][&DataRef { i: last, j: 0 }]
    }

    #[test]
    fn ft_fault_free_matches_thread_engine() {
        let out = run_chain_ft(12, 4, &FtConfig::fault_free()).unwrap();
        assert_eq!(chain_result(&out, 12), 12);
        assert_eq!(out.stats.retransmissions, 0);
        assert_eq!(out.stats.crashes, 0);
        assert!(out.makespan > 0.0);
    }

    #[test]
    fn ft_survives_drops_duplicates_and_jitter() {
        let plan = FaultPlan::new(42)
            .with_drops(0.35)
            .with_duplicates(0.30)
            .with_ack_drops(0.25)
            .with_jitter(2.0);
        let cfg = FtConfig::with_plan(plan);
        let out = run_chain_ft(16, 4, &cfg).unwrap();
        assert_eq!(chain_result(&out, 16), 16, "faults must not corrupt the data");
        assert!(out.stats.retransmissions > 0, "drops at 35% must force retransmits");
        assert!(out.stats.messages_dropped > 0);
    }

    /// Communication accounting on the thread engine: a 12-hop chain over
    /// 4 ranks ships 11 remote messages of 8 bytes each.
    #[test]
    fn counted_engine_reports_comm_volume() {
        let n = 12usize;
        let nprocs = 4usize;
        let mut g = TaskGraph::new();
        for k in 0..n {
            g.add_task(spec(k, DataRef { i: k, j: 0 }));
        }
        for k in 0..n - 1 {
            g.add_edge(k, k + 1, DataRef { i: k, j: 0 }, 8);
        }
        let exec: Vec<usize> = (0..n).map(|k| k % nprocs).collect();
        let initial: Vec<HashMap<DataRef, i64>> = vec![HashMap::new(); nprocs];
        let (stores, comm) = execute_distributed_counted(&g, nprocs, &exec, initial, |t, ctx| {
            let v = if t == 0 {
                1
            } else {
                *ctx.get(Some(t - 1), DataRef { i: t - 1, j: 0 }) + 1
            };
            ctx.put(DataRef { i: t, j: 0 }, v);
            v
        });
        assert_eq!(stores[(n - 1) % nprocs][&DataRef { i: n - 1, j: 0 }], n as i64);
        assert_eq!(comm.messages, (n - 1) as u64);
        assert_eq!(comm.bytes, 8 * (n - 1) as u64);
    }

    #[test]
    fn ft_recovers_from_mid_run_crash() {
        // By t = 6.0 rank 1 has completed task 1 (and its message);
        // killing it forces migration to rank 2 and re-execution.
        let cfg = FtConfig::with_plan(FaultPlan::new(1).with_crash(1, 6.0));
        let out = run_chain_ft(12, 4, &cfg).unwrap();
        assert_eq!(chain_result(&out, 12), 12, "crash recovery must preserve the data");
        assert_eq!(out.stats.crashes, 1);
        assert!(out.stats.tasks_migrated >= 3, "rank 1 owned tasks 1, 5, 9");
        assert!(out.stats.tasks_reexecuted >= 1, "task 1 was already done");
        assert!(out.exec_rank.iter().all(|&r| r != 1), "nothing may stay on the dead rank");
        // Re-execution happens in parallel on the survivor, so a chain's
        // makespan may be unchanged — but it can never shrink.
        let baseline = run_chain_ft(12, 4, &FtConfig::fault_free()).unwrap();
        assert!(out.makespan >= baseline.makespan);
    }

    #[test]
    fn ft_crash_plus_lossy_network() {
        let plan = FaultPlan::new(9)
            .with_drops(0.25)
            .with_duplicates(0.2)
            .with_jitter(1.0)
            .with_crash(2, 8.0);
        let out = run_chain_ft(16, 4, &FtConfig::with_plan(plan)).unwrap();
        assert_eq!(chain_result(&out, 16), 16);
        assert_eq!(out.stats.crashes, 1);
    }

    #[test]
    fn ft_double_crash_still_recovers() {
        let plan = FaultPlan::new(4).with_crash(1, 5.0).with_crash(2, 11.0);
        let out = run_chain_ft(12, 4, &FtConfig::with_plan(plan)).unwrap();
        assert_eq!(chain_result(&out, 12), 12);
        assert_eq!(out.stats.crashes, 2);
    }

    /// Every surviving crash is paired with a recovery event naming a
    /// live survivor, in virtual-time order; bytes are accounted.
    #[test]
    fn ft_events_pair_crashes_with_recoveries() {
        let plan = FaultPlan::new(4).with_drops(0.2).with_crash(1, 5.0).with_crash(2, 11.0);
        let out = run_chain_ft(12, 4, &FtConfig::with_plan(plan)).unwrap();
        assert_eq!(out.events.len(), 2 * out.stats.crashes);
        let mut last_at = 0.0_f64;
        for pair in out.events.chunks(2) {
            let crate::obs::RunEvent::Crash { rank, at } = pair[0] else {
                panic!("even-index event must be a crash: {:?}", pair[0]);
            };
            let crate::obs::RunEvent::Recovery { failed, survivor, at: rat } = pair[1] else {
                panic!("odd-index event must be a recovery: {:?}", pair[1]);
            };
            assert_eq!(failed, rank, "recovery must name the crashed rank");
            assert_ne!(survivor, rank);
            assert_eq!(at, rat, "recovery is immediate in virtual time");
            assert!(at >= last_at);
            last_at = at;
        }
        assert!(out.stats.bytes_sent >= 8 * out.stats.messages_sent as u64);
    }

    #[test]
    fn ft_all_ranks_crashed_is_an_error() {
        let plan = FaultPlan::new(0).with_crash(0, 2.0).with_crash(1, 3.0);
        let err = run_chain_ft(8, 2, &FtConfig::with_plan(plan)).unwrap_err();
        assert_eq!(err, crate::fault::FtError::AllRanksCrashed);
    }

    #[test]
    fn ft_kernel_failures_retry_then_succeed() {
        let cfg = FtConfig::with_plan(FaultPlan::new(0).with_kernel_failure(3, 2));
        let out = run_chain_ft(8, 2, &cfg).unwrap();
        assert_eq!(chain_result(&out, 8), 8);
        assert_eq!(out.stats.kernel_failures, 2);
    }

    #[test]
    fn ft_kernel_retries_exhaust() {
        let mut cfg = FtConfig::with_plan(FaultPlan::new(0).with_kernel_failure(3, 99));
        cfg.retry = RetryConfig { max_kernel_retries: 3, ..RetryConfig::default() };
        let err = run_chain_ft(8, 2, &cfg).unwrap_err();
        assert_eq!(err, crate::fault::FtError::KernelRetriesExhausted { task: 3 });
    }

    #[test]
    fn ft_is_deterministic() {
        let mk = || {
            FtConfig::with_plan(
                FaultPlan::new(77)
                    .with_drops(0.3)
                    .with_duplicates(0.25)
                    .with_ack_drops(0.2)
                    .with_jitter(1.5)
                    .with_crash(1, 7.0),
            )
        };
        let a = run_chain_ft(14, 4, &mk()).unwrap();
        let b = run_chain_ft(14, 4, &mk()).unwrap();
        assert_eq!(chain_result(&a, 14), chain_result(&b, 14));
        assert_eq!(a.stats, b.stats, "same seed must replay the same faults");
        assert_eq!(a.makespan, b.makespan);
        assert_eq!(a.exec_rank, b.exec_rank);
    }

    #[test]
    fn ft_fan_out_fan_in_under_faults() {
        // root → 10 middles (round-robin ranks) → sink summing them all;
        // exercises broadcast replay and many-input gathering.
        let width = 10usize;
        let nprocs = 4usize;
        let mut g = TaskGraph::new();
        let root = g.add_task(spec(0, DataRef { i: 0, j: 0 }));
        let sink_data = DataRef { i: 99, j: 0 };
        let mut mids = Vec::new();
        for m in 0..width {
            let t = g.add_task(spec(1, DataRef { i: 1 + m, j: 0 }));
            g.add_edge(root, t, DataRef { i: 0, j: 0 }, 8);
            mids.push(t);
        }
        let sink = g.add_task(spec(2, sink_data));
        for (m, &t) in mids.iter().enumerate() {
            g.add_edge(t, sink, DataRef { i: 1 + m, j: 0 }, 8);
        }
        let mut exec = vec![0usize];
        exec.extend((0..width).map(|m| m % nprocs));
        exec.push(0);
        let initial: Vec<HashMap<DataRef, i64>> = vec![HashMap::new(); nprocs];
        let plan = FaultPlan::new(5)
            .with_drops(0.3)
            .with_duplicates(0.3)
            .with_jitter(1.0)
            .with_crash(2, 3.0);
        let out = execute_distributed_ft(
            &g,
            nprocs,
            &exec,
            initial,
            &FtConfig::with_plan(plan),
            |t, ctx| {
                if t == root {
                    ctx.put(DataRef { i: 0, j: 0 }, 7);
                    7
                } else if t == sink {
                    let mut sum = 0;
                    for m in 0..width {
                        sum += *ctx.get(Some(1 + m), DataRef { i: 1 + m, j: 0 });
                    }
                    ctx.put(sink_data, sum);
                    sum
                } else {
                    let v = *ctx.get(Some(root), DataRef { i: 0, j: 0 }) * 2;
                    ctx.put(DataRef { i: t, j: 0 }, v);
                    v
                }
            },
        )
        .unwrap();
        let v = out.stores[out.exec_rank[sink]][&sink_data];
        assert_eq!(v, (7 * 2) * width as i64);
    }

    #[test]
    fn ft_many_seeds_never_corrupt() {
        for seed in 0..25u64 {
            let plan = FaultPlan::new(seed)
                .with_drops(0.3)
                .with_duplicates(0.25)
                .with_ack_drops(0.2)
                .with_jitter(1.5)
                .with_crash((seed % 3) as usize + 1, 4.0 + (seed % 7) as f64);
            let out = run_chain_ft(12, 4, &FtConfig::with_plan(plan))
                .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
            assert_eq!(chain_result(&out, 12), 12, "seed {seed} corrupted the chain");
        }
    }

    /// A task whose input was never wired panics with the diagnostic.
    #[test]
    fn missing_edge_panics_with_diagnostic() {
        let mut g = TaskGraph::new();
        let _a = g.add_task(spec(0, DataRef { i: 0, j: 0 }));
        let _b = g.add_task(spec(1, DataRef { i: 1, j: 0 }));
        // no edge a → b although b reads a's datum
        let exec = vec![0, 1];
        let initial: Vec<HashMap<DataRef, i64>> = vec![HashMap::new(); 2];
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            execute_distributed(&g, 2, &exec, initial, |t, ctx| {
                if t == 0 {
                    ctx.put(DataRef { i: 0, j: 0 }, 1);
                    1
                } else {
                    *ctx.get(None, DataRef { i: 0, j: 0 }) // not local on rank 1!
                }
            });
        }));
        assert!(result.is_err(), "missing dependency must be caught");
    }
}

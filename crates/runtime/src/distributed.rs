//! Legacy entry points of the distributed-memory engine.
//!
//! The message-passing emulation now lives in
//! [`crate::engine::DistEngine`]: **one** deterministic virtual-time
//! event loop whose capabilities — fault injection ([`FtConfig`]),
//! communication counting, virtual-time trace capture — are composable
//! via [`crate::engine::DistConfig`]. (This module used to hold two
//! near-identical loops: a thread-per-rank engine and a separate
//! fault-tolerant event loop. A perfect network is just the fault-free
//! configuration of the one loop, so the duplicate died.)
//!
//! The free functions here are `#[deprecated]` one-line shims kept for
//! one release:
//!
//! | legacy entry point              | replacement                                                  |
//! |---------------------------------|--------------------------------------------------------------|
//! | `execute_distributed`           | `DistEngine::new(g, n, ranks).run(init, &DistConfig::default(), ..)` |
//! | `execute_distributed_counted`   | same — `DistOutcome::comm` is always populated               |
//! | `execute_distributed_ft`        | `… DistConfig { ft: Some(&cfg), .. } …`                      |
//!
//! [`RankCtx`] moved to [`crate::engine`] and is re-exported here
//! unchanged. Precondition violations (wrong rank-map length, bad store
//! count, out-of-range ranks) are typed
//! [`EngineError`]s on the new API; the
//! shims re-raise them as panics to preserve their documented behavior.

pub use crate::engine::RankCtx;

use crate::des::CommStats;
use crate::engine::{DistConfig, DistEngine, EngineError};
use crate::fault::{FaultStats, FtConfig, FtError};
use crate::graph::{DataRef, TaskGraph, TaskId};
use crate::obs::RunEvent;
use std::collections::HashMap;

/// Result of a fault-tolerant distributed run.
#[derive(Debug)]
pub struct FtOutcome<P> {
    /// Final per-rank stores (dead ranks are empty).
    pub stores: Vec<HashMap<DataRef, P>>,
    /// Final task → rank assignment after crash migrations.
    pub exec_rank: Vec<usize>,
    /// What the fault plan actually did and what recovery cost.
    pub stats: FaultStats,
    /// Virtual makespan of the run (seconds).
    pub makespan: f64,
    /// Crash and recovery events in virtual-time order. Every
    /// [`RunEvent::Crash`] that the engine survives is immediately
    /// followed by its matching [`RunEvent::Recovery`] naming the
    /// survivor that absorbed the dead rank's work.
    pub events: Vec<RunEvent>,
}

/// Execute `graph` across `nprocs` emulated ranks.
///
/// * `exec_rank[t]` — the rank executing task `t`;
/// * `initial[r]` — rank `r`'s initial datum store (the data
///   distribution);
/// * `body(task, ctx)` — runs the kernel on the executing rank and must
///   `put` the produced datum into the store; its return value is the
///   payload shipped to remote consumers (usually a clone of the written
///   datum).
///
/// Returns the final per-rank stores.
#[deprecated(note = "use engine::DistEngine::run with engine::DistConfig")]
pub fn execute_distributed<P, F>(
    graph: &TaskGraph,
    nprocs: usize,
    exec_rank: &[usize],
    initial: Vec<HashMap<DataRef, P>>,
    body: F,
) -> Vec<HashMap<DataRef, P>>
where
    P: Send + Clone,
    F: Fn(TaskId, &mut RankCtx<'_, P>) -> P + Sync,
{
    match DistEngine::new(graph, nprocs, exec_rank).run(initial, &DistConfig::default(), body) {
        Ok(out) => out.stores,
        Err(e) => panic!("{e}"),
    }
}

/// [`execute_distributed`] that also reports communication totals: the
/// number of cross-rank messages actually sent and their payload bytes
/// (from the dataflow edges' `bytes` annotations). This is the real-run
/// counterpart of the DES's modeled [`CommStats`], so measured and
/// simulated communication volume are directly comparable.
#[deprecated(note = "use engine::DistEngine::run — DistOutcome::comm is always populated")]
pub fn execute_distributed_counted<P, F>(
    graph: &TaskGraph,
    nprocs: usize,
    exec_rank: &[usize],
    initial: Vec<HashMap<DataRef, P>>,
    body: F,
) -> (Vec<HashMap<DataRef, P>>, CommStats)
where
    P: Send + Clone,
    F: Fn(TaskId, &mut RankCtx<'_, P>) -> P + Sync,
{
    match DistEngine::new(graph, nprocs, exec_rank).run(initial, &DistConfig::default(), body) {
        Ok(out) => (out.stores, out.comm),
        Err(e) => panic!("{e}"),
    }
}

/// Execute `graph` across `nprocs` emulated ranks under a fault plan.
///
/// The produced data is bit-identical to a fault-free run for *any*
/// plan the engine survives; timing, retransmissions and re-executed
/// work are reported in [`FtOutcome::stats`]. `body` must be
/// deterministic for the recovery equivalence to hold.
#[deprecated(note = "use engine::DistEngine::run with DistConfig { ft: Some(&cfg), .. }")]
pub fn execute_distributed_ft<P, F>(
    graph: &TaskGraph,
    nprocs: usize,
    exec_rank: &[usize],
    initial: Vec<HashMap<DataRef, P>>,
    cfg: &FtConfig,
    body: F,
) -> Result<FtOutcome<P>, FtError>
where
    P: Clone,
    F: Fn(TaskId, &mut RankCtx<'_, P>) -> P,
{
    let dcfg = DistConfig { ft: Some(cfg), record_trace: false, sched: None, metrics: None };
    match DistEngine::new(graph, nprocs, exec_rank).run(initial, &dcfg, body) {
        Ok(out) => Ok(FtOutcome {
            stores: out.stores,
            exec_rank: out.exec_rank,
            stats: out.stats,
            makespan: out.makespan,
            events: out.events,
        }),
        Err(EngineError::Fault(e)) => Err(e),
        Err(e) => panic!("{e}"),
    }
}

#[cfg(test)]
mod tests {
    //! Behavioral tests of the distributed loop, exercised through the
    //! new [`DistEngine`] API, plus compatibility tests of the shims.
    use super::*;
    use crate::engine::DistOutcome;
    use crate::graph::{TaskClass, TaskSpec};

    fn spec(priority: usize, writes: DataRef) -> TaskSpec {
        TaskSpec { class: TaskClass::Other, priority, writes: Some(writes), flops: 0.0 }
    }

    fn run_dist<P: Clone, F: Fn(TaskId, &mut RankCtx<'_, P>) -> P>(
        graph: &TaskGraph,
        nprocs: usize,
        exec: &[usize],
        initial: Vec<HashMap<DataRef, P>>,
        body: F,
    ) -> Vec<HashMap<DataRef, P>> {
        DistEngine::new(graph, nprocs, exec)
            .run(initial, &DistConfig::default(), body)
            .expect("run must succeed")
            .stores
    }

    /// Sum-chain across ranks: task k computes v_k = v_{k-1} + 1, each on
    /// a different rank; the payload must travel through every rank.
    #[test]
    fn chain_across_ranks() {
        let n = 12usize;
        let nprocs = 4usize;
        let mut g = TaskGraph::new();
        for k in 0..n {
            g.add_task(spec(k, DataRef { i: k, j: 0 }));
        }
        for k in 0..n - 1 {
            g.add_edge(k, k + 1, DataRef { i: k, j: 0 }, 8);
        }
        let exec: Vec<usize> = (0..n).map(|k| k % nprocs).collect();
        let mut initial: Vec<HashMap<DataRef, i64>> = vec![HashMap::new(); nprocs];
        initial[0].insert(DataRef { i: 0, j: 0 }, 0); // seed... overwritten by task 0
        let stores = run_dist(&g, nprocs, &exec, initial, |t, ctx| {
            let v = if t == 0 {
                1
            } else {
                // the predecessor's payload was shipped (or is local)
                *ctx.get(Some(t - 1), DataRef { i: t - 1, j: 0 }) + 1
            };
            ctx.put(DataRef { i: t, j: 0 }, v);
            v
        });
        // task n−1 ran on rank (n−1)%nprocs and stored v = n
        let last_rank = (n - 1) % nprocs;
        assert_eq!(stores[last_rank][&DataRef { i: n - 1, j: 0 }], n as i64);
    }

    /// Broadcast: one producer, many consumers on all ranks; every
    /// consumer must observe the produced value.
    #[test]
    fn broadcast_to_all_ranks() {
        let nprocs = 5usize;
        let consumers = 16usize;
        let mut g = TaskGraph::new();
        let root = g.add_task(spec(0, DataRef { i: 0, j: 0 }));
        let data = DataRef { i: 0, j: 0 };
        for c in 0..consumers {
            let t = g.add_task(spec(1, DataRef { i: 1 + c, j: 0 }));
            g.add_edge(root, t, data, 8);
        }
        let mut exec = vec![0usize];
        exec.extend((0..consumers).map(|c| c % nprocs));
        let initial: Vec<HashMap<DataRef, i64>> = vec![HashMap::new(); nprocs];
        let stores = run_dist(&g, nprocs, &exec, initial, move |t, ctx| {
            if t == 0 {
                ctx.put(data, 42);
                42
            } else {
                let v = *ctx.get(Some(0), data);
                ctx.put(DataRef { i: t, j: 0 }, v * 2);
                v * 2
            }
        });
        let mut seen = 0;
        for s in &stores {
            for (d, v) in s {
                if d.i >= 1 {
                    assert_eq!(*v, 84);
                    seen += 1;
                }
            }
        }
        assert_eq!(seen, consumers);
    }

    /// Out-of-order arrivals: two producers on different ranks feed one
    /// consumer; deliveries land in whatever virtual-time order the
    /// latencies dictate and must be held per consumer until it is ready.
    #[test]
    fn out_of_order_messages_parked() {
        let mut g = TaskGraph::new();
        let a = g.add_task(spec(0, DataRef { i: 0, j: 0 }));
        let b = g.add_task(spec(0, DataRef { i: 1, j: 0 }));
        let c = g.add_task(spec(1, DataRef { i: 2, j: 0 }));
        g.add_edge(a, c, DataRef { i: 0, j: 0 }, 8);
        g.add_edge(b, c, DataRef { i: 1, j: 0 }, 8);
        let exec = vec![0, 1, 2];
        let initial: Vec<HashMap<DataRef, i64>> = vec![HashMap::new(); 3];
        let stores = run_dist(&g, 3, &exec, initial, move |t, ctx| match t {
            0 => {
                ctx.put(DataRef { i: 0, j: 0 }, 7);
                7
            }
            1 => {
                ctx.put(DataRef { i: 1, j: 0 }, 11);
                11
            }
            _ => {
                let x = *ctx.get(Some(0), DataRef { i: 0, j: 0 });
                let y = *ctx.get(Some(1), DataRef { i: 1, j: 0 });
                ctx.put(DataRef { i: 2, j: 0 }, x * y);
                x * y
            }
        });
        assert_eq!(stores[2][&DataRef { i: 2, j: 0 }], 77);
    }

    /// Two consumers of the same datum on one rank, with one consumer
    /// gated behind a slower producer: each consumer's copy must be held
    /// independently. (Under the old thread engine the shared parking
    /// table was a multiset for exactly this scenario; the unified
    /// engine's per-consumer inboxes make it structural.)
    #[test]
    fn duplicate_parked_messages_are_not_lost() {
        let mut g = TaskGraph::new();
        let fast = g.add_task(spec(0, DataRef { i: 0, j: 0 })); // rank 1
        let slow = g.add_task(spec(0, DataRef { i: 1, j: 0 })); // rank 2
        // rank 0's first task waits on `slow`, so both copies of `fast`'s
        // payload arrive before their consumers run.
        let gate = g.add_task(spec(1, DataRef { i: 2, j: 0 }));
        let c1 = g.add_task(spec(2, DataRef { i: 3, j: 0 }));
        let c2 = g.add_task(spec(3, DataRef { i: 4, j: 0 }));
        let d_fast = DataRef { i: 0, j: 0 };
        let d_slow = DataRef { i: 1, j: 0 };
        g.add_edge(slow, gate, d_slow, 8);
        g.add_edge(fast, c1, d_fast, 8);
        g.add_edge(fast, c2, d_fast, 8);
        g.add_edge(gate, c1, DataRef { i: 2, j: 0 }, 0);

        let exec = vec![1, 2, 0, 0, 0];
        let initial: Vec<HashMap<DataRef, i64>> = vec![HashMap::new(); 3];
        let stores = run_dist(&g, 3, &exec, initial, move |t, ctx| match t {
            0 => {
                ctx.put(d_fast, 5);
                5
            }
            1 => {
                ctx.put(d_slow, 7);
                7
            }
            2 => {
                let v = *ctx.get(Some(1), d_slow);
                ctx.put(DataRef { i: 2, j: 0 }, v);
                v
            }
            3 => {
                let v = *ctx.get(Some(0), d_fast) * 10;
                ctx.put(DataRef { i: 3, j: 0 }, v);
                v
            }
            _ => {
                let v = *ctx.get(Some(0), d_fast) * 100;
                ctx.put(DataRef { i: 4, j: 0 }, v);
                v
            }
        });
        assert_eq!(stores[0][&DataRef { i: 3, j: 0 }], 50);
        assert_eq!(stores[0][&DataRef { i: 4, j: 0 }], 500);
    }

    // ---------------- fault layer ----------------

    use crate::fault::{FaultPlan, FtConfig, RetryConfig};

    /// Sum-chain: task k computes v_k = v_{k-1} + 1 across ranks
    /// round-robin; the final value n proves every hop happened exactly
    /// once with the right payload.
    fn run_chain_ft(
        n: usize,
        nprocs: usize,
        cfg: &FtConfig,
    ) -> Result<DistOutcome<i64>, EngineError> {
        let mut g = TaskGraph::new();
        for k in 0..n {
            g.add_task(spec(k, DataRef { i: k, j: 0 }));
        }
        for k in 0..n - 1 {
            g.add_edge(k, k + 1, DataRef { i: k, j: 0 }, 8);
        }
        let exec: Vec<usize> = (0..n).map(|k| k % nprocs).collect();
        let initial: Vec<HashMap<DataRef, i64>> = vec![HashMap::new(); nprocs];
        let dcfg = DistConfig { ft: Some(cfg), record_trace: false, sched: None, metrics: None };
        DistEngine::new(&g, nprocs, &exec).run(initial, &dcfg, |t, ctx| {
            let v = if t == 0 {
                1
            } else {
                *ctx.get(Some(t - 1), DataRef { i: t - 1, j: 0 }) + 1
            };
            ctx.put(DataRef { i: t, j: 0 }, v);
            v
        })
    }

    fn chain_result(outcome: &DistOutcome<i64>, n: usize) -> i64 {
        let last = n - 1;
        outcome.stores[outcome.exec_rank[last]][&DataRef { i: last, j: 0 }]
    }

    #[test]
    fn ft_fault_free_matches_default_config() {
        let out = run_chain_ft(12, 4, &FtConfig::fault_free()).unwrap();
        assert_eq!(chain_result(&out, 12), 12);
        assert_eq!(out.stats.retransmissions, 0);
        assert_eq!(out.stats.crashes, 0);
        assert!(out.makespan > 0.0);
    }

    #[test]
    fn ft_survives_drops_duplicates_and_jitter() {
        let plan = FaultPlan::new(42)
            .with_drops(0.35)
            .with_duplicates(0.30)
            .with_ack_drops(0.25)
            .with_jitter(2.0);
        let cfg = FtConfig::with_plan(plan);
        let out = run_chain_ft(16, 4, &cfg).unwrap();
        assert_eq!(chain_result(&out, 16), 16, "faults must not corrupt the data");
        assert!(out.stats.retransmissions > 0, "drops at 35% must force retransmits");
        assert!(out.stats.messages_dropped > 0);
    }

    #[test]
    fn ft_recovers_from_mid_run_crash() {
        // By t = 6.0 rank 1 has completed task 1 (and its message);
        // killing it forces migration to rank 2 and re-execution.
        let cfg = FtConfig::with_plan(FaultPlan::new(1).with_crash(1, 6.0));
        let out = run_chain_ft(12, 4, &cfg).unwrap();
        assert_eq!(chain_result(&out, 12), 12, "crash recovery must preserve the data");
        assert_eq!(out.stats.crashes, 1);
        assert!(out.stats.tasks_migrated >= 3, "rank 1 owned tasks 1, 5, 9");
        assert!(out.stats.tasks_reexecuted >= 1, "task 1 was already done");
        assert!(out.exec_rank.iter().all(|&r| r != 1), "nothing may stay on the dead rank");
        // Re-execution happens in parallel on the survivor, so a chain's
        // makespan may be unchanged — but it can never shrink.
        let baseline = run_chain_ft(12, 4, &FtConfig::fault_free()).unwrap();
        assert!(out.makespan >= baseline.makespan);
    }

    #[test]
    fn ft_crash_plus_lossy_network() {
        let plan = FaultPlan::new(9)
            .with_drops(0.25)
            .with_duplicates(0.2)
            .with_jitter(1.0)
            .with_crash(2, 8.0);
        let out = run_chain_ft(16, 4, &FtConfig::with_plan(plan)).unwrap();
        assert_eq!(chain_result(&out, 16), 16);
        assert_eq!(out.stats.crashes, 1);
    }

    #[test]
    fn ft_double_crash_still_recovers() {
        let plan = FaultPlan::new(4).with_crash(1, 5.0).with_crash(2, 11.0);
        let out = run_chain_ft(12, 4, &FtConfig::with_plan(plan)).unwrap();
        assert_eq!(chain_result(&out, 12), 12);
        assert_eq!(out.stats.crashes, 2);
    }

    /// Every surviving crash is paired with a recovery event naming a
    /// live survivor, in virtual-time order; bytes are accounted.
    #[test]
    fn ft_events_pair_crashes_with_recoveries() {
        let plan = FaultPlan::new(4).with_drops(0.2).with_crash(1, 5.0).with_crash(2, 11.0);
        let out = run_chain_ft(12, 4, &FtConfig::with_plan(plan)).unwrap();
        assert_eq!(out.events.len(), 2 * out.stats.crashes);
        let mut last_at = 0.0_f64;
        for pair in out.events.chunks(2) {
            let RunEvent::Crash { rank, at } = pair[0] else {
                panic!("even-index event must be a crash: {:?}", pair[0]);
            };
            let RunEvent::Recovery { failed, survivor, at: rat } = pair[1] else {
                panic!("odd-index event must be a recovery: {:?}", pair[1]);
            };
            assert_eq!(failed, rank, "recovery must name the crashed rank");
            assert_ne!(survivor, rank);
            assert_eq!(at, rat, "recovery is immediate in virtual time");
            assert!(at >= last_at);
            last_at = at;
        }
        assert!(out.stats.bytes_sent >= 8 * out.stats.messages_sent as u64);
    }

    #[test]
    fn ft_all_ranks_crashed_is_an_error() {
        let plan = FaultPlan::new(0).with_crash(0, 2.0).with_crash(1, 3.0);
        let err = run_chain_ft(8, 2, &FtConfig::with_plan(plan)).unwrap_err();
        assert_eq!(err, EngineError::Fault(FtError::AllRanksCrashed));
    }

    #[test]
    fn ft_kernel_failures_retry_then_succeed() {
        let cfg = FtConfig::with_plan(FaultPlan::new(0).with_kernel_failure(3, 2));
        let out = run_chain_ft(8, 2, &cfg).unwrap();
        assert_eq!(chain_result(&out, 8), 8);
        assert_eq!(out.stats.kernel_failures, 2);
    }

    #[test]
    fn ft_kernel_retries_exhaust() {
        let mut cfg = FtConfig::with_plan(FaultPlan::new(0).with_kernel_failure(3, 99));
        cfg.retry = RetryConfig { max_kernel_retries: 3, ..RetryConfig::default() };
        let err = run_chain_ft(8, 2, &cfg).unwrap_err();
        assert_eq!(err, EngineError::Fault(FtError::KernelRetriesExhausted { task: 3 }));
    }

    #[test]
    fn ft_is_deterministic() {
        let mk = || {
            FtConfig::with_plan(
                FaultPlan::new(77)
                    .with_drops(0.3)
                    .with_duplicates(0.25)
                    .with_ack_drops(0.2)
                    .with_jitter(1.5)
                    .with_crash(1, 7.0),
            )
        };
        let a = run_chain_ft(14, 4, &mk()).unwrap();
        let b = run_chain_ft(14, 4, &mk()).unwrap();
        assert_eq!(chain_result(&a, 14), chain_result(&b, 14));
        assert_eq!(a.stats, b.stats, "same seed must replay the same faults");
        assert_eq!(a.makespan, b.makespan);
        assert_eq!(a.exec_rank, b.exec_rank);
    }

    #[test]
    fn ft_fan_out_fan_in_under_faults() {
        // root → 10 middles (round-robin ranks) → sink summing them all;
        // exercises broadcast replay and many-input gathering.
        let width = 10usize;
        let nprocs = 4usize;
        let mut g = TaskGraph::new();
        let root = g.add_task(spec(0, DataRef { i: 0, j: 0 }));
        let sink_data = DataRef { i: 99, j: 0 };
        let mut mids = Vec::new();
        for m in 0..width {
            let t = g.add_task(spec(1, DataRef { i: 1 + m, j: 0 }));
            g.add_edge(root, t, DataRef { i: 0, j: 0 }, 8);
            mids.push(t);
        }
        let sink = g.add_task(spec(2, sink_data));
        for (m, &t) in mids.iter().enumerate() {
            g.add_edge(t, sink, DataRef { i: 1 + m, j: 0 }, 8);
        }
        let mut exec = vec![0usize];
        exec.extend((0..width).map(|m| m % nprocs));
        exec.push(0);
        let initial: Vec<HashMap<DataRef, i64>> = vec![HashMap::new(); nprocs];
        let plan = FaultPlan::new(5)
            .with_drops(0.3)
            .with_duplicates(0.3)
            .with_jitter(1.0)
            .with_crash(2, 3.0);
        let ft = FtConfig::with_plan(plan);
        let dcfg = DistConfig { ft: Some(&ft), record_trace: false, sched: None, metrics: None };
        let out = DistEngine::new(&g, nprocs, &exec)
            .run(initial, &dcfg, |t, ctx| {
                if t == root {
                    ctx.put(DataRef { i: 0, j: 0 }, 7);
                    7
                } else if t == sink {
                    let mut sum = 0;
                    for m in 0..width {
                        sum += *ctx.get(Some(1 + m), DataRef { i: 1 + m, j: 0 });
                    }
                    ctx.put(sink_data, sum);
                    sum
                } else {
                    let v = *ctx.get(Some(root), DataRef { i: 0, j: 0 }) * 2;
                    ctx.put(DataRef { i: t, j: 0 }, v);
                    v
                }
            })
            .unwrap();
        let v = out.stores[out.exec_rank[sink]][&sink_data];
        assert_eq!(v, (7 * 2) * width as i64);
    }

    #[test]
    fn ft_many_seeds_never_corrupt() {
        for seed in 0..25u64 {
            let plan = FaultPlan::new(seed)
                .with_drops(0.3)
                .with_duplicates(0.25)
                .with_ack_drops(0.2)
                .with_jitter(1.5)
                .with_crash((seed % 3) as usize + 1, 4.0 + (seed % 7) as f64);
            let out = run_chain_ft(12, 4, &FtConfig::with_plan(plan))
                .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
            assert_eq!(chain_result(&out, 12), 12, "seed {seed} corrupted the chain");
        }
    }

    /// A task whose input was never wired panics with the diagnostic.
    #[test]
    fn missing_edge_panics_with_diagnostic() {
        let mut g = TaskGraph::new();
        let _a = g.add_task(spec(0, DataRef { i: 0, j: 0 }));
        let _b = g.add_task(spec(1, DataRef { i: 1, j: 0 }));
        // no edge a → b although b reads a's datum
        let exec = vec![0, 1];
        let initial: Vec<HashMap<DataRef, i64>> = vec![HashMap::new(); 2];
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _ = DistEngine::new(&g, 2, &exec).run(initial, &DistConfig::default(), |t, ctx| {
                if t == 0 {
                    ctx.put(DataRef { i: 0, j: 0 }, 1);
                    1
                } else {
                    *ctx.get(None, DataRef { i: 0, j: 0 }) // not local on rank 1!
                }
            });
        }));
        assert!(result.is_err(), "missing dependency must be caught");
    }

    // ---------------- shim compatibility ----------------

    #[allow(deprecated)]
    mod shims {
        use super::*;

        fn chain_graph(n: usize) -> (TaskGraph, Vec<usize>) {
            let mut g = TaskGraph::new();
            for k in 0..n {
                g.add_task(spec(k, DataRef { i: k, j: 0 }));
            }
            for k in 0..n - 1 {
                g.add_edge(k, k + 1, DataRef { i: k, j: 0 }, 8);
            }
            let exec: Vec<usize> = (0..n).map(|k| k % 4).collect();
            (g, exec)
        }

        fn chain_body(t: TaskId, ctx: &mut RankCtx<'_, i64>) -> i64 {
            let v = if t == 0 {
                1
            } else {
                *ctx.get(Some(t - 1), DataRef { i: t - 1, j: 0 }) + 1
            };
            ctx.put(DataRef { i: t, j: 0 }, v);
            v
        }

        /// Communication accounting through the deprecated shim: a 12-hop
        /// chain over 4 ranks ships 11 remote messages of 8 bytes each.
        #[test]
        fn counted_shim_reports_comm_volume() {
            let n = 12usize;
            let (g, exec) = chain_graph(n);
            let initial: Vec<HashMap<DataRef, i64>> = vec![HashMap::new(); 4];
            let (stores, comm) =
                execute_distributed_counted(&g, 4, &exec, initial, chain_body);
            assert_eq!(stores[(n - 1) % 4][&DataRef { i: n - 1, j: 0 }], n as i64);
            assert_eq!(comm.messages, (n - 1) as u64);
            assert_eq!(comm.bytes, 8 * (n - 1) as u64);
        }

        #[test]
        fn plain_shim_returns_stores() {
            let n = 8usize;
            let (g, exec) = chain_graph(n);
            let initial: Vec<HashMap<DataRef, i64>> = vec![HashMap::new(); 4];
            let stores = execute_distributed(&g, 4, &exec, initial, chain_body);
            assert_eq!(stores[(n - 1) % 4][&DataRef { i: n - 1, j: 0 }], n as i64);
        }

        #[test]
        fn ft_shim_survives_a_crash() {
            let n = 12usize;
            let (g, exec) = chain_graph(n);
            let initial: Vec<HashMap<DataRef, i64>> = vec![HashMap::new(); 4];
            let cfg = FtConfig::with_plan(FaultPlan::new(1).with_crash(1, 6.0));
            let out = execute_distributed_ft(&g, 4, &exec, initial, &cfg, chain_body).unwrap();
            assert_eq!(out.stores[out.exec_rank[n - 1]][&DataRef { i: n - 1, j: 0 }], n as i64);
            assert_eq!(out.stats.crashes, 1);
        }

        #[test]
        fn ft_shim_maps_fault_errors_back() {
            let (g, exec) = chain_graph(8);
            let initial: Vec<HashMap<DataRef, i64>> = vec![HashMap::new(); 4];
            let plan =
                FaultPlan::new(0).with_crash(0, 2.0).with_crash(1, 3.0).with_crash(2, 4.0);
            let err = execute_distributed_ft(
                &g,
                4,
                &exec,
                initial,
                &FtConfig::with_plan(plan.with_crash(3, 5.0)),
                chain_body,
            )
            .unwrap_err();
            assert_eq!(err, FtError::AllRanksCrashed);
        }

        /// The legacy precondition panics survive through the shim layer
        /// (typed errors re-raised).
        #[test]
        #[should_panic(expected = "one rank per task")]
        fn shim_panics_on_bad_rank_map() {
            let (g, _) = chain_graph(4);
            let initial: Vec<HashMap<DataRef, i64>> = vec![HashMap::new(); 2];
            let _ = execute_distributed(&g, 2, &[0], initial, chain_body);
        }
    }
}

//! Discrete-event simulator of distributed dataflow execution.
//!
//! The simulator executes a [`TaskGraph`] on a virtual machine of
//! `nprocs` processes × `cores_per_proc` cores. Each task has a fixed
//! executing process (the *execution mapping* — owner-computes or the
//! paper's remapped diamond distribution) and a duration. Dataflow edges
//! crossing process boundaries cost communication time; edges from one
//! producer carrying the same datum to many consumers form a
//! binomial-tree broadcast, matching PaRSEC's collective dataflow
//! (§VII-B discusses exactly these column/row broadcasts).
//!
//! The simulation is a standard event-driven list scheduling:
//!
//! * a task becomes *ready* when all predecessors have finished **and**
//!   their data has arrived at the task's process;
//! * each process runs up to `cores_per_proc` ready tasks concurrently,
//!   picking by priority (panel index — critical path first);
//! * communication is fully overlapped with computation (PaRSEC has a
//!   dedicated communication thread), so transfers delay only their
//!   consumers, never the producer's core.
//!
//! Zero-byte edges model *dependency activations* — the control messages
//! the runtime sends for every cross-process dependency. Untrimmed DAGs
//! are full of them (every null-tile task still activates successors),
//! which is precisely the overhead Fig. 6 shows trimming removes.

use crate::engine::EngineError;
use crate::fault::{fault_unit, FaultPlan, FtError};
use crate::graph::{TaskGraph, TaskId};
use crate::scheduler::{Scheduler, StaticScheduler};
use crate::trace::Trace;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Per-task simulation inputs: where it runs and for how long.
#[derive(Debug, Clone, Copy)]
pub struct DesTask {
    /// Executing process id, `< nprocs`.
    pub proc: usize,
    /// Execution time in seconds (kernel + per-task runtime overhead).
    pub duration: f64,
}

/// Virtual-machine parameters.
#[derive(Debug, Clone, Copy)]
pub struct DesConfig {
    /// Number of processes (= nodes; the paper runs 1 process/node).
    pub nprocs: usize,
    /// Cores per process available for kernels.
    pub cores_per_proc: usize,
    /// Point-to-point latency in seconds.
    pub latency_s: f64,
    /// Link bandwidth in bytes/second.
    pub bandwidth_bps: f64,
    /// Cost of a zero-byte dependency-activation message.
    pub dep_overhead_s: f64,
    /// Per-task management cost on the process's **serial** runtime
    /// thread (creation, scheduling, dependency release). Every task —
    /// including numeric no-ops on null tiles — passes through this
    /// stage before it may occupy a core; this is the scheduling
    /// overhead DAG trimming removes (§VI, Fig. 6). 0 disables the stage.
    pub task_mgmt_s: f64,
}

/// Communication totals.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct CommStats {
    /// Payload bytes moved across process boundaries.
    pub bytes: u64,
    /// Cross-process messages (payload + activation).
    pub messages: u64,
}

/// A fail-stop process crash in the simulated machine.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DesCrash {
    /// Crashing process (dies permanently).
    pub proc: usize,
    /// Virtual time of the failure.
    pub at: f64,
}

/// A silent-data-corruption strike against one process's tile store at a
/// virtual time — the DES counterpart of
/// [`crate::fault::FaultPlan::with_store_corruption`]. The simulator
/// prices the *healing* protocol: the integrity layer detects the flip at
/// the next read boundary and recomputes the damaged tile from its
/// lineage, which the cost model charges as one task re-execution after
/// the detection window.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DesCorrupt {
    /// Process whose store is struck.
    pub proc: usize,
    /// Virtual time of the bit flip.
    pub at: f64,
}

/// Fault schedule for [`simulate_with_faults`] — the DES counterpart of
/// the functional fault plan in [`crate::fault::FaultPlan`], used to
/// *price* resilience rather than test it.
///
/// # Seeding
///
/// `seed` feeds the same per-decision hash streams as [`FaultPlan`]
/// (via [`crate::fault::fault_unit`]): building a schedule with
/// [`FaultSchedule::from_plan`] guarantees that a given seed drives the
/// identical pseudo-random fault sequence in the DES pricing run and in
/// the functional engine run, so the two sides of a resilience
/// experiment stay comparable.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultSchedule {
    /// Fail-stop crashes; a crash after completion is ignored.
    pub crashes: Vec<DesCrash>,
    /// Silent store corruptions; a strike after completion, against a
    /// dead process, or against a process holding no still-needed
    /// outputs is detected but heals for free.
    pub corruptions: Vec<DesCorrupt>,
    /// Detection + failover window: work lost to a crash (or a tile
    /// lost to corruption) restarts this many seconds after the fault.
    pub restart_delay_s: f64,
    /// Seed of the pseudo-random pricing decisions (corruption victim
    /// choice); share it with the functional [`FaultPlan`] via
    /// [`FaultSchedule::from_plan`].
    pub seed: u64,
}

impl FaultSchedule {
    /// Schedule with no faults (the plain simulation).
    pub fn none() -> Self {
        Self::default()
    }

    /// Derive the DES pricing schedule from a functional fault plan:
    /// crashes and store corruptions map event for event, and the seed
    /// is copied so both engines roll identical fault fates (see the
    /// type-level seeding contract).
    pub fn from_plan(plan: &FaultPlan, restart_delay_s: f64) -> Self {
        FaultSchedule {
            crashes: plan
                .crashes
                .iter()
                .map(|c| DesCrash {
                    proc: c.rank,
                    at: c.at,
                })
                .collect(),
            corruptions: plan
                .store_corruptions
                .iter()
                .map(|c| DesCorrupt {
                    proc: c.rank,
                    at: c.at,
                })
                .collect(),
            restart_delay_s,
            seed: plan.seed,
        }
    }
}

/// Simulation outputs.
#[derive(Debug, Clone)]
pub struct DesReport {
    /// Virtual time when the last task retires.
    pub makespan: f64,
    /// Full task trace (virtual clock).
    pub trace: Trace,
    /// Busy seconds per process.
    pub busy: Vec<f64>,
    /// Communication totals.
    pub comm: CommStats,
    /// Fail-stop crashes that fired before the run completed.
    pub crashes: usize,
    /// Tasks whose execution moved off a dead process.
    pub migrated: usize,
    /// Completed tasks re-executed because their outputs died with a
    /// process (crash) or were damaged in its store (corruption) while a
    /// consumer still needed them.
    pub reexecuted: usize,
    /// Store-corruption strikes that fired before the run completed.
    pub corruptions: usize,
}

impl DesReport {
    /// `max busy / mean busy` over processes (1.0 = perfectly balanced).
    pub fn load_imbalance(&self) -> f64 {
        let max = self.busy.iter().cloned().fold(0.0_f64, f64::max);
        let mean = self.busy.iter().sum::<f64>() / self.busy.len().max(1) as f64;
        if mean > 0.0 {
            max / mean
        } else {
            1.0
        }
    }

    /// Parallel efficiency against a serial execution of the same work.
    pub fn efficiency_vs_serial(&self) -> f64 {
        let work: f64 = self.busy.iter().sum();
        let resources = self.busy.len() as f64;
        if self.makespan > 0.0 {
            work / (resources * self.makespan)
        } else {
            1.0
        }
    }
}

/// Total-ordering wrapper for event times. Ordered by `total_cmp` so a
/// pathological key can never panic deep inside the event loop — the
/// entry points reject non-finite scheduling keys up front with
/// [`EngineError::NonFiniteKey`] instead.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Time(f64);

impl Eq for Time {}

impl PartialOrd for Time {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Time {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum EventKind {
    /// All inputs arrived; the task enters the process's runtime thread.
    Ready(TaskId),
    /// Task management done; the task may occupy a core.
    Managed(TaskId),
    /// Kernel execution finished. Carries the task's epoch at launch: a
    /// crash bumps the epoch of every in-flight task on the dead process,
    /// turning their pending finishes into stale no-ops.
    Finish(TaskId, u32),
    /// A process fail-stops.
    Crash(usize),
    /// A bit flips in a process's tile store; carries the index of the
    /// strike in [`FaultSchedule::corruptions`].
    Corrupt(usize),
}

/// Run the simulation with the default ready-queue ordering (the task's
/// `priority` field — panel index for tile Cholesky).
///
/// `tasks[t]` gives the process and duration of task `t`. Panics if the
/// graph is cyclic, `tasks` is too short, or a process id is out of range.
pub fn simulate(graph: &TaskGraph, tasks: &[DesTask], config: &DesConfig) -> DesReport {
    let keys: Vec<f64> = (0..graph.len())
        .map(|t| graph.spec(t).priority as f64)
        .collect();
    simulate_with_order(graph, tasks, config, &keys)
        .expect("priority keys are finite and the preconditions are asserted")
}

/// Run the simulation with an explicit ready-queue ordering: `keys[t]`
/// sorts ready tasks per process, **smaller first** (see
/// [`crate::scheduler::queue_keys`]).
///
/// # Errors
///
/// [`EngineError::NonFiniteKey`] if any key is NaN or infinite — the
/// typed replacement for what used to be a `partial_cmp().unwrap()`
/// panic deep inside the event loop.
pub fn simulate_with_order(
    graph: &TaskGraph,
    tasks: &[DesTask],
    config: &DesConfig,
    keys: &[f64],
) -> Result<DesReport, EngineError> {
    let mut sched = StaticScheduler::new(keys.to_vec())?;
    sim_core(graph, tasks, config, &mut sched, &FaultSchedule::none())
}

/// Run the simulation consulting a [`Scheduler`] implementation: the
/// event loop calls `on_task_ready` when a task's inputs have arrived
/// (the returned key orders that process's ready queue, smaller first)
/// and `on_task_finished` with the simulated duration when it retires —
/// which is what lets a dynamic policy such as
/// [`crate::scheduler::LookaheadScheduler`] adapt mid-run.
///
/// # Errors
///
/// [`EngineError::NonFiniteKey`] if the scheduler ever returns a NaN or
/// infinite key.
pub fn simulate_with_scheduler(
    graph: &TaskGraph,
    tasks: &[DesTask],
    config: &DesConfig,
    sched: &mut dyn Scheduler,
) -> Result<DesReport, EngineError> {
    sim_core(graph, tasks, config, sched, &FaultSchedule::none())
}

/// [`simulate_with_scheduler`] under a fail-stop/corruption fault
/// schedule — the full-generality entry point (every other `simulate*`
/// function is a wrapper over this pairing).
pub fn simulate_with_scheduler_faults(
    graph: &TaskGraph,
    tasks: &[DesTask],
    config: &DesConfig,
    sched: &mut dyn Scheduler,
    faults: &FaultSchedule,
) -> Result<DesReport, EngineError> {
    sim_core(graph, tasks, config, sched, faults)
}

/// Run the simulation under a fail-stop fault schedule, pricing the
/// recovery protocol of the functional engine
/// ([`crate::engine::DistEngine`] with a fault layer): when a process dies, its
/// incomplete tasks migrate round-robin to the survivors, and its
/// completed tasks whose outputs a consumer still needs are re-executed
/// there after `restart_delay_s`. First-order cost model: dependency
/// releases that already happened stand (surviving consumers kept their
/// received copies — the sender-retention invariant), and the
/// communication pattern stays priced on the original mapping (the
/// engine's static-locality invariant).
///
/// Silent store corruptions ([`FaultSchedule::corruptions`]) are priced
/// as the integrity layer's healing protocol: after the
/// `restart_delay_s` detection window, one completed task of the struck
/// process whose output a consumer still needs re-executes (the victim
/// is chosen by the schedule's seeded stream so a shared seed reproduces
/// the same strike in the functional engine — see
/// [`FaultSchedule::from_plan`]). A strike with no still-needed outputs
/// heals for free off the critical path.
///
/// # Errors
///
/// * [`EngineError::InvalidCrashRank`] — the schedule targets a process
///   `>= nprocs` (crash or corruption).
/// * [`EngineError::Fault`] with [`FtError::AllRanksCrashed`] — the
///   schedule crashes every process before completion.
pub fn simulate_with_faults(
    graph: &TaskGraph,
    tasks: &[DesTask],
    config: &DesConfig,
    faults: &FaultSchedule,
) -> Result<DesReport, EngineError> {
    let keys: Vec<f64> = (0..graph.len())
        .map(|t| graph.spec(t).priority as f64)
        .collect();
    let mut sched = StaticScheduler::new(keys)?;
    sim_core(graph, tasks, config, &mut sched, faults)
}

fn sim_core(
    graph: &TaskGraph,
    tasks: &[DesTask],
    config: &DesConfig,
    sched: &mut dyn Scheduler,
    faults: &FaultSchedule,
) -> Result<DesReport, EngineError> {
    assert_eq!(tasks.len(), graph.len(), "one DesTask per graph task");
    assert!(
        graph.topological_order().is_some(),
        "task graph has a cycle"
    );
    for t in tasks {
        assert!(t.proc < config.nprocs, "process id out of range");
    }

    // ------------------------------------------------------------------
    // Precompute the broadcast structure per producer: edges grouped by
    // datum, distinct remote destinations given binomial-tree depths.
    // Arrival times are computed dynamically at Finish because the
    // producer's communication engine (one comm thread / finite NIC
    // injection bandwidth, as in PaRSEC) serializes its sends.
    // ------------------------------------------------------------------
    struct Bcast {
        /// remote member edges as (edge index, tree depth in hops)
        remote_edges: Vec<(usize, f64)>,
        /// serialized root sends (children of the root in the tree)
        nsends: f64,
        /// payload bytes of the datum
        bytes: u64,
    }
    let mut comm = CommStats::default();
    let mut bcasts: Vec<Vec<Bcast>> = Vec::with_capacity(graph.len());
    for src in 0..graph.len() {
        let src_proc = tasks[src].proc;
        let edges = graph.successors(src);
        let mut groups: Vec<Bcast> = Vec::new();
        let mut handled = vec![false; edges.len()];
        for e0 in 0..edges.len() {
            if handled[e0] {
                continue;
            }
            let datum = edges[e0].data;
            let members: Vec<usize> = (e0..edges.len())
                .filter(|&i| !handled[i] && edges[i].data == datum)
                .collect();
            for &m in &members {
                handled[m] = true;
            }
            // Distinct remote destination processes, ordered by the
            // highest-priority consumer first (the runtime forwards along
            // the critical path first), then proc id for determinism.
            let mut remote: Vec<(usize, usize)> = Vec::new(); // (min_priority, proc)
            for &m in &members {
                let p = tasks[edges[m].dst].proc;
                if p == src_proc {
                    continue;
                }
                match remote.iter_mut().find(|(_, rp)| *rp == p) {
                    Some(entry) => entry.0 = entry.0.min(graph.spec(edges[m].dst).priority),
                    None => remote.push((graph.spec(edges[m].dst).priority, p)),
                }
            }
            remote.sort();
            if remote.is_empty() {
                continue; // purely local group: no communication
            }
            // Binomial tree: the i-th distinct remote proc (1-based)
            // receives after floor(log2(i)) + 1 hops; the root itself
            // sends to its ceil(log2(r + 1)) children serially.
            let hop_of = |i: usize| -> f64 { ((i as f64).log2().floor()) + 1.0 };
            let mut remote_edges = Vec::new();
            for &m in &members {
                let dst_proc = tasks[edges[m].dst].proc;
                if dst_proc == src_proc {
                    continue;
                }
                let pos = remote
                    .iter()
                    .position(|&(_, p)| p == dst_proc)
                    .expect("every remote destination appears in the broadcast recipient list")
                    + 1;
                remote_edges.push((m, hop_of(pos)));
            }
            let nremote = remote.len();
            comm.messages += nremote as u64;
            comm.bytes += edges[e0].bytes * nremote as u64;
            // Payload broadcasts pipeline (chain bcast / DMA): the root
            // injects ~one copy and intermediates forward. Zero-byte
            // dependency activations are individual control messages the
            // communication thread processes one by one — the per-edge
            // overhead DAG trimming removes (§VI).
            let nsends = if edges[e0].bytes > 0 {
                1.0
            } else {
                nremote as f64
            };
            groups.push(Bcast {
                remote_edges,
                nsends,
                bytes: edges[e0].bytes,
            });
        }
        bcasts.push(groups);
    }

    // ------------------------------------------------------------------
    // Event loop.
    // ------------------------------------------------------------------
    let n = graph.len();
    let mut remaining: Vec<usize> = graph.indegrees();
    let mut data_ready: Vec<f64> = vec![0.0; n];
    let mut events: BinaryHeap<Reverse<(Time, usize, EventKind)>> = BinaryHeap::new();
    let mut seq = 0usize;
    let push = |events: &mut BinaryHeap<_>, t: f64, kind: EventKind, seq: &mut usize| {
        events.push(Reverse((Time(t), *seq, kind)));
        *seq += 1;
    };

    for t in graph.sources() {
        push(&mut events, 0.0, EventKind::Ready(t), &mut seq);
    }
    for c in &faults.crashes {
        if c.proc >= config.nprocs {
            return Err(EngineError::InvalidCrashRank {
                rank: c.proc,
                nprocs: config.nprocs,
            });
        }
        push(&mut events, c.at, EventKind::Crash(c.proc), &mut seq);
    }
    for (idx, c) in faults.corruptions.iter().enumerate() {
        if c.proc >= config.nprocs {
            return Err(EngineError::InvalidCrashRank {
                rank: c.proc,
                nprocs: config.nprocs,
            });
        }
        push(&mut events, c.at, EventKind::Corrupt(idx), &mut seq);
    }

    let mut idle: Vec<usize> = vec![config.cores_per_proc; config.nprocs];
    // Per-proc ready queue ordered by (key, id); min first.
    let mut queues: Vec<BinaryHeap<Reverse<(Time, TaskId)>>> =
        (0..config.nprocs).map(|_| BinaryHeap::new()).collect();
    // Per-proc serial runtime thread: earliest time it is free.
    let mut mgmt_free = vec![0.0_f64; config.nprocs];
    // Per-proc communication engine (NIC/comm-thread): earliest free time.
    let mut nic_free = vec![0.0_f64; config.nprocs];

    let mut trace = Trace::default();
    let mut start_time = vec![0.0_f64; n];
    // Time each task entered its process's ready queue (queue-wait metric;
    // reset on crash re-injection so waits stay non-negative).
    let mut ready_time = vec![0.0_f64; n];
    let mut completed = 0usize;
    let mut makespan = 0.0_f64;

    // Fault state: current execution mapping (migration rewrites it),
    // liveness, per-task launch epochs, completion/re-execution flags,
    // and the tasks currently occupying cores of each process.
    let mut proc_of: Vec<usize> = tasks.iter().map(|t| t.proc).collect();
    let mut dead = vec![false; config.nprocs];
    let mut epoch = vec![0u32; n];
    let mut done = vec![false; n];
    let mut reexec = vec![false; n];
    let mut running: Vec<Vec<TaskId>> = vec![Vec::new(); config.nprocs];
    let mut rr = 0usize; // round-robin cursor over survivors
    let (mut crashes, mut migrated, mut reexecuted) = (0usize, 0usize, 0usize);
    let mut corruptions = 0usize;

    while let Some(Reverse((Time(now), _, kind))) = events.pop() {
        match kind {
            EventKind::Ready(t) => {
                let p = proc_of[t];
                if config.task_mgmt_s > 0.0 {
                    // Serialize through the runtime thread first.
                    let start = mgmt_free[p].max(now);
                    let end = start + config.task_mgmt_s;
                    mgmt_free[p] = end;
                    push(&mut events, end, EventKind::Managed(t), &mut seq);
                } else {
                    push(&mut events, now, EventKind::Managed(t), &mut seq);
                }
            }
            EventKind::Managed(t) => {
                let p = proc_of[t];
                ready_time[t] = now;
                // Consult the scheduling policy: the key decides the
                // task's position in this process's ready queue.
                let key = sched.on_task_ready(t, graph);
                if !key.is_finite() {
                    return Err(EngineError::NonFiniteKey { task: t, key });
                }
                queues[p].push(Reverse((Time(key), t)));
                // Start as many queued tasks as there are idle cores.
                while idle[p] > 0 {
                    let Some(Reverse((_, tid))) = queues[p].pop() else {
                        break;
                    };
                    idle[p] -= 1;
                    start_time[tid] = now;
                    running[p].push(tid);
                    push(
                        &mut events,
                        now + tasks[tid].duration,
                        EventKind::Finish(tid, epoch[tid]),
                        &mut seq,
                    );
                }
            }
            EventKind::Finish(t, launch_epoch) => {
                if launch_epoch != epoch[t] {
                    continue; // the executing process died mid-kernel
                }
                let p = proc_of[t];
                if let Some(pos) = running[p].iter().position(|&x| x == t) {
                    running[p].swap_remove(pos);
                }
                let spec = graph.spec(t);
                trace.push_record(crate::trace::TaskRecord {
                    task: t,
                    class: spec.class,
                    proc: p,
                    data: spec.writes,
                    queued: ready_time[t].min(start_time[t]),
                    start: start_time[t],
                    end: now,
                });
                makespan = makespan.max(now);
                completed += 1;
                done[t] = true;
                // Feedback channel of dynamic policies: the simulated
                // duration is this world's "measured" time.
                sched.on_task_finished(t, graph, tasks[t].duration);
                if reexec[t] {
                    // Recovery re-run: successors were already released by
                    // the first execution (surviving consumers kept their
                    // copies); only the lost output is regenerated.
                    reexec[t] = false;
                } else {
                    // Arrival per successor: local edges are immediate;
                    // each broadcast group's sends serialize on the
                    // producer's communication engine before fanning out
                    // along the tree.
                    let mut arrival_of: Vec<f64> = vec![now; graph.successors(t).len()];
                    for g in &bcasts[t] {
                        let per_hop = if g.bytes > 0 {
                            config.latency_s + g.bytes as f64 / config.bandwidth_bps
                        } else {
                            config.dep_overhead_s
                        };
                        let xfer = if g.bytes > 0 {
                            g.bytes as f64 / config.bandwidth_bps
                        } else {
                            config.dep_overhead_s
                        };
                        let nic_start = nic_free[p].max(now);
                        nic_free[p] = nic_start + g.nsends * xfer;
                        for &(edge_idx, hops) in &g.remote_edges {
                            arrival_of[edge_idx] = nic_start + hops * per_hop;
                        }
                    }
                    for (idx, e) in graph.successors(t).iter().enumerate() {
                        let arrival = arrival_of[idx];
                        let dst = e.dst;
                        if arrival > data_ready[dst] {
                            data_ready[dst] = arrival;
                        }
                        remaining[dst] -= 1;
                        if remaining[dst] == 0 {
                            push(
                                &mut events,
                                data_ready[dst],
                                EventKind::Ready(dst),
                                &mut seq,
                            );
                        }
                    }
                }
                // A core just freed: start the next queued task here.
                idle[p] += 1;
                while idle[p] > 0 {
                    let Some(Reverse((_, tid))) = queues[p].pop() else {
                        break;
                    };
                    idle[p] -= 1;
                    start_time[tid] = now;
                    running[p].push(tid);
                    push(
                        &mut events,
                        now + tasks[tid].duration,
                        EventKind::Finish(tid, epoch[tid]),
                        &mut seq,
                    );
                }
            }
            EventKind::Crash(p) => {
                if dead[p] || completed == n {
                    continue; // double-crash of a dead proc, or after the run
                }
                dead[p] = true;
                crashes += 1;
                let restart = now + faults.restart_delay_s;
                let alive: Vec<usize> = (0..config.nprocs).filter(|&q| !dead[q]).collect();
                if alive.is_empty() {
                    return Err(EngineError::Fault(FtError::AllRanksCrashed));
                }

                // Abort in-flight kernels (their Finish events go stale)
                // and flush the dead process's ready queue.
                let mut to_restart: Vec<TaskId> = std::mem::take(&mut running[p]);
                for &t in &to_restart {
                    epoch[t] += 1;
                }
                while let Some(Reverse((_, tid))) = queues[p].pop() {
                    to_restart.push(tid);
                }
                idle[p] = 0;

                // Lost outputs: completed tasks of this process whose
                // data a not-yet-finished consumer still needs must run
                // again (their inputs survive — initial tiles are
                // checkpointed, remote inputs replay from sender logs).
                for t in 0..n {
                    if proc_of[t] != p {
                        continue;
                    }
                    if done[t] {
                        let needed = graph.successors(t).iter().any(|e| !done[e.dst]);
                        if !needed {
                            continue; // output no longer consumed: let it go
                        }
                        done[t] = false;
                        reexec[t] = true;
                        completed -= 1;
                        reexecuted += 1;
                        to_restart.push(t);
                    }
                    proc_of[t] = alive[rr % alive.len()];
                    rr += 1;
                    migrated += 1;
                }
                for t in to_restart {
                    push(&mut events, restart, EventKind::Ready(t), &mut seq);
                }
            }
            EventKind::Corrupt(idx) => {
                let p = faults.corruptions[idx].proc;
                if dead[p] || completed == n {
                    continue; // a dead store has no reads; post-run strikes are free
                }
                corruptions += 1;
                // The integrity layer detects the flip at the victim
                // tile's next read boundary and recomputes it from
                // lineage. First-order pricing: one completed task of
                // this process whose output a consumer still needs
                // re-executes after the detection window. The victim is
                // drawn from the seeded stream shared with the
                // functional plan (stream 8, keyed by strike index).
                let candidates: Vec<TaskId> = (0..n)
                    .filter(|&t| {
                        proc_of[t] == p
                            && done[t]
                            && graph.successors(t).iter().any(|e| !done[e.dst])
                    })
                    .collect();
                if candidates.is_empty() {
                    continue; // nothing still-needed was hit: heals off the critical path
                }
                let pick =
                    (fault_unit(faults.seed, 8, idx as u64, 0) * candidates.len() as f64) as usize;
                let victim = candidates[pick.min(candidates.len() - 1)];
                done[victim] = false;
                reexec[victim] = true;
                completed -= 1;
                reexecuted += 1;
                push(
                    &mut events,
                    now + faults.restart_delay_s,
                    EventKind::Ready(victim),
                    &mut seq,
                );
            }
        }
    }

    assert_eq!(
        completed, n,
        "simulation deadlocked: {completed}/{n} tasks retired"
    );
    // `busy` is derived from the trace rather than double-booked: the
    // trace records are the single source of truth for span accounting.
    let busy = trace.busy_per_proc(config.nprocs);
    Ok(DesReport {
        makespan,
        trace,
        busy,
        comm,
        crashes,
        migrated,
        reexecuted,
        corruptions,
    })
}

/// Convenience: all tasks on one process — the serial/SMP sanity baseline.
pub fn single_proc_config(cores: usize) -> DesConfig {
    DesConfig {
        nprocs: 1,
        cores_per_proc: cores,
        latency_s: 0.0,
        bandwidth_bps: f64::INFINITY,
        dep_overhead_s: 0.0,
        task_mgmt_s: 0.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{DataRef, TaskClass, TaskSpec};

    fn spec(priority: usize) -> TaskSpec {
        TaskSpec {
            class: TaskClass::Other,
            priority,
            writes: None,
            flops: 0.0,
        }
    }

    fn chain(n: usize) -> TaskGraph {
        let mut g = TaskGraph::new();
        for i in 0..n {
            g.add_task(spec(i));
        }
        for i in 0..n - 1 {
            g.add_edge(i, i + 1, DataRef { i: 0, j: i }, 100);
        }
        g
    }

    #[test]
    fn serial_chain_time_is_sum() {
        let g = chain(10);
        let tasks: Vec<DesTask> = (0..10)
            .map(|_| DesTask {
                proc: 0,
                duration: 2.0,
            })
            .collect();
        let r = simulate(&g, &tasks, &single_proc_config(4));
        assert!((r.makespan - 20.0).abs() < 1e-12);
        assert_eq!(r.comm, CommStats::default());
    }

    #[test]
    fn independent_tasks_run_in_parallel() {
        let mut g = TaskGraph::new();
        for _ in 0..8 {
            g.add_task(spec(0));
        }
        let tasks: Vec<DesTask> = (0..8)
            .map(|_| DesTask {
                proc: 0,
                duration: 1.0,
            })
            .collect();
        // 4 cores → 8 unit tasks take 2 seconds
        let r = simulate(&g, &tasks, &single_proc_config(4));
        assert!((r.makespan - 2.0).abs() < 1e-12);
        // 8 cores → 1 second
        let r8 = simulate(&g, &tasks, &single_proc_config(8));
        assert!((r8.makespan - 1.0).abs() < 1e-12);
    }

    #[test]
    fn cross_proc_edge_pays_latency_and_bandwidth() {
        let mut g = TaskGraph::new();
        g.add_task(spec(0));
        g.add_task(spec(1));
        g.add_edge(0, 1, DataRef { i: 0, j: 0 }, 1_000_000);
        let tasks = vec![
            DesTask {
                proc: 0,
                duration: 1.0,
            },
            DesTask {
                proc: 1,
                duration: 1.0,
            },
        ];
        let cfg = DesConfig {
            nprocs: 2,
            cores_per_proc: 1,
            latency_s: 0.5,
            bandwidth_bps: 1e6, // 1 MB/s → 1 s for the payload
            dep_overhead_s: 0.1,
            task_mgmt_s: 0.0,
        };
        let r = simulate(&g, &tasks, &cfg);
        // 1 (task0) + 0.5 (lat) + 1.0 (xfer) + 1 (task1) = 3.5
        assert!((r.makespan - 3.5).abs() < 1e-12, "makespan {}", r.makespan);
        assert_eq!(r.comm.bytes, 1_000_000);
        assert_eq!(r.comm.messages, 1);
    }

    #[test]
    fn same_proc_edge_is_free() {
        let mut g = TaskGraph::new();
        g.add_task(spec(0));
        g.add_task(spec(1));
        g.add_edge(0, 1, DataRef { i: 0, j: 0 }, 1 << 30);
        let tasks = vec![
            DesTask {
                proc: 0,
                duration: 1.0,
            },
            DesTask {
                proc: 0,
                duration: 1.0,
            },
        ];
        let cfg = DesConfig {
            nprocs: 2,
            cores_per_proc: 1,
            latency_s: 10.0,
            bandwidth_bps: 1.0,
            dep_overhead_s: 10.0,
            task_mgmt_s: 0.0,
        };
        let r = simulate(&g, &tasks, &cfg);
        assert!((r.makespan - 2.0).abs() < 1e-12);
        assert_eq!(r.comm.messages, 0);
    }

    #[test]
    fn broadcast_uses_binomial_tree() {
        // One producer on proc 0, consumers on procs 1..=4 with the same
        // datum. Tree depths: 1, 2, 2, 3 hops.
        let mut g = TaskGraph::new();
        let src = g.add_task(spec(0));
        let d = DataRef { i: 3, j: 1 };
        for _ in 0..4 {
            let c = g.add_task(spec(1));
            g.add_edge(src, c, d, 0);
        }
        let mut tasks = vec![DesTask {
            proc: 0,
            duration: 1.0,
        }];
        for p in 1..=4 {
            tasks.push(DesTask {
                proc: p,
                duration: 0.0,
            });
        }
        let cfg = DesConfig {
            nprocs: 5,
            cores_per_proc: 1,
            latency_s: 0.0,
            bandwidth_bps: 1e9,
            dep_overhead_s: 1.0, // zero-byte edges cost 1 s/hop
            task_mgmt_s: 0.0,
        };
        let r = simulate(&g, &tasks, &cfg);
        // Last receiver is 3 hops deep: 1 (task) + 3 = 4.
        assert!((r.makespan - 4.0).abs() < 1e-12, "makespan {}", r.makespan);
        assert_eq!(r.comm.messages, 4);
        assert_eq!(r.comm.bytes, 0);
    }

    #[test]
    fn activation_storm_serializes_on_comm_thread() {
        // One producer fires zero-byte activations at consumers on many
        // distinct procs: the sender's comm thread handles each control
        // message one by one, so the LAST consumer waits ~n·dep_overhead
        // (this is the per-dependency overhead DAG trimming removes).
        let nremote = 16usize;
        let mut g = TaskGraph::new();
        let src = g.add_task(spec(0));
        for i in 0..nremote {
            let t = g.add_task(spec(1));
            // distinct datum per consumer ⇒ n separate activations
            g.add_edge(src, t, DataRef { i, j: 0 }, 0);
        }
        let mut tasks = vec![DesTask {
            proc: 0,
            duration: 1.0,
        }];
        for i in 0..nremote {
            tasks.push(DesTask {
                proc: 1 + i,
                duration: 0.0,
            });
        }
        let cfg = DesConfig {
            nprocs: 1 + nremote,
            cores_per_proc: 1,
            latency_s: 0.0,
            bandwidth_bps: 1e12,
            dep_overhead_s: 0.5,
            task_mgmt_s: 0.0,
        };
        let r = simulate(&g, &tasks, &cfg);
        // n activations of 0.5 s serialize on proc 0's comm engine,
        // plus the per-hop delivery of the last one.
        assert!(
            r.makespan >= 1.0 + 0.5 * nremote as f64,
            "activations must serialize: makespan {}",
            r.makespan
        );
    }

    #[test]
    fn payload_broadcast_pipelines_on_sender() {
        // A payload broadcast injects ~one copy at the root (chain/DMA);
        // the sender's NIC does not serialize per receiver.
        let nremote = 8usize;
        let bytes = 1_000_000u64; // 1 s at 1 MB/s
        let mut g = TaskGraph::new();
        let src = g.add_task(spec(0));
        let d = DataRef { i: 0, j: 0 };
        for _ in 0..nremote {
            let t = g.add_task(spec(1));
            g.add_edge(src, t, d, bytes);
        }
        let mut tasks = vec![DesTask {
            proc: 0,
            duration: 1.0,
        }];
        for i in 0..nremote {
            tasks.push(DesTask {
                proc: 1 + i,
                duration: 0.0,
            });
        }
        let cfg = DesConfig {
            nprocs: 1 + nremote,
            cores_per_proc: 1,
            latency_s: 0.0,
            bandwidth_bps: 1e6,
            dep_overhead_s: 0.0,
            task_mgmt_s: 0.0,
        };
        let r = simulate(&g, &tasks, &cfg);
        // tree depth for the 8th receiver is 4 hops: 1 (task) + 4·1 s,
        // NOT 1 + 8·1 s (which per-receiver serialization would give).
        assert!(r.makespan <= 1.0 + 4.0 + 1e-9, "makespan {}", r.makespan);
        assert!(
            r.makespan >= 1.0 + 1.0,
            "at least one transfer: {}",
            r.makespan
        );
    }

    #[test]
    fn back_to_back_broadcasts_share_the_nic() {
        // Two payload broadcasts from the same proc: the second's
        // injection waits for the first (finite injection bandwidth).
        let mut g = TaskGraph::new();
        let a = g.add_task(spec(0));
        let b = g.add_task(spec(0));
        let ca = g.add_task(spec(1));
        let cb = g.add_task(spec(1));
        g.add_edge(a, ca, DataRef { i: 0, j: 0 }, 1_000_000);
        g.add_edge(b, cb, DataRef { i: 1, j: 0 }, 1_000_000);
        let tasks = vec![
            DesTask {
                proc: 0,
                duration: 1.0,
            },
            DesTask {
                proc: 0,
                duration: 1.0,
            },
            DesTask {
                proc: 1,
                duration: 0.0,
            },
            DesTask {
                proc: 2,
                duration: 0.0,
            },
        ];
        let cfg = DesConfig {
            nprocs: 3,
            cores_per_proc: 2, // both producers run concurrently
            latency_s: 0.0,
            bandwidth_bps: 1e6, // 1 s per copy
            dep_overhead_s: 0.0,
            task_mgmt_s: 0.0,
        };
        let r = simulate(&g, &tasks, &cfg);
        // both finish at t=1; injections serialize: second arrives >= 3.
        assert!(
            r.makespan >= 3.0 - 1e-9,
            "NIC must serialize: {}",
            r.makespan
        );
    }

    #[test]
    fn priority_breaks_ties() {
        // Two ready tasks on one single-core proc; the lower-priority value
        // (more urgent) must run first.
        let mut g = TaskGraph::new();
        let urgent = g.add_task(spec(0));
        let lazy = g.add_task(spec(9));
        let tasks = vec![
            DesTask {
                proc: 0,
                duration: 1.0,
            },
            DesTask {
                proc: 0,
                duration: 1.0,
            },
        ];
        let r = simulate(&g, &tasks, &single_proc_config(1));
        let rec_urgent = r.trace.records.iter().find(|x| x.start == 0.0).unwrap();
        // both tasks retire; check the one starting at 0 has class Other
        // and that `urgent` started first by comparing start times.
        let starts: Vec<(usize, f64)> = r
            .trace
            .records
            .iter()
            .enumerate()
            .map(|(i, rec)| (i, rec.start))
            .collect();
        assert_eq!(starts.len(), 2);
        let _ = (urgent, lazy, rec_urgent);
        // urgent is recorded first (finishes at 1.0), lazy second
        assert!(r.trace.records[0].end <= r.trace.records[1].start + 1e-12);
    }

    #[test]
    fn makespan_never_below_critical_path() {
        use crate::critical_path::critical_path;
        // Random-ish layered DAG over 3 procs.
        let mut g = TaskGraph::new();
        let l0: Vec<_> = (0..6).map(|_| g.add_task(spec(0))).collect();
        let l1: Vec<_> = (0..6).map(|_| g.add_task(spec(1))).collect();
        for (a, &t0) in l0.iter().enumerate() {
            for (b, &t1) in l1.iter().enumerate() {
                if (a + b) % 2 == 0 {
                    g.add_edge(t0, t1, DataRef { i: a, j: 0 }, 1000);
                }
            }
        }
        let tasks: Vec<DesTask> = (0..g.len())
            .map(|t| DesTask {
                proc: t % 3,
                duration: 1.0 + (t % 4) as f64,
            })
            .collect();
        let cfg = DesConfig {
            nprocs: 3,
            cores_per_proc: 2,
            latency_s: 1e-3,
            bandwidth_bps: 1e9,
            dep_overhead_s: 1e-4,
            task_mgmt_s: 0.0,
        };
        let r = simulate(&g, &tasks, &cfg);
        let cp = critical_path(&g, |t| tasks[t].duration);
        assert!(
            r.makespan >= cp.length - 1e-12,
            "{} < {}",
            r.makespan,
            cp.length
        );
    }

    // ---------------- fault schedule ----------------

    /// Wide two-layer DAG spread over `nprocs`, unit durations.
    fn wide_graph(width: usize) -> (TaskGraph, Vec<DesTask>) {
        let mut g = TaskGraph::new();
        let root = g.add_task(spec(0));
        let mut mids = Vec::new();
        for i in 0..width {
            let m = g.add_task(spec(1));
            g.add_edge(root, m, DataRef { i, j: 0 }, 1000);
            mids.push(m);
        }
        let sink = g.add_task(spec(2));
        for (i, &m) in mids.iter().enumerate() {
            g.add_edge(m, sink, DataRef { i, j: 1 }, 1000);
        }
        let tasks: Vec<DesTask> = (0..g.len())
            .map(|t| DesTask {
                proc: t % 3,
                duration: 1.0,
            })
            .collect();
        (g, tasks)
    }

    fn faulty_cfg() -> DesConfig {
        DesConfig {
            nprocs: 3,
            cores_per_proc: 2,
            latency_s: 1e-3,
            bandwidth_bps: 1e9,
            dep_overhead_s: 1e-4,
            task_mgmt_s: 0.0,
        }
    }

    #[test]
    fn empty_fault_schedule_matches_plain_simulation() {
        let (g, tasks) = wide_graph(12);
        let cfg = faulty_cfg();
        let plain = simulate(&g, &tasks, &cfg);
        let faulty = simulate_with_faults(&g, &tasks, &cfg, &FaultSchedule::none()).unwrap();
        assert_eq!(faulty.makespan, plain.makespan);
        assert_eq!(faulty.crashes, 0);
        assert_eq!(faulty.migrated, 0);
        assert_eq!(faulty.reexecuted, 0);
        assert_eq!(faulty.corruptions, 0);
    }

    #[test]
    fn crash_migrates_reexecutes_and_costs_time() {
        let (g, tasks) = wide_graph(12);
        let cfg = faulty_cfg();
        let baseline = simulate(&g, &tasks, &cfg);
        let sched = FaultSchedule {
            crashes: vec![DesCrash {
                proc: 1,
                at: baseline.makespan * 0.5,
            }],
            restart_delay_s: 0.5,
            ..FaultSchedule::none()
        };
        let r = simulate_with_faults(&g, &tasks, &cfg, &sched).unwrap();
        assert_eq!(r.crashes, 1);
        assert!(r.migrated > 0, "dead proc's tasks must move");
        assert!(
            r.makespan > baseline.makespan,
            "losing a third of the machine mid-run must cost time: {} vs {}",
            r.makespan,
            baseline.makespan
        );
    }

    #[test]
    fn crash_after_completion_is_free() {
        let (g, tasks) = wide_graph(12);
        let cfg = faulty_cfg();
        let baseline = simulate(&g, &tasks, &cfg);
        let sched = FaultSchedule {
            crashes: vec![DesCrash {
                proc: 1,
                at: baseline.makespan + 100.0,
            }],
            restart_delay_s: 0.5,
            ..FaultSchedule::none()
        };
        let r = simulate_with_faults(&g, &tasks, &cfg, &sched).unwrap();
        assert_eq!(r.crashes, 0);
        assert_eq!(r.makespan, baseline.makespan);
    }

    #[test]
    fn longer_restart_delay_costs_at_least_as_much() {
        let (g, tasks) = wide_graph(16);
        let cfg = faulty_cfg();
        let base = simulate(&g, &tasks, &cfg);
        let mk = |delay: f64| FaultSchedule {
            crashes: vec![DesCrash {
                proc: 2,
                at: base.makespan * 0.4,
            }],
            restart_delay_s: delay,
            ..FaultSchedule::none()
        };
        let quick = simulate_with_faults(&g, &tasks, &cfg, &mk(0.1)).unwrap();
        let slow = simulate_with_faults(&g, &tasks, &cfg, &mk(5.0)).unwrap();
        assert!(
            slow.makespan >= quick.makespan,
            "{} < {}",
            slow.makespan,
            quick.makespan
        );
    }

    #[test]
    fn lost_needed_outputs_are_reexecuted() {
        // Chain on a single remote proc with the sink elsewhere: crashing
        // the chain's proc after it finished some tasks but before the
        // sink consumed them forces re-execution.
        let mut g = TaskGraph::new();
        let a = g.add_task(spec(0));
        let b = g.add_task(spec(1));
        let c = g.add_task(spec(2));
        g.add_edge(a, b, DataRef { i: 0, j: 0 }, 1000);
        g.add_edge(b, c, DataRef { i: 1, j: 0 }, 1000);
        let tasks = vec![
            DesTask {
                proc: 0,
                duration: 1.0,
            },
            DesTask {
                proc: 0,
                duration: 1.0,
            },
            DesTask {
                proc: 1,
                duration: 10.0,
            },
        ];
        let cfg = faulty_cfg();
        // Crash proc 0 while the sink is still running: b's output is no
        // longer needed (c already has it) but the model re-runs tasks
        // with unfinished consumers — c is unfinished, so b re-executes.
        let sched = FaultSchedule {
            crashes: vec![DesCrash { proc: 0, at: 2.5 }],
            restart_delay_s: 0.0,
            ..FaultSchedule::none()
        };
        let r = simulate_with_faults(&g, &tasks, &cfg, &sched).unwrap();
        assert_eq!(r.crashes, 1);
        assert!(r.reexecuted >= 1, "b must re-execute, got {}", r.reexecuted);
    }

    #[test]
    fn crashing_all_processes_is_a_typed_error() {
        let (g, tasks) = wide_graph(8);
        let cfg = faulty_cfg();
        let sched = FaultSchedule {
            crashes: vec![
                DesCrash { proc: 0, at: 0.1 },
                DesCrash { proc: 1, at: 0.2 },
                DesCrash { proc: 2, at: 0.3 },
            ],
            restart_delay_s: 0.0,
            ..FaultSchedule::none()
        };
        let err = simulate_with_faults(&g, &tasks, &cfg, &sched).unwrap_err();
        assert_eq!(err, EngineError::Fault(FtError::AllRanksCrashed));
    }

    #[test]
    fn out_of_range_fault_target_is_a_typed_error() {
        let (g, tasks) = wide_graph(8);
        let cfg = faulty_cfg(); // nprocs = 3
        let crash = FaultSchedule {
            crashes: vec![DesCrash { proc: 7, at: 1.0 }],
            ..FaultSchedule::none()
        };
        assert_eq!(
            simulate_with_faults(&g, &tasks, &cfg, &crash).unwrap_err(),
            EngineError::InvalidCrashRank { rank: 7, nprocs: 3 }
        );
        let corrupt = FaultSchedule {
            corruptions: vec![DesCorrupt { proc: 9, at: 1.0 }],
            ..FaultSchedule::none()
        };
        assert_eq!(
            simulate_with_faults(&g, &tasks, &cfg, &corrupt).unwrap_err(),
            EngineError::InvalidCrashRank { rank: 9, nprocs: 3 }
        );
    }

    #[test]
    fn corruption_heals_by_reexecution_and_costs_time() {
        let (g, tasks) = wide_graph(12);
        let cfg = faulty_cfg();
        let base = simulate(&g, &tasks, &cfg);
        // Strike proc 0 mid-run with a long detection window: the root's
        // output (consumed by every mid task) is still needed, so one
        // completed task must re-execute and the makespan must grow.
        let sched = FaultSchedule {
            corruptions: vec![DesCorrupt {
                proc: 0,
                at: base.makespan * 0.3,
            }],
            restart_delay_s: base.makespan * 2.0,
            seed: 7,
            ..FaultSchedule::none()
        };
        let r = simulate_with_faults(&g, &tasks, &cfg, &sched).unwrap();
        assert_eq!(r.corruptions, 1);
        assert_eq!(r.crashes, 0);
        assert!(
            r.reexecuted >= 1,
            "a still-needed tile was hit: {}",
            r.reexecuted
        );
        assert!(
            r.makespan > base.makespan,
            "healing a needed tile cannot be free: {} vs {}",
            r.makespan,
            base.makespan
        );
        // Determinism: the same seeded schedule reproduces the run.
        let again = simulate_with_faults(&g, &tasks, &cfg, &sched).unwrap();
        assert_eq!(again.makespan, r.makespan);
        assert_eq!(again.reexecuted, r.reexecuted);
    }

    #[test]
    fn corruption_after_completion_is_free() {
        let (g, tasks) = wide_graph(12);
        let cfg = faulty_cfg();
        let base = simulate(&g, &tasks, &cfg);
        let sched = FaultSchedule {
            corruptions: vec![DesCorrupt {
                proc: 1,
                at: base.makespan + 50.0,
            }],
            restart_delay_s: 1.0,
            seed: 3,
            ..FaultSchedule::none()
        };
        let r = simulate_with_faults(&g, &tasks, &cfg, &sched).unwrap();
        assert_eq!(r.corruptions, 0);
        assert_eq!(r.reexecuted, 0);
        assert_eq!(r.makespan, base.makespan);
    }

    #[test]
    fn schedule_from_plan_shares_the_seed_and_events() {
        use crate::fault::FaultPlan;
        let plan = FaultPlan::new(1234)
            .with_crash(1, 5.0)
            .with_store_corruption(2, 0, 0, 7.5)
            .with_message_corruption(0.1);
        let sched = FaultSchedule::from_plan(&plan, 0.25);
        assert_eq!(sched.seed, 1234);
        assert_eq!(sched.restart_delay_s, 0.25);
        assert_eq!(sched.crashes, vec![DesCrash { proc: 1, at: 5.0 }]);
        assert_eq!(sched.corruptions, vec![DesCorrupt { proc: 2, at: 7.5 }]);
        // The shared stream: the DES victim roll equals the plan-side roll.
        assert_eq!(
            fault_unit(plan.seed, 8, 0, 0),
            fault_unit(sched.seed, 8, 0, 0)
        );
    }

    #[test]
    fn report_metrics() {
        let g = chain(4);
        let tasks: Vec<DesTask> = (0..4)
            .map(|p| DesTask {
                proc: p % 2,
                duration: 1.0,
            })
            .collect();
        let cfg = DesConfig {
            nprocs: 2,
            cores_per_proc: 1,
            latency_s: 0.0,
            bandwidth_bps: f64::INFINITY,
            dep_overhead_s: 0.0,
            task_mgmt_s: 0.0,
        };
        let r = simulate(&g, &tasks, &cfg);
        assert!((r.busy[0] - 2.0).abs() < 1e-12);
        assert!((r.busy[1] - 2.0).abs() < 1e-12);
        assert!((r.load_imbalance() - 1.0).abs() < 1e-12);
        // serial chain on 2 procs: efficiency = 4 / (2*4) = 0.5
        assert!((r.efficiency_vs_serial() - 0.5).abs() < 1e-12);
    }

    /// Satellite bugfix regression: a NaN scheduling key used to panic
    /// via `partial_cmp().unwrap()` deep inside the event loop; now it
    /// is rejected up front as a typed error.
    #[test]
    fn non_finite_keys_are_a_typed_error_not_a_panic() {
        let g = chain(4);
        let tasks: Vec<DesTask> = (0..4).map(|_| DesTask { proc: 0, duration: 1.0 }).collect();
        let cfg = single_proc_config(2);
        let keys = vec![0.0, f64::NAN, 2.0, 3.0];
        let err = simulate_with_order(&g, &tasks, &cfg, &keys).unwrap_err();
        assert!(matches!(err, EngineError::NonFiniteKey { task: 1, .. }));
        let keys = vec![0.0, 1.0, f64::NEG_INFINITY, 3.0];
        let err = simulate_with_order(&g, &tasks, &cfg, &keys).unwrap_err();
        assert!(matches!(err, EngineError::NonFiniteKey { task: 2, .. }));
    }

    /// A scheduler that returns a NaN key *mid-run* (a buggy dynamic
    /// policy) also surfaces as the typed error, not a panic.
    #[test]
    fn mid_run_nan_key_is_caught() {
        struct Buggy;
        impl crate::scheduler::Scheduler for Buggy {
            fn on_task_ready(&mut self, task: TaskId, _g: &TaskGraph) -> f64 {
                if task == 2 {
                    f64::NAN
                } else {
                    task as f64
                }
            }
        }
        let g = chain(4);
        let tasks: Vec<DesTask> = (0..4).map(|_| DesTask { proc: 0, duration: 1.0 }).collect();
        let err = simulate_with_scheduler(&g, &tasks, &single_proc_config(1), &mut Buggy)
            .unwrap_err();
        assert!(matches!(err, EngineError::NonFiniteKey { task: 2, .. }));
    }

    /// The scheduler callbacks fire as documented: one `on_task_ready`
    /// and one `on_task_finished` per task on a fault-free run, with the
    /// simulated duration reported as the measured time.
    #[test]
    fn scheduler_callbacks_fire_per_task() {
        struct Counting {
            ready: usize,
            finished: usize,
            measured: f64,
        }
        impl crate::scheduler::Scheduler for Counting {
            fn on_task_ready(&mut self, task: TaskId, _g: &TaskGraph) -> f64 {
                self.ready += 1;
                task as f64
            }
            fn on_task_finished(&mut self, _task: TaskId, _g: &TaskGraph, measured_s: f64) {
                self.finished += 1;
                self.measured += measured_s;
            }
        }
        let g = chain(5);
        let tasks: Vec<DesTask> = (0..5).map(|_| DesTask { proc: 0, duration: 2.0 }).collect();
        let mut sched = Counting { ready: 0, finished: 0, measured: 0.0 };
        let r = simulate_with_scheduler(&g, &tasks, &single_proc_config(2), &mut sched).unwrap();
        assert_eq!(sched.ready, 5);
        assert_eq!(sched.finished, 5);
        assert!((sched.measured - 10.0).abs() < 1e-12);
        assert!((r.makespan - 10.0).abs() < 1e-12);
    }

    /// `simulate_with_order` with the priority keys equals `simulate` —
    /// the static path is one scheduler among several, not a fork.
    #[test]
    fn static_scheduler_path_matches_simulate() {
        let (g, tasks) = wide_graph(10);
        let cfg = faulty_cfg();
        let base = simulate(&g, &tasks, &cfg);
        let keys: Vec<f64> = (0..g.len()).map(|t| g.spec(t).priority as f64).collect();
        let via_order = simulate_with_order(&g, &tasks, &cfg, &keys).unwrap();
        assert_eq!(via_order.makespan, base.makespan);
        assert_eq!(via_order.comm, base.comm);
    }
}

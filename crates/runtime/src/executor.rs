//! Shared-memory work-stealing executor.
//!
//! Runs a [`TaskGraph`] with real kernel closures on `nthreads` OS threads.
//! The scheduling discipline mirrors PaRSEC's node-level scheduler:
//! per-worker LIFO deques (locality: a task's just-released successor runs
//! on the releasing worker while its inputs are cache-hot) with random
//! stealing, seeded from the graph sources in priority order.
//!
//! Dependency tracking is a per-task atomic in-degree counter: the worker
//! that retires the last predecessor pushes the successor into its own
//! deque — the "release" path of any dataflow runtime.

use crate::graph::{TaskGraph, TaskId};
use crossbeam::deque::{Injector, Steal, Stealer, Worker};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Mutex;

/// A kernel panicked during a cancellable execution.
#[derive(Debug, Clone)]
pub struct TaskPanic {
    /// The task whose kernel panicked (the first one, if several raced).
    pub task: TaskId,
    /// The panic payload rendered as text, when it was a string.
    pub message: String,
}

impl std::fmt::Display for TaskPanic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "task {} panicked: {}", self.task, self.message)
    }
}

impl std::error::Error for TaskPanic {}

/// Execute `graph` on `nthreads` workers, calling `run(task)` for every
/// task exactly once, respecting all dependencies.
///
/// `run` receives tasks concurrently from multiple threads; exclusive
/// access to the data a task writes is guaranteed by the graph (two tasks
/// writing the same tile must be ordered by a dependency chain — tile
/// Cholesky's graphs have this property by construction).
///
/// # Panics
/// Panics if the graph contains a cycle (deadlock would otherwise ensue),
/// or — after the pool has drained — if `run` panicked on some task.
pub fn execute<F>(graph: &TaskGraph, nthreads: usize, run: F)
where
    F: Fn(TaskId) + Sync,
{
    let cancel = AtomicBool::new(false);
    if let Err(p) = execute_cancellable(graph, nthreads, &cancel, run) {
        panic!("{p}");
    }
}

/// [`execute`] with graceful degradation: kernel panics are caught, the
/// first one flips `cancel`, and the remaining tasks drain without their
/// kernels running (dependency bookkeeping still retires them, so the
/// pool always terminates — the plain `execute` loop would spin forever
/// waiting on a completion count the dead worker can never advance).
///
/// Callers may also flip `cancel` themselves (e.g. on the first numeric
/// error) to stop scheduling kernels early; that path returns `Ok`.
///
/// `run` is invoked under [`catch_unwind`]: shared state it mutates must
/// tolerate a kernel dying mid-update (the TLR factorizations qualify —
/// a poisoned run's output is discarded wholesale).
pub fn execute_cancellable<F>(
    graph: &TaskGraph,
    nthreads: usize,
    cancel: &AtomicBool,
    run: F,
) -> Result<(), TaskPanic>
where
    F: Fn(TaskId) + Sync,
{
    execute_cancellable_indexed(graph, nthreads, cancel, |_wid, t| run(t))
}

/// [`execute_cancellable`] that also hands each kernel invocation the
/// **worker index** (`0 .. nthreads`) it runs on.
///
/// The index is stable for the lifetime of the pool, so callers can give
/// every worker an exclusive slot of per-worker state — the TLR
/// factorization uses it to hand each worker its own
/// `KernelWorkspace` arena, making the recompression hot path
/// allocation-free without any cross-worker synchronization.
pub fn execute_cancellable_indexed<F>(
    graph: &TaskGraph,
    nthreads: usize,
    cancel: &AtomicBool,
    run: F,
) -> Result<(), TaskPanic>
where
    F: Fn(usize, TaskId) + Sync,
{
    let n = graph.len();
    if n == 0 {
        return Ok(());
    }
    assert!(graph.topological_order().is_some(), "task graph has a cycle");
    let nthreads = nthreads.max(1);

    let indegree: Vec<AtomicUsize> =
        graph.indegrees().into_iter().map(AtomicUsize::new).collect();
    let completed = AtomicUsize::new(0);
    let first_panic: Mutex<Option<TaskPanic>> = Mutex::new(None);

    let injector = Injector::new();
    // Seed sources in priority order (critical path first).
    let mut sources = graph.sources();
    sources.sort_by_key(|&t| graph.spec(t).priority);
    for t in sources {
        injector.push(t);
    }

    let workers: Vec<Worker<TaskId>> = (0..nthreads).map(|_| Worker::new_lifo()).collect();
    let stealers: Vec<Stealer<TaskId>> = workers.iter().map(Worker::stealer).collect();

    std::thread::scope(|scope| {
        for (wid, local) in workers.into_iter().enumerate() {
            let injector = &injector;
            let stealers = &stealers;
            let indegree = &indegree;
            let completed = &completed;
            let first_panic = &first_panic;
            let run = &run;
            scope.spawn(move || {
                let mut rng: u64 = 0x9E3779B97F4A7C15 ^ (wid as u64);
                loop {
                    if completed.load(Ordering::Acquire) == n {
                        return;
                    }
                    let task = find_task(&local, injector, stealers, wid, &mut rng);
                    match task {
                        Some(t) => {
                            if !cancel.load(Ordering::Acquire) {
                                if let Err(payload) =
                                    catch_unwind(AssertUnwindSafe(|| run(wid, t)))
                                {
                                    cancel.store(true, Ordering::Release);
                                    let message = payload
                                        .downcast_ref::<&str>()
                                        .map(|s| s.to_string())
                                        .or_else(|| payload.downcast_ref::<String>().cloned())
                                        .unwrap_or_else(|| "non-string panic payload".into());
                                    let mut slot =
                                        first_panic.lock().unwrap_or_else(|e| e.into_inner());
                                    if slot.is_none() {
                                        *slot = Some(TaskPanic { task: t, message });
                                    }
                                }
                            }
                            // Release successors even when draining: the
                            // completion count must reach `n` to stop.
                            for e in graph.successors(t) {
                                if indegree[e.dst].fetch_sub(1, Ordering::AcqRel) == 1 {
                                    local.push(e.dst);
                                }
                            }
                            completed.fetch_add(1, Ordering::AcqRel);
                        }
                        None => std::hint::spin_loop(),
                    }
                }
            });
        }
    });

    assert_eq!(completed.load(Ordering::Acquire), n, "not all tasks executed");
    match first_panic.into_inner().unwrap_or_else(|e| e.into_inner()) {
        Some(p) => Err(p),
        None => Ok(()),
    }
}

/// Pop local → steal from injector → steal from a random victim.
fn find_task(
    local: &Worker<TaskId>,
    injector: &Injector<TaskId>,
    stealers: &[Stealer<TaskId>],
    self_id: usize,
    rng: &mut u64,
) -> Option<TaskId> {
    if let Some(t) = local.pop() {
        return Some(t);
    }
    loop {
        match injector.steal_batch_and_pop(local) {
            Steal::Success(t) => return Some(t),
            Steal::Retry => continue,
            Steal::Empty => break,
        }
    }
    // Random-order steal attempt over all other workers.
    let k = stealers.len();
    if k > 1 {
        *rng = rng.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        let start = (*rng >> 33) as usize % k;
        for off in 0..k {
            let victim = (start + off) % k;
            if victim == self_id {
                continue;
            }
            loop {
                match stealers[victim].steal_batch_and_pop(local) {
                    Steal::Success(t) => return Some(t),
                    Steal::Retry => continue,
                    Steal::Empty => break,
                }
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{DataRef, TaskClass, TaskSpec};
    use std::sync::atomic::{AtomicU64, AtomicUsize};
    use std::sync::Mutex;

    fn spec(priority: usize) -> TaskSpec {
        TaskSpec { class: TaskClass::Other, priority, writes: None, flops: 0.0 }
    }

    /// Chain 0 → 1 → … → n−1 must execute in exact order.
    #[test]
    fn chain_executes_in_order() {
        let n = 100;
        let mut g = TaskGraph::new();
        for i in 0..n {
            g.add_task(spec(i));
        }
        for i in 0..n - 1 {
            g.add_edge(i, i + 1, DataRef { i: 0, j: 0 }, 0);
        }
        let order = Mutex::new(Vec::new());
        execute(&g, 4, |t| order.lock().unwrap().push(t));
        let order = order.into_inner().unwrap();
        assert_eq!(order, (0..n).collect::<Vec<_>>());
    }

    /// Every task runs exactly once, even with wide fan-out.
    #[test]
    fn fanout_runs_each_task_once() {
        let width = 500;
        let mut g = TaskGraph::new();
        let root = g.add_task(spec(0));
        let sink = g.add_task(spec(2));
        for _ in 0..width {
            let mid = g.add_task(spec(1));
            g.add_edge(root, mid, DataRef { i: 0, j: 0 }, 0);
            g.add_edge(mid, sink, DataRef { i: 0, j: 0 }, 0);
        }
        let counts: Vec<AtomicUsize> = (0..g.len()).map(|_| AtomicUsize::new(0)).collect();
        execute(&g, 8, |t| {
            counts[t].fetch_add(1, Ordering::Relaxed);
        });
        for (t, c) in counts.iter().enumerate() {
            assert_eq!(c.load(Ordering::Relaxed), 1, "task {t} ran wrong number of times");
        }
    }

    /// Dependencies are respected: a parent's effect is visible to children.
    #[test]
    fn dependency_happens_before() {
        // Layered graph: each layer sums the previous layer's value + 1.
        let layers = 50;
        let width = 8;
        let mut g = TaskGraph::new();
        let mut prev: Vec<TaskId> = (0..width).map(|_| g.add_task(spec(0))).collect();
        for l in 1..layers {
            let cur: Vec<TaskId> = (0..width).map(|_| g.add_task(spec(l))).collect();
            for &p in &prev {
                for &c in &cur {
                    g.add_edge(p, c, DataRef { i: 0, j: 0 }, 0);
                }
            }
            prev = cur;
        }
        let level = AtomicU64::new(0);
        let violations = AtomicUsize::new(0);
        // Record the maximum "wave" seen; a child running before any parent
        // would observe a lower wave than required.
        let task_layer: Vec<usize> = (0..g.len()).map(|t| g.spec(t).priority).collect();
        execute(&g, 8, |t| {
            let seen = level.load(Ordering::SeqCst);
            if (task_layer[t] as u64) < seen.saturating_sub(1) {
                violations.fetch_add(1, Ordering::SeqCst);
            }
            level.fetch_max(task_layer[t] as u64, Ordering::SeqCst);
        });
        assert_eq!(violations.load(Ordering::SeqCst), 0);
    }

    #[test]
    fn empty_graph_ok() {
        let g = TaskGraph::new();
        execute(&g, 4, |_| panic!("no tasks"));
    }

    #[test]
    fn single_thread_ok() {
        let mut g = TaskGraph::new();
        let a = g.add_task(spec(0));
        let b = g.add_task(spec(1));
        g.add_edge(a, b, DataRef { i: 0, j: 0 }, 0);
        let order = Mutex::new(Vec::new());
        execute(&g, 1, |t| order.lock().unwrap().push(t));
        assert_eq!(order.into_inner().unwrap(), vec![a, b]);
    }

    /// A panicking kernel must not hang the pool: the run drains, every
    /// task is retired, and the first panic is reported.
    #[test]
    fn panic_cancels_and_drains() {
        let n = 64;
        let mut g = TaskGraph::new();
        for i in 0..n {
            g.add_task(spec(i));
        }
        for i in 0..n - 1 {
            g.add_edge(i, i + 1, DataRef { i: 0, j: 0 }, 0);
        }
        let ran = AtomicUsize::new(0);
        let cancel = std::sync::atomic::AtomicBool::new(false);
        let err = execute_cancellable(&g, 4, &cancel, |t| {
            ran.fetch_add(1, Ordering::SeqCst);
            if t == 5 {
                panic!("kernel exploded on task {t}");
            }
        })
        .unwrap_err();
        assert_eq!(err.task, 5);
        assert!(err.message.contains("exploded"), "{}", err.message);
        assert!(cancel.load(Ordering::SeqCst));
        // Tasks after the panic drained without running their kernels.
        assert_eq!(ran.load(Ordering::SeqCst), 6);
    }

    /// Caller-side cancellation stops kernels but still terminates Ok.
    #[test]
    fn caller_cancel_skips_remaining_kernels() {
        let n = 64;
        let mut g = TaskGraph::new();
        for i in 0..n {
            g.add_task(spec(i));
        }
        for i in 0..n - 1 {
            g.add_edge(i, i + 1, DataRef { i: 0, j: 0 }, 0);
        }
        let ran = AtomicUsize::new(0);
        let cancel = std::sync::atomic::AtomicBool::new(false);
        execute_cancellable(&g, 4, &cancel, |t| {
            ran.fetch_add(1, Ordering::SeqCst);
            if t == 9 {
                cancel.store(true, Ordering::SeqCst);
            }
        })
        .unwrap();
        assert_eq!(ran.load(Ordering::SeqCst), 10);
    }

    #[test]
    #[should_panic(expected = "kernel exploded")]
    fn execute_propagates_kernel_panic_after_draining() {
        let mut g = TaskGraph::new();
        let a = g.add_task(spec(0));
        let b = g.add_task(spec(1));
        g.add_edge(a, b, DataRef { i: 0, j: 0 }, 0);
        execute(&g, 2, |_| panic!("kernel exploded"));
    }

    #[test]
    #[should_panic(expected = "cycle")]
    fn cycle_panics() {
        let mut g = TaskGraph::new();
        let a = g.add_task(spec(0));
        let b = g.add_task(spec(0));
        g.add_edge(a, b, DataRef { i: 0, j: 0 }, 0);
        g.add_edge(b, a, DataRef { i: 0, j: 0 }, 0);
        execute(&g, 2, |_| {});
    }
}

//! Legacy entry points of the shared-memory executor.
//!
//! The work-stealing loop now lives in [`crate::engine::Engine`], driven
//! by an [`crate::engine::EngineConfig`] of composable capability hooks
//! (cancellation, span capture). The free functions here are
//! `#[deprecated]` one-line shims kept for one release so downstream
//! callers migrate at their own pace:
//!
//! | legacy entry point              | replacement                                             |
//! |---------------------------------|---------------------------------------------------------|
//! | `execute`                       | `Engine::new(g).run(&EngineConfig::new(n), ..)`         |
//! | `execute_cancellable`           | `… EngineConfig::new(n).with_cancel(&cancel) …`         |
//! | `execute_cancellable_indexed`   | same (the engine kernel always gets the worker index)   |
//! | `execute_cancellable_observed`  | `… .with_cancel(&cancel).with_obs(obs.as_ref()) …`      |
//!
//! [`ExecObs`], [`ExecReport`] and [`TaskPanic`] also moved to
//! [`crate::engine`]; they are re-exported here unchanged.

pub use crate::engine::{ExecObs, ExecReport, TaskPanic};

use crate::engine::{Engine, EngineConfig, EngineError};
use crate::graph::{TaskGraph, TaskId};
use std::sync::atomic::AtomicBool;

/// Execute `graph` on `nthreads` workers, calling `run(task)` for every
/// task exactly once, respecting all dependencies.
///
/// # Panics
/// Panics if the graph contains a cycle, or — after the pool has
/// drained — if `run` panicked on some task.
#[deprecated(note = "use engine::Engine::run with engine::EngineConfig")]
pub fn execute<F>(graph: &TaskGraph, nthreads: usize, run: F)
where
    F: Fn(TaskId) + Sync,
{
    if let Err(e) = Engine::new(graph).run(&EngineConfig::new(nthreads), |_wid, t| run(t)) {
        panic!("{e}");
    }
}

/// [`execute`] with graceful degradation: kernel panics are caught and
/// reported after the pool drains; callers may flip `cancel` themselves
/// to stop scheduling kernels early (that path returns `Ok`).
#[deprecated(note = "use engine::Engine::run with EngineConfig::with_cancel")]
pub fn execute_cancellable<F>(
    graph: &TaskGraph,
    nthreads: usize,
    cancel: &AtomicBool,
    run: F,
) -> Result<(), TaskPanic>
where
    F: Fn(TaskId) + Sync,
{
    demote(Engine::new(graph).run(&EngineConfig::new(nthreads).with_cancel(cancel), |_wid, t| {
        run(t)
    }))
}

/// [`execute_cancellable`] that also hands each kernel invocation the
/// **worker index** (`0 .. nthreads`) it runs on.
#[deprecated(note = "use engine::Engine::run with EngineConfig::with_cancel \
                     (the engine kernel always receives the worker index)")]
pub fn execute_cancellable_indexed<F>(
    graph: &TaskGraph,
    nthreads: usize,
    cancel: &AtomicBool,
    run: F,
) -> Result<(), TaskPanic>
where
    F: Fn(usize, TaskId) + Sync,
{
    demote(Engine::new(graph).run(&EngineConfig::new(nthreads).with_cancel(cancel), run))
}

/// [`execute_cancellable_indexed`] with optional span capture into an
/// [`ExecObs`] (harvest with [`ExecObs::finish`] after this returns).
#[deprecated(note = "use engine::Engine::run with \
                     EngineConfig::with_cancel(..).with_obs(obs.as_ref())")]
pub fn execute_cancellable_observed<F>(
    graph: &TaskGraph,
    nthreads: usize,
    cancel: &AtomicBool,
    obs: Option<&ExecObs>,
    run: F,
) -> Result<(), TaskPanic>
where
    F: Fn(usize, TaskId) + Sync,
{
    demote(
        Engine::new(graph)
            .run(&EngineConfig::new(nthreads).with_cancel(cancel).with_obs(obs), run),
    )
}

/// Map the engine's typed error back onto the legacy contract: kernel
/// panics are an `Err`, everything else (only [`EngineError::Cycle`] is
/// possible here) re-raises as the panic the old asserts threw.
fn demote(r: Result<(), EngineError>) -> Result<(), TaskPanic> {
    match r {
        Ok(()) => Ok(()),
        Err(EngineError::Panic(p)) => Err(p),
        Err(e) => panic!("{e}"),
    }
}

#[cfg(test)]
#[allow(deprecated)]
mod tests {
    //! Compatibility tests of the shims only — the scheduling-loop tests
    //! live with the loop, in [`crate::engine`].
    use super::*;
    use crate::graph::{DataRef, TaskClass, TaskSpec};
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Mutex;

    fn spec(priority: usize) -> TaskSpec {
        TaskSpec { class: TaskClass::Other, priority, writes: None, flops: 0.0 }
    }

    fn chain(n: usize) -> TaskGraph {
        let mut g = TaskGraph::new();
        for i in 0..n {
            g.add_task(spec(i));
        }
        for i in 0..n - 1 {
            g.add_edge(i, i + 1, DataRef { i: 0, j: 0 }, 0);
        }
        g
    }

    #[test]
    fn execute_shim_runs_everything_in_order() {
        let g = chain(50);
        let order = Mutex::new(Vec::new());
        execute(&g, 4, |t| order.lock().unwrap().push(t));
        assert_eq!(order.into_inner().unwrap(), (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn cancellable_shim_reports_task_panics() {
        let g = chain(64);
        let ran = AtomicUsize::new(0);
        let cancel = AtomicBool::new(false);
        let err = execute_cancellable(&g, 4, &cancel, |t| {
            ran.fetch_add(1, Ordering::SeqCst);
            if t == 5 {
                panic!("kernel exploded on task {t}");
            }
        })
        .unwrap_err();
        assert_eq!(err.task, 5);
        assert!(err.message.contains("exploded"), "{}", err.message);
        assert!(cancel.load(Ordering::SeqCst));
        assert_eq!(ran.load(Ordering::SeqCst), 6);
    }

    #[test]
    fn indexed_shim_passes_worker_ids() {
        let g = chain(16);
        let cancel = AtomicBool::new(false);
        let max_wid = AtomicUsize::new(0);
        execute_cancellable_indexed(&g, 3, &cancel, |wid, _t| {
            max_wid.fetch_max(wid, Ordering::SeqCst);
        })
        .unwrap();
        assert!(max_wid.load(Ordering::SeqCst) < 3);
    }

    #[test]
    fn observed_shim_threads_the_observer() {
        let g = chain(20);
        let obs = ExecObs::new(g.len(), 2);
        let cancel = AtomicBool::new(false);
        execute_cancellable_observed(&g, 2, &cancel, Some(&obs), |_wid, _t| {}).unwrap();
        let rep = obs.finish(&g);
        if ExecObs::enabled() {
            assert_eq!(rep.trace.records.len(), 20);
        } else {
            assert!(rep.trace.records.is_empty());
        }
    }

    #[test]
    #[should_panic(expected = "kernel exploded")]
    fn execute_propagates_kernel_panic_after_draining() {
        let mut g = TaskGraph::new();
        let a = g.add_task(spec(0));
        let b = g.add_task(spec(1));
        g.add_edge(a, b, DataRef { i: 0, j: 0 }, 0);
        execute(&g, 2, |_| panic!("kernel exploded"));
    }

    #[test]
    #[should_panic(expected = "cycle")]
    fn cycle_panics() {
        let mut g = TaskGraph::new();
        let a = g.add_task(spec(0));
        let b = g.add_task(spec(0));
        g.add_edge(a, b, DataRef { i: 0, j: 0 }, 0);
        g.add_edge(b, a, DataRef { i: 0, j: 0 }, 0);
        execute(&g, 2, |_| {});
    }
}

//! Shared-memory work-stealing executor.
//!
//! Runs a [`TaskGraph`] with real kernel closures on `nthreads` OS threads.
//! The scheduling discipline mirrors PaRSEC's node-level scheduler:
//! per-worker LIFO deques (locality: a task's just-released successor runs
//! on the releasing worker while its inputs are cache-hot) with random
//! stealing, seeded from the graph sources in priority order.
//!
//! Dependency tracking is a per-task atomic in-degree counter: the worker
//! that retires the last predecessor pushes the successor into its own
//! deque — the "release" path of any dataflow runtime.

use crate::graph::{TaskGraph, TaskId};
use crate::trace::Trace;
use crossbeam::deque::{Injector, Steal, Stealer, Worker};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Mutex;

#[cfg(feature = "obs")]
use crate::trace::TaskRecord;
#[cfg(feature = "obs")]
use std::sync::atomic::AtomicU64;
#[cfg(feature = "obs")]
use std::time::Instant;

/// Span and steal data harvested from one observed execution.
#[derive(Debug, Clone, Default)]
pub struct ExecReport {
    /// One record per executed task (retirement order sorted by end time).
    pub trace: Trace,
    /// Successful steals per worker (tasks this worker took from a peer's
    /// deque; injector grabs are not steals).
    pub steals: Vec<u64>,
}

impl ExecReport {
    /// Total steal count over all workers.
    pub fn total_steals(&self) -> u64 {
        self.steals.iter().sum()
    }
}

/// Observation hooks for one executor run.
///
/// With the `obs` cargo feature enabled this captures, per task, the
/// enqueue (ready) time, the execute start/end times, and the executing
/// worker, plus per-worker steal counters — everything
/// [`crate::obs::RunMetrics`] and the Chrome-trace exporter need. Without
/// the feature every method is an inline no-op and the struct is
/// zero-sized, so the hot path of an unobserved build is untouched (the
/// counting-allocator harness in `tests/alloc_free.rs` holds either way:
/// all span storage is preallocated up front in [`ExecObs::new`]).
#[derive(Debug, Default)]
pub struct ExecObs {
    #[cfg(feature = "obs")]
    inner: Option<ObsInner>,
}

#[cfg(feature = "obs")]
#[derive(Debug)]
struct ObsInner {
    t0: Instant,
    /// Nanoseconds since `t0` at which each task became ready.
    enqueue_ns: Vec<AtomicU64>,
    /// Per-worker span logs; each mutex is only ever taken by its own
    /// worker during the run (uncontended), then drained in `finish`.
    logs: Vec<Mutex<Vec<(TaskId, u64, u64)>>>,
    /// Successful deque steals per worker.
    steals: Vec<AtomicU64>,
}

impl ExecObs {
    /// Whether span capture is compiled in (`obs` cargo feature).
    pub const fn enabled() -> bool {
        cfg!(feature = "obs")
    }

    /// Prepare storage for a graph of `ntasks` tasks on `nthreads`
    /// workers. All vectors are sized up front: the per-task hooks never
    /// allocate (each worker's log reserves room for every task, since in
    /// the worst case one worker runs the whole graph).
    #[allow(unused_variables)]
    pub fn new(ntasks: usize, nthreads: usize) -> Self {
        #[cfg(feature = "obs")]
        {
            ExecObs {
                inner: Some(ObsInner {
                    t0: Instant::now(),
                    enqueue_ns: (0..ntasks).map(|_| AtomicU64::new(0)).collect(),
                    logs: (0..nthreads.max(1))
                        .map(|_| Mutex::new(Vec::with_capacity(ntasks)))
                        .collect(),
                    steals: (0..nthreads.max(1)).map(|_| AtomicU64::new(0)).collect(),
                }),
            }
        }
        #[cfg(not(feature = "obs"))]
        {
            ExecObs::default()
        }
    }

    /// Current time in integer nanoseconds on the observation clock.
    #[inline]
    fn now_ns(&self) -> u64 {
        #[cfg(feature = "obs")]
        if let Some(inner) = &self.inner {
            return inner.t0.elapsed().as_nanos() as u64;
        }
        0
    }

    /// A task just became ready (pushed to a deque / the injector).
    #[inline]
    #[allow(unused_variables)]
    fn on_enqueue(&self, t: TaskId) {
        #[cfg(feature = "obs")]
        if let Some(inner) = &self.inner {
            inner.enqueue_ns[t].store(inner.t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
        }
    }

    /// Worker `wid` finished running task `t` which started at `start_ns`.
    #[inline]
    #[allow(unused_variables)]
    fn on_retire(&self, wid: usize, t: TaskId, start_ns: u64) {
        #[cfg(feature = "obs")]
        if let Some(inner) = &self.inner {
            let end = inner.t0.elapsed().as_nanos() as u64;
            let mut log = inner.logs[wid].lock().unwrap_or_else(|e| e.into_inner());
            log.push((t, start_ns, end));
        }
    }

    /// Worker `wid` successfully stole from a peer's deque.
    #[inline]
    #[allow(unused_variables)]
    fn on_steal(&self, wid: usize) {
        #[cfg(feature = "obs")]
        if let Some(inner) = &self.inner {
            inner.steals[wid].fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Harvest the captured spans into an [`ExecReport`], resolving task
    /// class and tile coordinates against `graph`. Returns an empty report
    /// when the `obs` feature is off.
    #[allow(unused_variables)]
    pub fn finish(&self, graph: &TaskGraph) -> ExecReport {
        #[cfg(feature = "obs")]
        if let Some(inner) = &self.inner {
            let mut trace = Trace::default();
            for (wid, log) in inner.logs.iter().enumerate() {
                let log = log.lock().unwrap_or_else(|e| e.into_inner());
                for &(t, start_ns, end_ns) in log.iter() {
                    let spec = graph.spec(t);
                    let queued_ns = inner.enqueue_ns[t].load(Ordering::Relaxed).min(start_ns);
                    trace.push_record(TaskRecord {
                        task: t,
                        class: spec.class,
                        proc: wid,
                        data: spec.writes,
                        queued: queued_ns as f64 * 1e-9,
                        start: start_ns as f64 * 1e-9,
                        end: end_ns as f64 * 1e-9,
                    });
                }
            }
            trace.records.sort_by(|a, b| a.end.total_cmp(&b.end));
            return ExecReport {
                trace,
                steals: inner.steals.iter().map(|s| s.load(Ordering::Relaxed)).collect(),
            };
        }
        ExecReport::default()
    }
}

/// A kernel panicked during a cancellable execution.
#[derive(Debug, Clone)]
pub struct TaskPanic {
    /// The task whose kernel panicked (the first one, if several raced).
    pub task: TaskId,
    /// The panic payload rendered as text, when it was a string.
    pub message: String,
}

impl std::fmt::Display for TaskPanic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "task {} panicked: {}", self.task, self.message)
    }
}

impl std::error::Error for TaskPanic {}

/// Execute `graph` on `nthreads` workers, calling `run(task)` for every
/// task exactly once, respecting all dependencies.
///
/// `run` receives tasks concurrently from multiple threads; exclusive
/// access to the data a task writes is guaranteed by the graph (two tasks
/// writing the same tile must be ordered by a dependency chain — tile
/// Cholesky's graphs have this property by construction).
///
/// # Panics
/// Panics if the graph contains a cycle (deadlock would otherwise ensue),
/// or — after the pool has drained — if `run` panicked on some task.
pub fn execute<F>(graph: &TaskGraph, nthreads: usize, run: F)
where
    F: Fn(TaskId) + Sync,
{
    let cancel = AtomicBool::new(false);
    if let Err(p) = execute_cancellable(graph, nthreads, &cancel, run) {
        panic!("{p}");
    }
}

/// [`execute`] with graceful degradation: kernel panics are caught, the
/// first one flips `cancel`, and the remaining tasks drain without their
/// kernels running (dependency bookkeeping still retires them, so the
/// pool always terminates — the plain `execute` loop would spin forever
/// waiting on a completion count the dead worker can never advance).
///
/// Callers may also flip `cancel` themselves (e.g. on the first numeric
/// error) to stop scheduling kernels early; that path returns `Ok`.
///
/// `run` is invoked under [`catch_unwind`]: shared state it mutates must
/// tolerate a kernel dying mid-update (the TLR factorizations qualify —
/// a poisoned run's output is discarded wholesale).
pub fn execute_cancellable<F>(
    graph: &TaskGraph,
    nthreads: usize,
    cancel: &AtomicBool,
    run: F,
) -> Result<(), TaskPanic>
where
    F: Fn(TaskId) + Sync,
{
    execute_cancellable_indexed(graph, nthreads, cancel, |_wid, t| run(t))
}

/// [`execute_cancellable`] that also hands each kernel invocation the
/// **worker index** (`0 .. nthreads`) it runs on.
///
/// The index is stable for the lifetime of the pool, so callers can give
/// every worker an exclusive slot of per-worker state — the TLR
/// factorization uses it to hand each worker its own
/// `KernelWorkspace` arena, making the recompression hot path
/// allocation-free without any cross-worker synchronization.
pub fn execute_cancellable_indexed<F>(
    graph: &TaskGraph,
    nthreads: usize,
    cancel: &AtomicBool,
    run: F,
) -> Result<(), TaskPanic>
where
    F: Fn(usize, TaskId) + Sync,
{
    execute_cancellable_observed(graph, nthreads, cancel, None, run)
}

/// [`execute_cancellable_indexed`] with optional span capture.
///
/// When `obs` is `Some`, every task's enqueue/start/end time and executing
/// worker are recorded into it (harvest with [`ExecObs::finish`] after
/// this returns), along with per-worker steal counts. When `None` — or
/// when the `obs` cargo feature is off — the instrumentation reduces to a
/// branch per task.
pub fn execute_cancellable_observed<F>(
    graph: &TaskGraph,
    nthreads: usize,
    cancel: &AtomicBool,
    obs: Option<&ExecObs>,
    run: F,
) -> Result<(), TaskPanic>
where
    F: Fn(usize, TaskId) + Sync,
{
    let n = graph.len();
    if n == 0 {
        return Ok(());
    }
    assert!(graph.topological_order().is_some(), "task graph has a cycle");
    let nthreads = nthreads.max(1);

    let indegree: Vec<AtomicUsize> =
        graph.indegrees().into_iter().map(AtomicUsize::new).collect();
    let completed = AtomicUsize::new(0);
    let first_panic: Mutex<Option<TaskPanic>> = Mutex::new(None);

    let injector = Injector::new();
    // Seed sources in priority order (critical path first).
    let mut sources = graph.sources();
    sources.sort_by_key(|&t| graph.spec(t).priority);
    for t in sources {
        if let Some(o) = obs {
            o.on_enqueue(t);
        }
        injector.push(t);
    }

    let workers: Vec<Worker<TaskId>> = (0..nthreads).map(|_| Worker::new_lifo()).collect();
    let stealers: Vec<Stealer<TaskId>> = workers.iter().map(Worker::stealer).collect();

    std::thread::scope(|scope| {
        for (wid, local) in workers.into_iter().enumerate() {
            let injector = &injector;
            let stealers = &stealers;
            let indegree = &indegree;
            let completed = &completed;
            let first_panic = &first_panic;
            let run = &run;
            scope.spawn(move || {
                let mut rng: u64 = 0x9E3779B97F4A7C15 ^ (wid as u64);
                loop {
                    if completed.load(Ordering::Acquire) == n {
                        return;
                    }
                    let task = find_task(&local, injector, stealers, wid, &mut rng, obs);
                    match task {
                        Some(t) => {
                            let start_ns = match obs {
                                Some(o) => o.now_ns(),
                                None => 0,
                            };
                            if !cancel.load(Ordering::Acquire) {
                                if let Err(payload) =
                                    catch_unwind(AssertUnwindSafe(|| run(wid, t)))
                                {
                                    cancel.store(true, Ordering::Release);
                                    let message = payload
                                        .downcast_ref::<&str>()
                                        .map(|s| s.to_string())
                                        .or_else(|| payload.downcast_ref::<String>().cloned())
                                        .unwrap_or_else(|| "non-string panic payload".into());
                                    let mut slot =
                                        first_panic.lock().unwrap_or_else(|e| e.into_inner());
                                    if slot.is_none() {
                                        *slot = Some(TaskPanic { task: t, message });
                                    }
                                }
                            }
                            if let Some(o) = obs {
                                o.on_retire(wid, t, start_ns);
                            }
                            // Release successors even when draining: the
                            // completion count must reach `n` to stop.
                            for e in graph.successors(t) {
                                if indegree[e.dst].fetch_sub(1, Ordering::AcqRel) == 1 {
                                    if let Some(o) = obs {
                                        o.on_enqueue(e.dst);
                                    }
                                    local.push(e.dst);
                                }
                            }
                            completed.fetch_add(1, Ordering::AcqRel);
                        }
                        None => std::hint::spin_loop(),
                    }
                }
            });
        }
    });

    assert_eq!(completed.load(Ordering::Acquire), n, "not all tasks executed");
    match first_panic.into_inner().unwrap_or_else(|e| e.into_inner()) {
        Some(p) => Err(p),
        None => Ok(()),
    }
}

/// Pop local → steal from injector → steal from a random victim.
fn find_task(
    local: &Worker<TaskId>,
    injector: &Injector<TaskId>,
    stealers: &[Stealer<TaskId>],
    self_id: usize,
    rng: &mut u64,
    obs: Option<&ExecObs>,
) -> Option<TaskId> {
    if let Some(t) = local.pop() {
        return Some(t);
    }
    loop {
        match injector.steal_batch_and_pop(local) {
            Steal::Success(t) => return Some(t),
            Steal::Retry => continue,
            Steal::Empty => break,
        }
    }
    // Random-order steal attempt over all other workers.
    let k = stealers.len();
    if k > 1 {
        *rng = rng.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        let start = (*rng >> 33) as usize % k;
        for off in 0..k {
            let victim = (start + off) % k;
            if victim == self_id {
                continue;
            }
            loop {
                match stealers[victim].steal_batch_and_pop(local) {
                    Steal::Success(t) => {
                        if let Some(o) = obs {
                            o.on_steal(self_id);
                        }
                        return Some(t);
                    }
                    Steal::Retry => continue,
                    Steal::Empty => break,
                }
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{DataRef, TaskClass, TaskSpec};
    use std::sync::atomic::{AtomicU64, AtomicUsize};
    use std::sync::Mutex;

    fn spec(priority: usize) -> TaskSpec {
        TaskSpec { class: TaskClass::Other, priority, writes: None, flops: 0.0 }
    }

    /// Chain 0 → 1 → … → n−1 must execute in exact order.
    #[test]
    fn chain_executes_in_order() {
        let n = 100;
        let mut g = TaskGraph::new();
        for i in 0..n {
            g.add_task(spec(i));
        }
        for i in 0..n - 1 {
            g.add_edge(i, i + 1, DataRef { i: 0, j: 0 }, 0);
        }
        let order = Mutex::new(Vec::new());
        execute(&g, 4, |t| order.lock().unwrap().push(t));
        let order = order.into_inner().unwrap();
        assert_eq!(order, (0..n).collect::<Vec<_>>());
    }

    /// Every task runs exactly once, even with wide fan-out.
    #[test]
    fn fanout_runs_each_task_once() {
        let width = 500;
        let mut g = TaskGraph::new();
        let root = g.add_task(spec(0));
        let sink = g.add_task(spec(2));
        for _ in 0..width {
            let mid = g.add_task(spec(1));
            g.add_edge(root, mid, DataRef { i: 0, j: 0 }, 0);
            g.add_edge(mid, sink, DataRef { i: 0, j: 0 }, 0);
        }
        let counts: Vec<AtomicUsize> = (0..g.len()).map(|_| AtomicUsize::new(0)).collect();
        execute(&g, 8, |t| {
            counts[t].fetch_add(1, Ordering::Relaxed);
        });
        for (t, c) in counts.iter().enumerate() {
            assert_eq!(c.load(Ordering::Relaxed), 1, "task {t} ran wrong number of times");
        }
    }

    /// Dependencies are respected: a parent's effect is visible to children.
    #[test]
    fn dependency_happens_before() {
        // Layered graph: each layer sums the previous layer's value + 1.
        let layers = 50;
        let width = 8;
        let mut g = TaskGraph::new();
        let mut prev: Vec<TaskId> = (0..width).map(|_| g.add_task(spec(0))).collect();
        for l in 1..layers {
            let cur: Vec<TaskId> = (0..width).map(|_| g.add_task(spec(l))).collect();
            for &p in &prev {
                for &c in &cur {
                    g.add_edge(p, c, DataRef { i: 0, j: 0 }, 0);
                }
            }
            prev = cur;
        }
        let level = AtomicU64::new(0);
        let violations = AtomicUsize::new(0);
        // Record the maximum "wave" seen; a child running before any parent
        // would observe a lower wave than required.
        let task_layer: Vec<usize> = (0..g.len()).map(|t| g.spec(t).priority).collect();
        execute(&g, 8, |t| {
            let seen = level.load(Ordering::SeqCst);
            if (task_layer[t] as u64) < seen.saturating_sub(1) {
                violations.fetch_add(1, Ordering::SeqCst);
            }
            level.fetch_max(task_layer[t] as u64, Ordering::SeqCst);
        });
        assert_eq!(violations.load(Ordering::SeqCst), 0);
    }

    #[test]
    fn empty_graph_ok() {
        let g = TaskGraph::new();
        execute(&g, 4, |_| panic!("no tasks"));
    }

    #[test]
    fn single_thread_ok() {
        let mut g = TaskGraph::new();
        let a = g.add_task(spec(0));
        let b = g.add_task(spec(1));
        g.add_edge(a, b, DataRef { i: 0, j: 0 }, 0);
        let order = Mutex::new(Vec::new());
        execute(&g, 1, |t| order.lock().unwrap().push(t));
        assert_eq!(order.into_inner().unwrap(), vec![a, b]);
    }

    /// A panicking kernel must not hang the pool: the run drains, every
    /// task is retired, and the first panic is reported.
    #[test]
    fn panic_cancels_and_drains() {
        let n = 64;
        let mut g = TaskGraph::new();
        for i in 0..n {
            g.add_task(spec(i));
        }
        for i in 0..n - 1 {
            g.add_edge(i, i + 1, DataRef { i: 0, j: 0 }, 0);
        }
        let ran = AtomicUsize::new(0);
        let cancel = std::sync::atomic::AtomicBool::new(false);
        let err = execute_cancellable(&g, 4, &cancel, |t| {
            ran.fetch_add(1, Ordering::SeqCst);
            if t == 5 {
                panic!("kernel exploded on task {t}");
            }
        })
        .unwrap_err();
        assert_eq!(err.task, 5);
        assert!(err.message.contains("exploded"), "{}", err.message);
        assert!(cancel.load(Ordering::SeqCst));
        // Tasks after the panic drained without running their kernels.
        assert_eq!(ran.load(Ordering::SeqCst), 6);
    }

    /// Caller-side cancellation stops kernels but still terminates Ok.
    #[test]
    fn caller_cancel_skips_remaining_kernels() {
        let n = 64;
        let mut g = TaskGraph::new();
        for i in 0..n {
            g.add_task(spec(i));
        }
        for i in 0..n - 1 {
            g.add_edge(i, i + 1, DataRef { i: 0, j: 0 }, 0);
        }
        let ran = AtomicUsize::new(0);
        let cancel = std::sync::atomic::AtomicBool::new(false);
        execute_cancellable(&g, 4, &cancel, |t| {
            ran.fetch_add(1, Ordering::SeqCst);
            if t == 9 {
                cancel.store(true, Ordering::SeqCst);
            }
        })
        .unwrap();
        assert_eq!(ran.load(Ordering::SeqCst), 10);
    }

    #[test]
    #[should_panic(expected = "kernel exploded")]
    fn execute_propagates_kernel_panic_after_draining() {
        let mut g = TaskGraph::new();
        let a = g.add_task(spec(0));
        let b = g.add_task(spec(1));
        g.add_edge(a, b, DataRef { i: 0, j: 0 }, 0);
        execute(&g, 2, |_| panic!("kernel exploded"));
    }

    /// Observed execution: with the `obs` feature on, every task gets a
    /// span with sane timestamps; with it off, the hooks are no-ops and
    /// the report is empty — either way the run itself is unaffected.
    #[test]
    fn observed_execution_captures_spans() {
        let n = 32;
        let mut g = TaskGraph::new();
        for i in 0..n {
            g.add_task(spec(i));
        }
        for i in 0..n - 1 {
            g.add_edge(i, i + 1, DataRef { i: 0, j: 0 }, 0);
        }
        let obs = ExecObs::new(g.len(), 2);
        let cancel = AtomicBool::new(false);
        let ran = AtomicUsize::new(0);
        execute_cancellable_observed(&g, 2, &cancel, Some(&obs), |_wid, _t| {
            ran.fetch_add(1, Ordering::Relaxed);
        })
        .unwrap();
        assert_eq!(ran.load(Ordering::Relaxed), n);
        let rep = obs.finish(&g);
        if ExecObs::enabled() {
            assert_eq!(rep.trace.records.len(), n);
            for r in &rep.trace.records {
                assert!(r.queued <= r.start + 1e-12);
                assert!(r.start <= r.end);
                assert!(r.proc < 2);
            }
            // Records come back sorted by end time.
            for w in rep.trace.records.windows(2) {
                assert!(w[0].end <= w[1].end);
            }
            assert_eq!(rep.steals.len(), 2);
        } else {
            assert!(rep.trace.records.is_empty());
            assert!(rep.steals.is_empty());
        }
    }

    #[test]
    #[should_panic(expected = "cycle")]
    fn cycle_panics() {
        let mut g = TaskGraph::new();
        let a = g.add_task(spec(0));
        let b = g.add_task(spec(0));
        g.add_edge(a, b, DataRef { i: 0, j: 0 }, 0);
        g.add_edge(b, a, DataRef { i: 0, j: 0 }, 0);
        execute(&g, 2, |_| {});
    }
}

//! Always-available metrics registry: typed counters, f64 gauges, and
//! log-bucketed (HDR-style) histograms, sharded per worker/rank so the
//! hot path never contends on a cache line and never allocates.
//!
//! Unlike the `obs` feature (per-task span capture, compiled out by
//! default), the registry is part of the default build: recording a
//! sample is a handful of relaxed atomic adds on a pre-allocated shard,
//! cheap enough to leave on in production. The `metrics` cargo feature
//! (on by default) gates the storage; with `--no-default-features`
//! every recording method compiles to a no-op and [`Registry::snapshot`]
//! returns an empty [`RegistrySnapshot`], so the type-level wiring
//! (engine configs, session plumbing) costs nothing.
//!
//! Aggregation happens once, at report time: [`Registry::snapshot`]
//! merges all shards into a [`RegistrySnapshot`] — plain owned data that
//! serializes to the hand-rolled [`Json`] and to Prometheus text
//! exposition format, and feeds `RunMetrics` and the drift report.

use crate::graph::TaskClass;
use crate::obs::json::Json;
use crate::trace::ClassBreakdown;
use std::fmt;

/// Number of task classes tracked per-class state (`Potrf`, `Trsm`,
/// `Syrk`, `Gemm`, `Other`).
pub const NCLASSES: usize = 5;

/// Slot of a task class in per-class arrays (matches the scheduler's
/// EMA-correction layout: Potrf=0, Trsm=1, Syrk=2, Gemm=3, Other=4).
pub fn class_slot(class: TaskClass) -> usize {
    match class {
        TaskClass::Potrf => 0,
        TaskClass::Trsm => 1,
        TaskClass::Syrk => 2,
        TaskClass::Gemm => 3,
        TaskClass::Other => 4,
    }
}

/// Human name of a per-class slot (inverse of [`class_slot`]).
pub fn class_name(slot: usize) -> &'static str {
    ["potrf", "trsm", "syrk", "gemm", "other"][slot.min(NCLASSES - 1)]
}

/// Typed monotonic counters. Each variant is one atomic per shard.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum Counter {
    /// Tasks whose kernel ran to completion (either engine).
    TasksExecuted,
    /// Tasks pushed onto a ready queue (work-stealing engine).
    TasksEnqueued,
    /// Successful steals from another worker's deque.
    Steals,
    /// Injected kernel failures that fired (fault layer).
    KernelFailures,
    /// Payload bytes moved across process boundaries.
    CommBytes,
    /// Cross-process messages (payload + activation + retransmits).
    CommMessages,
    /// Timeout- or crash-driven retransmissions.
    Retransmissions,
    /// Send attempts the (simulated) network dropped.
    MessagesDropped,
    /// Deliveries ignored by receiver-side dedup.
    DuplicatesIgnored,
    /// Rank crashes that fired.
    Crashes,
    /// Tasks moved to a surviving rank by crash recovery.
    TasksMigrated,
    /// Already-completed tasks re-executed after a crash.
    TasksReexecuted,
    /// Corruptions caught by integrity verification.
    CorruptionsDetected,
    /// Corrupted data restored and recomputed from lineage.
    CorruptionsHealed,
    /// Negative acknowledgements sent for corrupted deliveries.
    NacksSent,
    /// Workspace arena growth events (an acquisition had to allocate).
    WorkspaceGrowth,
    /// Symbolic-plan cache lookups that found a reusable plan.
    PlanCacheHits,
    /// Symbolic-plan cache lookups that had to plan from scratch.
    PlanCacheMisses,
    /// Cached symbolic plans evicted by the LRU policy.
    PlanCacheEvictions,
    /// Solve-service requests admitted past admission control.
    ServiceRequestsAdmitted,
    /// Solve-service requests rejected by admission control (in-flight
    /// cap or memory budget).
    ServiceRequestsRejected,
}

/// Number of [`Counter`] variants.
pub const NCOUNTERS: usize = 21;

impl Counter {
    /// All counters, in declaration (= storage) order.
    pub const ALL: [Counter; NCOUNTERS] = [
        Counter::TasksExecuted,
        Counter::TasksEnqueued,
        Counter::Steals,
        Counter::KernelFailures,
        Counter::CommBytes,
        Counter::CommMessages,
        Counter::Retransmissions,
        Counter::MessagesDropped,
        Counter::DuplicatesIgnored,
        Counter::Crashes,
        Counter::TasksMigrated,
        Counter::TasksReexecuted,
        Counter::CorruptionsDetected,
        Counter::CorruptionsHealed,
        Counter::NacksSent,
        Counter::WorkspaceGrowth,
        Counter::PlanCacheHits,
        Counter::PlanCacheMisses,
        Counter::PlanCacheEvictions,
        Counter::ServiceRequestsAdmitted,
        Counter::ServiceRequestsRejected,
    ];

    /// Stable snake_case name (JSON key / Prometheus metric stem).
    pub fn name(self) -> &'static str {
        match self {
            Counter::TasksExecuted => "tasks_executed",
            Counter::TasksEnqueued => "tasks_enqueued",
            Counter::Steals => "steals",
            Counter::KernelFailures => "kernel_failures",
            Counter::CommBytes => "comm_bytes",
            Counter::CommMessages => "comm_messages",
            Counter::Retransmissions => "retransmissions",
            Counter::MessagesDropped => "messages_dropped",
            Counter::DuplicatesIgnored => "duplicates_ignored",
            Counter::Crashes => "crashes",
            Counter::TasksMigrated => "tasks_migrated",
            Counter::TasksReexecuted => "tasks_reexecuted",
            Counter::CorruptionsDetected => "corruptions_detected",
            Counter::CorruptionsHealed => "corruptions_healed",
            Counter::NacksSent => "nacks_sent",
            Counter::WorkspaceGrowth => "workspace_growth",
            Counter::PlanCacheHits => "plan_cache_hits",
            Counter::PlanCacheMisses => "plan_cache_misses",
            Counter::PlanCacheEvictions => "plan_cache_evictions",
            Counter::ServiceRequestsAdmitted => "service_requests_admitted",
            Counter::ServiceRequestsRejected => "service_requests_rejected",
        }
    }
}

/// Typed f64 gauges (stored as bit patterns in one atomic per shard;
/// shards merge by `max`, which is exact for high-water marks and for
/// values written from a single shard).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum Gauge {
    /// Largest bytes retained by any one worker's kernel workspace.
    ArenaHighWaterBytes,
    /// Scheduler EMA correction for POTRF (measured/modeled).
    CorrPotrf,
    /// Scheduler EMA correction for TRSM.
    CorrTrsm,
    /// Scheduler EMA correction for SYRK.
    CorrSyrk,
    /// Scheduler EMA correction for GEMM.
    CorrGemm,
    /// Scheduler EMA correction for untyped tasks.
    CorrOther,
}

/// Number of [`Gauge`] variants.
pub const NGAUGES: usize = 6;

impl Gauge {
    /// All gauges, in declaration (= storage) order.
    pub const ALL: [Gauge; NGAUGES] = [
        Gauge::ArenaHighWaterBytes,
        Gauge::CorrPotrf,
        Gauge::CorrTrsm,
        Gauge::CorrSyrk,
        Gauge::CorrGemm,
        Gauge::CorrOther,
    ];

    /// Stable snake_case name.
    pub fn name(self) -> &'static str {
        match self {
            Gauge::ArenaHighWaterBytes => "arena_high_water_bytes",
            Gauge::CorrPotrf => "sched_correction_potrf",
            Gauge::CorrTrsm => "sched_correction_trsm",
            Gauge::CorrSyrk => "sched_correction_syrk",
            Gauge::CorrGemm => "sched_correction_gemm",
            Gauge::CorrOther => "sched_correction_other",
        }
    }

    /// The EMA-correction gauge for per-class slot `k` ([`class_slot`]).
    pub fn correction(k: usize) -> Gauge {
        [Gauge::CorrPotrf, Gauge::CorrTrsm, Gauge::CorrSyrk, Gauge::CorrGemm, Gauge::CorrOther]
            [k.min(NCLASSES - 1)]
    }
}

/// Merged view of one log-bucketed histogram: `count`/`sum` plus the
/// non-empty power-of-two buckets as `(inclusive upper bound, count)`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HistSummary {
    /// Samples recorded.
    pub count: u64,
    /// Sum of raw sample values (saturating).
    pub sum: u64,
    /// Non-empty buckets, ascending: value `v` lands in the bucket whose
    /// bound is the smallest `2^k - 1 >= v` (bound 0 holds exact zeros).
    pub buckets: Vec<(u64, u64)>,
}

impl HistSummary {
    /// Mean raw value (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 { 0.0 } else { self.sum as f64 / self.count as f64 }
    }

    /// Upper bound of the bucket containing the `q`-quantile sample
    /// (`q` in `[0, 1]`; 0 when empty). Log-bucketed, so the answer is
    /// exact to within a factor of 2 — plenty for drift and capacity
    /// questions.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = (q.clamp(0.0, 1.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for &(bound, n) in &self.buckets {
            seen += n;
            if seen >= target {
                return bound;
            }
        }
        self.buckets.last().map_or(0, |&(bound, _)| bound)
    }

    /// JSON object: `{"count": .., "sum": .., "buckets": [[bound, n]..]}`.
    pub fn to_json(&self) -> Json {
        let buckets = self
            .buckets
            .iter()
            .map(|&(bound, n)| Json::Arr(vec![Json::Num(bound as f64), Json::Num(n as f64)]))
            .collect();
        let mut obj = Json::obj();
        obj.insert("count", Json::Num(self.count as f64));
        obj.insert("sum", Json::Num(self.sum as f64));
        obj.insert("buckets", Json::Arr(buckets));
        obj
    }
}

/// Merged, owned view of a [`Registry`] at one instant. Plain data:
/// cheap to clone, compare, serialize, and attach to `RunMetrics`.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RegistrySnapshot {
    /// Shards that were merged (worker/rank count; 0 for the empty
    /// snapshot of a metrics-off build).
    pub shards: usize,
    /// Every counter, in [`Counter::ALL`] order (zeros included, so the
    /// schema is stable across runs).
    pub counters: Vec<(&'static str, u64)>,
    /// Every gauge, in [`Gauge::ALL`] order (max across shards).
    pub gauges: Vec<(&'static str, f64)>,
    /// Task-duration histograms per class, nanosecond raw values.
    pub class_duration_ns: Vec<HistSummary>,
    /// Recompression output-rank histogram (raw value = kept rank).
    pub recompression_ranks: HistSummary,
}

impl RegistrySnapshot {
    /// Merged value of one counter (0 if the snapshot is empty).
    pub fn counter(&self, c: Counter) -> u64 {
        self.counters.get(c as usize).map_or(0, |&(_, v)| v)
    }

    /// Merged value of one gauge (0 if the snapshot is empty).
    pub fn gauge(&self, g: Gauge) -> f64 {
        self.gauges.get(g as usize).map_or(0.0, |&(_, v)| v)
    }

    /// True when nothing was recorded (or metrics are compiled out).
    pub fn is_empty(&self) -> bool {
        self.counters.iter().all(|&(_, v)| v == 0)
            && self.class_duration_ns.iter().all(|h| h.count == 0)
    }

    /// Measured busy seconds per class, from the duration histograms.
    pub fn class_busy_seconds(&self) -> ClassBreakdown {
        let s = |k: usize| self.class_duration_ns.get(k).map_or(0.0, |h| h.sum as f64 * 1e-9);
        ClassBreakdown { potrf: s(0), trsm: s(1), syrk: s(2), gemm: s(3), other: s(4) }
    }

    /// Tasks recorded for one class.
    pub fn class_count(&self, class: TaskClass) -> u64 {
        self.class_duration_ns.get(class_slot(class)).map_or(0, |h| h.count)
    }

    /// Measured busy seconds for one class.
    pub fn class_seconds(&self, class: TaskClass) -> f64 {
        self.class_duration_ns.get(class_slot(class)).map_or(0.0, |h| h.sum as f64 * 1e-9)
    }

    /// The scheduler's EMA correction factors per class slot (1.0 when
    /// the lookahead scheduler did not run — the identity correction).
    pub fn corrections(&self) -> [f64; NCLASSES] {
        let mut out = [1.0; NCLASSES];
        for (k, slot) in out.iter_mut().enumerate() {
            let v = self.gauge(Gauge::correction(k));
            if v > 0.0 && v.is_finite() {
                *slot = v;
            }
        }
        out
    }

    /// JSON object with counters, gauges, and histograms.
    pub fn to_json(&self) -> Json {
        let mut counters = Json::obj();
        for &(name, v) in &self.counters {
            counters.insert(name, Json::Num(v as f64));
        }
        let mut gauges = Json::obj();
        for &(name, v) in &self.gauges {
            gauges.insert(name, Json::Num(v));
        }
        let mut hists = Json::obj();
        for (k, h) in self.class_duration_ns.iter().enumerate() {
            hists.insert(class_name(k), h.to_json());
        }
        let mut obj = Json::obj();
        obj.insert("shards", Json::Num(self.shards as f64));
        obj.insert("counters", counters);
        obj.insert("gauges", gauges);
        obj.insert("task_duration_ns", hists);
        obj.insert("recompression_ranks", self.recompression_ranks.to_json());
        obj
    }

    /// Append Prometheus text-exposition lines (`# TYPE`-annotated
    /// counters, gauges, and cumulative-bucket histograms) to `out`.
    /// Durations are exported in seconds, per convention.
    pub fn write_prometheus(&self, out: &mut String) {
        use std::fmt::Write;
        for &(name, v) in &self.counters {
            let _ = writeln!(out, "# TYPE tlr_{name}_total counter");
            let _ = writeln!(out, "tlr_{name}_total {v}");
        }
        for &(name, v) in &self.gauges {
            let _ = writeln!(out, "# TYPE tlr_{name} gauge");
            let _ = writeln!(out, "tlr_{name} {v}");
        }
        let _ = writeln!(out, "# TYPE tlr_task_duration_seconds histogram");
        for (k, h) in self.class_duration_ns.iter().enumerate() {
            let class = class_name(k);
            let mut cum = 0u64;
            for &(bound, n) in &h.buckets {
                cum += n;
                let le = bound as f64 * 1e-9;
                let _ = writeln!(
                    out,
                    "tlr_task_duration_seconds_bucket{{class=\"{class}\",le=\"{le}\"}} {cum}"
                );
            }
            let _ = writeln!(
                out,
                "tlr_task_duration_seconds_bucket{{class=\"{class}\",le=\"+Inf\"}} {}",
                h.count
            );
            let _ = writeln!(
                out,
                "tlr_task_duration_seconds_sum{{class=\"{class}\"}} {}",
                h.sum as f64 * 1e-9
            );
            let _ =
                writeln!(out, "tlr_task_duration_seconds_count{{class=\"{class}\"}} {}", h.count);
        }
        let _ = writeln!(out, "# TYPE tlr_recompression_rank histogram");
        let h = &self.recompression_ranks;
        let mut cum = 0u64;
        for &(bound, n) in &h.buckets {
            cum += n;
            let _ = writeln!(out, "tlr_recompression_rank_bucket{{le=\"{bound}\"}} {cum}");
        }
        let _ = writeln!(out, "tlr_recompression_rank_bucket{{le=\"+Inf\"}} {}", h.count);
        let _ = writeln!(out, "tlr_recompression_rank_sum {}", h.sum);
        let _ = writeln!(out, "tlr_recompression_rank_count {}", h.count);
    }
}

/// Index of the log2 bucket holding `v`: 0 for 0, else `64 - lz(v)`
/// (bucket `b` spans `[2^(b-1), 2^b - 1]`).
#[cfg(feature = "metrics")]
fn bucket_of(v: u64) -> usize {
    (u64::BITS - v.leading_zeros()) as usize
}

/// Inclusive upper bound of bucket `b` (`2^b - 1`; bucket 0 holds 0).
#[cfg(feature = "metrics")]
fn bucket_bound(b: usize) -> u64 {
    if b == 0 { 0 } else if b >= 64 { u64::MAX } else { (1u64 << b) - 1 }
}

#[cfg(feature = "metrics")]
mod storage {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering::Relaxed};

    const NBUCKETS: usize = 65;

    /// One log2-bucketed histogram over atomics.
    pub(super) struct LogHist {
        buckets: [AtomicU64; NBUCKETS],
        count: AtomicU64,
        sum: AtomicU64,
    }

    impl Default for LogHist {
        fn default() -> Self {
            LogHist {
                buckets: std::array::from_fn(|_| AtomicU64::new(0)),
                count: AtomicU64::new(0),
                sum: AtomicU64::new(0),
            }
        }
    }

    impl LogHist {
        #[inline]
        pub(super) fn record(&self, v: u64) {
            self.buckets[bucket_of(v)].fetch_add(1, Relaxed);
            self.count.fetch_add(1, Relaxed);
            self.sum.fetch_add(v, Relaxed);
        }

        pub(super) fn merge_into(&self, dst: &mut HistSummary) {
            dst.count += self.count.load(Relaxed);
            dst.sum = dst.sum.saturating_add(self.sum.load(Relaxed));
            for (b, bucket) in self.buckets.iter().enumerate() {
                let n = bucket.load(Relaxed);
                if n == 0 {
                    continue;
                }
                let bound = bucket_bound(b);
                match dst.buckets.binary_search_by_key(&bound, |&(bd, _)| bd) {
                    Ok(i) => dst.buckets[i].1 += n,
                    Err(i) => dst.buckets.insert(i, (bound, n)),
                }
            }
        }
    }

    /// One worker/rank's private slice of the registry. Cache-line
    /// aligned so neighbouring shards never false-share.
    #[derive(Default)]
    #[repr(align(64))]
    pub(super) struct Shard {
        pub(super) counters: [AtomicU64; NCOUNTERS],
        /// f64 bit patterns; merged by `max` over the decoded values.
        pub(super) gauges: [AtomicU64; NGAUGES],
        pub(super) class_ns: [LogHist; NCLASSES],
        pub(super) ranks: LogHist,
    }

    impl Shard {
        #[inline]
        pub(super) fn gauge_max(&self, g: Gauge, v: f64) {
            if !v.is_finite() {
                return;
            }
            let cell = &self.gauges[g as usize];
            let mut cur = cell.load(Relaxed);
            loop {
                if f64::from_bits(cur) >= v {
                    return;
                }
                match cell.compare_exchange_weak(cur, v.to_bits(), Relaxed, Relaxed) {
                    Ok(_) => return,
                    Err(seen) => cur = seen,
                }
            }
        }
    }
}

/// Sharded metrics sink. One shard per worker (shared-memory engine) or
/// rank (DES); every recording method takes the caller's shard index
/// (reduced modulo the shard count) and touches only relaxed atomics in
/// pre-allocated storage — zero allocations after [`Registry::new`].
///
/// With the `metrics` feature off (non-default), the registry holds no
/// storage and every method is a no-op that the optimizer deletes.
pub struct Registry {
    #[cfg(feature = "metrics")]
    shards: Box<[storage::Shard]>,
    #[cfg(not(feature = "metrics"))]
    nshards: usize,
}

impl fmt::Debug for Registry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Registry")
            .field("shards", &self.shards())
            .field("compiled", &Self::compiled())
            .finish()
    }
}

impl Registry {
    /// A registry with `max(1, nshards)` shards.
    pub fn new(nshards: usize) -> Self {
        let n = nshards.max(1);
        #[cfg(feature = "metrics")]
        {
            Registry { shards: (0..n).map(|_| storage::Shard::default()).collect() }
        }
        #[cfg(not(feature = "metrics"))]
        {
            Registry { nshards: n }
        }
    }

    /// Whether metric storage is compiled in (`metrics` feature).
    pub const fn compiled() -> bool {
        cfg!(feature = "metrics")
    }

    /// Shard count.
    pub fn shards(&self) -> usize {
        #[cfg(feature = "metrics")]
        {
            self.shards.len()
        }
        #[cfg(not(feature = "metrics"))]
        {
            self.nshards
        }
    }

    #[cfg(feature = "metrics")]
    #[inline]
    fn shard(&self, i: usize) -> &storage::Shard {
        &self.shards[i % self.shards.len()]
    }

    /// Add `delta` to a counter on `shard`.
    #[inline]
    pub fn add(&self, shard: usize, c: Counter, delta: u64) {
        #[cfg(feature = "metrics")]
        {
            use std::sync::atomic::Ordering::Relaxed;
            self.shard(shard).counters[c as usize].fetch_add(delta, Relaxed);
        }
        #[cfg(not(feature = "metrics"))]
        {
            let _ = (shard, c, delta);
        }
    }

    /// Increment a counter on `shard` by one.
    #[inline]
    pub fn incr(&self, shard: usize, c: Counter) {
        self.add(shard, c, 1);
    }

    /// Raise a gauge on `shard` to at least `v` (high-water semantics).
    #[inline]
    pub fn gauge_max(&self, shard: usize, g: Gauge, v: f64) {
        #[cfg(feature = "metrics")]
        {
            self.shard(shard).gauge_max(g, v);
        }
        #[cfg(not(feature = "metrics"))]
        {
            let _ = (shard, g, v);
        }
    }

    /// Record one task duration (nanoseconds) for `class` on `shard`.
    #[inline]
    pub fn record_class_ns(&self, shard: usize, class: TaskClass, ns: u64) {
        #[cfg(feature = "metrics")]
        {
            self.shard(shard).class_ns[class_slot(class)].record(ns);
        }
        #[cfg(not(feature = "metrics"))]
        {
            let _ = (shard, class, ns);
        }
    }

    /// Record one task duration (seconds; non-finite and negative clamp
    /// to 0) for `class` on `shard`.
    #[inline]
    pub fn record_class_seconds(&self, shard: usize, class: TaskClass, secs: f64) {
        let ns = if secs.is_finite() && secs > 0.0 { (secs * 1e9) as u64 } else { 0 };
        self.record_class_ns(shard, class, ns);
    }

    /// Record one recompression output rank on `shard`.
    #[inline]
    pub fn record_rank(&self, shard: usize, rank: usize) {
        #[cfg(feature = "metrics")]
        {
            self.shard(shard).ranks.record(rank as u64);
        }
        #[cfg(not(feature = "metrics"))]
        {
            let _ = (shard, rank);
        }
    }

    /// Bulk-record `count` recompressions that all kept `rank` columns
    /// (merging a pre-binned histogram such as `RankEvolution`'s).
    pub fn record_rank_counts(&self, shard: usize, rank: usize, count: u64) {
        for _ in 0..count.min(1 << 20) {
            self.record_rank(shard, rank);
        }
    }

    /// Merge all shards into an owned snapshot (report time only — this
    /// allocates).
    pub fn snapshot(&self) -> RegistrySnapshot {
        #[cfg_attr(not(feature = "metrics"), allow(unused_mut))]
        let mut snap = RegistrySnapshot {
            shards: self.shards(),
            counters: Counter::ALL.iter().map(|c| (c.name(), 0u64)).collect(),
            gauges: Gauge::ALL.iter().map(|g| (g.name(), 0.0f64)).collect(),
            class_duration_ns: vec![HistSummary::default(); NCLASSES],
            recompression_ranks: HistSummary::default(),
        };
        #[cfg(feature = "metrics")]
        {
            use std::sync::atomic::Ordering::Relaxed;
            for shard in self.shards.iter() {
                for (slot, cell) in snap.counters.iter_mut().zip(shard.counters.iter()) {
                    slot.1 += cell.load(Relaxed);
                }
                for (slot, cell) in snap.gauges.iter_mut().zip(shard.gauges.iter()) {
                    let v = f64::from_bits(cell.load(Relaxed));
                    if v > slot.1 {
                        slot.1 = v;
                    }
                }
                for (dst, src) in snap.class_duration_ns.iter_mut().zip(shard.class_ns.iter()) {
                    src.merge_into(dst);
                }
                shard.ranks.merge_into(&mut snap.recompression_ranks);
            }
        }
        snap
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_registry_snapshot_is_empty_and_stable() {
        let reg = Registry::new(4);
        let snap = reg.snapshot();
        assert!(snap.is_empty());
        assert_eq!(snap.counters.len(), NCOUNTERS);
        assert_eq!(snap.gauges.len(), NGAUGES);
        assert_eq!(snap.class_duration_ns.len(), NCLASSES);
        assert_eq!(snap.counter(Counter::Steals), 0);
        assert_eq!(snap.corrections(), [1.0; NCLASSES]);
        // The JSON and Prometheus exports of an empty snapshot parse/render.
        let j = snap.to_json().to_string();
        assert!(Json::parse(&j).is_ok(), "{j}");
        let mut prom = String::new();
        snap.write_prometheus(&mut prom);
        assert!(prom.contains("tlr_tasks_executed_total 0"));
    }

    #[cfg(feature = "metrics")]
    #[test]
    fn counters_and_histograms_merge_across_shards() {
        let reg = Registry::new(3);
        for shard in 0..7 {
            // Indices past the shard count wrap instead of panicking.
            reg.incr(shard, Counter::TasksExecuted);
            reg.add(shard, Counter::CommBytes, 100);
            reg.record_class_ns(shard, TaskClass::Gemm, 1_000 + shard as u64);
        }
        reg.record_class_seconds(0, TaskClass::Potrf, 1.5e-3);
        reg.record_class_seconds(0, TaskClass::Potrf, f64::NAN); // clamps to 0
        reg.record_rank(1, 24);
        reg.record_rank_counts(2, 8, 3);
        reg.gauge_max(0, Gauge::ArenaHighWaterBytes, 4096.0);
        reg.gauge_max(1, Gauge::ArenaHighWaterBytes, 1024.0); // below max, kept
        let snap = reg.snapshot();
        assert!(!snap.is_empty());
        assert_eq!(snap.counter(Counter::TasksExecuted), 7);
        assert_eq!(snap.counter(Counter::CommBytes), 700);
        assert_eq!(snap.class_count(TaskClass::Gemm), 7);
        assert_eq!(snap.class_count(TaskClass::Potrf), 2);
        let potrf_s = snap.class_seconds(TaskClass::Potrf);
        assert!((potrf_s - 1.5e-3).abs() < 1e-9, "{potrf_s}");
        assert_eq!(snap.recompression_ranks.count, 4);
        assert_eq!(snap.recompression_ranks.sum, 24 + 3 * 8);
        assert_eq!(snap.gauge(Gauge::ArenaHighWaterBytes), 4096.0);
        // Gemm durations are ~1000ns: the median lands in the [512, 1023]
        // log2 bucket, whose inclusive bound the quantile reports.
        let q = snap.class_duration_ns[3].quantile(0.5);
        assert_eq!(q, 1023, "{q}");
        let b = snap.class_busy_seconds();
        assert!(b.gemm > 0.0 && b.total() > 0.0);
    }

    #[cfg(feature = "metrics")]
    #[test]
    fn bucket_bounds_cover_u64() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(u64::MAX), 64);
        assert_eq!(bucket_bound(0), 0);
        assert_eq!(bucket_bound(1), 1);
        assert_eq!(bucket_bound(2), 3);
        assert_eq!(bucket_bound(64), u64::MAX);
        // Every value lands in a bucket whose bound is >= the value.
        for v in [0u64, 1, 7, 1000, 1 << 40, u64::MAX] {
            assert!(bucket_bound(bucket_of(v)) >= v, "{v}");
        }
    }

    #[cfg(not(feature = "metrics"))]
    #[test]
    fn metrics_off_build_records_nothing() {
        let reg = Registry::new(4);
        reg.incr(0, Counter::TasksExecuted);
        reg.record_class_seconds(0, TaskClass::Gemm, 1.0);
        reg.record_rank(0, 12);
        reg.gauge_max(0, Gauge::ArenaHighWaterBytes, 1.0);
        assert!(!Registry::compiled());
        assert!(reg.snapshot().is_empty());
        assert_eq!(reg.shards(), 4);
    }

    #[test]
    fn prometheus_histogram_buckets_are_cumulative() {
        let reg = Registry::new(1);
        reg.record_class_ns(0, TaskClass::Gemm, 10);
        reg.record_class_ns(0, TaskClass::Gemm, 1000);
        reg.record_class_ns(0, TaskClass::Gemm, 1_000_000);
        let mut prom = String::new();
        reg.snapshot().write_prometheus(&mut prom);
        if Registry::compiled() {
            assert!(prom.contains("tlr_task_duration_seconds_bucket{class=\"gemm\",le=\"+Inf\"} 3"));
            assert!(prom.contains("tlr_task_duration_seconds_count{class=\"gemm\"} 3"));
        } else {
            assert!(prom.contains("tlr_task_duration_seconds_count{class=\"gemm\"} 0"));
        }
    }
}

//! Execution traces and per-class time breakdowns.
//!
//! Both the shared-memory executor (wall-clock) and the discrete-event
//! simulator (virtual clock) emit a [`Trace`]; the reporting code behind
//! Fig. 11 (time breakdown) and Fig. 13 (efficiency vs. the critical-path
//! bound) consumes it. The [`crate::obs`] module exports a `Trace` to
//! Chrome-trace JSON and computes derived run metrics.

use crate::graph::{DataRef, TaskClass, TaskId};
use serde::{Deserialize, Serialize};

/// One executed task.
///
/// `queued ≤ start ≤ end` in a well-formed record; consumers clamp rather
/// than trust it, because crash re-execution can retire a second copy of a
/// task with timestamps that overlap (or, with skewed per-worker clocks,
/// precede) the first.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct TaskRecord {
    /// Task id in the graph this trace came from (0 when unknown).
    pub task: TaskId,
    /// Kernel class.
    pub class: TaskClass,
    /// Executing process / worker (0 for shared-memory runs).
    pub proc: usize,
    /// Tile the task writes, when known (`None` for bookkeeping tasks).
    pub data: Option<DataRef>,
    /// Time the task became ready (enqueue), seconds. Equal to `start`
    /// when the producer did not track readiness.
    pub queued: f64,
    /// Start time, seconds (virtual or wall).
    pub start: f64,
    /// End time, seconds.
    pub end: f64,
}

impl TaskRecord {
    /// Execution duration, clamped to be non-negative (crash re-execution
    /// or clock skew can produce `end < start`; such records count as
    /// zero-length rather than subtracting busy time).
    pub fn duration(&self) -> f64 {
        debug_assert!(
            self.start.is_finite() && self.end.is_finite() && self.queued.is_finite(),
            "non-finite timestamps in task record"
        );
        (self.end - self.start).max(0.0)
    }

    /// Queue wait (ready → start), clamped to be non-negative.
    pub fn queue_wait(&self) -> f64 {
        (self.start - self.queued).max(0.0)
    }
}

/// A full execution trace.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Trace {
    /// Per-task records, in retirement order.
    pub records: Vec<TaskRecord>,
}

/// Aggregate busy time per kernel class.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct ClassBreakdown {
    /// Total POTRF seconds.
    pub potrf: f64,
    /// Total TRSM seconds.
    pub trsm: f64,
    /// Total SYRK seconds.
    pub syrk: f64,
    /// Total GEMM seconds.
    pub gemm: f64,
    /// Everything else.
    pub other: f64,
}

impl ClassBreakdown {
    /// Sum over all classes.
    pub fn total(&self) -> f64 {
        self.potrf + self.trsm + self.syrk + self.gemm + self.other
    }
}

impl Trace {
    /// Record one task execution with class/proc/times only (legacy shape;
    /// task id defaults to 0, `queued` to `start`, no tile coordinates).
    pub fn push(&mut self, class: TaskClass, proc: usize, start: f64, end: f64) {
        self.records.push(TaskRecord { task: 0, class, proc, data: None, queued: start, start, end });
    }

    /// Record one fully-described task execution.
    pub fn push_record(&mut self, rec: TaskRecord) {
        self.records.push(rec);
    }

    /// Makespan (max end time; 0 for an empty trace).
    pub fn makespan(&self) -> f64 {
        self.records.iter().fold(0.0, |m, r| m.max(r.end))
    }

    /// Total busy seconds per kernel class (durations clamped ≥ 0).
    pub fn breakdown(&self) -> ClassBreakdown {
        let mut b = ClassBreakdown::default();
        for r in &self.records {
            let d = r.duration();
            match r.class {
                TaskClass::Potrf => b.potrf += d,
                TaskClass::Trsm => b.trsm += d,
                TaskClass::Syrk => b.syrk += d,
                TaskClass::Gemm => b.gemm += d,
                TaskClass::Other => b.other += d,
            }
        }
        b
    }

    /// Busy seconds per process (index = proc id).
    pub fn busy_per_proc(&self, nprocs: usize) -> Vec<f64> {
        let mut busy = vec![0.0; nprocs];
        for r in &self.records {
            if r.proc < nprocs {
                busy[r.proc] += r.duration();
            }
        }
        busy
    }

    /// Idle fraction per process over the trace's makespan, each in
    /// `[0, 1]`. An empty trace reports every process fully idle.
    pub fn idle_fraction(&self, nprocs: usize) -> Vec<f64> {
        let span = self.makespan();
        if span <= 0.0 {
            return vec![1.0; nprocs];
        }
        self.busy_per_proc(nprocs)
            .into_iter()
            .map(|b| (1.0 - b / span).clamp(0.0, 1.0))
            .collect()
    }

    /// Total queue-wait seconds (ready → start) summed over all records.
    pub fn total_queue_wait(&self) -> f64 {
        self.records.iter().map(|r| r.queue_wait()).sum()
    }

    /// Render an ASCII Gantt chart: one row per process, time binned into
    /// `width` columns, each cell showing the kernel class that dominated
    /// the bin (`P`/`T`/`S`/`G`, `·` idle). The textual cousin of the
    /// PaRSEC trace visualizations the paper's analysis tooling (ref. 13 of the paper)
    /// produces.
    pub fn gantt(&self, nprocs: usize, width: usize) -> String {
        let makespan = self.makespan();
        if makespan <= 0.0 || width == 0 {
            return String::new();
        }
        // busy[proc][bin][class] = seconds
        let mut busy = vec![vec![[0.0_f64; 5]; width]; nprocs];
        let bin_w = makespan / width as f64;
        for r in &self.records {
            if r.proc >= nprocs || r.end <= r.start {
                continue;
            }
            let cls = match r.class {
                TaskClass::Potrf => 0,
                TaskClass::Trsm => 1,
                TaskClass::Syrk => 2,
                TaskClass::Gemm => 3,
                TaskClass::Other => 4,
            };
            let b0 = ((r.start / bin_w) as usize).min(width - 1);
            let b1 = ((r.end / bin_w) as usize).min(width - 1);
            for (b, bin) in busy[r.proc].iter_mut().enumerate().take(b1 + 1).skip(b0) {
                let lo = (b as f64) * bin_w;
                let hi = lo + bin_w;
                let overlap = (r.end.min(hi) - r.start.max(lo)).max(0.0);
                bin[cls] += overlap;
            }
        }
        let glyphs = ['P', 'T', 'S', 'G', 'O'];
        let mut out = String::new();
        for (p, row) in busy.iter().enumerate() {
            out.push_str(&format!("p{p:<3}|"));
            for bins in row {
                let total: f64 = bins.iter().sum();
                if total < 0.05 * bin_w {
                    out.push('·');
                } else {
                    let (idx, _) = bins
                        .iter()
                        .enumerate()
                        .max_by(|a, b| a.1.total_cmp(b.1))
                        .expect("one bin per task class");
                    out.push(glyphs[idx]);
                }
            }
            out.push_str("|\n");
        }
        out
    }

    /// Load imbalance factor `max busy / mean busy` (1.0 = perfect).
    pub fn load_imbalance(&self, nprocs: usize) -> f64 {
        let busy = self.busy_per_proc(nprocs);
        let max = busy.iter().cloned().fold(0.0_f64, f64::max);
        let mean = busy.iter().sum::<f64>() / nprocs.max(1) as f64;
        if mean > 0.0 {
            max / mean
        } else {
            1.0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn makespan_and_breakdown() {
        let mut t = Trace::default();
        t.push(TaskClass::Potrf, 0, 0.0, 1.0);
        t.push(TaskClass::Gemm, 1, 0.5, 3.0);
        t.push(TaskClass::Gemm, 0, 1.0, 2.0);
        assert_eq!(t.makespan(), 3.0);
        let b = t.breakdown();
        assert_eq!(b.potrf, 1.0);
        assert_eq!(b.gemm, 3.5);
        assert_eq!(b.total(), 4.5);
    }

    #[test]
    fn imbalance_detects_skew() {
        let mut t = Trace::default();
        t.push(TaskClass::Gemm, 0, 0.0, 10.0);
        t.push(TaskClass::Gemm, 1, 0.0, 2.0);
        let li = t.load_imbalance(2);
        assert!((li - 10.0 / 6.0).abs() < 1e-12);
        // Balanced case
        let mut t2 = Trace::default();
        t2.push(TaskClass::Gemm, 0, 0.0, 5.0);
        t2.push(TaskClass::Gemm, 1, 1.0, 6.0);
        assert!((t2.load_imbalance(2) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn gantt_renders_classes_and_idle() {
        let mut t = Trace::default();
        t.push(TaskClass::Potrf, 0, 0.0, 5.0);
        t.push(TaskClass::Gemm, 1, 5.0, 10.0);
        let g = t.gantt(2, 10);
        let lines: Vec<&str> = g.lines().collect();
        assert_eq!(lines.len(), 2);
        // proc 0 busy with POTRF in the first half, idle in the second
        assert!(lines[0].contains('P'));
        assert!(lines[0].contains('·'));
        // proc 1 idle first, GEMM second
        assert!(lines[1].contains('G'));
        assert!(lines[1].contains('·'));
        // row widths: prefix 'pN  |' + width + '|'
        assert_eq!(lines[0].len(), lines[1].len());
    }

    #[test]
    fn gantt_empty_trace_is_empty() {
        let t = Trace::default();
        assert!(t.gantt(4, 20).is_empty());
    }

    #[test]
    fn empty_trace() {
        let t = Trace::default();
        assert_eq!(t.makespan(), 0.0);
        assert_eq!(t.breakdown().total(), 0.0);
        assert_eq!(t.load_imbalance(4), 1.0);
        assert_eq!(t.idle_fraction(3), vec![1.0; 3]);
        assert_eq!(t.total_queue_wait(), 0.0);
    }

    #[test]
    fn reversed_span_clamps_to_zero() {
        // Crash re-execution can retire a record with end < start; it must
        // count as zero-length, not subtract busy time.
        let mut t = Trace::default();
        t.push(TaskClass::Gemm, 0, 2.0, 1.0);
        t.push(TaskClass::Gemm, 0, 0.0, 3.0);
        let b = t.breakdown();
        assert_eq!(b.gemm, 3.0);
        assert_eq!(t.busy_per_proc(1)[0], 3.0);
        assert_eq!(t.makespan(), 3.0);
        // Gantt ignores the degenerate record instead of binning garbage.
        assert!(!t.gantt(1, 8).is_empty());
    }

    #[test]
    fn idle_fraction_in_unit_interval() {
        let mut t = Trace::default();
        t.push(TaskClass::Potrf, 0, 0.0, 4.0);
        t.push(TaskClass::Gemm, 1, 0.0, 1.0);
        let idle = t.idle_fraction(3);
        assert_eq!(idle.len(), 3);
        assert!((idle[0] - 0.0).abs() < 1e-12);
        assert!((idle[1] - 0.75).abs() < 1e-12);
        assert!((idle[2] - 1.0).abs() < 1e-12);
        for f in idle {
            assert!((0.0..=1.0).contains(&f));
        }
    }

    #[test]
    fn queue_wait_tracks_ready_to_start() {
        let mut t = Trace::default();
        t.push_record(TaskRecord {
            task: 7,
            class: TaskClass::Trsm,
            proc: 0,
            data: Some(DataRef { i: 2, j: 1 }),
            queued: 1.0,
            start: 1.5,
            end: 2.5,
        });
        // Legacy push: queued == start, so no wait.
        t.push(TaskClass::Gemm, 0, 3.0, 4.0);
        assert!((t.total_queue_wait() - 0.5).abs() < 1e-12);
    }
}

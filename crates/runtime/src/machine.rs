//! Machine models of the two evaluation platforms.
//!
//! The paper evaluates on Shaheen II (Cray XC40, 2×16-core Intel Haswell @
//! 2.3 GHz, Cray Aries) and Fugaku (48-core Fujitsu A64FX @ 2.2 GHz,
//! Tofu-D). We cannot run on either machine, so the discrete-event
//! simulator consumes a first-order model of each: per-core peak,
//! per-kernel-shape efficiency, network latency/bandwidth, and the
//! task-management overheads of the runtime itself. The *shape* of every
//! result in §VIII is produced by the interplay of these quantities, not
//! by their absolute values (see DESIGN.md §2).

use serde::{Deserialize, Serialize};

/// First-order performance model of one cluster.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MachineModel {
    /// Human-readable platform name.
    pub name: String,
    /// Cores per node (one process per node, as in the paper's runs).
    pub cores_per_node: usize,
    /// Per-core double-precision peak in Gflop/s.
    pub peak_gflops_per_core: f64,
    /// Fraction of peak sustained by large dense kernels (POTRF/TRSM/GEMM
    /// on full `b × b` tiles).
    pub eff_dense: f64,
    /// Half-saturation rank of the skinny-kernel efficiency curve: a
    /// kernel whose inner dimension is `k` sustains
    /// `eff_dense · k / (k + k_half)` of peak. Small `k` ⇒ memory-bound
    /// (the "reduced arithmetic intensity" of §V); `k ≫ k_half` ⇒ dense
    /// rate. Architectures needing long vectors (A64FX/SVE) have a large
    /// `k_half`, which is why skinny TLR kernels hurt more on Fugaku.
    pub k_half: f64,
    /// Parallel efficiency of nested (intra-node multi-core) execution of
    /// critical-path kernels — the "nested parallelism" optimization the
    /// paper inherits from its IPDPS'21 predecessor. Critical-path
    /// kernels run at `cores · eff_dense · nested_efficiency` of a core's
    /// peak.
    pub nested_efficiency: f64,
    /// Network point-to-point latency in seconds.
    pub latency_s: f64,
    /// Network per-link bandwidth in bytes/second.
    pub bandwidth_bps: f64,
    /// Runtime cost of managing one task (creation, scheduling, retirement)
    /// — paid by *every* task fed to the runtime, including the no-op
    /// tasks on null tiles that DAG trimming removes.
    pub task_overhead_s: f64,
    /// Cost of one remote dependency activation (the control message that
    /// tells a successor its input is ready).
    pub dep_overhead_s: f64,
}

impl MachineModel {
    /// Shaheen II: Cray XC40, 2 × 16-core Haswell @ 2.3 GHz per node
    /// (16 DP flop/cycle/core → 36.8 Gflop/s peak), 128 GB DDR4, Aries
    /// interconnect (~1.5 µs, ~10 GB/s injection per node).
    pub fn shaheen_ii() -> Self {
        Self {
            name: "Shaheen II".to_string(),
            cores_per_node: 32,
            peak_gflops_per_core: 36.8,
            eff_dense: 0.80,
            k_half: 24.0,
            nested_efficiency: 0.7,
            latency_s: 1.5e-6,
            bandwidth_bps: 10.0e9,
            task_overhead_s: 20.0e-6,
            dep_overhead_s: 2.0e-6,
        }
    }

    /// Fugaku: 48-core A64FX @ 2.2 GHz per node (two 512-bit SVE FMA
    /// pipes → 70.4 Gflop/s peak/core), 32 GB HBM2, Tofu-D (~1 µs,
    /// ~6.8 GB/s per link). Skinny kernels run at a lower fraction of
    /// peak than on Haswell (SVE needs long vectors to fill), which is
    /// why the paper's Fugaku speedups over Lorapo are larger.
    pub fn fugaku() -> Self {
        Self {
            name: "Fugaku".to_string(),
            cores_per_node: 48,
            peak_gflops_per_core: 70.4,
            eff_dense: 0.75,
            k_half: 96.0,
            nested_efficiency: 0.7,
            latency_s: 1.0e-6,
            bandwidth_bps: 6.8e9,
            task_overhead_s: 20.0e-6,
            dep_overhead_s: 2.0e-6,
        }
    }

    /// Sustained fraction of one core's peak for a kernel whose inner
    /// (rank) dimension is `k`.
    pub fn efficiency_at_rank(&self, k: usize) -> f64 {
        let k = k as f64;
        self.eff_dense * k / (k + self.k_half)
    }

    /// Seconds to execute `flops` on **one core**, for a kernel with
    /// inner dimension `k` (pass the tile size for dense kernels).
    pub fn core_time(&self, flops: f64, k: usize) -> f64 {
        flops / (self.peak_gflops_per_core * 1e9 * self.efficiency_at_rank(k))
    }

    /// Seconds to execute `flops` as a **nested** (node-parallel)
    /// critical-path kernel using every core of the node.
    pub fn nested_time(&self, flops: f64) -> f64 {
        let rate = self.peak_gflops_per_core
            * 1e9
            * self.eff_dense
            * self.nested_efficiency
            * self.cores_per_node as f64;
        flops / rate
    }

    /// Seconds to execute `flops` at the single-core dense rate.
    pub fn dense_kernel_time(&self, flops: f64) -> f64 {
        flops / (self.peak_gflops_per_core * 1e9 * self.eff_dense)
    }

    /// Transfer time of an `bytes`-byte point-to-point message.
    pub fn message_time(&self, bytes: u64) -> f64 {
        self.latency_s + bytes as f64 / self.bandwidth_bps
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_sane() {
        let s = MachineModel::shaheen_ii();
        let f = MachineModel::fugaku();
        assert_eq!(s.cores_per_node, 32);
        assert_eq!(f.cores_per_node, 48);
        // Fugaku nodes are faster at dense math...
        assert!(
            f.peak_gflops_per_core * f.cores_per_node as f64 * f.eff_dense
                > s.peak_gflops_per_core * s.cores_per_node as f64 * s.eff_dense
        );
        // ...but proportionally worse at skinny low-rank kernels.
        assert!(
            f.efficiency_at_rank(16) / f.eff_dense < s.efficiency_at_rank(16) / s.eff_dense
        );
    }

    #[test]
    fn kernel_times_scale_linearly() {
        let m = MachineModel::shaheen_ii();
        let t1 = m.dense_kernel_time(1e9);
        let t2 = m.dense_kernel_time(2e9);
        assert!((t2 / t1 - 2.0).abs() < 1e-12);
        assert!(m.core_time(1e9, 8) > t1, "skinny kernels run below dense rate");
    }

    #[test]
    fn efficiency_saturates_with_rank() {
        let m = MachineModel::shaheen_ii();
        assert!(m.efficiency_at_rank(4) < m.efficiency_at_rank(64));
        assert!(m.efficiency_at_rank(64) < m.efficiency_at_rank(4096));
        assert!(m.efficiency_at_rank(4096) < m.eff_dense);
        // saturates: rank 4096 reaches >99% of the dense fraction
        assert!(m.efficiency_at_rank(4096) > 0.99 * m.eff_dense);
    }

    #[test]
    fn nested_faster_than_single_core() {
        let m = MachineModel::fugaku();
        let flops = 1e10;
        assert!(m.nested_time(flops) < m.dense_kernel_time(flops) / 10.0);
    }

    #[test]
    fn message_time_has_latency_floor() {
        let m = MachineModel::fugaku();
        assert!(m.message_time(0) >= m.latency_s);
        let big = m.message_time(1 << 30);
        assert!(big > 0.1 && big < 1.0); // ~1 GiB / 6.8 GB/s ≈ 0.16 s
    }
}

//! Scheduling policies for the ready queues.
//!
//! PaRSEC ships several node-level schedulers (local LIFO queues,
//! priority-based, hierarchical). The policy decides which ready task a
//! core picks next; with tile Cholesky the choice matters because work
//! off the critical path can starve the panel chain. This module
//! provides the orderings used by the executor/DES and by the
//! `ablation_scheduler` benchmark:
//!
//! * [`SchedPolicy::PanelPriority`] — the paper's effective policy:
//!   lower panel index first (tasks carry `k` as their priority);
//! * [`SchedPolicy::Fifo`] / [`SchedPolicy::Lifo`] — insertion-order
//!   baselines (approximated statically by creation order);
//! * [`SchedPolicy::UpwardRank`] — HEFT-style: longest remaining path to
//!   a sink first (the strongest critical-path heuristic, at the cost of
//!   a full graph traversal).

use crate::graph::{TaskGraph, TaskId};

/// Ready-queue ordering policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchedPolicy {
    /// Lower `TaskSpec::priority` first (panel index — the default).
    PanelPriority,
    /// Creation order (oldest first).
    Fifo,
    /// Reverse creation order (youngest first).
    Lifo,
    /// Largest upward rank (longest remaining dependency chain) first.
    UpwardRank,
}

/// Compute a sort key per task: **smaller key = scheduled first**.
///
/// `duration` prices a task for the upward-rank policy (ignored by the
/// static policies).
pub fn queue_keys(
    graph: &TaskGraph,
    duration: impl Fn(TaskId) -> f64,
    policy: SchedPolicy,
) -> Vec<f64> {
    let n = graph.len();
    match policy {
        SchedPolicy::PanelPriority => {
            (0..n).map(|t| graph.spec(t).priority as f64).collect()
        }
        SchedPolicy::Fifo => (0..n).map(|t| t as f64).collect(),
        SchedPolicy::Lifo => (0..n).map(|t| (n - t) as f64).collect(),
        SchedPolicy::UpwardRank => {
            // upward[t] = duration(t) + max over successors of upward[s];
            // process in reverse topological order.
            let order = graph
                .topological_order()
                .expect("upward rank requires a DAG");
            let mut upward = vec![0.0_f64; n];
            for &t in order.iter().rev() {
                let mut best = 0.0_f64;
                for e in graph.successors(t) {
                    best = best.max(upward[e.dst]);
                }
                upward[t] = duration(t) + best;
            }
            // larger upward rank ⇒ smaller key
            upward.into_iter().map(|u| -u).collect()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{DataRef, TaskClass, TaskSpec};

    fn spec(priority: usize) -> TaskSpec {
        TaskSpec { class: TaskClass::Other, priority, writes: None, flops: 0.0 }
    }

    fn chain_plus_leaf() -> TaskGraph {
        // 0 → 1 → 2 (long chain), 3 (isolated leaf)
        let mut g = TaskGraph::new();
        for i in 0..4 {
            g.add_task(spec(i));
        }
        let d = DataRef { i: 0, j: 0 };
        g.add_edge(0, 1, d, 0);
        g.add_edge(1, 2, d, 0);
        g
    }

    #[test]
    fn panel_priority_uses_spec() {
        let g = chain_plus_leaf();
        let keys = queue_keys(&g, |_| 1.0, SchedPolicy::PanelPriority);
        assert_eq!(keys, vec![0.0, 1.0, 2.0, 3.0]);
    }

    #[test]
    fn fifo_lifo_reverse_each_other() {
        let g = chain_plus_leaf();
        let fifo = queue_keys(&g, |_| 1.0, SchedPolicy::Fifo);
        let lifo = queue_keys(&g, |_| 1.0, SchedPolicy::Lifo);
        let fifo_order: Vec<usize> = argsort(&fifo);
        let lifo_order: Vec<usize> = argsort(&lifo);
        let mut rev = fifo_order.clone();
        rev.reverse();
        assert_eq!(lifo_order, rev);
    }

    #[test]
    fn upward_rank_prefers_chain_head() {
        let g = chain_plus_leaf();
        let keys = queue_keys(&g, |_| 1.0, SchedPolicy::UpwardRank);
        // chain head (upward 3) must come before the isolated leaf (1)
        assert!(keys[0] < keys[3], "chain head must be preferred");
        // and the chain keys decrease in urgency along the chain
        assert!(keys[0] < keys[1] && keys[1] < keys[2]);
    }

    fn argsort(keys: &[f64]) -> Vec<usize> {
        let mut idx: Vec<usize> = (0..keys.len()).collect();
        idx.sort_by(|&a, &b| keys[a].partial_cmp(&keys[b]).unwrap());
        idx
    }
}

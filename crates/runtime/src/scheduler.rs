//! Scheduling policies for the ready queues.
//!
//! PaRSEC ships several node-level schedulers (local LIFO queues,
//! priority-based, hierarchical). The policy decides which ready task a
//! core picks next; with tile Cholesky the choice matters because work
//! off the critical path can starve the panel chain. This module
//! provides the orderings used by the executor/DES and by the
//! `ablation_scheduler` benchmark:
//!
//! * [`SchedPolicy::PanelPriority`] — the paper's effective policy:
//!   lower panel index first (tasks carry `k` as their priority);
//! * [`SchedPolicy::Fifo`] / [`SchedPolicy::Lifo`] — insertion-order
//!   baselines (approximated statically by creation order);
//! * [`SchedPolicy::UpwardRank`] — HEFT-style: longest remaining path to
//!   a sink first (the strongest critical-path heuristic, at the cost of
//!   a full graph traversal);
//! * [`SchedPolicy::CommAwareUpwardRank`] — upward rank that also prices
//!   cross-process edges (latency + bytes/bandwidth), fixing the
//!   comm-blind misranking of chains that cross ranks;
//! * [`SchedPolicy::RankAwareLookahead`] — a *dynamic* critical-path
//!   policy: per-kernel cost estimates from a [`CostModel`] (rank-aware
//!   GEMM pricing via a [`RankProfile`] built from measured
//!   `RankEvolution` histograms), corrected online by an EMA over the
//!   measured/predicted ratio per task class.
//!
//! The policies are consumed through the [`Scheduler`] trait (the
//! dslab-dag callback design): the DES event loop and the work-stealing
//! engine call [`Scheduler::on_task_ready`] when a task becomes ready
//! (the returned key orders the ready queues, **smaller = sooner**) and
//! [`Scheduler::on_task_finished`] when a task retires with a measured
//! duration, which is what lets a dynamic policy learn. The static
//! `queue_keys` table is one implementation ([`StaticScheduler`]) among
//! several.

use crate::engine::EngineError;
use crate::graph::{TaskClass, TaskGraph, TaskId, TaskSpec};
use crate::machine::MachineModel;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Ready-queue ordering policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum SchedPolicy {
    /// Lower `TaskSpec::priority` first (panel index — the default).
    #[default]
    PanelPriority,
    /// Creation order (oldest first).
    Fifo,
    /// Reverse creation order (youngest first).
    Lifo,
    /// Largest upward rank (longest remaining dependency chain) first.
    UpwardRank,
    /// Upward rank including a per-edge communication term on
    /// cross-process edges. Degrades to [`SchedPolicy::UpwardRank`]
    /// where no process mapping exists (the shared-memory engine);
    /// callers with a mapping use [`upward_rank_comm_keys`].
    CommAwareUpwardRank,
    /// Dynamic rank-aware critical-path lookahead: static upward ranks
    /// from a [`CostModel`], with an online per-class EMA correction
    /// from measured task durations ([`LookaheadScheduler`]). Degrades
    /// to [`SchedPolicy::UpwardRank`] in the static `queue_keys` path.
    RankAwareLookahead,
}

impl SchedPolicy {
    /// All policies, for ablation sweeps.
    pub const ALL: [SchedPolicy; 6] = [
        SchedPolicy::PanelPriority,
        SchedPolicy::Fifo,
        SchedPolicy::Lifo,
        SchedPolicy::UpwardRank,
        SchedPolicy::CommAwareUpwardRank,
        SchedPolicy::RankAwareLookahead,
    ];

    /// Stable human-readable name (used in bench tables/JSON).
    pub fn name(self) -> &'static str {
        match self {
            SchedPolicy::PanelPriority => "panel-priority",
            SchedPolicy::Fifo => "fifo",
            SchedPolicy::Lifo => "lifo",
            SchedPolicy::UpwardRank => "upward-rank",
            SchedPolicy::CommAwareUpwardRank => "comm-upward-rank",
            SchedPolicy::RankAwareLookahead => "rank-lookahead",
        }
    }
}

/// Scheduling callbacks (dslab-dag style), consulted by both execution
/// engines.
///
/// * [`on_task_ready`](Scheduler::on_task_ready) fires when a task's
///   last dependency is satisfied; the returned key decides its ready
///   queue position — **smaller key = scheduled first**. Keys must be
///   finite; the engines reject non-finite keys with
///   [`EngineError::NonFiniteKey`] instead of panicking inside a sort.
/// * [`on_task_finished`](Scheduler::on_task_finished) fires when a task
///   retires, with its measured (or simulated) duration in seconds —
///   the feedback channel a dynamic policy learns from. The default is
///   a no-op, which is what every static policy wants.
pub trait Scheduler: Send {
    /// Price a task that just became ready (smaller = sooner).
    fn on_task_ready(&mut self, task: TaskId, graph: &TaskGraph) -> f64;

    /// Observe a finished task and its measured duration in seconds.
    fn on_task_finished(&mut self, _task: TaskId, _graph: &TaskGraph, _measured_s: f64) {}

    /// The per-class measured/modeled correction factors this policy has
    /// learned (slot order Potrf/Trsm/Syrk/Gemm/Other), or `None` for
    /// policies that don't calibrate. The engine publishes these into
    /// the metrics registry at end of run so drift reports can inspect
    /// the EMA state.
    fn class_corrections(&self) -> Option<[f64; 5]> {
        None
    }
}

/// Validate a key table: every key must be finite or the engines would
/// panic inside their ordered queues.
pub fn validate_keys(keys: &[f64]) -> Result<(), EngineError> {
    for (t, &k) in keys.iter().enumerate() {
        if !k.is_finite() {
            return Err(EngineError::NonFiniteKey { task: t, key: k });
        }
    }
    Ok(())
}

/// The static policies: a precomputed, validated key table.
///
/// This is what the legacy `queue_keys` path becomes under the
/// [`Scheduler`] trait — `on_task_ready` is a table lookup and
/// `on_task_finished` is the no-op default.
#[derive(Debug, Clone)]
pub struct StaticScheduler {
    keys: Vec<f64>,
}

impl StaticScheduler {
    /// Wrap a key table, rejecting non-finite keys up front.
    pub fn new(keys: Vec<f64>) -> Result<Self, EngineError> {
        validate_keys(&keys)?;
        Ok(Self { keys })
    }

    /// Build from a policy via [`queue_keys`]. The dynamic policies
    /// degrade to their static upward-rank approximation here (see
    /// [`SchedPolicy`]).
    pub fn from_policy(
        graph: &TaskGraph,
        duration: impl Fn(TaskId) -> f64,
        policy: SchedPolicy,
    ) -> Result<Self, EngineError> {
        Self::new(queue_keys(graph, duration, policy))
    }

    /// The validated key table.
    pub fn keys(&self) -> &[f64] {
        &self.keys
    }
}

impl Scheduler for StaticScheduler {
    fn on_task_ready(&mut self, task: TaskId, _graph: &TaskGraph) -> f64 {
        self.keys[task]
    }
}

/// Compute a sort key per task: **smaller key = scheduled first**.
///
/// `duration` prices a task for the upward-rank policies (ignored by the
/// static policies). [`SchedPolicy::CommAwareUpwardRank`] and
/// [`SchedPolicy::RankAwareLookahead`] need context this function does
/// not have (a process mapping, a cost model) and degrade to the plain
/// upward rank here; use [`upward_rank_comm_keys`] /
/// [`LookaheadScheduler`] to get their full behavior.
pub fn queue_keys(
    graph: &TaskGraph,
    duration: impl Fn(TaskId) -> f64,
    policy: SchedPolicy,
) -> Vec<f64> {
    let n = graph.len();
    match policy {
        SchedPolicy::PanelPriority => {
            (0..n).map(|t| graph.spec(t).priority as f64).collect()
        }
        SchedPolicy::Fifo => (0..n).map(|t| t as f64).collect(),
        SchedPolicy::Lifo => (0..n).map(|t| (n - t) as f64).collect(),
        SchedPolicy::UpwardRank
        | SchedPolicy::CommAwareUpwardRank
        | SchedPolicy::RankAwareLookahead => {
            // upward[t] = duration(t) + max over successors of upward[s];
            // process in reverse topological order.
            let order = graph
                .topological_order()
                .expect("upward rank requires a DAG");
            let mut upward = vec![0.0_f64; n];
            for &t in order.iter().rev() {
                let mut best = 0.0_f64;
                for e in graph.successors(t) {
                    best = best.max(upward[e.dst]);
                }
                upward[t] = duration(t) + best;
            }
            // larger upward rank ⇒ smaller key
            upward.into_iter().map(|u| -u).collect()
        }
    }
}

/// Link parameters pricing a cross-process edge for
/// [`upward_rank_comm_keys`].
#[derive(Debug, Clone, Copy)]
pub struct CommCosts {
    /// Per-message latency in seconds.
    pub latency_s: f64,
    /// Link bandwidth in bytes/second.
    pub bandwidth_bps: f64,
}

impl CommCosts {
    /// Extract the link parameters of a machine model.
    pub fn from_machine(m: &MachineModel) -> Self {
        Self { latency_s: m.latency_s, bandwidth_bps: m.bandwidth_bps }
    }

    /// Transfer seconds of one `bytes`-byte edge crossing processes.
    pub fn edge_time(&self, bytes: u64) -> f64 {
        self.latency_s + bytes as f64 / self.bandwidth_bps
    }
}

/// Communication-aware HEFT upward rank (**smaller key = scheduled
/// first**, like [`queue_keys`]).
///
/// The plain [`SchedPolicy::UpwardRank`] prices only compute time, so a
/// short chain whose edges cross processes (and therefore pay latency +
/// bytes/bandwidth before the successor can start) loses to a longer
/// purely-local chain even when the cross-process chain bounds the
/// makespan. Here every edge whose endpoints live on different
/// processes (`proc_of`) contributes its transfer time to the rank:
///
/// `upward[t] = duration(t) + max over edges e of
///              (comm(e) + upward[e.dst])`
///
/// with `comm(e) = latency + bytes/bandwidth` iff
/// `proc_of[t] != proc_of[e.dst]`, else 0 — the classical HEFT
/// formulation with a fixed mapping.
pub fn upward_rank_comm_keys(
    graph: &TaskGraph,
    duration: impl Fn(TaskId) -> f64,
    proc_of: &[usize],
    comm: &CommCosts,
) -> Vec<f64> {
    let n = graph.len();
    assert_eq!(proc_of.len(), n, "proc_of must map every task");
    let order = graph
        .topological_order()
        .expect("upward rank requires a DAG");
    let mut upward = vec![0.0_f64; n];
    for &t in order.iter().rev() {
        let mut best = 0.0_f64;
        for e in graph.successors(t) {
            let c = if proc_of[t] != proc_of[e.dst] { comm.edge_time(e.bytes) } else { 0.0 };
            best = best.max(c + upward[e.dst]);
        }
        upward[t] = duration(t) + best;
    }
    upward.into_iter().map(|u| -u).collect()
}

/// Distribution of recompression output ranks, the signal behind
/// rank-aware cost estimates.
///
/// Built from a measured `RankEvolution` output-rank histogram
/// (`histogram()[k]` = recompressions kept at rank `k`) — the runtime
/// crate cannot depend on `tlr-compress`, so callers hand over the raw
/// bin counts. `fallback_rank` is used when the histogram is empty
/// (e.g. a run that never recompressed): typically the tile size, i.e.
/// the dense assumption the rank-blind policies silently make.
#[derive(Debug, Clone)]
pub struct RankProfile {
    hist: Vec<u64>,
    fallback_rank: usize,
}

impl RankProfile {
    /// Wrap an output-rank histogram (`hist[k]` = events at rank `k`).
    pub fn from_histogram(hist: &[u64], fallback_rank: usize) -> Self {
        Self { hist: hist.to_vec(), fallback_rank }
    }

    /// A degenerate profile pinned at one rank.
    pub fn uniform(rank: usize) -> Self {
        Self { hist: Vec::new(), fallback_rank: rank }
    }

    /// Mean observed output rank (the `fallback_rank` when no events).
    pub fn expected_rank(&self) -> f64 {
        let events: u64 = self.hist.iter().sum();
        if events == 0 {
            return self.fallback_rank as f64;
        }
        let weighted: f64 =
            self.hist.iter().enumerate().map(|(k, &c)| k as f64 * c as f64).sum();
        weighted / events as f64
    }
}

/// Per-kernel cost estimates for the lookahead policy: a machine model
/// plus the expected operating rank from a [`RankProfile`].
///
/// The point (H2OPUS-TLR's observation) is that TLR GEMMs run far below
/// the dense rate at low rank, so a cost model pricing every flop at
/// the dense rate misorders the critical path. GEMM/SYRK updates are
/// priced at `core_time(flops, expected_rank)`; the panel kernels
/// (POTRF/TRSM) operate on dense diagonal blocks and keep the dense
/// rate.
#[derive(Debug, Clone)]
pub struct CostModel {
    machine: MachineModel,
    expected_rank: usize,
}

impl CostModel {
    /// Combine a machine model with a measured rank profile.
    pub fn from_machine(machine: &MachineModel, profile: &RankProfile) -> Self {
        Self {
            machine: machine.clone(),
            expected_rank: profile.expected_rank().round().max(1.0) as usize,
        }
    }

    /// The rank the model prices low-rank updates at.
    pub fn expected_rank(&self) -> usize {
        self.expected_rank
    }

    /// Predicted seconds for a task, given its class and planned flops.
    pub fn task_cost(&self, spec: &TaskSpec) -> f64 {
        if spec.flops == 0.0 {
            return 0.0;
        }
        match spec.class {
            TaskClass::Gemm | TaskClass::Syrk => {
                self.machine.core_time(spec.flops, self.expected_rank)
            }
            _ => self.machine.dense_kernel_time(spec.flops),
        }
    }
}

fn class_index(class: TaskClass) -> usize {
    match class {
        TaskClass::Potrf => 0,
        TaskClass::Trsm => 1,
        TaskClass::Syrk => 2,
        TaskClass::Gemm => 3,
        TaskClass::Other => 4,
    }
}

/// EMA weight of each new measured/predicted observation in
/// [`LookaheadScheduler`].
const EMA_ALPHA: f64 = 0.2;

/// Dynamic rank-aware critical-path lookahead
/// ([`SchedPolicy::RankAwareLookahead`]).
///
/// At build time it computes static upward ranks from a per-task cost
/// estimate (typically [`CostModel::task_cost`] — rank-aware, not
/// uniform). At run time, every [`on_task_finished`](Scheduler::on_task_finished)
/// updates a per-class exponential moving average of the
/// measured/predicted ratio, and [`on_task_ready`](Scheduler::on_task_ready)
/// prices a task as
///
/// `key = -(corr[class] · cost[t] + downstream[t])`
///
/// so systematic misprediction of one kernel class (the exact failure
/// mode of a rank-blind model on TLR GEMMs) is corrected while the run
/// is still going. The downstream term stays static — a first-order
/// correction, which is all a priority needs.
#[derive(Debug)]
pub struct LookaheadScheduler {
    base_cost: Vec<f64>,
    downstream: Vec<f64>,
    class_corr: [f64; 5],
}

impl LookaheadScheduler {
    /// Build from a per-task cost estimate; rejects non-finite costs.
    pub fn new(
        graph: &TaskGraph,
        cost: impl Fn(TaskId) -> f64,
    ) -> Result<Self, EngineError> {
        let n = graph.len();
        let base_cost: Vec<f64> = (0..n).map(&cost).collect();
        validate_keys(&base_cost)?;
        let order = graph.topological_order().ok_or(EngineError::Cycle)?;
        let mut downstream = vec![0.0_f64; n];
        for &t in order.iter().rev() {
            let mut best = 0.0_f64;
            for e in graph.successors(t) {
                best = best.max(base_cost[e.dst] + downstream[e.dst]);
            }
            downstream[t] = best;
        }
        Ok(Self { base_cost, downstream, class_corr: [1.0; 5] })
    }

    /// Convenience: cost every task with a [`CostModel`].
    pub fn with_cost_model(graph: &TaskGraph, model: &CostModel) -> Result<Self, EngineError> {
        Self::new(graph, |t| model.task_cost(graph.spec(t)))
    }

    /// Rebuild from precomputed base costs and downstream spans (the
    /// tables [`Self::new`] derives from the graph), with the EMA
    /// corrections reset to the identity. This is how a cached
    /// [`SchedPlan`] re-instantiates the lookahead policy per run
    /// without re-walking the graph: the static tables persist with the
    /// plan, the online state is per-run by design.
    pub fn from_parts(base_cost: Vec<f64>, downstream: Vec<f64>) -> Result<Self, EngineError> {
        validate_keys(&base_cost)?;
        validate_keys(&downstream)?;
        Ok(Self { base_cost, downstream, class_corr: [1.0; 5] })
    }

    /// The per-task static cost table.
    pub fn base_costs(&self) -> &[f64] {
        &self.base_cost
    }

    /// The per-task downstream (critical-path lookahead) table.
    pub fn downstream(&self) -> &[f64] {
        &self.downstream
    }

    /// Current correction factor of a kernel class (starts at 1.0).
    pub fn class_correction(&self, class: TaskClass) -> f64 {
        self.class_corr[class_index(class)]
    }
}

impl Scheduler for LookaheadScheduler {
    fn on_task_ready(&mut self, task: TaskId, graph: &TaskGraph) -> f64 {
        let corr = self.class_corr[class_index(graph.spec(task).class)];
        -(corr * self.base_cost[task] + self.downstream[task])
    }

    fn on_task_finished(&mut self, task: TaskId, graph: &TaskGraph, measured_s: f64) {
        let predicted = self.base_cost[task];
        if predicted <= 0.0 || measured_s <= 0.0 || !measured_s.is_finite() {
            return; // zero-cost tasks and clock glitches carry no signal
        }
        let idx = class_index(graph.spec(task).class);
        let ratio = measured_s / predicted;
        self.class_corr[idx] = (1.0 - EMA_ALPHA) * self.class_corr[idx] + EMA_ALPHA * ratio;
    }

    fn class_corrections(&self) -> Option<[f64; 5]> {
        Some(self.class_corr)
    }
}

/// `f64` wrapper ordered by `total_cmp`, for use inside `BinaryHeap`
/// (never panics, unlike `partial_cmp().unwrap()` on NaN).
#[derive(Debug, Clone, Copy, PartialEq)]
struct KeyOrd(f64);

impl Eq for KeyOrd {}

impl PartialOrd for KeyOrd {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for KeyOrd {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

/// Priority-driven topological order: Kahn's algorithm with the ready
/// set kept in a priority queue keyed by `(keys[t], t)`, smaller first.
///
/// The result is always a valid topological order — this is how a
/// scheduling policy is applied to the `DistEngine`, whose per-rank
/// queues execute front-only and therefore deadlock under any ordering
/// that is *not* a global topological order. Returns `None` on a
/// cyclic graph.
pub fn priority_topo_order(graph: &TaskGraph, keys: &[f64]) -> Option<Vec<TaskId>> {
    let n = graph.len();
    assert_eq!(keys.len(), n, "one key per task");
    let mut indegree = graph.indegrees();
    let mut heap: BinaryHeap<Reverse<(KeyOrd, TaskId)>> = (0..n)
        .filter(|&t| indegree[t] == 0)
        .map(|t| Reverse((KeyOrd(keys[t]), t)))
        .collect();
    let mut order = Vec::with_capacity(n);
    while let Some(Reverse((_, t))) = heap.pop() {
        order.push(t);
        for e in graph.successors(t) {
            indegree[e.dst] -= 1;
            if indegree[e.dst] == 0 {
                heap.push(Reverse((KeyOrd(keys[e.dst]), e.dst)));
            }
        }
    }
    (order.len() == n).then_some(order)
}

/// Precomputed scheduler state for one task graph under one policy —
/// the scheduler slice of a symbolic plan.
///
/// The work-stealing engine normally rebuilds its [`Scheduler`] on
/// every run ([`crate::engine::Engine::run`] prices every task and, for
/// the upward-rank family, walks the whole graph). A `SchedPlan` does
/// that walk once at plan time and re-instantiates the scheduler from
/// the stored tables on each run
/// ([`crate::engine::Engine::run_planned`]): static policies become a
/// key-table clone, the lookahead policy restores its cost/downstream
/// tables with a fresh per-run EMA. Instantiation is O(tasks) with no
/// graph traversal, which is what lets a cached plan skip the symbolic
/// phase entirely.
#[derive(Debug, Clone)]
pub struct SchedPlan {
    policy: SchedPolicy,
    /// Static key table (`None` for the dynamic lookahead policy).
    keys: Option<Vec<f64>>,
    /// Lookahead tables: (base cost, downstream span) per task.
    lookahead: Option<(Vec<f64>, Vec<f64>)>,
}

impl SchedPlan {
    /// Precompute the scheduler state for `graph` under `policy`,
    /// pricing tasks exactly as the engine's default does (planned
    /// flops at a nominal 1 Gflop/s), so a planned run is bit-identical
    /// to an unplanned one.
    pub fn build(graph: &TaskGraph, policy: SchedPolicy) -> Result<Self, EngineError> {
        let cost = |t: TaskId| graph.spec(t).flops * 1e-9;
        Self::build_with(graph, cost, policy)
    }

    /// [`build`](Self::build) with an explicit per-task cost estimate.
    pub fn build_with(
        graph: &TaskGraph,
        cost: impl Fn(TaskId) -> f64,
        policy: SchedPolicy,
    ) -> Result<Self, EngineError> {
        match policy {
            SchedPolicy::RankAwareLookahead => {
                let s = LookaheadScheduler::new(graph, cost)?;
                Ok(SchedPlan {
                    policy,
                    keys: None,
                    lookahead: Some((s.base_costs().to_vec(), s.downstream().to_vec())),
                })
            }
            p => {
                let s = StaticScheduler::from_policy(graph, cost, p)?;
                Ok(SchedPlan { policy: p, keys: Some(s.keys().to_vec()), lookahead: None })
            }
        }
    }

    /// The policy this plan was built for.
    pub fn policy(&self) -> SchedPolicy {
        self.policy
    }

    /// Tasks the plan covers (for compatibility checks against a graph).
    pub fn len(&self) -> usize {
        match (&self.keys, &self.lookahead) {
            (Some(k), _) => k.len(),
            (None, Some((b, _))) => b.len(),
            (None, None) => 0,
        }
    }

    /// `true` when the plan covers no tasks.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Instantiate a fresh per-run [`Scheduler`] from the stored
    /// tables. Static policies share the key table semantics of
    /// [`StaticScheduler`]; the lookahead policy starts each run with
    /// identity EMA corrections, exactly as an unplanned run does.
    pub fn instantiate(&self) -> Result<Box<dyn Scheduler>, EngineError> {
        match (&self.keys, &self.lookahead) {
            (Some(k), _) => Ok(Box::new(StaticScheduler::new(k.clone())?)),
            (None, Some((base, down))) => {
                Ok(Box::new(LookaheadScheduler::from_parts(base.clone(), down.clone())?))
            }
            (None, None) => Ok(Box::new(StaticScheduler::new(Vec::new())?)),
        }
    }
}

/// The priority-driven topological order the distributed engine applies
/// for `policy` over `graph` with task→rank mapping `exec_rank` —
/// exactly the computation [`crate::engine::DistEngine`] performs per
/// run when no precomputed order is supplied (tasks priced at planned
/// flops / 1 Gflop/s; [`SchedPolicy::CommAwareUpwardRank`] prices
/// cross-rank edges at a nominal 1 GB/s). Symbolic plans call this once
/// and hand the order to
/// [`run_planned`](crate::engine::DistEngine::run_planned).
pub fn dist_priority_order(
    graph: &TaskGraph,
    policy: SchedPolicy,
    exec_rank: &[usize],
) -> Result<Vec<TaskId>, EngineError> {
    let cost = |t: TaskId| graph.spec(t).flops * 1e-9;
    let keys = match policy {
        SchedPolicy::CommAwareUpwardRank => upward_rank_comm_keys(
            graph,
            cost,
            exec_rank,
            &CommCosts { latency_s: 0.0, bandwidth_bps: 1e9 },
        ),
        p => queue_keys(graph, cost, p),
    };
    validate_keys(&keys)?;
    priority_topo_order(graph, &keys).ok_or(EngineError::Cycle)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::des::{simulate_with_order, DesConfig, DesTask};
    use crate::graph::{DataRef, TaskClass, TaskSpec};

    fn spec(priority: usize) -> TaskSpec {
        TaskSpec { class: TaskClass::Other, priority, writes: None, flops: 0.0 }
    }

    fn chain_plus_leaf() -> TaskGraph {
        // 0 → 1 → 2 (long chain), 3 (isolated leaf)
        let mut g = TaskGraph::new();
        for i in 0..4 {
            g.add_task(spec(i));
        }
        let d = DataRef { i: 0, j: 0 };
        g.add_edge(0, 1, d, 0);
        g.add_edge(1, 2, d, 0);
        g
    }

    #[test]
    fn panel_priority_uses_spec() {
        let g = chain_plus_leaf();
        let keys = queue_keys(&g, |_| 1.0, SchedPolicy::PanelPriority);
        assert_eq!(keys, vec![0.0, 1.0, 2.0, 3.0]);
    }

    #[test]
    fn fifo_lifo_reverse_each_other() {
        let g = chain_plus_leaf();
        let fifo = queue_keys(&g, |_| 1.0, SchedPolicy::Fifo);
        let lifo = queue_keys(&g, |_| 1.0, SchedPolicy::Lifo);
        let fifo_order: Vec<usize> = argsort(&fifo);
        let lifo_order: Vec<usize> = argsort(&lifo);
        let mut rev = fifo_order.clone();
        rev.reverse();
        assert_eq!(lifo_order, rev);
    }

    #[test]
    fn upward_rank_prefers_chain_head() {
        let g = chain_plus_leaf();
        let keys = queue_keys(&g, |_| 1.0, SchedPolicy::UpwardRank);
        // chain head (upward 3) must come before the isolated leaf (1)
        assert!(keys[0] < keys[3], "chain head must be preferred");
        // and the chain keys decrease in urgency along the chain
        assert!(keys[0] < keys[1] && keys[1] < keys[2]);
    }

    fn argsort(keys: &[f64]) -> Vec<usize> {
        let mut idx: Vec<usize> = (0..keys.len()).collect();
        idx.sort_by(|&a, &b| keys[a].total_cmp(&keys[b]));
        idx
    }

    /// The regression graph of the comm-blind upward-rank bug: on the
    /// single core of proc 0 a warm-up task (0) pins the core while two
    /// chain heads queue behind it. Chain A (1→2) is all-local and has
    /// the larger *compute* rank; chain B (3→4) crosses to proc 1 over
    /// a slow link, so its true remaining span is larger. Comm-blind
    /// ranking pops chain A first and pushes the transfer — which
    /// bounds the makespan — behind a local task.
    fn cross_proc_graph() -> (TaskGraph, Vec<DesTask>, DesConfig) {
        let mut g = TaskGraph::new();
        for i in 0..5 {
            g.add_task(spec(i));
        }
        g.add_edge(1, 2, DataRef { i: 0, j: 0 }, 0); // local chain A
        g.add_edge(3, 4, DataRef { i: 1, j: 0 }, 1_000_000); // remote chain B
        let tasks = vec![
            DesTask { proc: 0, duration: 1.0 }, // warm-up: occupies the core
            DesTask { proc: 0, duration: 1.0 },
            DesTask { proc: 0, duration: 1.5 },
            DesTask { proc: 0, duration: 1.0 },
            DesTask { proc: 1, duration: 1.0 },
        ];
        let cfg = DesConfig {
            nprocs: 2,
            cores_per_proc: 1,
            latency_s: 5.0,
            bandwidth_bps: 1e6, // 1 MB at 1 MB/s + 5 s latency = 6 s per hop
            dep_overhead_s: 0.0,
            task_mgmt_s: 0.0,
        };
        (g, tasks, cfg)
    }

    /// Satellite bugfix regression: the comm-blind upward rank provably
    /// picks the wrong task — simulating its order is strictly slower
    /// than the comm-aware order on the same graph and machine.
    #[test]
    fn comm_blind_upward_rank_picks_the_wrong_task() {
        let (g, tasks, cfg) = cross_proc_graph();
        let dur = |t: TaskId| tasks[t].duration;
        let proc_of: Vec<usize> = tasks.iter().map(|t| t.proc).collect();
        let comm = CommCosts { latency_s: cfg.latency_s, bandwidth_bps: cfg.bandwidth_bps };

        let blind = queue_keys(&g, dur, SchedPolicy::UpwardRank);
        let aware = upward_rank_comm_keys(&g, dur, &proc_of, &comm);

        // Blind: chain A head (upward 2.5) outranks chain B head (2.0).
        assert!(blind[1] < blind[3], "compute-only rank must prefer the local chain");
        // Aware: chain B head (1 + 6 + 1 = 8) outranks chain A (2.5).
        assert!(aware[3] < aware[1], "comm-aware rank must prefer the cross-proc chain");

        // Blind: warm-up [0,1], A-head [1,2], B-head [2,3], transfer
        // lands at 9, remote tail [9,10]. Aware: B-head [1,2] goes
        // first, transfer lands at 8, makespan 9.
        let r_blind = simulate_with_order(&g, &tasks, &cfg, &blind).unwrap();
        let r_aware = simulate_with_order(&g, &tasks, &cfg, &aware).unwrap();
        assert!(
            r_aware.makespan < r_blind.makespan - 0.5,
            "comm-aware order must win: {} vs {}",
            r_aware.makespan,
            r_blind.makespan
        );
    }

    #[test]
    fn static_scheduler_rejects_non_finite_keys() {
        let err = StaticScheduler::new(vec![0.0, f64::NAN]).unwrap_err();
        assert!(matches!(err, EngineError::NonFiniteKey { task: 1, key } if key.is_nan()));
        let err = StaticScheduler::new(vec![f64::INFINITY]).unwrap_err();
        assert!(matches!(err, EngineError::NonFiniteKey { task: 0, .. }));
        // and the error is printable (the NaN key must not panic Display)
        assert!(format!("{err}").contains("non-finite"));
    }

    #[test]
    fn static_scheduler_is_a_table_lookup() {
        let g = chain_plus_leaf();
        let mut s =
            StaticScheduler::from_policy(&g, |_| 1.0, SchedPolicy::PanelPriority).unwrap();
        for t in 0..g.len() {
            assert_eq!(s.on_task_ready(t, &g), t as f64);
        }
        // finished is a no-op for static policies
        s.on_task_finished(0, &g, 1.0);
        assert_eq!(s.on_task_ready(0, &g), 0.0);
    }

    #[test]
    fn rank_profile_expected_rank() {
        // 2 events at rank 4, 2 at rank 12 → mean 8
        let mut hist = vec![0u64; 13];
        hist[4] = 2;
        hist[12] = 2;
        let p = RankProfile::from_histogram(&hist, 64);
        assert_eq!(p.expected_rank(), 8.0);
        // empty histogram falls back to the dense assumption
        assert_eq!(RankProfile::from_histogram(&[], 64).expected_rank(), 64.0);
        assert_eq!(RankProfile::uniform(17).expected_rank(), 17.0);
    }

    #[test]
    fn cost_model_prices_gemm_below_dense_rate() {
        let m = MachineModel::shaheen_ii();
        let model = CostModel::from_machine(&m, &RankProfile::uniform(8));
        let gemm = TaskSpec {
            class: TaskClass::Gemm,
            priority: 0,
            writes: None,
            flops: 1e9,
        };
        let potrf = TaskSpec { class: TaskClass::Potrf, ..gemm };
        // same flops: the rank-8 GEMM takes longer than the dense panel
        assert!(model.task_cost(&gemm) > model.task_cost(&potrf));
        assert_eq!(model.task_cost(&potrf), m.dense_kernel_time(1e9));
        // zero-flop tasks are free
        let noop = TaskSpec { flops: 0.0, ..gemm };
        assert_eq!(model.task_cost(&noop), 0.0);
    }

    #[test]
    fn lookahead_learns_from_measured_durations() {
        let g = chain_plus_leaf();
        let mut s = LookaheadScheduler::new(&g, |_| 1.0).unwrap();
        let before = s.on_task_ready(3, &g);
        // the leaf's class (Other) consistently runs 10× the estimate
        for _ in 0..50 {
            s.on_task_finished(3, &g, 10.0);
        }
        assert!(s.class_correction(TaskClass::Other) > 5.0);
        let after = s.on_task_ready(3, &g);
        assert!(after < before, "a slow class must gain urgency: {after} vs {before}");
        // chain ordering is still honored after the correction
        assert!(s.on_task_ready(0, &g) < s.on_task_ready(2, &g));
    }

    #[test]
    fn lookahead_rejects_non_finite_costs() {
        let g = chain_plus_leaf();
        let err = LookaheadScheduler::new(&g, |t| if t == 2 { f64::NAN } else { 1.0 })
            .unwrap_err();
        assert!(matches!(err, EngineError::NonFiniteKey { task: 2, .. }));
    }

    #[test]
    fn priority_topo_order_respects_edges_and_keys() {
        let g = chain_plus_leaf();
        // leaf 3 gets the best key but must not displace edge order
        let keys = vec![1.0, 2.0, 3.0, 0.0];
        let order = priority_topo_order(&g, &keys).unwrap();
        assert_eq!(order, vec![3, 0, 1, 2]);
        let pos: Vec<usize> = {
            let mut p = vec![0; 4];
            for (i, &t) in order.iter().enumerate() {
                p[t] = i;
            }
            p
        };
        assert!(pos[0] < pos[1] && pos[1] < pos[2], "topological validity");
        // a cycle yields None, not a bogus order
        let mut cyclic = TaskGraph::new();
        cyclic.add_task(spec(0));
        cyclic.add_task(spec(1));
        let d = DataRef { i: 0, j: 0 };
        cyclic.add_edge(0, 1, d, 0);
        cyclic.add_edge(1, 0, d, 0);
        assert!(priority_topo_order(&cyclic, &[0.0, 0.0]).is_none());
    }

    #[test]
    fn priority_topo_order_tolerates_nan_keys() {
        // total_cmp never panics; NaN sorts last among ready tasks and
        // the order is still topological (the engines reject NaN before
        // getting here — this guards the sort itself).
        let g = chain_plus_leaf();
        let keys = vec![f64::NAN, 0.0, 0.0, 1.0];
        let order = priority_topo_order(&g, &keys).unwrap();
        assert_eq!(order.len(), 4);
        assert_eq!(order[0], 3, "finite key beats NaN");
    }

    #[test]
    fn policy_names_are_stable() {
        let names: Vec<&str> = SchedPolicy::ALL.iter().map(|p| p.name()).collect();
        assert_eq!(names.len(), 6);
        assert!(names.contains(&"panel-priority"));
        assert!(names.contains(&"rank-lookahead"));
    }
}

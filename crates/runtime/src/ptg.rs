//! A Parameterized Task Graph (PTG) front-end.
//!
//! PaRSEC's native DSL (§IV-A) describes an algorithm as a small set of
//! *task classes*, each with a parameter space and symbolic dataflow
//! rules — the famous JDF files. The runtime never materializes the whole
//! DAG up front; here, for simulation and shared-memory execution, we
//! unroll the symbolic description into an explicit [`TaskGraph`], which
//! is exactly what PaRSEC's engine effectively traverses.
//!
//! A class is described by three closures:
//!
//! * `space` — enumerate the parameter tuples of all instances
//!   (`(k, m, n)`; unused trailing parameters are 0),
//! * `spec` — the task's class/priority/output/flops,
//! * `deps` — the *incoming* dataflow: which instances of which classes
//!   feed this instance, and what datum/bytes flow along each edge.
//!
//! The unroller resolves symbolic references to task ids and checks that
//! every referenced instance exists — the same error a JDF programmer
//! gets from PaRSEC's compiler.
//!
//! ```
//! use tlr_runtime::ptg::{PtgClass, PtgProgram, Dep, Params};
//! use tlr_runtime::graph::{DataRef, TaskClass, TaskSpec};
//!
//! // A two-class pipeline: produce(k) → consume(k)
//! let n = 4usize;
//! let program = PtgProgram::new(vec![
//!     PtgClass {
//!         name: "produce",
//!         space: Box::new(move || (0..n).map(|k| [k, 0, 0]).collect()),
//!         spec: Box::new(|p| TaskSpec {
//!             class: TaskClass::Other, priority: p[0],
//!             writes: Some(DataRef { i: p[0], j: 0 }), flops: 1.0 }),
//!         deps: Box::new(|_| vec![]),
//!     },
//!     PtgClass {
//!         name: "consume",
//!         space: Box::new(move || (0..n).map(|k| [k, 0, 0]).collect()),
//!         spec: Box::new(|p| TaskSpec {
//!             class: TaskClass::Other, priority: p[0],
//!             writes: None, flops: 1.0 }),
//!         deps: Box::new(|p| vec![Dep {
//!             class: "produce", params: [p[0], 0, 0],
//!             data: DataRef { i: p[0], j: 0 }, bytes: 8 }]),
//!     },
//! ]);
//! let unrolled = program.unroll().unwrap();
//! assert_eq!(unrolled.graph.len(), 8);
//! assert_eq!(unrolled.graph.num_edges(), 4);
//! ```

use crate::graph::{DataRef, TaskGraph, TaskId, TaskSpec};
use std::collections::HashMap;

/// Parameter tuple of one task instance (unused entries are 0).
pub type Params = [usize; 3];

/// A symbolic incoming dependency of a task instance.
#[derive(Debug, Clone)]
pub struct Dep {
    /// Name of the producing task class.
    pub class: &'static str,
    /// Parameters of the producing instance.
    pub params: Params,
    /// Datum flowing along the edge.
    pub data: DataRef,
    /// Payload bytes (0 = control dependency).
    pub bytes: u64,
}

/// Symbolic dataflow of one task instance: its incoming dependencies.
pub type DepsFn = Box<dyn Fn(&Params) -> Vec<Dep>>;

/// One parameterized task class (the PTG analog of a JDF task type).
pub struct PtgClass {
    /// Class name; referenced by [`Dep::class`].
    pub name: &'static str,
    /// Enumerate all instances of this class.
    pub space: Box<dyn Fn() -> Vec<Params>>,
    /// Build the runtime spec of an instance.
    pub spec: Box<dyn Fn(&Params) -> TaskSpec>,
    /// Incoming dataflow of an instance.
    pub deps: DepsFn,
}

/// A whole PTG program: an ordered set of task classes.
pub struct PtgProgram {
    classes: Vec<PtgClass>,
}

/// Errors from unrolling a symbolic program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PtgError {
    /// A dependency referenced a class name that does not exist.
    UnknownClass(&'static str),
    /// A dependency referenced an instance outside its class's space.
    UnknownInstance(&'static str, Params),
    /// Two classes share a name.
    DuplicateClass(&'static str),
}

impl std::fmt::Display for PtgError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PtgError::UnknownClass(c) => write!(f, "unknown task class `{c}`"),
            PtgError::UnknownInstance(c, p) => {
                write!(f, "no instance {c}({}, {}, {})", p[0], p[1], p[2])
            }
            PtgError::DuplicateClass(c) => write!(f, "duplicate task class `{c}`"),
        }
    }
}

impl std::error::Error for PtgError {}

/// The result of unrolling: the explicit graph plus the instance → id
/// lookup (useful for executing by class).
#[derive(Debug)]
pub struct Unrolled {
    /// The explicit dataflow graph.
    pub graph: TaskGraph,
    /// `(class index, params) → task id`.
    pub instances: HashMap<(usize, Params), TaskId>,
    /// `task id → (class index, params)` (inverse lookup for executors).
    pub identity: Vec<(usize, Params)>,
    /// Class names, indexed by class index.
    pub class_names: Vec<&'static str>,
}

impl Unrolled {
    /// Class name of a task.
    pub fn class_of(&self, t: TaskId) -> &'static str {
        self.class_names[self.identity[t].0]
    }

    /// Parameters of a task.
    pub fn params_of(&self, t: TaskId) -> Params {
        self.identity[t].1
    }
}

impl PtgProgram {
    /// Build a program from its classes.
    pub fn new(classes: Vec<PtgClass>) -> Self {
        Self { classes }
    }

    /// Materialize the explicit task graph; fails on dangling symbolic
    /// references or duplicate class names.
    pub fn unroll(&self) -> Result<Unrolled, PtgError> {
        let mut name_to_idx: HashMap<&'static str, usize> = HashMap::new();
        for (idx, c) in self.classes.iter().enumerate() {
            if name_to_idx.insert(c.name, idx).is_some() {
                return Err(PtgError::DuplicateClass(c.name));
            }
        }
        let mut graph = TaskGraph::new();
        let mut instances: HashMap<(usize, Params), TaskId> = HashMap::new();
        let mut identity: Vec<(usize, Params)> = Vec::new();
        // First pass: create every instance.
        for (idx, c) in self.classes.iter().enumerate() {
            for p in (c.space)() {
                let id = graph.add_task((c.spec)(&p));
                instances.insert((idx, p), id);
                identity.push((idx, p));
            }
        }
        // Second pass: resolve dataflow.
        for (idx, c) in self.classes.iter().enumerate() {
            for p in (c.space)() {
                let dst = instances[&(idx, p)];
                for dep in (c.deps)(&p) {
                    let src_idx = *name_to_idx
                        .get(dep.class)
                        .ok_or(PtgError::UnknownClass(dep.class))?;
                    let src = *instances
                        .get(&(src_idx, dep.params))
                        .ok_or(PtgError::UnknownInstance(dep.class, dep.params))?;
                    graph.add_edge(src, dst, dep.data, dep.bytes);
                }
            }
        }
        Ok(Unrolled {
            graph,
            instances,
            identity,
            class_names: self.classes.iter().map(|c| c.name).collect(),
        })
    }
}

/// The canonical demo program: dense tile Cholesky over `nt × nt` tiles
/// of size `b`, written exactly as its JDF reads. Used by tests to
/// cross-validate the hand-rolled builder in `hicma-core` and by the
/// `ptg_cholesky` example.
pub fn dense_cholesky_ptg(nt: usize, b: usize) -> PtgProgram {
    use crate::graph::TaskClass;
    let bytes_dense = (b * b * 8) as u64;
    let fl_potrf = (b * b * b) as f64 / 3.0;
    let fl_trsm = (b * b * b) as f64;
    let fl_syrk = (b * b * b) as f64;
    let fl_gemm = 2.0 * (b * b * b) as f64;

    PtgProgram::new(vec![
        PtgClass {
            name: "POTRF",
            space: Box::new(move || (0..nt).map(|k| [k, 0, 0]).collect()),
            spec: Box::new(move |p| TaskSpec {
                class: TaskClass::Potrf,
                priority: p[0],
                writes: Some(DataRef { i: p[0], j: p[0] }),
                flops: fl_potrf,
            }),
            deps: Box::new(move |p| {
                let k = p[0];
                if k == 0 {
                    vec![]
                } else {
                    // A[k][k] was last written by SYRK(k-1, k)
                    vec![Dep {
                        class: "SYRK",
                        params: [k - 1, k, 0],
                        data: DataRef { i: k, j: k },
                        bytes: bytes_dense,
                    }]
                }
            }),
        },
        PtgClass {
            name: "TRSM",
            space: Box::new(move || {
                (0..nt)
                    .flat_map(|k| (k + 1..nt).map(move |m| [k, m, 0]))
                    .collect()
            }),
            spec: Box::new(move |p| TaskSpec {
                class: TaskClass::Trsm,
                priority: p[0],
                writes: Some(DataRef { i: p[1], j: p[0] }),
                flops: fl_trsm,
            }),
            deps: Box::new(move |p| {
                let (k, m) = (p[0], p[1]);
                let mut d = vec![Dep {
                    class: "POTRF",
                    params: [k, 0, 0],
                    data: DataRef { i: k, j: k },
                    bytes: bytes_dense,
                }];
                if k > 0 {
                    // A[m][k] was last written by GEMM(k-1, m, k)
                    d.push(Dep {
                        class: "GEMM",
                        params: [k - 1, m, k],
                        data: DataRef { i: m, j: k },
                        bytes: bytes_dense,
                    });
                }
                d
            }),
        },
        PtgClass {
            name: "SYRK",
            space: Box::new(move || {
                (0..nt)
                    .flat_map(|k| (k + 1..nt).map(move |m| [k, m, 0]))
                    .collect()
            }),
            spec: Box::new(move |p| TaskSpec {
                class: TaskClass::Syrk,
                priority: p[0],
                writes: Some(DataRef { i: p[1], j: p[1] }),
                flops: fl_syrk,
            }),
            deps: Box::new(move |p| {
                let (k, m) = (p[0], p[1]);
                let mut d = vec![Dep {
                    class: "TRSM",
                    params: [k, m, 0],
                    data: DataRef { i: m, j: k },
                    bytes: bytes_dense,
                }];
                if k > 0 {
                    d.push(Dep {
                        class: "SYRK",
                        params: [k - 1, m, 0],
                        data: DataRef { i: m, j: m },
                        bytes: bytes_dense,
                    });
                }
                d
            }),
        },
        PtgClass {
            name: "GEMM",
            space: Box::new(move || {
                (0..nt)
                    .flat_map(|k| {
                        (k + 1..nt)
                            .flat_map(move |n| (n + 1..nt).map(move |m| [k, m, n]))
                    })
                    .collect()
            }),
            spec: Box::new(move |p| TaskSpec {
                class: TaskClass::Gemm,
                priority: p[0],
                writes: Some(DataRef { i: p[1], j: p[2] }),
                flops: fl_gemm,
            }),
            deps: Box::new(move |p| {
                let (k, m, n) = (p[0], p[1], p[2]);
                let mut d = vec![
                    Dep {
                        class: "TRSM",
                        params: [k, m, 0],
                        data: DataRef { i: m, j: k },
                        bytes: bytes_dense,
                    },
                    Dep {
                        class: "TRSM",
                        params: [k, n, 0],
                        data: DataRef { i: n, j: k },
                        bytes: bytes_dense,
                    },
                ];
                if k > 0 {
                    d.push(Dep {
                        class: "GEMM",
                        params: [k - 1, m, n],
                        data: DataRef { i: m, j: n },
                        bytes: bytes_dense,
                    });
                }
                d
            }),
        },
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::TaskClass;

    #[test]
    fn doc_pipeline_unrolls() {
        // mirror of the doc example with different sizes
        let n = 6usize;
        let program = PtgProgram::new(vec![
            PtgClass {
                name: "produce",
                space: Box::new(move || (0..n).map(|k| [k, 0, 0]).collect()),
                spec: Box::new(|p| TaskSpec {
                    class: TaskClass::Other,
                    priority: p[0],
                    writes: Some(DataRef { i: p[0], j: 0 }),
                    flops: 1.0,
                }),
                deps: Box::new(|_| vec![]),
            },
            PtgClass {
                name: "consume",
                space: Box::new(move || (0..n).map(|k| [k, 0, 0]).collect()),
                spec: Box::new(|p| TaskSpec {
                    class: TaskClass::Other,
                    priority: p[0],
                    writes: None,
                    flops: 1.0,
                }),
                deps: Box::new(|p| {
                    vec![Dep {
                        class: "produce",
                        params: [p[0], 0, 0],
                        data: DataRef { i: p[0], j: 0 },
                        bytes: 8,
                    }]
                }),
            },
        ]);
        let u = program.unroll().unwrap();
        assert_eq!(u.graph.len(), 12);
        assert_eq!(u.graph.num_edges(), 6);
        assert!(u.graph.topological_order().is_some());
        // identity lookups
        let id = u.instances[&(1, [3, 0, 0])];
        assert_eq!(u.class_of(id), "consume");
        assert_eq!(u.params_of(id), [3, 0, 0]);
    }

    #[test]
    fn dangling_reference_rejected() {
        let program = PtgProgram::new(vec![PtgClass {
            name: "lonely",
            space: Box::new(|| vec![[0, 0, 0]]),
            spec: Box::new(|_| TaskSpec {
                class: TaskClass::Other,
                priority: 0,
                writes: None,
                flops: 0.0,
            }),
            deps: Box::new(|_| {
                vec![Dep {
                    class: "ghost",
                    params: [0, 0, 0],
                    data: DataRef { i: 0, j: 0 },
                    bytes: 0,
                }]
            }),
        }]);
        assert_eq!(program.unroll().unwrap_err(), PtgError::UnknownClass("ghost"));
    }

    #[test]
    fn out_of_space_instance_rejected() {
        let program = PtgProgram::new(vec![
            PtgClass {
                name: "a",
                space: Box::new(|| vec![[0, 0, 0]]),
                spec: Box::new(|_| TaskSpec {
                    class: TaskClass::Other,
                    priority: 0,
                    writes: None,
                    flops: 0.0,
                }),
                deps: Box::new(|_| vec![]),
            },
            PtgClass {
                name: "b",
                space: Box::new(|| vec![[0, 0, 0]]),
                spec: Box::new(|_| TaskSpec {
                    class: TaskClass::Other,
                    priority: 0,
                    writes: None,
                    flops: 0.0,
                }),
                deps: Box::new(|_| {
                    vec![Dep {
                        class: "a",
                        params: [7, 0, 0], // does not exist
                        data: DataRef { i: 0, j: 0 },
                        bytes: 0,
                    }]
                }),
            },
        ]);
        assert_eq!(
            program.unroll().unwrap_err(),
            PtgError::UnknownInstance("a", [7, 0, 0])
        );
    }

    #[test]
    fn duplicate_class_rejected() {
        let mk = || PtgClass {
            name: "dup",
            space: Box::new(Vec::new),
            spec: Box::new(|_| TaskSpec {
                class: TaskClass::Other,
                priority: 0,
                writes: None,
                flops: 0.0,
            }),
            deps: Box::new(|_| vec![]),
        };
        let program = PtgProgram::new(vec![mk(), mk()]);
        assert_eq!(program.unroll().unwrap_err(), PtgError::DuplicateClass("dup"));
    }

    #[test]
    fn dense_cholesky_ptg_counts() {
        let nt = 6;
        let u = dense_cholesky_ptg(nt, 32).unroll().unwrap();
        let expect = nt + nt * (nt - 1) + nt * (nt - 1) * (nt - 2) / 6;
        assert_eq!(u.graph.len(), expect);
        assert!(u.graph.topological_order().is_some());
        // every POTRF past the first has exactly one incoming edge
        for k in 1..nt {
            let id = u.instances[&(0, [k, 0, 0])];
            assert_eq!(u.graph.indegree(id), 1, "POTRF({k})");
        }
    }

    #[test]
    fn dense_cholesky_ptg_executes_in_dependency_order() {
        use crate::engine::{Engine, EngineConfig};
        use std::sync::atomic::{AtomicUsize, Ordering};
        let nt = 5;
        let u = dense_cholesky_ptg(nt, 16).unroll().unwrap();
        // panels must retire in order: record the max POTRF panel seen and
        // assert no TRSM of panel k runs before POTRF(k) retired.
        let potrf_done = AtomicUsize::new(0);
        let violations = AtomicUsize::new(0);
        Engine::new(&u.graph)
            .run(&EngineConfig::new(4), |_wid, t| match u.class_of(t) {
                "POTRF" => {
                    potrf_done.fetch_max(u.params_of(t)[0] + 1, Ordering::SeqCst);
                }
                "TRSM" if potrf_done.load(Ordering::SeqCst) <= u.params_of(t)[0] => {
                    violations.fetch_add(1, Ordering::SeqCst);
                }
                _ => {}
            })
            .unwrap();
        assert_eq!(violations.load(Ordering::SeqCst), 0);
    }
}

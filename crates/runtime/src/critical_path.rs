//! Critical-path (longest-path) analysis.
//!
//! §VIII-G of the paper uses the compute-only critical path as an
//! *optimistic roofline*: with infinite resources and free communication,
//! the factorization can never finish faster than the longest dependency
//! chain of kernel executions. The reported "efficiency" is
//! `critical_path_time / achieved_time`.

use crate::graph::{TaskGraph, TaskId};

/// Result of a longest-path computation.
#[derive(Debug, Clone)]
pub struct CriticalPath {
    /// Total duration of the longest chain, seconds.
    pub length: f64,
    /// The chain itself, source → sink.
    pub tasks: Vec<TaskId>,
}

/// Compute the longest path through `graph` where task `t` costs
/// `duration(t)` seconds and edges are free (compute-only bound).
///
/// # Panics
/// Panics if the graph is cyclic.
pub fn critical_path(graph: &TaskGraph, duration: impl Fn(TaskId) -> f64) -> CriticalPath {
    let order = graph.topological_order().expect("critical_path requires a DAG");
    let n = graph.len();
    if n == 0 {
        return CriticalPath { length: 0.0, tasks: vec![] };
    }
    // dist[t] = longest path ending at t (inclusive of t's duration)
    let mut dist = vec![0.0_f64; n];
    let mut pred: Vec<Option<TaskId>> = vec![None; n];
    for &t in &order {
        let dt = duration(t);
        if dist[t] == 0.0 {
            dist[t] = dt; // source initialization
        }
        for e in graph.successors(t) {
            let cand = dist[t] + duration(e.dst);
            if cand > dist[e.dst] {
                dist[e.dst] = cand;
                pred[e.dst] = Some(t);
            }
        }
    }
    let (sink, &length) = dist
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.total_cmp(b.1))
        .expect("non-empty graph");
    let mut tasks = vec![sink];
    let mut cur = sink;
    while let Some(p) = pred[cur] {
        tasks.push(p);
        cur = p;
    }
    tasks.reverse();
    CriticalPath { length, tasks }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{DataRef, TaskClass, TaskSpec};

    fn spec() -> TaskSpec {
        TaskSpec { class: TaskClass::Other, priority: 0, writes: None, flops: 0.0 }
    }

    #[test]
    fn chain_length_is_sum() {
        let mut g = TaskGraph::new();
        for _ in 0..5 {
            g.add_task(spec());
        }
        for i in 0..4 {
            g.add_edge(i, i + 1, DataRef { i: 0, j: 0 }, 0);
        }
        let cp = critical_path(&g, |_| 2.0);
        assert_eq!(cp.length, 10.0);
        assert_eq!(cp.tasks, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn picks_longer_branch() {
        // 0 → 1 → 3 (cheap branch), 0 → 2 → 3 (expensive branch)
        let mut g = TaskGraph::new();
        for _ in 0..4 {
            g.add_task(spec());
        }
        let d = DataRef { i: 0, j: 0 };
        g.add_edge(0, 1, d, 0);
        g.add_edge(0, 2, d, 0);
        g.add_edge(1, 3, d, 0);
        g.add_edge(2, 3, d, 0);
        let dur = |t: TaskId| if t == 2 { 10.0 } else { 1.0 };
        let cp = critical_path(&g, dur);
        assert_eq!(cp.length, 12.0);
        assert_eq!(cp.tasks, vec![0, 2, 3]);
    }

    #[test]
    fn disconnected_components() {
        let mut g = TaskGraph::new();
        for _ in 0..3 {
            g.add_task(spec());
        }
        // no edges: longest path = max single duration
        let cp = critical_path(&g, |t| (t + 1) as f64);
        assert_eq!(cp.length, 3.0);
        assert_eq!(cp.tasks, vec![2]);
    }

    #[test]
    fn empty_graph_zero() {
        let g = TaskGraph::new();
        let cp = critical_path(&g, |_| 1.0);
        assert_eq!(cp.length, 0.0);
        assert!(cp.tasks.is_empty());
    }
}

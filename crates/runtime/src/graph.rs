//! Dataflow task graphs.
//!
//! A [`TaskGraph`] is the fully unrolled equivalent of a PaRSEC
//! Parameterized Task Graph: each vertex carries its kernel class, the tile
//! it writes, the tiles it reads, a flop count and a scheduling priority;
//! each edge carries the number of bytes that flow along it (zero for pure
//! control dependencies). The graph is built by the algorithm front-end
//! (`hicma-core`) and consumed by both the shared-memory executor and the
//! distributed discrete-event simulator — the same structure PaRSEC's
//! scheduler and communication engine share.

use serde::{Deserialize, Serialize};

/// Index of a task inside its graph.
pub type TaskId = usize;

/// Kernel classes of tile Cholesky (plus a catch-all for tests/extensions).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TaskClass {
    /// Cholesky of a diagonal tile.
    Potrf,
    /// Triangular solve of a sub-diagonal tile against a factored diagonal.
    Trsm,
    /// Symmetric rank-k update of a diagonal tile.
    Syrk,
    /// Off-diagonal Schur update (the TLR recompression kernel).
    Gemm,
    /// Anything else (used by unit tests and auxiliary phases).
    Other,
}

impl TaskClass {
    /// Stable short name for reports.
    pub fn name(self) -> &'static str {
        match self {
            TaskClass::Potrf => "POTRF",
            TaskClass::Trsm => "TRSM",
            TaskClass::Syrk => "SYRK",
            TaskClass::Gemm => "GEMM",
            TaskClass::Other => "OTHER",
        }
    }
}

/// A reference to a datum (tile) for communication grouping: edges from the
/// same producer carrying the same datum to several consumers form one
/// broadcast, exactly like PaRSEC's collective dataflow.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct DataRef {
    /// Tile row index.
    pub i: usize,
    /// Tile column index.
    pub j: usize,
}

/// Everything the runtime needs to know about one task.
#[derive(Debug, Clone)]
pub struct TaskSpec {
    /// Kernel class (drives the per-class time breakdown).
    pub class: TaskClass,
    /// Panel index `k` of tile Cholesky — used as scheduling priority
    /// (lower `k` = closer to the critical path = higher priority).
    pub priority: usize,
    /// The tile this task overwrites (None for read-only/bookkeeping).
    pub writes: Option<DataRef>,
    /// Floating-point operations this task performs.
    pub flops: f64,
}

/// One dataflow edge.
#[derive(Debug, Clone, Copy)]
pub struct Edge {
    /// Consumer task.
    pub dst: TaskId,
    /// The datum flowing along the edge (groups broadcasts).
    pub data: DataRef,
    /// Payload size in bytes (0 = control-only dependency).
    pub bytes: u64,
}

/// A directed acyclic dataflow graph of tasks.
#[derive(Debug, Default)]
pub struct TaskGraph {
    specs: Vec<TaskSpec>,
    /// Outgoing edges per task.
    succs: Vec<Vec<Edge>>,
    /// Number of incoming edges per task.
    indegree: Vec<usize>,
}

impl TaskGraph {
    /// Create an empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Insert a task; returns its id.
    pub fn add_task(&mut self, spec: TaskSpec) -> TaskId {
        let id = self.specs.len();
        self.specs.push(spec);
        self.succs.push(Vec::new());
        self.indegree.push(0);
        id
    }

    /// Insert a dataflow edge `src → dst` carrying `bytes` of datum `data`.
    ///
    /// # Panics
    /// Panics if either id is out of range or `src == dst`.
    pub fn add_edge(&mut self, src: TaskId, dst: TaskId, data: DataRef, bytes: u64) {
        assert!(src < self.specs.len() && dst < self.specs.len(), "edge endpoints must exist");
        assert_ne!(src, dst, "self-dependency");
        self.succs[src].push(Edge { dst, data, bytes });
        self.indegree[dst] += 1;
    }

    /// Number of tasks.
    pub fn len(&self) -> usize {
        self.specs.len()
    }

    /// `true` when the graph has no tasks.
    pub fn is_empty(&self) -> bool {
        self.specs.is_empty()
    }

    /// Number of edges.
    pub fn num_edges(&self) -> usize {
        self.succs.iter().map(Vec::len).sum()
    }

    /// Task metadata.
    pub fn spec(&self, id: TaskId) -> &TaskSpec {
        &self.specs[id]
    }

    /// Outgoing edges of a task.
    pub fn successors(&self, id: TaskId) -> &[Edge] {
        &self.succs[id]
    }

    /// In-degree of a task.
    pub fn indegree(&self, id: TaskId) -> usize {
        self.indegree[id]
    }

    /// Clone of the in-degree array (consumed by schedulers as a counter set).
    pub fn indegrees(&self) -> Vec<usize> {
        self.indegree.clone()
    }

    /// Tasks with no predecessors.
    pub fn sources(&self) -> Vec<TaskId> {
        (0..self.len()).filter(|&t| self.indegree[t] == 0).collect()
    }

    /// Count tasks per class (the paper's Fig. 5 right axis).
    pub fn class_counts(&self) -> [(TaskClass, usize); 5] {
        let mut counts = [
            (TaskClass::Potrf, 0),
            (TaskClass::Trsm, 0),
            (TaskClass::Syrk, 0),
            (TaskClass::Gemm, 0),
            (TaskClass::Other, 0),
        ];
        for s in &self.specs {
            let idx = match s.class {
                TaskClass::Potrf => 0,
                TaskClass::Trsm => 1,
                TaskClass::Syrk => 2,
                TaskClass::Gemm => 3,
                TaskClass::Other => 4,
            };
            counts[idx].1 += 1;
        }
        counts
    }

    /// Total flops over all tasks.
    pub fn total_flops(&self) -> f64 {
        self.specs.iter().map(|s| s.flops).sum()
    }

    /// A topological order (Kahn). Returns `None` if the graph has a cycle
    /// (which would indicate a front-end bug).
    pub fn topological_order(&self) -> Option<Vec<TaskId>> {
        let mut indeg = self.indegree.clone();
        let mut order = Vec::with_capacity(self.len());
        let mut stack: Vec<TaskId> = self.sources();
        while let Some(t) = stack.pop() {
            order.push(t);
            for e in &self.succs[t] {
                indeg[e.dst] -= 1;
                if indeg[e.dst] == 0 {
                    stack.push(e.dst);
                }
            }
        }
        if order.len() == self.len() {
            Some(order)
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(class: TaskClass, priority: usize) -> TaskSpec {
        TaskSpec { class, priority, writes: None, flops: 1.0 }
    }

    fn diamond() -> TaskGraph {
        // 0 → 1, 0 → 2, 1 → 3, 2 → 3
        let mut g = TaskGraph::new();
        let d = DataRef { i: 0, j: 0 };
        for _ in 0..4 {
            g.add_task(spec(TaskClass::Other, 0));
        }
        g.add_edge(0, 1, d, 8);
        g.add_edge(0, 2, d, 8);
        g.add_edge(1, 3, d, 8);
        g.add_edge(2, 3, d, 8);
        g
    }

    #[test]
    fn build_and_query() {
        let g = diamond();
        assert_eq!(g.len(), 4);
        assert_eq!(g.num_edges(), 4);
        assert_eq!(g.indegree(3), 2);
        assert_eq!(g.sources(), vec![0]);
        assert_eq!(g.successors(0).len(), 2);
    }

    #[test]
    fn topological_order_valid() {
        let g = diamond();
        let order = g.topological_order().expect("acyclic");
        let pos: Vec<usize> = {
            let mut p = vec![0; 4];
            for (idx, &t) in order.iter().enumerate() {
                p[t] = idx;
            }
            p
        };
        assert!(pos[0] < pos[1] && pos[0] < pos[2]);
        assert!(pos[1] < pos[3] && pos[2] < pos[3]);
    }

    #[test]
    fn cycle_detected() {
        let mut g = diamond();
        let d = DataRef { i: 0, j: 0 };
        g.add_edge(3, 0, d, 0);
        assert!(g.topological_order().is_none());
    }

    #[test]
    fn class_counts_and_flops() {
        let mut g = TaskGraph::new();
        g.add_task(spec(TaskClass::Potrf, 0));
        g.add_task(spec(TaskClass::Gemm, 1));
        g.add_task(spec(TaskClass::Gemm, 2));
        let counts = g.class_counts();
        assert_eq!(counts[0].1, 1); // POTRF
        assert_eq!(counts[3].1, 2); // GEMM
        assert_eq!(g.total_flops(), 3.0);
    }

    #[test]
    #[should_panic]
    fn self_edge_panics() {
        let mut g = TaskGraph::new();
        g.add_task(spec(TaskClass::Other, 0));
        g.add_edge(0, 0, DataRef { i: 0, j: 0 }, 0);
    }
}
